module rupam

go 1.22
