package core

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/metrics"
	"rupam/internal/rdd"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
)

// world is a small heterogeneous test cluster: a fast-CPU node, a
// big-memory node, and a GPU node.
type world struct {
	eng   *simx.Engine
	clu   *cluster.Cluster
	store *hdfs.Store
}

func newWorld(t *testing.T) *world {
	t.Helper()
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	clu.AddNode(cluster.NodeSpec{
		Name: "fast", Class: "fast", Cores: 8, FreqGHz: 3,
		MemBytes: 12 * cluster.GB, NetBandwidth: cluster.GbE(1),
		SSD: true, DiskReadBW: cluster.MBps(400), DiskWriteBW: cluster.MBps(300),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "bigmem", Class: "bigmem", Cores: 8, FreqGHz: 1,
		MemBytes: 64 * cluster.GB, NetBandwidth: cluster.GbE(10),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "gpu", Class: "gpu", Cores: 8, FreqGHz: 1,
		MemBytes: 12 * cluster.GB, NetBandwidth: cluster.GbE(1),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
		GPUs: 1, GPURateGHz: 50,
	})
	return &world{eng: eng, clu: clu, store: hdfs.NewStore(clu.NodeNames(), 2, 1)}
}

func runApp(t *testing.T, w *world, app *task.Application, cfg Config) (*spark.Result, *RUPAM) {
	t.Helper()
	sched := New(cfg)
	rt := spark.NewRuntime(w.eng, w.clu, sched, spark.Config{Seed: 1})
	return rt.Run(app), sched
}

func TestCharacterizationCases(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		rec  Record
		want Resource
	}{
		{"gpu", Record{GPU: true}, GPU},
		{"cpu", Record{ComputeTime: 10, ShuffleRead: 1, ShuffleWrite: 1}, CPU},
		{"cpu-despite-memory", Record{PeakMemory: 3 * cluster.GB, ComputeTime: 10, ShuffleRead: 1}, CPU},
		{"net", Record{ComputeTime: 1, ShuffleRead: 10, ShuffleWrite: 1}, Net},
		{"disk", Record{ComputeTime: 1, ShuffleRead: 1, ShuffleWrite: 10}, Disk},
	}
	for _, c := range cases {
		got, ok := s.bottleneckOf(&c.rec)
		if !ok || got != c.want {
			t.Errorf("%s: bottleneck = %v (ok=%v), want %v", c.name, got, ok, c.want)
		}
	}
}

func TestResFactorShiftsBoundary(t *testing.T) {
	rec := Record{ComputeTime: 3, ShuffleRead: 2, ShuffleWrite: 0.5}
	loose := New(Config{ResFactor: 1.2})
	strict := New(Config{ResFactor: 4})
	if got, _ := loose.bottleneckOf(&rec); got != CPU {
		t.Fatalf("loose factor: %v, want CPU", got)
	}
	if got, _ := strict.bottleneckOf(&rec); got == CPU {
		t.Fatalf("strict factor still CPU-bound")
	}
}

func TestFirstSightingQueues(t *testing.T) {
	s := New(Config{})
	// Bind a runtime so pendingSince bookkeeping works.
	w := newWorld(t)
	rt := spark.NewRuntime(w.eng, w.clu, s, spark.Config{Seed: 1})
	_ = rt

	mapStage := &task.Stage{Signature: "m", Kind: task.ShuffleMap}
	mapTask := &task.Task{ID: 1, Kind: task.ShuffleMap}
	if got := s.characterize(mapStage, mapTask); len(got) != NumResources {
		t.Fatalf("unknown map task queues = %v, want all five", got)
	}
	redStage := &task.Stage{Signature: "r", Kind: task.Result}
	redTask := &task.Task{ID: 2, Kind: task.Result}
	got := s.characterize(redStage, redTask)
	if len(got) != 1 || got[0] != Net {
		t.Fatalf("unknown reduce task queues = %v, want [net]", got)
	}
}

func TestGPUStageMarking(t *testing.T) {
	s := New(Config{})
	s.gpuStage["blas"] = true
	st := &task.Stage{Signature: "blas", Kind: task.ShuffleMap}
	tk := &task.Task{ID: 1}
	got := s.characterize(st, tk)
	if len(got) != 2 || got[0] != GPU || got[1] != CPU {
		t.Fatalf("GPU stage queues = %v, want [gpu cpu]", got)
	}
}

func TestHeapForDynamicSizing(t *testing.T) {
	w := newWorld(t)
	s := New(Config{ReserveBytes: 2 * cluster.GB})
	s.Bind(spark.NewRuntime(w.eng, w.clu, New(Config{}), spark.Config{}))
	if got := s.HeapFor(w.clu.Node("bigmem")); got != 62*cluster.GB {
		t.Fatalf("bigmem heap = %d", got)
	}
	if got := s.HeapFor(w.clu.Node("fast")); got != 10*cluster.GB {
		t.Fatalf("fast heap = %d", got)
	}
	static := New(Config{DisableMemAware: true, StaticHeapBytes: 5 * cluster.GB})
	if got := static.HeapFor(w.clu.Node("bigmem")); got != 5*cluster.GB {
		t.Fatalf("ablated heap = %d", got)
	}
}

func TestEndToEndCompletesAllTasks(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	pts := ctx.Read(w.store.CreateEven("in", 800*1e6, 8)).
		Map("parse", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1.2}).Cache()
	for i := 0; i < 3; i++ {
		pts.Map("work", rdd.Profile{CPUPerByte: 30e-9, OutRatio: 1e-4}).
			Shuffle("agg", rdd.Profile{}, 4).Count("iter")
	}
	res, _ := runApp(t, w, ctx.App(), Config{})
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s unfinished", tk)
		}
	}
	if res.Scheduler != "rupam" {
		t.Fatalf("scheduler name %q", res.Scheduler)
	}
}

func TestCPUTasksMigrateToFastNode(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	pts := ctx.Read(w.store.CreateEven("in", 400*1e6, 8)).
		Map("parse", rdd.Profile{CPUPerByte: 3e-9, MemPerByte: 1.2}).Cache()
	var lastJob *task.Job
	for i := 0; i < 5; i++ {
		lastJob = pts.Map("grad", rdd.Profile{CPUPerByte: 150e-9, OutRatio: 1e-4}).
			Shuffle("sum", rdd.Profile{}, 2).Count("iter")
	}
	res, _ := runApp(t, w, ctx.App(), Config{})
	_ = res
	// By the last iteration the compute-bound grad tasks should run on
	// the fast node.
	onFast := 0
	var total int
	for _, st := range lastJob.Stages {
		if st.Signature != "grad" {
			continue
		}
		for _, tk := range st.Tasks {
			total++
			if m := tk.SuccessMetrics(); m != nil && m.Executor == "fast" {
				onFast++
			}
		}
	}
	if total == 0 {
		t.Fatal("no grad stage found")
	}
	if onFast*2 < total {
		t.Fatalf("only %d/%d grad tasks on the fast node by the last iteration", onFast, total)
	}
}

func TestMemoryFitPreventsOOM(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	// 8 tasks of ~5 GB peak: the 12 GB nodes can hold at most two; the
	// fit check must route the surplus to bigmem with zero OOMs.
	ctx.Read(w.store.CreateEven("in", 80*1e6, 8)).
		Map("huge", rdd.Profile{CPUPerByte: 100e-9, MemBase: 5 * cluster.GB}).
		Count("j")
	res, _ := runApp(t, w, ctx.App(), Config{})
	if res.OOMs != 0 {
		t.Fatalf("RUPAM admitted OOMs: %d", res.OOMs)
	}
}

func TestMemAwareAblationOOMs(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	ctx.Read(w.store.CreateEven("in", 80*1e6, 8)).
		Map("huge", rdd.Profile{CPUPerByte: 500e-9, MemBase: 5 * cluster.GB}).
		Count("j")
	res, _ := runApp(t, w, ctx.App(), Config{
		DisableMemAware: true,
		StaticHeapBytes: 10 * cluster.GB,
	})
	if res.OOMs == 0 {
		t.Fatal("mem-aware ablation should hit OOMs on 5 GB tasks under a 10 GB heap")
	}
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s unfinished after retries", tk)
		}
	}
}

func TestGPUTasksReachGPU(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	pts := ctx.Read(w.store.CreateEven("in", 160*1e6, 4)).
		Map("parse", rdd.Profile{CPUPerByte: 2e-9, MemPerByte: 1}).Cache()
	for i := 0; i < 4; i++ {
		pts.Map("blas", rdd.Profile{CPUPerByte: 5e-9, GPUPerByte: 400e-9, OutRatio: 1e-4}).
			Shuffle("sum", rdd.Profile{}, 2).Count("iter")
	}
	res, _ := runApp(t, w, ctx.App(), Config{})
	gpuRuns := 0
	for _, tk := range res.App.AllTasks() {
		if m := tk.SuccessMetrics(); m != nil && m.UsedGPU {
			gpuRuns++
		}
	}
	if gpuRuns == 0 {
		t.Fatal("no task ever used the GPU")
	}
}

func TestLockCompatible(t *testing.T) {
	w := newWorld(t)
	s := New(Config{})
	s.Bind(spark.NewRuntime(w.eng, w.clu, s, spark.Config{}))
	rec := &Record{OptExecutor: "gpu", ComputeTime: 10, Runs: 3}
	// CPU-bound record locked to the 1 GHz gpu node: the 3 GHz fast node
	// qualifies, the equal-speed bigmem node qualifies, and OptExecutor
	// always does.
	if !s.lockCompatible(rec, "gpu") || !s.lockCompatible(rec, "fast") || !s.lockCompatible(rec, "bigmem") {
		t.Fatal("compatibility too strict")
	}
	rec2 := &Record{OptExecutor: "fast", ComputeTime: 10, Runs: 3}
	if s.lockCompatible(rec2, "bigmem") {
		t.Fatal("slower node passed CPU compatibility")
	}
	rec3 := &Record{OptExecutor: "bigmem", ShuffleRead: 10, ComputeTime: 1, Runs: 3}
	if s.lockCompatible(rec3, "fast") {
		t.Fatal("slower-network node passed Net compatibility")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		w := newWorld(t)
		ctx := rdd.NewContext("app", w.store, 5)
		pts := ctx.Read(w.store.CreateSkewed("in", 400*1e6, 8, 0.3)).
			Map("parse", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1}).Cache()
		pts.Shuffle("sh", rdd.Profile{Skew: 0.2}, 4).Count("j1")
		pts.Map("m", rdd.Profile{CPUPerByte: 50e-9}).Count("j2")
		res, _ := runApp(t, w, ctx.App(), Config{})
		return res.Duration
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestLocalityMostlyPreservedForSinglePass(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	ctx.Read(w.store.CreateEven("in", 1200*1e6, 24)).
		Map("scan", rdd.Profile{CPUPerByte: 8e-9, MemPerByte: 1}).
		Count("j")
	res, _ := runApp(t, w, ctx.App(), Config{})
	lc := metrics.AppLocality(res.App)
	if lc.Node == 0 {
		t.Fatalf("single-pass scan lost all locality: %+v", lc)
	}
}

func TestDBRecordsAccumulateAcrossJobs(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	pts := ctx.Read(w.store.CreateEven("in", 160*1e6, 4)).
		Map("parse", rdd.Profile{CPUPerByte: 3e-9, MemPerByte: 1}).Cache()
	for i := 0; i < 3; i++ {
		pts.Map("work", rdd.Profile{CPUPerByte: 60e-9, OutRatio: 1e-4}).Count("iter")
	}
	_, sched := runApp(t, w, ctx.App(), Config{})
	sched.DB().Flush()
	rec := sched.DB().Lookup(TaskKey{Signature: "work", Partition: 0})
	if rec == nil {
		t.Fatal("no record for recurring task")
	}
	if rec.Runs < 3 {
		t.Fatalf("runs = %d, want >= 3 (history transfers across jobs)", rec.Runs)
	}
}

func TestRoundRobinCoversDimensions(t *testing.T) {
	s := New(Config{})
	w := newWorld(t)
	rt := spark.NewRuntime(w.eng, w.clu, s, spark.Config{})
	// Offers require live executors; create them directly.
	for _, n := range w.clu.Nodes {
		executor.New(w.eng, w.clu, n, rt.Cache, rt.Execs, executor.Config{
			HeapBytes: s.HeapFor(n), Seed: 1,
		})
	}
	// Seed one offer per dimension and verify RR dequeues rotate.
	for _, n := range w.clu.Nodes {
		s.offerNode(n)
	}
	seen := map[Resource]bool{}
	for i := 0; i < 32; i++ {
		res, _, ok := s.dequeueRR()
		if !ok {
			break
		}
		seen[res] = true
	}
	if len(seen) < 3 {
		t.Fatalf("round-robin visited only %d dimensions", len(seen))
	}
}

func TestOfferSortedByCapability(t *testing.T) {
	offers := []nodeOffer{
		{node: "slowIdle", cap: 1, util: 0},
		{node: "fastBusy", cap: 3, util: 0.8},
		{node: "fastIdle", cap: 3, util: 0.1},
	}
	sortOffers(offers)
	if offers[0].node != "fastIdle" || offers[1].node != "fastBusy" || offers[2].node != "slowIdle" {
		t.Fatalf("offer order: %v %v %v", offers[0].node, offers[1].node, offers[2].node)
	}
}
