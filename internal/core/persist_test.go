package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rupam/internal/rdd"
	"rupam/internal/spark"
	"rupam/internal/task"
)

func populatedDB(t *testing.T) *CharDB {
	t.Helper()
	db := NewCharDB()
	db.Update(TaskKey{"grad", 0}, &task.Metrics{
		Executor: "thor1", Launch: 0, End: 10, ComputeTime: 8,
		ShuffleReadTime: 1, PeakMemory: 1 << 28,
	}, CPU, true)
	db.Update(TaskKey{"grad", 0}, &task.Metrics{
		Executor: "thor2", Launch: 0, End: 8, ComputeTime: 7,
	}, CPU, true)
	db.Update(TaskKey{"join", 3}, &task.Metrics{
		Executor: "hulk1", OOM: true,
	}, CPU, false)
	db.Update(TaskKey{"blas", 1}, &task.Metrics{
		Executor: "stack1", Launch: 0, End: 4, UsedGPU: true,
	}, GPU, true)
	db.Flush()
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := populatedDB(t)
	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewCharDB()
	if err := restored.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if restored.RecordCount() != db.RecordCount() {
		t.Fatalf("records: %d vs %d", restored.RecordCount(), db.RecordCount())
	}
	rec := restored.Lookup(TaskKey{"grad", 0})
	if rec == nil {
		t.Fatal("grad record lost")
	}
	if rec.Runs != 2 || rec.OptExecutor != "thor2" || rec.BestTime != 8 {
		t.Fatalf("grad record corrupted: %+v", rec)
	}
	if !rec.HistoryResource[CPU] || rec.BottleneckCounts[CPU] != 2 {
		t.Fatalf("history lost: %+v", rec)
	}
	oom := restored.Lookup(TaskKey{"join", 3})
	if oom == nil || !oom.OOMNodes["hulk1"] {
		t.Fatal("OOM node lost")
	}
	gpu := restored.Lookup(TaskKey{"blas", 1})
	if gpu == nil || !gpu.GPU {
		t.Fatal("GPU flag lost")
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	db := populatedDB(t)
	var a, b strings.Builder
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save output differs between calls")
	}
}

func TestLoadRejectsGarbageWithoutClobbering(t *testing.T) {
	// A corrupt characterization file errors out, and the database keeps
	// whatever good state it already had — Load decodes fully before it
	// swaps anything in.
	db := populatedDB(t)
	before := db.Size()
	if err := db.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage load should return an error")
	}
	if db.Size() != before {
		t.Fatalf("failed load changed the database: %d records, want %d", db.Size(), before)
	}
	if rec := db.Lookup(TaskKey{"grad", 0}); rec == nil || rec.Runs != 2 {
		t.Fatalf("failed load corrupted surviving record: %+v", rec)
	}
}

func TestLoadRejectsTruncatedFileWithoutClobbering(t *testing.T) {
	// A truncated JSON document (a crash mid-write through a non-atomic
	// path) is rejected with the previous contents intact, and the intact
	// file still round-trips afterwards.
	src := populatedDB(t)
	var buf strings.Builder
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	truncated := full[:len(full)/2]

	db := populatedDB(t)
	before := db.Size()
	if err := db.Load(strings.NewReader(truncated)); err == nil {
		t.Fatal("truncated load should return an error")
	}
	if db.Size() != before {
		t.Fatalf("truncated load changed the database: %d records, want %d", db.Size(), before)
	}

	if err := db.Load(strings.NewReader(full)); err != nil {
		t.Fatal(err)
	}
	if db.Size() != src.Size() {
		t.Fatalf("recovered load has %d records, want %d", db.Size(), src.Size())
	}
}

func TestSaveFileIsAtomic(t *testing.T) {
	// SaveFile goes through a temp file + rename: a good snapshot on disk
	// survives a later save writing garbage through a non-atomic path, and
	// a truncated half-written file is rejected by LoadFile without
	// corrupting the loader's previous good state.
	dir := t.TempDir()
	path := filepath.Join(dir, "chardb.json")

	src := populatedDB(t)
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 1 {
		t.Fatalf("temp file left behind: %v entries (%v)", len(entries), err)
	}

	fresh := NewCharDB()
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Size() != src.Size() {
		t.Fatalf("file round-trip lost records: %d vs %d", fresh.Size(), src.Size())
	}

	// Simulate a crash mid-write of a NEW snapshot via a non-atomic path:
	// the destination ends up truncated.
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	loaded := populatedDB(t)
	before := loaded.Size()
	if err := loaded.LoadFile(path); err == nil {
		t.Fatal("truncated file should be rejected")
	}
	if loaded.Size() != before {
		t.Fatalf("rejected load changed the database: %d records, want %d", loaded.Size(), before)
	}

	// Saving again over the truncated wreck restores a loadable snapshot.
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	again := NewCharDB()
	if err := again.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if again.Size() != src.Size() {
		t.Fatalf("re-save lost records: %d vs %d", again.Size(), src.Size())
	}
}

func TestPutInstallPayloadRoundTrip(t *testing.T) {
	db := populatedDB(t)
	key := TaskKey{"grad", 0}
	b, ok := db.PutPayload(key)
	if !ok {
		t.Fatal("payload missing for observed task")
	}
	if _, ok := db.PutPayload(TaskKey{"nope", 9}); ok {
		t.Fatal("payload produced for never-observed task")
	}

	fresh := NewCharDB()
	if err := fresh.InstallPayload(b); err != nil {
		t.Fatal(err)
	}
	rec := fresh.Lookup(key)
	if rec == nil || rec.Runs != 2 || rec.OptExecutor != "thor2" || rec.BestTime != 8 {
		t.Fatalf("payload round-trip corrupted record: %+v", rec)
	}
	if err := fresh.InstallPayload([]byte("{broken")); err == nil {
		t.Fatal("broken payload should be rejected")
	}
}

func TestWarmStartSpeedsSecondRun(t *testing.T) {
	// Two identical apps back to back: the second, warm-started from the
	// first scheduler's DB, must not be slower — the paper's periodic-job
	// observation (§III-B2).
	runOnce := func(warmFrom *RUPAM) (float64, *RUPAM) {
		w := newWorld(t)
		ctx := rdd.NewContext("app", w.store, 3)
		pts := ctx.Read(w.store.CreateEven("in", 400*1e6, 8)).
			Map("parse", rdd.Profile{CPUPerByte: 3e-9, MemPerByte: 1.2}).Cache()
		for i := 0; i < 3; i++ {
			pts.Map("grad", rdd.Profile{CPUPerByte: 200e-9, OutRatio: 1e-4}).
				Shuffle("sum", rdd.Profile{}, 2).Count("iter")
		}
		sched := New(Config{})
		if warmFrom != nil {
			sched.WarmStartFrom(warmFrom)
		}
		rt := spark.NewRuntime(w.eng, w.clu, sched, spark.Config{Seed: 3})
		res := rt.Run(ctx.App())
		return res.Duration, sched
	}
	cold, sched := runOnce(nil)
	warm, _ := runOnce(sched)
	if warm > cold*1.05 {
		t.Fatalf("warm start slower than cold: %v vs %v", warm, cold)
	}
	if sched.DB().RecordCount() == 0 {
		t.Fatal("first run recorded nothing")
	}
}
