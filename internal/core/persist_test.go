package core

import (
	"strings"
	"testing"

	"rupam/internal/rdd"
	"rupam/internal/spark"
	"rupam/internal/task"
)

func populatedDB(t *testing.T) *CharDB {
	t.Helper()
	db := NewCharDB()
	db.Update(TaskKey{"grad", 0}, &task.Metrics{
		Executor: "thor1", Launch: 0, End: 10, ComputeTime: 8,
		ShuffleReadTime: 1, PeakMemory: 1 << 28,
	}, CPU, true)
	db.Update(TaskKey{"grad", 0}, &task.Metrics{
		Executor: "thor2", Launch: 0, End: 8, ComputeTime: 7,
	}, CPU, true)
	db.Update(TaskKey{"join", 3}, &task.Metrics{
		Executor: "hulk1", OOM: true,
	}, CPU, false)
	db.Update(TaskKey{"blas", 1}, &task.Metrics{
		Executor: "stack1", Launch: 0, End: 4, UsedGPU: true,
	}, GPU, true)
	db.Flush()
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := populatedDB(t)
	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewCharDB()
	if err := restored.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if restored.RecordCount() != db.RecordCount() {
		t.Fatalf("records: %d vs %d", restored.RecordCount(), db.RecordCount())
	}
	rec := restored.Lookup(TaskKey{"grad", 0})
	if rec == nil {
		t.Fatal("grad record lost")
	}
	if rec.Runs != 2 || rec.OptExecutor != "thor2" || rec.BestTime != 8 {
		t.Fatalf("grad record corrupted: %+v", rec)
	}
	if !rec.HistoryResource[CPU] || rec.BottleneckCounts[CPU] != 2 {
		t.Fatalf("history lost: %+v", rec)
	}
	oom := restored.Lookup(TaskKey{"join", 3})
	if oom == nil || !oom.OOMNodes["hulk1"] {
		t.Fatal("OOM node lost")
	}
	gpu := restored.Lookup(TaskKey{"blas", 1})
	if gpu == nil || !gpu.GPU {
		t.Fatal("GPU flag lost")
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	db := populatedDB(t)
	var a, b strings.Builder
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save output differs between calls")
	}
}

func TestLoadSurvivesGarbage(t *testing.T) {
	// A corrupt characterization file must not be fatal: Load logs and
	// starts empty (the history is a hint, not correctness state).
	db := populatedDB(t)
	if err := db.Load(strings.NewReader("not json")); err != nil {
		t.Fatalf("garbage should be survivable, got %v", err)
	}
	if db.Size() != 0 {
		t.Fatalf("corrupt load left %d stale records", db.Size())
	}
}

func TestLoadSurvivesTruncatedFile(t *testing.T) {
	// A crash mid-Save leaves a truncated JSON document; Load must start
	// empty instead of erroring out or keeping a partial view.
	src := populatedDB(t)
	var buf strings.Builder
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	truncated := full[:len(full)/2]

	db := populatedDB(t)
	if err := db.Load(strings.NewReader(truncated)); err != nil {
		t.Fatalf("truncated file should be survivable, got %v", err)
	}
	if db.Size() != 0 {
		t.Fatalf("truncated load left %d records", db.Size())
	}

	// And the intact file still round-trips after the failed load.
	if err := db.Load(strings.NewReader(full)); err != nil {
		t.Fatal(err)
	}
	if db.Size() != src.Size() {
		t.Fatalf("recovered load has %d records, want %d", db.Size(), src.Size())
	}
}

func TestWarmStartSpeedsSecondRun(t *testing.T) {
	// Two identical apps back to back: the second, warm-started from the
	// first scheduler's DB, must not be slower — the paper's periodic-job
	// observation (§III-B2).
	runOnce := func(warmFrom *RUPAM) (float64, *RUPAM) {
		w := newWorld(t)
		ctx := rdd.NewContext("app", w.store, 3)
		pts := ctx.Read(w.store.CreateEven("in", 400*1e6, 8)).
			Map("parse", rdd.Profile{CPUPerByte: 3e-9, MemPerByte: 1.2}).Cache()
		for i := 0; i < 3; i++ {
			pts.Map("grad", rdd.Profile{CPUPerByte: 200e-9, OutRatio: 1e-4}).
				Shuffle("sum", rdd.Profile{}, 2).Count("iter")
		}
		sched := New(Config{})
		if warmFrom != nil {
			sched.WarmStartFrom(warmFrom)
		}
		rt := spark.NewRuntime(w.eng, w.clu, sched, spark.Config{Seed: 3})
		res := rt.Run(ctx.App())
		return res.Duration, sched
	}
	cold, sched := runOnce(nil)
	warm, _ := runOnce(sched)
	if warm > cold*1.05 {
		t.Fatalf("warm start slower than cold: %v vs %v", warm, cold)
	}
	if sched.DB().RecordCount() == 0 {
		t.Fatal("first run recorded nothing")
	}
}
