package core

import (
	"fmt"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/monitor"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/tracing"
	"rupam/internal/wal"
)

// Config tunes RUPAM. The zero value takes the paper's defaults; the
// Disable* switches exist for the ablation benchmarks.
type Config struct {
	// ResFactor is Algorithm 1's sensitivity threshold: a task is
	// compute-bound if computeTime > ResFactor × max(shuffleRead,
	// shuffleWrite), and network-bound if shuffleRead > ResFactor ×
	// shuffleWrite (paper example: 2).
	ResFactor float64
	// ReserveBytes is left to the OS when sizing each node's executor
	// heap (dynamic executor sizing, §III-C2).
	ReserveBytes int64
	// LockAfterRuns pins a task to its best-observed node after this many
	// successful observations (§III-C1's locking; Algorithm 2's strict
	// all-five-resources condition also locks).
	LockAfterRuns int
	// LockTimeout unpins a locked task that has waited this long for its
	// preferred node, preventing starvation.
	LockTimeout float64
	// OvercommitFactor bounds running tasks per node at factor × cores
	// when over-committing idle resources (§III-C2).
	OvercommitFactor float64
	// UtilThreshold is the utilization above which a node stops being
	// offered for that resource dimension.
	UtilThreshold float64
	// LowMemFrac triggers memory-straggler reclamation when a node's free
	// heap falls below this fraction (§III-C3).
	LowMemFrac float64
	// GPURaceMinRun is how long a GPU-capable task must have run on a CPU
	// before a racing copy is considered for an idle GPU node.
	GPURaceMinRun float64
	// UnknownPatience is how long an uncharacterized task holds out for
	// its preferred (data-local) nodes before any node may take it.
	UnknownPatience float64

	// Ablation switches.
	DisableLocking  bool // no best-node pinning
	DisableMemAware bool // no memory-fit check, no dynamic heap, no mem stragglers
	DisableRR       bool // drain resource queues in fixed order instead of round-robin
	DisableGPURace  bool // GPU tasks wait for GPU nodes; no dual-version copies

	// StaticHeapBytes is only used with DisableMemAware, to mirror the
	// default scheduler's fixed executor size.
	StaticHeapBytes int64
}

func (c Config) withDefaults() Config {
	if c.ResFactor == 0 {
		c.ResFactor = 2
	}
	if c.ReserveBytes == 0 {
		c.ReserveBytes = 2 * cluster.GB
	}
	if c.LockAfterRuns == 0 {
		c.LockAfterRuns = 3
	}
	if c.LockTimeout == 0 {
		c.LockTimeout = 5
	}
	if c.OvercommitFactor == 0 {
		c.OvercommitFactor = 1.3
	}
	if c.UtilThreshold == 0 {
		c.UtilThreshold = 0.9
	}
	if c.LowMemFrac == 0 {
		c.LowMemFrac = 0.05
	}
	if c.GPURaceMinRun == 0 {
		c.GPURaceMinRun = 2
	}
	if c.UnknownPatience == 0 {
		c.UnknownPatience = 4
	}
	if c.StaticHeapBytes == 0 {
		c.StaticHeapBytes = 14 * cluster.GB
	}
	return c
}

// nodeOffer is one entry in a resource queue: a node ready to run a task
// of that dimension. Offers order the paper's way — capacity/capability
// descending first, utilization ascending second — so the most capable
// node always wins while it still accepts work.
type nodeOffer struct {
	node string
	cap  float64 // static capability for the dimension
	util float64 // current utilization of the dimension
	seq  uint64
}

// better reports whether offer a should be dequeued before b.
func (a nodeOffer) better(b nodeOffer) bool {
	if a.cap != b.cap {
		return a.cap > b.cap
	}
	if a.util != b.util {
		return a.util < b.util
	}
	return a.seq < b.seq
}

// RUPAM is the scheduler. It implements spark.Scheduler.
type RUPAM struct {
	cfg Config
	rt  *spark.Runtime
	db  *CharDB

	// Task Queues: pending tasks by dominant resource. A task may appear
	// in several queues (first-sighting map tasks go in all five); stale
	// entries are skipped lazily via task state.
	taskQ [NumResources][]*task.Task

	// Resource Queues: node offers per dimension, refilled on heartbeat
	// and task completion, drained every dispatch round.
	nodeQ [NumResources][]nodeOffer

	// gpuStage marks stage signatures observed using a GPU; all tasks of
	// such stages are treated as GPU tasks (§III-B2).
	gpuStage map[string]bool

	pendingSince map[int]float64 // taskID → enqueue time, for lock timeout

	// degraded marks nodes whose latest heartbeat reported a below-spec
	// CPU frequency (a gray-failed, fail-slow machine). Their CharDB
	// locks are released on entry and their running tasks bypass the
	// lock-compatibility exemption in the straggler detector.
	degraded map[string]bool

	// LocksReleased counts best-node locks dropped because their node
	// turned fail-slow (report hook).
	LocksReleased int

	// UncharacterizedLaunches counts launches of tasks the database had
	// never observed (no record, or zero successful runs). With a shared
	// CharDB this measures the warm-start benefit: the second app of a
	// workload should launch far fewer blind tasks than the first.
	UncharacterizedLaunches int

	// externalDB marks the characteristics database as externally owned
	// (the paper's Cassandra-backed DB_taskchar, here a database shared
	// across applications by the tenant manager). An external DB is
	// persistent: driver recovery keeps it instead of rebuilding from the
	// WAL, and it is never cleared — wiping it would also wipe what
	// sibling applications learned.
	externalDB bool

	// inFlight counts launched-but-unfinished attempts per node per
	// dimension (the queue that placed them), implementing the
	// Dispatcher's "number of tasks to launch on a specific node".
	inFlight map[string]*[NumResources]int
	dimOf    map[*executor.Run]Resource // attempt's placing dimension

	rrIdx    int
	offerSeq uint64
}

// New returns a RUPAM scheduler with the given configuration.
func New(cfg Config) *RUPAM {
	return &RUPAM{
		cfg:          cfg.withDefaults(),
		db:           NewCharDB(),
		gpuStage:     make(map[string]bool),
		pendingSince: make(map[int]float64),
		degraded:     make(map[string]bool),
		inFlight:     make(map[string]*[NumResources]int),
		dimOf:        make(map[*executor.Run]Resource),
	}
}

// NewWithDB returns a RUPAM scheduler backed by an externally-owned
// characteristics database. The caller keeps the database alive across
// applications (and driver crashes), so every task learned by one app
// warm-starts its successors — the simulated equivalent of the paper's
// Cassandra-persisted DB_taskchar.
func NewWithDB(cfg Config, db *CharDB) *RUPAM {
	s := New(cfg)
	if db != nil {
		s.db = db
		s.externalDB = true
	}
	return s
}

// DB exposes the task-characteristics database (tests and reports).
func (s *RUPAM) DB() *CharDB { return s.db }

// Name implements spark.Scheduler.
func (s *RUPAM) Name() string { return "rupam" }

// RelocatesCache implements spark.CacheRelocator: RUPAM migrates tasks to
// better nodes, and their cached partitions follow (§III-C1's convergence
// to the best-observed node).
func (s *RUPAM) RelocatesCache() bool { return true }

// Bind implements spark.Scheduler.
func (s *RUPAM) Bind(rt *spark.Runtime) { s.rt = rt }

// HeapFor implements spark.Scheduler: dynamic executor sizing — each node
// gets (memory − reserve), instead of one conservative global size.
func (s *RUPAM) HeapFor(node *cluster.Node) int64 {
	if s.cfg.DisableMemAware {
		return s.cfg.StaticHeapBytes
	}
	h := node.Spec.MemBytes - s.cfg.ReserveBytes
	if h < cluster.GB {
		h = cluster.GB
	}
	return h
}

// ---- Task Manager ---------------------------------------------------------

// characterize implements Algorithm 1: the queues a task belongs to, from
// its database record or its stage kind on first sighting.
func (s *RUPAM) characterize(st *task.Stage, t *task.Task) []Resource {
	if s.gpuStage[st.Signature] {
		// GPU tasks are not held hostage to the two accelerators: they
		// stay CPU-schedulable (OpenBLAS fallback) and the dispatcher
		// races copies onto idle GPUs (§III-C3).
		return []Resource{GPU, CPU}
	}
	rec := s.db.Lookup(KeyFor(st, t))
	if rec == nil || rec.Runs == 0 {
		if st.Kind == task.ShuffleMap {
			// Unknown map task: bounded by everything.
			return []Resource{CPU, Mem, Disk, Net, GPU}
		}
		// Unknown reduce/result task: network-bound (shuffle in, results
		// out).
		return []Resource{Net}
	}
	r, ok := s.bottleneckOf(rec)
	// Majority vote across the task's history outweighs the freshest
	// sample once it has a clear winner: a single contended shuffle must
	// not exile a compute-bound task to the big-NIC (slow-core) nodes.
	if maj, votes, any := rec.MajorityBottleneck(); any && rec.Runs >= 3 {
		if votes*2 > rec.Runs || !ok {
			r, ok = maj, true
		}
	}
	if ok {
		if r == GPU {
			return []Resource{GPU, CPU}
		}
		return []Resource{r}
	}
	return []Resource{CPU}
}

// bottleneckOf applies Algorithm 1's thresholds to a record. Note that
// memory is deliberately NOT a task bottleneck class: Algorithm 1 keeps
// four task queues (GPU/CPU/NET/DISK), and memory fitness is enforced at
// dispatch time against the node's free heap instead — classifying big
// CPU-bound tasks as "memory tasks" would exile them to the large-memory
// (but slow) machines.
func (s *RUPAM) bottleneckOf(rec *Record) (Resource, bool) {
	if rec.GPU {
		return GPU, true
	}
	maxShuffle := rec.ShuffleRead
	if rec.ShuffleWrite > maxShuffle {
		maxShuffle = rec.ShuffleWrite
	}
	if rec.ComputeTime > s.cfg.ResFactor*maxShuffle {
		return CPU, true
	}
	if rec.ShuffleRead > s.cfg.ResFactor*rec.ShuffleWrite {
		return Net, true
	}
	return Disk, true
}

// classifyMetrics derives the bottleneck of one finished attempt for the
// database update.
func (s *RUPAM) classifyMetrics(m *task.Metrics) (Resource, bool) {
	rec := Record{
		ComputeTime: m.ComputeTime,
		GPU:         m.UsedGPU,
		PeakMemory:  m.PeakMemory,
		// Table I's shuffleread/shufflewrite cover shuffle I/O only.
		// Input-fetch time is deliberately excluded: a remote cached-input
		// read is a one-time migration cost, and folding it in makes a
		// CPU-bound task look network-bound right after it moves — a
		// feedback loop that ping-pongs tasks between node classes.
		ShuffleRead:  m.ShuffleReadTime,
		ShuffleWrite: m.ShuffleWriteTime,
	}
	return s.bottleneckOf(&rec)
}

// enqueue places a task on its characteristic queues.
func (s *RUPAM) enqueue(st *task.Stage, t *task.Task) {
	for _, r := range s.characterize(st, t) {
		s.taskQ[r] = append(s.taskQ[r], t)
	}
	s.pendingSince[t.ID] = s.rt.Eng.Now()
}

// StageSubmitted implements spark.Scheduler: enqueue the tasks and revive
// offers from every node so a fresh wave does not wait for the next
// heartbeat (Spark's reviveOffers on task-set registration).
func (s *RUPAM) StageSubmitted(st *task.Stage) {
	for _, t := range st.Tasks {
		s.enqueue(st, t)
	}
	for _, n := range s.rt.Clu.Nodes {
		s.offerNode(n)
	}
}

// Resubmit implements spark.Scheduler.
func (s *RUPAM) Resubmit(t *task.Task, st *task.Stage) {
	s.enqueue(st, t)
}

// PendingTasks counts distinct queued tasks still genuinely pending (a
// task may sit in several resource queues; stale entries for launched or
// finished tasks are skipped, as the dispatcher itself does). The chaos
// harness's queue-drain invariant expects zero after a completed run.
func (s *RUPAM) PendingTasks() int {
	seen := make(map[int]bool)
	for r := range s.taskQ {
		for _, t := range s.taskQ[r] {
			if t.State == task.Pending && !seen[t.ID] {
				seen[t.ID] = true
			}
		}
	}
	return len(seen)
}

// ExecutorLost implements spark.ExecutorLossAware: a dead node's offers
// are purged from every resource queue, its in-flight accounting dropped,
// and the characteristics database forgets it — best-node locks naming the
// corpse would otherwise pin their tasks to it until lock timeout.
func (s *RUPAM) ExecutorLost(node string) {
	for r := range s.nodeQ {
		q := s.nodeQ[r][:0]
		for _, o := range s.nodeQ[r] {
			if o.node != node {
				q = append(q, o)
			}
		}
		s.nodeQ[r] = q
	}
	delete(s.inFlight, node)
	s.journalRecords(s.db.ForgetNode(node))
}

// journalRecords appends the current state of the given records to the
// runtime's write-ahead log (chardb-put records), so a recovered driver
// rebuilds the same characterization it crashed with. No-op without a WAL.
func (s *RUPAM) journalRecords(keys []TaskKey) {
	w := s.rt.WAL()
	if w == nil {
		return
	}
	for _, k := range keys {
		if b, ok := s.db.PutPayload(k); ok {
			w.Append(wal.Record{Kind: wal.KindCharDBPut, Key: journalKey(k), CharDB: b})
		}
	}
}

// journalKey is the WAL string form of a task key.
func journalKey(k TaskKey) string { return fmt.Sprintf("%s|%d", k.Signature, k.Partition) }

// DriverRecovery implements spark.RecoveryAware: a restarted driver drops
// every in-memory queue and counter (the runtime re-hands active stages
// over right after, refilling the task queues from replayed truth) and
// rebuilds the characteristics database from the journaled chardb-put
// payloads — the learned locks, bottleneck histories and OOM sets survive
// the crash. Stage-level GPU marking is recovered from the records' GPU
// flags.
func (s *RUPAM) DriverRecovery(ws *wal.State) {
	for r := range s.taskQ {
		s.taskQ[r] = nil
	}
	for r := range s.nodeQ {
		s.nodeQ[r] = nil
	}
	s.gpuStage = make(map[string]bool)
	s.pendingSince = make(map[int]float64)
	s.degraded = make(map[string]bool)
	s.inFlight = make(map[string]*[NumResources]int)
	s.dimOf = make(map[*executor.Run]Resource)
	s.rrIdx = 0
	s.offerSeq = 0

	if !s.externalDB {
		// An in-process database died with the driver: rebuild it from the
		// journaled payloads. An external database survived the crash by
		// construction (and holds sibling apps' learning), so it is kept
		// as-is and only the stage-GPU marking below is re-derived.
		s.db.Clear()
		keys := make([]string, 0, len(ws.CharDB))
		for k := range ws.CharDB {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := s.db.InstallPayload(ws.CharDB[k]); err != nil {
				continue // torn journal payload; relearned from fresh completions
			}
		}
	}
	for key, rec := range s.db.store {
		if rec.GPU {
			s.gpuStage[key.Signature] = true
		}
	}
}

// TaskEnded implements spark.Scheduler: record the observation in the
// characteristics DB, propagate stage-level GPU marking, and re-offer the
// node that just freed capacity.
func (s *RUPAM) TaskEnded(t *task.Task, r *executor.Run, out executor.Outcome) {
	if dim, ok := s.dimOf[r]; ok {
		if f := s.inFlight[r.Metrics().Executor]; f != nil && f[dim] > 0 {
			f[dim]--
		}
		delete(s.dimOf, r)
	}
	st := r.Stage()
	m := r.Metrics()
	if m.UsedGPU {
		s.gpuStage[st.Signature] = true
	}
	bottleneck, ok := s.classifyMetrics(m)
	s.db.Update(KeyFor(st, t), m, bottleneck, ok && out == executor.Success)
	s.journalRecords([]TaskKey{KeyFor(st, t)})
	if out == executor.Success {
		delete(s.pendingSince, t.ID)
	}
	if node := s.rt.Clu.Node(m.Executor); node != nil {
		s.offerNode(node)
	}
}

// ---- Resource Monitor side --------------------------------------------------

// Heartbeat implements spark.Scheduler: flush the DB write queue (the
// helper thread's service period), run the straggler detectors, and offer
// the reporting node.
func (s *RUPAM) Heartbeat(nodeName string, nm *monitor.NodeMetrics) {
	s.db.Flush()
	s.noteFreq(nodeName, nm)
	if !s.cfg.DisableMemAware {
		s.reclaimMemory(nodeName, nm)
	}
	if !s.cfg.DisableGPURace {
		s.raceGPUTasks()
	}
	s.detectResourceStragglers()
	if node := s.rt.Clu.Node(nodeName); node != nil {
		s.offerNode(node)
	}
}

// noteFreq tracks each node's reported CPU frequency against its spec —
// Table I's cpufreq as a *dynamic* metric. A node entering a degraded
// (fail-slow) window has its best-node locks released so the CharDB
// stops steering tasks onto throttled hardware; when the heartbeat shows
// spec frequency again the node leaves the degraded set and locks are
// relearned from fresh completions.
func (s *RUPAM) noteFreq(nodeName string, nm *monitor.NodeMetrics) {
	node := s.rt.Clu.Node(nodeName)
	if node == nil || nm == nil || nm.CPUFreq <= 0 {
		return
	}
	slow := nm.CPUFreq < node.Spec.FreqGHz*0.999
	if slow && !s.degraded[nodeName] {
		s.degraded[nodeName] = true
		released := s.db.ReleaseNodeLocks(nodeName)
		s.LocksReleased += len(released)
		s.journalRecords(released)
	} else if !slow && s.degraded[nodeName] {
		delete(s.degraded, nodeName)
	}
}

// reclaimMemory is the §III-C3 memory-straggler path: when a node reports
// critically low free memory, kill its hungriest running task before the
// OS kills the JVM; the task re-enters the queues and lands somewhere
// roomier.
func (s *RUPAM) reclaimMemory(nodeName string, nm *monitor.NodeMetrics) {
	ex := s.rt.Execs[nodeName]
	if ex == nil || ex.Down() {
		return
	}
	if float64(ex.HeapFree()) >= s.cfg.LowMemFrac*float64(ex.Heap().Capacity()) {
		return
	}
	// Cheapest relief first: drop cached partitions (they can be
	// re-fetched) before killing a running task.
	want := int64(2*s.cfg.LowMemFrac*float64(ex.Heap().Capacity())) - ex.HeapFree()
	if ex.ReclaimCache(want) > 0 &&
		float64(ex.HeapFree()) >= s.cfg.LowMemFrac*float64(ex.Heap().Capacity()) {
		return
	}
	var victim *executor.Run
	for _, r := range ex.Running() {
		if victim == nil || r.Task().Demand.PeakMemory > victim.Task().Demand.PeakMemory {
			victim = r
		}
	}
	if victim != nil && victim.Task().Demand.PeakMemory > 0 {
		s.rt.MemKills++
		victim.Kill(true)
	}
}

// detectResourceStragglers extends checkSpeculatableTasks with history:
// a task that has already run much longer than its best-known time is
// straggling on an ill-suited node and becomes a candidate for a copy on
// a better one, regardless of Spark's stage-quantile gate (§III-C3).
func (s *RUPAM) detectResourceStragglers() {
	now := s.rt.Eng.Now()
	for _, n := range s.rt.Clu.Nodes {
		ex := s.rt.Execs[n.Name()]
		if ex == nil {
			continue
		}
		for _, r := range ex.Running() {
			t := r.Task()
			if s.rt.StageOf(t) == nil {
				continue // another tenant's attempt on the shared executor
			}
			rec := s.db.Lookup(keyByRuntime(s.rt, t))
			if rec == nil || rec.BestTime == 0 {
				continue
			}
			// A lock-compatible node is normally exempt (the task is
			// already on hardware as good as its best), but not when the
			// node's heartbeats show it running below spec: the spec
			// comparison no longer describes reality there.
			if s.lockCompatible(rec, n.Name()) && !s.degraded[n.Name()] {
				continue
			}
			if now-r.Metrics().Launch > 1.5*rec.BestTime+1 {
				s.rt.MarkSpeculatable(t)
			}
		}
	}
}

// raceGPUTasks marks GPU-capable tasks running on CPUs as speculatable
// when an accelerator is idle somewhere — the OpenBLAS/NVBLAS
// dual-version race of §III-C3.
func (s *RUPAM) raceGPUTasks() {
	idleGPU := false
	for _, n := range s.rt.Clu.Nodes {
		if n.GPU.Idle() > 0 && s.rt.CanRunOn(n.Name()) {
			idleGPU = true
			break
		}
	}
	if !idleGPU {
		return
	}
	now := s.rt.Eng.Now()
	for _, n := range s.rt.Clu.Nodes {
		ex := s.rt.Execs[n.Name()]
		if ex == nil {
			continue
		}
		for _, r := range ex.Running() {
			t := r.Task()
			if s.rt.StageOf(t) == nil {
				continue // another tenant's attempt on the shared executor
			}
			if t.Demand.GPUCapable() && !r.Metrics().UsedGPU &&
				now-r.Metrics().Launch > s.cfg.GPURaceMinRun {
				s.rt.MarkSpeculatable(t)
			}
		}
	}
}

// offerNode inserts the node into every resource queue it currently
// qualifies for.
func (s *RUPAM) offerNode(node *cluster.Node) {
	name := node.Name()
	ex := s.rt.Execs[name]
	if ex == nil || !s.rt.CanRunOn(name) {
		return
	}
	running := ex.RunningTasks()
	cores := node.Spec.Cores
	// A node with a free core is always offerable; beyond that, only
	// under-utilized dimensions are over-committed, up to the cap.
	hasFreeCore := running < cores
	overcommitOK := float64(running) < s.cfg.OvercommitFactor*float64(cores)
	if !hasFreeCore && !overcommitOK {
		return
	}
	thr := s.cfg.UtilThreshold
	flight := s.inFlight[name]
	if flight == nil {
		flight = new([NumResources]int)
		s.inFlight[name] = flight
	}
	add := func(r Resource, cap, util float64, ok bool) {
		if !ok || flight[r] >= dimSlots(node, r) {
			return
		}
		s.offerSeq++
		s.nodeQ[r] = append(s.nodeQ[r], nodeOffer{node: name, cap: cap, util: util, seq: s.offerSeq})
	}
	cpuUtil := node.CPUUtil()
	diskUtil := node.DiskUtil()
	// CPU offers never over-commit: stacking two compute-bound tasks on a
	// core halves both. Over-commit happens through the other dimensions,
	// whose tasks leave the cores mostly idle.
	add(CPU, node.Spec.FreqGHz, cpuUtil, hasFreeCore)
	free := ex.ProjectedFree()
	// Memory offers carry arbitrary task mixes, so beyond the core count
	// they are gated on the node's compute and disk health — over-commit
	// must overlap *different* demands, not pile identical ones (§III-C2).
	add(Mem, float64(ex.Heap().Capacity()), 1-float64(free)/float64(ex.Heap().Capacity()),
		free > 256*cluster.MB && (hasFreeCore || (cpuUtil < thr && diskUtil < thr)))
	add(Disk, node.Spec.DiskReadBW+node.Spec.DiskWriteBW, diskUtil, hasFreeCore || diskUtil < thr)
	netUtil := node.NetUtil()
	add(Net, node.Spec.NetBandwidth, netUtil, hasFreeCore || netUtil < thr)
	// A GPU offer is one accelerator slot: attempts already heading for
	// this node's GPUs (launched but not yet in their compute phase)
	// count against the idle total, otherwise the queue hands out the
	// same GPU many times and the surplus tasks land on the GPU node's
	// slow cores.
	gpuWant := 0
	for _, run := range ex.Running() {
		if run.Task().Demand.GPUCapable() && !run.Metrics().UsedGPU {
			gpuWant++
		}
	}
	add(GPU, float64(node.GPU.Idle()), node.GPU.Utilization(), node.GPU.Idle() > gpuWant)
}

// ---- Dispatcher (Algorithm 2) ----------------------------------------------

// Schedule implements spark.Scheduler: drain the resource queues
// round-robin, matching each dequeued node with the best task of that
// dimension.
func (s *RUPAM) Schedule() {
	for {
		res, offer, ok := s.dequeueRR()
		if !ok {
			break
		}
		d := s.rt.NewDecision(s.Name(), offer.node)
		d.SetQueue(res.String(), offer.cap, offer.util)
		t, lvl, heuristic := s.pickTask(res, offer.node, d)
		spec := false
		if t == nil {
			t, lvl = s.pickSpeculative(res, offer.node, d)
			if t == nil {
				continue
			}
			s.rt.ClearSpeculatable(t)
			spec = true
			heuristic = "speculative-copy"
		}
		if run := s.rt.Launch(t, offer.node, executor.Options{Locality: lvl, Speculative: spec}); run != nil {
			d.SetWinner(t.ID, heuristic, lvl.String(), spec)
			d.Commit()
			s.noteLaunch(offer.node, run, res)
			// The node may still have capacity; offer it again so a
			// single heartbeat can fill a whole machine.
			s.reofferNode(offer.node)
		} else if t.State == task.Pending {
			// The runtime refused the launch (node lost mid-round, parent
			// outputs rolled back, blacklist): pickTask already removed the
			// task from its queue, so put it back or it is silently dropped.
			if st := s.rt.StageOf(t); st != nil {
				s.enqueue(st, t)
			}
		}
	}
	s.rescueStarvation()
}

// noteLaunch records the dimension that placed an attempt on a node.
func (s *RUPAM) noteLaunch(node string, run *executor.Run, res Resource) {
	if rec := s.db.Lookup(KeyFor(run.Stage(), run.Task())); rec == nil || rec.Runs == 0 {
		s.UncharacterizedLaunches++
	}
	f := s.inFlight[node]
	if f == nil {
		f = new([NumResources]int)
		s.inFlight[node] = f
	}
	f[res]++
	s.dimOf[run] = res
}

// dimSlots bounds concurrent tasks per dimension on a node: CPU tasks get
// one core each; disk-bound tasks are limited to what the device serves
// without collapsing (an SSD sustains more concurrent streams than an
// HDD); network-bound tasks scale with NIC bandwidth; memory-bound tasks
// are bounded by cores (they still compute).
func dimSlots(node *cluster.Node, r Resource) int {
	switch r {
	case CPU:
		return node.Spec.Cores
	case Disk:
		if node.Spec.SSD {
			return 12
		}
		return 6
	case Net:
		slots := int(node.Spec.NetBandwidth / cluster.GbE(1) * 3)
		if slots < 8 {
			slots = 8
		}
		return slots
	case Mem:
		return node.Spec.Cores
	case GPU:
		return node.Spec.GPUs
	}
	return node.Spec.Cores
}

// reofferNode re-inserts a node into the queues it still qualifies for.
func (s *RUPAM) reofferNode(name string) {
	if node := s.rt.Clu.Node(name); node != nil {
		s.offerNode(node)
	}
}

// dequeueRR pops the best node offer from the next non-empty resource
// queue in round-robin order (or fixed order under the DisableRR
// ablation), so no single resource dimension starves the others.
func (s *RUPAM) dequeueRR() (Resource, nodeOffer, bool) {
	for k := 0; k < NumResources; k++ {
		idx := (s.rrIdx + k) % NumResources
		if s.cfg.DisableRR {
			idx = k
		}
		res := Resources[idx]
		q := s.nodeQ[res]
		if len(q) == 0 {
			continue
		}
		best := 0
		for i := 1; i < len(q); i++ {
			if q[i].better(q[best]) {
				best = i
			}
		}
		offer := q[best]
		s.nodeQ[res] = append(q[:best], q[best+1:]...)
		if !s.cfg.DisableRR {
			s.rrIdx = (idx + 1) % NumResources
		}
		if !s.rt.CanRunOn(offer.node) {
			continue
		}
		return res, offer, true
	}
	return CPU, nodeOffer{}, false
}

// recDetail summarizes a CharDB record for the decision audit. Call sites
// guard with d != nil so the disabled path never formats.
func recDetail(rec *Record) string {
	if rec == nil || rec.Runs == 0 {
		return "uncharacterized"
	}
	return fmt.Sprintf("runs %d, best %.2fs on %s, peak-mem %dMB",
		rec.Runs, rec.BestTime, rec.OptExecutor, rec.PeakMemory/(1<<20))
}

// pickTask implements Algorithm 2's schedule_task: among pending tasks of
// the resource dimension, honor best-node locks, require a memory fit,
// take a PROCESS_LOCAL match immediately, and otherwise return the task
// with the best locality on the node. The returned string names the
// heuristic that selected the task, for the decision audit; candidates and
// rejection reasons are recorded on d (nil when tracing is off).
func (s *RUPAM) pickTask(res Resource, node string, d *tracing.Decision) (*task.Task, hdfs.Locality, string) {
	q := s.taskQ[res]
	freeMem := int64(1) << 62
	if !s.cfg.DisableMemAware {
		if ex := s.rt.Execs[node]; ex != nil {
			// Leave GC headroom: a heap packed to the rim collects
			// constantly (§IV-D), so admission stops short of full.
			freeMem = ex.ProjectedFree() - int64(0.12*float64(ex.Heap().Capacity()))
		}
	}
	now := s.rt.Eng.Now()
	overCore := false
	if ex := s.rt.Execs[node]; ex != nil {
		if n := s.rt.Clu.Node(node); n != nil {
			overCore = ex.RunningTasks() >= n.Spec.Cores
		}
	}

	// Compact stale entries (launched or finished elsewhere) first.
	live := q[:0]
	for _, t := range q {
		if t.State == task.Pending {
			live = append(live, t)
		}
	}
	s.taskQ[res] = live

	var best *task.Task
	bestLvl := hdfs.Any + 1
	heuristic := ""
	var lockedFallback *task.Task

scan:
	for _, t := range live {
		if s.rt.TaskBlockedOn(t.ID, node) {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "blacklisted-pairing", "")
			}
			continue // blacklisted pairing after repeated failures there
		}
		rec := s.db.Lookup(keyByRuntime(s.rt, t))
		// Over-commit is only for tasks whose bottleneck is known to
		// leave the cores idle; an uncharacterized task gets a real core
		// slot or waits (§III-C2's "overlap tasks with different resource
		// demands" requires knowing the demands).
		if overCore && (rec == nil || rec.Runs == 0) {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "uncharacterized-overcommit", recDetail(rec))
			}
			continue
		}
		locked := !s.cfg.DisableLocking && rec != nil && rec.Locked(s.cfg.LockAfterRuns)
		if locked && rec.GPU {
			// GPU tasks are raced across GPU and CPU nodes (§III-C3),
			// never pinned: with only two accelerators, pinning would
			// serialize the whole stage behind them.
			locked = false
		}
		lockExpired := locked && now-s.pendingSince[t.ID] > s.cfg.LockTimeout

		if t.Demand.PeakMemory > freeMem {
			// Exception mirroring Algorithm 2 lines 13-16: a fully
			// characterized task locked to this very node runs here even
			// under pressure — history says this is its best home.
			if locked && rec.OptExecutor == node && len(rec.HistoryResource) >= NumResources {
				if d != nil {
					d.Candidate(t.ID, t.LocalityOn(node).String(), "", recDetail(rec))
				}
				best, bestLvl, heuristic = t, t.LocalityOn(node), "memory-exception-lock"
				break scan
			}
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "no-mem-fit",
					fmt.Sprintf("needs %dMB, %dMB usable; %s", t.Demand.PeakMemory/(1<<20), freeMem/(1<<20), recDetail(rec)))
			}
			continue
		}
		if rec != nil && rec.OOMNodes[node] && !lockExpired {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "oom-history-on-node", recDetail(rec))
			}
			continue
		}
		if locked && !lockExpired {
			if s.lockCompatible(rec, node) {
				if d != nil {
					d.Candidate(t.ID, t.LocalityOn(node).String(), "", recDetail(rec))
				}
				best, bestLvl, heuristic = t, t.LocalityOn(node), "lock-compatible"
				break scan
			}
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "lock-incompatible", recDetail(rec))
			}
			if lockedFallback == nil {
				lockedFallback = t
			}
			continue
		}
		// Uncharacterized tasks keep Spark's locality preference: until
		// the scheduler knows a task's bottleneck it has no grounds to
		// trade locality away, so for a short wait only nodes holding (or
		// beating the capability of) the task's preferred locations take
		// it — "a simple heuristic that does not sacrifice data locality"
		// (§I).
		if (rec == nil || rec.Runs == 0) && len(t.PrefNodes) > 0 && t.CachedOn == "" &&
			t.LocalityOn(node) == hdfs.Any &&
			now-s.pendingSince[t.ID] <= s.cfg.UnknownPatience &&
			s.anyPrefFree(t) {
			// Waiting is only worthwhile while some preferred node could
			// actually take the task soon.
			if d != nil {
				d.Candidate(t.ID, hdfs.Any.String(), "waiting-for-locality",
					fmt.Sprintf("uncharacterized; prefers %v", t.PrefNodes))
			}
			continue
		}
		// Cache affinity with a capability override: a task whose cached
		// partition sits on a node at least as capable (along the task's
		// bottleneck) waits briefly for that node instead of being
		// stolen — but a more capable node may always take it, moving
		// the partition along (§III-C1's "tries different assignments").
		if t.CachedOn != "" && t.CachedOn != node &&
			now-s.pendingSince[t.ID] <= s.cfg.LockTimeout &&
			!s.nodeBetterFor(node, t.CachedOn, res) {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "cache-affinity-wait",
					fmt.Sprintf("partition cached on %s; %s", t.CachedOn, recDetail(rec)))
			}
			continue
		}
		lvl := t.LocalityOn(node)
		if lvl == hdfs.ProcessLocal {
			if d != nil {
				d.Candidate(t.ID, lvl.String(), "", recDetail(rec))
			}
			best, bestLvl, heuristic = t, lvl, "process-local"
			break scan
		}
		if d != nil {
			d.Candidate(t.ID, lvl.String(), "", recDetail(rec))
		}
		if lvl < bestLvl {
			best, bestLvl, heuristic = t, lvl, "best-locality"
		}
	}

	if best == nil && lockedFallback != nil && now-s.pendingSince[lockedFallback.ID] > s.cfg.LockTimeout {
		// Anti-starvation: a locked task has waited too long; run it here.
		best, bestLvl, heuristic = lockedFallback, lockedFallback.LocalityOn(node), "lock-timeout-fallback"
	}
	if best == nil {
		return nil, hdfs.Any, ""
	}
	s.taskQ[res] = removeTask(live, best)
	return best, bestLvl, heuristic
}

func removeTask(q []*task.Task, t *task.Task) []*task.Task {
	for i, x := range q {
		if x == t {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// anyPrefFree reports whether any of the task's preferred nodes has a
// free core slot (i.e. waiting for locality could pay off).
func (s *RUPAM) anyPrefFree(t *task.Task) bool {
	for _, p := range t.PrefNodes {
		ex := s.rt.Execs[p]
		n := s.rt.Clu.Node(p)
		if ex == nil || n == nil || ex.Down() {
			continue
		}
		if ex.RunningTasks() < n.Spec.Cores {
			return true
		}
	}
	return false
}

// nodeBetterFor reports whether candidate strictly beats incumbent along
// the given resource dimension.
func (s *RUPAM) nodeBetterFor(candidate, incumbent string, dim Resource) bool {
	c := s.rt.Clu.Node(candidate)
	i := s.rt.Clu.Node(incumbent)
	if c == nil || i == nil {
		return true
	}
	switch dim {
	case Mem:
		return c.Spec.MemBytes > i.Spec.MemBytes
	case Disk:
		return c.Spec.DiskReadBW+c.Spec.DiskWriteBW > i.Spec.DiskReadBW+i.Spec.DiskWriteBW
	case Net:
		return c.Spec.NetBandwidth > i.Spec.NetBandwidth
	case GPU:
		return c.Spec.GPUs > i.Spec.GPUs
	default:
		return c.Spec.FreqGHz > i.Spec.FreqGHz
	}
}

// lockCompatible reports whether node is at least as capable as the
// locked task's best node along the task's bottleneck dimension — locking
// pins tasks to hardware, and equally-endowed siblings of the best node
// count as that hardware (otherwise eight tasks locked to one 8-core
// machine would serialize).
func (s *RUPAM) lockCompatible(rec *Record, nodeName string) bool {
	if rec.OptExecutor == nodeName {
		return true
	}
	node := s.rt.Clu.Node(nodeName)
	opt := s.rt.Clu.Node(rec.OptExecutor)
	if node == nil || opt == nil {
		return false
	}
	r, ok := s.bottleneckOf(rec)
	if !ok {
		return false
	}
	switch r {
	case CPU:
		return node.Spec.FreqGHz >= opt.Spec.FreqGHz
	case Mem:
		return node.Spec.MemBytes >= opt.Spec.MemBytes
	case Disk:
		return node.Spec.DiskReadBW+node.Spec.DiskWriteBW >= opt.Spec.DiskReadBW+opt.Spec.DiskWriteBW
	case Net:
		return node.Spec.NetBandwidth >= opt.Spec.NetBandwidth
	case GPU:
		return node.Spec.GPUs >= opt.Spec.GPUs
	}
	return false
}

// pickSpeculative implements Algorithm 2's straggler path: when no pending
// task fits the dequeued node, launch a copy of a straggler — restricted
// to GPU-capable stragglers when the offer came from the GPU queue.
func (s *RUPAM) pickSpeculative(res Resource, node string, d *tracing.Decision) (*task.Task, hdfs.Locality) {
	ex := s.rt.Execs[node]
	for _, t := range s.rt.SpeculativeTasks() {
		runs := s.rt.RunningAttempts(t)
		if len(runs) != 1 {
			continue
		}
		// SpecCopyAllowed folds in the same-node, blacklist, degraded-node
		// and per-stage copy-cap gates shared with the stock scheduler.
		if !s.rt.SpecCopyAllowed(t, node) {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "spec-copy-not-allowed", "")
			}
			continue
		}
		if res == GPU && !t.Demand.GPUCapable() {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "not-gpu-capable", "")
			}
			continue
		}
		if !s.cfg.DisableMemAware && ex != nil && t.Demand.PeakMemory > ex.ProjectedFree() {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "no-mem-fit", "")
			}
			continue
		}
		if !s.copyWorthwhile(t, runs[0], node) {
			if d != nil {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "copy-not-worthwhile",
					fmt.Sprintf("running on %s", runs[0].Metrics().Executor))
			}
			continue
		}
		return t, t.LocalityOn(node)
	}
	return nil, hdfs.Any
}

// copyWorthwhile gates speculative copies: a copy only makes sense on a
// node expected to beat the running attempt — an idle GPU for a
// CPU-stranded GPU task, the task's best-known node, or a substantially
// faster CPU.
func (s *RUPAM) copyWorthwhile(t *task.Task, cur *executor.Run, nodeName string) bool {
	node := s.rt.Clu.Node(nodeName)
	if node == nil {
		return false
	}
	if t.Demand.GPUCapable() && !cur.Metrics().UsedGPU && node.GPU.Idle() > 0 {
		// Admit only as many racing copies as there are idle GPUs,
		// counting copies already in flight toward this node's GPUs —
		// otherwise the copies themselves pile up on the GPU node's
		// (slow) cores.
		pendingWant := 0
		if ex := s.rt.Execs[nodeName]; ex != nil {
			for _, r := range ex.Running() {
				if r.Task().Demand.GPUCapable() && !r.Metrics().UsedGPU {
					pendingWant++
				}
			}
		}
		return node.GPU.Idle() > pendingWant
	}
	if rec := s.db.Lookup(keyByRuntime(s.rt, t)); rec != nil && rec.OptExecutor == nodeName {
		return true
	}
	curNode := s.rt.Clu.Node(cur.Metrics().Executor)
	if curNode == nil {
		return true
	}
	// Judge the running attempt's node by its *reported* frequency, not
	// its spec: inside a CPUDegrade window a nominally fast node is the
	// straggler's whole problem, and a healthy-but-slower-on-paper node
	// can genuinely beat it.
	curFreq := curNode.Spec.FreqGHz
	if nm := s.rt.Mon.Latest(curNode.Name()); nm != nil && nm.CPUFreq > 0 && nm.CPUFreq < curFreq {
		curFreq = nm.CPUFreq
	}
	return node.Spec.FreqGHz > 1.3*curFreq
}

// rescueStarvation is a liveness net: if nothing is running anywhere and
// work is pending, force the first pending task onto the roomiest node.
func (s *RUPAM) rescueStarvation() {
	for _, n := range s.rt.Clu.Nodes {
		if ex := s.rt.Execs[n.Name()]; ex != nil && ex.RunningTasks() > 0 {
			return
		}
	}
	var t *task.Task
	for _, q := range s.taskQ {
		for _, c := range q {
			if c.State == task.Pending && (t == nil || c.ID < t.ID) {
				t = c
				break
			}
		}
	}
	if t == nil {
		return
	}
	var bestNode string
	var bestFree int64 = -1
	for _, n := range s.rt.Clu.Nodes {
		ex := s.rt.Execs[n.Name()]
		if ex == nil || !s.rt.CanRunOn(n.Name()) {
			continue
		}
		if ex.HeapFree() > bestFree {
			bestFree, bestNode = ex.HeapFree(), n.Name()
		}
	}
	if bestNode != "" {
		if run := s.rt.Launch(t, bestNode, executor.Options{Locality: t.LocalityOn(bestNode)}); run != nil {
			d := s.rt.NewDecision(s.Name(), bestNode)
			if d != nil {
				d.Note("liveness net: nothing running anywhere, forced onto roomiest node")
				d.SetWinner(t.ID, "starvation-rescue", t.LocalityOn(bestNode).String(), false)
				d.Commit()
			}
			s.noteLaunch(bestNode, run, Mem)
		}
	}
}

// keyByRuntime resolves a task's DB key via its stage in the runtime.
func keyByRuntime(rt *spark.Runtime, t *task.Task) TaskKey {
	st := rt.StageOf(t)
	if st == nil {
		return TaskKey{Partition: t.Index}
	}
	return KeyFor(st, t)
}

// sortOffers orders node offers for deterministic inspection in tests.
func sortOffers(offers []nodeOffer) {
	sort.Slice(offers, func(i, j int) bool { return offers[i].better(offers[j]) })
}
