package core

import (
	"sort"

	"rupam/internal/task"
)

// TaskKey identifies "the same task" across jobs and iterations: the
// stage's computation signature plus the partition index (§III-B2: data
// centers run the same application on similarly-patterned input
// periodically, so history transfers).
type TaskKey struct {
	Signature string
	Partition int
}

// Record is one task's accumulated history — the right-hand columns of
// Table I.
type Record struct {
	Key TaskKey

	// Latest observed metrics.
	ComputeTime  float64
	GPU          bool
	PeakMemory   int64
	ShuffleRead  float64
	ShuffleWrite float64

	// OptExecutor is the node with the lowest observed runtime so far,
	// and BestTime that runtime.
	OptExecutor string
	BestTime    float64

	// HistoryResource is the set of bottleneck resources TM has
	// determined for this task over its lifetime.
	HistoryResource map[Resource]bool
	// BottleneckCounts tallies how often each resource was the task's
	// bottleneck; classification follows the majority so that one noisy
	// run cannot re-route a task (§III-C1's fluctuation damping).
	BottleneckCounts [NumResources]int

	// Runs counts successful observations.
	Runs int
	// OOMNodes remembers nodes where the task hit out-of-memory, so the
	// dispatcher avoids repeating the mistake.
	OOMNodes map[string]bool
}

// MajorityBottleneck returns the most frequently observed bottleneck and
// whether any observation exists; ties go to the lowest Resource value,
// which the caller breaks with the freshest classification.
func (r *Record) MajorityBottleneck() (Resource, int, bool) {
	best, n := CPU, 0
	for i, c := range r.BottleneckCounts {
		if c > n {
			best, n = Resource(i), c
		}
	}
	return best, n, n > 0
}

// Locked reports whether the task should be pinned to OptExecutor: either
// the paper's strict Algorithm 2 condition (history covers all five
// resources) or the practical condition of lockAfterRuns stable
// observations (§III-C1's "locking of a task to the node on which it
// gives the best observed performance").
func (r *Record) Locked(lockAfterRuns int) bool {
	if r.OptExecutor == "" {
		return false
	}
	if len(r.HistoryResource) >= NumResources {
		return true
	}
	return lockAfterRuns > 0 && r.Runs >= lockAfterRuns
}

// dbOp is one queued write for the helper thread.
type dbOp struct {
	key TaskKey
	rec Record
}

// CharDB is the task-characteristics database (DB_taskchar). Writes go
// through an asynchronous write-behind queue served by a helper, exactly
// as §III-B2 describes; reads consult the queue before the backing store
// so in-flight updates are visible.
type CharDB struct {
	store map[TaskKey]*Record
	queue []dbOp

	// Reads/Writes/QueueHits count accesses for overhead reporting.
	Reads     int
	Writes    int
	QueueHits int
}

// NewCharDB returns an empty database.
func NewCharDB() *CharDB {
	return &CharDB{store: make(map[TaskKey]*Record)}
}

// KeyFor derives the database key for a task in a stage.
func KeyFor(st *task.Stage, t *task.Task) TaskKey {
	return TaskKey{Signature: st.Signature, Partition: t.Index}
}

// Lookup returns the task's record, consulting pending writes first, or
// nil if the task has never been observed.
func (db *CharDB) Lookup(key TaskKey) *Record {
	db.Reads++
	for i := len(db.queue) - 1; i >= 0; i-- {
		if db.queue[i].key == key {
			db.QueueHits++
			rec := db.queue[i].rec
			return &rec
		}
	}
	if r, ok := db.store[key]; ok {
		rec := *r
		return &rec
	}
	return nil
}

// MeanComputeTime averages the latest observed compute time over every
// flushed record — the elastic autoscaler's per-task work predictor when
// sizing spot-vs-on-demand acquisitions. Returns false on an empty store.
func (db *CharDB) MeanComputeTime() (float64, bool) {
	if len(db.store) == 0 {
		return 0, false
	}
	var sum float64
	for _, r := range db.store {
		sum += r.ComputeTime
	}
	return sum / float64(len(db.store)), true
}

// Update enqueues a metrics observation for the task; it merges with the
// task's existing record (flushed or queued) and appends to the write
// queue.
func (db *CharDB) Update(key TaskKey, m *task.Metrics, bottleneck Resource, hasBottleneck bool) {
	db.Writes++
	rec := db.Lookup(key)
	db.Reads-- // internal read, not an external access
	if rec == nil {
		rec = &Record{
			Key:             key,
			HistoryResource: make(map[Resource]bool),
			OOMNodes:        make(map[string]bool),
		}
	}
	if rec.HistoryResource == nil {
		rec.HistoryResource = make(map[Resource]bool)
	}
	if rec.OOMNodes == nil {
		rec.OOMNodes = make(map[string]bool)
	}
	if m.OOM {
		rec.OOMNodes[m.Executor] = true
	} else if !m.Killed {
		if rec.Runs == 0 {
			rec.ComputeTime = m.ComputeTime
			rec.ShuffleRead = m.ShuffleReadTime
			rec.ShuffleWrite = m.ShuffleWriteTime
		} else {
			// Exponential smoothing damps run-to-run fluctuations (a task
			// that paid a one-off slow shuffle must not flip-flop between
			// bottleneck classes every iteration, §III-C1).
			const alpha = 0.5
			rec.ComputeTime = (1-alpha)*rec.ComputeTime + alpha*m.ComputeTime
			rec.ShuffleRead = (1-alpha)*rec.ShuffleRead + alpha*m.ShuffleReadTime
			rec.ShuffleWrite = (1-alpha)*rec.ShuffleWrite + alpha*m.ShuffleWriteTime
		}
		rec.GPU = rec.GPU || m.UsedGPU
		rec.PeakMemory = m.PeakMemory
		rec.Runs++
		if hasBottleneck {
			rec.HistoryResource[bottleneck] = true
			rec.BottleneckCounts[bottleneck]++
		}
		d := m.Duration()
		if rec.BestTime == 0 || d < rec.BestTime {
			rec.BestTime = d
			rec.OptExecutor = m.Executor
		}
	}
	db.queue = append(db.queue, dbOp{key: key, rec: *rec})
}

// Flush drains the write queue into the backing store (the helper
// thread's periodic service); returns the number of writes applied.
func (db *CharDB) Flush() int {
	n := len(db.queue)
	for _, op := range db.queue {
		rec := op.rec
		db.store[op.key] = &rec
	}
	db.queue = db.queue[:0]
	return n
}

// Size returns the number of distinct tasks with flushed records.
func (db *CharDB) Size() int { return len(db.store) }

// PendingWrites returns the write-queue depth.
func (db *CharDB) PendingWrites() int { return len(db.queue) }

// Clear empties the database (the paper clears DB_taskchar between
// repetitions of each experiment).
func (db *CharDB) Clear() {
	db.store = make(map[TaskKey]*Record)
	db.queue = nil
}

// ForgetNode erases a lost node from every record: best-node locks naming
// it are released (the lock would otherwise pin tasks to a corpse until
// timeout) and its OOM entries are dropped, since a recovered node comes
// back with a fresh heap. It returns the keys of the records it changed,
// sorted, so callers can re-journal them.
func (db *CharDB) ForgetNode(node string) []TaskKey {
	db.Flush()
	var changed []TaskKey
	for key, rec := range db.store {
		touched := false
		if rec.OptExecutor == node {
			rec.OptExecutor = ""
			rec.BestTime = 0
			touched = true
		}
		if rec.OOMNodes[node] {
			delete(rec.OOMNodes, node)
			touched = true
		}
		if touched {
			changed = append(changed, key)
		}
	}
	sortKeys(changed)
	return changed
}

// ReleaseNodeLocks releases every best-node lock naming node without
// touching the rest of the record, and returns the keys of the records it
// changed, sorted. The straggler detector calls it when a node turns
// fail-slow: the lock was learned on healthy hardware and would otherwise
// keep steering (and pinning) tasks onto a degraded machine until its gray
// failure cleared. Best times are relearned from the next completions.
func (db *CharDB) ReleaseNodeLocks(node string) []TaskKey {
	db.Flush()
	var changed []TaskKey
	for key, rec := range db.store {
		if rec.OptExecutor == node {
			rec.OptExecutor = ""
			rec.BestTime = 0
			changed = append(changed, key)
		}
	}
	sortKeys(changed)
	return changed
}

// sortKeys orders task keys by signature then partition, for deterministic
// iteration when re-journaling changed records.
func sortKeys(keys []TaskKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Signature != keys[j].Signature {
			return keys[i].Signature < keys[j].Signature
		}
		return keys[i].Partition < keys[j].Partition
	})
}
