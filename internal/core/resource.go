// Package core implements RUPAM, the paper's contribution: a
// heterogeneity-aware task scheduler that matches each task's dominant
// resource demand to the node currently best able to serve it, while
// preserving data locality where it does not hurt.
//
// The three components of Fig 4 map to:
//
//   - Resource Monitor (RM): package monitor feeds per-node heartbeats;
//     this package maintains the per-resource node priority queues
//     ("Resource Queue"), refilled as nodes report in or free capacity and
//     drained every scheduling round.
//   - Task Manager (TM): the task-characteristics database (CharDB, with
//     the paper's asynchronous write-behind helper), Algorithm 1
//     characterization, and the per-resource pending task queues
//     ("Task Queue").
//   - Dispatcher: Algorithm 2 — round-robin across resource queues,
//     memory-fit check, best-node locking, locality tie-breaking,
//     speculative stragglers (including the GPU/CPU dual-version race and
//     memory-straggler reclamation).
package core

// Resource is one of RUPAM's five scheduling dimensions.
type Resource int

// The five resource types of the paper's Resource and Task queues.
const (
	CPU Resource = iota
	Mem
	Disk
	Net
	GPU
)

// NumResources is the number of scheduling dimensions (the "5" in
// Algorithm 2's historyResource.size check).
const NumResources = 5

// Resources lists all dimensions in round-robin dispatch order.
var Resources = [NumResources]Resource{CPU, Mem, Disk, Net, GPU}

// String names the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Mem:
		return "mem"
	case Disk:
		return "disk"
	case Net:
		return "net"
	case GPU:
		return "gpu"
	default:
		return "unknown"
	}
}
