package core

import (
	"encoding/json"
	"io"
	"log"
	"sort"

	"rupam/internal/task"
)

// persistedRecord is the JSON form of a Record; maps keyed by Resource
// are flattened to string keys for stability.
type persistedRecord struct {
	Signature string `json:"signature"`
	Partition int    `json:"partition"`

	ComputeTime  float64 `json:"compute_time"`
	GPU          bool    `json:"gpu,omitempty"`
	PeakMemory   int64   `json:"peak_memory"`
	ShuffleRead  float64 `json:"shuffle_read"`
	ShuffleWrite float64 `json:"shuffle_write"`

	OptExecutor string  `json:"opt_executor,omitempty"`
	BestTime    float64 `json:"best_time,omitempty"`
	Runs        int     `json:"runs"`

	History          []string       `json:"history,omitempty"`
	BottleneckCounts map[string]int `json:"bottleneck_counts,omitempty"`
	OOMNodes         []string       `json:"oom_nodes,omitempty"`
}

// Save serializes the database (flushed state plus pending writes) as
// JSON. The paper's DB_taskchar outlives a single application run — data
// centers re-run the same applications periodically (§III-B2) — so the
// scheduler can warm-start from a previous run's characterization.
func (db *CharDB) Save(w io.Writer) error {
	db.Flush()
	out := make([]persistedRecord, 0, len(db.store))
	for key, rec := range db.store {
		p := persistedRecord{
			Signature:    key.Signature,
			Partition:    key.Partition,
			ComputeTime:  rec.ComputeTime,
			GPU:          rec.GPU,
			PeakMemory:   rec.PeakMemory,
			ShuffleRead:  rec.ShuffleRead,
			ShuffleWrite: rec.ShuffleWrite,
			OptExecutor:  rec.OptExecutor,
			BestTime:     rec.BestTime,
			Runs:         rec.Runs,
		}
		for r := range rec.HistoryResource {
			p.History = append(p.History, r.String())
		}
		sort.Strings(p.History)
		for i, c := range rec.BottleneckCounts {
			if c > 0 {
				if p.BottleneckCounts == nil {
					p.BottleneckCounts = make(map[string]int)
				}
				p.BottleneckCounts[Resource(i).String()] = c
			}
		}
		for n := range rec.OOMNodes {
			p.OOMNodes = append(p.OOMNodes, n)
		}
		sort.Strings(p.OOMNodes)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Signature != out[j].Signature {
			return out[i].Signature < out[j].Signature
		}
		return out[i].Partition < out[j].Partition
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// resourceByName inverts Resource.String.
func resourceByName(s string) (Resource, bool) {
	for _, r := range Resources {
		if r.String() == s {
			return r, true
		}
	}
	return CPU, false
}

// Load replaces the database's contents with previously saved records. A
// corrupt or truncated file (a crash mid-Save, a partial copy) is not
// fatal: the characterization history is a performance hint, not
// correctness state, so Load logs the problem and starts empty rather
// than refusing to schedule.
func (db *CharDB) Load(r io.Reader) error {
	var in []persistedRecord
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		log.Printf("chardb: unreadable task-characteristics data (%v); starting with an empty database", err)
		db.Clear()
		return nil
	}
	db.Clear()
	for _, p := range in {
		rec := &Record{
			Key:             TaskKey{Signature: p.Signature, Partition: p.Partition},
			ComputeTime:     p.ComputeTime,
			GPU:             p.GPU,
			PeakMemory:      p.PeakMemory,
			ShuffleRead:     p.ShuffleRead,
			ShuffleWrite:    p.ShuffleWrite,
			OptExecutor:     p.OptExecutor,
			BestTime:        p.BestTime,
			Runs:            p.Runs,
			HistoryResource: make(map[Resource]bool),
			OOMNodes:        make(map[string]bool),
		}
		for _, name := range p.History {
			if res, ok := resourceByName(name); ok {
				rec.HistoryResource[res] = true
			}
		}
		for name, c := range p.BottleneckCounts {
			if res, ok := resourceByName(name); ok {
				rec.BottleneckCounts[res] = c
			}
		}
		for _, n := range p.OOMNodes {
			rec.OOMNodes[n] = true
		}
		db.store[rec.Key] = rec
	}
	return nil
}

// WarmStartFrom copies another scheduler's flushed database — the
// convenience path for back-to-back runs of the same application in one
// process (e.g. the warm-start benchmark).
func (s *RUPAM) WarmStartFrom(prev *RUPAM) {
	prev.db.Flush()
	s.db.Clear()
	for key, rec := range prev.db.store {
		copied := *rec
		copied.HistoryResource = make(map[Resource]bool, len(rec.HistoryResource))
		for k, v := range rec.HistoryResource {
			copied.HistoryResource[k] = v
		}
		copied.OOMNodes = make(map[string]bool, len(rec.OOMNodes))
		for k, v := range rec.OOMNodes {
			copied.OOMNodes[k] = v
		}
		s.db.store[key] = &copied
	}
}

// RecordCount is a test hook: distinct flushed records.
func (db *CharDB) RecordCount() int { return len(db.store) }

var _ = task.Pending // keep the task import for doc references
