package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rupam/internal/task"
)

// persistedRecord is the JSON form of a Record; maps keyed by Resource
// are flattened to string keys for stability.
type persistedRecord struct {
	Signature string `json:"signature"`
	Partition int    `json:"partition"`

	ComputeTime  float64 `json:"compute_time"`
	GPU          bool    `json:"gpu,omitempty"`
	PeakMemory   int64   `json:"peak_memory"`
	ShuffleRead  float64 `json:"shuffle_read"`
	ShuffleWrite float64 `json:"shuffle_write"`

	OptExecutor string  `json:"opt_executor,omitempty"`
	BestTime    float64 `json:"best_time,omitempty"`
	Runs        int     `json:"runs"`

	History          []string       `json:"history,omitempty"`
	BottleneckCounts map[string]int `json:"bottleneck_counts,omitempty"`
	OOMNodes         []string       `json:"oom_nodes,omitempty"`
}

// toPersisted flattens a record into its stable JSON form.
func toPersisted(key TaskKey, rec *Record) persistedRecord {
	p := persistedRecord{
		Signature:    key.Signature,
		Partition:    key.Partition,
		ComputeTime:  rec.ComputeTime,
		GPU:          rec.GPU,
		PeakMemory:   rec.PeakMemory,
		ShuffleRead:  rec.ShuffleRead,
		ShuffleWrite: rec.ShuffleWrite,
		OptExecutor:  rec.OptExecutor,
		BestTime:     rec.BestTime,
		Runs:         rec.Runs,
	}
	for r := range rec.HistoryResource {
		p.History = append(p.History, r.String())
	}
	sort.Strings(p.History)
	for i, c := range rec.BottleneckCounts {
		if c > 0 {
			if p.BottleneckCounts == nil {
				p.BottleneckCounts = make(map[string]int)
			}
			p.BottleneckCounts[Resource(i).String()] = c
		}
	}
	for n := range rec.OOMNodes {
		p.OOMNodes = append(p.OOMNodes, n)
	}
	sort.Strings(p.OOMNodes)
	return p
}

// fromPersisted rebuilds a live record from its JSON form.
func fromPersisted(p persistedRecord) *Record {
	rec := &Record{
		Key:             TaskKey{Signature: p.Signature, Partition: p.Partition},
		ComputeTime:     p.ComputeTime,
		GPU:             p.GPU,
		PeakMemory:      p.PeakMemory,
		ShuffleRead:     p.ShuffleRead,
		ShuffleWrite:    p.ShuffleWrite,
		OptExecutor:     p.OptExecutor,
		BestTime:        p.BestTime,
		Runs:            p.Runs,
		HistoryResource: make(map[Resource]bool),
		OOMNodes:        make(map[string]bool),
	}
	for _, name := range p.History {
		if res, ok := resourceByName(name); ok {
			rec.HistoryResource[res] = true
		}
	}
	for name, c := range p.BottleneckCounts {
		if res, ok := resourceByName(name); ok {
			rec.BottleneckCounts[res] = c
		}
	}
	for _, n := range p.OOMNodes {
		rec.OOMNodes[n] = true
	}
	return rec
}

// Save serializes the database (flushed state plus pending writes) as
// JSON. The paper's DB_taskchar outlives a single application run — data
// centers re-run the same applications periodically (§III-B2) — so the
// scheduler can warm-start from a previous run's characterization.
func (db *CharDB) Save(w io.Writer) error {
	db.Flush()
	out := make([]persistedRecord, 0, len(db.store))
	for key, rec := range db.store {
		out = append(out, toPersisted(key, rec))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Signature != out[j].Signature {
			return out[i].Signature < out[j].Signature
		}
		return out[i].Partition < out[j].Partition
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveFile writes the database to path crash-safely: the bytes land in a
// temporary file in the same directory, are synced, and only then renamed
// over the destination. A crash at any point leaves either the previous
// good snapshot or the complete new one — never a truncated half-write
// (rename within a directory is atomic on POSIX).
func (db *CharDB) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := db.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// resourceByName inverts Resource.String.
func resourceByName(s string) (Resource, bool) {
	for _, r := range Resources {
		if r.String() == s {
			return r, true
		}
	}
	return CPU, false
}

// Load replaces the database's contents with previously saved records.
// The input is decoded in full before anything is touched: a corrupt or
// truncated file (a crash mid-write through a non-atomic path, a partial
// copy) returns an error and leaves the database exactly as it was, so a
// warm-start that finds garbage keeps whatever good state it already had.
func (db *CharDB) Load(r io.Reader) error {
	var in []persistedRecord
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("chardb: unreadable task-characteristics data: %w", err)
	}
	db.Clear()
	for _, p := range in {
		rec := fromPersisted(p)
		db.store[rec.Key] = rec
	}
	return nil
}

// LoadFile loads the database from path. A missing file is an error the
// caller can test with os.IsNotExist; a corrupt file leaves the database
// untouched (see Load).
func (db *CharDB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Load(f)
}

// PutPayload marshals the task's current record (queued writes included)
// into the compact JSON payload journaled in write-ahead-log chardb-put
// records. The bool is false when the task has never been observed.
func (db *CharDB) PutPayload(key TaskKey) ([]byte, bool) {
	rec := db.Lookup(key)
	db.Reads-- // internal read, not an external access
	if rec == nil {
		return nil, false
	}
	b, err := json.Marshal(toPersisted(key, rec))
	if err != nil {
		return nil, false
	}
	return b, true
}

// InstallPayload decodes a chardb-put payload (see PutPayload) and installs
// it as the task's flushed record — the replay half of WAL-based recovery.
func (db *CharDB) InstallPayload(data []byte) error {
	var p persistedRecord
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("chardb: bad journaled record: %w", err)
	}
	rec := fromPersisted(p)
	db.store[rec.Key] = rec
	return nil
}

// WarmStartFrom copies another scheduler's flushed database — the
// convenience path for back-to-back runs of the same application in one
// process (e.g. the warm-start benchmark).
func (s *RUPAM) WarmStartFrom(prev *RUPAM) {
	prev.db.Flush()
	s.db.Clear()
	for key, rec := range prev.db.store {
		copied := *rec
		copied.HistoryResource = make(map[Resource]bool, len(rec.HistoryResource))
		for k, v := range rec.HistoryResource {
			copied.HistoryResource[k] = v
		}
		copied.OOMNodes = make(map[string]bool, len(rec.OOMNodes))
		for k, v := range rec.OOMNodes {
			copied.OOMNodes[k] = v
		}
		s.db.store[key] = &copied
	}
}

// RecordCount is a test hook: distinct flushed records.
func (db *CharDB) RecordCount() int { return len(db.store) }

var _ = task.Pending // keep the task import for doc references
