package core

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/rdd"
	"rupam/internal/spark"
	"rupam/internal/task"
)

func TestDisableRRFixedOrder(t *testing.T) {
	s := New(Config{DisableRR: true})
	w := newWorld(t)
	rt := spark.NewRuntime(w.eng, w.clu, s, spark.Config{})
	for _, n := range w.clu.Nodes {
		executor.New(w.eng, w.clu, n, rt.Cache, rt.Execs, executor.Config{
			HeapBytes: s.HeapFor(n), Seed: 1,
		})
	}
	for _, n := range w.clu.Nodes {
		s.offerNode(n)
	}
	// Fixed order always drains CPU first.
	res, _, ok := s.dequeueRR()
	if !ok || res != CPU {
		t.Fatalf("first dequeue = %v (ok=%v), want CPU under DisableRR", res, ok)
	}
	res2, _, _ := s.dequeueRR()
	if res2 != CPU {
		t.Fatalf("second dequeue = %v, want CPU again (fixed order)", res2)
	}
}

func TestMemoryStragglerReclaim(t *testing.T) {
	w := newWorld(t)
	ctx := rdd.NewContext("app", w.store, 1)
	// A stage whose tasks overflow the fast node's heap only if the
	// scheduler mis-places them; force the situation by disabling the
	// fit-check... instead test the reclaim hook directly.
	ctx.Read(w.store.CreateEven("in", 80*1e6, 4)).
		Map("m", rdd.Profile{CPUPerByte: 1000e-9, MemBase: 4 * cluster.GB}).
		Count("j")
	sched := New(Config{})
	rt := spark.NewRuntime(w.eng, w.clu, sched, spark.Config{Seed: 1})

	// Drive the run but inject memory pressure on "fast" mid-flight: fill
	// its heap so the heartbeat sees <5% free and kills the hungriest.
	w.eng.Schedule(3, func() {
		ex := rt.Execs["fast"]
		if ex == nil || ex.RunningTasks() == 0 {
			return
		}
		free := ex.Heap().Free()
		if free > ex.Heap().Capacity()/100 {
			ex.Heap().ForceAlloc(free - ex.Heap().Capacity()/200)
		}
		// The next heartbeat should trigger reclaimMemory; release the
		// artificial pressure shortly after so the run completes.
		w.eng.Schedule(2, func() {
			used := ex.Heap().Used()
			cacheB := rt.Cache.NodeBytes("fast")
			var taskB int64
			for _, r := range ex.Running() {
				taskB += r.Task().Demand.PeakMemory
			}
			if extra := used - cacheB - taskB; extra > 0 {
				ex.Heap().Release(extra)
			}
		})
	})
	res := rt.Run(ctx.App())
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s unfinished", tk)
		}
	}
	// The kill counter may or may not fire depending on timing; the test's
	// real assertion is that injection + reclaim never wedges the run.
}

func TestRescueStarvationLaunches(t *testing.T) {
	w := newWorld(t)
	s := New(Config{})
	rt := spark.NewRuntime(w.eng, w.clu, s, spark.Config{})
	for _, n := range w.clu.Nodes {
		executor.New(w.eng, w.clu, n, rt.Cache, rt.Execs, executor.Config{
			HeapBytes: s.HeapFor(n), Seed: 1,
		})
	}
	// A pending task with no offers anywhere: rescueStarvation must place
	// it rather than deadlock.
	st := &task.Stage{ID: 1, Signature: "x", Kind: task.ShuffleMap}
	tk := &task.Task{ID: 1, StageID: 1, Kind: task.ShuffleMap,
		Demand: task.Demand{CPUWork: 1, PeakMemory: cluster.MB}}
	st.Tasks = []*task.Task{tk}
	// The runtime normally wires stageOf during submitJob; without a full
	// app the rescue path cannot resolve the stage, so this exercises the
	// "no crash on unknown stage" property.
	s.taskQ[CPU] = append(s.taskQ[CPU], tk)
	s.pendingSince[tk.ID] = 0
	s.rescueStarvation() // must not panic
}

func TestOOMNodeAvoidance(t *testing.T) {
	w := newWorld(t)
	s := New(Config{})
	rt := spark.NewRuntime(w.eng, w.clu, s, spark.Config{})
	_ = rt
	key := TaskKey{Signature: "sig", Partition: 0}
	s.db.Update(key, &task.Metrics{Executor: "fast", OOM: true}, CPU, false)
	s.db.Update(key, &task.Metrics{Executor: "bigmem", Launch: 0, End: 5, ComputeTime: 4}, CPU, true)
	s.db.Flush()
	rec := s.db.Lookup(key)
	if !rec.OOMNodes["fast"] {
		t.Fatal("OOM node not remembered")
	}
	if rec.OptExecutor != "bigmem" {
		t.Fatal("successful node not the optimum")
	}
}

func TestGPUOfferGating(t *testing.T) {
	w := newWorld(t)
	s := New(Config{})
	rt := spark.NewRuntime(w.eng, w.clu, s, spark.Config{})
	for _, n := range w.clu.Nodes {
		executor.New(w.eng, w.clu, n, rt.Cache, rt.Execs, executor.Config{
			HeapBytes: s.HeapFor(n), Seed: 1,
		})
	}
	gpuNode := w.clu.Node("gpu")
	s.offerNode(gpuNode)
	if len(s.nodeQ[GPU]) != 1 {
		t.Fatalf("idle GPU node not offered on the GPU queue: %d", len(s.nodeQ[GPU]))
	}
	// Take the accelerator: the node must stop appearing on the GPU queue.
	gpuNode.GPU.TryAcquire()
	s.nodeQ[GPU] = nil
	s.offerNode(gpuNode)
	if len(s.nodeQ[GPU]) != 0 {
		t.Fatal("busy GPU still offered")
	}
}

func TestAblationFlagsChangeHeapPolicy(t *testing.T) {
	w := newWorld(t)
	full := New(Config{})
	ablated := New(Config{DisableMemAware: true, StaticHeapBytes: 3 * cluster.GB})
	rtA := spark.NewRuntime(w.eng, w.clu, full, spark.Config{})
	_ = rtA
	n := w.clu.Node("bigmem")
	if full.HeapFor(n) == ablated.HeapFor(n) {
		t.Fatal("DisableMemAware did not change executor sizing")
	}
}
