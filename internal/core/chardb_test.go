package core

import (
	"testing"

	"rupam/internal/task"
)

func TestResourceStrings(t *testing.T) {
	want := map[Resource]string{CPU: "cpu", Mem: "mem", Disk: "disk", Net: "net", GPU: "gpu"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%v.String() = %q", r, r.String())
		}
	}
	if Resource(99).String() != "unknown" {
		t.Error("unknown resource string")
	}
	if len(Resources) != NumResources {
		t.Error("Resources list incomplete")
	}
}

func TestKeyFor(t *testing.T) {
	st := &task.Stage{Signature: "grad"}
	tk := &task.Task{Index: 3}
	if got := KeyFor(st, tk); got != (TaskKey{"grad", 3}) {
		t.Fatalf("KeyFor = %+v", got)
	}
}

func TestDBLookupEmpty(t *testing.T) {
	db := NewCharDB()
	if db.Lookup(TaskKey{"x", 0}) != nil {
		t.Fatal("lookup on empty DB returned a record")
	}
	if db.Size() != 0 {
		t.Fatal("empty DB has entries")
	}
}

func TestDBUpdateAndFlush(t *testing.T) {
	db := NewCharDB()
	key := TaskKey{"grad", 1}
	m := &task.Metrics{
		Executor: "thor1", Launch: 0, End: 10,
		ComputeTime: 8, ShuffleReadTime: 1, ShuffleWriteTime: 0.5,
		PeakMemory: 1 << 28,
	}
	db.Update(key, m, CPU, true)

	// Visible through the write queue before flushing (§III-B2's helper
	// thread read path).
	rec := db.Lookup(key)
	if rec == nil {
		t.Fatal("queued write invisible to reads")
	}
	if db.QueueHits == 0 {
		t.Fatal("queue read not counted")
	}
	if rec.ComputeTime != 8 || rec.Runs != 1 || rec.OptExecutor != "thor1" || rec.BestTime != 10 {
		t.Fatalf("record = %+v", rec)
	}
	if !rec.HistoryResource[CPU] {
		t.Fatal("bottleneck not recorded")
	}

	if n := db.Flush(); n != 1 {
		t.Fatalf("flush applied %d writes", n)
	}
	if db.PendingWrites() != 0 || db.Size() != 1 {
		t.Fatal("flush bookkeeping wrong")
	}
	if db.Lookup(key) == nil {
		t.Fatal("flushed record missing")
	}
}

func TestDBBestTimeTracksMinimum(t *testing.T) {
	db := NewCharDB()
	key := TaskKey{"t", 0}
	db.Update(key, &task.Metrics{Executor: "slow", Launch: 0, End: 20}, CPU, true)
	db.Update(key, &task.Metrics{Executor: "fast", Launch: 0, End: 5}, CPU, true)
	db.Update(key, &task.Metrics{Executor: "mid", Launch: 0, End: 12}, CPU, true)
	rec := db.Lookup(key)
	if rec.OptExecutor != "fast" || rec.BestTime != 5 {
		t.Fatalf("opt = %s best = %v", rec.OptExecutor, rec.BestTime)
	}
	if rec.Runs != 3 {
		t.Fatalf("runs = %d", rec.Runs)
	}
}

func TestDBOOMRecording(t *testing.T) {
	db := NewCharDB()
	key := TaskKey{"t", 0}
	db.Update(key, &task.Metrics{Executor: "thor1", OOM: true}, CPU, false)
	rec := db.Lookup(key)
	if !rec.OOMNodes["thor1"] {
		t.Fatal("OOM node not recorded")
	}
	if rec.Runs != 0 {
		t.Fatal("OOM counted as a successful run")
	}
}

func TestDBKilledAttemptIgnored(t *testing.T) {
	db := NewCharDB()
	key := TaskKey{"t", 0}
	db.Update(key, &task.Metrics{Executor: "a", Killed: true, End: 5}, CPU, false)
	rec := db.Lookup(key)
	if rec.Runs != 0 || rec.OptExecutor != "" {
		t.Fatalf("killed attempt polluted record: %+v", rec)
	}
}

func TestRecordLocked(t *testing.T) {
	r := &Record{}
	if r.Locked(3) {
		t.Fatal("empty record locked")
	}
	r.OptExecutor = "n"
	r.Runs = 2
	if r.Locked(3) {
		t.Fatal("locked before enough runs")
	}
	r.Runs = 3
	if !r.Locked(3) {
		t.Fatal("not locked after enough runs")
	}
	r.Runs = 1
	r.HistoryResource = map[Resource]bool{CPU: true, Mem: true, Disk: true, Net: true, GPU: true}
	if !r.Locked(3) {
		t.Fatal("all-five-resources condition did not lock")
	}
	if r.Locked(0) != true {
		t.Fatal("strict condition independent of lockAfterRuns")
	}
}

func TestDBClear(t *testing.T) {
	db := NewCharDB()
	db.Update(TaskKey{"t", 0}, &task.Metrics{Executor: "a", End: 1}, CPU, true)
	db.Flush()
	db.Clear()
	if db.Size() != 0 || db.Lookup(TaskKey{"t", 0}) != nil {
		t.Fatal("clear incomplete")
	}
}

func TestDBLookupReturnsCopy(t *testing.T) {
	db := NewCharDB()
	key := TaskKey{"t", 0}
	db.Update(key, &task.Metrics{Executor: "a", End: 3, ComputeTime: 2}, CPU, true)
	db.Flush()
	rec := db.Lookup(key)
	rec.ComputeTime = 999
	if db.Lookup(key).ComputeTime == 999 {
		t.Fatal("Lookup leaks internal state")
	}
}
