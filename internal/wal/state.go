package wal

import (
	"encoding/json"
	"strconv"
	"strings"
)

// Attempt is one in-flight task attempt as the log last saw it.
type Attempt struct {
	Node string `json:"node"`
	Spec bool   `json:"spec,omitempty"`
}

// Claim is one federation placement claim as the log last saw it. State is
// "proposed" (PROPOSE sent, no verdict yet), "committed" (agent accepted
// and the commit is in flight or acked), or "bound" (the claim's task
// attempt actually launched).
type Claim struct {
	State string `json:"state"`
	Task  int    `json:"task"`
	Node  string `json:"node"`
	Slots int    `json:"slots"`
}

// Output is one registered map output (partition → location).
type Output struct {
	Node  string `json:"node"`
	Bytes int64  `json:"bytes"`
}

// Counters are the driver's WAL-covered accounting counters. Launches in
// particular must round-trip exactly: the chaos invariant battery checks
// that per-task attempt metrics sum to the launch counter across a crash.
type Counters struct {
	Launches          int `json:"launches"`
	SpecCopies        int `json:"spec_copies"`
	FetchFailures     int `json:"fetch_failures"`
	Resubmissions     int `json:"resubmissions"`
	ExecutorsLost     int `json:"executors_lost"`
	ExecutorsRejoined int `json:"executors_rejoined"`
	NodesBlacklisted  int `json:"nodes_blacklisted"`
}

// State is the replayed driver state: the pure fold of a record stream.
// Everything in it is keyed by stable IDs (task/stage/job ints, node
// names) so it is independent of in-memory object identity, and Encode is
// canonical (encoding/json sorts map keys) so replay is byte-exact.
type State struct {
	Seq              uint64                     `json:"seq"`
	T                float64                    `json:"t"`
	JobIdx           int                        `json:"job_idx"` // highest submitted job, -1 before the first
	Submitted        map[int]bool               `json:"submitted,omitempty"`
	Finished         map[int]bool               `json:"finished,omitempty"`
	Running          map[int][]Attempt          `json:"running,omitempty"`
	Outputs          map[int]map[int]Output     `json:"outputs,omitempty"`
	FailCount        map[int]int                `json:"fail_count,omitempty"`
	Resubmits        map[int]int                `json:"resubmits,omitempty"`
	TaskNodeFailures map[int]map[string]int     `json:"task_node_failures,omitempty"`
	NodeFailures     map[string]int             `json:"node_failures,omitempty"`
	Blacklist        map[string]float64         `json:"blacklist,omitempty"` // node → absolute virtual-clock expiry
	LostExecs        map[string]bool            `json:"lost_execs,omitempty"`
	LastInc          map[string]int             `json:"last_inc,omitempty"`
	CharDB           map[string]json.RawMessage `json:"chardb,omitempty"` // "signature|partition" → persisted record
	Claims           map[string]Claim           `json:"claims,omitempty"` // claim ID → live placement claim
	ClaimSeq         uint64                     `json:"claim_seq,omitempty"`
	Counters         Counters                   `json:"counters"`
}

// NewState returns the empty pre-application state.
func NewState() *State { return &State{JobIdx: -1} }

// Apply folds one record into the state. The fold is total: unknown and
// audit-only kinds are no-ops, and attempt removals tolerate absence, so
// replaying any valid prefix of a log never fails.
func (s *State) Apply(r *Record) {
	s.Seq, s.T = r.Seq, r.T
	switch r.Kind {
	case KindSnapshot:
		var snap State
		if json.Unmarshal(r.Snapshot, &snap) == nil {
			*s = snap
			s.Seq, s.T = r.Seq, r.T
		}
	case KindJobSubmitted:
		if r.Job > s.JobIdx {
			s.JobIdx = r.Job
		}
	case KindStageSubmitted:
		if s.Submitted == nil {
			s.Submitted = make(map[int]bool)
		}
		s.Submitted[r.Stage] = true
	case KindTaskLaunched:
		s.addAttempt(r)
		s.Counters.Launches++
		if r.Spec {
			s.Counters.SpecCopies++
		}
	case KindTaskAdopted:
		// A recovery re-registration of an attempt whose task-launched
		// record already counted it: no counter movement.
		s.addAttempt(r)
	case KindTaskSucceeded:
		if s.Finished == nil {
			s.Finished = make(map[int]bool)
		}
		s.Finished[r.Task] = true
		s.removeAttempt(r.Task, r.Node)
		if r.Bytes > 0 {
			if s.Outputs == nil {
				s.Outputs = make(map[int]map[int]Output)
			}
			if s.Outputs[r.Stage] == nil {
				s.Outputs[r.Stage] = make(map[int]Output)
			}
			s.Outputs[r.Stage][r.Index] = Output{Node: r.Node, Bytes: r.Bytes}
		}
	case KindAttemptEnded:
		s.removeAttempt(r.Task, r.Node)
		switch r.Outcome {
		case "success", "killed", "preempted":
			// Loser copies, late successes, and announced spot reclamations:
			// no failure accounting, mirroring noteTaskFailure's Killed and
			// preemption exemptions.
		case "fetch-failed":
			s.bumpFail(r.Task)
			s.Counters.FetchFailures++
		default: // oom, lost, flaked
			s.bumpFail(r.Task)
			if s.TaskNodeFailures == nil {
				s.TaskNodeFailures = make(map[int]map[string]int)
			}
			if s.TaskNodeFailures[r.Task] == nil {
				s.TaskNodeFailures[r.Task] = make(map[string]int)
			}
			s.TaskNodeFailures[r.Task][r.Node]++
			if s.NodeFailures == nil {
				s.NodeFailures = make(map[string]int)
			}
			s.NodeFailures[r.Node]++
		}
	case KindTaskRolledBack:
		delete(s.Finished, r.Task)
		if s.Resubmits == nil {
			s.Resubmits = make(map[int]int)
		}
		s.Resubmits[r.Task]++
		s.Counters.Resubmissions++
	case KindOutputMoved:
		// Drain re-replication: the partition's output registration moves
		// to its new home, so a post-crash rebuild does not resurrect the
		// location on the preempted node.
		if r.Bytes > 0 {
			if s.Outputs == nil {
				s.Outputs = make(map[int]map[int]Output)
			}
			if s.Outputs[r.Stage] == nil {
				s.Outputs[r.Stage] = make(map[int]Output)
			}
			s.Outputs[r.Stage][r.Index] = Output{Node: r.Node, Bytes: r.Bytes}
		}
	case KindOutputLost:
		if m := s.Outputs[r.Stage]; m != nil {
			delete(m, r.Index)
			if len(m) == 0 {
				delete(s.Outputs, r.Stage)
			}
		}
	case KindExecLost:
		if s.LostExecs == nil {
			s.LostExecs = make(map[string]bool)
		}
		s.LostExecs[r.Node] = true
		s.Counters.ExecutorsLost++
	case KindExecRejoined:
		delete(s.LostExecs, r.Node)
		if len(s.LostExecs) == 0 {
			s.LostExecs = nil
		}
		s.Counters.ExecutorsRejoined++
	case KindExecIncarnation:
		if s.LastInc == nil {
			s.LastInc = make(map[string]int)
		}
		s.LastInc[r.Node] = r.Inc
	case KindBlacklistAdd:
		if s.Blacklist == nil {
			s.Blacklist = make(map[string]float64)
		}
		s.Blacklist[r.Node] = r.Until
		// Activation resets the node's failure tally (blacklist.noteFailure).
		delete(s.NodeFailures, r.Node)
		if len(s.NodeFailures) == 0 {
			s.NodeFailures = nil
		}
		s.Counters.NodesBlacklisted++
	case KindCharDBPut:
		if s.CharDB == nil {
			s.CharDB = make(map[string]json.RawMessage)
		}
		s.CharDB[r.Key] = append(json.RawMessage(nil), r.CharDB...)
	case KindClaimProposed:
		if s.Claims == nil {
			s.Claims = make(map[string]Claim)
		}
		s.Claims[r.Key] = Claim{State: "proposed", Task: r.Task, Node: r.Node, Slots: r.Slots}
		// Track the high-water claim sequence so a recovered driver never
		// reuses a claim ID: agents tombstone dead IDs, so reuse would make
		// fresh proposals look like duplicates.
		if i := strings.LastIndexByte(r.Key, ':'); i >= 0 {
			if seq, err := strconv.ParseUint(r.Key[i+1:], 10, 64); err == nil && seq > s.ClaimSeq {
				s.ClaimSeq = seq
			}
		}
	case KindClaimCommitted:
		if c, ok := s.Claims[r.Key]; ok {
			c.State = "committed"
			s.Claims[r.Key] = c
		}
	case KindClaimBound:
		if c, ok := s.Claims[r.Key]; ok {
			c.State = "bound"
			s.Claims[r.Key] = c
		}
	case KindClaimAborted, KindClaimReleased:
		delete(s.Claims, r.Key)
		if len(s.Claims) == 0 {
			s.Claims = nil
		}
	case KindRecovered:
		// Recovery barrier: every pre-crash in-flight attempt is either
		// re-adopted (task-adopted records follow) or back in the pool.
		// Claims deliberately survive the barrier — the recovered driver
		// must still abort or release each one with the owning agent.
		s.Running = nil
	}
}

func (s *State) addAttempt(r *Record) {
	if s.Running == nil {
		s.Running = make(map[int][]Attempt)
	}
	s.Running[r.Task] = append(s.Running[r.Task], Attempt{Node: r.Node, Spec: r.Spec})
}

func (s *State) removeAttempt(tid int, node string) {
	atts := s.Running[tid]
	for i, a := range atts {
		if a.Node == node {
			atts = append(atts[:i], atts[i+1:]...)
			break
		}
	}
	if len(atts) == 0 {
		delete(s.Running, tid)
		if len(s.Running) == 0 {
			s.Running = nil
		}
	} else {
		s.Running[tid] = atts
	}
}

func (s *State) bumpFail(tid int) {
	if s.FailCount == nil {
		s.FailCount = make(map[int]int)
	}
	s.FailCount[tid]++
}

// Encode renders the state canonically: encoding/json sorts map keys, so
// equal states produce byte-identical output — the determinism invariant
// the chaos recovery battery checks by replaying the same log twice.
func (s *State) Encode() []byte {
	b, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		panic("wal: encode state: " + err.Error())
	}
	return append(b, '\n')
}
