package wal

import (
	"bytes"
	"strings"
	"testing"
)

// scriptedLog appends a representative driver history: two stages, a
// launch/success cycle with map-output registration, a failure with
// blacklist activation, an executor loss with rollback, and a CharDB put.
func scriptedLog(t *testing.T, snapshotEvery int) *Log {
	t.Helper()
	now := 0.0
	l := New(nil, Options{SnapshotEvery: snapshotEvery, Clock: func() float64 { now += 0.5; return now }})
	l.Append(Record{Kind: KindJobSubmitted, Job: 0})
	l.Append(Record{Kind: KindStageSubmitted, Stage: 0, Job: 0})
	l.Append(Record{Kind: KindStageSubmitted, Stage: 1, Job: 0})
	l.Append(Record{Kind: KindTaskLaunched, Task: 10, Stage: 0, Node: "fast"})
	l.Append(Record{Kind: KindTaskLaunched, Task: 11, Stage: 0, Node: "slow"})
	l.Append(Record{Kind: KindTaskLaunched, Task: 11, Stage: 0, Node: "gpu", Spec: true})
	l.Append(Record{Kind: KindTaskSucceeded, Task: 10, Stage: 0, Index: 0, Node: "fast", Bytes: 1 << 20})
	l.Append(Record{Kind: KindAttemptEnded, Task: 11, Node: "slow", Outcome: "flaked"})
	l.Append(Record{Kind: KindTaskRequeued, Task: 11})
	l.Append(Record{Kind: KindBlacklistAdd, Node: "slow", Until: 64.25})
	l.Append(Record{Kind: KindTaskSucceeded, Task: 11, Stage: 0, Index: 1, Node: "gpu", Bytes: 2 << 20})
	l.Append(Record{Kind: KindExecLost, Node: "fast"})
	l.Append(Record{Kind: KindOutputLost, Stage: 0, Index: 0, Node: "fast"})
	l.Append(Record{Kind: KindTaskRolledBack, Task: 10, Stage: 0})
	l.Append(Record{Kind: KindExecIncarnation, Node: "fast", Inc: 1})
	l.Append(Record{Kind: KindExecRejoined, Node: "fast"})
	l.Append(Record{Kind: KindCharDBPut, Key: "grad|0", CharDB: []byte(`{"signature":"grad","partition":0}`)})
	l.Append(Record{Kind: KindTaskLaunched, Task: 10, Stage: 0, Node: "gpu"})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestReplayFoldsHistory(t *testing.T) {
	l := scriptedLog(t, -1)
	s, n, err := Replay(bytes.NewReader(l.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 18 {
		t.Fatalf("folded %d records, want 18", n)
	}
	if s.JobIdx != 0 || !s.Submitted[0] || !s.Submitted[1] {
		t.Fatalf("job/stage state wrong: %+v", s)
	}
	if s.Finished[10] || !s.Finished[11] {
		t.Fatalf("finished set wrong after rollback: %+v", s.Finished)
	}
	if got := s.Running[10]; len(got) != 1 || got[0].Node != "gpu" {
		t.Fatalf("task 10 in-flight attempts wrong: %+v", got)
	}
	if len(s.Running[11]) != 0 {
		t.Fatalf("task 11 should have drained: %+v", s.Running[11])
	}
	if out, ok := s.Outputs[0][1]; !ok || out.Node != "gpu" || out.Bytes != 2<<20 {
		t.Fatalf("surviving output wrong: %+v", s.Outputs)
	}
	if _, ok := s.Outputs[0][0]; ok {
		t.Fatal("rolled-back output survived replay")
	}
	if s.Blacklist["slow"] != 64.25 {
		t.Fatalf("blacklist expiry not absolute: %v", s.Blacklist)
	}
	if s.LostExecs["fast"] || s.LastInc["fast"] != 1 {
		t.Fatalf("executor membership wrong: lost=%v inc=%v", s.LostExecs, s.LastInc)
	}
	if s.FailCount[11] != 1 || s.TaskNodeFailures[11]["slow"] != 1 {
		t.Fatalf("failure accounting wrong: %+v / %+v", s.FailCount, s.TaskNodeFailures)
	}
	c := s.Counters
	if c.Launches != 4 || c.SpecCopies != 1 || c.Resubmissions != 1 ||
		c.ExecutorsLost != 1 || c.ExecutorsRejoined != 1 || c.NodesBlacklisted != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
	if string(s.CharDB["grad|0"]) != `{"signature":"grad","partition":0}` {
		t.Fatalf("chardb payload wrong: %s", s.CharDB["grad|0"])
	}
}

func TestReplayTwiceIsByteIdentical(t *testing.T) {
	l := scriptedLog(t, 4)
	a, _, err := Replay(bytes.NewReader(l.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Replay(bytes.NewReader(l.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("two replays of the same bytes differ:\n%s\n---\n%s", a.Encode(), b.Encode())
	}
}

func TestSnapshotPlusTailEqualsFullReplay(t *testing.T) {
	// The same history logged with and without checkpoints must replay to
	// the same state: snapshots are an optimization, not a semantic.
	snap := scriptedLog(t, 3)
	flat := scriptedLog(t, -1)
	recs, err := ReadRecords(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	nsnaps := 0
	for _, r := range recs {
		if r.Kind == KindSnapshot {
			nsnaps++
		}
	}
	if nsnaps == 0 {
		t.Fatal("cadence 3 produced no snapshot records")
	}
	a, _, err := Replay(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Replay(bytes.NewReader(flat.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Seq diverges (snapshot records consume sequence numbers); everything
	// else must match byte-for-byte.
	a.Seq, b.Seq = 0, 0
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("checkpointed replay diverges from flat replay:\n%s\n---\n%s", a.Encode(), b.Encode())
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	l := scriptedLog(t, -1)
	full := l.Bytes()
	fullState, fullN, err := Replay(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}

	// Tear mid-way through the final line: the prefix must replay cleanly.
	torn := full[:len(full)-7]
	s, n, err := Replay(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if n != fullN-1 {
		t.Fatalf("folded %d records from torn log, want %d", n, fullN-1)
	}
	// The torn record was task 10's relaunch on gpu.
	if len(s.Running[10]) != 0 {
		t.Fatalf("torn record leaked into state: %+v", s.Running[10])
	}
	if s.Counters.Launches != fullState.Counters.Launches-1 {
		t.Fatalf("launch counter counted the torn record: %d", s.Counters.Launches)
	}

	// A corrupt line mid-log fences off everything after it.
	lines := strings.SplitAfter(string(full), "\n")
	lines[4] = "deadbeef " + lines[4][9:]
	s2, n2, err := Replay(strings.NewReader(strings.Join(lines, "")))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 4 {
		t.Fatalf("replay read %d records past a corrupt line, want 4", n2)
	}
	if s2.Counters.Launches != 1 {
		t.Fatalf("state after fence wrong: %+v", s2.Counters)
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Append(Record{Kind: KindJobSubmitted})
	if l.Bytes() != nil || l.Seq() != 0 || l.Err() != nil {
		t.Fatal("nil log must be inert")
	}
}

func TestMirrorWriterReceivesSameBytes(t *testing.T) {
	var sink bytes.Buffer
	now := 0.0
	l := New(&sink, Options{SnapshotEvery: 2, Clock: func() float64 { now++; return now }})
	l.Append(Record{Kind: KindJobSubmitted, Job: 0})
	l.Append(Record{Kind: KindStageSubmitted, Stage: 0})
	l.Append(Record{Kind: KindTaskLaunched, Task: 1, Stage: 0, Node: "fast"})
	if !bytes.Equal(sink.Bytes(), l.Bytes()) {
		t.Fatal("external sink diverged from in-memory mirror")
	}
}

func TestClaimFold(t *testing.T) {
	l := New(nil, Options{SnapshotEvery: -1})
	l.Append(Record{Kind: KindClaimProposed, Key: "d0:3", Task: 10, Node: "fast", Slots: 1})
	l.Append(Record{Kind: KindClaimProposed, Key: "d0:4", Task: 11, Node: "slow", Slots: 2})
	l.Append(Record{Kind: KindClaimProposed, Key: "d0:5", Task: 12, Node: "gpu", Slots: 1})
	l.Append(Record{Kind: KindClaimCommitted, Key: "d0:4"})
	l.Append(Record{Kind: KindClaimCommitted, Key: "d0:5"})
	l.Append(Record{Kind: KindClaimBound, Key: "d0:5"})
	l.Append(Record{Kind: KindClaimAborted, Key: "d0:3"})
	l.Append(Record{Kind: KindRecovered})

	s, _, err := Replay(bytes.NewReader(l.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Claims survive the recovery barrier; aborted ones are gone.
	if len(s.Claims) != 2 {
		t.Fatalf("want 2 live claims, got %+v", s.Claims)
	}
	if c := s.Claims["d0:4"]; c.State != "committed" || c.Task != 11 || c.Node != "slow" || c.Slots != 2 {
		t.Fatalf("claim d0:4 wrong: %+v", c)
	}
	if c := s.Claims["d0:5"]; c.State != "bound" || c.Task != 12 {
		t.Fatalf("claim d0:5 wrong: %+v", c)
	}
	if s.Claims["d0:3"].State != "" {
		t.Fatal("aborted claim survived")
	}
	// ClaimSeq is the high-water proposal sequence, parsed from the keys.
	if s.ClaimSeq != 5 {
		t.Fatalf("claim seq = %d, want 5", s.ClaimSeq)
	}

	l.Append(Record{Kind: KindClaimReleased, Key: "d0:5"})
	l.Append(Record{Kind: KindClaimReleased, Key: "d0:4"})
	s2, _, err := Replay(bytes.NewReader(l.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Claims != nil {
		t.Fatalf("released claims linger: %+v", s2.Claims)
	}
	if s2.ClaimSeq != 5 {
		t.Fatalf("claim seq lost on release: %d", s2.ClaimSeq)
	}

	// Committing or binding an unknown claim is a tolerated no-op (total fold).
	l2 := New(nil, Options{SnapshotEvery: -1})
	l2.Append(Record{Kind: KindClaimCommitted, Key: "d9:1"})
	l2.Append(Record{Kind: KindClaimBound, Key: "d9:2"})
	l2.Append(Record{Kind: KindClaimAborted, Key: "d9:3"})
	s3, _, err := Replay(bytes.NewReader(l2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s3.Claims != nil {
		t.Fatalf("phantom claims materialized: %+v", s3.Claims)
	}
}

func TestClaimSnapshotRoundTrip(t *testing.T) {
	// A snapshot taken with live claims must restore them exactly.
	l := New(nil, Options{SnapshotEvery: 2})
	l.Append(Record{Kind: KindClaimProposed, Key: "d2:7", Task: 3, Node: "fast", Slots: 1})
	l.Append(Record{Kind: KindClaimCommitted, Key: "d2:7"}) // snapshot lands after this
	l.Append(Record{Kind: KindTaskLaunched, Task: 3, Stage: 0, Node: "fast"})
	s, _, err := Replay(bytes.NewReader(l.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Claims["d2:7"]; c.State != "committed" || c.Node != "fast" {
		t.Fatalf("claim lost across snapshot: %+v", s.Claims)
	}
	if s.ClaimSeq != 7 {
		t.Fatalf("claim seq lost across snapshot: %d", s.ClaimSeq)
	}
}
