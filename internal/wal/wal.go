// Package wal implements the driver's write-ahead log: a deterministic,
// append-only record of every driver state transition (job/stage
// submission, task launches and terminations, map-output registration and
// rollback, CharDB updates, blacklist activations, executor membership),
// stamped with virtual-clock time and periodically checkpointed with full
// state snapshots embedded in the stream.
//
// The log exists so a crashed driver can be rebuilt exactly: Replay folds
// the serialized bytes back into a State, stopping cleanly at the first
// torn line, and State.Encode is canonical so two replays of the same
// bytes are byte-identical — the recovery invariant the chaos harness
// checks. The package is deliberately leaf-level (no imports from spark or
// core): records refer to jobs, stages, tasks and nodes by ID, and CharDB
// payloads travel as opaque pre-marshaled JSON.
//
// Framing: one record per line, "crc32(hex) space json\n". The CRC covers
// the JSON body, so a crash mid-append (torn write) is detected and the
// valid prefix recovered. A *Log with a nil receiver is a no-op on every
// method, mirroring tracing.Collector, so an unlogged run pays nothing.
package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"encoding/json"
)

// Record kinds. Fold semantics live in State.Apply; kinds marked audit-only
// carry forensic detail but do not change replayed state.
const (
	KindJobSubmitted    = "job-submitted"    // Job
	KindStageSubmitted  = "stage-submitted"  // Stage, Job
	KindTaskLaunched    = "task-launched"    // Task, Stage, Node, Spec
	KindTaskAdopted     = "task-adopted"     // Task, Stage, Node, Spec (recovery re-registration; no launch counted)
	KindTaskSucceeded   = "task-succeeded"   // Task, Stage, Index, Node, Bytes (map-output registration when Bytes > 0)
	KindAttemptEnded    = "attempt-ended"    // Task, Node, Outcome (loser kills, failures, late successes)
	KindTaskRequeued    = "task-requeued"    // Task (audit-only: failed attempt put back in the pool)
	KindTaskRolledBack  = "task-rolled-back" // Task, Stage (finished task resubmitted after output loss)
	KindOutputLost      = "output-lost"      // Stage, Index, Node (map-output rollback)
	KindOutputMoved     = "output-moved"     // Stage, Index, Node, Bytes (graceful-drain re-replication: the output now lives on Node)
	KindExecLost        = "exec-lost"        // Node
	KindExecRejoined    = "exec-rejoined"    // Node
	KindExecIncarnation = "exec-incarnation" // Node, Inc
	KindBlacklistAdd    = "blacklist-add"    // Node, Until (absolute virtual-clock expiry)
	KindCharDBPut       = "chardb-put"       // Key, CharDB (last-writer-wins upsert)
	KindSpecMarked      = "spec-marked"      // Task (audit-only: speculation decision)
	KindStageCompleted  = "stage-completed"  // Stage (audit-only)
	KindJobCompleted    = "job-completed"    // Job (audit-only)
	KindJobAborted      = "job-aborted"      // Reason (audit-only; an aborted app is done, never recovered)
	KindDriverCrashed   = "driver-crashed"   // audit-only crash marker
	KindRecovered       = "recovered"        // recovery barrier: drops all pre-crash in-flight attempts
	KindSnapshot        = "snapshot"         // Snapshot (full State checkpoint; replay restarts the fold here)

	// Federation placement-protocol kinds. Key is the claim ID
	// ("d<driver>:<seq>"); the fold tracks live claims so a restarted
	// driver can re-resolve every placement it had in flight. Abort and
	// release records are appended only once the agent has acknowledged
	// (or the verdict is already terminal), so a claim still in the fold
	// after a crash is exactly one the recovered driver must chase.
	KindClaimProposed  = "claim-proposed"  // Key, Task, Node, Slots
	KindClaimCommitted = "claim-committed" // Key (agent accepted; commit in flight or acked)
	KindClaimBound     = "claim-bound"     // Key (the claim's task attempt launched)
	KindClaimAborted   = "claim-aborted"   // Key (agent-acked abort, or terminal reject)
	KindClaimReleased  = "claim-released"  // Key (agent-acked release of a committed claim)
)

// Record is one WAL entry. Numeric zero values are elided on the wire
// (omitempty) and restored as zeros on decode, so encoding is lossless.
type Record struct {
	Seq      uint64          `json:"seq"`
	T        float64         `json:"t"`
	Kind     string          `json:"kind"`
	Job      int             `json:"job,omitempty"`
	Stage    int             `json:"stage,omitempty"`
	Task     int             `json:"task,omitempty"`
	Index    int             `json:"index,omitempty"`
	Node     string          `json:"node,omitempty"`
	Bytes    int64           `json:"bytes,omitempty"`
	Spec     bool            `json:"spec,omitempty"`
	Outcome  string          `json:"outcome,omitempty"`
	Until    float64         `json:"until,omitempty"`
	Inc      int             `json:"inc,omitempty"`
	Slots    int             `json:"slots,omitempty"`
	Key      string          `json:"key,omitempty"`
	Reason   string          `json:"reason,omitempty"`
	CharDB   json.RawMessage `json:"chardb,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// Options configures a Log.
type Options struct {
	// SnapshotEvery is the checkpoint cadence: a full state snapshot is
	// appended after this many records. 0 uses the default (128); negative
	// disables snapshots (pure log).
	SnapshotEvery int
	// Clock supplies virtual-clock timestamps for appended records. Nil
	// stamps zero times (unit tests).
	Clock func() float64
}

// DefaultSnapshotEvery is the checkpoint cadence when Options leaves it 0.
const DefaultSnapshotEvery = 128

// Log is an append-only WAL writer. It always retains the full serialized
// stream in memory (the simulator's recovery path replays it, and chaos
// verifies byte-identity on it); an optional io.Writer mirror receives the
// same bytes for on-disk persistence.
type Log struct {
	mirror bytes.Buffer
	out    io.Writer
	err    error
	seq    uint64
	since  int
	every  int
	clock  func() float64
	state  *State
}

// New creates a Log. out may be nil for an in-memory-only log.
func New(out io.Writer, opts Options) *Log {
	every := opts.SnapshotEvery
	if every == 0 {
		every = DefaultSnapshotEvery
	}
	return &Log{out: out, every: every, clock: opts.Clock, state: NewState()}
}

// SetClock replaces the log's timestamp source. The runtime installs its
// engine's virtual clock on whatever log the configuration supplied, so a
// file-backed log can be constructed before the engine exists.
func (l *Log) SetClock(clock func() float64) { l.clock = clock }

// Append stamps, frames and writes one record, folds it into the writer's
// shadow state, and emits a snapshot checkpoint when the cadence is due.
// Safe on a nil receiver (no-op).
func (l *Log) Append(r Record) {
	if l == nil || l.err != nil {
		return
	}
	l.seq++
	r.Seq = l.seq
	if l.clock != nil {
		r.T = l.clock()
	}
	l.write(&r)
	l.state.Apply(&r)
	l.since++
	if l.every > 0 && l.since >= l.every {
		snap, err := json.Marshal(l.state)
		if err != nil {
			l.err = fmt.Errorf("wal: snapshot: %w", err)
			return
		}
		l.seq++
		sr := Record{Seq: l.seq, T: r.T, Kind: KindSnapshot, Snapshot: snap}
		l.write(&sr)
		// Fold the snapshot back in so the shadow state is exactly what a
		// replay starting from this checkpoint would hold (JSON round-trip
		// normalizes empty containers away).
		l.state.Apply(&sr)
		l.since = 0
	}
}

func (l *Log) write(r *Record) {
	b, err := json.Marshal(r)
	if err != nil {
		l.err = fmt.Errorf("wal: encode: %w", err)
		return
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(b), b)
	l.mirror.WriteString(line)
	if l.out != nil {
		if _, werr := io.WriteString(l.out, line); werr != nil {
			l.err = fmt.Errorf("wal: write: %w", werr)
		}
	}
}

// Bytes returns the full serialized log so far. Nil-safe (returns nil).
func (l *Log) Bytes() []byte {
	if l == nil {
		return nil
	}
	return l.mirror.Bytes()
}

// Seq returns the sequence number of the last appended record. Nil-safe.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq
}

// Err returns the first write/encode error, if any. Nil-safe.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	return l.err
}
