package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Replay folds a serialized log into driver state. Recovery semantics: the
// fold stops cleanly at the first torn or corrupt line (a crash mid-append
// leaves at most one, and nothing after a tear is trustworthy) and returns
// the state of the longest valid prefix plus the number of records folded.
// Snapshot records restart the fold from their checkpoint, so snapshot +
// tail replays to exactly what the full log replays to. The returned error
// reports only reader failures, never framing damage.
func Replay(r io.Reader) (*State, int, error) {
	s := NewState()
	n := 0
	sc := newScanner(r)
	for sc.Scan() {
		rec, ok := decodeLine(sc.Bytes())
		if !ok {
			return s, n, nil // torn tail: keep the valid prefix
		}
		s.Apply(rec)
		n++
	}
	if err := sc.Err(); err != nil {
		return s, n, fmt.Errorf("wal: replay: %w", err)
	}
	return s, n, nil
}

// ReadRecords decodes the log's valid prefix as raw records, for tests and
// offline inspection. Like Replay it stops at the first torn line.
func ReadRecords(r io.Reader) ([]*Record, error) {
	var recs []*Record
	sc := newScanner(r)
	for sc.Scan() {
		rec, ok := decodeLine(sc.Bytes())
		if !ok {
			return recs, nil
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, fmt.Errorf("wal: read: %w", err)
	}
	return recs, nil
}

func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // snapshot lines can be large
	return sc
}

func decodeLine(line []byte) (*Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, false
	}
	var rec Record
	if json.Unmarshal(body, &rec) != nil {
		return nil, false
	}
	return &rec, true
}
