package cluster

import "rupam/internal/simx"

// DVFS models workload-aware CPU frequency scaling — the reason the
// paper's Table I treats cpufreq as a *dynamic* node metric rather than a
// static spec. A governor periodically adjusts a node's effective clock
// between MinFraction×base and base according to recent load, so an idle
// machine reports a lower frequency to the Resource Monitor than a busy
// one, and a task landing on a just-woken node ramps up with it.
type DVFS struct {
	eng      *simx.Engine
	node     *Node
	base     float64 // spec frequency in GHz
	minFrac  float64
	interval float64
	timer    simx.Timer
	stopped  bool

	// Adjustments counts frequency changes applied (test/report hook).
	Adjustments int
}

// StartDVFS attaches an on-demand-style governor to the node. minFrac is
// the idle floor as a fraction of base frequency (e.g. 0.5); interval is
// the governor period in seconds. It returns the governor, already
// running.
func StartDVFS(eng *simx.Engine, node *Node, minFrac, interval float64) *DVFS {
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 0.5
	}
	if interval <= 0 {
		interval = 0.5
	}
	g := &DVFS{
		eng:      eng,
		node:     node,
		base:     node.Spec.FreqGHz,
		minFrac:  minFrac,
		interval: interval,
	}
	g.tick()
	return g
}

// Stop halts the governor, restoring the base frequency.
func (g *DVFS) Stop() {
	g.stopped = true
	g.timer.Cancel()
	g.timer = simx.Timer{}
	g.setFreq(g.base)
}

// CurrentFreq returns the node's effective per-core frequency in GHz.
func (g *DVFS) CurrentFreq() float64 {
	return g.node.CPU.Capacity() / float64(g.node.Spec.Cores)
}

func (g *DVFS) tick() {
	if g.stopped {
		return
	}
	// On-demand governor: jump to max under any meaningful load, decay
	// toward the floor when idle.
	util := g.node.CPU.Utilization()
	target := g.base * g.minFrac
	if util > 0.05 {
		target = g.base
	}
	g.setFreq(target)
	g.timer = g.eng.Schedule(g.interval, g.tick)
}

func (g *DVFS) setFreq(f float64) {
	cur := g.CurrentFreq()
	if cur == f {
		return
	}
	g.Adjustments++
	g.node.CPU.SetCapacity(f * float64(g.node.Spec.Cores))
	g.node.CPU.SetPerClaimCap(f)
}
