package cluster

import "sort"

// The instance market prices the Hydra hardware classes the way a public
// cloud would sell them: every class is offered on-demand (pay full rate,
// never reclaimed) and as a spot instance (steep discount, but the
// provider may reclaim it after a short notice). Spot discounts and
// preemption hazards are correlated — the deeper the discount, the hotter
// the reclamation rate — which is what makes the autoscaler's spot-vs-
// on-demand choice a real trade-off rather than a dominance relation.
//
// Prices are $/hour and hazards are expected preemptions/hour. Hazards
// are accelerated relative to real clouds (where reclamation rates are
// per-day) so that simulation horizons of minutes still see preemptions;
// the *relative* ordering across classes is what the experiments depend
// on, not the absolute magnitude.

// Billing distinguishes how an instance is paid for.
type Billing int

const (
	// OnDemand instances cost full price and are never preempted.
	OnDemand Billing = iota
	// Spot instances are discounted and carry a preemption hazard.
	Spot
)

// String returns the billing label used in reports and traces.
func (b Billing) String() string {
	if b == Spot {
		return "spot"
	}
	return "on-demand"
}

// InstanceOffer is one purchasable flavor of a hardware class.
type InstanceOffer struct {
	// Class matches NodeSpec.Class ("thor", "hulk", "stack", ...).
	Class   string
	Billing Billing
	// PricePerHour is the $/hour rate while the instance is held.
	PricePerHour float64
	// PreemptHazard is the expected preemptions/hour while held; zero for
	// on-demand offers.
	PreemptHazard float64
	// GPU marks the offer as the accelerator flavor of its class (the
	// SparkCL-style GPU spot pool); priced above the plain CPU offer
	// because the accelerator is bundled.
	GPU bool
}

// Market is the set of offers the elastic substrate can buy from.
type Market struct {
	offers []InstanceOffer
}

// NewMarket builds a market from explicit offers.
func NewMarket(offers ...InstanceOffer) *Market {
	m := &Market{offers: append([]InstanceOffer(nil), offers...)}
	sort.SliceStable(m.offers, func(i, j int) bool {
		if m.offers[i].Class != m.offers[j].Class {
			return m.offers[i].Class < m.offers[j].Class
		}
		return m.offers[i].Billing < m.offers[j].Billing
	})
	return m
}

// DefaultMarket prices the Hydra classes. On-demand rates scale roughly
// with core count × frequency (hulk's 32 slow cores and stack's GPU land
// between thor and hulk); spot discounts deepen — and hazards rise — for
// the big instances, mirroring how clouds price capacity that is hard to
// keep busy. Stack's spot flavor is the GPU spot pool: discounted less
// than hulk because accelerator capacity is scarcer, but still the only
// discounted way to get a GPU.
func DefaultMarket() *Market {
	return NewMarket(
		InstanceOffer{Class: "thor", Billing: OnDemand, PricePerHour: 0.40},
		InstanceOffer{Class: "thor", Billing: Spot, PricePerHour: 0.16, PreemptHazard: 12},
		InstanceOffer{Class: "hulk", Billing: OnDemand, PricePerHour: 1.20},
		InstanceOffer{Class: "hulk", Billing: Spot, PricePerHour: 0.36, PreemptHazard: 24},
		InstanceOffer{Class: "stack", Billing: OnDemand, PricePerHour: 0.90, GPU: true},
		InstanceOffer{Class: "stack", Billing: Spot, PricePerHour: 0.36, PreemptHazard: 18, GPU: true},
	)
}

// Offer returns the class's offer under the given billing, or a zero
// offer with ok=false when the market does not sell that combination.
func (m *Market) Offer(class string, billing Billing) (InstanceOffer, bool) {
	for _, o := range m.offers {
		if o.Class == class && o.Billing == billing {
			return o, true
		}
	}
	return InstanceOffer{}, false
}

// Price returns the $/hour rate for the class under the given billing.
// Unlisted combinations price at the on-demand rate if one exists, else 0
// (free capacity never distorts a cost comparison upward).
func (m *Market) Price(class string, billing Billing) float64 {
	if o, ok := m.Offer(class, billing); ok {
		return o.PricePerHour
	}
	if o, ok := m.Offer(class, OnDemand); ok {
		return o.PricePerHour
	}
	return 0
}

// Hazard returns the class's spot preemption hazard (preemptions/hour);
// zero when the class has no spot offer.
func (m *Market) Hazard(class string) float64 {
	if o, ok := m.Offer(class, Spot); ok {
		return o.PreemptHazard
	}
	return 0
}

// Offers returns the market's offers in (class, billing) order.
func (m *Market) Offers() []InstanceOffer {
	return append([]InstanceOffer(nil), m.offers...)
}
