package cluster

import (
	"strings"
	"testing"

	"rupam/internal/simx"
)

func validSpec() NodeSpec {
	return NodeSpec{
		Name: "n1", Class: "test", Cores: 4, FreqGHz: 2,
		MemBytes: 8 * GB, NetBandwidth: GbE(1),
		DiskReadBW: MBps(100), DiskWriteBW: MBps(100),
	}
}

func TestSpecValidate(t *testing.T) {
	good := validSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		mutate func(*NodeSpec)
		want   string
	}{
		{func(s *NodeSpec) { s.Name = "" }, "name"},
		{func(s *NodeSpec) { s.Cores = 0 }, "cores"},
		{func(s *NodeSpec) { s.FreqGHz = 0 }, "frequency"},
		{func(s *NodeSpec) { s.MemBytes = 0 }, "memory"},
		{func(s *NodeSpec) { s.NetBandwidth = 0 }, "network"},
		{func(s *NodeSpec) { s.DiskReadBW = 0 }, "disk"},
		{func(s *NodeSpec) { s.GPUs = -1 }, "GPU"},
		{func(s *NodeSpec) { s.GPUs = 1; s.GPURateGHz = 0 }, "GPU rate"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("mutation %q accepted", c.want)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(strings.Fields(c.want)[0])) {
			t.Errorf("error %q does not mention %q", err, c.want)
		}
	}
}

func TestCPUCapacity(t *testing.T) {
	s := validSpec()
	if got := s.CPUCapacity(); got != 8 {
		t.Fatalf("capacity = %v, want 8", got)
	}
}

func TestAddNodeWiring(t *testing.T) {
	eng := simx.NewEngine()
	c := New(eng)
	n := c.AddNode(validSpec())
	if n.CPU.Capacity() != 8 {
		t.Errorf("CPU capacity = %v", n.CPU.Capacity())
	}
	if n.Mem.Capacity() != 8*GB {
		t.Errorf("mem capacity = %v", n.Mem.Capacity())
	}
	if n.GPU.Total() != 0 {
		t.Errorf("gpu total = %d", n.GPU.Total())
	}
	if c.Node("n1") != n {
		t.Error("Node lookup failed")
	}
	if c.Node("missing") != nil {
		t.Error("missing node not nil")
	}
	if got := c.NodeNames(); len(got) != 1 || got[0] != "n1" {
		t.Errorf("NodeNames = %v", got)
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	c := New(simx.NewEngine())
	c.AddNode(validSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node accepted")
		}
	}()
	c.AddNode(validSpec())
}

func TestAddInvalidPanics(t *testing.T) {
	c := New(simx.NewEngine())
	s := validSpec()
	s.Cores = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec accepted")
		}
	}()
	c.AddNode(s)
}

func TestHydraTopology(t *testing.T) {
	c := New(simx.NewEngine())
	NewHydra(c)
	if len(c.Nodes) != 12 {
		t.Fatalf("Hydra has %d nodes, want 12", len(c.Nodes))
	}
	counts := map[string]int{}
	for _, n := range c.Nodes {
		counts[n.Spec.Class]++
	}
	for class, want := range HydraCounts {
		if counts[class] != want {
			t.Errorf("%s count = %d, want %d", class, counts[class], want)
		}
	}
	// Table II properties.
	thor := c.Node("thor1").Spec
	hulk := c.Node("hulk1").Spec
	stack := c.Node("stack1").Spec
	if !thor.SSD || hulk.SSD || stack.SSD {
		t.Error("SSD placement wrong (only thor has SSDs)")
	}
	if stack.GPUs != 1 || thor.GPUs != 0 || hulk.GPUs != 0 {
		t.Error("GPU placement wrong (only stack has GPUs)")
	}
	if hulk.NetBandwidth <= thor.NetBandwidth {
		t.Error("hulk should have the fastest network")
	}
	if hulk.MemBytes <= stack.MemBytes || stack.MemBytes <= thor.MemBytes {
		t.Error("memory ordering should be hulk > stack > thor")
	}
	if thor.FreqGHz <= hulk.FreqGHz || hulk.FreqGHz <= stack.FreqGHz {
		t.Error("per-core speed ordering should be thor > hulk > stack")
	}
	if got := c.TotalCores(); got != 6*8+4*32+2*16 {
		t.Errorf("total cores = %d", got)
	}
}

func TestMotivationTopology(t *testing.T) {
	c := New(simx.NewEngine())
	NewMotivation(c)
	if len(c.Nodes) != 2 {
		t.Fatalf("motivation cluster has %d nodes", len(c.Nodes))
	}
	n1, n2 := c.Node("node-1").Spec, c.Node("node-2").Spec
	// §II-B: node-1 slow CPU + fast network, node-2 the reverse.
	if n1.FreqGHz >= n2.FreqGHz {
		t.Error("node-1 should have the slower CPU")
	}
	if n1.NetBandwidth <= n2.NetBandwidth {
		t.Error("node-1 should have the faster network")
	}
	if n1.Cores != n2.Cores || n1.MemBytes != n2.MemBytes {
		t.Error("motivation nodes should differ only in CPU and network")
	}
}

func TestUnitHelpers(t *testing.T) {
	if GbE(1) != 125e6 {
		t.Errorf("GbE(1) = %v", GbE(1))
	}
	if MBps(100) != 1e8 {
		t.Errorf("MBps(100) = %v", MBps(100))
	}
	if GB != 1<<30 {
		t.Errorf("GB = %d", GB)
	}
}

func TestNodeUtilHelpers(t *testing.T) {
	eng := simx.NewEngine()
	c := New(eng)
	n := c.AddNode(validSpec())
	if n.CPUUtil() != 0 || n.DiskUtil() != 0 || n.NetUtil() != 0 {
		t.Fatal("fresh node not idle")
	}
	n.CPU.Acquire(100, nil)
	if n.CPUUtil() <= 0 {
		t.Fatal("CPU util not reflecting claim")
	}
	n.DiskWrite.Acquire(1e6, nil)
	if n.DiskUtil() <= 0 {
		t.Fatal("disk util not reflecting write claim")
	}
	if n.FreeMem() != 8*GB {
		t.Fatalf("free mem = %d", n.FreeMem())
	}
}

func TestDVFSGovernor(t *testing.T) {
	eng := simx.NewEngine()
	c := New(eng)
	n := c.AddNode(validSpec()) // 4 cores at 2 GHz
	g := StartDVFS(eng, n, 0.5, 0.5)
	// Idle: frequency decays to the floor.
	eng.RunUntil(2)
	if got := g.CurrentFreq(); got != 1 {
		t.Fatalf("idle frequency = %v, want floor 1 GHz", got)
	}
	// Load arrives: the next tick ramps back to base, and the claim
	// finishes faster than it would at the floor.
	var done float64
	n.CPU.Acquire(10, func() { done = eng.Now() })
	eng.Schedule(1.1, func() {
		if got := g.CurrentFreq(); got != 2 {
			t.Errorf("loaded frequency = %v, want base 2 GHz", got)
		}
	})
	eng.RunUntil(30)
	// 10 Gc at ≤0.5 s of 1 GHz then 2 GHz: between 5 s (all at base) and
	// 10 s (all at floor).
	took := done - 2
	if took < 4.9 || took > 7 {
		t.Fatalf("claim took %v, want ~5-6 s with ramp-up", took)
	}
	if g.Adjustments == 0 {
		t.Fatal("governor never adjusted")
	}
	g.Stop()
	if g.CurrentFreq() != 2 {
		t.Fatal("Stop did not restore base frequency")
	}
	eng.Run()
}

func TestDVFSDefaults(t *testing.T) {
	eng := simx.NewEngine()
	c := New(eng)
	n := c.AddNode(validSpec())
	g := StartDVFS(eng, n, -1, -1)
	eng.RunUntil(1)
	if got := g.CurrentFreq(); got != 1 { // default floor 0.5 × 2 GHz
		t.Fatalf("default floor = %v", got)
	}
	g.Stop()
	eng.Run()
}
