// Package cluster models heterogeneous cluster hardware: per-node CPU
// (core count × effective per-core speed), memory, NIC bandwidth, disk
// class (SSD vs HDD) with separate read/write bandwidths, and out-of-core
// GPU accelerators. It provides the paper's 12-node "Hydra" testbed
// (Table II: 6× thor, 4× hulk, 2× stack) and the 2-node motivation setup
// of §II-B, plus a builder for arbitrary topologies.
package cluster

import (
	"fmt"

	"rupam/internal/netsim"
	"rupam/internal/simx"
)

// Byte-size and bandwidth helpers.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// MBps converts megabytes/second to bytes/second.
func MBps(mb float64) float64 { return mb * 1e6 }

// GbE converts gigabits/second (network marketing units) to bytes/second.
func GbE(gbits float64) float64 { return gbits * 1e9 / 8 }

// NodeSpec is the static hardware description of a node — the left-hand
// (static) rows of the paper's Table I plus Table II fields.
type NodeSpec struct {
	Name  string
	Class string // hardware class label, e.g. "thor"

	Cores   int
	FreqGHz float64 // effective per-core speed in giga-cycles/sec

	MemBytes int64

	NetBandwidth float64 // bytes/sec, full duplex

	SSD         bool
	DiskReadBW  float64 // bytes/sec
	DiskWriteBW float64 // bytes/sec

	GPUs       int
	GPURateGHz float64 // effective giga-cycles/sec of one GPU for offloadable kernels
}

// Validate reports the first problem with the spec, or nil.
func (s *NodeSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cluster: node without a name")
	case s.Cores <= 0:
		return fmt.Errorf("cluster: node %s: non-positive cores", s.Name)
	case s.FreqGHz <= 0:
		return fmt.Errorf("cluster: node %s: non-positive frequency", s.Name)
	case s.MemBytes <= 0:
		return fmt.Errorf("cluster: node %s: non-positive memory", s.Name)
	case s.NetBandwidth <= 0:
		return fmt.Errorf("cluster: node %s: non-positive network bandwidth", s.Name)
	case s.DiskReadBW <= 0 || s.DiskWriteBW <= 0:
		return fmt.Errorf("cluster: node %s: non-positive disk bandwidth", s.Name)
	case s.GPUs < 0:
		return fmt.Errorf("cluster: node %s: negative GPU count", s.Name)
	case s.GPUs > 0 && s.GPURateGHz <= 0:
		return fmt.Errorf("cluster: node %s: GPUs without a GPU rate", s.Name)
	}
	return nil
}

// CPUCapacity returns the aggregate compute rate in giga-cycles/sec.
func (s *NodeSpec) CPUCapacity() float64 { return float64(s.Cores) * s.FreqGHz }

// Node is the runtime state of one machine: its simx resources.
type Node struct {
	Spec NodeSpec

	CPU       *simx.PSResource // capacity cores×freq, per-claim cap freq
	GPU       *simx.Tokens
	Mem       *simx.Space // OS memory; executors carve their heaps from it
	DiskRead  *simx.PSResource
	DiskWrite *simx.PSResource
	Net       *netsim.Iface
}

// Name returns the node's name.
func (n *Node) Name() string { return n.Spec.Name }

// CPUUtil returns instantaneous CPU utilization in [0,1].
func (n *Node) CPUUtil() float64 { return n.CPU.Utilization() }

// DiskUtil returns the busier of read/write utilization in [0,1].
func (n *Node) DiskUtil() float64 {
	r, w := n.DiskRead.Utilization(), n.DiskWrite.Utilization()
	if r > w {
		return r
	}
	return w
}

// NetUtil returns the busier NIC direction's utilization in [0,1].
func (n *Node) NetUtil() float64 { return n.Net.Utilization() }

// FreeMem returns the node's unreserved memory in bytes.
func (n *Node) FreeMem() int64 { return n.Mem.Free() }

// Cluster ties the nodes to a shared engine and network.
type Cluster struct {
	Eng   *simx.Engine
	Net   *netsim.Network
	Nodes []*Node

	byName map[string]*Node
}

// New creates an empty cluster on the engine.
func New(eng *simx.Engine) *Cluster {
	return &Cluster{Eng: eng, Net: netsim.New(eng), byName: make(map[string]*Node)}
}

// AddNode instantiates a node from spec and wires its resources. It panics
// on an invalid spec or duplicate name; topologies are build-time
// constants, so misconfiguration is a programming error.
func (c *Cluster) AddNode(spec NodeSpec) *Node {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if _, ok := c.byName[spec.Name]; ok {
		panic(fmt.Sprintf("cluster: duplicate node %q", spec.Name))
	}
	n := &Node{
		Spec:      spec,
		CPU:       simx.NewPSResource(c.Eng, spec.Name+"/cpu", spec.CPUCapacity(), spec.FreqGHz),
		GPU:       simx.NewTokens(c.Eng, spec.Name+"/gpu", spec.GPUs),
		Mem:       simx.NewSpace(c.Eng, spec.Name+"/mem", spec.MemBytes),
		DiskRead:  simx.NewPSResource(c.Eng, spec.Name+"/disk-read", spec.DiskReadBW, 0),
		DiskWrite: simx.NewPSResource(c.Eng, spec.Name+"/disk-write", spec.DiskWriteBW, 0),
		Net:       c.Net.AddNode(spec.Name, spec.NetBandwidth, spec.NetBandwidth),
	}
	c.Nodes = append(c.Nodes, n)
	c.byName[spec.Name] = n
	return n
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node { return c.byName[name] }

// NodeNames returns node names in insertion order.
func (c *Cluster) NodeNames() []string {
	names := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		names[i] = n.Spec.Name
	}
	return names
}

// TotalCores returns the cluster-wide core count.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Spec.Cores
	}
	return total
}
