package cluster

import "fmt"

// Hardware classes of the paper's Hydra testbed (Table II). The effective
// per-core speeds encode the SysBench findings of Table IV: thor (AMD
// FX-8320E + SSD) is by far the fastest per core and has the best disk;
// hulk (32-core Opteron 6380) is slightly faster per core than stack
// (Xeon E5620) and has the only 10 GbE NICs and the most memory; stack
// carries the NVIDIA Tesla C2050 GPUs.
var (
	// ThorSpec: 8 cores, 16 GB, 1 GbE, SSD, no GPU.
	ThorSpec = NodeSpec{
		Class: "thor", Cores: 8, FreqGHz: 3.2,
		MemBytes: 16 * GB, NetBandwidth: GbE(1),
		SSD: true, DiskReadBW: MBps(520), DiskWriteBW: MBps(480),
	}
	// HulkSpec: 32 cores, 64 GB, 10 GbE, HDD, no GPU.
	HulkSpec = NodeSpec{
		Class: "hulk", Cores: 32, FreqGHz: 1.0,
		MemBytes: 64 * GB, NetBandwidth: GbE(10),
		SSD: false, DiskReadBW: MBps(160), DiskWriteBW: MBps(140),
	}
	// StackSpec: 16 cores, 48 GB, 1 GbE, HDD, one GPU.
	StackSpec = NodeSpec{
		Class: "stack", Cores: 16, FreqGHz: 0.9,
		MemBytes: 48 * GB, NetBandwidth: GbE(1),
		SSD: false, DiskReadBW: MBps(150), DiskWriteBW: MBps(130),
		GPUs: 1, GPURateGHz: 40,
	}
)

// HydraCounts is the node mix of the paper's testbed.
var HydraCounts = map[string]int{"thor": 6, "hulk": 4, "stack": 2}

// NewHydra builds the 12-node heterogeneous testbed of Table II into c:
// thor1..6, hulk1..4, stack1..2. The paper runs the Spark master
// co-located on a worker (stack1); scheduling code treats all 12 as
// workers.
func NewHydra(c *Cluster) *Cluster {
	add := func(spec NodeSpec, class string, count int) {
		for i := 1; i <= count; i++ {
			s := spec
			s.Name = fmt.Sprintf("%s%d", class, i)
			c.AddNode(s)
		}
	}
	add(ThorSpec, "thor", HydraCounts["thor"])
	add(HulkSpec, "hulk", HydraCounts["hulk"])
	add(StackSpec, "stack", HydraCounts["stack"])
	return c
}

// Motivation specs for the §II-B two-node study: same core count and
// memory, different CPU frequency and network speed.
var (
	// MotivationNode1Spec: 16 cores at 1.6 GHz with a 10 GbE NIC.
	MotivationNode1Spec = NodeSpec{
		Name: "node-1", Class: "moti-slowcpu", Cores: 16, FreqGHz: 1.6,
		MemBytes: 48 * GB, NetBandwidth: GbE(10),
		DiskReadBW: MBps(150), DiskWriteBW: MBps(130),
	}
	// MotivationNode2Spec: 16 cores at 2.4 GHz with a 1 GbE NIC.
	MotivationNode2Spec = NodeSpec{
		Name: "node-2", Class: "moti-fastcpu", Cores: 16, FreqGHz: 2.4,
		MemBytes: 48 * GB, NetBandwidth: GbE(1),
		DiskReadBW: MBps(150), DiskWriteBW: MBps(130),
	}
)

// NewMotivation builds the 2-node heterogeneous setup used for Figures 2
// and 3.
func NewMotivation(c *Cluster) *Cluster {
	c.AddNode(MotivationNode1Spec)
	c.AddNode(MotivationNode2Spec)
	return c
}
