package tenant

import (
	"fmt"
	"sort"
)

// Mid-run and end-state invariants. Violations accumulate on the manager
// (deduplicated — the audit runs every allocation tick) and are surfaced
// in the report; the tenancy experiment and the chaos soak both fail a
// run that reports any.

// auditIsolation walks the shared cache registry and attributes every
// cached partition to its owning application through the RDD ID
// namespace. A partition outside any live application's range is a
// cross-application leak: either an ID collision or cached state that
// outlived its owner.
func (m *Manager) auditIsolation() {
	for _, e := range m.sub.Cache.Keys() {
		owner := e.Key.RDD/IDSpan - 1
		if owner < 0 || owner >= len(m.apps) {
			m.violate(fmt.Sprintf("cache entry rdd %d on %s belongs to no application", e.Key.RDD, e.Node))
			continue
		}
		a := m.apps[owner]
		if !a.started {
			m.violate(fmt.Sprintf("cache entry rdd %d on %s owned by never-started %s", e.Key.RDD, e.Node, a.label))
		} else if a.done {
			m.violate(fmt.Sprintf("cache entry rdd %d on %s outlived its owner %s", e.Key.RDD, e.Node, a.label))
		}
	}
}

func (m *Manager) violate(v string) {
	for _, prev := range m.violations {
		if prev == v {
			return
		}
	}
	m.violations = append(m.violations, v)
}

// checkEndState runs the post-run battery: admission accounting, lease
// drain, substrate resource conservation, and per-application ID
// namespace containment.
func (m *Manager) checkEndState() {
	if m.arrived != m.admitted+m.rejectedN {
		m.violate(fmt.Sprintf("admission accounting: %d arrived != %d admitted + %d rejected",
			m.arrived, m.admitted, m.rejectedN))
	}
	if m.arrived != len(m.arrivals) {
		m.violate(fmt.Sprintf("arrival accounting: %d arrived of %d scheduled", m.arrived, len(m.arrivals)))
	}

	for _, a := range m.apps {
		if a.rejected {
			if a.started {
				m.violate(fmt.Sprintf("%s both rejected and started", a.label))
			}
			continue
		}
		if !a.started || !a.done {
			m.violate(fmt.Sprintf("admitted %s never ran to completion (started=%v done=%v)",
				a.label, a.started, a.done))
			continue
		}
		if n := len(a.leases); n != 0 {
			m.violate(fmt.Sprintf("%s finished holding %d leases", a.label, n))
		}
		m.checkNamespace(a)
	}

	nodes := append([]string(nil), m.nodeOrder...)
	sort.Strings(nodes)
	for _, name := range nodes {
		if n := m.leasedNow[name]; n != 0 {
			m.violate(fmt.Sprintf("%s: %d cores still leased after drain", name, n))
		}
		ex := m.sub.Execs[name]
		if n := ex.RunningTasks(); n != 0 {
			m.violate(fmt.Sprintf("%s: %d tasks still running", name, n))
		}
		if node := m.clu.Node(name); node != nil && node.GPU.InUse() != 0 {
			m.violate(fmt.Sprintf("%s: %d GPU tokens leaked", name, node.GPU.InUse()))
		}
		if cached := m.sub.Cache.NodeBytes(name); cached != 0 {
			m.violate(fmt.Sprintf("%s: %d cached bytes survived all lease releases", name, cached))
		}
		if used := ex.Heap().Used(); used != 0 {
			m.violate(fmt.Sprintf("%s: heap still holds %d bytes after drain", name, used))
		}
		if ex.ProjectedFree() != ex.HeapFree() {
			m.violate(fmt.Sprintf("%s: dangling memory reservation (%d bytes)",
				name, ex.HeapFree()-ex.ProjectedFree()))
		}
	}
	m.checkElasticEndState()
}

// checkNamespace asserts every identifier of the application sits inside
// its own [base, base+IDSpan) range — the structural isolation guarantee
// the shared cache and WAL keys rely on.
func (m *Manager) checkNamespace(a *appState) {
	in := func(id int) bool { return id >= a.base && id < a.base+IDSpan }
	for _, j := range a.app.Jobs {
		if !in(j.ID) {
			m.violate(fmt.Sprintf("%s: job %d outside namespace [%d,%d)", a.label, j.ID, a.base, a.base+IDSpan))
		}
		for _, st := range j.Stages {
			if !in(st.ID) {
				m.violate(fmt.Sprintf("%s: stage %d outside namespace", a.label, st.ID))
			}
			if st.RDDID != 0 && !in(st.RDDID) {
				m.violate(fmt.Sprintf("%s: stage %d rdd %d outside namespace", a.label, st.ID, st.RDDID))
			}
			if st.CacheRDDID != 0 && !in(st.CacheRDDID) {
				m.violate(fmt.Sprintf("%s: stage %d cache rdd %d outside namespace", a.label, st.ID, st.CacheRDDID))
			}
			for _, t := range st.Tasks {
				if !in(t.ID) {
					m.violate(fmt.Sprintf("%s: task %d outside namespace", a.label, t.ID))
				}
				if t.CacheRDD != 0 && !in(t.CacheRDD) {
					m.violate(fmt.Sprintf("%s: task %d cache rdd %d outside namespace", a.label, t.ID, t.CacheRDD))
				}
			}
		}
	}
}
