package tenant

import (
	"fmt"
	"sort"
)

// This file is dynamic executor allocation: each application holds core
// leases on a subset of nodes (the simulated equivalent of its executor
// set). A persistent scheduler backlog doubles the lease count
// (spark.dynamicAllocation backlog timeouts); a lease whose node ran none
// of the application's tasks for the idle timeout is released, dropping
// the application's cached partitions there — which then survive only
// through the existing lineage re-read and CharDB relearn paths. Leases
// never oversubscribe a node: Σ leased cores per node ≤ the node's cores,
// checked at every grant and tracked as a high-water mark for the report.

// armDynalloc starts the periodic allocation evaluation.
func (m *Manager) armDynalloc() {
	m.dynTimer = m.eng.Schedule(m.cfg.Dynalloc.Interval, func() {
		if m.finished {
			return
		}
		m.dynallocTick()
		m.armDynalloc()
	})
}

// dynallocTick evaluates every running application: refresh busy stamps,
// release idle leases, scale up backlogged applications, and audit
// cross-application cache isolation.
func (m *Manager) dynallocTick() {
	now := m.eng.Now()
	changed := false
	for _, a := range m.activeApps() {
		for _, node := range sortedLeaseNodes(a) {
			if a.rt.RunningOn(node) > 0 {
				a.lastBusy[node] = now
			}
		}
		// Scale down: idle leases go back to the cluster, keeping one
		// lease while the application lives so it can always make
		// progress (minExecutors=1).
		for _, node := range sortedLeaseNodes(a) {
			if len(a.leases) <= 1 {
				break
			}
			if now-a.lastBusy[node] > m.cfg.Dynalloc.IdleTimeout {
				m.releaseLease(a, node, "idle-timeout")
				changed = true
			}
		}
		// Scale up: a backlog that outlives the timeout doubles the
		// lease count, capped by what the demand can actually use. Leases
		// on draining (preemption-noticed) nodes are walking dead — they
		// count as zero here so the doubling reflects capacity that will
		// still exist, and replacements are granted while the doomed node
		// works through its grace window.
		_, pending := m.demandOf(a)
		if pending > 0 && now-a.lastScale >= m.cfg.Dynalloc.BacklogTimeout {
			live, pend := m.demandOf(a)
			needExecs := (live + pend + m.cfg.Dynalloc.ExecCores - 1) / m.cfg.Dynalloc.ExecCores
			effLeases := 0
			for node := range a.leases {
				if !m.draining[node] {
					effLeases++
				}
			}
			want := 2 * effLeases
			if want < 1 {
				want = 1
			}
			if want > needExecs {
				want = needExecs
			}
			if want > effLeases {
				if granted := m.scaleUp(a, want-effLeases); granted > 0 {
					a.lastScale = now
					changed = true
				}
			}
		}
	}
	if m.cfg.Elastic.Enabled {
		m.releaseIdleInstances()
	}
	m.auditIsolation()
	if changed {
		m.ScheduleAll()
	}
}

// sortedLeaseNodes returns the application's leased nodes in name order.
func sortedLeaseNodes(a *appState) []string {
	nodes := make([]string, 0, len(a.leases))
	for n := range a.leases {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// grantInitial gives a starting application its initial executor leases.
func (m *Manager) grantInitial(a *appState) {
	m.scaleUp(a, m.cfg.Dynalloc.InitialExecs)
}

// scaleUp grants up to n one-executor leases on nodes with spare lease
// capacity, in cluster order, and returns how many were granted. An
// application holds at most one lease per node (its executor there).
func (m *Manager) scaleUp(a *appState, n int) int {
	granted := 0
	for _, node := range m.nodeOrder {
		if granted >= n {
			break
		}
		if a.leases[node] > 0 {
			continue
		}
		if !m.instanceUsable(node) {
			continue // not acquired from the market, or draining toward a kill
		}
		cores := m.cfg.Dynalloc.ExecCores
		free := m.clu.Node(node).Spec.Cores - m.leasedNow[node]
		if free < cores {
			continue
		}
		a.leases[node] = cores
		a.lastBusy[node] = m.eng.Now()
		m.leasedNow[node] += cores
		if m.leasedNow[node] > m.clu.Node(node).Spec.Cores {
			m.violations = append(m.violations, fmt.Sprintf(
				"lease capacity exceeded on %s: %d cores leased of %d",
				node, m.leasedNow[node], m.clu.Node(node).Spec.Cores))
		}
		if m.leasedNow[node] > m.leaseHighWater[node] {
			m.leaseHighWater[node] = m.leasedNow[node]
		}
		if tot := m.totalLeased(); tot > m.peakLeased {
			m.peakLeased = tot
		}
		m.cfg.Tracer.LeaseChanged(a.label, node, cores, "scale-up")
		granted++
	}
	if granted > 0 && a.rt != nil {
		a.rt.NotifyExecutorSetChanged()
	}
	if granted < n {
		// Unmet demand becomes an acquisition request (no-op unless the
		// elastic market is on): the pilot queue delivers capacity later
		// and the next allocation tick retries the grant.
		m.requestInstances(n - granted)
	}
	return granted
}

// releaseLease returns one lease to the cluster. The application's cached
// partitions on that node are dropped (its executor there is going away;
// a node-level external shuffle service keeps map outputs alive, so only
// cache state is lost) and the heap bytes they held are freed.
func (m *Manager) releaseLease(a *appState, node string, reason string) {
	cores, ok := a.leases[node]
	if !ok {
		return
	}
	delete(a.leases, node)
	delete(a.lastBusy, node)
	m.leasedNow[node] -= cores
	if ex := m.sub.Execs[node]; ex != nil && !ex.Down() {
		if bytes := m.sub.Cache.DropNodeRange(node, a.base, a.base+IDSpan); bytes > 0 {
			ex.Heap().Release(bytes)
		}
	}
	m.cfg.Tracer.LeaseChanged(a.label, node, 0, reason)
	if a.rt != nil && !a.done {
		a.rt.NotifyExecutorSetChanged()
	}
}

// releaseAllLeases drains an application's lease set (app completion).
func (m *Manager) releaseAllLeases(a *appState, reason string) {
	for _, node := range sortedLeaseNodes(a) {
		m.releaseLease(a, node, reason)
	}
}

// totalLeased sums currently leased cores across the cluster.
func (m *Manager) totalLeased() int {
	tot := 0
	for _, n := range m.leasedNow {
		tot += n
	}
	return tot
}
