package tenant

import (
	"testing"

	"rupam/internal/core"
	"rupam/internal/hdfs"
	"rupam/internal/workloads"
)

// quickCfg is a small, fast scenario: six applications, short gaps.
func quickCfg(scheduler string, seed uint64) Config {
	return Config{
		Scheduler: scheduler,
		Seed:      seed,
		Arrivals:  ArrivalConfig{Count: 6, MeanGap: 15},
	}
}

func TestTenancySmoke(t *testing.T) {
	for _, sched := range []string{"spark", "rupam"} {
		t.Run(sched, func(t *testing.T) {
			rep := NewManager(quickCfg(sched, 1)).Run()
			if len(rep.Violations) != 0 {
				t.Fatalf("invariant violations: %v", rep.Violations)
			}
			if rep.Arrived != 6 {
				t.Fatalf("arrived %d, want 6", rep.Arrived)
			}
			if rep.Arrived != rep.Admitted+rep.Rejected {
				t.Fatalf("admission accounting: %d != %d + %d", rep.Arrived, rep.Admitted, rep.Rejected)
			}
			if rep.Completed+rep.Aborted != rep.Admitted {
				t.Fatalf("%d completed + %d aborted != %d admitted", rep.Completed, rep.Aborted, rep.Admitted)
			}
			if rep.Aborted != 0 {
				t.Fatalf("fault-free run aborted %d apps", rep.Aborted)
			}
			if rep.PeakLeasedCores > rep.CapacityCores {
				t.Fatalf("leases exceeded capacity: %d > %d", rep.PeakLeasedCores, rep.CapacityCores)
			}
			if rep.PeakLeasedCores == 0 {
				t.Fatal("no leases ever granted")
			}
			if rep.P50Latency <= 0 || rep.P99Latency < rep.P50Latency {
				t.Fatalf("bad latency percentiles: p50=%v p99=%v", rep.P50Latency, rep.P99Latency)
			}
			for _, n := range rep.LeaseHighWater {
				if n <= 0 {
					t.Fatalf("lease high-water not tracked: %v", rep.LeaseHighWater)
				}
			}
		})
	}
}

func TestTenancyDeterminism(t *testing.T) {
	for _, sched := range []string{"spark", "rupam"} {
		a := NewManager(quickCfg(sched, 7)).Run()
		b := NewManager(quickCfg(sched, 7)).Run()
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("%s: fingerprints differ across identical runs: %s vs %s",
				sched, a.Fingerprint, b.Fingerprint)
		}
		c := NewManager(quickCfg(sched, 8)).Run()
		if a.Fingerprint == c.Fingerprint {
			t.Fatalf("%s: different seeds produced identical fingerprints", sched)
		}
	}
}

// TestAdmissionControl floods a single-slot system and checks that every
// arrival is accounted for: admitted + rejected == arrived, with real
// rejections and a bounded queue.
func TestAdmissionControl(t *testing.T) {
	cfg := Config{
		Scheduler:         "spark",
		Seed:              3,
		MaxConcurrentApps: 1,
		MaxPendingApps:    1,
		Arrivals: ArrivalConfig{
			Count: 6, MeanGap: 1, Distribution: "fixed",
			Mix: []AppMix{{Workload: "PR", Pool: "analytics", Weight: 1,
				Params: workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}}},
		},
	}
	rep := NewManager(cfg).Run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Rejected == 0 {
		t.Fatal("expected rejections with a 1-deep admission queue and 1 s arrivals")
	}
	if rep.Arrived != rep.Admitted+rep.Rejected {
		t.Fatalf("admission accounting: %d != %d + %d", rep.Arrived, rep.Admitted, rep.Rejected)
	}
	// Rejected apps must carry a record too — no silent drops.
	rejectedRecords := 0
	for _, a := range rep.Apps {
		if a.Rejected {
			rejectedRecords++
		}
	}
	if rejectedRecords != rep.Rejected {
		t.Fatalf("%d rejected apps but %d rejection records", rep.Rejected, rejectedRecords)
	}
}

// TestSharedCharDBWarmStart is the cross-application learning check: with
// the shared characteristics database, the second instance of a workload
// launches far fewer uncharacterized (never-observed) tasks than the
// first, because the first app's observations persist.
func TestSharedCharDBWarmStart(t *testing.T) {
	cfg := Config{
		Scheduler: "rupam",
		Seed:      5,
		Arrivals: ArrivalConfig{
			Count: 2, MeanGap: 400, Distribution: "fixed",
			Mix: []AppMix{{Workload: "PR", Pool: "analytics", Weight: 1,
				Params: workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}}},
		},
	}
	rep := NewManager(cfg).Run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	m2 := NewManager(cfg)
	m2.cfg.PrivateCharDB = true
	rep2 := m2.Run()
	if len(rep2.Violations) != 0 {
		t.Fatalf("violations (private DB): %v", rep2.Violations)
	}

	uncharacterized := func(m *Manager) []int {
		var out []int
		for _, run := range m.AppRuns() {
			s, ok := run.Runtime.Scheduler().(*core.RUPAM)
			if !ok {
				t.Fatal("rupam run without RUPAM scheduler")
			}
			out = append(out, s.UncharacterizedLaunches)
		}
		return out
	}

	mShared := NewManager(cfg)
	repShared := mShared.Run()
	if repShared.Fingerprint != rep.Fingerprint {
		t.Fatalf("warm-start rerun not deterministic")
	}
	shared := uncharacterized(mShared)
	if len(shared) != 2 {
		t.Fatalf("expected 2 app runs, got %d", len(shared))
	}
	if shared[0] == 0 {
		t.Fatal("first app launched zero uncharacterized tasks (counter broken?)")
	}
	if shared[1] >= shared[0] {
		t.Fatalf("shared CharDB did not warm-start: app0=%d app1=%d uncharacterized launches",
			shared[0], shared[1])
	}

	mPriv := NewManager(cfg)
	mPriv.cfg.PrivateCharDB = true
	mPriv.Run()
	private := uncharacterized(mPriv)
	if private[1] < shared[1] {
		t.Fatalf("private DBs warm-started better than the shared one: %d < %d", private[1], shared[1])
	}
}

// TestDynallocScalesAndDrains checks the allocation state machine:
// backlogged applications grow past their initial lease, and every lease
// is back with the cluster by the end (the drain is asserted by the
// invariant battery; here we assert growth actually happened).
func TestDynallocScalesAndDrains(t *testing.T) {
	rep := NewManager(quickCfg("spark", 11)).Run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	execCores := 8 // DynallocConfig default
	if rep.PeakLeasedCores <= execCores {
		t.Fatalf("dynamic allocation never scaled past the initial lease (peak %d cores)",
			rep.PeakLeasedCores)
	}
}

func TestRenumber(t *testing.T) {
	store := hdfs.NewStore([]string{"n1", "n2"}, 2, 1)
	app := workloads.Build("PR", store, workloads.Params{InputGB: 0.5, Partitions: 8, Iterations: 2, Seed: 9})
	base := 3 * IDSpan
	Renumber(app, base)
	seen := make(map[int]bool)
	for _, tk := range app.AllTasks() {
		if tk.ID < base || tk.ID >= base+IDSpan {
			t.Fatalf("task %d outside namespace", tk.ID)
		}
		if seen[tk.ID] {
			t.Fatalf("duplicate task id %d after renumbering", tk.ID)
		}
		seen[tk.ID] = true
		if tk.StageID < base || tk.StageID >= base+IDSpan {
			t.Fatalf("stage id %d outside namespace", tk.StageID)
		}
		if tk.CacheRDD != 0 && (tk.CacheRDD < base || tk.CacheRDD >= base+IDSpan) {
			t.Fatalf("cache rdd %d outside namespace", tk.CacheRDD)
		}
	}
	for _, j := range app.Jobs {
		if j.ID < base || j.ID >= base+IDSpan {
			t.Fatalf("job %d outside namespace", j.ID)
		}
	}
}

func TestWaterFill(t *testing.T) {
	mk := func(name string, w float64, min, demand int) *poolShare {
		return &poolShare{cfg: PoolConfig{Name: name, Weight: w, MinShare: min}, demand: demand}
	}
	// Over-demanded system: minShares honored first, remainder by
	// weight, every grant capped by demand.
	pools := []*poolShare{
		mk("a", 2, 32, 100),
		mk("b", 1, 16, 10),
		mk("c", 1, 0, 100),
	}
	waterFill(120, pools)
	total := 0
	for _, p := range pools {
		if p.grant > p.demand {
			t.Fatalf("pool %s granted %d beyond demand %d", p.cfg.Name, p.grant, p.demand)
		}
		total += p.grant
	}
	if total != 120 {
		t.Fatalf("granted %d of 120 despite excess demand", total)
	}
	if pools[1].grant != 10 {
		t.Fatalf("pool b should be demand-capped at 10, got %d", pools[1].grant)
	}
	// a (weight 2) should end up with more than c (weight 1).
	if pools[0].grant <= pools[2].grant {
		t.Fatalf("weighted sharing violated: a=%d c=%d", pools[0].grant, pools[2].grant)
	}
	// Under-demanded system: everyone fully satisfied.
	pools = []*poolShare{mk("a", 1, 0, 20), mk("b", 1, 0, 30)}
	waterFill(240, pools)
	if pools[0].grant != 20 || pools[1].grant != 30 {
		t.Fatalf("under-demanded grants wrong: %d, %d", pools[0].grant, pools[1].grant)
	}
}
