package tenant

import (
	"reflect"
	"testing"

	"rupam/internal/core"
	"rupam/internal/faults"
	"rupam/internal/hdfs"
	"rupam/internal/workloads"
)

// quickCfg is a small, fast scenario: six applications, short gaps.
func quickCfg(scheduler string, seed uint64) Config {
	return Config{
		Scheduler: scheduler,
		Seed:      seed,
		Arrivals:  ArrivalConfig{Count: 6, MeanGap: 15},
	}
}

func TestTenancySmoke(t *testing.T) {
	for _, sched := range []string{"spark", "rupam"} {
		t.Run(sched, func(t *testing.T) {
			rep := NewManager(quickCfg(sched, 1)).Run()
			if len(rep.Violations) != 0 {
				t.Fatalf("invariant violations: %v", rep.Violations)
			}
			if rep.Arrived != 6 {
				t.Fatalf("arrived %d, want 6", rep.Arrived)
			}
			if rep.Arrived != rep.Admitted+rep.Rejected {
				t.Fatalf("admission accounting: %d != %d + %d", rep.Arrived, rep.Admitted, rep.Rejected)
			}
			if rep.Completed+rep.Aborted != rep.Admitted {
				t.Fatalf("%d completed + %d aborted != %d admitted", rep.Completed, rep.Aborted, rep.Admitted)
			}
			if rep.Aborted != 0 {
				t.Fatalf("fault-free run aborted %d apps", rep.Aborted)
			}
			if rep.PeakLeasedCores > rep.CapacityCores {
				t.Fatalf("leases exceeded capacity: %d > %d", rep.PeakLeasedCores, rep.CapacityCores)
			}
			if rep.PeakLeasedCores == 0 {
				t.Fatal("no leases ever granted")
			}
			if rep.P50Latency <= 0 || rep.P99Latency < rep.P50Latency {
				t.Fatalf("bad latency percentiles: p50=%v p99=%v", rep.P50Latency, rep.P99Latency)
			}
			for _, n := range rep.LeaseHighWater {
				if n <= 0 {
					t.Fatalf("lease high-water not tracked: %v", rep.LeaseHighWater)
				}
			}
		})
	}
}

func TestTenancyDeterminism(t *testing.T) {
	for _, sched := range []string{"spark", "rupam"} {
		a := NewManager(quickCfg(sched, 7)).Run()
		b := NewManager(quickCfg(sched, 7)).Run()
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("%s: fingerprints differ across identical runs: %s vs %s",
				sched, a.Fingerprint, b.Fingerprint)
		}
		c := NewManager(quickCfg(sched, 8)).Run()
		if a.Fingerprint == c.Fingerprint {
			t.Fatalf("%s: different seeds produced identical fingerprints", sched)
		}
	}
}

// TestAdmissionControl floods a single-slot system and checks that every
// arrival is accounted for: admitted + rejected == arrived, with real
// rejections and a bounded queue.
func TestAdmissionControl(t *testing.T) {
	cfg := Config{
		Scheduler:         "spark",
		Seed:              3,
		MaxConcurrentApps: 1,
		MaxPendingApps:    1,
		Arrivals: ArrivalConfig{
			Count: 6, MeanGap: 1, Distribution: "fixed",
			Mix: []AppMix{{Workload: "PR", Pool: "analytics", Weight: 1,
				Params: workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}}},
		},
	}
	rep := NewManager(cfg).Run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Rejected == 0 {
		t.Fatal("expected rejections with a 1-deep admission queue and 1 s arrivals")
	}
	if rep.Arrived != rep.Admitted+rep.Rejected {
		t.Fatalf("admission accounting: %d != %d + %d", rep.Arrived, rep.Admitted, rep.Rejected)
	}
	// Rejected apps must carry a record too — no silent drops.
	rejectedRecords := 0
	for _, a := range rep.Apps {
		if a.Rejected {
			rejectedRecords++
		}
	}
	if rejectedRecords != rep.Rejected {
		t.Fatalf("%d rejected apps but %d rejection records", rep.Rejected, rejectedRecords)
	}
}

// TestSharedCharDBWarmStart is the cross-application learning check: with
// the shared characteristics database, the second instance of a workload
// launches far fewer uncharacterized (never-observed) tasks than the
// first, because the first app's observations persist.
func TestSharedCharDBWarmStart(t *testing.T) {
	cfg := Config{
		Scheduler: "rupam",
		Seed:      5,
		Arrivals: ArrivalConfig{
			Count: 2, MeanGap: 400, Distribution: "fixed",
			Mix: []AppMix{{Workload: "PR", Pool: "analytics", Weight: 1,
				Params: workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}}},
		},
	}
	rep := NewManager(cfg).Run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	m2 := NewManager(cfg)
	m2.cfg.PrivateCharDB = true
	rep2 := m2.Run()
	if len(rep2.Violations) != 0 {
		t.Fatalf("violations (private DB): %v", rep2.Violations)
	}

	uncharacterized := func(m *Manager) []int {
		var out []int
		for _, run := range m.AppRuns() {
			s, ok := run.Runtime.Scheduler().(*core.RUPAM)
			if !ok {
				t.Fatal("rupam run without RUPAM scheduler")
			}
			out = append(out, s.UncharacterizedLaunches)
		}
		return out
	}

	mShared := NewManager(cfg)
	repShared := mShared.Run()
	if repShared.Fingerprint != rep.Fingerprint {
		t.Fatalf("warm-start rerun not deterministic")
	}
	shared := uncharacterized(mShared)
	if len(shared) != 2 {
		t.Fatalf("expected 2 app runs, got %d", len(shared))
	}
	if shared[0] == 0 {
		t.Fatal("first app launched zero uncharacterized tasks (counter broken?)")
	}
	if shared[1] >= shared[0] {
		t.Fatalf("shared CharDB did not warm-start: app0=%d app1=%d uncharacterized launches",
			shared[0], shared[1])
	}

	mPriv := NewManager(cfg)
	mPriv.cfg.PrivateCharDB = true
	mPriv.Run()
	private := uncharacterized(mPriv)
	if private[1] < shared[1] {
		t.Fatalf("private DBs warm-started better than the shared one: %d < %d", private[1], shared[1])
	}
}

// TestDynallocScalesAndDrains checks the allocation state machine:
// backlogged applications grow past their initial lease, and every lease
// is back with the cluster by the end (the drain is asserted by the
// invariant battery; here we assert growth actually happened).
func TestDynallocScalesAndDrains(t *testing.T) {
	rep := NewManager(quickCfg("spark", 11)).Run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	execCores := 8 // DynallocConfig default
	if rep.PeakLeasedCores <= execCores {
		t.Fatalf("dynamic allocation never scaled past the initial lease (peak %d cores)",
			rep.PeakLeasedCores)
	}
}

func TestRenumber(t *testing.T) {
	store := hdfs.NewStore([]string{"n1", "n2"}, 2, 1)
	app := workloads.Build("PR", store, workloads.Params{InputGB: 0.5, Partitions: 8, Iterations: 2, Seed: 9})
	base := 3 * IDSpan
	Renumber(app, base)
	seen := make(map[int]bool)
	for _, tk := range app.AllTasks() {
		if tk.ID < base || tk.ID >= base+IDSpan {
			t.Fatalf("task %d outside namespace", tk.ID)
		}
		if seen[tk.ID] {
			t.Fatalf("duplicate task id %d after renumbering", tk.ID)
		}
		seen[tk.ID] = true
		if tk.StageID < base || tk.StageID >= base+IDSpan {
			t.Fatalf("stage id %d outside namespace", tk.StageID)
		}
		if tk.CacheRDD != 0 && (tk.CacheRDD < base || tk.CacheRDD >= base+IDSpan) {
			t.Fatalf("cache rdd %d outside namespace", tk.CacheRDD)
		}
	}
	for _, j := range app.Jobs {
		if j.ID < base || j.ID >= base+IDSpan {
			t.Fatalf("job %d outside namespace", j.ID)
		}
	}
}

func TestWaterFill(t *testing.T) {
	mk := func(name string, w float64, min, demand int) *poolShare {
		return &poolShare{cfg: PoolConfig{Name: name, Weight: w, MinShare: min}, demand: demand}
	}
	// Over-demanded system: minShares honored first, remainder by
	// weight, every grant capped by demand.
	pools := []*poolShare{
		mk("a", 2, 32, 100),
		mk("b", 1, 16, 10),
		mk("c", 1, 0, 100),
	}
	waterFill(120, pools)
	total := 0
	for _, p := range pools {
		if p.grant > p.demand {
			t.Fatalf("pool %s granted %d beyond demand %d", p.cfg.Name, p.grant, p.demand)
		}
		total += p.grant
	}
	if total != 120 {
		t.Fatalf("granted %d of 120 despite excess demand", total)
	}
	if pools[1].grant != 10 {
		t.Fatalf("pool b should be demand-capped at 10, got %d", pools[1].grant)
	}
	// a (weight 2) should end up with more than c (weight 1).
	if pools[0].grant <= pools[2].grant {
		t.Fatalf("weighted sharing violated: a=%d c=%d", pools[0].grant, pools[2].grant)
	}
	// Under-demanded system: everyone fully satisfied.
	pools = []*poolShare{mk("a", 1, 0, 20), mk("b", 1, 0, 30)}
	waterFill(240, pools)
	if pools[0].grant != 20 || pools[1].grant != 30 {
		t.Fatalf("under-demanded grants wrong: %d, %d", pools[0].grant, pools[1].grant)
	}
}

func TestElasticBackoffSchedule(t *testing.T) {
	// Twelve applications arriving two seconds apart overrun the Hydra
	// market: once all twelve instances are held, further acquisition
	// requests hit capacity denials and must retry under the bounded
	// exponential schedule — min(Base·2^(i−1), Max), reset by any grant.
	run := func() (*Manager, *Report) {
		m := NewManager(Config{
			Scheduler: "rupam", Seed: 11,
			Arrivals: ArrivalConfig{Count: 12, MeanGap: 2},
			Elastic:  ElasticConfig{Enabled: true},
		})
		return m, m.Run()
	}
	m, rep := run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations under market pressure: %v", rep.Violations)
	}
	if m.AcquireDenials() == 0 {
		t.Fatal("twelve concurrent apps on a twelve-instance market drew no capacity denials")
	}
	delays := m.BackoffDelays()
	if len(delays) != m.AcquireDenials() {
		t.Fatalf("%d backoff delays for %d denials", len(delays), m.AcquireDenials())
	}
	e := ElasticConfig{Enabled: true}.withDefaults()
	for i, d := range delays {
		if d > e.BackoffMax {
			t.Fatalf("delay[%d] = %.0f exceeds BackoffMax %.0f", i, d, e.BackoffMax)
		}
		if i == 0 || delays[i-1] == e.BackoffMax {
			// First retry, or continuing from a capped delay.
			if d != e.BackoffBase && d != e.BackoffMax {
				t.Fatalf("delay[%d] = %.0f, want base %.0f or cap %.0f", i, d, e.BackoffBase, e.BackoffMax)
			}
			continue
		}
		if d != e.BackoffBase && d != 2*delays[i-1] {
			t.Fatalf("delay[%d] = %.0f follows %.0f: want a reset to %.0f or a doubling",
				i, d, delays[i-1], e.BackoffBase)
		}
	}
	// A grant must have reset the schedule at least once: the market frees
	// instances as apps finish, so the denial streaks are interleaved.
	resets := 0
	for i := 1; i < len(delays); i++ {
		if delays[i] == e.BackoffBase {
			resets++
		}
	}
	if resets == 0 {
		t.Fatal("backoff schedule never reset; grants should interleave with denials")
	}
	m2, _ := run()
	if !reflect.DeepEqual(delays, m2.BackoffDelays()) {
		t.Fatalf("backoff trace not deterministic: %v vs %v", delays, m2.BackoffDelays())
	}
}

func TestElasticSpotChurnConservesLeases(t *testing.T) {
	// Hot spot hazards churn three instances through repeated
	// preempt→release→re-acquire cycles. Whatever the provider does, the
	// manager's books must stay straight: every notice is followed by its
	// kill, lease accounting never exceeds capacity, and the whole episode
	// replays bit-identically.
	spot := []string{"thor4", "thor5", "hulk3"}
	plan := faults.SpotSchedule(11, spot,
		map[string]float64{"thor4": 120, "thor5": 120, "hulk3": 120},
		faults.GenConfig{Horizon: 120, MinGrace: 6, MaxGrace: 12})
	run := func() (*Manager, *Report) {
		m := NewManager(Config{
			Scheduler: "rupam", Seed: 11,
			Arrivals: ArrivalConfig{Count: 8, MeanGap: 10},
			Faults:   plan,
			Elastic:  ElasticConfig{Enabled: true, SpotNodes: spot},
		})
		return m, m.Run()
	}
	m, rep := run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations under spot churn: %v", rep.Violations)
	}
	notices, kills := m.SpotEvents()
	if notices == 0 || notices != kills {
		t.Fatalf("notices=%d kills=%d; every warning must be followed by its kill", notices, kills)
	}
	if rep.Acquisitions <= kills {
		t.Fatalf("acquisitions=%d with %d kills: reclaimed capacity was never re-acquired",
			rep.Acquisitions, kills)
	}
	if rep.PeakLeasedCores > rep.CapacityCores {
		t.Fatalf("peak leased %d cores exceeds capacity %d", rep.PeakLeasedCores, rep.CapacityCores)
	}
	if rep.CloudCost <= 0 {
		t.Fatal("elastic run metered no cost")
	}
	if rep.Fingerprint == "" {
		t.Fatal("no fingerprint")
	}
	_, rep2 := run()
	if rep2.Fingerprint != rep.Fingerprint {
		t.Fatalf("spot churn not deterministic: %s vs %s", rep2.Fingerprint, rep.Fingerprint)
	}
}
