package tenant

import (
	"fmt"
	"math"

	"rupam/internal/stats"
	"rupam/internal/workloads"
)

// This file is the open-loop arrival generator: every arrival time,
// workload choice and pool assignment is pre-drawn from one seeded stream
// before the simulation starts, so the arrival process is independent of
// system state (open-loop) and byte-identical per seed.

// AppMix is one entry of the workload mix: which application arrives, the
// tenant pool it belongs to, and its relative arrival frequency.
type AppMix struct {
	Workload string
	Pool     string
	Weight   float64
	// Params overrides the tenancy-reduced defaults (zero fields keep
	// them). The tenancy experiment wants many short applications, not a
	// few Table III-sized ones.
	Params workloads.Params
}

// ArrivalConfig parameterizes the generator.
type ArrivalConfig struct {
	// Count is how many applications arrive in total (default 10).
	Count int
	// MeanGap is the mean inter-arrival time in seconds (default 30).
	MeanGap float64
	// Distribution shapes the gaps: "exp" (Poisson process, default),
	// "uniform" (0.5–1.5 × MeanGap), or "fixed".
	Distribution string
	// Mix is the workload mix; empty takes DefaultMix.
	Mix []AppMix
}

func (a ArrivalConfig) withDefaults() ArrivalConfig {
	if a.Count == 0 {
		a.Count = 10
	}
	if a.MeanGap == 0 {
		a.MeanGap = 30
	}
	if a.Distribution == "" {
		a.Distribution = "exp"
	}
	if len(a.Mix) == 0 {
		a.Mix = DefaultMix()
	}
	return a
}

// DefaultMix is the tenancy experiment's stream: a mixed SparkBench
// workload population at reduced sizes (the chaos harness's trick — many
// short applications instead of a few long ones), spread over the three
// default pools.
func DefaultMix() []AppMix {
	return []AppMix{
		{Workload: "PR", Pool: "analytics", Weight: 3,
			Params: workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}},
		{Workload: "SQL", Pool: "analytics", Weight: 2,
			Params: workloads.Params{InputGB: 3, Partitions: 48, Iterations: 2}},
		{Workload: "LR", Pool: "ml", Weight: 2,
			Params: workloads.Params{InputGB: 1.5, Partitions: 24, Iterations: 3}},
		{Workload: "KMeans", Pool: "ml", Weight: 1,
			Params: workloads.Params{InputGB: 1.2, Partitions: 24, Iterations: 3}},
		{Workload: "TeraSort", Pool: "batch", Weight: 1,
			Params: workloads.Params{InputGB: 4, Partitions: 64, Iterations: 1}},
	}
}

// arrival is one pre-drawn submission.
type arrival struct {
	at       float64
	workload string
	pool     string
	params   workloads.Params
}

// drawArrivals materializes the whole arrival stream from the seed.
func drawArrivals(seed uint64, cfg ArrivalConfig) []arrival {
	rng := stats.NewRand(seed*9176 + 13)
	var totalW float64
	for _, mx := range cfg.Mix {
		w := mx.Weight
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	out := make([]arrival, cfg.Count)
	t := 0.0
	for i := range out {
		t += drawGap(rng, cfg)
		pick := rng.Float64() * totalW
		mx := cfg.Mix[len(cfg.Mix)-1]
		for _, c := range cfg.Mix {
			w := c.Weight
			if w <= 0 {
				w = 1
			}
			if pick < w {
				mx = c
				break
			}
			pick -= w
		}
		out[i] = arrival{at: t, workload: mx.Workload, pool: mx.Pool, params: mx.Params}
	}
	return out
}

func drawGap(rng *stats.Rand, cfg ArrivalConfig) float64 {
	switch cfg.Distribution {
	case "exp":
		// Inverse-CDF exponential; 1-U keeps the argument in (0,1].
		return -cfg.MeanGap * math.Log(1-rng.Float64())
	case "uniform":
		return cfg.MeanGap * (0.5 + rng.Float64())
	case "fixed":
		return cfg.MeanGap
	default:
		panic(fmt.Sprintf("tenant: unknown arrival distribution %q", cfg.Distribution))
	}
}
