package tenant

import "rupam/internal/task"

// Renumber moves every identifier in app into the namespace starting at
// base: task, stage and job IDs, and the RDD IDs behind cache keys. Stage
// signatures are deliberately left alone — they identify the computation,
// not the instance, and the shared characteristics database recognizes
// recurring work across applications through them (the paper's §III-B2
// observation that data centers re-run the same applications).
func Renumber(app *task.Application, base int) {
	seenStage := make(map[*task.Stage]bool)
	for _, j := range app.Jobs {
		j.ID += base
		for _, st := range j.Stages {
			if seenStage[st] {
				continue
			}
			seenStage[st] = true
			st.ID += base
			st.JobID += base
			if st.RDDID != 0 {
				st.RDDID += base
			}
			if st.CacheRDDID != 0 {
				st.CacheRDDID += base
			}
			for _, t := range st.Tasks {
				t.ID += base
				t.StageID += base
				if t.CacheRDD != 0 {
					t.CacheRDD += base
				}
			}
		}
	}
}
