package tenant

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"rupam/internal/spark"
)

// AppRecord is one application's lifecycle summary in the run artifact.
type AppRecord struct {
	Label    string  `json:"label"`
	Workload string  `json:"workload"`
	Pool     string  `json:"pool"`
	ArriveAt float64 `json:"arrive_at"`
	StartAt  float64 `json:"start_at"`
	EndAt    float64 `json:"end_at"`
	// QueueWait is admission-queue time (start − arrival).
	QueueWait float64 `json:"queue_wait"`
	// Duration is running time (end − start); Latency is the
	// user-visible response time (end − arrival).
	Duration float64 `json:"duration"`
	Latency  float64 `json:"latency"`
	Rejected bool    `json:"rejected,omitempty"`
	Aborted  string  `json:"aborted,omitempty"`
	Launches int     `json:"launches"`
	Tasks    int     `json:"tasks"`
}

// PoolReport aggregates one pool's outcomes.
type PoolReport struct {
	Name     string  `json:"name"`
	Weight   float64 `json:"weight"`
	MinShare int     `json:"min_share"`

	Arrived   int `json:"arrived"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Aborted   int `json:"aborted"`

	// JobsPerHour is completed applications per simulated hour of
	// makespan; latency percentiles include admission-queue wait.
	JobsPerHour   float64 `json:"jobs_per_hour"`
	P50Latency    float64 `json:"p50_latency"`
	P95Latency    float64 `json:"p95_latency"`
	P99Latency    float64 `json:"p99_latency"`
	MeanQueueWait float64 `json:"mean_queue_wait"`
	// MeanSlowdown is mean(latency ÷ isolated duration) over completed
	// applications; the experiment layer fills it from baseline runs
	// (zero when baselines were not measured).
	MeanSlowdown float64 `json:"mean_slowdown,omitempty"`
}

// Report is the full multi-tenant run artifact.
type Report struct {
	Scheduler string  `json:"scheduler"`
	Seed      uint64  `json:"seed"`
	Makespan  float64 `json:"makespan"`

	Arrived   int `json:"arrived"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Aborted   int `json:"aborted"`

	JobsPerHour float64 `json:"jobs_per_hour"`
	P50Latency  float64 `json:"p50_latency"`
	P95Latency  float64 `json:"p95_latency"`
	P99Latency  float64 `json:"p99_latency"`

	// CapacityCores is total cluster cores; PeakLeasedCores the dynamic
	// allocator's high-water mark (never above capacity).
	CapacityCores   int            `json:"capacity_cores"`
	PeakLeasedCores int            `json:"peak_leased_cores"`
	LeaseHighWater  map[string]int `json:"lease_high_water"`

	// Elastic-substrate outcomes (all zero on fixed-cluster runs).
	CloudCost      float64 `json:"cloud_cost,omitempty"`
	Acquisitions   int     `json:"acquisitions,omitempty"`
	AcquireDenials int     `json:"acquire_denials,omitempty"`
	SpotNotices    int     `json:"spot_notices,omitempty"`
	SpotKills      int     `json:"spot_kills,omitempty"`

	Pools []PoolReport `json:"pools"`
	Apps  []AppRecord  `json:"apps"`

	Violations  []string `json:"violations,omitempty"`
	Fingerprint string   `json:"fingerprint"`
}

// AppRun couples an application's record with its live result and
// runtime, for callers (chaos, experiments) running deeper invariant
// batteries than the report carries.
type AppRun struct {
	Record  AppRecord
	Result  *spark.Result
	Runtime *spark.Runtime
}

// AppRuns returns every started application's run, in arrival order.
// Valid after Run.
func (m *Manager) AppRuns() []AppRun {
	var out []AppRun
	for _, a := range m.apps {
		if !a.started {
			continue
		}
		out = append(out, AppRun{Record: m.recordOf(a), Result: a.res, Runtime: a.rt})
	}
	return out
}

// Substrate exposes the shared cluster-side state (invariant checks).
func (m *Manager) Substrate() *spark.Substrate { return m.sub }

// Violations returns the accumulated invariant violations.
func (m *Manager) Violations() []string { return m.violations }

func (m *Manager) recordOf(a *appState) AppRecord {
	rec := AppRecord{
		Label:    a.label,
		Workload: a.workload,
		Pool:     a.pool,
		ArriveAt: a.arriveAt,
		Rejected: a.rejected,
	}
	if a.started {
		rec.StartAt = a.startAt
		rec.EndAt = a.endAt
		rec.QueueWait = a.startAt - a.arriveAt
		rec.Duration = a.endAt - a.startAt
		rec.Latency = a.endAt - a.arriveAt
		rec.Tasks = a.app.NumTasks()
	}
	if a.res != nil {
		rec.Launches = a.res.Launches
		if a.res.Aborted != nil {
			rec.Aborted = a.res.Aborted.Error()
		}
	}
	return rec
}

// percentile returns the q-quantile (0<q≤1) of sorted xs, nearest-rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (m *Manager) buildReport() *Report {
	rep := &Report{
		Scheduler:       m.cfg.Scheduler,
		Seed:            m.cfg.Seed,
		Makespan:        m.finishedAt,
		Arrived:         m.arrived,
		Admitted:        m.admitted,
		Rejected:        m.rejectedN,
		CapacityCores:   m.capacity,
		PeakLeasedCores: m.peakLeased,
		LeaseHighWater:  m.leaseHighWater,
		CloudCost:       m.cloudCost,
		Acquisitions:    m.acquisitions,
		AcquireDenials:  m.denials,
		SpotNotices:     m.spotNotices,
		SpotKills:       m.spotKills,
		Violations:      m.violations,
	}

	type agg struct {
		rep       PoolReport
		latencies []float64
		waits     []float64
	}
	poolAgg := make(map[string]*agg)
	poolOrder := make([]string, 0, len(m.cfg.Pools))
	addPool := func(pc PoolConfig) *agg {
		g := &agg{rep: PoolReport{Name: pc.Name, Weight: pc.Weight, MinShare: pc.MinShare}}
		if g.rep.Weight <= 0 {
			g.rep.Weight = 1
		}
		poolAgg[pc.Name] = g
		poolOrder = append(poolOrder, pc.Name)
		return g
	}
	for _, pc := range m.cfg.Pools {
		addPool(pc)
	}

	var allLatencies []float64
	for _, a := range m.apps {
		rec := m.recordOf(a)
		rep.Apps = append(rep.Apps, rec)
		g := poolAgg[a.pool]
		if g == nil {
			g = addPool(PoolConfig{Name: a.pool, Weight: 1})
		}
		g.rep.Arrived++
		if a.rejected {
			g.rep.Rejected++
			continue
		}
		g.rep.Admitted++
		if rec.Aborted != "" {
			g.rep.Aborted++
			rep.Aborted++
			continue
		}
		if a.done {
			g.rep.Completed++
			rep.Completed++
			g.latencies = append(g.latencies, rec.Latency)
			g.waits = append(g.waits, rec.QueueWait)
			allLatencies = append(allLatencies, rec.Latency)
		}
	}

	hours := rep.Makespan / 3600
	for _, name := range poolOrder {
		g := poolAgg[name]
		sort.Float64s(g.latencies)
		g.rep.P50Latency = percentile(g.latencies, 0.50)
		g.rep.P95Latency = percentile(g.latencies, 0.95)
		g.rep.P99Latency = percentile(g.latencies, 0.99)
		if hours > 0 {
			g.rep.JobsPerHour = float64(g.rep.Completed) / hours
		}
		for _, w := range g.waits {
			g.rep.MeanQueueWait += w
		}
		if len(g.waits) > 0 {
			g.rep.MeanQueueWait /= float64(len(g.waits))
		}
		rep.Pools = append(rep.Pools, g.rep)
	}
	sort.Float64s(allLatencies)
	rep.P50Latency = percentile(allLatencies, 0.50)
	rep.P95Latency = percentile(allLatencies, 0.95)
	rep.P99Latency = percentile(allLatencies, 0.99)
	if hours > 0 {
		rep.JobsPerHour = float64(rep.Completed) / hours
	}
	rep.Fingerprint = m.fingerprint()
	return rep
}

// fingerprint hashes the run's observable outcome — every application's
// timeline and every attempt's placement — so two runs of the same seed
// can be compared bit-for-bit (the determinism invariant).
func (m *Manager) fingerprint() string {
	h := fnv.New64a()
	f64 := func(x float64) { binary.Write(h, binary.LittleEndian, math.Float64bits(x)) }
	i64 := func(x int) { binary.Write(h, binary.LittleEndian, int64(x)) }
	// Elastic-substrate outcome bits: the churn soak's bit-identity check
	// must cover cost metering and the acquisition stream too.
	f64(m.cloudCost)
	i64(m.acquisitions)
	i64(m.denials)
	i64(m.spotNotices)
	i64(m.spotKills)
	i64(len(m.apps))
	for _, a := range m.apps {
		io.WriteString(h, a.label)
		f64(a.arriveAt)
		if a.rejected {
			i64(-1)
			continue
		}
		if !a.started {
			i64(-2)
			continue
		}
		f64(a.startAt)
		f64(a.endAt)
		if a.res != nil {
			i64(a.res.Launches)
			if a.res.Aborted != nil {
				io.WriteString(h, a.res.Aborted.Error())
			}
		}
		for _, tk := range a.app.AllTasks() {
			i64(tk.ID)
			i64(int(tk.State))
			i64(len(tk.Attempts))
			for _, at := range tk.Attempts {
				io.WriteString(h, at.Executor)
				f64(at.Launch)
				f64(at.End)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
