// Package tenant is the multi-tenant workload manager: it runs a seeded
// open-loop stream of SparkBench applications concurrently on one shared
// simulated cluster, arbitrating between them with Spark-style FAIR pools
// (weighted shares with minShare guarantees, FIFO within a pool), a
// bounded admission queue, and per-application dynamic executor
// allocation. The heterogeneity schedulers keep deciding *which node* a
// task runs on; this layer decides *which application's task* gets the
// next freed slot and *which nodes* each application may use at all.
package tenant

import (
	"cmp"
	"fmt"
	"slices"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/hdfs"
	"rupam/internal/monitor"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/tracing"
	"rupam/internal/wal"
	"rupam/internal/workloads"
)

// IDSpan is the identifier namespace each application owns: task, stage,
// job and RDD IDs of application i live in [(i+1)·IDSpan, (i+2)·IDSpan).
// Disjoint RDD ranges make the shared cache registry collision-free and
// let the isolation audit attribute every cached partition to its owner.
const IDSpan = 1 << 20

// PoolConfig declares one FAIR pool (fairscheduler.xml in miniature).
type PoolConfig struct {
	// Name identifies the pool; applications are assigned by the arrival
	// mix.
	Name string
	// Weight is the pool's share of capacity beyond minShares (default 1).
	Weight float64
	// MinShare is the core count the pool is guaranteed before weighted
	// sharing distributes the rest (default 0).
	MinShare int
}

// DynallocConfig tunes per-application dynamic executor allocation.
type DynallocConfig struct {
	// InitialExecs is the lease count an application starts with
	// (spark.dynamicAllocation.initialExecutors; default 1).
	InitialExecs int
	// ExecCores is the lease grant granularity in cores — the simulated
	// equivalent of one executor process (default 8).
	ExecCores int
	// BacklogTimeout is how long a scheduler backlog must persist before
	// the application's lease count doubles (default 2 s).
	BacklogTimeout float64
	// IdleTimeout releases a lease whose node ran none of the
	// application's tasks for this long (default 10 s).
	IdleTimeout float64
	// Interval is the allocation evaluation period (default 1 s).
	Interval float64
}

func (d DynallocConfig) withDefaults() DynallocConfig {
	if d.InitialExecs == 0 {
		d.InitialExecs = 1
	}
	if d.ExecCores == 0 {
		d.ExecCores = 8
	}
	if d.BacklogTimeout == 0 {
		d.BacklogTimeout = 2
	}
	if d.IdleTimeout == 0 {
		d.IdleTimeout = 10
	}
	if d.Interval == 0 {
		d.Interval = 1
	}
	return d
}

// Config parameterizes one multi-tenant run.
type Config struct {
	// Scheduler is "spark" or "rupam"; every application in the run uses
	// the same placement policy (the experiment compares whole runs).
	Scheduler string
	// Seed drives every random draw in the run: arrival times, workload
	// mix, framework randomness.
	Seed uint64
	// Pools are the FAIR pools; empty takes DefaultPools.
	Pools []PoolConfig
	// Arrivals parameterizes the open-loop generator; zero fields take
	// defaults (see ArrivalConfig).
	Arrivals ArrivalConfig
	// MaxConcurrentApps bounds simultaneously running applications
	// (admission control; default 4).
	MaxConcurrentApps int
	// MaxPendingApps bounds the admission queue; an arrival past it is
	// rejected, never silently dropped (default 8).
	MaxPendingApps int
	// Dynalloc tunes dynamic executor allocation.
	Dynalloc DynallocConfig
	// Spark carries per-application framework overrides.
	Spark spark.Config
	// RUPAM carries scheduler tunables for Scheduler=="rupam".
	RUPAM core.Config
	// Faults, when non-empty, is installed once over the shared cluster;
	// DriverCrash events are routed to the oldest running application, and
	// SpotPreempt notices/kills fan out to every running application.
	Faults *faults.Schedule
	// Elastic turns the fixed cluster into a priced instance market with
	// pilot-job acquisition and cost metering (off by default).
	Elastic ElasticConfig
	// Tracer, when non-nil, records the structured multi-application
	// trace (app lifecycle, leases, pool-scoped decisions).
	Tracer *tracing.Collector
	// PrivateCharDB gives each RUPAM application its own characteristics
	// database instead of the shared (externally persisted) one,
	// disabling cross-application warm-starts.
	PrivateCharDB bool
	// MaxSimTime panics the run if the virtual clock exceeds it
	// (default 14400, four simulated hours).
	MaxSimTime float64
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = "spark"
	}
	if len(c.Pools) == 0 {
		c.Pools = DefaultPools()
	}
	c.Arrivals = c.Arrivals.withDefaults()
	if c.MaxConcurrentApps == 0 {
		c.MaxConcurrentApps = 4
	}
	if c.MaxPendingApps == 0 {
		c.MaxPendingApps = 8
	}
	c.Dynalloc = c.Dynalloc.withDefaults()
	if c.Elastic.Enabled {
		c.Elastic = c.Elastic.withDefaults()
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 14400
	}
	return c
}

// DefaultPools is the three-tenant layout the tenancy experiment uses:
// an interactive analytics pool with a capacity guarantee, an ML training
// pool, and a best-effort batch pool.
func DefaultPools() []PoolConfig {
	return []PoolConfig{
		{Name: "analytics", Weight: 2, MinShare: 32},
		{Name: "ml", Weight: 1, MinShare: 16},
		{Name: "batch", Weight: 1, MinShare: 0},
	}
}

// appState is one application's full lifecycle record.
type appState struct {
	idx      int // arrival index; fixes the ID namespace and FIFO order
	label    string
	workload string
	pool     string
	params   workloads.Params

	arriveAt float64
	startAt  float64
	endAt    float64

	rejected bool
	started  bool
	done     bool

	base       int // ID namespace offset: (idx+1)·IDSpan
	app        *task.Application
	rt         *spark.Runtime
	slotTarget int // FAIR share, recomputed every scheduling round
	liveNow    int // fairRound scratch: live attempts this round
	demandNow  int // fairRound scratch: live + pending this round

	leases    map[string]int     // node → leased cores
	lastBusy  map[string]float64 // node → last time the app ran there
	lastScale float64            // last successful scale-up

	res *spark.Result
}

// Manager owns the shared substrate and every application lifecycle.
type Manager struct {
	cfg Config

	eng *simx.Engine
	clu *cluster.Cluster
	sub *spark.Substrate
	inj *faults.Injector

	sharedDB *core.CharDB // non-nil for shared-CharDB RUPAM runs

	capacity  int // total cluster cores
	nodeOrder []string

	arrivals    []arrival
	nextArrival int

	apps    []*appState // every arrival, in arrival order
	running []*appState
	pending []*appState

	arrived, admitted, rejectedN int

	scheduling, dirty bool
	dynTimer          simx.Timer
	finished          bool
	finishedAt        float64

	leasedNow      map[string]int // node → currently leased cores
	leaseHighWater map[string]int // node → max cores ever leased at once
	peakLeased     int            // max total leased cores at once

	// elastic substrate (elastic.go)
	spotSet       map[string]bool    // node → billed as spot
	draining      map[string]bool    // preemption notice heard, kill pending
	held          map[string]bool    // instance currently acquired
	holdStart     map[string]float64 // node → acquisition time
	holdIdle      map[string]float64 // node → last time any lease was held
	cloudCost     float64            // metered $ across closed holds
	acquisitions  int
	denials       int
	reqWanted     int  // outstanding instance shortfall (level-triggered)
	reqAttempt    int  // consecutive capacity denials
	reqPending    bool // a grant batch or retry is already scheduled
	backoffDelays []float64
	spotNotices   int
	spotKills     int

	violations []string
}

// NewManager validates and captures the configuration; Run does the work.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	if cfg.Scheduler != "spark" && cfg.Scheduler != "rupam" {
		panic(fmt.Sprintf("tenant: unknown scheduler %q", cfg.Scheduler))
	}
	for _, mx := range cfg.Arrivals.Mix {
		if !workloads.Known(mx.Workload) {
			panic(fmt.Sprintf("tenant: unknown workload %q in arrival mix", mx.Workload))
		}
	}
	return &Manager{cfg: cfg}
}

// Run executes the whole multi-tenant scenario on a fresh engine and
// returns its report. It panics if the run exceeds MaxSimTime (livelock
// watchdog), like the single-application runtime.
func (m *Manager) Run() *Report {
	executor.ResetRunSeq()
	m.eng = simx.NewEngine()
	m.clu = cluster.New(m.eng)
	cluster.NewHydra(m.clu)

	m.leasedNow = make(map[string]int)
	m.leaseHighWater = make(map[string]int)
	m.initElastic()
	for _, n := range m.clu.Nodes {
		m.capacity += n.Spec.Cores
		m.nodeOrder = append(m.nodeOrder, n.Name())
	}

	m.cfg.Tracer.Bind(m.eng)
	for _, n := range m.clu.Nodes {
		m.cfg.Tracer.RegisterNode(n.Name(), n.Spec.Cores)
	}

	m.buildSubstrate()
	if m.cfg.Scheduler == "rupam" && !m.cfg.PrivateCharDB {
		m.sharedDB = core.NewCharDB()
	}

	m.arrivals = drawArrivals(m.cfg.Seed, m.cfg.Arrivals)
	for i := range m.arrivals {
		i := i
		m.eng.Schedule(m.arrivals[i].at, func() { m.onArrival(i) })
	}

	m.sub.Mon.Start()
	m.armDynalloc()

	m.eng.RunUntil(m.cfg.MaxSimTime)
	if !m.finished {
		panic(fmt.Sprintf("tenant: run exceeded MaxSimTime=%v with %d running and %d queued apps — livelock?",
			m.cfg.MaxSimTime, len(m.running), len(m.pending)))
	}
	m.checkEndState()
	return m.buildReport()
}

// SubstrateOptions parameterizes BuildSubstrate — the knobs the tenant
// manager and the federation harness share when standing up one executor
// set for many concurrently scheduling drivers.
type SubstrateOptions struct {
	// Seed derives per-node executor seeds (Seed + i*7919 over the
	// cluster's node order).
	Seed uint64
	// Exec is the base per-node executor configuration; HeapBytes, Seed,
	// DriverNode and Tracer are filled per node.
	Exec executor.Config
	// HeapFor sizes each node's executor heap; nil uses a static 14 GB.
	HeapFor func(*cluster.Node) int64
	// HeartbeatInterval is the monitor period; 0 means 1 s.
	HeartbeatInterval float64
	// RelocateCache mirrors the RUPAM cache-relocation policy.
	RelocateCache bool
	Tracer        *tracing.Collector
	// OnRestart fires when any executor restarts (after a crash window);
	// the owner fans executor-set-change notifications to its drivers.
	OnRestart func()
	// OnHeartbeat observes every node heartbeat; the owner fans it to its
	// drivers and runs a scheduling round.
	OnHeartbeat func(node string, nm *monitor.NodeMetrics)
}

// BuildSubstrate creates the shared executors, cache registry and
// heartbeat monitor — the per-cluster state every application runtime
// attaches to — without starting the monitor. Fault injection stays with
// the caller: it owns crash routing.
func BuildSubstrate(eng *simx.Engine, clu *cluster.Cluster, o SubstrateOptions) *spark.Substrate {
	heapFor := o.HeapFor
	if heapFor == nil {
		heapFor = func(*cluster.Node) int64 { return 14 * cluster.GB }
	}
	cache := executor.NewCacheTracker()
	execs := make(map[string]*executor.Executor)
	execSeed := o.Seed*31 + 7
	for i, n := range clu.Nodes {
		ecfg := o.Exec
		ecfg.HeapBytes = heapFor(n)
		ecfg.Seed = execSeed + uint64(i)*7919
		ecfg.DriverNode = clu.Nodes[0].Name()
		ecfg.Tracer = o.Tracer
		ecfg.RelocateCacheOnRemoteRead = o.RelocateCache
		ex := executor.New(eng, clu, n, cache, execs, ecfg)
		ex.OnRestart = o.OnRestart
	}
	hb := o.HeartbeatInterval
	if hb <= 0 {
		hb = 1
	}
	mon := monitor.New(eng, clu, hb)
	for name, ex := range execs {
		mon.RegisterProbe(name, ex)
	}
	mon.OnHeartbeat = o.OnHeartbeat
	return &spark.Substrate{Execs: execs, Cache: cache, Mon: mon}
}

// buildSubstrate creates the shared executors, cache registry, heartbeat
// monitor and (optional) fault injector — the per-cluster state every
// application's runtime attaches to.
func (m *Manager) buildSubstrate() {
	m.sub = BuildSubstrate(m.eng, m.clu, SubstrateOptions{
		Seed:              m.cfg.Seed,
		Exec:              m.cfg.Spark.Exec,
		HeapFor:           m.heapPolicy(),
		HeartbeatInterval: m.heartbeatInterval(),
		RelocateCache:     m.cfg.Scheduler == "rupam",
		Tracer:            m.cfg.Tracer,
		OnRestart: func() {
			for _, a := range m.activeApps() {
				a.rt.NotifyExecutorSetChanged()
			}
			m.ScheduleAll()
		},
		OnHeartbeat: func(node string, nm *monitor.NodeMetrics) {
			for _, a := range m.activeApps() {
				a.rt.DeliverHeartbeat(node, nm)
			}
			m.ScheduleAll()
		},
	})

	if !m.cfg.Faults.Empty() {
		m.inj = faults.NewInjector(m.eng, m.clu, m.sub.Execs)
		m.sub.Mon.Drop = m.inj.Suppressed
		m.inj.Collector = m.cfg.Tracer
		m.inj.OnDriverCrash = m.routeDriverCrash
		m.inj.OnSpotNotice = m.onSpotNotice
		m.inj.OnSpotKill = m.onSpotKill
		m.inj.Install(m.cfg.Faults)
	}
}

// heapPolicy sizes the shared node-level executors the way the run's
// scheduler would size its own: RUPAM's memory-aware per-node heap, or
// stock Spark's one static size everywhere.
func (m *Manager) heapPolicy() func(*cluster.Node) int64 {
	if m.cfg.Scheduler == "rupam" {
		sizer := core.New(m.cfg.RUPAM)
		return sizer.HeapFor
	}
	static := m.cfg.Spark.StaticHeapBytes
	if static == 0 {
		static = 14 * cluster.GB
	}
	return func(*cluster.Node) int64 { return static }
}

func (m *Manager) heartbeatInterval() float64 {
	if m.cfg.Spark.HeartbeatInterval > 0 {
		return m.cfg.Spark.HeartbeatInterval
	}
	return 1
}

// activeApps returns the running applications in arrival order — the
// deterministic fan-out order for heartbeats and notifications.
func (m *Manager) activeApps() []*appState {
	out := make([]*appState, 0, len(m.running))
	out = append(out, m.running...)
	slices.SortFunc(out, func(a, b *appState) int { return cmp.Compare(a.idx, b.idx) })
	return out
}

// onArrival is the admission-control decision point: start immediately,
// queue, or reject — every arrival lands in exactly one bucket.
func (m *Manager) onArrival(i int) {
	ar := m.arrivals[i]
	m.nextArrival = i + 1
	a := &appState{
		idx:      i,
		label:    fmt.Sprintf("app%d-%s", i, ar.workload),
		workload: ar.workload,
		pool:     ar.pool,
		params:   ar.params,
		arriveAt: m.eng.Now(),
		base:     (i + 1) * IDSpan,
		leases:   make(map[string]int),
		lastBusy: make(map[string]float64),
	}
	m.apps = append(m.apps, a)
	m.arrived++
	m.cfg.Tracer.AppArrived(a.label, a.pool, a.workload)
	switch {
	case len(m.running) < m.cfg.MaxConcurrentApps && len(m.pending) == 0:
		m.admitted++
		m.startApp(a)
	case len(m.pending) < m.cfg.MaxPendingApps:
		m.admitted++
		m.pending = append(m.pending, a)
		m.cfg.Tracer.AppAdmitted(a.label, a.pool, len(m.pending))
	default:
		m.rejectedN++
		a.rejected = true
		m.cfg.Tracer.AppRejected(a.label, a.pool, "pending queue full")
	}
	m.maybeFinish()
}

// buildSeed derives an application's construction seed from the run seed
// and the workload name only — not the arrival index — so every instance
// of a workload shares one logical dataset and plan, and the isolated
// baseline run for slowdown accounting is the same application.
func buildSeed(seed uint64, workload string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(workload); i++ {
		h ^= uint64(workload[i])
		h *= 1099511628211
	}
	return seed*2654435761 + h
}

// BuildApp constructs (and namespaces) the application an arrival would
// run — exported so the experiment's isolated-baseline runs execute the
// exact same plan the tenant run did.
func BuildApp(clu *cluster.Cluster, seed uint64, workload string, p workloads.Params, base int) *task.Application {
	bs := buildSeed(seed, workload)
	store := hdfs.NewStore(clu.NodeNames(), 2, bs)
	if p.Seed == 0 {
		p.Seed = bs*7 + 42
	}
	app := workloads.Build(workload, store, p)
	Renumber(app, base)
	return app
}

// startApp boots one admitted application's driver on the shared engine.
func (m *Manager) startApp(a *appState) {
	a.started = true
	a.startAt = m.eng.Now()
	a.lastScale = a.startAt

	app := BuildApp(m.clu, m.cfg.Seed, a.workload, a.params, a.base)
	app.Name = a.label
	a.app = app

	var sched spark.Scheduler
	if m.cfg.Scheduler == "rupam" {
		if m.sharedDB != nil {
			sched = core.NewWithDB(m.cfg.RUPAM, m.sharedDB)
		} else {
			sched = core.New(m.cfg.RUPAM)
		}
	} else {
		sched = spark.NewDefaultScheduler()
	}

	cfg := m.cfg.Spark
	cfg.Faults = nil // the injector belongs to the manager
	cfg.WAL = nil
	cfg.Seed = m.cfg.Seed*31 + 7 + uint64(a.idx)*1013
	cfg.Tracer = m.cfg.Tracer
	cfg.AppLabel = a.label
	cfg.PoolLabel = a.pool
	cfg.SampleInterval = -1
	cfg.MaxSimTime = m.cfg.MaxSimTime
	if m.cfg.Faults.HasKind(faults.DriverCrash) {
		// A routed driver crash needs a log to replay; keep one in memory
		// per application, exactly like the single-app auto-WAL.
		cfg.WAL = wal.New(nil, wal.Options{Clock: m.eng.Now})
	}

	rt := spark.NewRuntimeOn(m.eng, m.clu, sched, cfg, m.sub)
	rt.SetLaunchGate(func(node string) bool { return a.leases[node] > 0 })
	rt.SetSlotCap(func() bool { return rt.LiveAttempts() < a.slotTarget })
	rt.SetReschedule(m.ScheduleAll)
	if m.inj != nil {
		rt.SetSharedFaults(m.inj)
	}
	rt.OnAppDone = func() { m.appFinished(a) }
	a.rt = rt

	m.running = append(m.running, a)
	m.grantInitial(a)
	m.cfg.Tracer.AppStarted(a.label, a.pool, a.startAt-a.arriveAt)
	rt.Start(app)
	m.ScheduleAll()
}

// appFinished collects a completed (or aborted) application, returns its
// leases and cached state to the cluster, and starts queued work.
func (m *Manager) appFinished(a *appState) {
	a.done = true
	a.endAt = m.eng.Now()
	a.res = a.rt.BuildResult()
	m.releaseAllLeases(a, "app-done")
	for i, r := range m.running {
		if r == a {
			m.running = append(m.running[:i], m.running[i+1:]...)
			break
		}
	}
	m.cfg.Tracer.AppFinished(a.label, a.pool, a.endAt-a.startAt, a.res.Aborted != nil)
	m.tryStartPending()
	m.maybeFinish()
	m.ScheduleAll()
}

// tryStartPending drains the admission queue into free concurrency slots
// (FIFO).
func (m *Manager) tryStartPending() {
	for len(m.running) < m.cfg.MaxConcurrentApps && len(m.pending) > 0 {
		a := m.pending[0]
		m.pending = m.pending[1:]
		m.startApp(a)
	}
}

// maybeFinish shuts the shared machinery down once every arrival has been
// resolved and no application is running or queued — the point after
// which the engine drains and Run returns.
func (m *Manager) maybeFinish() {
	if m.finished || m.nextArrival < len(m.arrivals) || len(m.running) > 0 || len(m.pending) > 0 {
		return
	}
	m.finished = true
	m.finishedAt = m.eng.Now()
	m.sub.Mon.Stop()
	m.dynTimer.Cancel()
	// Close out the market: every still-held instance is released and its
	// bill settled, so the report's cost covers the whole run.
	for _, node := range m.nodeOrder {
		m.releaseInstance(node, "run-done")
	}
}

// routeDriverCrash directs a DriverCrash fault at the oldest running
// application that is currently up — deterministic, and exercises one
// app's crash/recovery while its siblings keep running.
func (m *Manager) routeDriverCrash(restartAfter float64) {
	for _, a := range m.activeApps() {
		if !a.rt.Crashed() && !a.rt.Done() {
			a.rt.CrashDriver(restartAfter)
			return
		}
	}
}
