package tenant

import (
	"fmt"
	"math"
	"sort"

	"rupam/internal/cluster"
)

// This file is the elastic cloud substrate: the workload manager stops
// treating the cluster as a fixed asset and instead *acquires* instances
// from a priced market (on-demand or spot per node class), holds them
// while leases need them, and releases them when idle — metering $-cost
// the whole way. Acquisition is a pilot-job queue: requests batch, arrive
// after a provisioning delay, and capacity denials retry under bounded
// deterministic exponential backoff. Spot instances come with a preemption
// hazard; the manager routes provider notices into every running driver's
// graceful-drain path (spark.PreemptNotice/SpotKill), fences draining
// instances out of lease grants, and requests replacement capacity the
// moment a leased instance is doomed. Scale-up chooses between spot and
// on-demand flavors by effective price: the spot rate inflated by the
// CharDB-predicted probability of losing the hold's remaining work.

// ElasticConfig parameterizes the elastic substrate. The zero value
// (Enabled=false) preserves the fixed-cluster behavior exactly.
type ElasticConfig struct {
	// Enabled turns the instance market on: lease grants then require an
	// acquired (held) instance, and idle instances are released.
	Enabled bool
	// Market prices the instance classes; nil takes cluster.DefaultMarket.
	Market *cluster.Market
	// SpotNodes names the nodes billed (and preemption-hazarded) as spot
	// instances; every other node is on-demand. Node→billing is fixed for
	// the run so the fault plan's per-node hazard draws stay meaningful.
	SpotNodes []string
	// QueueDelay is the pilot-job provisioning latency: seconds between an
	// acquisition request and its grant batch arriving (default 5).
	QueueDelay float64
	// BatchSize caps instances granted per batch arrival (default 2).
	BatchSize int
	// BackoffBase is the first retry delay after a capacity denial; retry
	// i waits min(BackoffBase·2^(i−1), BackoffMax) seconds. A successful
	// grant resets the schedule (defaults 2 and 60).
	BackoffBase float64
	BackoffMax  float64
	// InstanceIdleTimeout releases a held instance no application has
	// leased for this long (default 30). Release is structurally
	// drain-first: an instance is only idle once every lease on it is gone.
	InstanceIdleTimeout float64
	// DefaultTaskSeconds is the per-task work estimate used by the
	// spot-vs-on-demand choice before the CharDB has observations
	// (default 2).
	DefaultTaskSeconds float64
	// ReworkPenalty scales the expected-preemption surcharge on the spot
	// price: eff = spot·(1 + ReworkPenalty·P(preempt before work drains))
	// (default 3).
	ReworkPenalty float64
	// IgnoreNotices is the baseline policy for the elastic experiment: the
	// substrate drops preemption warnings on the floor, so drivers take
	// every kill cold (heartbeat-timeout discovery, fetch-failure storms,
	// charged losses) instead of draining through the grace window.
	IgnoreNotices bool
}

func (e ElasticConfig) withDefaults() ElasticConfig {
	if e.Market == nil {
		e.Market = cluster.DefaultMarket()
	}
	if e.QueueDelay == 0 {
		e.QueueDelay = 5
	}
	if e.BatchSize == 0 {
		e.BatchSize = 2
	}
	if e.BackoffBase == 0 {
		e.BackoffBase = 2
	}
	if e.BackoffMax == 0 {
		e.BackoffMax = 60
	}
	if e.InstanceIdleTimeout == 0 {
		e.InstanceIdleTimeout = 30
	}
	if e.DefaultTaskSeconds == 0 {
		e.DefaultTaskSeconds = 2
	}
	if e.ReworkPenalty == 0 {
		e.ReworkPenalty = 3
	}
	return e
}

// initElastic sets up the market state; called from Run before arrivals.
func (m *Manager) initElastic() {
	m.draining = make(map[string]bool)
	m.held = make(map[string]bool)
	m.holdStart = make(map[string]float64)
	m.holdIdle = make(map[string]float64)
	m.spotSet = make(map[string]bool)
	for _, n := range m.cfg.Elastic.SpotNodes {
		m.spotSet[n] = true
	}
}

// instanceUsable reports whether a lease may be granted on node: never on
// a draining (preemption-noticed) instance, and in elastic mode only on a
// currently held one.
func (m *Manager) instanceUsable(node string) bool {
	if m.draining[node] {
		return false
	}
	if !m.cfg.Elastic.Enabled {
		return true
	}
	return m.held[node]
}

// billingOf returns the node's fixed billing flavor.
func (m *Manager) billingOf(node string) cluster.Billing {
	if m.spotSet[node] {
		return cluster.Spot
	}
	return cluster.OnDemand
}

// priceOf returns the node's sticker $/hour.
func (m *Manager) priceOf(node string) float64 {
	return m.cfg.Elastic.Market.Price(m.clu.Node(node).Spec.Class, m.billingOf(node))
}

// predictedHoldSeconds estimates how long a newly acquired instance would
// stay busy: cluster-wide pending demand times the CharDB's mean observed
// task compute time (DefaultTaskSeconds before any history), divided over
// the instance's lease cores.
func (m *Manager) predictedHoldSeconds() float64 {
	taskSec := m.cfg.Elastic.DefaultTaskSeconds
	if m.sharedDB != nil {
		if mean, ok := m.sharedDB.MeanComputeTime(); ok && mean > 0 {
			taskSec = mean
		}
	}
	pending := 0
	for _, a := range m.activeApps() {
		_, p := m.demandOf(a)
		pending += p
	}
	cores := m.cfg.Dynalloc.ExecCores
	if cores <= 0 {
		cores = 1
	}
	work := float64(pending) * taskSec / float64(cores)
	if work < taskSec {
		work = taskSec
	}
	return work
}

// effectivePrice is the spot-vs-on-demand decision rule: an on-demand
// node costs its sticker rate; a spot node costs its sticker rate plus a
// rework surcharge weighted by the probability the provider reclaims it
// before the predicted work drains (hazard is Poisson per hour).
func (m *Manager) effectivePrice(node string, holdSec float64) float64 {
	class := m.clu.Node(node).Spec.Class
	if !m.spotSet[node] {
		return m.cfg.Elastic.Market.Price(class, cluster.OnDemand)
	}
	spot := m.cfg.Elastic.Market.Price(class, cluster.Spot)
	pKill := 1 - math.Exp(-m.cfg.Elastic.Market.Hazard(class)*holdSec/3600)
	return spot * (1 + m.cfg.Elastic.ReworkPenalty*pKill)
}

// requestInstances asks the pilot-job queue for capacity. Requests are
// level-triggered (the want is a shortfall, re-derived every allocation
// tick, so it maxes rather than accumulates) and coalesce into the batch
// already in flight.
func (m *Manager) requestInstances(n int) {
	if !m.cfg.Elastic.Enabled || m.finished || n <= 0 {
		return
	}
	if n > m.reqWanted {
		m.reqWanted = n
	}
	if m.reqPending {
		return
	}
	m.reqPending = true
	m.eng.Schedule(m.cfg.Elastic.QueueDelay, m.grantInstances)
}

// grantInstances is the batch arrival: grant up to BatchSize of the
// cheapest-effective unheld instances, or record a capacity denial and
// back off exponentially (bounded, deterministic, reset by any grant).
func (m *Manager) grantInstances() {
	m.reqPending = false
	if m.finished {
		m.reqWanted = 0
		return
	}
	if m.reqWanted <= 0 {
		return
	}
	var cands []string
	for _, node := range m.nodeOrder {
		if m.held[node] || m.draining[node] {
			continue
		}
		cands = append(cands, node)
	}
	hold := m.predictedHoldSeconds()
	sort.SliceStable(cands, func(i, j int) bool {
		return m.effectivePrice(cands[i], hold) < m.effectivePrice(cands[j], hold)
	})
	n := m.reqWanted
	if n > m.cfg.Elastic.BatchSize {
		n = m.cfg.Elastic.BatchSize
	}
	if n > len(cands) {
		n = len(cands)
	}
	if n == 0 {
		m.denials++
		m.reqAttempt++
		delay := m.cfg.Elastic.BackoffBase * math.Pow(2, float64(m.reqAttempt-1))
		if delay > m.cfg.Elastic.BackoffMax {
			delay = m.cfg.Elastic.BackoffMax
		}
		m.backoffDelays = append(m.backoffDelays, delay)
		m.cfg.Tracer.InstanceDenied(m.reqWanted, m.reqAttempt, delay)
		m.reqPending = true
		m.eng.Schedule(delay, m.grantInstances)
		return
	}
	for i := 0; i < n; i++ {
		m.acquireInstance(cands[i])
	}
	m.reqAttempt = 0
	m.reqWanted -= n
	if m.reqWanted > 0 {
		m.reqPending = true
		m.eng.Schedule(m.cfg.Elastic.QueueDelay, m.grantInstances)
	}
	m.ScheduleAll()
}

// acquireInstance takes one instance from the market. Re-acquiring a node
// the provider reclaimed earlier models getting a *new* instance of the
// same class under the same name: the executor reactivates with a fresh
// incarnation and every driver's rejoin path lifts its preemption fence.
func (m *Manager) acquireInstance(node string) {
	now := m.eng.Now()
	m.held[node] = true
	m.holdStart[node] = now
	m.holdIdle[node] = now
	m.acquisitions++
	m.cfg.Tracer.InstanceAcquired(node, m.billingOf(node).String(), m.priceOf(node))
	if ex := m.sub.Execs[node]; ex != nil && ex.FailStopped() {
		ex.Reactivate()
	}
}

// releaseInstance returns one instance to the market and closes out its
// bill. Safe to call on an unheld node (no-op).
func (m *Manager) releaseInstance(node, reason string) {
	if !m.held[node] {
		return
	}
	delete(m.held, node)
	heldFor := m.eng.Now() - m.holdStart[node]
	cost := heldFor / 3600 * m.priceOf(node)
	m.cloudCost += cost
	m.cfg.Tracer.InstanceReleased(node, reason, heldFor, cost)
}

// releaseIdleInstances is the autoscaler's scale-down half, run every
// allocation tick: a held instance whose leases all drained away (idle
// past the timeout) goes back to the market. Draining instances are left
// alone — their bill closes at the kill.
func (m *Manager) releaseIdleInstances() {
	now := m.eng.Now()
	for _, node := range m.nodeOrder {
		if !m.held[node] {
			continue
		}
		if m.leasedNow[node] > 0 {
			m.holdIdle[node] = now
			continue
		}
		if m.draining[node] {
			continue
		}
		if now-m.holdIdle[node] > m.cfg.Elastic.InstanceIdleTimeout {
			m.releaseInstance(node, "idle")
		}
	}
}

// startedApps returns every application that ever ran, in arrival order
// (kill fan-out must reach apps that finished during the grace window).
func (m *Manager) startedApps() []*appState {
	var out []*appState
	for _, a := range m.apps {
		if a.started && a.rt != nil {
			out = append(out, a)
		}
	}
	return out
}

// onSpotNotice is the provider's preemption warning. Graceful mode fences
// the instance, fans the notice into every running driver's drain path,
// deregisters the doomed node from the allocator, and orders replacement
// capacity while the node is still serving; IgnoreNotices drops it (the
// baseline the experiment measures against).
func (m *Manager) onSpotNotice(node string, grace float64) {
	m.spotNotices++
	if m.cfg.Elastic.IgnoreNotices {
		return
	}
	m.draining[node] = true
	for _, a := range m.activeApps() {
		a.rt.PreemptNotice(node, grace)
	}
	// Order replacement capacity immediately, one instance per application
	// holding a lease on the doomed node: the pilot queue's delay plus the
	// allocation tick roughly matches the grace window, so replacements
	// arrive as the node closes. Leases on the node stay until the kill —
	// the drivers keep it productive up to their fence points — but the
	// allocator no longer counts them as capacity (see dynallocTick).
	if m.cfg.Elastic.Enabled {
		lost := 0
		for _, a := range m.activeApps() {
			if a.leases[node] > 0 {
				lost++
			}
		}
		m.requestInstances(lost)
	}
}

// onSpotKill is the instance actually dying. In graceful mode the drivers
// hear it as an announced loss (uncharged, drain-audited); with notices
// ignored they discover it the hard way through heartbeat timeouts. In
// both modes the cluster manager promptly observes the node's death:
// leases on it are force-released and the instance's bill closes.
func (m *Manager) onSpotKill(node string) {
	m.spotKills++
	delete(m.draining, node)
	if !m.cfg.Elastic.IgnoreNotices {
		// Every app that heard the notice must also hear the kill, even if
		// it finished mid-grace — the drain record stays open otherwise.
		for _, a := range m.startedApps() {
			a.rt.SpotKill(node)
		}
	}
	lostLease := false
	for _, a := range m.activeApps() {
		if a.leases[node] > 0 {
			m.releaseLease(a, node, "spot-preempted")
			lostLease = true
		}
	}
	if m.cfg.Elastic.Enabled {
		m.releaseInstance(node, "spot-preempted")
		if lostLease {
			m.requestInstances(1)
		}
	}
	m.ScheduleAll()
}

// checkElasticEndState extends the invariant battery: after the run every
// instance must be back at the market with its bill closed.
func (m *Manager) checkElasticEndState() {
	for _, node := range m.nodeOrder {
		if m.held[node] {
			m.violate(fmt.Sprintf("instance %s still held after run end", node))
		}
		if m.draining[node] {
			m.violate(fmt.Sprintf("instance %s still draining after run end", node))
		}
	}
	if m.cfg.Elastic.Enabled && m.cloudCost <= 0 && m.acquisitions > 0 {
		m.violate("instances were acquired but no cost accrued")
	}
}

// CloudCost returns the run's total metered instance cost in dollars.
func (m *Manager) CloudCost() float64 { return m.cloudCost }

// Acquisitions returns how many instance grants the pilot queue made.
func (m *Manager) Acquisitions() int { return m.acquisitions }

// AcquireDenials returns how many capacity denials the pilot queue hit.
func (m *Manager) AcquireDenials() int { return m.denials }

// BackoffDelays returns the denial retry delays in order — the test hook
// for the deterministic bounded-exponential schedule.
func (m *Manager) BackoffDelays() []float64 {
	return append([]float64(nil), m.backoffDelays...)
}

// SpotEvents returns (notices heard, kills observed) at the manager.
func (m *Manager) SpotEvents() (int, int) { return m.spotNotices, m.spotKills }

// HeldInstances returns the currently held instances in cluster order.
func (m *Manager) HeldInstances() []string {
	var out []string
	for _, node := range m.nodeOrder {
		if m.held[node] {
			out = append(out, node)
		}
	}
	return out
}
