package tenant

import (
	"cmp"
	"slices"
)

// This file is the FAIR policy layer — the Spark fair scheduler's pool
// model reduced to its arbitration essence. Every scheduling round:
//
//  1. each pool's slot share is computed by water-filling total cluster
//     capacity over the pools' demands — minShares first, then the rest
//     in proportion to pool weights;
//  2. a pool's share is split over its applications FIFO (oldest first),
//     capped by each application's actual demand;
//  3. applications dispatch most-starved-first, each one's own
//     heterogeneity scheduler picking tasks and nodes, with the runtime's
//     slot cap stopping it at its FAIR share.
//
// The heterogeneity heuristics keep choosing *which node* a task lands
// on; this layer only decides *which application's tasks* may launch.

// pendingCounter is the scheduler capability both shipped policies
// implement; demand = live attempts + genuinely pending tasks.
type pendingCounter interface {
	PendingTasks() int
}

func (m *Manager) demandOf(a *appState) (live, pending int) {
	live = a.rt.LiveAttempts()
	if pc, ok := a.rt.Scheduler().(pendingCounter); ok {
		pending = pc.PendingTasks()
	}
	return live, pending
}

// ScheduleAll runs a global FAIR scheduling round over every active
// application. Launch completions re-enter it recursively (a launched
// task frees nothing, but task-end callbacks do); the guard flattens the
// recursion into an iterative drain so rounds never nest.
func (m *Manager) ScheduleAll() {
	if m.scheduling {
		m.dirty = true
		return
	}
	m.scheduling = true
	for {
		m.dirty = false
		m.fairRound()
		if !m.dirty {
			break
		}
	}
	m.scheduling = false
}

// poolShare is one pool's state within a round.
type poolShare struct {
	cfg    PoolConfig
	apps   []*appState
	demand int
	grant  int
}

// fairRound computes shares and dispatches one pass.
func (m *Manager) fairRound() {
	apps := make([]*appState, 0, len(m.running))
	for _, a := range m.activeApps() {
		if !a.done && !a.rt.Crashed() {
			apps = append(apps, a)
		}
	}
	if len(apps) == 0 {
		return
	}

	pools, byName := m.poolTable()
	for _, a := range apps {
		live, pending := m.demandOf(a)
		a.liveNow = live
		a.demandNow = live + pending
		p := byName[a.pool]
		p.apps = append(p.apps, a)
		p.demand += a.demandNow
	}

	waterFill(m.capacity, pools)

	// Within a pool: FIFO by arrival. The pool's grant flows down the
	// queue, each application taking at most its demand.
	for _, p := range pools {
		rem := p.grant
		for _, a := range p.apps {
			g := a.demandNow
			if g > rem {
				g = rem
			}
			a.slotTarget = g
			rem -= g
		}
	}

	// Dispatch most-starved-first: the application furthest below its
	// share launches before better-served siblings consume the freed
	// slots. Ties break by arrival order.
	order := apps
	frac := func(a *appState) float64 {
		if a.slotTarget <= 0 {
			return 2 // nothing owed; go last
		}
		return float64(a.liveNow) / float64(a.slotTarget)
	}
	slices.SortStableFunc(order, func(a, b *appState) int {
		fa, fb := frac(a), frac(b)
		if fa != fb {
			return cmp.Compare(fa, fb)
		}
		return cmp.Compare(a.idx, b.idx)
	})
	for _, a := range order {
		if a.slotTarget > a.liveNow {
			a.rt.Scheduler().Schedule()
		}
	}
}

// poolTable materializes the configured pools (in config order) plus a
// default-weight pool for any mix entry naming an undeclared pool.
func (m *Manager) poolTable() ([]*poolShare, map[string]*poolShare) {
	pools := make([]*poolShare, 0, len(m.cfg.Pools))
	byName := make(map[string]*poolShare)
	add := func(cfg PoolConfig) {
		if cfg.Weight <= 0 {
			cfg.Weight = 1
		}
		p := &poolShare{cfg: cfg}
		pools = append(pools, p)
		byName[cfg.Name] = p
	}
	for _, pc := range m.cfg.Pools {
		add(pc)
	}
	for _, a := range m.activeApps() {
		if _, ok := byName[a.pool]; !ok {
			add(PoolConfig{Name: a.pool, Weight: 1})
		}
	}
	return pools, byName
}

// waterFill distributes capacity over the pools: every pool first gets
// min(minShare, demand), then the remainder goes out in passes
// proportional to weight, capped by unmet demand, until capacity or
// demand is exhausted. Integer arithmetic, deterministic pool order.
func waterFill(capacity int, pools []*poolShare) {
	rem := capacity
	for _, p := range pools {
		g := p.cfg.MinShare
		if g > p.demand {
			g = p.demand
		}
		if g > rem {
			g = rem
		}
		p.grant = g
		rem -= g
	}
	for rem > 0 {
		var sumW float64
		for _, p := range pools {
			if p.grant < p.demand {
				sumW += p.cfg.Weight
			}
		}
		if sumW == 0 {
			break
		}
		progressed := false
		pass := rem
		for _, p := range pools {
			if p.grant >= p.demand {
				continue
			}
			add := int(float64(pass) * p.cfg.Weight / sumW)
			if add < 1 {
				add = 1
			}
			if d := p.demand - p.grant; add > d {
				add = d
			}
			if add > rem {
				add = rem
			}
			if add > 0 {
				p.grant += add
				rem -= add
				progressed = true
			}
			if rem == 0 {
				break
			}
		}
		if !progressed {
			break
		}
	}
}
