package perf

import (
	"testing"

	"rupam/internal/streaming"
	"rupam/internal/tracing"
)

// TestUntracedPlacementAllocs pins the fix for tracing allocation
// churn: with no collector attached, the placement path must not pay
// for the decision record — no Decision objects, no candidate slices,
// and crucially none of the per-candidate detail strings the traced
// path formats. The traced run is measured alongside as evidence the
// workload would allocate heavily if the guards were dropped.
func TestUntracedPlacementAllocs(t *testing.T) {
	topo := streaming.GenTopology(3, streaming.TopoConfig{})
	var nodes []streaming.NodeInfo
	for i := 0; i < 8; i++ {
		nodes = append(nodes, streaming.NodeInfo{
			Name: string(rune('a' + i)), Cores: 4 + i%3*4, FreqGHz: 2.0 + float64(i%4)*0.4,
			MemBytes: 32 << 30, NetBps: 1.25e9,
		})
	}

	// Per-placer budgets: the measured algorithmic cost (steady-rate
	// maps, per-node load records, the assignment map) plus ~25%
	// headroom. An unguarded tracing call in a per-candidate loop costs
	// O(operators x nodes) formatting allocations — at this topology
	// ≥160 on top — and blows the budget for every placer.
	budgets := map[string]float64{"default": 45, "resource": 95, "rupam": 600}

	for _, name := range streaming.PlacerNames {
		untracedPlacer, err := streaming.NewPlacer(name, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		tracedPlacer, err := streaming.NewPlacer(name, nil, tracing.NewCollector())
		if err != nil {
			t.Fatal(err)
		}

		untraced := testing.AllocsPerRun(20, func() { untracedPlacer.Place(topo, nodes) })
		traced := testing.AllocsPerRun(20, func() { tracedPlacer.Place(topo, nodes) })

		if untraced >= budgets[name] {
			t.Errorf("placer %q: %v allocs/placement untraced (budget %v) — tracing guards regressed",
				name, untraced, budgets[name])
		}
		if traced <= untraced+float64(len(topo.Ops)) {
			t.Errorf("placer %q: traced run allocated %v vs %v untraced — collector not exercised, test is vacuous",
				name, traced, untraced)
		}
	}
}
