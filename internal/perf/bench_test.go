// This file is the evaluation benchmark harness: one Go benchmark per
// table and figure of the paper's evaluation plus the DESIGN.md
// ablations, and micro-benchmarks of the simulation substrates. Run with:
//
//	go test ./internal/perf -bench=. -benchmem
//
// Each evaluation benchmark executes the full experiment at least once per
// iteration; reported ns/op is the wall cost of regenerating the artifact.
// For the kernel-throughput battery behind the BENCH artifacts, see
// RunBattery and cmd/rupam-bench -experiment perf.
package perf

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/experiments"
	"rupam/internal/hdfs"
	"rupam/internal/netsim"
	"rupam/internal/simx"
	"rupam/internal/sysbench"
	"rupam/internal/workloads"
)

// ---- Figures and tables of §IV ---------------------------------------------

// BenchmarkFig2MatrixMultUtilization regenerates the §II-B utilization
// timeline of the 4K×4K matrix multiplication on the 2-node cluster.
func BenchmarkFig2MatrixMultUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(uint64(i + 1))
		if r.Trace.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFig3TaskSkew regenerates the per-task PageRank breakdown on the
// heterogeneous 2-node cluster.
func BenchmarkFig3TaskSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(uint64(i + 1))
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTab4Sysbench regenerates the hardware-characterization table.
func BenchmarkTab4Sysbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := sysbench.TableIV(); len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig5Overall regenerates the overall-performance comparison
// (every Table III workload under both schedulers, one repetition per
// benchmark iteration; the paper's five repetitions come from -benchtime
// or the rupam-bench binary).
func BenchmarkFig5Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(1)
		if len(r.Rows) != len(workloads.EvalNames()) {
			b.Fatal("missing workloads")
		}
	}
}

// BenchmarkFig6IterSpeedup regenerates the LR speedup-vs-iterations curve
// (a reduced sweep per iteration; the full curve is Fig6Iterations).
func BenchmarkFig6IterSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6([]int{1, 4, 8}, uint64(i+1))
		if len(r.Points) != 3 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkTab5Locality regenerates the locality-level table.
func BenchmarkTab5Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Tab5(uint64(i + 1))
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig7Breakdown regenerates the execution-time decomposition of
// LR, SQL and PR under both schedulers.
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(uint64(i + 1))
		if len(r.Rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig8Utilization regenerates the average system-utilization
// comparison.
func BenchmarkFig8Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(uint64(i + 1))
		if len(r.Rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig9Balance regenerates the cross-node utilization-spread
// series for PageRank.
func BenchmarkFig9Balance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(uint64(i + 1))
		if len(r.Spark.Times) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFaultRecovery regenerates the fault-recovery experiment:
// PageRank under both schedulers, fault-free vs an identical seeded fault
// plan (crash+recover, permanent map-output loss, NIC degrade, heartbeat
// partition).
func BenchmarkFaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FaultRecovery(uint64(i + 1))
		if !r.Completed() {
			b.Fatalf("a faulted run aborted: %+v", r.Rows)
		}
	}
}

// ---- per-workload single runs -----------------------------------------------

func benchWorkload(b *testing.B, workload, sched string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.RunSpec{
			Workload: workload, Scheduler: sched, Seed: uint64(i + 1),
		})
		b.ReportMetric(r.Duration, "sim-sec")
	}
}

func BenchmarkWorkloadLRSpark(b *testing.B)       { benchWorkload(b, "LR", "spark") }
func BenchmarkWorkloadLRRupam(b *testing.B)       { benchWorkload(b, "LR", "rupam") }
func BenchmarkWorkloadTeraSortSpark(b *testing.B) { benchWorkload(b, "TeraSort", "spark") }
func BenchmarkWorkloadTeraSortRupam(b *testing.B) { benchWorkload(b, "TeraSort", "rupam") }
func BenchmarkWorkloadSQLSpark(b *testing.B)      { benchWorkload(b, "SQL", "spark") }
func BenchmarkWorkloadSQLRupam(b *testing.B)      { benchWorkload(b, "SQL", "rupam") }
func BenchmarkWorkloadPRSpark(b *testing.B)       { benchWorkload(b, "PR", "spark") }
func BenchmarkWorkloadPRRupam(b *testing.B)       { benchWorkload(b, "PR", "rupam") }
func BenchmarkWorkloadTCSpark(b *testing.B)       { benchWorkload(b, "TC", "spark") }
func BenchmarkWorkloadTCRupam(b *testing.B)       { benchWorkload(b, "TC", "rupam") }
func BenchmarkWorkloadGMSpark(b *testing.B)       { benchWorkload(b, "GM", "spark") }
func BenchmarkWorkloadGMRupam(b *testing.B)       { benchWorkload(b, "GM", "rupam") }
func BenchmarkWorkloadKMeansSpark(b *testing.B)   { benchWorkload(b, "KMeans", "spark") }
func BenchmarkWorkloadKMeansRupam(b *testing.B)   { benchWorkload(b, "KMeans", "rupam") }

// ---- ablations (DESIGN.md) ---------------------------------------------------

func benchAblation(b *testing.B, workload string, cfg core.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.RunSpec{
			Workload:  workload,
			Scheduler: experiments.SchedRUPAM,
			RUPAM:     cfg,
			Seed:      uint64(i + 1),
		})
		b.ReportMetric(r.Duration, "sim-sec")
	}
}

// BenchmarkAblationResFactor sweeps Algorithm 1's sensitivity threshold.
func BenchmarkAblationResFactor(b *testing.B) {
	for _, f := range []float64{1.2, 2, 4} {
		f := f
		b.Run(benchName("resfactor", f), func(b *testing.B) {
			benchAblation(b, "LR", core.Config{ResFactor: f})
		})
	}
}

// BenchmarkAblationNodeLocking disables §III-C1's best-node pinning.
func BenchmarkAblationNodeLocking(b *testing.B) {
	benchAblation(b, "LR", core.Config{DisableLocking: true})
}

// BenchmarkAblationMemoryAware disables the memory-fit check, dynamic
// executor sizing, and memory-straggler reclamation.
func BenchmarkAblationMemoryAware(b *testing.B) {
	benchAblation(b, "PR", core.Config{DisableMemAware: true})
}

// BenchmarkAblationRoundRobin drains resource queues in fixed order.
func BenchmarkAblationRoundRobin(b *testing.B) {
	benchAblation(b, "TeraSort", core.Config{DisableRR: true})
}

// BenchmarkAblationGPURace makes GPU tasks wait for accelerator nodes.
func BenchmarkAblationGPURace(b *testing.B) {
	benchAblation(b, "KMeans", core.Config{DisableGPURace: true})
}

func benchName(prefix string, v float64) string {
	switch v {
	case 1.2:
		return prefix + "-1.2"
	case 2:
		return prefix + "-2"
	case 4:
		return prefix + "-4"
	}
	return prefix
}

// ---- substrate micro-benchmarks ----------------------------------------------

// BenchmarkSimxEventLoop measures raw event throughput of the kernel.
func BenchmarkSimxEventLoop(b *testing.B) {
	eng := simx.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(0.001, tick)
		}
	}
	eng.Schedule(0.001, tick)
	b.ResetTimer()
	eng.Run()
}

// BenchmarkPSResourceChurn measures claim acquire/complete cycles under
// contention.
func BenchmarkPSResourceChurn(b *testing.B) {
	eng := simx.NewEngine()
	r := simx.NewPSResource(eng, "cpu", 16, 2)
	n := 0
	var spawn func()
	spawn = func() {
		n++
		if n < b.N {
			r.Acquire(0.5, spawn)
		}
	}
	for i := 0; i < 32 && i < b.N; i++ {
		n++
		r.Acquire(0.5, spawn)
	}
	b.ResetTimer()
	eng.Run()
}

// BenchmarkNetsimWaterfill measures max-min reallocation with many
// concurrent flows (a full shuffle wave).
func BenchmarkNetsimWaterfill(b *testing.B) {
	eng := simx.NewEngine()
	net := netsim.New(eng)
	names := make([]string, 12)
	for i := range names {
		names[i] = string(rune('a' + i))
		net.AddNode(names[i], 125e6, 125e6)
	}
	for i := 0; i < 144; i++ {
		net.Start(names[i%12], names[(i/12+1)%12], 1e12, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Sync() // forces a full waterfill pass
	}
}

// BenchmarkHydraConstruction measures cluster model setup.
func BenchmarkHydraConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simx.NewEngine()
		clu := cluster.New(eng)
		cluster.NewHydra(clu)
		if len(clu.Nodes) != 12 {
			b.Fatal("bad cluster")
		}
	}
}

// BenchmarkWorkloadCompile measures plan compilation (the DAG scheduler).
func BenchmarkWorkloadCompile(b *testing.B) {
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	cluster.NewHydra(clu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := hdfs.NewStore(clu.NodeNames(), 2, uint64(i+1))
		app := workloads.Build("PR", store, workloads.Params{})
		if app.NumTasks() == 0 {
			b.Fatal("empty app")
		}
	}
}
