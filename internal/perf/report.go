package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaV1 identifies the BENCH_<n>.json format this package emits.
const SchemaV1 = "rupam-bench/perf-v1"

// CaseResult is one battery case's counters in the BENCH artifact.
// Events and tasks are deterministic; wall time (and hence the /sec
// rates) is the only machine-dependent field.
type CaseResult struct {
	Name           string  `json:"name"`
	WallSec        float64 `json:"wall_sec"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Tasks          int64   `json:"tasks"`
	TasksPerSec    float64 `json:"tasks_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`

	// Paired-run fields, present when the battery ran with
	// CompareUnopt: the same case under the reference kernels.
	UnoptWallSec        float64 `json:"unopt_wall_sec,omitempty"`
	UnoptEventsPerSec   float64 `json:"unopt_events_per_sec,omitempty"`
	UnoptAllocsPerEvent float64 `json:"unopt_allocs_per_event,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// KernelBaseline is the same battery measured against a historical
// kernel build on the same machine. The committed artifact embeds the
// pre-optimization kernel (the commit before the internal/perf PR) as
// the trajectory origin for the speedup claim; its event counts are
// its own — old and new kernels fire marginally different event
// streams (≤0.1%), so its rates are computed over its own counts and
// no cross-kernel count equality is asserted.
type KernelBaseline struct {
	Commit string       `json:"commit"`
	Note   string       `json:"note,omitempty"`
	Cases  []CaseResult `json:"cases"`
	Total  CaseResult   `json:"total"`
}

// Report is the BENCH_<n>.json artifact: the per-case counters plus a
// whole-sweep aggregate.
type Report struct {
	Schema string       `json:"schema"`
	Scale  string       `json:"scale"`
	Reps   int          `json:"reps,omitempty"`
	Cases  []CaseResult `json:"cases"`
	Total  CaseResult   `json:"total"`

	// BaselineKernel is optional historical context (see KernelBaseline);
	// Compare ignores it — it is provenance, not a gate.
	BaselineKernel *KernelBaseline `json:"baseline_kernel,omitempty"`
}

// ReadKernelBaseline loads a KernelBaseline JSON file (as produced by
// running the battery cases against a checked-out historical commit).
func ReadKernelBaseline(path string) (*KernelBaseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var kb KernelBaseline
	if err := json.Unmarshal(b, &kb); err != nil {
		return nil, fmt.Errorf("perf: decoding kernel baseline: %w", err)
	}
	if kb.Commit == "" {
		return nil, fmt.Errorf("perf: kernel baseline missing commit")
	}
	return &kb, nil
}

func rate(n, wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return n / wall
}

func perEvent(allocs, events uint64) float64 {
	if events == 0 {
		return 0
	}
	return float64(allocs) / float64(events)
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func newCaseResult(name string, m Measurement) CaseResult {
	return CaseResult{
		Name:           name,
		WallSec:        m.Wall,
		Events:         m.Events,
		EventsPerSec:   rate(float64(m.Events), m.Wall),
		Tasks:          m.Tasks,
		TasksPerSec:    rate(float64(m.Tasks), m.Wall),
		Allocs:         m.Allocs,
		AllocsPerEvent: perEvent(m.Allocs, m.Events),
	}
}

// aggregate folds every case into the sweep total. Rates are computed
// over summed numerators and denominators (not averaged per case), so
// long cases weigh what they cost.
func (r *Report) aggregate() CaseResult {
	var wall, unoptWall float64
	var events, allocs uint64
	var tasks int64
	var unoptEvents uint64
	var unoptAllocs uint64
	paired := true
	for _, c := range r.Cases {
		wall += c.WallSec
		events += c.Events
		tasks += c.Tasks
		allocs += c.Allocs
		if c.UnoptWallSec > 0 {
			unoptWall += c.UnoptWallSec
			unoptEvents += c.Events // counts are kernel-invariant
			unoptAllocs += uint64(c.UnoptAllocsPerEvent * float64(c.Events))
		} else {
			paired = false
		}
	}
	total := newCaseResult("total", Measurement{Wall: wall, Events: events, Tasks: tasks, Allocs: allocs})
	if paired && unoptWall > 0 {
		total.UnoptWallSec = unoptWall
		total.UnoptEventsPerSec = rate(float64(unoptEvents), unoptWall)
		total.UnoptAllocsPerEvent = perEvent(unoptAllocs, unoptEvents)
		total.Speedup = ratio(total.EventsPerSec, total.UnoptEventsPerSec)
	}
	return total
}

// line formats a case for progress output.
func (c CaseResult) line() string {
	s := fmt.Sprintf("%-24s %8.2fs wall  %12.0f events/s  %7.2f allocs/event",
		c.Name, c.WallSec, c.EventsPerSec, c.AllocsPerEvent)
	if c.TasksPerSec > 0 {
		s += fmt.Sprintf("  %8.1f tasks/s", c.TasksPerSec)
	}
	if c.Speedup > 0 {
		s += fmt.Sprintf("  %5.1fx vs unopt", c.Speedup)
	}
	return s
}

// Print writes the human-readable report.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "perf battery (%s scale, schema %s)\n", r.Scale, r.Schema)
	for _, c := range r.Cases {
		fmt.Fprintln(w, "  "+c.line())
	}
	fmt.Fprintln(w, "  "+r.Total.line())
}

// WriteJSON emits the BENCH artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a BENCH artifact and validates its schema tag.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("perf: decoding report: %w", err)
	}
	if rep.Schema != SchemaV1 {
		return nil, fmt.Errorf("perf: unsupported schema %q (want %q)", rep.Schema, SchemaV1)
	}
	return &rep, nil
}

// ReadReportFile loads a BENCH artifact from disk.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// Compare gates a new report against a baseline. Every baseline case
// must still exist, be at the same scale, and pass three gates:
//
//   - event count: exactly equal — the battery is deterministic, so
//     any drift is a behavior change, not noise;
//   - events/sec: at least (1-threshold) of the baseline's. This is
//     the catch-all, but it is machine-relative — it only means
//     something when baseline and current ran on comparable hardware;
//   - allocs/event and (when both reports carry paired runs) speedup:
//     at most (1+threshold) respectively at least (1-threshold) of the
//     baseline's. Both are machine-independent — allocation counts are
//     near-deterministic and the speedup is normalized by the paired
//     unoptimized run on the same host — so they hold across machines
//     where the raw rate gate cannot.
//
// It returns one violation string per failure; an empty slice means no
// regression. threshold absorbs noise (the CI gate uses 0.15).
func Compare(baseline, current *Report, threshold float64) []string {
	var violations []string
	if baseline.Scale != current.Scale {
		violations = append(violations,
			fmt.Sprintf("scale changed: baseline %q, current %q — not comparable", baseline.Scale, current.Scale))
		return violations
	}
	byName := make(map[string]CaseResult, len(current.Cases))
	for _, c := range current.Cases {
		byName[c.Name] = c
	}
	check := func(old, now CaseResult) {
		if old.Events != now.Events {
			violations = append(violations,
				fmt.Sprintf("%s: event count changed %d -> %d (battery is deterministic; regenerate the baseline deliberately)",
					old.Name, old.Events, now.Events))
		}
		if floor := old.EventsPerSec * (1 - threshold); now.EventsPerSec < floor {
			violations = append(violations,
				fmt.Sprintf("%s: events/sec regressed %.0f -> %.0f (floor %.0f at %.0f%% threshold)",
					old.Name, old.EventsPerSec, now.EventsPerSec, floor, threshold*100))
		}
		// Absolute slack of 0.1 allocs/event keeps the relative gate
		// from tripping on GC-internal jitter in near-zero-alloc cases.
		if ceil := old.AllocsPerEvent*(1+threshold) + 0.1; now.AllocsPerEvent > ceil {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/event regressed %.2f -> %.2f (ceiling %.2f at %.0f%% threshold)",
					old.Name, old.AllocsPerEvent, now.AllocsPerEvent, ceil, threshold*100))
		}
		// Gate the speedup ratio only where the baseline shows a material
		// kernel dependence: near 1.0 the ratio is a quotient of two
		// noisy walls and carries no signal worth failing a build over.
		if old.Speedup >= 1.25 && now.Speedup > 0 {
			if floor := old.Speedup * (1 - threshold); now.Speedup < floor {
				violations = append(violations,
					fmt.Sprintf("%s: kernel speedup regressed %.2fx -> %.2fx (floor %.2fx at %.0f%% threshold)",
						old.Name, old.Speedup, now.Speedup, floor, threshold*100))
			}
		}
	}
	for _, old := range baseline.Cases {
		now, ok := byName[old.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: case missing from current report", old.Name))
			continue
		}
		check(old, now)
	}
	check(baseline.Total, current.Total)
	return violations
}
