package perf

import (
	"testing"

	"rupam/internal/chaos"
	"rupam/internal/simx"
)

// TestPoolingBitIdentity is the timer-pooling optimization's safety
// case. A chaos soak with pooling enabled (the default) self-verifies
// bit-identical double runs and the full invariant battery; the same
// seeds with pooling disabled — one heap allocation per event, the
// reference allocation strategy — must land on the same fingerprints.
func TestPoolingBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second sweep")
	}
	seeds := []uint64{5, 17}

	pooled := chaos.Soak(chaos.Config{Seeds: seeds})
	if pooled.Violations != 0 {
		for _, r := range pooled.Runs {
			for _, v := range r.Violations {
				t.Errorf("%s seed %d: %s", r.Scheduler, r.Seed, v)
			}
		}
		t.Fatalf("pooled chaos soak reported %d violations", pooled.Violations)
	}

	simx.SetPoolingDefault(false)
	unpooled := chaos.Soak(chaos.Config{Seeds: seeds, SkipVerify: true})
	simx.SetPoolingDefault(true)
	if len(unpooled.Runs) != len(pooled.Runs) {
		t.Fatalf("run count mismatch: %d pooled, %d unpooled", len(pooled.Runs), len(unpooled.Runs))
	}
	for i, r := range pooled.Runs {
		if unpooled.Runs[i].Fingerprint != r.Fingerprint {
			t.Errorf("%s seed %d: fingerprint %s pooled, %s unpooled",
				r.Scheduler, r.Seed, r.Fingerprint, unpooled.Runs[i].Fingerprint)
		}
	}
}

// TestPoolSteadyState is the leak test: under a fixed-concurrency
// workload the timer-node pool must reach steady state — after the
// first wave warms the free list, further waves allocate nothing, and
// a drained engine holds every node it ever allocated on the free
// list (nothing stuck in the heap, nothing dropped for the GC to
// collect and the next wave to re-allocate).
func TestPoolSteadyState(t *testing.T) {
	eng := simx.NewEngine()
	const depth, events = 48, 20_000

	wave := func() {
		fired := 0
		var tick func()
		tick = func() {
			fired++
			if fired < events {
				eng.Schedule(0.001, tick)
			}
		}
		for i := 0; i < depth; i++ {
			eng.Schedule(0.001, tick)
		}
		eng.Run()
	}

	wave()
	warm := eng.PoolStats()
	if warm.InUse != 0 {
		t.Fatalf("drained engine holds %d nodes in the heap", warm.InUse)
	}
	if warm.Free != int(warm.News) {
		t.Fatalf("drained engine leaked nodes: %d allocated, %d on the free list", warm.News, warm.Free)
	}
	if warm.News > 4*depth {
		t.Fatalf("pool over-allocates: %d nodes for concurrency %d", warm.News, depth)
	}

	for i := 0; i < 5; i++ {
		wave()
	}
	steady := eng.PoolStats()
	if steady.News != warm.News {
		t.Fatalf("pool not steady: %d fresh allocations after warmup (total %d, warm %d)",
			steady.News-warm.News, steady.News, warm.News)
	}
	if steady.InUse != 0 || steady.Free != int(steady.News) {
		t.Fatalf("pool leaked under repetition: in-use %d, free %d, allocated %d",
			steady.InUse, steady.Free, steady.News)
	}
	if steady.Puts != steady.Gets+steady.News {
		t.Fatalf("take/return imbalance on a drained engine: %d+%d taken, %d returned",
			steady.Gets, steady.News, steady.Puts)
	}
}
