package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestBatterySmoke runs the full sweep at smoke scale with the paired
// unoptimized-kernel runs and best-of-2 repetitions — every battery
// feature on one pass. The per-case checks pin the properties the
// BENCH artifact and its comparator rely on.
func TestBatterySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("battery smoke is a multi-second sweep")
	}
	rep := RunBattery(Options{Scale: ScaleSmoke, CompareUnopt: true, Reps: 2})

	want := len(cases())
	if len(rep.Cases) != want {
		t.Fatalf("got %d cases, want %d", len(rep.Cases), want)
	}
	var events uint64
	var tasks int64
	for _, c := range rep.Cases {
		if c.Events == 0 {
			t.Errorf("%s: fired no events", c.Name)
		}
		if c.WallSec <= 0 {
			t.Errorf("%s: non-positive wall time %v", c.Name, c.WallSec)
		}
		if c.UnoptWallSec <= 0 || c.Speedup <= 0 {
			t.Errorf("%s: paired run missing (unopt wall %v, speedup %v)", c.Name, c.UnoptWallSec, c.Speedup)
		}
		if strings.HasPrefix(c.Name, "batch/") && c.Tasks == 0 {
			t.Errorf("%s: batch case reported no task launches", c.Name)
		}
		events += c.Events
		tasks += c.Tasks
	}
	if rep.Total.Events != events {
		t.Errorf("total events %d != case sum %d", rep.Total.Events, events)
	}
	if rep.Total.Tasks != tasks {
		t.Errorf("total tasks %d != case sum %d", rep.Total.Tasks, tasks)
	}
	if rep.Reps != 2 {
		t.Errorf("report reps %d, want 2", rep.Reps)
	}

	// The counts must be byte-reproducible: a second battery at the same
	// scale fires identical events and tasks per case.
	again := RunBattery(Options{Scale: ScaleSmoke})
	for i, c := range rep.Cases {
		if again.Cases[i].Events != c.Events || again.Cases[i].Tasks != c.Tasks {
			t.Errorf("%s: counts drifted across batteries: %d/%d then %d/%d",
				c.Name, c.Events, c.Tasks, again.Cases[i].Events, again.Cases[i].Tasks)
		}
	}
}

func sampleReport() *Report {
	r := &Report{
		Schema: SchemaV1,
		Scale:  ScaleSmoke,
		Reps:   3,
		Cases: []CaseResult{
			newCaseResult("a", Measurement{Wall: 1, Events: 1000, Tasks: 10, Allocs: 500}),
			newCaseResult("b", Measurement{Wall: 2, Events: 4000, Tasks: 0, Allocs: 100}),
		},
	}
	r.Total = r.aggregate()
	return r
}

func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	rep.BaselineKernel = &KernelBaseline{
		Commit: "0000000",
		Note:   "test",
		Cases:  rep.Cases,
		Total:  rep.Total,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", rep, got)
	}

	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestReadKernelBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.json")
	if err := os.WriteFile(path, []byte(`{"commit":"abc1234","cases":[],"total":{"name":"total"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	kb, err := ReadKernelBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Commit != "abc1234" {
		t.Fatalf("commit %q", kb.Commit)
	}
	if err := os.WriteFile(path, []byte(`{"cases":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKernelBaseline(path); err == nil {
		t.Fatal("baseline without commit accepted")
	}
}

// TestCompare pins the comparator's gates: scale mismatch, missing
// case, deterministic-count drift, and the events/sec floor.
func TestCompare(t *testing.T) {
	base := sampleReport()

	if v := Compare(base, sampleReport(), 0.15); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}

	cur := sampleReport()
	cur.Scale = ScaleStandard
	if v := Compare(base, cur, 0.15); len(v) != 1 || !strings.Contains(v[0], "scale") {
		t.Fatalf("scale mismatch not flagged: %v", v)
	}

	cur = sampleReport()
	cur.Cases = cur.Cases[:1]
	if v := Compare(base, cur, 0.15); len(v) == 0 || !strings.Contains(v[0]+v[len(v)-1], "missing") {
		t.Fatalf("missing case not flagged: %v", v)
	}

	cur = sampleReport()
	cur.Cases[0].Events += 7
	if v := Compare(base, cur, 0.15); len(v) == 0 || !strings.Contains(strings.Join(v, " "), "event count changed") {
		t.Fatalf("count drift not flagged: %v", v)
	}

	// 10% slower at a 15% threshold passes; 30% slower fails.
	cur = sampleReport()
	cur.Cases[0].EventsPerSec = base.Cases[0].EventsPerSec * 0.9
	if v := Compare(base, cur, 0.15); len(v) != 0 {
		t.Fatalf("10%% slowdown flagged at 15%% threshold: %v", v)
	}
	cur.Cases[0].EventsPerSec = base.Cases[0].EventsPerSec * 0.7
	if v := Compare(base, cur, 0.15); len(v) != 1 || !strings.Contains(v[0], "regressed") {
		t.Fatalf("30%% slowdown not flagged: %v", v)
	}

	// allocs/event is gated with 15% relative + 0.1 absolute slack.
	cur = sampleReport()
	cur.Cases[0].AllocsPerEvent = base.Cases[0].AllocsPerEvent + 0.09
	if v := Compare(base, cur, 0.15); len(v) != 0 {
		t.Fatalf("within-slack alloc growth flagged: %v", v)
	}
	cur.Cases[0].AllocsPerEvent = base.Cases[0].AllocsPerEvent*2 + 0.2
	if v := Compare(base, cur, 0.15); len(v) != 1 || !strings.Contains(v[0], "allocs/event") {
		t.Fatalf("alloc regression not flagged: %v", v)
	}

	// The speedup gate engages only when both reports carry paired runs.
	base.Cases[0].Speedup = 5.0
	cur = sampleReport()
	if v := Compare(base, cur, 0.15); len(v) != 0 {
		t.Fatalf("missing paired run flagged: %v", v)
	}
	cur.Cases[0].Speedup = 3.0
	if v := Compare(base, cur, 0.15); len(v) != 1 || !strings.Contains(v[0], "speedup") {
		t.Fatalf("speedup regression not flagged: %v", v)
	}
	cur.Cases[0].Speedup = 4.5
	if v := Compare(base, cur, 0.15); len(v) != 0 {
		t.Fatalf("within-threshold speedup drop flagged: %v", v)
	}

	// Near-1.0 baseline speedups are noise quotients, not gated.
	base.Cases[0].Speedup = 1.1
	cur.Cases[0].Speedup = 0.85
	if v := Compare(base, cur, 0.15); len(v) != 0 {
		t.Fatalf("immaterial speedup baseline gated: %v", v)
	}
}
