package perf

import (
	"testing"

	"rupam/internal/chaos"
	"rupam/internal/netsim"
)

// These tests are the netsim optimization's safety case (ROADMAP:
// "incremental re-rating must be indistinguishable from the reference
// recompute"). Two layers:
//
//  1. netsim verify mode — every network panics the moment any
//     incrementally maintained flow rate or interface aggregate differs
//     from a full water-filling recompute, by exact float64 comparison.
//     Running seeded chaos and streaming fault mixes under verify
//     sweeps that check across crashes, gray nodes, spot reclamation,
//     migrations and load spikes.
//
//  2. cross-kernel fingerprints — the same seeds run with incremental
//     re-rating disabled must produce bit-identical outcome
//     fingerprints, proving the optimized kernel changes no observable
//     trajectory, not merely no single rate.
func TestIncrementalMatchesFullUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second sweep")
	}
	seeds := []uint64{11, 23}

	netsim.SetVerifyDefault(true)
	rep := chaos.Soak(chaos.Config{Seeds: seeds})
	netsim.SetVerifyDefault(false)
	if rep.Violations != 0 {
		for _, r := range rep.Runs {
			for _, v := range r.Violations {
				t.Errorf("%s seed %d: %s", r.Scheduler, r.Seed, v)
			}
		}
		t.Fatalf("verified chaos soak reported %d violations", rep.Violations)
	}

	netsim.SetIncrementalDefault(false)
	full := chaos.Soak(chaos.Config{Seeds: seeds, SkipVerify: true})
	netsim.SetIncrementalDefault(true)
	if len(full.Runs) != len(rep.Runs) {
		t.Fatalf("run count mismatch: %d incremental, %d full", len(rep.Runs), len(full.Runs))
	}
	for i, r := range rep.Runs {
		if full.Runs[i].Fingerprint != r.Fingerprint {
			t.Errorf("%s seed %d: fingerprint %s incremental, %s full recompute",
				r.Scheduler, r.Seed, r.Fingerprint, full.Runs[i].Fingerprint)
		}
	}
}

func TestIncrementalMatchesFullUnderStreamingFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming soak is a multi-second sweep")
	}
	seeds := []uint64{7, 19}

	netsim.SetVerifyDefault(true)
	rep := chaos.StreamingSoak(chaos.StreamingConfig{Seeds: seeds})
	netsim.SetVerifyDefault(false)
	if rep.Violations != 0 {
		for _, r := range rep.Runs {
			for _, v := range r.Violations {
				t.Errorf("%s seed %d: %s", r.Placer, r.Seed, v)
			}
		}
		t.Fatalf("verified streaming soak reported %d violations", rep.Violations)
	}

	netsim.SetIncrementalDefault(false)
	full := chaos.StreamingSoak(chaos.StreamingConfig{Seeds: seeds, SkipVerify: true})
	netsim.SetIncrementalDefault(true)
	if len(full.Runs) != len(rep.Runs) {
		t.Fatalf("run count mismatch: %d incremental, %d full", len(rep.Runs), len(full.Runs))
	}
	for i, r := range rep.Runs {
		if full.Runs[i].Fingerprint != r.Fingerprint {
			t.Errorf("%s seed %d: fingerprint %s incremental, %s full recompute",
				r.Placer, r.Seed, r.Fingerprint, full.Runs[i].Fingerprint)
		}
	}
}
