// Package perf is the simulator's performance-measurement subsystem: a
// deterministic workload battery (kernel micro-sweeps plus batch,
// tenancy, streaming and federation configurations) instrumented with
// wall-time, events/sec, tasks/sec and allocs/event counters, a
// BENCH_<n>.json emitter, and a baseline comparator that fails on
// regression beyond a noise threshold.
//
// The battery is deterministic in everything but wall time: every case
// runs fixed seeds through the same harnesses the evaluation uses, so
// event and task counts are byte-reproducible run to run — only the
// wall-clock denominators move, which is exactly what the comparator's
// noise threshold absorbs.
//
// The battery can also pair every case with a run under the
// unoptimized reference kernels (timer-node pooling off, netsim
// incremental re-rating off) and record the speedup, which is how the
// committed BENCH artifact demonstrates the kernel-optimization
// trajectory the ROADMAP calls for.
package perf

import (
	"fmt"
	"runtime"
	"time"

	"rupam/internal/experiments"
	"rupam/internal/netsim"
	"rupam/internal/simx"
)

// Scale names for Options.Scale.
const (
	// ScaleSmoke is a fast sweep for unit tests (~a second).
	ScaleSmoke = "smoke"
	// ScaleStandard is the default sweep behind committed BENCH artifacts.
	ScaleStandard = "standard"
)

// Options configure a battery run.
type Options struct {
	// Scale selects the sweep size: ScaleSmoke or ScaleStandard
	// (default ScaleStandard).
	Scale string
	// CompareUnopt pairs every case with a run under the unoptimized
	// reference kernels (engine pooling off, netsim incremental
	// re-rating off) and records unopt wall time and speedup.
	CompareUnopt bool
	// Reps runs every case this many times and keeps the fastest
	// repetition (default 1). Event, task and allocation counts are
	// deterministic across repetitions — the battery panics if they
	// drift — so best-of-N only de-noises the wall-clock denominator,
	// which on shared or virtualized hardware is dominated by steal
	// time rather than by the code under test.
	Reps int
	// Progress, when non-nil, receives a line per case as it finishes.
	Progress func(string)
}

// Measurement is one instrumented execution of a case body.
type Measurement struct {
	Wall   float64 // seconds of wall time
	Events uint64  // engine events fired (summed over every engine built)
	Tasks  int64   // task launches, where the harness reports them
	Allocs uint64  // heap allocations (runtime.MemStats.Mallocs delta)
}

// batteryCase is one named entry of the standard sweep. run executes
// the workload at the given scale and returns the task count (0 where
// the harness has no task notion); events and allocations are observed
// from outside.
type batteryCase struct {
	name string
	run  func(scale string) int64
}

// cases returns the standard sweep. Order is fixed: it is the order of
// Report.Cases and of the committed artifact.
//
// The kernel micro-cases isolate the three optimized hot paths (event
// loop, PS re-rating, netsim re-rating); the macro cases run the same
// harnesses the evaluation uses, so scheduler, executor, shuffle and
// fault machinery are all on the measured path.
func cases() []batteryCase {
	return []batteryCase{
		{"kernel/event-loop", runEventLoop},
		{"kernel/ps-churn", runPSChurn},
		{"kernel/netsim-shuffle", runNetsimShuffle},
		{"batch/pr-rupam", func(s string) int64 { return runBatch(s, "PR", experiments.SchedRUPAM) }},
		{"batch/pr-spark", func(s string) int64 { return runBatch(s, "PR", experiments.SchedSpark) }},
		{"batch/terasort-rupam", func(s string) int64 { return runBatch(s, "TeraSort", experiments.SchedRUPAM) }},
		{"tenancy/shared-cluster", runTenancy},
		{"streaming/placement", runStreaming},
		{"federation/two-driver", runFederation},
	}
}

// runEventLoop drives a bare engine through a chain of self-scheduling
// timers: the floor cost of one event (heap pop, node recycle,
// dispatch, re-arm).
func runEventLoop(scale string) int64 {
	n := 200_000
	if scale == ScaleStandard {
		// Sized so wall time amortizes scheduler/steal noise: the rate
		// gate in Compare needs walls well clear of timer quantization.
		n = 10_000_000
	}
	eng := simx.NewEngine()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			eng.Schedule(0.001, tick)
		}
	}
	eng.Schedule(0.001, tick)
	eng.Run()
	return 0
}

// runPSChurn churns claims through one processor-sharing resource at a
// fixed concurrency, the pattern every task execution produces on its
// node's CPU and disk.
func runPSChurn(scale string) int64 {
	n := 50_000
	if scale == ScaleStandard {
		n = 1_600_000
	}
	const depth = 32
	eng := simx.NewEngine()
	res := simx.NewPSResource(eng, "cpu", 16, 2)
	issued := 0
	var launch func()
	launch = func() {
		if issued < n {
			issued++
			res.Acquire(0.5, launch)
		}
	}
	for i := 0; i < depth; i++ {
		launch()
	}
	eng.Run()
	return 0
}

// runNetsimShuffle drives waves of concurrent transfers between
// disjoint node pairs — the shuffle regime netsim's incremental
// re-rating targets, where each flow event's bottleneck neighbourhood
// is a small fraction of the cluster-wide flow population.
func runNetsimShuffle(scale string) int64 {
	pairs, perPair, waves := 16, 4, 6
	if scale == ScaleStandard {
		pairs, perPair, waves = 32, 8, 72
	}
	eng := simx.NewEngine()
	nw := netsim.New(eng)
	for p := 0; p < pairs; p++ {
		nw.AddNode(fmt.Sprintf("src%02d", p), 125e6, 125e6)
		nw.AddNode(fmt.Sprintf("dst%02d", p), 125e6, 125e6)
	}
	for w := 0; w < waves; w++ {
		for p := 0; p < pairs; p++ {
			src := fmt.Sprintf("src%02d", p)
			dst := fmt.Sprintf("dst%02d", p)
			for f := 0; f < perPair; f++ {
				// Varied demands stagger completions so every finish
				// re-rates the pair's survivors.
				bytes := 64e6 * float64(1+(p+f)%5)
				nw.Start(src, dst, bytes, nil)
			}
		}
		eng.Run()
	}
	return 0
}

// runBatch executes one evaluation workload under one scheduler on the
// Hydra cluster, the unit the paper's figures are built from.
func runBatch(scale, workload, scheduler string) int64 {
	spec := experiments.RunSpec{Workload: workload, Scheduler: scheduler, Seed: 1}
	res := experiments.Run(spec)
	tasks := int64(res.Launches)
	if scale == ScaleStandard {
		// A second seed doubles the sample without changing shape.
		res2 := experiments.Run(experiments.RunSpec{Workload: workload, Scheduler: scheduler, Seed: 2})
		tasks += int64(res2.Launches)
	}
	return tasks
}

// runTenancy runs the multi-tenant open-loop arrival sweep at reduced
// size: admission queues, pool weights and preemption all on the
// measured path.
func runTenancy(scale string) int64 {
	cfg := experiments.TenancyConfig{BaseSeed: 1, Seeds: 1, Apps: 4, MeanGap: 20}
	if scale == ScaleStandard {
		cfg.Apps = 6
	}
	experiments.Tenancy(cfg)
	return 0
}

// runStreaming runs the operator-placement sweep at reduced size:
// topology generation, every placer, and the rate-solver loop.
func runStreaming(scale string) int64 {
	cfg := experiments.StreamingConfig{BaseSeed: 1, Seeds: 1, Horizon: 30}
	if scale == ScaleStandard {
		cfg.Seeds = 2
		cfg.Horizon = 45
	}
	experiments.Streaming(cfg)
	return 0
}

// runFederation runs a small multi-driver scaling sweep: the two-phase
// placement commit protocol and node agents on the measured path.
func runFederation(scale string) int64 {
	cfg := experiments.FederationConfig{
		BaseSeed:     1,
		Seeds:        1,
		DriverCounts: []int{2},
		Apps:         2,
	}
	if scale == ScaleStandard {
		cfg.Apps = 3
	}
	experiments.Federation(cfg)
	return 0
}

// measure runs fn with the battery's counters attached: wall time,
// events fired across every engine the body constructs (via the simx
// engine observer), and heap allocations.
func measure(fn func() int64) Measurement {
	var engines []*simx.Engine
	simx.SetEngineObserver(func(e *simx.Engine) { engines = append(engines, e) })
	defer simx.SetEngineObserver(nil)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tasks := fn()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	var events uint64
	for _, e := range engines {
		events += e.Fired()
	}
	return Measurement{
		Wall:   wall,
		Events: events,
		Tasks:  tasks,
		Allocs: after.Mallocs - before.Mallocs,
	}
}

// measureBest runs measure(fn) reps times and keeps the fastest wall
// clock (and the lowest allocation count, which GC-internal noise can
// inflate by a handful per run). Events and tasks must not drift
// across repetitions — that would mean the workload is not
// deterministic, which voids every comparison the battery makes.
func measureBest(name string, reps int, fn func() int64) Measurement {
	best := measure(fn)
	for i := 1; i < reps; i++ {
		m := measure(fn)
		if m.Events != best.Events || m.Tasks != best.Tasks {
			panic(fmt.Sprintf("perf: %s rep %d fired %d events/%d tasks, rep 0 fired %d/%d — workload nondeterministic",
				name, i, m.Events, m.Tasks, best.Events, best.Tasks))
		}
		if m.Wall < best.Wall {
			best.Wall = m.Wall
		}
		if m.Allocs < best.Allocs {
			best.Allocs = m.Allocs
		}
	}
	return best
}

// measureUnopt is measure under the unoptimized reference kernels:
// every engine allocates one timer node per event and netsim re-rates
// every flow globally on every change. Event and task counts are
// identical to the optimized run — the kernels are bit-equivalent —
// so the wall-time ratio is the kernel speedup.
func measureUnoptBest(name string, reps int, fn func() int64) Measurement {
	simx.SetPoolingDefault(false)
	netsim.SetIncrementalDefault(false)
	defer func() {
		simx.SetPoolingDefault(true)
		netsim.SetIncrementalDefault(true)
	}()
	return measureBest(name, reps, fn)
}

// RunBattery executes the standard sweep and returns the report.
func RunBattery(opts Options) *Report {
	scale := opts.Scale
	if scale == "" {
		scale = ScaleStandard
	}
	if scale != ScaleSmoke && scale != ScaleStandard {
		panic(fmt.Sprintf("perf: unknown scale %q", scale))
	}
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	rep := &Report{Schema: SchemaV1, Scale: scale, Reps: reps}
	for _, c := range cases() {
		m := measureBest(c.name, reps, func() int64 { return c.run(scale) })
		cr := newCaseResult(c.name, m)
		if opts.CompareUnopt {
			u := measureUnoptBest(c.name, reps, func() int64 { return c.run(scale) })
			if u.Events != m.Events {
				panic(fmt.Sprintf("perf: %s fired %d events optimized but %d unoptimized — kernels diverged",
					c.name, m.Events, u.Events))
			}
			cr.UnoptWallSec = u.Wall
			cr.UnoptEventsPerSec = rate(float64(u.Events), u.Wall)
			cr.UnoptAllocsPerEvent = perEvent(u.Allocs, u.Events)
			cr.Speedup = ratio(cr.EventsPerSec, cr.UnoptEventsPerSec)
		}
		rep.Cases = append(rep.Cases, cr)
		if opts.Progress != nil {
			opts.Progress(cr.line())
		}
	}
	rep.Total = rep.aggregate()
	if opts.Progress != nil {
		opts.Progress(rep.Total.line())
	}
	return rep
}
