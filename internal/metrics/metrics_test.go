package metrics

import (
	"math"
	"strings"
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/task"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func appWithMetrics() *task.Application {
	mk := func(m task.Metrics) *task.Task {
		mm := m
		return &task.Task{State: task.Finished, Attempts: []*task.Metrics{&mm}}
	}
	st := &task.Stage{Tasks: []*task.Task{
		mk(task.Metrics{Locality: hdfs.ProcessLocal, ComputeTime: 2, GCTime: 1,
			ShuffleWriteTime: 0.5, SchedulerDelay: 0.1, End: 5}),
		mk(task.Metrics{Locality: hdfs.NodeLocal, ComputeTime: 3, InputDiskTime: 1,
			DeserializeTime: 0.2, End: 6}),
		mk(task.Metrics{Locality: hdfs.Any, ShuffleReadTime: 2, InputNetTime: 1, End: 7}),
	}}
	// One unfinished task must be excluded everywhere.
	st.Tasks = append(st.Tasks, &task.Task{})
	return &task.Application{Jobs: []*task.Job{{Stages: []*task.Stage{st}}}}
}

func TestAppBreakdown(t *testing.T) {
	b := AppBreakdown(appWithMetrics())
	if !almost(b.Compute, 5.2, 1e-9) {
		t.Errorf("compute = %v", b.Compute)
	}
	if !almost(b.GC, 1, 1e-9) {
		t.Errorf("gc = %v", b.GC)
	}
	if !almost(b.ShuffleDisk, 1.5, 1e-9) {
		t.Errorf("shuffle-disk = %v", b.ShuffleDisk)
	}
	if !almost(b.ShuffleNet, 3, 1e-9) {
		t.Errorf("shuffle-net = %v", b.ShuffleNet)
	}
	if !almost(b.Scheduler, 0.1, 1e-9) {
		t.Errorf("scheduler = %v", b.Scheduler)
	}
	if !almost(b.Total(), 5.2+1+1.5+3+0.1, 1e-9) {
		t.Errorf("total = %v", b.Total())
	}
}

// TestShuffleReadSplit pins the byte-share attribution of ShuffleReadTime:
// all-local reads bill shuffle-disk, all-remote bill shuffle-net, mixed
// reads split proportionally, and reads with no byte accounting fall back
// to shuffle-net (the pre-split behavior, kept for hand-built metrics).
func TestShuffleReadSplit(t *testing.T) {
	cases := []struct {
		name              string
		local, remote     int64
		wantDisk, wantNet float64
	}{
		{"all-local", 100, 0, 4, 0},
		{"all-remote", 0, 100, 0, 4},
		{"mixed-3:1", 75, 25, 3, 1},
		{"no-bytes-fallback", 0, 0, 0, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b Breakdown
			b.Add(&task.Metrics{
				ShuffleReadTime:    4,
				ShuffleBytesLocal:  tc.local,
				ShuffleBytesRemote: tc.remote,
			})
			if !almost(b.ShuffleDisk, tc.wantDisk, 1e-9) {
				t.Errorf("shuffle-disk = %v, want %v", b.ShuffleDisk, tc.wantDisk)
			}
			if !almost(b.ShuffleNet, tc.wantNet, 1e-9) {
				t.Errorf("shuffle-net = %v, want %v", b.ShuffleNet, tc.wantNet)
			}
		})
	}
}

func TestAppLocality(t *testing.T) {
	lc := AppLocality(appWithMetrics())
	if lc.Process != 1 || lc.Node != 1 || lc.Any != 1 || lc.Rack != 0 {
		t.Fatalf("locality = %+v", lc)
	}
	if lc.Total() != 3 {
		t.Fatalf("total = %d", lc.Total())
	}
}

func TestTaskRows(t *testing.T) {
	rows := TaskRows(appWithMetrics())
	if len(rows) != 3 {
		t.Fatalf("rows = %d (unfinished task included?)", len(rows))
	}
	if rows[0].Compute != 3 { // 2 compute + 1 gc
		t.Fatalf("row compute = %v", rows[0].Compute)
	}
}

type fakeHeap struct{ s *simx.Space }

func (f fakeHeap) Heap() *simx.Space { return f.s }

func TestRecorderSamples(t *testing.T) {
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	n := clu.AddNode(cluster.NodeSpec{
		Name: "a", Class: "t", Cores: 2, FreqGHz: 1,
		MemBytes: cluster.GB, NetBandwidth: cluster.GbE(1),
		DiskReadBW: cluster.MBps(100), DiskWriteBW: cluster.MBps(100),
	})
	heap := simx.NewSpace(eng, "heap", cluster.GB)
	heap.ForceAlloc(cluster.GB / 2)
	rec := NewRecorder(eng, clu, map[string]fakeHeap{"a": {heap}}, 1)
	n.CPU.Acquire(100, nil)
	rec.Start()
	eng.RunUntil(3.5)
	rec.Stop()
	eng.Run()
	tr := rec.Trace()
	if tr.Len() != 4 { // samples at 0,1,2,3
		t.Fatalf("samples = %d", tr.Len())
	}
	s := tr.Series["a"][1]
	if s.CPU <= 0 {
		t.Fatal("CPU sample empty")
	}
	if !almost(s.MemGB, 0.5, 1e-9) {
		t.Fatalf("mem sample = %v", s.MemGB)
	}
}

func TestAvgUtilization(t *testing.T) {
	tr := NewTrace([]string{"a", "b"}, 1)
	tr.Series["a"] = []Sample{{CPU: 1, MemGB: 2, NetInMBps: 10, DiskReadMBps: 1}}
	tr.Series["b"] = []Sample{{CPU: 0, MemGB: 4, NetOutMBps: 30, DiskWriteMBps: 3}}
	u := AvgUtilization(tr)
	if !almost(u.CPUUserPct, 50, 1e-9) {
		t.Errorf("cpu = %v", u.CPUUserPct)
	}
	if !almost(u.MemUsedGB, 3, 1e-9) {
		t.Errorf("mem = %v", u.MemUsedGB)
	}
	if !almost(u.NetMBps, 20, 1e-9) {
		t.Errorf("net = %v", u.NetMBps)
	}
	if !almost(u.DiskKBps, 2000, 1e-9) {
		t.Errorf("disk = %v", u.DiskKBps)
	}
}

func TestNodeBalance(t *testing.T) {
	tr := NewTrace([]string{"a", "b"}, 1)
	tr.Series["a"] = []Sample{{Time: 0, CPU: 1}, {Time: 1, CPU: 0.5}}
	tr.Series["b"] = []Sample{{Time: 0, CPU: 0}, {Time: 1, CPU: 0.5}}
	bs := NodeBalance(tr)
	if len(bs.Times) != 2 {
		t.Fatalf("series length = %d", len(bs.Times))
	}
	if !almost(bs.CPU[0], 50, 1e-9) { // stddev of {100, 0} = 50 pp
		t.Errorf("cpu sd[0] = %v", bs.CPU[0])
	}
	if !almost(bs.CPU[1], 0, 1e-9) {
		t.Errorf("cpu sd[1] = %v", bs.CPU[1])
	}
}

func TestWriteTraceCSV(t *testing.T) {
	tr := NewTrace([]string{"a"}, 1)
	tr.Series["a"] = []Sample{{Time: 0, CPU: 0.5, MemGB: 1}, {Time: 1, CPU: 0.25}}
	var buf strings.Builder
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,node,cpu_util") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,a,0.5,1") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteBalanceCSV(t *testing.T) {
	b := BalanceSeries{Times: []float64{0, 1}, CPU: []float64{1, 2}, Net: []float64{3, 4}, Disk: []float64{5, 6}}
	var buf strings.Builder
	if err := WriteBalanceCSV(&buf, b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("csv rows = %d", got)
	}
}

func TestWriteTaskRowsCSV(t *testing.T) {
	rows := []TaskRow{{TaskID: 1, StageID: 2, Executor: "n", Duration: 3.5, UsedGPU: true}}
	var buf strings.Builder
	if err := WriteTaskRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,2,n,") || !strings.Contains(buf.String(), "true") {
		t.Fatalf("csv = %q", buf.String())
	}
}
