package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTraceCSV emits a utilization trace as CSV, one row per (time,
// node) sample — the raw material for replotting Figures 2, 8 and 9.
func WriteTraceCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "node", "cpu_util", "mem_gb",
		"net_in_mbps", "net_out_mbps", "disk_read_mbps", "disk_write_mbps"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < tr.Len(); i++ {
		for _, node := range tr.Nodes {
			s := tr.Series[node][i]
			rec := []string{
				f(s.Time), node, f(s.CPU), f(s.MemGB),
				f(s.NetInMBps), f(s.NetOutMBps), f(s.DiskReadMBps), f(s.DiskWriteMBps),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBalanceCSV emits a Figure 9 balance series as CSV.
func WriteBalanceCSV(w io.Writer, b BalanceSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "cpu_sd_pp", "net_sd_mbps", "disk_sd_mbps"}); err != nil {
		return err
	}
	for i := range b.Times {
		rec := []string{f(b.Times[i]), f(b.CPU[i]), f(b.Net[i]), f(b.Disk[i])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTaskRowsCSV emits per-task breakdown rows (Figure 3/7 raw data).
func WriteTaskRowsCSV(w io.Writer, rows []TaskRow) error {
	cw := csv.NewWriter(w)
	header := []string{"task_id", "stage_id", "executor", "compute_s",
		"shuffle_s", "serialize_s", "sched_delay_s", "duration_s", "used_gpu"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.TaskID), strconv.Itoa(r.StageID), r.Executor,
			f(r.Compute), f(r.Shuffle), f(r.Serialize), f(r.SchedDelay),
			f(r.Duration), strconv.FormatBool(r.UsedGPU),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }
