package metrics

import (
	"rupam/internal/hdfs"
	"rupam/internal/stats"
	"rupam/internal/task"
)

// Breakdown is a per-category execution-time decomposition summed over the
// successful attempts of an application — the categories of the paper's
// Figure 7 (GC, Compute, Scheduler delay, Shuffle-disk, Shuffle-net).
type Breakdown struct {
	Compute     float64 // compute incl. (de)serialization, as in Fig 3/7
	GC          float64
	ShuffleNet  float64 // network-bound reads: remote shuffle, remote input
	ShuffleDisk float64 // disk-bound shuffle reads/writes and local input
	Scheduler   float64
}

// Total returns the sum of all categories.
func (b Breakdown) Total() float64 {
	return b.Compute + b.GC + b.ShuffleNet + b.ShuffleDisk + b.Scheduler
}

// Add accumulates the categories of one attempt's metrics.
func (b *Breakdown) Add(m *task.Metrics) {
	b.Compute += m.ComputeTime + m.DeserializeTime + m.SerializeTime
	b.GC += m.GCTime
	b.ShuffleDisk += m.ShuffleWriteTime + m.InputDiskTime
	b.Scheduler += m.SchedulerDelay
	// Shuffle reads mix local disk and network; attribute by the remote
	// byte share. Attempts that predate the byte split (or synthetic
	// metrics without it) fall back to all-network, the old behavior.
	read := m.ShuffleReadTime
	if read > 0 {
		total := m.ShuffleBytesLocal + m.ShuffleBytesRemote
		if total > 0 {
			remoteShare := float64(m.ShuffleBytesRemote) / float64(total)
			b.ShuffleNet += read * remoteShare
			b.ShuffleDisk += read * (1 - remoteShare)
		} else {
			b.ShuffleNet += read
		}
	}
	b.ShuffleNet += m.InputNetTime
}

// AppBreakdown sums the breakdown over all successful attempts.
func AppBreakdown(app *task.Application) Breakdown {
	var b Breakdown
	for _, t := range app.AllTasks() {
		if m := t.SuccessMetrics(); m != nil {
			b.Add(m)
		}
	}
	return b
}

// LocalityCounts tallies successful task attempts by locality level — the
// rows of Table V.
type LocalityCounts struct {
	Process int
	Node    int
	Rack    int
	Any     int
}

// Total returns the number of counted tasks.
func (lc LocalityCounts) Total() int { return lc.Process + lc.Node + lc.Rack + lc.Any }

// AppLocality tallies the application's successful attempts.
func AppLocality(app *task.Application) LocalityCounts {
	var lc LocalityCounts
	for _, t := range app.AllTasks() {
		m := t.SuccessMetrics()
		if m == nil {
			continue
		}
		switch m.Locality {
		case hdfs.ProcessLocal:
			lc.Process++
		case hdfs.NodeLocal:
			lc.Node++
		case hdfs.RackLocal:
			lc.Rack++
		default:
			lc.Any++
		}
	}
	return lc
}

// TaskRow is one task's summary for the Fig 3 per-task plots.
type TaskRow struct {
	TaskID     int
	StageID    int
	Executor   string
	Compute    float64
	Shuffle    float64
	Serialize  float64
	SchedDelay float64
	Duration   float64
	UsedGPU    bool
}

// TaskRows extracts per-task rows (successful attempts only).
func TaskRows(app *task.Application) []TaskRow {
	var rows []TaskRow
	for _, t := range app.AllTasks() {
		m := t.SuccessMetrics()
		if m == nil {
			continue
		}
		rows = append(rows, TaskRow{
			TaskID:     t.ID,
			StageID:    t.StageID,
			Executor:   m.Executor,
			Compute:    m.ComputeTime + m.GCTime,
			Shuffle:    m.ShuffleReadTime + m.ShuffleWriteTime + m.InputDiskTime + m.InputNetTime,
			Serialize:  m.DeserializeTime + m.SerializeTime,
			SchedDelay: m.SchedulerDelay,
			Duration:   m.Duration(),
			UsedGPU:    m.UsedGPU,
		})
	}
	return rows
}

// UtilSummary is the Fig 8 row: average utilization across nodes and time.
type UtilSummary struct {
	CPUUserPct float64
	MemUsedGB  float64
	NetMBps    float64 // in+out
	DiskKBps   float64 // read+write
}

// AvgUtilization reduces a trace to cluster-average utilization.
func AvgUtilization(tr *Trace) UtilSummary {
	var u UtilSummary
	var n int
	for _, node := range tr.Nodes {
		for _, s := range tr.Series[node] {
			u.CPUUserPct += s.CPU * 100
			u.MemUsedGB += s.MemGB
			u.NetMBps += s.NetInMBps + s.NetOutMBps
			u.DiskKBps += (s.DiskReadMBps + s.DiskWriteMBps) * 1000
			n++
		}
	}
	if n > 0 {
		u.CPUUserPct /= float64(n)
		u.MemUsedGB /= float64(n)
		u.NetMBps /= float64(n)
		u.DiskKBps /= float64(n)
	}
	return u
}

// BalanceSeries is the Fig 9 series: per-sample standard deviation of node
// utilization across the cluster.
type BalanceSeries struct {
	Times []float64
	CPU   []float64 // stddev of CPU util (percent)
	Net   []float64 // stddev of net rate (MB/s)
	Disk  []float64 // stddev of disk rate (MB/s)
}

// NodeBalance computes the cross-node utilization spread over time.
func NodeBalance(tr *Trace) BalanceSeries {
	var bs BalanceSeries
	n := tr.Len()
	for i := 0; i < n; i++ {
		var cpu, net, disk []float64
		var t float64
		for _, node := range tr.Nodes {
			s := tr.Series[node][i]
			t = s.Time
			cpu = append(cpu, s.CPU*100)
			net = append(net, s.NetInMBps+s.NetOutMBps)
			disk = append(disk, s.DiskReadMBps+s.DiskWriteMBps)
		}
		bs.Times = append(bs.Times, t)
		bs.CPU = append(bs.CPU, stats.PopStdDev(cpu))
		bs.Net = append(bs.Net, stats.PopStdDev(net))
		bs.Disk = append(bs.Disk, stats.PopStdDev(disk))
	}
	return bs
}
