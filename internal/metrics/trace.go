// Package metrics turns raw run data into the paper's reporting artifacts:
// periodic per-node utilization traces (Figures 2, 8 and 9), per-task
// execution-time breakdowns (Figures 3 and 7), and locality tables
// (Table V).
package metrics

import (
	"rupam/internal/cluster"
	"rupam/internal/simx"
)

// HeapReader exposes executor heap usage to the recorder without importing
// the executor package.
type HeapReader interface {
	Heap() *simx.Space
}

// Sample is one node's utilization snapshot.
type Sample struct {
	Time          float64
	CPU           float64 // [0,1]
	MemGB         float64 // executor heap in use
	NetInMBps     float64
	NetOutMBps    float64
	DiskReadMBps  float64
	DiskWriteMBps float64
}

// Trace holds per-node utilization time series at a fixed interval.
type Trace struct {
	Interval float64
	Nodes    []string
	Series   map[string][]Sample
}

// NewTrace creates an empty trace for the given nodes.
func NewTrace(nodes []string, interval float64) *Trace {
	return &Trace{
		Interval: interval,
		Nodes:    append([]string(nil), nodes...),
		Series:   make(map[string][]Sample),
	}
}

// Len returns the number of samples recorded per node.
func (tr *Trace) Len() int {
	if len(tr.Nodes) == 0 {
		return 0
	}
	return len(tr.Series[tr.Nodes[0]])
}

// Recorder samples every node on a fixed period.
type Recorder struct {
	eng      *simx.Engine
	clu      *cluster.Cluster
	heaps    map[string]HeapReader
	interval float64
	trace    *Trace
	timer    simx.Timer
	stopped  bool
}

// NewRecorder builds a recorder over the cluster; heaps maps node name to
// its executor (any type exposing Heap).
func NewRecorder[H HeapReader](eng *simx.Engine, clu *cluster.Cluster, heaps map[string]H, interval float64) *Recorder {
	hr := make(map[string]HeapReader, len(heaps))
	for k, v := range heaps {
		hr[k] = v
	}
	if interval <= 0 {
		interval = 1
	}
	return &Recorder{
		eng:      eng,
		clu:      clu,
		heaps:    hr,
		interval: interval,
		trace:    NewTrace(cluNames(clu), interval),
	}
}

func cluNames(clu *cluster.Cluster) []string {
	names := make([]string, len(clu.Nodes))
	for i, n := range clu.Nodes {
		names[i] = n.Name()
	}
	return names
}

// Start begins sampling.
func (r *Recorder) Start() { r.tick() }

// Stop halts sampling.
func (r *Recorder) Stop() {
	r.stopped = true
	r.timer.Cancel()
	r.timer = simx.Timer{}
}

// Trace returns the recorded series.
func (r *Recorder) Trace() *Trace { return r.trace }

func (r *Recorder) tick() {
	if r.stopped {
		return
	}
	now := r.eng.Now()
	for _, n := range r.clu.Nodes {
		s := Sample{
			Time:          now,
			CPU:           n.CPUUtil(),
			NetInMBps:     n.Net.IngressRate() / 1e6,
			NetOutMBps:    n.Net.EgressRate() / 1e6,
			DiskReadMBps:  n.DiskRead.Utilization() * n.DiskRead.Capacity() / 1e6,
			DiskWriteMBps: n.DiskWrite.Utilization() * n.DiskWrite.Capacity() / 1e6,
		}
		if h, ok := r.heaps[n.Name()]; ok {
			s.MemGB = float64(h.Heap().Used()) / float64(cluster.GB)
		}
		r.trace.Series[n.Name()] = append(r.trace.Series[n.Name()], s)
	}
	r.timer = r.eng.Schedule(r.interval, r.tick)
}
