package spark

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/simx"
	"rupam/internal/task"
)

// mapOnlyApp is one shuffle-free stage of 8 CPU-heavy tasks (~1.3 s each
// on "fast", ~4 s on "slow"), so a mid-stage preemption always catches
// attempts in flight and retries never risk a fetch failure.
func mapOnlyApp(w *world) *task.Application {
	ctx := rdd.NewContext("map-only", w.store, 1)
	ctx.Read(w.store.CreateEven("in", 640*1e6, 8)).
		Map("work", rdd.Profile{CPUPerByte: 5e-8, MemPerByte: 1}).
		Count("job")
	return ctx.App()
}

func TestPreemptedLossesNeverCharged(t *testing.T) {
	// Two spot reclamations rip through the stage while every task budget
	// is a single failure (TaskMaxFailures=1) and blacklisting is armed at
	// its stock thresholds. Announced losses charge neither, so the run
	// must complete: one charged attempt anywhere would abort the job, and
	// four dead attempts on one node would blacklist it.
	w := newWorld(t)
	app := mapOnlyApp(w)
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.SpotPreempt, Node: "fast", At: 0.5, Duration: 0.5},
		{Kind: faults.SpotPreempt, Node: "slow", At: 1.5, Duration: 0.5},
	}}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
		Seed: 3, HeartbeatInterval: 0.25, HeartbeatTimeout: 1, Faults: plan,
		TaskMaxFailures: 1, Blacklist: BlacklistConfig{Enabled: true},
	})
	res := rt.Run(app)
	if res.Aborted != nil {
		t.Fatalf("preemption losses were charged against TaskMaxFailures: %v", res.Aborted)
	}
	if res.PreemptNotices != 2 || res.PreemptKills != 2 {
		t.Fatalf("notices=%d kills=%d, want 2/2", res.PreemptNotices, res.PreemptKills)
	}
	if res.PreemptLossesUncharged < 2 {
		t.Fatalf("only %d losses went uncharged; kills mid-stage should catch several attempts",
			res.PreemptLossesUncharged)
	}
	if res.NodesBlacklisted != 0 {
		t.Fatalf("%d blacklist activations from announced losses, want 0", res.NodesBlacklisted)
	}
}

// drainWorld is newWorld with 10 GbE on every node instead of mixed
// 1/10 GbE NICs. Drain re-replication is network-bound (the driver copies
// straight out of the doomed node's block store) while shuffle fetches are
// bound by the source's 120 MB/s disk, so on this fabric a sub-second
// grace window genuinely fits the whole drain — the scenario the graceful
// protocol exists for. The mixed-NIC newWorld is kept for the tests where
// re-replication must *lose* the race.
func drainWorld(t *testing.T) *world {
	t.Helper()
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	clu.AddNode(cluster.NodeSpec{
		Name: "fast", Class: "fast", Cores: 4, FreqGHz: 3,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(10),
		SSD: true, DiskReadBW: cluster.MBps(400), DiskWriteBW: cluster.MBps(300),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "slow", Class: "slow", Cores: 8, FreqGHz: 1,
		MemBytes: 32 * cluster.GB, NetBandwidth: cluster.GbE(10),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "gpu", Class: "gpu", Cores: 4, FreqGHz: 1.5,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(10),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
		GPUs: 1, GPURateGHz: 30,
	})
	return &world{eng: eng, clu: clu, store: hdfs.NewStore(clu.NodeNames(), 2, 1)}
}

func TestGracefulDrainProtectsShuffleOutputs(t *testing.T) {
	// Counterpart to TestPermanentCrashResubmitsLostMapOutputs: a map node
	// dies between the map and reduce stages, but *announced*. The grace
	// window re-replicates its finished map outputs before the reduce
	// stage resolves its fetch sources, so the kill costs zero fetch
	// failures and zero rollback resubmissions — the episode resolves as a
	// completed drain.
	w := drainWorld(t)
	app := shuffleApp(w)
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.SpotPreempt, Node: "slow", At: 4.6, Duration: 0.8},
	}}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
		Seed: 3, HeartbeatInterval: 0.25, HeartbeatTimeout: 1, Faults: plan,
	})
	res := rt.Run(app)
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.DrainBlocksMoved == 0 {
		t.Fatal("grace window moved no shuffle blocks off the doomed node")
	}
	if res.FetchFailures != 0 {
		t.Fatalf("%d fetch failures despite drained outputs, want 0", res.FetchFailures)
	}
	if res.Resubmissions != 0 {
		t.Fatalf("%d rollback resubmissions despite drained outputs, want 0", res.Resubmissions)
	}
	if res.DrainsCompleted != 1 {
		t.Fatalf("drains completed = %d, want 1 (nothing of value should die with the node)",
			res.DrainsCompleted)
	}
	recs := rt.PreemptionRecords()
	if len(recs) != 1 || recs[0].Resolution != "drained" {
		t.Fatalf("preemption records = %+v, want one resolved as drained", recs)
	}
}

func TestDrainRedirectsInFlightFetches(t *testing.T) {
	// The notice lands *after* the reduce stage has already started
	// streaming shuffle blocks from the doomed node. The drain still
	// relocates every block within the grace window, so at kill time the
	// driver re-points the in-flight reads at the new homes mid-transfer
	// instead of surfacing FetchFailed for data that has live replicas.
	w := drainWorld(t)
	app := shuffleApp(w)
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.SpotPreempt, Node: "slow", At: 5.1, Duration: 0.8},
	}}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
		Seed: 3, HeartbeatInterval: 0.25, HeartbeatTimeout: 1, Faults: plan,
	})
	res := rt.Run(app)
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.DrainBlocksMoved == 0 {
		t.Fatal("grace window moved no shuffle blocks off the doomed node")
	}
	if res.DrainFetchRedirects == 0 {
		t.Fatal("no in-flight fetches were redirected; the kill should land mid-fetch")
	}
	if res.FetchFailures != 0 {
		t.Fatalf("%d fetch failures despite re-replicated outputs, want 0", res.FetchFailures)
	}
	if res.Resubmissions != 0 {
		t.Fatalf("%d rollback resubmissions despite re-replicated outputs, want 0", res.Resubmissions)
	}
	if res.PreemptLossesUncharged == 0 {
		t.Fatal("the reduce attempt running on the doomed node should die uncharged")
	}
}
