// Package spark is the execution-framework substrate: a faithful model of
// Spark's driver-side machinery — sequential jobs, stages submitted as
// their shuffle dependencies complete, per-stage task sets, task retries
// on failure, speculative execution — with the task-to-node placement
// policy abstracted behind the Scheduler interface. Two schedulers plug
// in: this package's DefaultScheduler (locality-wait over core-count
// slots, Spark's stock policy) and package core's RUPAM.
package spark

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/metrics"
	"rupam/internal/monitor"
	"rupam/internal/netsim"
	"rupam/internal/simx"
	"rupam/internal/task"
	"rupam/internal/tracing"
	"rupam/internal/wal"
)

// Config carries the framework's tunables; zero fields take the Spark
// defaults noted per field.
type Config struct {
	// DriverNode hosts the driver program (result flows land here);
	// defaults to the first cluster node, matching the paper's master
	// co-located on a worker.
	DriverNode string
	// StaticHeapBytes is the executor heap the default scheduler uses on
	// every node (the paper sets 14 GB to fit the 16 GB thor machines).
	StaticHeapBytes int64
	// LocalityWait is the delay-scheduling relaxation timeout per level
	// (spark.locality.wait, default 3 s).
	LocalityWait float64
	// SpeculationInterval is how often stragglers are re-evaluated
	// (default 0.5 s).
	SpeculationInterval float64
	// SpeculationQuantile is the completed fraction before speculation
	// kicks in (default 0.75).
	SpeculationQuantile float64
	// SpeculationMultiplier times the median successful duration marks a
	// straggler (default 1.5).
	SpeculationMultiplier float64
	// SpeculationMaxPerStage caps in-flight speculative copies per stage
	// (0 = unlimited, the historical behavior). Under gray failures an
	// uncapped speculation pass can clone most of a stage onto the
	// healthy nodes at once; real Spark bounds the wave.
	SpeculationMaxPerStage int
	// HeartbeatInterval is the worker heartbeat period (default 1 s).
	HeartbeatInterval float64
	// MaxAttempts bounds per-task attempts before the task is forced onto
	// the highest-memory node (default 8).
	MaxAttempts int
	// HeartbeatTimeout is how long a node may go silent before the driver
	// declares its executor lost (spark.network.timeout; default 10 s).
	HeartbeatTimeout float64
	// TaskMaxFailures, when positive, bounds genuine failures (OOM, loss,
	// fetch failure) per task before the job aborts with an AbortError
	// (spark.task.maxFailures). 0 disables the bound, preserving the
	// retry-forever behavior the no-fault experiments were tuned on.
	TaskMaxFailures int
	// Blacklist configures driver-side node blacklisting (off by default).
	Blacklist BlacklistConfig
	// Faults, when non-empty, is the fault-injection plan applied to the
	// cluster during the run. Nil or empty leaves the run byte-identical
	// to one without the fault layer.
	Faults *faults.Schedule
	// WAL, when non-nil, receives every driver state transition as an
	// append-only write-ahead log; crash recovery replays it. Left nil, an
	// in-memory log is created automatically when the fault plan contains
	// a DriverCrash (a crash without a WAL would be unrecoverable), and no
	// log is kept otherwise.
	WAL *wal.Log
	// FetchRetries bounds how many deterministic-backoff re-checks a
	// shuffle fetch from a slow-but-alive source gets before the driver
	// escalates to FetchFailed (default 2; negative disables, escalating
	// immediately as before). Fetches from a source whose executor is
	// confirmed dead always escalate immediately.
	FetchRetries int
	// FetchRetryBackoff is the base backoff between fetch re-checks in
	// seconds; check i fires backoff×i after the previous (default 1.5).
	FetchRetryBackoff float64
	// SampleInterval is the utilization-trace sampling period (default
	// 1 s; 0 keeps the default, negative disables tracing).
	SampleInterval float64
	// MaxSimTime aborts (panics) a run whose virtual clock exceeds this
	// many seconds — a watchdog against scheduler livelocks (default
	// 86400, one simulated day).
	MaxSimTime float64
	// Exec carries the physical execution-model constants.
	Exec executor.Config
	// Seed drives all run randomness (failure coin flips).
	Seed uint64
	// Tracer, when non-nil, records the structured event trace (attempt
	// lifecycle, stage/job spans, decision audit). Nil disables tracing
	// with zero behavioral difference.
	Tracer *tracing.Collector
	// AppLabel and PoolLabel scope trace events and decision audits when
	// several applications share one Collector (multi-tenant runs). Both
	// are empty for single-application runs.
	AppLabel  string
	PoolLabel string
}

func (c Config) withDefaults() Config {
	if c.StaticHeapBytes == 0 {
		c.StaticHeapBytes = 14 * cluster.GB
	}
	if c.LocalityWait == 0 {
		c.LocalityWait = 3
	}
	if c.SpeculationInterval == 0 {
		c.SpeculationInterval = 0.5
	}
	if c.SpeculationQuantile == 0 {
		c.SpeculationQuantile = 0.75
	}
	if c.SpeculationMultiplier == 0 {
		c.SpeculationMultiplier = 1.5
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 1
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 10
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 1
	}
	if c.FetchRetries == 0 {
		c.FetchRetries = 2
	}
	if c.FetchRetryBackoff == 0 {
		c.FetchRetryBackoff = 1.5
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 86400
	}
	return c
}

// CacheRelocator is an optional Scheduler capability: a scheduler that
// migrates tasks deliberately wants cached partitions to follow them.
type CacheRelocator interface {
	RelocatesCache() bool
}

// ExecutorSetAware is an optional Scheduler capability: schedulers whose
// pending queues carry time-based state keyed to the set of usable
// executors (the default scheduler's delay-scheduling level and timer)
// implement it to re-derive that state when the set changes — a node is
// lost or rejoins, a crashed worker restarts, or dynamic allocation
// grants/revokes the application's slots on a node.
type ExecutorSetAware interface {
	ExecutorSetChanged()
}

// Substrate is the cluster-side state a multi-application run shares: one
// executor (node-level worker) per node, one cache registry, and one
// heartbeat monitor. A tenant manager builds it once and hands it to every
// application's Runtime; single-application runs build their own in Start.
type Substrate struct {
	Execs map[string]*executor.Executor
	Cache *executor.CacheTracker
	Mon   *monitor.Monitor
}

// Scheduler is the task-placement policy. The Runtime notifies it of
// schedulable work and cluster events; the scheduler responds by calling
// Runtime.Launch.
type Scheduler interface {
	// Name identifies the scheduler in reports ("spark", "rupam", ...).
	Name() string
	// Bind attaches the scheduler to a runtime before the app starts.
	Bind(rt *Runtime)
	// HeapFor sizes the executor heap for a node (static for default
	// Spark, per-node for RUPAM).
	HeapFor(node *cluster.Node) int64
	// StageSubmitted hands the scheduler a ready stage's tasks.
	StageSubmitted(st *task.Stage)
	// Resubmit returns a failed task to the pending pool.
	Resubmit(t *task.Task, st *task.Stage)
	// TaskEnded reports a finished attempt (for bookkeeping such as
	// RUPAM's task-characteristics database).
	TaskEnded(t *task.Task, r *executor.Run, out executor.Outcome)
	// Heartbeat delivers a node's resource report.
	Heartbeat(node string, nm *monitor.NodeMetrics)
	// Schedule launches as many pending tasks as current resources allow.
	Schedule()
}

// Runtime wires a cluster, an application, and a scheduler together and
// runs the app to completion on the simulation engine.
type Runtime struct {
	Eng   *simx.Engine
	Clu   *cluster.Cluster
	Cfg   Config
	Cache *executor.CacheTracker
	Mon   *monitor.Monitor
	Execs map[string]*executor.Executor
	Rec   *metrics.Recorder

	sched Scheduler
	app   *task.Application

	// multi-application (tenant) mode. sub is non-nil when this runtime
	// shares its executors, cache and monitor with sibling applications;
	// the substrate's owner (the tenant manager) then drives heartbeats
	// through DeliverHeartbeat and the engine itself. ownsSubstrate marks
	// the classic single-application path, where the runtime creates and
	// tears down those objects itself.
	sub           *Substrate
	ownsSubstrate bool
	// gate, when set, is the tenant layer's per-node launch admission:
	// fair-share slot caps and dynamic-allocation leases. Nil (single-app
	// runs) admits everything, preserving the historical behavior.
	gate func(node string) bool
	// capFn, when set, is the application-wide slot budget (FAIR share);
	// Launch refuses new attempts once it reports the budget spent.
	capFn func() bool
	// rescheduleFn replaces direct sched.Schedule() calls so the tenant
	// manager can run a global FAIR round across all applications instead
	// of a local one. Nil means local.
	rescheduleFn func()
	// OnAppDone, when set, fires once when the application completes or
	// aborts — the tenant manager's completion hook.
	OnAppDone func()
	// broker, when set, is the federation layer's placement arbiter:
	// Launch refuses any attempt the broker has not granted a committed
	// claim for, and reports each granted launch back so the claim can be
	// bound. Nil (non-federated runs) admits everything.
	broker PlacementBroker
	// OnAttemptEnd, when set, observes every attempt termination (success,
	// loser kill, failure) after the runtime's own accounting — the
	// federation layer releases the attempt's slot claim here.
	OnAttemptEnd func(t *task.Task, node string, out executor.Outcome)
	// OnRecovered, when set, fires at the end of driver crash recovery,
	// after survivors are re-adopted and orphans redelivered — the
	// federation layer rebuilds its protocol state from the WAL here.
	OnRecovered func()
	// hbDelivered counts heartbeats this runtime actually processed; in
	// shared-monitor mode Result.Heartbeats reports it instead of the
	// monitor's all-application total.
	hbDelivered int

	// driver state (driver.go)
	stages       map[int]*task.Stage
	stageOf      map[int]*task.Stage // by task ID
	jobIdx       int
	activeStages map[int]*task.Stage
	submitted    map[int]bool
	runningAtt   map[int][]*executor.Run // live attempts by task ID
	speculatable map[int]*task.Task
	specTimer    simx.Timer
	appDone      bool
	appStart     float64
	appEnd       float64
	jobEnds      []float64

	// fault-tolerance state (faulttol.go)
	lastHB    map[string]float64 // last heartbeat time per node
	lostExecs map[string]bool    // nodes the driver has declared lost
	lastInc   map[string]int     // last seen executor incarnation per node
	failCount map[int]int        // genuine failures per task ID
	resubmits map[int]int        // rollback resubmissions per task ID
	bl        *blacklist         // nil unless Cfg.Blacklist.Enabled
	wdTimer   simx.Timer         // heartbeat-timeout watchdog
	inj       *faults.Injector   // nil unless Cfg.Faults is non-empty
	aborted   *AbortError

	// spot-preemption / graceful-drain state (preempt.go)
	preempted         map[string]bool           // notice delivered, not yet cleared by re-acquisition
	preemptRecs       []*PreemptionRecord       // notice→kill episodes, in notice order
	drainFlows        map[string][]*netsim.Flow // in-flight drain copies per doomed node
	drainRR           int                       // round-robin cursor over drain destinations
	preemptViolations []string                  // drain-protocol audit failures
	attemptDurSum     float64                   // Σ wall seconds of successful attempts
	attemptDurN       int                       // count behind attemptDurSum

	// crash-recovery state (recovery.go)
	wlog         *wal.Log    // nil unless WAL configured or plan crashes the driver
	crashed      bool        // driver is down; completions buffer in orphaned
	crashAt      float64     // virtual time of the current/last crash
	orphaned     []orphanEnd // completions that landed while the driver was down
	redelivering bool        // recovery is draining the orphan buffer right now
	dupSuccess   map[int]int // per task: duplicate successes drained across crash windows

	// counters
	SpecCopies        int
	MemKills          int
	TotalOOMs         int
	TotalCrash        int
	LaunchCount       int
	ExecutorsLost     int
	ExecutorsRejoined int
	FetchFailures     int
	Resubmissions     int
	DriverCrashes     int
	DriverRecoveries  int
	// Preemption counters (preempt.go): notices heard, kills observed,
	// kills that landed on a fully drained node, drain re-replication
	// volume, and announced losses exempted from failure accounting.
	PreemptNotices         int
	PreemptKills           int
	DrainsCompleted        int
	DrainBlocksMoved       int
	DrainBytesMoved        int64
	DrainBlocksSkipped     int
	DrainFetchRedirects    int
	PreemptLossesUncharged int
	// SpecLiveAtCrash records, per crash, how many speculative copies were
	// in flight at the instant the driver died (test observability for the
	// crash-during-speculation race).
	SpecLiveAtCrash []int
}

// NewRuntime builds a runtime over the cluster for the given scheduler.
// Executors are created lazily in Run, sized by the scheduler.
func NewRuntime(eng *simx.Engine, clu *cluster.Cluster, sched Scheduler, cfg Config) *Runtime {
	return NewRuntimeOn(eng, clu, sched, cfg, nil)
}

// NewRuntimeOn builds a runtime that shares sub's executors, cache and
// monitor with sibling applications (multi-tenant mode). A nil sub is the
// single-application path: the runtime owns its substrate and NewRuntimeOn
// behaves exactly like NewRuntime.
func NewRuntimeOn(eng *simx.Engine, clu *cluster.Cluster, sched Scheduler, cfg Config, sub *Substrate) *Runtime {
	cfg = cfg.withDefaults()
	if cfg.DriverNode == "" && len(clu.Nodes) > 0 {
		cfg.DriverNode = clu.Nodes[0].Name()
	}
	cfg.Exec.DriverNode = cfg.DriverNode
	cfg.Exec.Seed = cfg.Seed
	cfg.Exec.Tracer = cfg.Tracer
	if cr, ok := sched.(CacheRelocator); ok {
		cfg.Exec.RelocateCacheOnRemoteRead = cr.RelocatesCache()
	}
	rt := &Runtime{
		Eng:          eng,
		Clu:          clu,
		Cfg:          cfg,
		Cache:        executor.NewCacheTracker(),
		Execs:        make(map[string]*executor.Executor),
		sub:          sub,
		sched:        sched,
		stages:       make(map[int]*task.Stage),
		stageOf:      make(map[int]*task.Stage),
		activeStages: make(map[int]*task.Stage),
		submitted:    make(map[int]bool),
		runningAtt:   make(map[int][]*executor.Run),
		speculatable: make(map[int]*task.Task),
		lastHB:       make(map[string]float64),
		lostExecs:    make(map[string]bool),
		lastInc:      make(map[string]int),
		failCount:    make(map[int]int),
		resubmits:    make(map[int]int),
		dupSuccess:   make(map[int]int),
		preempted:    make(map[string]bool),
		drainFlows:   make(map[string][]*netsim.Flow),
	}
	if sub != nil {
		rt.Cache = sub.Cache
		rt.Execs = sub.Execs
		rt.Mon = sub.Mon
	}
	if cfg.Blacklist.Enabled {
		rt.bl = newBlacklist(eng, cfg.Blacklist)
	}
	sched.Bind(rt)
	return rt
}

// SetLaunchGate installs the tenant layer's per-node launch admission
// check (dynamic-allocation leases); CanRunOn consults it so both
// schedulers see non-leased nodes as unusable. Must be set before Start.
func (rt *Runtime) SetLaunchGate(gate func(node string) bool) { rt.gate = gate }

// SetSlotCap installs the tenant layer's application-wide slot budget (the
// FAIR share). Unlike the per-node gate it is consulted only at launch
// time, not in CanRunOn: the budget fluctuates every scheduling round, and
// folding it into node usability would make delay-scheduling locality
// state thrash. Must be set before Start.
func (rt *Runtime) SetSlotCap(fn func() bool) { rt.capFn = fn }

// SetReschedule replaces local scheduling rounds with fn — the tenant
// manager's global FAIR round. Must be set before Start.
func (rt *Runtime) SetReschedule(fn func()) { rt.rescheduleFn = fn }

// PlacementBroker arbitrates task placements for a federated driver.
// AdmitPlacement is consulted by Launch for every (task, node) the
// scheduler wants; returning false refuses the launch (the broker
// typically starts a claim and lets a later scheduling round retry once
// the claim commits). PlacementStarted reports the launch that a granted
// claim actually produced, binding the claim to the attempt.
type PlacementBroker interface {
	AdmitPlacement(t *task.Task, node string) bool
	PlacementStarted(t *task.Task, node string)
}

// SetPlacementBroker installs the federation layer's placement arbiter.
// Must be set before Start.
func (rt *Runtime) SetPlacementBroker(b PlacementBroker) { rt.broker = b }

// SetSharedFaults points the runtime at a substrate-owned fault injector
// so driver recovery can tell a partitioned node from a dead one. The
// injector's installation and crash routing stay with the substrate owner.
func (rt *Runtime) SetSharedFaults(inj *faults.Injector) { rt.inj = inj }

// reschedule triggers a scheduling round: the bound scheduler's own in
// single-application mode, the tenant manager's global round otherwise.
func (rt *Runtime) reschedule() {
	if rt.rescheduleFn != nil {
		rt.rescheduleFn()
		return
	}
	rt.sched.Schedule()
}

// notifyExecutorSetChanged tells a capable scheduler the usable executor
// set changed, so stale delay-scheduling state can be re-derived.
func (rt *Runtime) notifyExecutorSetChanged() {
	if esa, ok := rt.sched.(ExecutorSetAware); ok {
		esa.ExecutorSetChanged()
	}
}

// NotifyExecutorSetChanged is the exported hook the tenant layer calls
// when dynamic allocation grants or revokes this application's slots.
func (rt *Runtime) NotifyExecutorSetChanged() { rt.notifyExecutorSetChanged() }

// DeliverHeartbeat feeds one node report into this application's driver:
// loss detection bookkeeping plus the scheduler's resource view. In
// single-application mode the monitor calls it directly; in tenant mode
// the manager fans each heartbeat out to every active application. A
// crashed or finished driver ignores reports (its executors buffer their
// completions; monitoring state is rebuilt at recovery).
func (rt *Runtime) DeliverHeartbeat(node string, nm *monitor.NodeMetrics) {
	if rt.appDone || rt.crashed {
		return
	}
	rt.hbDelivered++
	rt.noteHeartbeat(node)
	rt.sched.Heartbeat(node, nm)
}

// NewDecision opens a placement-decision audit record scoped to this
// runtime's application and pool labels (empty labels leave the decision
// unscoped, as before). Schedulers open their per-offer audits through
// this instead of the collector directly so multi-tenant traces can tell
// whose task won the slot.
func (rt *Runtime) NewDecision(scheduler, node string) *tracing.Decision {
	d := rt.Cfg.Tracer.NewDecision(scheduler, node)
	if rt.Cfg.AppLabel != "" || rt.Cfg.PoolLabel != "" {
		d.SetScope(rt.Cfg.AppLabel, rt.Cfg.PoolLabel)
	}
	return d
}

// Done reports whether the application has completed or aborted.
func (rt *Runtime) Done() bool { return rt.appDone }

// Crashed reports whether the driver is currently down (crash window).
func (rt *Runtime) Crashed() bool { return rt.crashed }

// App returns the application this runtime is driving (nil before Start).
func (rt *Runtime) App() *task.Application { return rt.app }

// Aborted returns the structured abort error, or nil.
func (rt *Runtime) Aborted() *AbortError { return rt.aborted }

// Scheduler returns the bound scheduler.
func (rt *Runtime) Scheduler() Scheduler { return rt.sched }

// Injector returns the fault injector, or nil when no faults were
// configured. Experiments read its counters for reporting.
func (rt *Runtime) Injector() *faults.Injector { return rt.inj }

// WAL returns the run's write-ahead log (nil when none is kept).
func (rt *Runtime) WAL() *wal.Log { return rt.wlog }

// BlacklistUntil returns node's absolute blacklist-expiry virtual time (0
// when the node is not blacklisted or blacklisting is off) — a test hook
// for verifying that recovery restores deadlines rather than re-arming
// them.
func (rt *Runtime) BlacklistUntil(node string) float64 {
	if rt.bl == nil {
		return 0
	}
	return rt.bl.until[node]
}

// Result summarizes one application run.
type Result struct {
	App        *task.Application
	Scheduler  string
	Duration   float64 // seconds of simulated time
	JobEnds    []float64
	OOMs       int
	Crashes    int
	Evictions  int
	SpecCopies int
	MemKills   int
	Launches   int
	Heartbeats int
	Trace      *metrics.Trace

	// Fault-tolerance outcomes (all zero on fault-free runs).
	ExecutorsLost     int
	ExecutorsRejoined int
	FetchFailures     int
	Resubmissions     int
	NodesBlacklisted  int
	FailStops         int
	TaskFlakes        int
	DriverCrashes     int
	DriverRecoveries  int

	// Spot-preemption outcomes (all zero without SpotPreempt events).
	PreemptNotices         int
	PreemptKills           int
	DrainsCompleted        int
	DrainBlocksMoved       int
	DrainBytesMoved        int64
	DrainBlocksSkipped     int
	DrainFetchRedirects    int
	PreemptLossesUncharged int
	// SpecLiveAtCrash records, per driver crash, how many speculative
	// copies were in flight at the instant the driver died.
	SpecLiveAtCrash []int
	// Aborted is non-nil when the run ended in a job abort instead of
	// completing; Duration then measures time to the abort.
	Aborted *AbortError
}

// Run executes the application to completion and returns its Result. It
// panics if called twice on the same Runtime.
func (rt *Runtime) Run(app *task.Application) *Result {
	rt.Start(app)
	rt.Eng.RunUntil(rt.Cfg.MaxSimTime)
	if !rt.appDone && rt.Eng.Pending() > 0 {
		done := 0
		for _, t := range app.AllTasks() {
			if t.State == task.Finished {
				done++
			}
		}
		panic(fmt.Sprintf("spark: app %q exceeded MaxSimTime=%v (job %d/%d, %d/%d tasks done) — scheduler livelock?",
			app.Name, rt.Cfg.MaxSimTime, rt.jobIdx+1, len(app.Jobs), done, app.NumTasks()))
	}
	if !rt.appDone {
		panic(fmt.Sprintf("spark: app %q deadlocked at t=%.2f (job %d of %d)",
			app.Name, rt.Eng.Now(), rt.jobIdx+1, len(app.Jobs)))
	}
	return rt.BuildResult()
}

// Start boots the application's driver without driving the engine: it
// creates the substrate (single-application mode only), arms the periodic
// machinery, and submits job 0. Single-application callers use Run; a
// tenant manager calls Start per admitted application and runs the shared
// engine itself, collecting each Result via BuildResult once OnAppDone
// fires. It panics if called twice on the same Runtime.
func (rt *Runtime) Start(app *task.Application) {
	if rt.app != nil {
		panic("spark: Runtime.Start called twice")
	}
	if len(app.Jobs) == 0 {
		panic("spark: application with no jobs")
	}
	rt.app = app
	rt.appStart = rt.Eng.Now()
	rt.Cfg.Tracer.Bind(rt.Eng)
	for _, n := range rt.Clu.Nodes {
		rt.Cfg.Tracer.RegisterNode(n.Name(), n.Spec.Cores)
	}

	if rt.sub == nil {
		rt.ownsSubstrate = true

		// Executors, sized by the scheduler's policy.
		peers := rt.Execs
		for i, n := range rt.Clu.Nodes {
			cfg := rt.Cfg.Exec
			cfg.HeapBytes = rt.sched.HeapFor(n)
			cfg.Seed = rt.Cfg.Seed + uint64(i)*7919
			ex := executor.New(rt.Eng, rt.Clu, n, rt.Cache, peers, cfg)
			ex.OnRestart = func() {
				rt.notifyExecutorSetChanged()
				rt.reschedule()
			}
		}

		// Heartbeats drive scheduling rounds (and RUPAM's RM).
		rt.Mon = monitor.New(rt.Eng, rt.Clu, rt.Cfg.HeartbeatInterval)
		for name, ex := range rt.Execs {
			rt.Mon.RegisterProbe(name, ex)
		}
		rt.Mon.OnHeartbeat = func(node string, nm *monitor.NodeMetrics) {
			rt.DeliverHeartbeat(node, nm)
			rt.reschedule()
		}
		rt.Mon.Start()
	}

	// Fault injection (opt-in) and executor-loss detection. The watchdog
	// is always armed: with every node heartbeating on time it observes
	// nothing, so fault-free runs are unchanged. In shared-substrate mode
	// the injector (if any) belongs to the manager, which installs it once
	// over the shared executors and routes driver crashes itself.
	for _, n := range rt.Clu.Nodes {
		rt.lastHB[n.Name()] = rt.Eng.Now()
		// Seed incarnation tracking with the executors' current state: an
		// application attaching to a shared substrate after a node has
		// already restarted (spot churn before this app arrived) must not
		// mistake the node's first heartbeat for a fresh restart and kill
		// its own just-launched attempts there.
		if ex := rt.Execs[n.Name()]; ex != nil {
			rt.lastInc[n.Name()] = ex.Incarnation
		}
	}
	rt.wlog = rt.Cfg.WAL
	if rt.wlog != nil {
		// A configured log may predate this engine (the CLI opens the file
		// before the run is built); stamp its records with our clock.
		rt.wlog.SetClock(rt.Eng.Now)
	}
	if rt.ownsSubstrate && !rt.Cfg.Faults.Empty() {
		rt.inj = faults.NewInjector(rt.Eng, rt.Clu, rt.Execs)
		rt.Mon.Drop = rt.inj.Suppressed
		rt.inj.Collector = rt.Cfg.Tracer
		rt.inj.OnDriverCrash = rt.driverCrash
		rt.inj.OnSpotNotice = rt.PreemptNotice
		rt.inj.OnSpotKill = rt.SpotKill
		if rt.wlog == nil && rt.Cfg.Faults.HasKind(faults.DriverCrash) {
			// A crash without a WAL would be unrecoverable; keep an
			// in-memory log so the plan's DriverCrash events can replay.
			rt.wlog = wal.New(nil, wal.Options{Clock: rt.Eng.Now})
		}
		rt.inj.Install(rt.Cfg.Faults)
	}
	rt.armWatchdog()

	// Utilization tracing.
	if rt.ownsSubstrate && rt.Cfg.SampleInterval > 0 {
		rt.Rec = metrics.NewRecorder(rt.Eng, rt.Clu, rt.Execs, rt.Cfg.SampleInterval)
		rt.Rec.Start()
	}

	// Speculation scan.
	rt.scheduleSpeculationScan()

	// Go.
	rt.submitJob(0)
}

// BuildResult assembles the run's Result. Run calls it after the engine
// drains; tenant managers call it per application after OnAppDone.
func (rt *Runtime) BuildResult() *Result {
	app := rt.app
	heartbeats := rt.hbDelivered
	if rt.ownsSubstrate {
		heartbeats = rt.Mon.Heartbeats
	}
	res := &Result{
		App:        app,
		Scheduler:  rt.sched.Name(),
		Duration:   rt.appEnd - rt.appStart,
		JobEnds:    rt.jobEnds,
		Evictions:  rt.Cache.Evictions,
		SpecCopies: rt.SpecCopies,
		MemKills:   rt.MemKills,
		Launches:   rt.LaunchCount,
		Heartbeats: heartbeats,

		ExecutorsLost:     rt.ExecutorsLost,
		ExecutorsRejoined: rt.ExecutorsRejoined,
		FetchFailures:     rt.FetchFailures,
		Resubmissions:     rt.Resubmissions,
		DriverCrashes:     rt.DriverCrashes,
		DriverRecoveries:  rt.DriverRecoveries,
		SpecLiveAtCrash:   rt.SpecLiveAtCrash,
		Aborted:           rt.aborted,

		PreemptNotices:         rt.PreemptNotices,
		PreemptKills:           rt.PreemptKills,
		DrainsCompleted:        rt.DrainsCompleted,
		DrainBlocksMoved:       rt.DrainBlocksMoved,
		DrainBytesMoved:        rt.DrainBytesMoved,
		DrainBlocksSkipped:     rt.DrainBlocksSkipped,
		DrainFetchRedirects:    rt.DrainFetchRedirects,
		PreemptLossesUncharged: rt.PreemptLossesUncharged,
	}
	if rt.bl != nil {
		res.NodesBlacklisted = rt.bl.NodesBlacklisted
	}
	for _, ex := range rt.Execs {
		res.OOMs += ex.OOMs
		res.Crashes += ex.Crashes
		res.FailStops += ex.FailStops
		res.TaskFlakes += ex.Flakes
	}
	if rt.Rec != nil {
		res.Trace = rt.Rec.Trace()
	}
	return res
}
