package spark

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/monitor"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// buildTestSubstrate wires executors on every node of w plus a heartbeat
// monitor that drives the runtime — the shape the tenant manager uses, so
// launch-gate behavior can be exercised at runtime level.
func buildTestSubstrate(w *world, rtRef **Runtime) *Substrate {
	cache := executor.NewCacheTracker()
	execs := make(map[string]*executor.Executor)
	for i, n := range w.clu.Nodes {
		executor.New(w.eng, w.clu, n, cache, execs, executor.Config{
			HeapBytes: 12 * cluster.GB,
			Seed:      100 + uint64(i)*7919,
		})
	}
	mon := monitor.New(w.eng, w.clu, 1)
	for name, ex := range execs {
		mon.RegisterProbe(name, ex)
	}
	mon.OnHeartbeat = func(node string, nm *monitor.NodeMetrics) {
		if rt := *rtRef; rt != nil {
			rt.DeliverHeartbeat(node, nm)
			rt.Scheduler().Schedule()
		}
	}
	return &Substrate{Execs: execs, Cache: cache, Mon: mon}
}

// TestExecutorSetChangeRelaxesStaleLevel is the state-transition half of
// the stale-level regression: a pending stage whose preferred nodes all
// leave the usable set must drop to a reachable locality level at once,
// and tighten back (with a fresh wait) when they return.
func TestExecutorSetChangeRelaxesStaleLevel(t *testing.T) {
	w := newWorld(t)
	gate := map[string]bool{"fast": true, "slow": true, "gpu": true}
	sched := NewDefaultScheduler()
	var rt *Runtime
	sub := buildTestSubstrate(w, &rt)
	rt = NewRuntimeOn(w.eng, w.clu, sched, Config{Seed: 1, LocalityWait: 60}, sub)
	rt.SetLaunchGate(func(n string) bool { return gate[n] })

	st := &task.Stage{ID: 5, Name: "craft", Tasks: []*task.Task{
		{ID: 50, StageID: 5, Index: 0, State: task.Pending, PrefNodes: []string{"fast"}},
	}}
	sched.StageSubmitted(st)
	if sched.allowed[5] != hdfs.NodeLocal {
		t.Fatalf("fresh stage allows %v, want NodeLocal", sched.allowed[5])
	}

	gate["fast"] = false
	sched.ExecutorSetChanged()
	if sched.allowed[5] != hdfs.Any {
		t.Fatalf("preferred node left the set but stage still allows %v", sched.allowed[5])
	}

	gate["fast"] = true
	sched.ExecutorSetChanged()
	if sched.allowed[5] != hdfs.NodeLocal {
		t.Fatalf("preferred node returned but stage allows %v, want NodeLocal", sched.allowed[5])
	}
}

// TestExecutorSetChangeUnstallsLocalityWait is the end-to-end half: all
// input blocks live on a node the launch gate excludes (a revoked
// dynamic-allocation lease). Without the executor-set notification the
// stage serves out the full delay-scheduling ladder (two LocalityWait
// periods) before anything launches; with it, tasks flow immediately.
func TestExecutorSetChangeUnstallsLocalityWait(t *testing.T) {
	run := func(notify bool) float64 {
		w := newWorld(t)
		store := hdfs.NewStore([]string{"fast"}, 1, 1)
		ctx := rdd.NewContext("loc-app", store, 1)
		ctx.Read(store.CreateEven("in", 64*1e6, 4)).
			Map("work", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1}).
			Count("job")
		app := ctx.App()

		var rt *Runtime
		sub := buildTestSubstrate(w, &rt)
		rt = NewRuntimeOn(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1, LocalityWait: 60}, sub)
		rt.SetLaunchGate(func(n string) bool { return n != "fast" })
		sub.Mon.Start()
		rt.Start(app)
		if notify {
			// The tenant layer fires this when a lease set changes.
			w.eng.Schedule(1, rt.NotifyExecutorSetChanged)
		}
		w.eng.RunUntil(3600)
		if !rt.Done() {
			t.Fatalf("app did not finish (notify=%v)", notify)
		}
		return rt.BuildResult().Duration
	}

	stalled := run(false)
	unstalled := run(true)
	if stalled <= 120 {
		t.Fatalf("stall scenario did not engage: finished in %.1fs, want > 2 locality waits", stalled)
	}
	if unstalled >= 60 {
		t.Fatalf("executor-set change did not re-arm the locality wait: %.1fs", unstalled)
	}
}
