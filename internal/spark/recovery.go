package spark

import (
	"bytes"
	"fmt"
	"sort"

	"rupam/internal/executor"
	"rupam/internal/simx"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// This file is the driver's crash-recovery path. A DriverCrash fault kills
// the driver process in place: every piece of driver-side state — the
// stage registry, the attempt table, the map-output locations, failure
// counts, the blacklist, scheduler queues — is wiped and must be
// reconstructed from the write-ahead log. The cluster itself keeps
// running: executors finish (and buffer) their work, worker faults keep
// firing, the virtual clock keeps advancing. After the restart delay the
// driver replays the log, reconciles with the surviving executors
// (re-adopting in-flight attempts whose launches it logged, declaring
// unreachable or restarted executors lost), redelivers the buffered
// completions through the normal completion path, and resumes.

// RecoveryAware is an optional Scheduler capability: schedulers that keep
// internal queues or learned state (RUPAM's CharDB, the default
// scheduler's locality queues) implement it to rebuild themselves from
// the replayed write-ahead-log state after a driver crash. Schedulers
// without it are rebuilt implicitly through the StageSubmitted/Resubmit
// calls recovery replays.
type RecoveryAware interface {
	DriverRecovery(s *wal.State)
}

// orphanEnd buffers one completion that arrived while the driver was
// down; recovery redelivers them in arrival order.
type orphanEnd struct {
	r   *executor.Run
	out executor.Outcome
}

// driverCrash models the driver process dying: monitoring, the watchdog
// and the speculation scan stop, launches are refused, and completions
// buffer instead of being processed. The WAL (the durable artifact that
// survives the crash) is left exactly as written. Recovery is scheduled
// after the restart delay on the same virtual clock.
func (rt *Runtime) driverCrash(restartAfter float64) {
	if rt.appDone || rt.crashed {
		return
	}
	if rt.wlog == nil {
		// No WAL, no recovery — refuse the crash rather than wedge the
		// run. Run auto-creates a log whenever the plan contains a
		// DriverCrash, so this only guards hand-wired injectors.
		return
	}
	rt.crashed = true
	rt.crashAt = rt.Eng.Now()
	rt.DriverCrashes++
	spec := 0
	for _, rs := range rt.runningAtt {
		for _, r := range rs {
			if r.Speculative() && !r.Done() {
				spec++
			}
		}
	}
	rt.SpecLiveAtCrash = append(rt.SpecLiveAtCrash, spec)
	rt.Cfg.Tracer.DriverCrashed(restartAfter)
	rt.wlog.Append(wal.Record{Kind: wal.KindDriverCrashed})
	if rt.ownsSubstrate {
		// A shared monitor belongs to the tenant manager and keeps beating
		// for the sibling applications; this driver simply stops listening
		// (DeliverHeartbeat refuses reports while crashed).
		rt.Mon.Stop()
	}
	rt.specTimer.Cancel()
	rt.specTimer = simx.Timer{}
	rt.wdTimer.Cancel()
	rt.wdTimer = simx.Timer{}
	rt.Eng.Schedule(restartAfter, rt.recoverDriver)
}

// CrashDriver injects a driver crash with the given restart delay — the
// tenant manager's entry point for routing a substrate-level DriverCrash
// fault to one application's driver. A driver without a WAL refuses the
// crash (recovery would be impossible), exactly like driverCrash.
func (rt *Runtime) CrashDriver(restartAfter float64) { rt.driverCrash(restartAfter) }

// recoverDriver is the restarted driver's boot sequence: replay the WAL,
// rebuild driver and scheduler state, reconcile with the surviving
// executors, redeliver buffered completions, re-arm the periodic
// machinery, and resume scheduling.
func (rt *Runtime) recoverDriver() {
	if rt.appDone || !rt.crashed {
		return
	}
	// 1. Replay the log into a folded state. The replay is deterministic:
	// the same bytes always fold to the same state.
	s, nrec, err := wal.Replay(bytes.NewReader(rt.wlog.Bytes()))
	if err != nil {
		panic(fmt.Sprintf("spark: WAL replay failed at recovery: %v", err))
	}

	// 2. Wipe and rebuild the driver's in-memory state from the fold.
	rt.restoreFromState(s)

	// 3. Fence the log: everything after this record describes the
	// recovered incarnation. Replaying a log with a Recovered record
	// clears the folded in-flight set, so the adoption records below
	// cannot double-add attempts on a later replay (or a later crash).
	rt.wlog.Append(wal.Record{Kind: wal.KindRecovered})

	// 4. Let the scheduler rebuild its internal state from the fold.
	if ra, ok := rt.sched.(RecoveryAware); ok {
		ra.DriverRecovery(s)
	}

	// 5. Reconcile, part one — adoption: on every reachable executor
	// still running the incarnation the log knew, re-adopt the in-flight
	// attempts whose launches were logged. Adopted attempts keep their
	// original launch accounting (no LaunchCount increment).
	adopted := rt.adoptSurvivors(s)

	// 6. Re-hand every submitted-but-incomplete stage to the scheduler so
	// its queues refill; pending tasks get fresh cache locations first.
	// Schedulers skip non-pending tasks lazily, so finished and adopted
	// tasks riding along are harmless.
	for _, st := range rt.sortedActiveStages() {
		for _, t := range st.Tasks {
			if t.State == task.Pending {
				rt.resolveCacheLocation(t)
			}
		}
		rt.sched.StageSubmitted(st)
	}

	// 7. Redeliver the completions that landed while the driver was down,
	// in arrival order, through the normal completion path — exactly-once
	// counting falls out of the same State==Finished guards that protect
	// speculative races. A success's map-output registration was wiped by
	// the rebuild, so it is restored alongside the redelivery.
	orphans := rt.orphaned
	rt.orphaned = nil
	delivered := 0
	rt.redelivering = true
	for _, o := range orphans {
		if rt.appDone {
			break
		}
		if o.out == executor.Success {
			ot := o.r.Task()
			if d := ot.Demand.ShuffleWriteBytes; d > 0 && o.r.Stage().OutputNodeOf(ot.Index) == "" {
				o.r.Stage().RecordShuffleOutput(ot.Index, o.r.Metrics().Executor, d)
			}
		}
		rt.onTaskEnd(o.r, o.out)
		delivered++
	}
	rt.redelivering = false

	// 8. Reconcile, part two — losses: executors that are unreachable, or
	// that restarted under a new incarnation during the outage, go through
	// the normal executor-lost path (map-output rollback, resubmission).
	// Zombie attempts on them are fenced first so a node the driver gave
	// up on cannot later report a completion.
	rt.reconcileLost(s)

	// 9. Re-arm the periodic machinery on the live clock. Heartbeat
	// staleness restarts from now: the outage itself is not evidence
	// against any node.
	for _, n := range rt.Clu.Nodes {
		rt.lastHB[n.Name()] = rt.Eng.Now()
	}
	if rt.ownsSubstrate {
		rt.Mon.Resume()
	}
	rt.armWatchdog()
	rt.scheduleSpeculationScan()

	// 10. Resume.
	rt.DriverRecoveries++
	rt.Cfg.Tracer.RecoverySpan(rt.crashAt, rt.Eng.Now())
	rt.Cfg.Tracer.DriverRecovered(adopted, delivered, nrec)
	if rt.OnRecovered != nil {
		// Federation hook: survivors are adopted and orphans redelivered,
		// so the broker can tell which of its WAL-folded claims still back
		// a live attempt and chase the rest.
		rt.OnRecovered()
	}
	if !rt.appDone {
		rt.reschedule()
	}
}

// restoreFromState rebuilds every driver-side table from a replayed WAL
// fold, discarding whatever the crashed incarnation had in memory.
func (rt *Runtime) restoreFromState(s *wal.State) {
	rt.stages = make(map[int]*task.Stage)
	rt.stageOf = make(map[int]*task.Stage)
	rt.activeStages = make(map[int]*task.Stage)
	rt.submitted = make(map[int]bool)
	rt.runningAtt = make(map[int][]*executor.Run)
	rt.speculatable = make(map[int]*task.Task)

	rt.jobIdx = s.JobIdx
	if rt.jobIdx < 0 {
		rt.jobIdx = 0 // crashed before the first job record could land
	}
	if rt.jobIdx >= len(rt.app.Jobs) {
		rt.jobIdx = len(rt.app.Jobs) - 1
	}
	for j := 0; j <= rt.jobIdx; j++ {
		for _, st := range rt.app.Jobs[j].Stages {
			rt.stages[st.ID] = st
			for _, t := range st.Tasks {
				rt.stageOf[t.ID] = st
			}
		}
	}

	// Task states and per-stage completion/output registries. Only what
	// the log proves is kept: a task is finished iff its success record
	// survived the fold (rollbacks delete it), an output exists iff its
	// registration survived.
	for _, st := range rt.sortedStages() {
		st.ResetShuffleOutputs()
		done := 0
		for _, t := range st.Tasks {
			if s.Finished[t.ID] {
				t.State = task.Finished
				done++
			} else {
				t.State = task.Pending
			}
		}
		st.SetCompleted(done)
		outs := s.Outputs[st.ID]
		idxs := make([]int, 0, len(outs))
		for idx := range outs {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			if o := outs[idx]; o.Bytes > 0 {
				st.RecordShuffleOutput(idx, o.Node, o.Bytes)
			}
		}
	}
	for id := range s.Submitted {
		if st := rt.stages[id]; st != nil {
			rt.submitted[id] = true
			if !st.IsComplete() {
				rt.activeStages[id] = st
			}
		}
	}

	// Fault-tolerance tables.
	rt.lostExecs = make(map[string]bool)
	for n, lost := range s.LostExecs {
		if lost {
			rt.lostExecs[n] = true
		}
	}
	rt.lastInc = make(map[string]int)
	for n, inc := range s.LastInc {
		rt.lastInc[n] = inc
	}
	rt.failCount = make(map[int]int)
	for id, c := range s.FailCount {
		rt.failCount[id] = c
	}
	rt.resubmits = make(map[int]int)
	for id, c := range s.Resubmits {
		rt.resubmits[id] = c
	}
	if rt.bl != nil {
		rt.bl.restore(s.TaskNodeFailures, s.NodeFailures, s.Blacklist, s.Counters.NodesBlacklisted)
	}

	// Counters come from the log, not the dead process's memory.
	rt.LaunchCount = s.Counters.Launches
	rt.SpecCopies = s.Counters.SpecCopies
	rt.FetchFailures = s.Counters.FetchFailures
	rt.Resubmissions = s.Counters.Resubmissions
	rt.ExecutorsLost = s.Counters.ExecutorsLost
	rt.ExecutorsRejoined = s.Counters.ExecutorsRejoined

	rt.crashed = false
}

// adoptSurvivors walks the cluster in deterministic node order and
// re-adopts every in-flight attempt on executors that are reachable and
// still running the incarnation the log last saw. Each adoption is logged
// (KindTaskAdopted folds into the in-flight set without touching launch
// counters — the attempt's original launch record already counted it).
func (rt *Runtime) adoptSurvivors(s *wal.State) int {
	adopted := 0
	for _, n := range rt.Clu.Nodes {
		name := n.Name()
		ex := rt.Execs[name]
		if ex == nil || !rt.execReachable(name) || ex.Incarnation != s.LastInc[name] {
			continue
		}
		if rt.lostExecs[name] {
			// The log already declared this executor lost; its attempts
			// were killed pre-crash and anything still here is a zombie
			// handled by reconcileLost.
			continue
		}
		for _, r := range ex.Running() {
			t := r.Task()
			if _, mine := rt.stageOf[t.ID]; !mine {
				continue // a sibling application's attempt on the shared executor
			}
			if r.Done() {
				continue
			}
			if t.State == task.Finished {
				// A losing speculative copy whose winner succeeded before the
				// crash: the dead driver never got to cancel it. Kill it now,
				// exactly as the live driver would have at the winner's
				// completion, so it cannot run on and report a second success.
				r.Kill(false)
				rt.wlog.Append(wal.Record{Kind: wal.KindAttemptEnded,
					Task: t.ID, Node: name, Outcome: "killed"})
				continue
			}
			t.State = task.Running
			rt.runningAtt[t.ID] = append(rt.runningAtt[t.ID], r)
			rt.wlog.Append(wal.Record{Kind: wal.KindTaskAdopted,
				Task: t.ID, Stage: r.Stage().ID, Index: t.Index,
				Node: name, Spec: r.Speculative()})
			adopted++
		}
	}
	return adopted
}

// reconcileLost declares executors the recovered driver cannot trust lost:
// unreachable nodes (down, fail-stopped, or heartbeat-suppressed) and
// nodes whose executor incarnation changed during the outage. Their
// zombie attempts are fenced (killed silently) so they can never report,
// then the standard executor-lost path rolls back their map outputs.
func (rt *Runtime) reconcileLost(s *wal.State) {
	for _, n := range rt.Clu.Nodes {
		name := n.Name()
		ex := rt.Execs[name]
		if ex == nil {
			continue
		}
		if !rt.execReachable(name) {
			for _, r := range ex.Running() {
				if _, mine := rt.stageOf[r.Task().ID]; !mine {
					continue // a sibling application's attempt; not ours to fence
				}
				r.Kill(false)
			}
			if !rt.lostExecs[name] {
				// A node the provider reclaimed during the outage is an
				// announced loss even though the driver never heard the
				// notice: the preempted mark (set at kill, surviving the
				// in-memory restore) keeps the loss uncharged and lets
				// audits tell a drained instance from a crashed one.
				reason := "unreachable at driver recovery"
				if rt.preempted[name] {
					reason = "spot-preempted (reconciled)"
				}
				rt.executorLost(name, reason)
			}
			continue
		}
		if ex.Incarnation != s.LastInc[name] {
			// Restarted during the outage: the old incarnation's attempts
			// died with it. Record the new incarnation and reap the old
			// executor's state, mirroring noteHeartbeat's restart path.
			rt.lastInc[name] = ex.Incarnation
			rt.wlog.Append(wal.Record{Kind: wal.KindExecIncarnation, Node: name, Inc: ex.Incarnation})
			if !rt.lostExecs[name] {
				rt.executorLost(name, "executor restarted")
			}
		}
	}
}

// execReachable reports whether the recovered driver can talk to node's
// executor right now: the process is up and its heartbeats are not
// suppressed by a partition window.
func (rt *Runtime) execReachable(node string) bool {
	ex := rt.Execs[node]
	if ex == nil || ex.Down() || ex.FailStopped() {
		return false
	}
	if rt.inj != nil && rt.inj.Suppressed(node) {
		return false
	}
	return true
}

// sortedStages returns the restored stage registry in ID order.
func (rt *Runtime) sortedStages() []*task.Stage {
	ss := make([]*task.Stage, 0, len(rt.stages))
	for _, st := range rt.stages {
		ss = append(ss, st)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].ID < ss[j].ID })
	return ss
}
