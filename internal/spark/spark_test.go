package spark

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/metrics"
	"rupam/internal/rdd"
	"rupam/internal/simx"
	"rupam/internal/task"
)

// world bundles a small 3-node heterogeneous cluster and block store.
type world struct {
	eng   *simx.Engine
	clu   *cluster.Cluster
	store *hdfs.Store
}

func newWorld(t *testing.T) *world {
	t.Helper()
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	clu.AddNode(cluster.NodeSpec{
		Name: "fast", Class: "fast", Cores: 4, FreqGHz: 3,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(1),
		SSD: true, DiskReadBW: cluster.MBps(400), DiskWriteBW: cluster.MBps(300),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "slow", Class: "slow", Cores: 8, FreqGHz: 1,
		MemBytes: 32 * cluster.GB, NetBandwidth: cluster.GbE(10),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "gpu", Class: "gpu", Cores: 4, FreqGHz: 1.5,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(1),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
		GPUs: 1, GPURateGHz: 30,
	})
	return &world{eng: eng, clu: clu, store: hdfs.NewStore(clu.NodeNames(), 2, 1)}
}

// simpleApp builds n jobs of a map+shuffle pipeline over cached points.
func simpleApp(w *world, jobs int) *task.Application {
	ctx := rdd.NewContext("test-app", w.store, 1)
	pts := ctx.Read(w.store.CreateEven("in", 640*1e6, 8)).
		Map("parse", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1.2}).Cache()
	for i := 0; i < jobs; i++ {
		pts.Map("work", rdd.Profile{CPUPerByte: 20e-9, MemPerByte: 1, OutRatio: 1e-4}).
			Shuffle("agg", rdd.Profile{}, 4).
			Count("job")
	}
	return ctx.App()
}

func TestRuntimeRunsAppToCompletion(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1})
	res := rt.Run(simpleApp(w, 2))
	if res.Duration <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if len(res.JobEnds) != 2 {
		t.Fatalf("job ends = %d", len(res.JobEnds))
	}
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s not finished", tk)
		}
		if tk.SuccessMetrics() == nil {
			t.Fatalf("%s has no successful attempt", tk)
		}
	}
	if res.Scheduler != "spark" {
		t.Fatalf("scheduler name = %q", res.Scheduler)
	}
}

func TestRuntimeDeterministic(t *testing.T) {
	run := func() float64 {
		w := newWorld(t)
		rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 7})
		return rt.Run(simpleApp(w, 3)).Duration
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different durations: %v vs %v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) float64 {
		w := newWorld(t)
		rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: seed})
		app := simpleApp(w, 2)
		return rt.Run(app).Duration
	}
	// Different failure seeds usually differ once failures occur; here
	// with no failures they may match — so only assert both complete.
	if run(1) <= 0 || run(2) <= 0 {
		t.Fatal("runs did not complete")
	}
}

func TestDefaultSchedulerRespectsCoreSlots(t *testing.T) {
	w := newWorld(t)
	sched := NewDefaultScheduler()
	rt := NewRuntime(w.eng, w.clu, sched, Config{Seed: 1})

	// Sample concurrency while running (bounded so the event queue can
	// drain once the app completes).
	maxByNode := map[string]int{}
	samples := 0
	var sampler func()
	sampler = func() {
		samples++
		for name, ex := range rt.Execs {
			if ex.RunningTasks() > maxByNode[name] {
				maxByNode[name] = ex.RunningTasks()
			}
		}
		if samples < 10000 {
			w.eng.Schedule(0.2, sampler)
		}
	}
	w.eng.Schedule(0.1, sampler)

	// Build an app with far more tasks than slots.
	ctx := rdd.NewContext("wide", w.store, 2)
	ctx.Read(w.store.CreateEven("wide-in", 3200*1e6, 64)).
		Map("m", rdd.Profile{CPUPerByte: 10e-9, MemPerByte: 1}).
		Count("j")
	rt.Run(ctx.App())

	for name, n := range maxByNode {
		cores := w.clu.Node(name).Spec.Cores
		if n > cores {
			t.Errorf("node %s ran %d tasks concurrently with %d cores", name, n, cores)
		}
	}
}

func TestDefaultSchedulerPrefersLocality(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1})
	ctx := rdd.NewContext("loc", w.store, 3)
	ctx.Read(w.store.CreateEven("loc-in", 160*1e6, 4)).
		Map("m", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1}).
		Count("j")
	res := rt.Run(ctx.App())
	lc := metrics.AppLocality(res.App)
	if lc.Node == 0 {
		t.Fatalf("no NODE_LOCAL placements at all: %+v", lc)
	}
	if lc.Rack != 0 {
		t.Fatalf("RACK_LOCAL on a single-rack cluster: %+v", lc)
	}
}

func TestOOMRetryEventuallyCompletes(t *testing.T) {
	w := newWorld(t)
	cfg := Config{Seed: 3, StaticHeapBytes: 2 * cluster.GB}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), cfg)
	// Tasks of 1.5 GB peak: two co-located on a 2 GB heap must OOM and
	// retry; all must eventually finish.
	ctx := rdd.NewContext("oomy", w.store, 4)
	ctx.Read(w.store.CreateEven("oom-in", 80*1e6, 8)).
		Map("m", rdd.Profile{CPUPerByte: 100e-9, MemBase: 1500 * cluster.MB}).
		Count("j")
	res := rt.Run(ctx.App())
	if res.OOMs == 0 {
		t.Fatal("expected OOM failures under the tiny heap")
	}
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s not finished despite retries", tk)
		}
	}
}

func TestSpeculationLaunchesCopies(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1})
	// Skewed tasks: one task is ~8× the rest, triggering speculation once
	// 75% finish.
	ctx := rdd.NewContext("skewy", w.store, 4)
	sizes := make([]int64, 16)
	for i := range sizes {
		sizes[i] = 20 * 1e6
	}
	sizes[0] = 400 * 1e6
	ds := w.store.Create("skew-in", sizes)
	ctx.Read(ds).Map("m", rdd.Profile{CPUPerByte: 100e-9, MemPerByte: 1}).Count("j")
	res := rt.Run(ctx.App())
	if res.SpecCopies == 0 {
		t.Fatal("no speculative copies for an extreme straggler")
	}
}

func TestHeartbeatsDriveScheduling(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1})
	res := rt.Run(simpleApp(w, 1))
	if res.Heartbeats == 0 {
		t.Fatal("no heartbeats recorded")
	}
}

func TestTraceRecording(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1, SampleInterval: 0.5})
	res := rt.Run(simpleApp(w, 1))
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no utilization trace recorded")
	}
	if res.Trace.Interval != 0.5 {
		t.Fatalf("trace interval = %v", res.Trace.Interval)
	}
}

func TestTraceDisabled(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1, SampleInterval: -1})
	res := rt.Run(simpleApp(w, 1))
	if res.Trace != nil {
		t.Fatal("trace recorded despite being disabled")
	}
}

func TestRunTwicePanics(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1})
	rt.Run(simpleApp(w, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	rt.Run(simpleApp(w, 1))
}

func TestBestPossibleLevel(t *testing.T) {
	st := &task.Stage{Tasks: []*task.Task{{PrefNodes: []string{"x"}}}}
	if bestPossibleLevel(st) != hdfsNodeLocal() {
		t.Fatal("stage with prefs should start at NODE_LOCAL")
	}
	st2 := &task.Stage{Tasks: []*task.Task{{CachedOn: "x"}}}
	if bestPossibleLevel(st2) != hdfsProcessLocal() {
		t.Fatal("cached stage should start at PROCESS_LOCAL")
	}
	st3 := &task.Stage{Tasks: []*task.Task{{}}}
	if bestPossibleLevel(st3) != hdfsAny() {
		t.Fatal("bare stage should start at ANY")
	}
}

func TestCachedIterationsGetProcessLocal(t *testing.T) {
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 1})
	res := rt.Run(simpleApp(w, 3))
	lc := metrics.AppLocality(res.App)
	if lc.Process == 0 {
		t.Fatalf("no PROCESS_LOCAL tasks across cached iterations: %+v", lc)
	}
}

// tiny aliases keeping the locality constants import-free in this file.
func hdfsProcessLocal() hdfs.Locality { return hdfs.ProcessLocal }
func hdfsNodeLocal() hdfs.Locality    { return hdfs.NodeLocal }
func hdfsAny() hdfs.Locality          { return hdfs.Any }
