package spark

import (
	"testing"

	"rupam/internal/faults"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// faultedRun executes simpleApp under the default scheduler with the given
// fault plan and fast failure detection (the stock 10 s heartbeat timeout
// dwarfs the test app's ~8 s runtime).
func faultedRun(t *testing.T, plan *faults.Schedule, cfg Config) *Result {
	t.Helper()
	w := newWorld(t)
	app := simpleApp(w, 3)
	cfg.Seed = 3
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 0.25
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 1
	}
	cfg.Faults = plan
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), cfg)
	return rt.Run(app)
}

// shuffleApp is one heavy-shuffle job: 512 MB of map output make the reduce
// stage spend seconds fetching, leaving a wide window in which losing a map
// node strands needed shuffle files.
func shuffleApp(w *world) *task.Application {
	ctx := rdd.NewContext("shuffle-app", w.store, 1)
	ctx.Read(w.store.CreateEven("in", 640*1e6, 8)).
		Map("expand", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1.2, OutRatio: 0.8}).
		Shuffle("agg", rdd.Profile{CPUPerByte: 2e-9, MemPerByte: 1}, 4).
		Count("job")
	return ctx.App()
}

func TestPermanentCrashResubmitsLostMapOutputs(t *testing.T) {
	// Fail-stop "slow" permanently while the reduce stage is mid-fetch from
	// its 3 map outputs (fault-free: map done ~4.5s, reduce 5.0→6.6s).
	// Reduce attempts must FetchFail, the parent map tasks that ran on the
	// node must be resubmitted, and the job must still complete on the
	// surviving nodes.
	w := newWorld(t)
	app := shuffleApp(w)
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "slow", At: 5.0},
	}}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
		Seed: 3, HeartbeatInterval: 0.25, HeartbeatTimeout: 1, Faults: plan,
	})
	res := rt.Run(app)
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.ExecutorsLost == 0 {
		t.Fatal("driver never declared the crashed executor lost")
	}
	if res.FetchFailures == 0 {
		t.Fatal("no reduce attempt fetch-failed on the dead map node")
	}
	if res.Resubmissions == 0 {
		t.Fatal("no tasks were resubmitted after losing the node's map outputs")
	}
	if res.Duration <= 6.63 {
		t.Fatalf("faulted run finished in %.2fs, faster than fault-free 6.63s", res.Duration)
	}
}

func TestCrashAndRecoveryRejoins(t *testing.T) {
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "slow", At: 2.0, Duration: 2.0},
	}}
	res := faultedRun(t, plan, Config{})
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.ExecutorsLost == 0 || res.ExecutorsRejoined == 0 {
		t.Fatalf("lost=%d rejoined=%d, want both > 0", res.ExecutorsLost, res.ExecutorsRejoined)
	}
	if res.FailStops == 0 {
		t.Fatal("injector crash not reflected in FailStops")
	}
}

func TestHeartbeatPartitionIsSurvivable(t *testing.T) {
	// Suppress heartbeats long enough to trip the watchdog while the node
	// keeps working: the driver declares it lost, then must survive the
	// rejoin when heartbeats resume.
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.HeartbeatLoss, Node: "fast", At: 2.0, Duration: 2.5},
	}}
	res := faultedRun(t, plan, Config{})
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.ExecutorsLost == 0 {
		t.Fatal("partition never tripped the heartbeat watchdog")
	}
	if res.ExecutorsRejoined == 0 {
		t.Fatal("node never rejoined after the partition healed")
	}
}

func TestRepeatedFailuresBlacklistNode(t *testing.T) {
	// Two crash/recover cycles on one node: the task failures they cause
	// must push the node over the blacklist threshold, and the blacklist
	// must keep the run completing (tasks go elsewhere).
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "slow", At: 1.5, Duration: 1.0},
		{Kind: faults.NodeCrash, Node: "slow", At: 4.0, Duration: 1.0},
	}}
	res := faultedRun(t, plan, Config{Blacklist: BlacklistConfig{Enabled: true, MaxNodeFailures: 3}})
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.NodesBlacklisted == 0 {
		t.Fatal("repeatedly failing node was never blacklisted")
	}
}

func TestBlacklistExpires(t *testing.T) {
	// With a short timeout the blacklisted node must become schedulable
	// again: a second round of failures re-activates the blacklist.
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "slow", At: 1.5, Duration: 0.5},
		{Kind: faults.NodeCrash, Node: "slow", At: 4.5, Duration: 0.5},
	}}
	res := faultedRun(t, plan, Config{Blacklist: BlacklistConfig{
		Enabled: true, MaxNodeFailures: 2, Timeout: 1.0,
	}})
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.NodesBlacklisted < 2 {
		t.Fatalf("blacklisted %d times, want >= 2 (expiry then re-activation)", res.NodesBlacklisted)
	}
}

func TestRetryExhaustionAbortsJob(t *testing.T) {
	// A task whose memory demand exceeds every heap OOMs wherever it lands;
	// with a retry bound the driver must abort with a structured error
	// instead of hanging or retrying forever.
	w := newWorld(t)
	ctx := rdd.NewContext("oom-app", w.store, 1)
	ctx.Read(w.store.CreateEven("in", 64*1e6, 4)).
		Map("hog", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 4000}). // ~64 GB/task > every heap
		Count("job")
	app := ctx.App()
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 3, TaskMaxFailures: 2})
	res := rt.Run(app)
	if res.Aborted == nil {
		t.Fatal("retry exhaustion did not abort the job")
	}
	if res.Aborted.Failures < 2 {
		t.Fatalf("aborted after %d failures, want >= 2", res.Aborted.Failures)
	}
	if res.Aborted.Reason == "" || res.Aborted.App == "" {
		t.Fatalf("abort error missing context: %+v", res.Aborted)
	}
	if w.eng.Pending() != 0 {
		t.Fatalf("engine left %d events pending after abort", w.eng.Pending())
	}
	var _ = task.Pending // silence import when assertions change
}

func TestFaultedRunsAreDeterministic(t *testing.T) {
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "slow", At: 2.0, Duration: 2.0},
		{Kind: faults.NICDegrade, Node: "fast", At: 1.0, Duration: 3.0, Factor: 0.2},
		{Kind: faults.DiskDegrade, Node: "gpu", At: 0.5, Duration: 4.0, Factor: 0.3},
		{Kind: faults.HeartbeatLoss, Node: "gpu", At: 5.0, Duration: 1.5},
	}}
	cfg := Config{Blacklist: BlacklistConfig{Enabled: true}, TaskMaxFailures: 8}
	a := faultedRun(t, plan, cfg)
	b := faultedRun(t, plan, cfg)
	if a.Duration != b.Duration {
		t.Fatalf("durations differ: %v vs %v", a.Duration, b.Duration)
	}
	if a.Launches != b.Launches || a.ExecutorsLost != b.ExecutorsLost ||
		a.FetchFailures != b.FetchFailures || a.Resubmissions != b.Resubmissions ||
		a.NodesBlacklisted != b.NodesBlacklisted {
		t.Fatalf("counters differ:\n%+v\n%+v", a, b)
	}
}

func TestEmptyScheduleChangesNothing(t *testing.T) {
	// The fault layer must be strictly opt-in: a nil schedule and an empty
	// schedule both reproduce the fault-free run exactly.
	run := func(plan *faults.Schedule) *Result {
		w := newWorld(t)
		rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 3, Faults: plan})
		return rt.Run(simpleApp(w, 3))
	}
	base := run(nil)
	empty := run(&faults.Schedule{})
	if base.Duration != empty.Duration || base.Launches != empty.Launches ||
		base.Heartbeats != empty.Heartbeats {
		t.Fatalf("empty schedule perturbed the run: %+v vs %+v", base, empty)
	}
	if base.ExecutorsLost != 0 || base.FetchFailures != 0 || base.Resubmissions != 0 {
		t.Fatalf("fault counters nonzero on fault-free run: %+v", base)
	}
}
