package spark

import (
	"bytes"
	"testing"

	"rupam/internal/faults"
	"rupam/internal/task"
	"rupam/internal/wal"
)

func TestDriverCrashRecoversAndCompletes(t *testing.T) {
	// Kill the driver mid-app: the run must recover from the write-ahead
	// log and still finish every task exactly as a live driver would.
	run := func() *Result {
		w := newWorld(t)
		app := simpleApp(w, 3)
		plan := &faults.Schedule{Events: []faults.Event{
			{Kind: faults.DriverCrash, At: 2.0, Duration: 1.0},
		}}
		rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
			Seed: 3, HeartbeatInterval: 0.25, HeartbeatTimeout: 1, Faults: plan,
		})
		return rt.Run(app)
	}
	res := run()
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.DriverCrashes != 1 || res.DriverRecoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", res.DriverCrashes, res.DriverRecoveries)
	}
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s not finished after recovery", tk)
		}
	}
	// The crash window (driver down for 1 s) must cost wall-clock time
	// relative to the 3-job fault-free baseline (~8 s), and recovery must
	// be deterministic.
	if again := run(); again.Duration != res.Duration || again.Launches != res.Launches {
		t.Fatalf("recovered runs differ: %.3fs/%d vs %.3fs/%d launches",
			res.Duration, res.Launches, again.Duration, again.Launches)
	}
}

func TestCrashWithoutWALRefusesAndRunCompletes(t *testing.T) {
	// A hand-wired injector with no write-ahead log cannot recover, so the
	// crash must be refused outright rather than wedging the run. Run wires
	// an in-memory log automatically whenever the plan contains a
	// DriverCrash, so the guard is exercised by crashing through the
	// injector after startup. Covered implicitly: every other test in this
	// file relies on the auto-wired log.
	w := newWorld(t)
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{Seed: 3})
	w.eng.At(2.0, func() { rt.driverCrash(1.0) })
	res := rt.Run(simpleApp(w, 2))
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.DriverCrashes != 0 {
		t.Fatalf("WAL-less crash was accepted: %d crashes", res.DriverCrashes)
	}
}

func TestBlacklistExpiryRestoredAcrossCrash(t *testing.T) {
	// A node blacklisted at time T with TTL D must become usable at exactly
	// T+D even if the driver crashed and recovered in between: the
	// write-ahead log stores the expiry as an absolute virtual-clock
	// deadline, and recovery restores it verbatim instead of re-arming the
	// TTL from recovery time.
	w := newWorld(t)
	app := simpleApp(w, 3)
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "slow", At: 1.0, Duration: 0.5},
		{Kind: faults.DriverCrash, At: 2.5, Duration: 0.5},
	}}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
		Seed: 3, HeartbeatInterval: 0.25, HeartbeatTimeout: 1,
		Blacklist: BlacklistConfig{Enabled: true, MaxNodeFailures: 2, Timeout: 3.0},
		Faults:    plan,
	})

	var preCrash, postRecovery float64
	var blockedBefore, usableAfter bool
	w.eng.At(2.4, func() { preCrash = rt.BlacklistUntil("slow") })
	w.eng.At(3.2, func() {
		postRecovery = rt.BlacklistUntil("slow")
		if postRecovery > 3.25 {
			// Probe both sides of the restored deadline.
			w.eng.At(postRecovery-0.05, func() { blockedBefore = rt.bl.nodeBlacklisted("slow") })
			w.eng.At(postRecovery+0.05, func() { usableAfter = !rt.bl.nodeBlacklisted("slow") })
		}
	})

	res := rt.Run(app)
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.DriverRecoveries != 1 {
		t.Fatalf("recoveries=%d, want 1", res.DriverRecoveries)
	}
	if preCrash == 0 {
		t.Fatal("node was not blacklisted before the driver crash; the scenario under test never happened")
	}
	if postRecovery != preCrash {
		t.Fatalf("recovery re-armed the blacklist: expiry %.3f before the crash, %.3f after",
			preCrash, postRecovery)
	}
	if !blockedBefore || !usableAfter {
		t.Fatalf("restored deadline not honored: blacklisted(until-ε)=%v usable(until+ε)=%v",
			blockedBefore, usableAfter)
	}

	// The log itself must carry the same absolute deadline.
	s, _, err := wal.Replay(bytes.NewReader(rt.WAL().Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Blacklist["slow"] != preCrash {
		t.Fatalf("WAL fold has expiry %.3f, driver had %.3f", s.Blacklist["slow"], preCrash)
	}
}
