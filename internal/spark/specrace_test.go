package spark

import (
	"testing"

	"rupam/internal/faults"
	"rupam/internal/task"
)

// TestHeartbeatRejoinRaceSingleCompletion partitions a node mid-stage
// under aggressive speculation: the watchdog declares it lost and kills
// its attempts, speculative copies of stragglers race on the surviving
// nodes, and the node rejoins while copies are still in flight. However
// the races resolve, each task may be counted complete exactly once and
// every loser's slot must be released.
func TestHeartbeatRejoinRaceSingleCompletion(t *testing.T) {
	w := newWorld(t)
	app := simpleApp(w, 3)
	plan := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.HeartbeatLoss, Node: "slow", At: 1.5, Duration: 2.5},
	}}
	rt := NewRuntime(w.eng, w.clu, NewDefaultScheduler(), Config{
		Seed:              3,
		HeartbeatInterval: 0.25, HeartbeatTimeout: 1,
		SpeculationInterval: 0.25, SpeculationQuantile: 0.1, SpeculationMultiplier: 1.05,
		Faults: plan,
	})
	res := rt.Run(app)

	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
	if res.ExecutorsLost == 0 || res.ExecutorsRejoined == 0 {
		t.Fatalf("lost=%d rejoined=%d, want both > 0 (partition never raced the rejoin)",
			res.ExecutorsLost, res.ExecutorsRejoined)
	}
	if res.SpecCopies == 0 {
		t.Fatal("no speculative copies launched; the race under test never happened")
	}

	losers := 0
	for _, tk := range res.App.AllTasks() {
		if tk.State != task.Finished {
			t.Fatalf("%s not finished", tk)
		}
		succ := 0
		for _, a := range tk.Attempts {
			if a.Succeeded() {
				succ++
			}
			if a.Killed {
				losers++
			}
		}
		if want := 1 + rt.ResubmitCount(tk.ID); succ > want {
			t.Fatalf("%s counted %d completions (resubmitted %d times)", tk, succ, want-1)
		}
		if succ == 0 {
			t.Fatalf("%s finished without a successful attempt", tk)
		}
	}
	if losers == 0 {
		t.Fatal("no attempt lost a race; the single-completion property was not exercised")
	}

	// Losers' slots released: nothing left running, no attempt registered,
	// no launch-time memory reservation dangling.
	if n := rt.LiveAttempts(); n != 0 {
		t.Fatalf("%d attempts still registered after the run", n)
	}
	for name, ex := range rt.Execs {
		if n := ex.RunningTasks(); n != 0 {
			t.Fatalf("%s still reports %d running tasks", name, n)
		}
		if ex.ProjectedFree() != ex.HeapFree() {
			t.Fatalf("%s: dangling memory reservation (%d bytes)",
				name, ex.HeapFree()-ex.ProjectedFree())
		}
	}
}
