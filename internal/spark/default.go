package spark

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/monitor"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// DefaultScheduler reproduces Spark's stock task scheduler: one task slot
// per CPU core, a single static executor size on every node, and delay
// scheduling over locality levels (a task set waits spark.locality.wait
// seconds at each level before accepting worse locality). It is
// deliberately blind to CPU speed, memory pressure, disk class, network
// bandwidth and GPUs — the mismatch the paper's §II demonstrates.
type DefaultScheduler struct {
	rt *Runtime

	pending    map[int][]*task.Task // pending tasks by stage ID
	order      []int                // stage submission order
	allowed    map[int]hdfs.Locality
	lastLaunch map[int]float64
	rot        int

	// oomBackoff halves a stage's per-node parallelism each time its
	// tasks die of OOM — the task-failure backoff real Spark gets from
	// TaskSetManager failure tracking and executor blacklisting. Without
	// it, a memory-starved stage relaunches a full slot-width wave that
	// OOMs (and crashes workers) forever. Successes slowly claw the
	// parallelism back (AIMD), so a stage that was merely unlucky does
	// not stay throttled — and one that truly doesn't fit keeps paying.
	oomBackoff map[int]int
	// successStreak counts a stage's successes since its last OOM, for
	// the backoff decay.
	successStreak map[int]int
	// runningByNodeStage counts this scheduler's in-flight attempts per
	// node per stage, for the backoff cap.
	runningByNodeStage map[string]map[int]int
}

// NewDefaultScheduler returns Spark's stock policy.
func NewDefaultScheduler() *DefaultScheduler {
	return &DefaultScheduler{
		pending:            make(map[int][]*task.Task),
		allowed:            make(map[int]hdfs.Locality),
		lastLaunch:         make(map[int]float64),
		oomBackoff:         make(map[int]int),
		successStreak:      make(map[int]int),
		runningByNodeStage: make(map[string]map[int]int),
	}
}

// Name implements Scheduler.
func (s *DefaultScheduler) Name() string { return "spark" }

// Bind implements Scheduler.
func (s *DefaultScheduler) Bind(rt *Runtime) { s.rt = rt }

// HeapFor implements Scheduler: the same static heap everywhere, sized to
// fit the smallest machine (the paper's 14 GB).
func (s *DefaultScheduler) HeapFor(node *cluster.Node) int64 {
	return s.rt.Cfg.StaticHeapBytes
}

// StageSubmitted implements Scheduler.
func (s *DefaultScheduler) StageSubmitted(st *task.Stage) {
	s.pending[st.ID] = append([]*task.Task(nil), st.Tasks...)
	s.order = append(s.order, st.ID)
	s.allowed[st.ID] = bestPossibleLevel(st)
	s.lastLaunch[st.ID] = s.rt.Eng.Now()
}

// bestPossibleLevel returns the tightest locality the stage's tasks can
// hope for, which is where delay scheduling starts waiting.
func bestPossibleLevel(st *task.Stage) hdfs.Locality {
	best := hdfs.Any
	for _, t := range st.Tasks {
		if t.CachedOn != "" {
			return hdfs.ProcessLocal
		}
		if len(t.PrefNodes) > 0 && best > hdfs.NodeLocal {
			best = hdfs.NodeLocal
		}
	}
	return best
}

// Resubmit implements Scheduler. A rollback can resurrect a stage the
// scheduler no longer tracks: after a driver recovery only the stages
// active at restore time are re-handed over, and the recovery reconcile
// may then roll back a stage that was complete at the crash. Register such
// a stage as if freshly submitted, or its tasks would sit in a queue no
// dispatch round ever visits.
func (s *DefaultScheduler) Resubmit(t *task.Task, st *task.Stage) {
	if _, known := s.allowed[st.ID]; !known {
		s.order = append(s.order, st.ID)
		s.allowed[st.ID] = bestPossibleLevel(st)
		s.lastLaunch[st.ID] = s.rt.Eng.Now()
	}
	s.pending[st.ID] = append(s.pending[st.ID], t)
}

// TaskEnded implements Scheduler: maintain per-node stage counts and back
// off a stage's parallelism when its tasks OOM.
func (s *DefaultScheduler) TaskEnded(t *task.Task, r *executor.Run, out executor.Outcome) {
	node := r.Metrics().Executor
	if m := s.runningByNodeStage[node]; m != nil && m[t.StageID] > 0 {
		m[t.StageID]--
	}
	switch out {
	case executor.OOM:
		s.successStreak[t.StageID] = 0
		b := s.oomBackoff[t.StageID]
		if b == 0 {
			b = 1
		}
		if b < 16 {
			s.oomBackoff[t.StageID] = b * 2
		}
	case executor.Success:
		if s.oomBackoff[t.StageID] > 1 {
			s.successStreak[t.StageID]++
			if s.successStreak[t.StageID] >= 12 {
				s.successStreak[t.StageID] = 0
				s.oomBackoff[t.StageID] /= 2
			}
		}
	}
}

// stageCap returns the per-node concurrency allowed for a stage on a node.
func (s *DefaultScheduler) stageCap(node string, stageID int) int {
	b := s.oomBackoff[stageID]
	if b <= 1 {
		return 1 << 30 // uncapped until the stage misbehaves
	}
	cores := s.rt.Clu.Node(node).Spec.Cores
	cap := cores / b
	if cap < 1 {
		cap = 1
	}
	return cap
}

func (s *DefaultScheduler) noteLaunch(node string, stageID int) {
	m := s.runningByNodeStage[node]
	if m == nil {
		m = make(map[int]int)
		s.runningByNodeStage[node] = m
	}
	m[stageID]++
}

// Heartbeat implements Scheduler (the stock scheduler ignores resource
// reports; the heartbeat-triggered Schedule call is its offer).
func (s *DefaultScheduler) Heartbeat(node string, nm *monitor.NodeMetrics) {}

// PendingTasks counts queued tasks still genuinely pending — the chaos
// harness's queue-drain invariant expects zero after a completed run.
func (s *DefaultScheduler) PendingTasks() int {
	n := 0
	for _, q := range s.pending {
		for _, t := range q {
			if t.State == task.Pending {
				n++
			}
		}
	}
	return n
}

// ExecutorLost implements ExecutorLossAware: forget the node's in-flight
// accounting (the runtime already failed the attempts themselves).
func (s *DefaultScheduler) ExecutorLost(node string) {
	delete(s.runningByNodeStage, node)
}

// ExecutorSetChanged implements ExecutorSetAware: re-derive each pending
// stage's delay-scheduling state against the executors that are usable
// *now*. Without this, a stage whose preferred nodes all left the usable
// set (executor loss, or a dynamic-allocation lease revoked) stalls at a
// stale locality level: every sibling launch re-arms the stage-wide
// lastLaunch timer, so the relaxation clock never expires while the stuck
// task's wait can't ever be satisfied. Conversely, when better nodes come
// back (rejoin, scale-up), the level tightens again with a fresh wait so
// the stage actually uses the restored locality.
func (s *DefaultScheduler) ExecutorSetChanged() {
	now := s.rt.Eng.Now()
	for id, q := range s.pending {
		reachable, pending := hdfs.Any+1, false
		for _, t := range q {
			if t.State != task.Pending {
				continue
			}
			pending = true
			best := hdfs.Any
			if t.CachedOn != "" && s.rt.CanRunOn(t.CachedOn) {
				best = hdfs.ProcessLocal
			} else {
				for _, p := range t.PrefNodes {
					if s.rt.CanRunOn(p) {
						best = hdfs.NodeLocal
						break
					}
				}
			}
			if best < reachable {
				reachable = best
			}
		}
		if !pending || reachable == s.allowed[id] {
			continue
		}
		s.allowed[id] = reachable
		s.lastLaunch[id] = now
	}
}

// DriverRecovery implements RecoveryAware: the stock scheduler keeps no
// learned state worth restoring, so a driver crash simply resets every
// queue and counter. The runtime re-hands active stages over through
// StageSubmitted right after, which refills the queues from the replayed
// write-ahead-log truth.
func (s *DefaultScheduler) DriverRecovery(ws *wal.State) {
	s.pending = make(map[int][]*task.Task)
	s.order = nil
	s.allowed = make(map[int]hdfs.Locality)
	s.lastLaunch = make(map[int]float64)
	s.rot = 0
	s.oomBackoff = make(map[int]int)
	s.successStreak = make(map[int]int)
	s.runningByNodeStage = make(map[string]map[int]int)
}

// Schedule implements Scheduler: fill free core slots with the
// best-locality pending task each node can get, then spend leftover slots
// on speculative copies.
func (s *DefaultScheduler) Schedule() {
	rt := s.rt
	now := rt.Eng.Now()

	// Delay-scheduling relaxation.
	for id, lvl := range s.allowed {
		if len(s.pending[id]) == 0 {
			continue
		}
		if lvl < hdfs.Any && now-s.lastLaunch[id] > rt.Cfg.LocalityWait {
			s.allowed[id] = lvl + 1
			s.lastLaunch[id] = now
		}
	}

	nodes := rt.Clu.Nodes
	for launchedAny := true; launchedAny; {
		launchedAny = false
		s.rot++
		for i := range nodes {
			node := nodes[(i+s.rot)%len(nodes)]
			name := node.Name()
			ex := rt.Execs[name]
			if ex == nil || !rt.CanRunOn(name) || ex.RunningTasks() >= node.Spec.Cores {
				continue
			}
			if s.launchOn(name) {
				launchedAny = true
			}
		}
	}
}

// launchOn places at most one task on the node; speculative copies fill
// slots when no pending task qualifies.
func (s *DefaultScheduler) launchOn(node string) bool {
	rt := s.rt
	d := rt.NewDecision(s.Name(), node)
	// Pending tasks first, stages in submission order (FIFO).
	for _, id := range s.order {
		// Compact away queue entries that are no longer pending — tasks
		// finished or running elsewhere (a stage re-handed over by driver
		// recovery enqueues all of its tasks, and a task can be enqueued
		// twice by a resubmit racing the re-hand-over). Left in place they
		// would be picked, refused by Launch, and re-appended forever,
		// starving the genuinely pending work behind them.
		q := s.pending[id]
		kept := q[:0]
		for _, t := range q {
			if t.State == task.Pending {
				kept = append(kept, t)
			}
		}
		q = kept
		s.pending[id] = q
		if len(q) == 0 {
			continue
		}
		if s.runningByNodeStage[node][id] >= s.stageCap(node, id) {
			if d != nil {
				d.Note("stage %d skipped: oom-backoff cap on %s", id, node)
			}
			continue // stage backed off on this node after OOMs
		}
		if st := rt.stages[id]; st != nil && !rt.StageReady(st) {
			if d != nil {
				d.Note("stage %d skipped: awaiting parent recompute", id)
			}
			continue // parent outputs lost; a rollback is recomputing them
		}
		allowed := s.allowed[id]
		bestIdx, bestLvl := -1, hdfs.Any+1
		for i, t := range q {
			if rt.TaskBlockedOn(t.ID, node) {
				d.Candidate(t.ID, t.LocalityOn(node).String(), "blacklisted-pairing", "")
				continue // blacklisted pairing
			}
			lvl := t.LocalityOn(node)
			if lvl <= allowed && lvl < bestLvl {
				bestIdx, bestLvl = i, lvl
				d.Candidate(t.ID, lvl.String(), "", "")
			} else if d != nil {
				reason, detail := "lost-on-locality", ""
				if lvl > allowed {
					reason = "waiting-for-locality"
					detail = fmt.Sprintf("has %s, stage allows up to %s", lvl, allowed)
				}
				d.Candidate(t.ID, lvl.String(), reason, detail)
			}
		}
		if bestIdx < 0 {
			continue
		}
		t := q[bestIdx]
		s.pending[id] = append(q[:bestIdx], q[bestIdx+1:]...)
		if rt.Launch(t, node, executor.Options{Locality: t.LocalityOn(node)}) != nil {
			d.SetWinner(t.ID, "delay-scheduling", bestLvl.String(), false)
			d.Commit()
			s.noteLaunch(node, id)
			s.lastLaunch[id] = rt.Eng.Now()
			return true
		}
		// Launch refused (executor just went down): put it back.
		s.pending[id] = append(s.pending[id], t)
		return false
	}
	// No pending work for this node: try a speculative copy. The copy
	// must not land back on the straggler's own node, a degraded node, or
	// a blacklisted pairing, and respects the per-stage copy cap —
	// SpecCopyAllowed checks all four.
	for _, t := range rt.SpeculativeTasks() {
		if len(rt.RunningAttempts(t)) != 1 || !rt.SpecCopyAllowed(t, node) {
			d.Candidate(t.ID, t.LocalityOn(node).String(), "spec-copy-not-allowed", "")
			continue
		}
		if rt.Launch(t, node, executor.Options{
			Locality:    t.LocalityOn(node),
			Speculative: true,
		}) != nil {
			// Cleared only after a successful launch: a refused launch must
			// leave the straggler in the set for the next pass.
			rt.ClearSpeculatable(t)
			d.SetWinner(t.ID, "speculative-copy", t.LocalityOn(node).String(), true)
			d.Commit()
			s.noteLaunch(node, t.StageID)
			return true
		}
		return false
	}
	return false
}
