package spark

import (
	"cmp"
	"slices"

	"rupam/internal/executor"
	"rupam/internal/simx"
	"rupam/internal/stats"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// submitJob activates job j: resolves cache locations for its tasks and
// submits every stage whose parents are complete.
func (rt *Runtime) submitJob(j int) {
	rt.jobIdx = j
	job := rt.app.Jobs[j]
	rt.Cfg.Tracer.JobBegin(job.ID, job.Name)
	rt.wlog.Append(wal.Record{Kind: wal.KindJobSubmitted, Job: j})
	for _, st := range job.Stages {
		rt.stages[st.ID] = st
		for _, t := range st.Tasks {
			rt.stageOf[t.ID] = st
		}
	}
	for _, st := range job.Stages {
		rt.maybeSubmitStage(st)
	}
	rt.reschedule()
}

// maybeSubmitStage submits st to the scheduler if all parents are complete
// and it has not been submitted yet.
func (rt *Runtime) maybeSubmitStage(st *task.Stage) {
	if rt.submitted[st.ID] {
		return
	}
	for _, p := range st.Parent {
		if !p.IsComplete() {
			return
		}
	}
	rt.submitted[st.ID] = true
	rt.activeStages[st.ID] = st
	rt.Cfg.Tracer.StageBegin(st)
	rt.wlog.Append(wal.Record{Kind: wal.KindStageSubmitted, Stage: st.ID, Job: rt.jobIdx})
	for _, t := range st.Tasks {
		rt.resolveCacheLocation(t)
		t.State = task.Pending
		rt.Cfg.Tracer.TaskQueued(t.ID)
	}
	rt.sched.StageSubmitted(st)
}

// resolveCacheLocation fills in the task's PROCESS_LOCAL node from the
// cache tracker — Spark's DAGScheduler.getCacheLocs step.
func (rt *Runtime) resolveCacheLocation(t *task.Task) {
	t.CachedOn = ""
	if t.CacheRDD == 0 {
		return
	}
	if node, ok := rt.Cache.Lookup(executor.CacheKey{RDD: t.CacheRDD, Partition: t.Index}); ok {
		t.CachedOn = node
	}
}

// CanRunOn reports whether node's executor exists, is up, has not been
// declared lost by the driver, is not blacklisted, and — in tenant mode —
// passes the launch gate (a dynamic-allocation lease with free capacity
// and a fair-share slot budget). Both schedulers route every placement
// through this check, so the pool layer decides *whether this app* may
// take the slot while the scheduler's heuristics keep deciding *which
// node* fits the task.
func (rt *Runtime) CanRunOn(node string) bool {
	ex, ok := rt.Execs[node]
	if !ok || ex.Down() || rt.lostExecs[node] {
		return false
	}
	if rt.preempted[node] {
		// A preemption notice dooms the node: new launches and speculative
		// copies go to healthy executors for the rest of the grace window.
		return false
	}
	if rt.bl != nil && rt.bl.nodeBlacklisted(node) {
		return false
	}
	return rt.gate == nil || rt.gate(node)
}

// Launch starts an attempt of t on node, returning the attempt's Run (nil
// if the launch was refused). All schedulers place tasks through this
// single entry point.
func (rt *Runtime) Launch(t *task.Task, node string, opts executor.Options) *executor.Run {
	if rt.appDone || rt.crashed || !rt.CanRunOn(node) {
		return nil
	}
	ex := rt.Execs[node]
	st, ok := rt.stageOf[t.ID]
	if !ok {
		return nil
	}
	if t.State == task.Finished || t.State == task.Failed {
		return nil
	}
	if !rt.StageReady(st) {
		// A rollback is recomputing this stage's parent outputs; the task
		// must wait for them.
		return nil
	}
	if rt.TaskBlockedOn(t.ID, node) {
		return nil
	}
	if opts.Speculative {
		if max := rt.Cfg.SpeculationMaxPerStage; max > 0 && rt.SpecInFlight(st.ID) >= max {
			return nil
		}
	}
	if rt.capFn != nil && !rt.capFn() {
		return nil // FAIR slot budget spent; another pool's turn
	}
	if rt.broker != nil && !rt.broker.AdmitPlacement(t, node) {
		// Federated mode: the node's slots belong to its agent. A refusal
		// either started a claim (a later round retries once it commits)
		// or lost an arbitration; either way nothing launches now.
		return nil
	}
	t.State = task.Running
	rt.LaunchCount++
	if opts.Speculative {
		rt.SpecCopies++
	}
	r := ex.Launch(t, st, opts, rt.onTaskEnd)
	rt.runningAtt[t.ID] = append(rt.runningAtt[t.ID], r)
	rt.wlog.Append(wal.Record{Kind: wal.KindTaskLaunched,
		Task: t.ID, Stage: st.ID, Index: t.Index, Node: node, Spec: opts.Speculative})
	if rt.broker != nil {
		rt.broker.PlacementStarted(t, node)
	}
	return r
}

// RunningAttempts returns the live attempts of a task.
func (rt *Runtime) RunningAttempts(t *task.Task) []*executor.Run { return rt.runningAtt[t.ID] }

// onTaskEnd is the single completion path for every attempt. While the
// driver is down (a DriverCrash window) completions are not lost: they
// buffer in arrival order, modeling executors that hold their status
// updates until the restarted driver re-registers them, and recovery
// redelivers each through this same path.
func (rt *Runtime) onTaskEnd(r *executor.Run, out executor.Outcome) {
	if rt.crashed {
		rt.orphaned = append(rt.orphaned, orphanEnd{r: r, out: out})
		return
	}
	t := r.Task()
	st := r.Stage()

	// Drop the attempt from the live set.
	live := rt.runningAtt[t.ID]
	for i, a := range live {
		if a == r {
			live = append(live[:i], live[i+1:]...)
			break
		}
	}
	rt.runningAtt[t.ID] = live

	rt.sched.TaskEnded(t, r, out)
	if rt.OnAttemptEnd != nil {
		rt.OnAttemptEnd(t, r.Metrics().Executor, out)
	}

	switch out {
	case executor.Success:
		if t.State != task.Finished {
			t.State = task.Finished
			delete(rt.speculatable, t.ID)
			if m := r.Metrics(); m.End > m.Launch {
				// Observed attempt wall time feeds the drain's fence-point
				// prediction (how late a doomed node can still accept work).
				rt.attemptDurSum += m.End - m.Launch
				rt.attemptDurN++
			}
			rt.wlog.Append(wal.Record{Kind: wal.KindTaskSucceeded,
				Task: t.ID, Stage: st.ID, Index: t.Index,
				Node: r.Metrics().Executor, Bytes: t.Demand.ShuffleWriteBytes})
			if t.Demand.ShuffleWriteBytes > 0 && st.OutputNodeOf(t.Index) == "" {
				// An adopted attempt's shuffle write landed before driver
				// recovery wiped the stage's output map; re-register it so
				// children can locate the blocks.
				st.RecordShuffleOutput(t.Index, r.Metrics().Executor, t.Demand.ShuffleWriteBytes)
			}
			// The losing copies are cancelled; the driver does not route
			// them through the failure path (no resubmission), but the
			// scheduler still hears about each so its per-node accounting
			// stays truthful.
			for _, a := range append([]*executor.Run(nil), live...) {
				a.Kill(false)
				rt.sched.TaskEnded(t, a, executor.Killed)
				if rt.OnAttemptEnd != nil {
					rt.OnAttemptEnd(t, a.Metrics().Executor, executor.Killed)
				}
				rt.wlog.Append(wal.Record{Kind: wal.KindAttemptEnded,
					Task: t.ID, Node: a.Metrics().Executor, Outcome: "killed"})
			}
			rt.runningAtt[t.ID] = nil
			if st.MarkCompleted() {
				rt.onStageComplete(st)
			}
		} else {
			// A second success of an already-finished task (a redelivered
			// race both copies of which completed while the driver was
			// down). The completion is not double-counted; the attempt is
			// simply drained. The count of drains licenses the extra
			// successful attempt metrics for the invariant battery — only
			// during orphan redelivery, so the strict at-most-one bound
			// still holds everywhere a live driver could have killed the
			// loser.
			if rt.redelivering {
				rt.dupSuccess[t.ID]++
			}
			rt.wlog.Append(wal.Record{Kind: wal.KindAttemptEnded,
				Task: t.ID, Node: r.Metrics().Executor, Outcome: "success"})
		}
	case executor.OOM, executor.Killed, executor.Lost, executor.FetchFailed, executor.Flaked:
		outcome := out.String()
		if out == executor.Lost && rt.preempted[r.Metrics().Executor] {
			// An announced spot reclamation: the distinct WAL outcome keeps a
			// post-crash replay from folding the loss into failure counts.
			outcome = "preempted"
		}
		rt.wlog.Append(wal.Record{Kind: wal.KindAttemptEnded,
			Task: t.ID, Node: r.Metrics().Executor, Outcome: outcome})
		if t.State == task.Finished {
			break // a lost speculative copy; nothing to do
		}
		if out == executor.FetchFailed {
			rt.FetchFailures++
		}
		if out != executor.Killed {
			// A deliberate kill (losing speculative copy, memory reclaim)
			// is not the task's fault and counts against nothing.
			rt.noteTaskFailure(t, st, r, out)
			if rt.appDone {
				break // the failure aborted the job
			}
		}
		if len(rt.runningAtt[t.ID]) > 0 {
			break // another copy is still running; let it race
		}
		t.State = task.Pending
		rt.resolveCacheLocation(t) // cache may have moved or been dropped
		rt.Cfg.Tracer.TaskQueued(t.ID)
		rt.wlog.Append(wal.Record{Kind: wal.KindTaskRequeued, Task: t.ID, Stage: st.ID})
		rt.sched.Resubmit(t, st)
	}
	if rt.appDone {
		return
	}
	rt.reschedule()
}

// onStageComplete advances the DAG: submits newly-ready stages, and when
// the job's final stage lands, moves to the next job or finishes the app.
func (rt *Runtime) onStageComplete(st *task.Stage) {
	delete(rt.activeStages, st.ID)
	rt.Cfg.Tracer.StageEnd(st.ID)
	rt.wlog.Append(wal.Record{Kind: wal.KindStageCompleted, Stage: st.ID, Job: rt.jobIdx})
	job := rt.app.Jobs[rt.jobIdx]
	for _, s := range job.Stages {
		rt.maybeSubmitStage(s)
	}
	if st == job.Final {
		rt.Cfg.Tracer.JobEnd(job.ID)
		rt.wlog.Append(wal.Record{Kind: wal.KindJobCompleted, Job: rt.jobIdx})
		rt.jobEnds = append(rt.jobEnds, rt.Eng.Now())
		if rt.jobIdx+1 < len(rt.app.Jobs) {
			rt.submitJob(rt.jobIdx + 1)
			return
		}
		rt.finishApp()
	}
}

func (rt *Runtime) finishApp() {
	rt.appDone = true
	rt.appEnd = rt.Eng.Now()
	if rt.ownsSubstrate {
		// A shared monitor keeps beating for the sibling applications; only
		// a single-application run tears it down with the app.
		rt.Mon.Stop()
	}
	if rt.Rec != nil {
		rt.Rec.Stop()
	}
	rt.specTimer.Cancel()
	rt.specTimer = simx.Timer{}
	rt.wdTimer.Cancel()
	rt.wdTimer = simx.Timer{}
	if rt.OnAppDone != nil {
		rt.OnAppDone()
	}
}

// ---- speculative execution ---------------------------------------------

// scheduleSpeculationScan arms the periodic straggler check.
func (rt *Runtime) scheduleSpeculationScan() {
	rt.specTimer = rt.Eng.Schedule(rt.Cfg.SpeculationInterval, func() {
		if rt.appDone {
			return
		}
		rt.scanForStragglers()
		rt.scheduleSpeculationScan()
		rt.reschedule()
	})
}

// scanForStragglers implements Spark's speculation rule: once a stage is
// SpeculationQuantile complete, any running task older than
// SpeculationMultiplier × the median successful duration becomes
// speculatable. The median matches TaskSetManager.checkSpeculatableTasks:
// a mean would let a single fast thor-class completion drag the threshold
// down and trigger storms of false speculations on slower stack-class
// nodes.
func (rt *Runtime) scanForStragglers() {
	now := rt.Eng.Now()
	for _, st := range rt.sortedActiveStages() {
		n := st.NumTasks()
		if n <= 1 || float64(st.Completed()) < rt.Cfg.SpeculationQuantile*float64(n) {
			continue
		}
		var durs []float64
		for _, t := range st.Tasks {
			if m := t.SuccessMetrics(); m != nil {
				durs = append(durs, m.Duration())
			}
		}
		if len(durs) == 0 {
			continue
		}
		threshold := rt.Cfg.SpeculationMultiplier * stats.Median(durs)
		if threshold < 0.1 {
			threshold = 0.1
		}
		for _, t := range st.Tasks {
			if t.State != task.Running || len(rt.runningAtt[t.ID]) != 1 {
				continue
			}
			att := rt.runningAtt[t.ID][0]
			if now-att.Metrics().Launch > threshold {
				rt.Cfg.Tracer.SpeculatableMarked(t.ID)
				rt.wlog.Append(wal.Record{Kind: wal.KindSpecMarked, Task: t.ID, Stage: st.ID})
				rt.speculatable[t.ID] = t
			}
		}
	}
}

// SpeculativeTasks returns the current straggler set in deterministic
// order; schedulers launch copies of these when they have spare resources
// (Algorithm 2's speculativeTaskSet path).
func (rt *Runtime) SpeculativeTasks() []*task.Task {
	if len(rt.speculatable) == 0 {
		// Fast path for the common case: schedulers poll this on every
		// scheduling round, and the straggler set is almost always empty.
		return nil
	}
	ts := make([]*task.Task, 0, len(rt.speculatable))
	for _, t := range rt.speculatable {
		if t.State == task.Running {
			ts = append(ts, t)
		}
	}
	slices.SortFunc(ts, func(a, b *task.Task) int { return cmp.Compare(a.ID, b.ID) })
	return ts
}

// MarkSpeculatable force-adds a task to the straggler set (RUPAM's
// resource-straggler extension of checkSpeculatableTasks).
func (rt *Runtime) MarkSpeculatable(t *task.Task) {
	if t.State == task.Running {
		rt.Cfg.Tracer.SpeculatableMarked(t.ID)
		rt.wlog.Append(wal.Record{Kind: wal.KindSpecMarked, Task: t.ID, Stage: t.StageID})
		rt.speculatable[t.ID] = t
	}
}

// ClearSpeculatable removes a task from the straggler set (a copy was
// launched or the task finished).
func (rt *Runtime) ClearSpeculatable(t *task.Task) { delete(rt.speculatable, t.ID) }

// SpecInFlight counts the live speculative copies of a stage's tasks. It
// is computed from the attempt registry rather than a counter so silent
// kills (notify=false) can never make it drift.
func (rt *Runtime) SpecInFlight(stageID int) int {
	n := 0
	for _, rs := range rt.runningAtt {
		for _, r := range rs {
			if r.Speculative() && !r.Done() && r.Stage().ID == stageID {
				n++
			}
		}
	}
	return n
}

// NodeDegraded reports whether node's latest heartbeat shows a below-spec
// effective CPU frequency — the driver-side view of a fail-slow node
// inside an injected (or DVFS) throttle window.
func (rt *Runtime) NodeDegraded(node string) bool {
	nm := rt.Mon.Latest(node)
	if nm == nil {
		return false
	}
	n := rt.Clu.Node(node)
	return n != nil && nm.CPUFreq < n.Spec.FreqGHz*0.999
}

// SpecCopyAllowed reports whether a speculative copy of t may go to node:
// the node must be launchable and not blocked for the task, must not
// already host an attempt of t, must not look degraded in its latest
// heartbeat (a fail-slow node is exactly where the copy must NOT go),
// and the stage's in-flight copies must be under SpeculationMaxPerStage.
// Both schedulers consult this before placing a copy.
func (rt *Runtime) SpecCopyAllowed(t *task.Task, node string) bool {
	if !rt.CanRunOn(node) || rt.TaskBlockedOn(t.ID, node) {
		return false
	}
	for _, a := range rt.runningAtt[t.ID] {
		if a.Metrics().Executor == node {
			return false
		}
	}
	if rt.NodeDegraded(node) {
		return false
	}
	if max := rt.Cfg.SpeculationMaxPerStage; max > 0 {
		if st := rt.stageOf[t.ID]; st != nil && rt.SpecInFlight(st.ID) >= max {
			return false
		}
	}
	return true
}

// StageOf returns the stage owning the task.
func (rt *Runtime) StageOf(t *task.Task) *task.Stage { return rt.stageOf[t.ID] }

// LiveAttempts returns the number of attempts still registered as
// in-flight. After a run (completed or aborted) it must be zero — the
// chaos harness's attempt-leak invariant.
func (rt *Runtime) LiveAttempts() int {
	n := 0
	for _, rs := range rt.runningAtt {
		n += len(rs)
	}
	return n
}

// SpeculatableCount returns the size of the straggler set (drained to
// zero by the end of a completed run).
func (rt *Runtime) SpeculatableCount() int { return len(rt.speculatable) }

// RunningOn counts this application's live attempts currently placed on
// node — the tenant layer's per-lease occupancy view.
func (rt *Runtime) RunningOn(node string) int {
	n := 0
	for _, rs := range rt.runningAtt {
		for _, r := range rs {
			if !r.Done() && r.Metrics().Executor == node {
				n++
			}
		}
	}
	return n
}

// BlacklistedNow returns how many nodes are currently inside a blacklist
// window (0 when blacklisting is off).
func (rt *Runtime) BlacklistedNow() int {
	if rt.bl == nil {
		return 0
	}
	n := 0
	for _, until := range rt.bl.until {
		if until > rt.Eng.Now() {
			n++
		}
	}
	return n
}

// ActiveStages returns the currently active stages ordered by ID.
func (rt *Runtime) sortedActiveStages() []*task.Stage {
	ss := make([]*task.Stage, 0, len(rt.activeStages))
	for _, s := range rt.activeStages {
		ss = append(ss, s)
	}
	slices.SortFunc(ss, func(a, b *task.Stage) int { return cmp.Compare(a.ID, b.ID) })
	return ss
}

// ActiveStages returns active stages in deterministic (ID) order.
func (rt *Runtime) ActiveStages() []*task.Stage { return rt.sortedActiveStages() }
