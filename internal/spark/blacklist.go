package spark

import "rupam/internal/simx"

// BlacklistConfig tunes the driver's node blacklisting, modeled on Spark's
// BlacklistTracker (spark.blacklist.*). Disabled by default: stock Spark
// shipped it off, and the no-fault experiments must not change behavior.
type BlacklistConfig struct {
	// Enabled turns the tracker on.
	Enabled bool
	// MaxTaskFailuresPerNode blocks a specific task from a node after this
	// many failures of that task there (default 2).
	MaxTaskFailuresPerNode int
	// MaxNodeFailures blacklists a whole node after this many task
	// failures on it, across tasks (default 4).
	MaxNodeFailures int
	// Timeout is how long a node stays blacklisted, in seconds
	// (spark.blacklist.timeout; default 60).
	Timeout float64
}

func (c BlacklistConfig) withDefaults() BlacklistConfig {
	if c.MaxTaskFailuresPerNode == 0 {
		c.MaxTaskFailuresPerNode = 2
	}
	if c.MaxNodeFailures == 0 {
		c.MaxNodeFailures = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 60
	}
	return c
}

// blacklist tracks per-task-per-node and per-node failure counts and the
// timed node blacklist they feed.
type blacklist struct {
	cfg BlacklistConfig
	eng *simx.Engine

	// taskNode counts failures of a task on a node (task ID → node →
	// count); these are permanent for the task's lifetime, like Spark's
	// per-taskset tracking.
	taskNode map[int]map[string]int
	// nodeFailures counts task failures per node since the node was last
	// blacklisted.
	nodeFailures map[string]int
	// until holds each node's blacklist expiry time.
	until map[string]float64

	// NodesBlacklisted counts blacklist activations (for reporting).
	NodesBlacklisted int
}

func newBlacklist(eng *simx.Engine, cfg BlacklistConfig) *blacklist {
	return &blacklist{
		cfg:          cfg.withDefaults(),
		eng:          eng,
		taskNode:     make(map[int]map[string]int),
		nodeFailures: make(map[string]int),
		until:        make(map[string]float64),
	}
}

// noteFailure records one failure of task taskID on node, activating the
// node blacklist when the node crosses its threshold. It reports whether
// this failure activated the blacklist and, if so, the absolute expiry
// time — the caller logs activations to the write-ahead log so recovery
// can restore the deadline as an absolute virtual-clock time rather than
// re-arming it from recovery time.
func (b *blacklist) noteFailure(taskID int, node string) (activated bool, until float64) {
	per := b.taskNode[taskID]
	if per == nil {
		per = make(map[string]int)
		b.taskNode[taskID] = per
	}
	per[node]++
	b.nodeFailures[node]++
	if b.nodeFailures[node] >= b.cfg.MaxNodeFailures && !b.nodeBlacklisted(node) {
		b.until[node] = b.eng.Now() + b.cfg.Timeout
		b.nodeFailures[node] = 0
		b.NodesBlacklisted++
		return true, b.until[node]
	}
	return false, 0
}

// restore reloads the tracker's state from replayed write-ahead-log
// history. Expiry deadlines are absolute virtual-clock times carried over
// verbatim: a node blacklisted at T with TTL D becomes usable at exactly
// T+D whether or not the driver crashed in between.
func (b *blacklist) restore(taskNode map[int]map[string]int, nodeFailures map[string]int, until map[string]float64, activations int) {
	b.taskNode = make(map[int]map[string]int)
	for id, per := range taskNode {
		cp := make(map[string]int, len(per))
		for n, c := range per {
			cp[n] = c
		}
		b.taskNode[id] = cp
	}
	b.nodeFailures = make(map[string]int)
	for n, c := range nodeFailures {
		b.nodeFailures[n] = c
	}
	b.until = make(map[string]float64)
	for n, u := range until {
		b.until[n] = u
	}
	b.NodesBlacklisted = activations
}

// nodeBlacklisted reports whether node is currently blacklisted.
func (b *blacklist) nodeBlacklisted(node string) bool {
	return b.until[node] > b.eng.Now()
}

// taskBlocked reports whether taskID may not run on node.
func (b *blacklist) taskBlocked(taskID int, node string) bool {
	return b.taskNode[taskID][node] >= b.cfg.MaxTaskFailuresPerNode
}
