package spark

import (
	"fmt"
	"math"
	"sort"

	"rupam/internal/task"
	"rupam/internal/wal"
)

// This file is the driver's notice-aware graceful-drain path for spot
// preemptions. A preemption *notice* (faults.SpotPreempt at T−grace) is an
// announced loss: the driver fences the doomed executor out of both
// schedulers' candidate sets (CanRunOn), stops launching onto it, and
// spends the grace window proactively re-replicating the node's completed
// shuffle outputs to healthy peers over the real simulated network — so
// when the kill lands, child stages fetch from the new homes instead of
// triggering FetchFailed/rollback storms. The eventual loss is *expected*:
// preemption-killed attempts charge neither the per-task retry budget nor
// the node blacklist (the cloud reclaimed the instance; the task and the
// node did nothing wrong).

// PreemptionRecord is one notice→kill episode on a node, kept for the
// chaos invariant battery and cost/drain reporting.
type PreemptionRecord struct {
	Node     string
	NoticeAt float64
	Grace    float64
	// KillAt is when the instance actually died (0 while the grace window
	// is still open at end of run).
	KillAt float64
	// Resolution is "" while open, then "drained" (nothing of value was on
	// the node when it died) or "killed" (running attempts or still-needed
	// outputs went down with it).
	Resolution     string
	AttemptsKilled int
	BlocksMoved    int
	BytesMoved     int64
	// FencedFrom is the instant new launches on the node stopped. The driver
	// fences at the notice itself (FencedFrom == NoticeAt): work started
	// after the warning would mostly die with the kill, while the elastic
	// substrate can place it on a healthy replacement instead. A record
	// opened by an unheard kill carries FencedFrom == KillAt.
	FencedFrom float64
	// ClearedAt is when the node rejoined after re-acquisition (0 = never);
	// launches after this instant are legitimate again.
	ClearedAt float64

	moved []movedOutput
}

// movedOutput is one shuffle block the drain relocated off the doomed node.
type movedOutput struct {
	st   *task.Stage
	idx  int
	dest string
}

// Draining reports whether the node is inside an open preemption window
// (notice delivered, loss not yet cleared by re-acquisition).
func (rt *Runtime) Draining(node string) bool { return rt.preempted[node] }

// PreemptionRecords returns every notice→kill episode the driver observed,
// in notice order.
func (rt *Runtime) PreemptionRecords() []PreemptionRecord {
	out := make([]PreemptionRecord, len(rt.preemptRecs))
	for i, r := range rt.preemptRecs {
		out[i] = *r
	}
	return out
}

// PreemptViolations returns drain-protocol violations detected during the
// run (a relocated output found back on the dead node at kill time).
// Always empty unless the relocation bookkeeping is broken — the chaos
// battery asserts exactly that.
func (rt *Runtime) PreemptViolations() []string { return rt.preemptViolations }

// openPreemptRec returns the node's most recent unresolved record, or nil.
func (rt *Runtime) openPreemptRec(node string) *PreemptionRecord {
	for i := len(rt.preemptRecs) - 1; i >= 0; i-- {
		if rec := rt.preemptRecs[i]; rec.Node == node && rec.Resolution == "" {
			return rec
		}
	}
	return nil
}

// PreemptNotice is the driver's reaction to a spot-reclamation warning:
// fence the node and start draining its completed shuffle outputs. Wired
// to the injector's OnSpotNotice in single-application mode and routed by
// the tenant manager otherwise. A crashed driver cannot hear the notice
// (the loss is reconciled as announced at kill time instead).
func (rt *Runtime) PreemptNotice(node string, grace float64) {
	if rt.appDone || rt.crashed || rt.preempted[node] {
		return
	}
	ex := rt.Execs[node]
	if ex == nil || ex.FailStopped() {
		return
	}
	now := rt.Eng.Now()
	rt.preempted[node] = true
	rt.PreemptNotices++
	rec := &PreemptionRecord{Node: node, NoticeAt: now, Grace: grace}
	rt.preemptRecs = append(rt.preemptRecs, rec)
	rt.Cfg.Tracer.PreemptNotice(rt.Cfg.AppLabel, node, grace)
	// Fence immediately: every task launched onto the doomed node after the
	// notice is work the kill will probably throw away, while the elastic
	// substrate can grant the application a healthy replacement executor
	// within a tick or two — so the moment the warning lands, new launches
	// go elsewhere and the grace window is spent only finishing what is
	// already running and draining outputs.
	rec.FencedFrom = now
	rt.notifyExecutorSetChanged()
	// Attempts already running race the deadline: start speculative copies
	// now (decommission-style migration) so long tasks that cannot finish
	// in the window are already re-running elsewhere when the kill lands.
	for _, r := range rt.attemptsOn(node) {
		rt.MarkSpeculatable(r.Task())
	}
	rt.drainOutputs(node, rec)
	rt.reschedule()
}

// meanAttemptSeconds is the observed mean wall time of this application's
// successful attempts — the drain layer's recompute-cost
// predictor. False until the first success lands.
func (rt *Runtime) meanAttemptSeconds() (float64, bool) {
	if rt.attemptDurN == 0 {
		return 0, false
	}
	return rt.attemptDurSum / float64(rt.attemptDurN), true
}

// drainOutputs starts re-replication flows for the completed, still-needed
// shuffle outputs the node holds, in (stage, partition) order — but only
// the blocks worth moving. Re-replication competes with the workload's own
// shuffle traffic for the doomed node's NIC, and a lost block is not
// irreplaceable (lineage recomputes it), so a block is skipped when its
// transfer is predicted to cost more than recomputing the partition, or
// when the remaining grace window cannot push its bytes anyway (a flow the
// kill would cancel wastes bandwidth the cheap blocks need).
func (rt *Runtime) drainOutputs(node string, rec *PreemptionRecord) {
	if rt.app == nil || rt.jobIdx >= len(rt.app.Jobs) {
		return
	}
	egCap := rt.Clu.Node(node).Net.EgressCap()
	budget := math.Inf(1)
	if egCap > 0 && rec.Grace > 0 {
		budget = egCap * rec.Grace
	}
	recomputeBytes := math.Inf(1)
	if mean, ok := rt.meanAttemptSeconds(); ok && egCap > 0 {
		recomputeBytes = mean * egCap
	}
	job := rt.app.Jobs[rt.jobIdx]
	stages := append([]*task.Stage(nil), job.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].ID < stages[j].ID })
	for _, st := range stages {
		if !rt.outputsNeeded(st, job) {
			continue
		}
		var idxs []int
		for _, t := range st.Tasks {
			if st.OutputNodeOf(t.Index) == node {
				idxs = append(idxs, t.Index)
			}
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			_, bytes := st.OutputOf(idx)
			if b := float64(bytes); b > recomputeBytes || b > budget {
				rt.DrainBlocksSkipped++
				continue
			}
			if rt.drainOneOutput(node, st, idx, rec) {
				_, bytes := st.OutputOf(idx)
				budget -= float64(bytes)
			}
		}
	}
}

// drainOneOutput copies one block off the doomed node over the simulated
// network; on transfer completion the registry is re-pointed (and the move
// WAL-logged so a post-crash rebuild keeps the new location). Transfers
// still in flight when the kill lands are cancelled — bytes that did not
// finish copying die with the instance.
func (rt *Runtime) drainOneOutput(node string, st *task.Stage, idx int, rec *PreemptionRecord) bool {
	dest := rt.drainDest(node)
	if dest == "" {
		return false // nowhere healthy to copy to
	}
	_, bytes := st.OutputOf(idx)
	if bytes <= 0 {
		return false
	}
	flow := rt.Clu.Net.Start(node, dest, float64(bytes), func() {
		if rt.appDone || st.OutputNodeOf(idx) != node {
			return // a rerun re-registered the block elsewhere meanwhile
		}
		moved, ok := st.RelocateOutput(idx, dest)
		if !ok {
			return
		}
		rt.DrainBlocksMoved++
		rt.DrainBytesMoved += moved
		rec.BlocksMoved++
		rec.BytesMoved += moved
		rec.moved = append(rec.moved, movedOutput{st: st, idx: idx, dest: dest})
		rt.wlog.Append(wal.Record{Kind: wal.KindOutputMoved,
			Stage: st.ID, Index: idx, Node: dest, Bytes: moved})
		rt.Cfg.Tracer.DrainMoved(rt.Cfg.AppLabel, node, dest, st.ID, idx, moved)
	})
	rt.drainFlows[node] = append(rt.drainFlows[node], flow)
	return true
}

// drainDest picks the next healthy destination for a drained block,
// round-robin over live, unfenced nodes in cluster order so one peer does
// not absorb the whole drain.
func (rt *Runtime) drainDest(from string) string {
	var eligible []string
	for _, n := range rt.Clu.Nodes {
		name := n.Name()
		if name == from || rt.preempted[name] || rt.lostExecs[name] {
			continue
		}
		if ex := rt.Execs[name]; ex == nil || ex.Down() {
			continue
		}
		eligible = append(eligible, name)
	}
	if len(eligible) == 0 {
		return ""
	}
	dest := eligible[rt.drainRR%len(eligible)]
	rt.drainRR++
	return dest
}

// drainRedirectTarget reports where in-flight shuffle reads from a
// preempted node should re-source, or "" when they cannot. A node name
// comes back only when every still-needed shuffle output the doomed node
// held was relocated during the grace window — then readers switch to the
// relocated home that received the most blocks (ties to the smaller name,
// for determinism) instead of surfacing a FetchFailed for data that is
// demonstrably alive. Must run before rollbackOutputs zeroes the stage
// maps, and tolerates a record SpotKill already resolved.
func (rt *Runtime) drainRedirectTarget(node string) string {
	if rt.jobIdx >= len(rt.app.Jobs) {
		return ""
	}
	job := rt.app.Jobs[rt.jobIdx]
	for _, st := range job.Stages {
		if rt.outputsNeeded(st, job) && st.ShuffleOutputByNode[node] > 0 {
			return "" // a still-needed output dies with the node
		}
	}
	var rec *PreemptionRecord
	for i := len(rt.preemptRecs) - 1; i >= 0; i-- {
		if rt.preemptRecs[i].Node == node {
			rec = rt.preemptRecs[i]
			break
		}
	}
	if rec == nil {
		return ""
	}
	blocksAt := make(map[string]int)
	for _, mv := range rec.moved {
		// Only count blocks still where the drain put them, on a live peer.
		if mv.st.OutputNodeOf(mv.idx) != mv.dest || rt.lostExecs[mv.dest] {
			continue
		}
		if ex := rt.Execs[mv.dest]; ex == nil || ex.Down() {
			continue
		}
		blocksAt[mv.dest]++
	}
	best := ""
	for dest, n := range blocksAt {
		if best == "" || n > blocksAt[best] || (n == blocksAt[best] && dest < best) {
			best = dest
		}
	}
	return best
}

// SpotKill is the driver's reaction to the reclaimed instance actually
// dying at the end of its grace window. Unlike a heartbeat-timeout
// discovery this is prompt and *announced*: the loss routes through the
// normal executor-lost path, but attempts killed by it are exempt from
// failure counting and blacklisting (see noteTaskFailure), and outputs
// relocated during the grace window are verified to have survived.
func (rt *Runtime) SpotKill(node string) {
	now := rt.Eng.Now()
	// Incomplete drain copies die with the instance.
	for _, f := range rt.drainFlows[node] {
		rt.Clu.Net.Cancel(f)
	}
	delete(rt.drainFlows, node)

	rec := rt.openPreemptRec(node)
	if rt.appDone {
		if rec != nil {
			rec.KillAt, rec.Resolution = now, "drained"
		}
		return
	}
	// Even if the notice went unheard (driver down at notice time), the
	// kill itself identifies the loss as announced: mark the node so the
	// loss is never charged to tasks or the blacklist.
	rt.preempted[node] = true
	if rt.crashed {
		// The driver is down; reconcileLost settles the loss at recovery.
		if rec != nil {
			rec.KillAt, rec.Resolution = now, "killed"
		}
		return
	}

	attempts := len(rt.attemptsOn(node))
	drained := attempts == 0
	if drained && rt.jobIdx < len(rt.app.Jobs) {
		job := rt.app.Jobs[rt.jobIdx]
		for _, st := range job.Stages {
			if !rt.outputsNeeded(st, job) {
				continue
			}
			if st.ShuffleOutputByNode[node] > 0 {
				drained = false // still-needed outputs are going down with the node
				break
			}
		}
	}
	resolution := "killed"
	if drained {
		resolution = "drained"
		rt.DrainsCompleted++
	}
	rt.PreemptKills++
	if rec == nil {
		rec = &PreemptionRecord{Node: node, NoticeAt: now, Grace: 0, FencedFrom: now}
		rt.preemptRecs = append(rt.preemptRecs, rec)
	}
	rec.KillAt, rec.Resolution, rec.AttemptsKilled = now, resolution, attempts
	rt.Cfg.Tracer.PreemptKill(rt.Cfg.AppLabel, node, resolution, attempts)

	rt.executorLost(node, "spot-preempted")

	// Drain-protocol audit: every block relocated during the grace window
	// must have survived the kill at a location other than the dead node.
	for _, mv := range rec.moved {
		if mv.st.OutputNodeOf(mv.idx) == node {
			rt.preemptViolations = append(rt.preemptViolations, fmt.Sprintf(
				"relocated output stage %d index %d found back on preempted node %s at kill",
				mv.st.ID, mv.idx, node))
		}
	}
}

// clearPreempted lifts the fence after the node rejoined (the elastic
// substrate re-acquired the instance under a new incarnation), stamping
// the episode so post-run audits know launches after this instant are
// legitimate.
func (rt *Runtime) clearPreempted(node string) {
	if !rt.preempted[node] {
		return
	}
	delete(rt.preempted, node)
	now := rt.Eng.Now()
	for i := len(rt.preemptRecs) - 1; i >= 0; i-- {
		rec := rt.preemptRecs[i]
		if rec.Node == node && rec.ClearedAt == 0 {
			rec.ClearedAt = now
			break
		}
	}
}
