package spark

import (
	"fmt"
	"sort"

	"rupam/internal/executor"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// This file is the driver's fault-tolerance layer: heartbeat-timeout
// executor-loss detection, map-output loss with parent-stage resubmission
// (Spark's FetchFailed/DAGScheduler rollback), failure counting into the
// blacklist, and bounded retries escalating to a structured job abort. It
// is entirely event-driven off the same virtual clock as the rest of the
// simulation; with no faults injected none of it ever observes a missing
// heartbeat, so runs without a fault schedule are unchanged.

// ExecutorLossAware is an optional Scheduler capability: schedulers that
// keep per-node state (offer queues, in-flight counts, best-node locks)
// implement it to purge a lost node.
type ExecutorLossAware interface {
	ExecutorLost(node string)
}

// AbortError is the structured failure a run ends with when a task exceeds
// its retry budget — Spark's "Task failed N times, aborting job".
type AbortError struct {
	App      string
	Job      int
	Stage    int
	Task     int
	Failures int
	Reason   string
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("spark: app %q job %d: %s in stage %d failed %d times (%s); aborting job",
		e.App, e.Job, fmt.Sprintf("task %d", e.Task), e.Stage, e.Failures, e.Reason)
}

// armWatchdog schedules the periodic heartbeat-timeout check. It runs at
// the heartbeat interval whether or not faults are injected; with every
// node reporting on time it observes nothing and changes nothing.
func (rt *Runtime) armWatchdog() {
	rt.wdTimer = rt.Eng.Schedule(rt.Cfg.HeartbeatInterval, func() {
		if rt.appDone {
			return
		}
		rt.checkHeartbeats()
		rt.armWatchdog()
	})
}

// checkHeartbeats declares executors lost when their last report is older
// than HeartbeatTimeout (spark.network.timeout in miniature).
func (rt *Runtime) checkHeartbeats() {
	now := rt.Eng.Now()
	for _, n := range rt.Clu.Nodes {
		name := n.Name()
		if rt.lostExecs[name] {
			continue
		}
		if now-rt.lastHB[name] > rt.Cfg.HeartbeatTimeout {
			rt.executorLost(name, "heartbeat timeout")
		}
	}
}

// noteHeartbeat records a node's report and re-registers a previously lost
// executor that is reporting again (recovered node, or a heartbeat-loss
// window closing).
func (rt *Runtime) noteHeartbeat(node string) {
	if ex := rt.Execs[node]; ex != nil && ex.Incarnation != rt.lastInc[node] {
		// The node crashed and restarted between two heartbeats — faster
		// than the timeout watchdog could notice, so its attempt deaths
		// were silent. Real Spark sees the restart as a new executor ID
		// registering and reaps the old one's state; do the same before
		// accepting the report.
		rt.lastInc[node] = ex.Incarnation
		rt.wlog.Append(wal.Record{Kind: wal.KindExecIncarnation, Node: node, Inc: ex.Incarnation})
		rt.executorLost(node, "executor restarted")
	}
	rt.lastHB[node] = rt.Eng.Now()
	if rt.lostExecs[node] {
		delete(rt.lostExecs, node)
		rt.ExecutorsRejoined++
		rt.Cfg.Tracer.ExecutorRejoined(node)
		rt.wlog.Append(wal.Record{Kind: wal.KindExecRejoined, Node: node})
		// A rejoined preempted node is a fresh instance the elastic substrate
		// re-acquired: lift the preemption fence before re-deriving state.
		rt.clearPreempted(node)
		// A rejoined node may restore locality levels the pending stages
		// gave up on; let the scheduler re-derive its delay state.
		rt.notifyExecutorSetChanged()
	}
}

// executorLost is the driver's reaction to a dead (or unreachable) node:
// purge it from the scheduler, fail its in-flight attempts, roll back the
// map outputs it held (resubmitting the parent tasks that produced them),
// and fetch-fail every running attempt that was streaming shuffle data
// from it.
func (rt *Runtime) executorLost(node string, reason string) {
	if rt.appDone || rt.lostExecs[node] {
		return
	}
	rt.lostExecs[node] = true
	rt.ExecutorsLost++
	rt.Cfg.Tracer.ExecutorLost(node, reason)
	rt.wlog.Append(wal.Record{Kind: wal.KindExecLost, Node: node, Reason: reason})

	if ela, ok := rt.sched.(ExecutorLossAware); ok {
		ela.ExecutorLost(node)
	}
	rt.notifyExecutorSetChanged()

	// Decide fetch redirection before the rollback wipes the stage maps: a
	// preempted node whose still-needed shuffle outputs were all relocated
	// during the grace window leaves its in-flight readers a healthy home
	// to re-source from, so their fetches need not fail at all.
	redirectTo := ""
	if rt.preempted[node] {
		redirectTo = rt.drainRedirectTarget(node)
	}

	// Map-output rollback first, so the launch gates below already see the
	// parent stages as incomplete when attempts start getting resubmitted.
	rt.rollbackOutputs(node)

	// Fail the node's in-flight attempts. A fail-stopped executor already
	// killed them silently (the driver only now finds out); for a mere
	// heartbeat loss they are genuinely still running and are killed here,
	// matching the driver's view that the node is gone.
	for _, r := range rt.attemptsOn(node) {
		r.Kill(false)
		rt.onTaskEnd(r, executor.Lost)
	}

	// Attempts mid-fetch from the lost node's shuffle files: when the
	// source executor is confirmed dead (fail-stopped, down, or seen
	// restarting under a new incarnation) the connection is refused and
	// the fetch escalates to FetchFailed immediately, as before. When the
	// node merely stopped heartbeating — a driver-side partition, the
	// process may well be alive and still serving shuffle blocks — the
	// driver instead re-checks the fetch a bounded number of times with
	// deterministic backoff, escalating only if the source is still gone.
	confirmed := true
	if ex := rt.Execs[node]; ex != nil && !ex.Down() && !ex.FailStopped() &&
		reason != "executor restarted" && rt.Cfg.FetchRetries > 0 {
		confirmed = false
	}
	for _, r := range rt.runningSorted() {
		if !r.FetchingFrom(node) {
			continue
		}
		if redirectTo != "" && r.RedirectFetch(node, redirectTo) {
			// The blocks this attempt was streaming have live relocated
			// copies: the read resumes from the new home mid-transfer, the
			// way a block-manager decommission hands readers its replicas.
			rt.DrainFetchRedirects++
			continue
		}
		if confirmed {
			r.FailFetch() // fires onTaskEnd(FetchFailed) via onDone
		} else {
			rt.deferFetchFailure(r, node, 1)
		}
	}
	rt.reschedule()
}

// deferFetchFailure arms re-check number attempt of a shuffle fetch from a
// slow-but-alive source. At each firing: a fetch that completed, moved on,
// or whose source rejoined needs nothing; a source meanwhile confirmed
// dead escalates at once; otherwise the next re-check is armed until the
// budget (Cfg.FetchRetries) is spent and the fetch fails over to the
// rollback path.
func (rt *Runtime) deferFetchFailure(r *executor.Run, node string, attempt int) {
	rt.Eng.Schedule(rt.Cfg.FetchRetryBackoff*float64(attempt), func() {
		if rt.appDone || r.Done() || !r.FetchingFrom(node) {
			return
		}
		if !rt.lostExecs[node] {
			return // the source rejoined; let the fetch finish
		}
		ex := rt.Execs[node]
		if ex == nil || ex.Down() || ex.FailStopped() || attempt >= rt.Cfg.FetchRetries {
			r.FailFetch()
			return
		}
		rt.deferFetchFailure(r, node, attempt+1)
	})
}

// attemptsOn returns the live attempts placed on node, in task-ID order.
func (rt *Runtime) attemptsOn(node string) []*executor.Run {
	var rs []*executor.Run
	for _, r := range rt.runningSorted() {
		if r.Metrics().Executor == node {
			rs = append(rs, r)
		}
	}
	return rs
}

// runningSorted returns every live attempt in deterministic (task ID, then
// launch) order.
func (rt *Runtime) runningSorted() []*executor.Run {
	ids := make([]int, 0, len(rt.runningAtt))
	for id, rs := range rt.runningAtt {
		if len(rs) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var out []*executor.Run
	for _, id := range ids {
		out = append(out, rt.runningAtt[id]...)
	}
	return out
}

// rollbackOutputs implements the DAGScheduler's response to losing a
// node's shuffle files: every current-job stage whose output is still
// needed forgets the map outputs it had on the node, and the tasks that
// produced them go back to pending. Children are processed before parents
// so that a child's rollback marks its parents as needed again.
func (rt *Runtime) rollbackOutputs(node string) {
	job := rt.app.Jobs[rt.jobIdx]
	stages := append([]*task.Stage(nil), job.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].ID > stages[j].ID })
	for _, st := range stages {
		if !rt.outputsNeeded(st, job) {
			continue
		}
		lost := st.LoseNodeOutputs(node)
		if len(lost) == 0 {
			continue
		}
		if rt.submitted[st.ID] {
			rt.activeStages[st.ID] = st
		}
		for _, idx := range lost {
			rt.wlog.Append(wal.Record{Kind: wal.KindOutputLost, Stage: st.ID, Index: idx, Node: node})
			t := st.TaskByIndex(idx)
			if t == nil || t.State != task.Finished {
				continue
			}
			t.State = task.Pending
			rt.resolveCacheLocation(t)
			rt.Resubmissions++
			rt.resubmits[t.ID]++
			rt.Cfg.Tracer.TaskQueued(t.ID)
			rt.wlog.Append(wal.Record{Kind: wal.KindTaskRolledBack, Task: t.ID, Stage: st.ID})
			rt.sched.Resubmit(t, st)
		}
	}
}

// outputsNeeded reports whether st's shuffle output can still be read: the
// stage itself is incomplete (it will be read once done) or some dependent
// stage has not finished consuming it.
func (rt *Runtime) outputsNeeded(st *task.Stage, job *task.Job) bool {
	if !st.IsComplete() {
		return true
	}
	for _, c := range job.Stages {
		for _, p := range c.Parent {
			if p == st && !c.IsComplete() {
				return true
			}
		}
	}
	return false
}

// noteTaskFailure counts a genuine attempt failure (OOM, executor loss, or
// fetch failure — never a deliberate kill) against the retry budget and
// the blacklist, aborting the job when the budget is exhausted.
func (rt *Runtime) noteTaskFailure(t *task.Task, st *task.Stage, r *executor.Run, out executor.Outcome) {
	if out == executor.Lost && rt.preempted[r.Metrics().Executor] {
		// An announced spot reclamation killed the attempt. The cloud took
		// the instance back; neither the task nor the node did anything
		// wrong, so the loss charges neither the retry budget nor the
		// blacklist — a task preempted arbitrarily many times still runs.
		rt.PreemptLossesUncharged++
		return
	}
	rt.failCount[t.ID]++
	if rt.bl != nil && out != executor.FetchFailed {
		// A fetch failure blames the dead source, not the node the attempt
		// ran on; the source is already being handled as an executor loss.
		if activated, until := rt.bl.noteFailure(t.ID, r.Metrics().Executor); activated {
			rt.wlog.Append(wal.Record{Kind: wal.KindBlacklistAdd,
				Node: r.Metrics().Executor, Until: until})
		}
	}
	if rt.Cfg.TaskMaxFailures > 0 && rt.failCount[t.ID] >= rt.Cfg.TaskMaxFailures {
		rt.abortJob(t, st, out.String())
	}
}

// abortJob ends the application with a structured error instead of letting
// a doomed task retry forever: running attempts are killed, and Run
// returns a Result carrying the AbortError.
func (rt *Runtime) abortJob(t *task.Task, st *task.Stage, reason string) {
	if rt.appDone {
		return
	}
	rt.aborted = &AbortError{
		App:      rt.app.Name,
		Job:      rt.jobIdx,
		Stage:    st.ID,
		Task:     t.ID,
		Failures: rt.failCount[t.ID],
		Reason:   reason,
	}
	t.State = task.Failed
	rt.Cfg.Tracer.JobAborted(rt.aborted.Error())
	rt.wlog.Append(wal.Record{Kind: wal.KindJobAborted, Job: rt.jobIdx, Task: t.ID,
		Stage: st.ID, Reason: reason})
	for _, r := range rt.runningSorted() {
		r.Kill(false)
	}
	rt.runningAtt = make(map[int][]*executor.Run)
	rt.finishApp()
}

// ResubmitCount returns how many times the task was sent back to pending
// by a map-output rollback. Each rollback legitimately adds one more
// successful attempt to the task's history, which the chaos invariant
// checker must not mistake for a double-counted completion.
func (rt *Runtime) ResubmitCount(taskID int) int { return rt.resubmits[taskID] }

// DuplicateSuccessCount reports how many redundant successes of the task
// recovery drained from the orphan buffer: a speculative race whose copies
// all completed while the driver was down yields one successful attempt
// per copy, of which the driver counts exactly one. The invariant battery
// uses this to license the extra attempt-level successes without loosening
// its at-most-one bound for live-driver execution.
func (rt *Runtime) DuplicateSuccessCount(taskID int) int { return rt.dupSuccess[taskID] }

// TaskBlockedOn reports whether the blacklist forbids launching the task
// on node; schedulers consult it when picking placements.
func (rt *Runtime) TaskBlockedOn(taskID int, node string) bool {
	return rt.bl != nil && rt.bl.taskBlocked(taskID, node)
}

// StageReady reports whether every parent of st is complete — false while
// a rollback is recomputing lost map outputs. Launch refuses tasks of
// unready stages; schedulers use this to skip them cheaply.
func (rt *Runtime) StageReady(st *task.Stage) bool {
	for _, p := range st.Parent {
		if !p.IsComplete() {
			return false
		}
	}
	return true
}
