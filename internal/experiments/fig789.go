package experiments

import (
	"fmt"
	"io"

	"rupam/internal/metrics"
	"rupam/internal/stats"
)

// Fig7Workloads are the representative workloads of the breakdown and
// utilization studies: one per category (ML, database, graph).
var Fig7Workloads = []string{"LR", "SQL", "PR"}

// Fig7Row is one workload × scheduler breakdown.
type Fig7Row struct {
	Workload  string
	Scheduler string
	Breakdown metrics.Breakdown
}

// Fig7Result is the Figure 7 dataset.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 reproduces Figure 7: execution-time decomposition into GC,
// compute, scheduler delay, shuffle-disk and shuffle-net for LR, SQL and
// PR under both schedulers.
func Fig7(seed uint64) Fig7Result {
	if seed == 0 {
		seed = 1
	}
	var res Fig7Result
	for _, w := range Fig7Workloads {
		for _, sch := range []string{SchedSpark, SchedRUPAM} {
			r := Run(RunSpec{Workload: w, Scheduler: sch, Seed: seed})
			res.Rows = append(res.Rows, Fig7Row{
				Workload:  w,
				Scheduler: sch,
				Breakdown: metrics.AppBreakdown(r.App),
			})
		}
	}
	return res
}

// Row returns the breakdown for a workload × scheduler pair.
func (r Fig7Result) Row(workload, scheduler string) (Fig7Row, bool) {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Scheduler == scheduler {
			return row, true
		}
	}
	return Fig7Row{}, false
}

// Print writes the figure as a table (task-seconds per category).
func (r Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: execution-time breakdown (summed task-seconds)")
	fmt.Fprintf(w, "%-10s %-7s %10s %10s %10s %12s %12s\n",
		"workload", "sched", "compute", "GC", "sched", "shuffle-disk", "shuffle-net")
	for _, row := range r.Rows {
		b := row.Breakdown
		fmt.Fprintf(w, "%-10s %-7s %10.1f %10.1f %10.2f %12.1f %12.1f\n",
			row.Workload, row.Scheduler, b.Compute, b.GC, b.Scheduler, b.ShuffleDisk, b.ShuffleNet)
	}
}

// ---- Figure 8 ---------------------------------------------------------------

// Fig8Row is one workload × scheduler average-utilization entry.
type Fig8Row struct {
	Workload  string
	Scheduler string
	Util      metrics.UtilSummary
}

// Fig8Result is the Figure 8 dataset.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 reproduces Figure 8: average CPU user %, memory GB, network MB/s
// and disk KB/s across the cluster's nodes during LR, SQL and PR.
// Expected shape: RUPAM lowers CPU/network/disk contention but raises
// memory usage (dynamic executor sizing uses each node's full memory).
func Fig8(seed uint64) Fig8Result {
	if seed == 0 {
		seed = 1
	}
	var res Fig8Result
	for _, w := range Fig7Workloads {
		for _, sch := range []string{SchedSpark, SchedRUPAM} {
			r := Run(RunSpec{Workload: w, Scheduler: sch, Seed: seed, Trace: true})
			res.Rows = append(res.Rows, Fig8Row{
				Workload:  w,
				Scheduler: sch,
				Util:      metrics.AvgUtilization(r.Trace),
			})
		}
	}
	return res
}

// Row returns the utilization for a workload × scheduler pair.
func (r Fig8Result) Row(workload, scheduler string) (Fig8Row, bool) {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Scheduler == scheduler {
			return row, true
		}
	}
	return Fig8Row{}, false
}

// Print writes the figure as a table.
func (r Fig8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: average system utilization across nodes")
	fmt.Fprintf(w, "%-10s %-7s %12s %12s %12s %12s\n",
		"workload", "sched", "CPU user %", "mem (GB)", "net (MB/s)", "disk (KB/s)")
	for _, row := range r.Rows {
		u := row.Util
		fmt.Fprintf(w, "%-10s %-7s %12.1f %12.2f %12.1f %12.0f\n",
			row.Workload, row.Scheduler, u.CPUUserPct, u.MemUsedGB, u.NetMBps, u.DiskKBps)
	}
}

// ---- Figure 9 ---------------------------------------------------------------

// Fig9Result holds the cross-node utilization spread of PageRank under
// both schedulers, plus their time-averaged summaries.
type Fig9Result struct {
	Spark metrics.BalanceSeries
	RUPAM metrics.BalanceSeries

	SparkAvg, RUPAMAvg BalanceAvg
}

// BalanceAvg is the time-average of a balance series.
type BalanceAvg struct {
	CPU  float64 // stddev of CPU util, percentage points
	Net  float64 // stddev of node network rate, MB/s
	Disk float64 // stddev of node disk rate, MB/s
}

func avgBalance(b metrics.BalanceSeries) BalanceAvg {
	return BalanceAvg{
		CPU:  stats.Mean(b.CPU),
		Net:  stats.Mean(b.Net),
		Disk: stats.Mean(b.Disk),
	}
}

// Fig9 reproduces Figure 9: standard deviation of per-node utilization
// over time for PageRank. Expected shape: RUPAM keeps a lower, more
// stable spread; Spark shows spikes during the shuffle-heavy late stages.
func Fig9(seed uint64) Fig9Result {
	if seed == 0 {
		seed = 1
	}
	spark := Run(RunSpec{Workload: "PR", Scheduler: SchedSpark, Seed: seed, Trace: true})
	rupam := Run(RunSpec{Workload: "PR", Scheduler: SchedRUPAM, Seed: seed, Trace: true})
	res := Fig9Result{
		Spark: metrics.NodeBalance(spark.Trace),
		RUPAM: metrics.NodeBalance(rupam.Trace),
	}
	res.SparkAvg = avgBalance(res.Spark)
	res.RUPAMAvg = avgBalance(res.RUPAM)
	return res
}

// Print writes the summary and a coarse series.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: stddev of node utilization during PageRank (time-avg)")
	fmt.Fprintf(w, "%-7s %10s %12s %12s\n", "sched", "CPU (pp)", "net (MB/s)", "disk (MB/s)")
	fmt.Fprintf(w, "%-7s %10.1f %12.1f %12.1f\n", "spark", r.SparkAvg.CPU, r.SparkAvg.Net, r.SparkAvg.Disk)
	fmt.Fprintf(w, "%-7s %10.1f %12.1f %12.1f\n", "rupam", r.RUPAMAvg.CPU, r.RUPAMAvg.Net, r.RUPAMAvg.Disk)
	fmt.Fprintln(w, "series (every 10th sample): t  cpuSD[spark/rupam]  netSD  diskSD")
	n := len(r.Spark.Times)
	if m := len(r.RUPAM.Times); m < n {
		n = m
	}
	for i := 0; i < n; i += 10 {
		fmt.Fprintf(w, "  t=%6.1f  cpu %5.1f/%5.1f  net %7.1f/%7.1f  disk %6.1f/%6.1f\n",
			r.Spark.Times[i],
			r.Spark.CPU[i], r.RUPAM.CPU[i],
			r.Spark.Net[i], r.RUPAM.Net[i],
			r.Spark.Disk[i], r.RUPAM.Disk[i])
	}
}
