package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/streaming"
)

// The streaming experiment: seeded operator topologies run fault-free to
// quiescence under each placement policy, on the heterogeneous Hydra
// testbed, with offered load tuned to exceed what a bad placement can
// sustain — so placement quality shows up directly as sustained sink
// throughput (backpressure throttles the sources of a misplaced
// topology) and as end-to-end record latency against the SLO.
//
// The gate is the paper's ordering, applied to mean sustained throughput
// across seeds: the RUPAM demand-vector placer ≥ the Storm-style
// resource-aware placer ≥ capability-blind round-robin.

// StreamingConfig parameterizes the sweep.
type StreamingConfig struct {
	// BaseSeed is the first topology seed; runs use BaseSeed..+Seeds-1.
	BaseSeed uint64
	// Seeds is the number of topologies per placer (default 5).
	Seeds int
	// Horizon is per-run source time in virtual seconds (default 90).
	Horizon float64
	// SLOMs is the end-to-end latency objective (default 2000 ms).
	SLOMs float64
}

func (c StreamingConfig) withDefaults() StreamingConfig {
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Seeds == 0 {
		// Single-seed orderings are hostage to one topology's shape;
		// five seeds is the smallest sweep where the placer means
		// separate from topology luck.
		c.Seeds = 5
	}
	if c.Horizon <= 0 {
		c.Horizon = 90
	}
	if c.SLOMs <= 0 {
		c.SLOMs = 2000
	}
	return c
}

// streamingTopo is the sweep's topology envelope, tuned so each placer
// tier has something to gain: parallelism is high enough (12–24) that
// the big hulk nodes can attain most demands, so aggregate-capacity
// awareness pays off against blind round-robin (which keeps walking hot
// operators onto the 14.4 Gcyc/s stack nodes); but a band of operators
// still exceeds what 1.0 GHz cores attain at their parallelism, which
// only the per-core-frequency-aware rupam placer routes to thor. Total
// offered load sits near the attainable capacity of a good placement,
// so misplacement backpressures the sources and shows up as throughput.
func streamingTopo() streaming.TopoConfig {
	return streaming.TopoConfig{
		Sources:   3,
		Layers:    4,
		WidthMin:  3,
		WidthMax:  4,
		RateMin:   4000,
		RateMax:   7000,
		CyclesMin: 2e-4,
		CyclesMax: 4.5e-4,
		SelMin:    0.6,
		SelMax:    1.05,
		ParMin:    12,
		ParMax:    24,
	}
}

// StreamingRun is one (placer, seed) outcome.
type StreamingRun struct {
	Placer       string  `json:"placer"`
	Seed         uint64  `json:"seed"`
	ThroughputHz float64 `json:"throughput_hz"`
	OfferedHz    float64 `json:"offered_hz"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	SLOAttain    float64 `json:"slo_attain"`
	Drained      bool    `json:"drained"`

	Violations []string `json:"violations,omitempty"`
}

// StreamingSummary aggregates one placer's runs.
type StreamingSummary struct {
	Placer         string  `json:"placer"`
	MeanThroughput float64 `json:"mean_throughput_hz"`
	MeanAttainFrac float64 `json:"mean_attained_fraction"`
	MeanP99Ms      float64 `json:"mean_p99_ms"`
	MeanSLOAttain  float64 `json:"mean_slo_attain"`
}

// StreamingResult is the sweep artifact the CLI gates on.
type StreamingResult struct {
	Config  StreamingConfig    `json:"config"`
	Runs    []StreamingRun     `json:"runs"`
	Summary []StreamingSummary `json:"summary"`
	// GateViolations are failures of the expected placer ordering, kept
	// separate from per-run invariant violations.
	GateViolations []string `json:"gate_violations,omitempty"`
	Violations     int      `json:"violations"`
}

// Streaming runs the sweep and checks the placement gate.
func Streaming(cfg StreamingConfig) *StreamingResult {
	cfg = cfg.withDefaults()
	res := &StreamingResult{Config: cfg}

	means := map[string]*StreamingSummary{}
	for _, placer := range streaming.PlacerNames {
		sum := &StreamingSummary{Placer: placer}
		means[placer] = sum
		for i := 0; i < cfg.Seeds; i++ {
			seed := cfg.BaseSeed + uint64(i)
			r := streaming.Run(streaming.Config{
				Seed:    seed,
				Placer:  placer,
				Topo:    streamingTopo(),
				Horizon: cfg.Horizon,
				Warmup:  cfg.Horizon / 6,
				SLOMs:   cfg.SLOMs,
			})
			run := StreamingRun{
				Placer:       placer,
				Seed:         seed,
				ThroughputHz: r.ThroughputHz,
				OfferedHz:    r.OfferedHz,
				P50Ms:        r.P50Ms,
				P99Ms:        r.P99Ms,
				SLOAttain:    r.SLOAttain,
				Drained:      r.Drained,
				Violations:   streaming.CheckInvariants(r),
			}
			res.Violations += len(run.Violations)
			res.Runs = append(res.Runs, run)
			sum.MeanThroughput += r.ThroughputHz / float64(cfg.Seeds)
			if r.OfferedHz > 0 {
				sum.MeanAttainFrac += r.ThroughputHz / r.OfferedHz / float64(cfg.Seeds)
			}
			sum.MeanP99Ms += r.P99Ms / float64(cfg.Seeds)
			sum.MeanSLOAttain += r.SLOAttain / float64(cfg.Seeds)
		}
		res.Summary = append(res.Summary, *sum)
	}

	// The gate: heterogeneity-aware placement must pay off in order.
	rupam := means["rupam"].MeanThroughput
	resource := means["resource"].MeanThroughput
	deflt := means["default"].MeanThroughput
	if rupam < resource {
		res.GateViolations = append(res.GateViolations, fmt.Sprintf(
			"rupam mean throughput %.1f Hz below resource-aware %.1f Hz", rupam, resource))
	}
	if resource < deflt {
		res.GateViolations = append(res.GateViolations, fmt.Sprintf(
			"resource-aware mean throughput %.1f Hz below default %.1f Hz", resource, deflt))
	}
	res.Violations += len(res.GateViolations)
	return res
}

// Print summarizes the sweep.
func (r *StreamingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "streaming placement sweep: %d seeds × %d placers\n",
		r.Config.Seeds, len(r.Summary))
	fmt.Fprintf(w, "%-9s %6s %12s %12s %9s %9s %7s\n",
		"placer", "seed", "thr(Hz)", "offered(Hz)", "p50(ms)", "p99(ms)", "slo")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-9s %6d %12.1f %12.1f %9.0f %9.0f %6.1f%%\n",
			run.Placer, run.Seed, run.ThroughputHz, run.OfferedHz,
			run.P50Ms, run.P99Ms, 100*run.SLOAttain)
		for _, v := range run.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(w, "\n%-9s %12s %10s %9s %7s\n", "placer", "mean thr", "attained", "p99(ms)", "slo")
	for _, s := range r.Summary {
		fmt.Fprintf(w, "%-9s %12.1f %9.1f%% %9.0f %6.1f%%\n",
			s.Placer, s.MeanThroughput, 100*s.MeanAttainFrac, s.MeanP99Ms, 100*s.MeanSLOAttain)
	}
	for _, v := range r.GateViolations {
		fmt.Fprintf(w, "GATE VIOLATION: %s\n", v)
	}
	if r.Violations == 0 {
		fmt.Fprintln(w, "placement gate holds: rupam >= resource-aware >= default")
	}
}

// WriteJSON writes the sweep artifact.
func (r *StreamingResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteThroughputCSV writes the per-run series for replotting.
func (r *StreamingResult) WriteThroughputCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "placer,seed,throughput_hz,offered_hz,p50_ms,p99_ms,slo_attain"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.3f,%.3f,%.3f,%.5f\n",
			run.Placer, run.Seed, run.ThroughputHz, run.OfferedHz,
			run.P50Ms, run.P99Ms, run.SLOAttain); err != nil {
			return err
		}
	}
	return nil
}
