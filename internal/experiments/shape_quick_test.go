package experiments

import (
	"fmt"
	"testing"
)

// TestQuickShapes prints one-seed speedups for calibration sessions; it is
// informational and never fails.
func TestQuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, w := range []string{"LR", "TeraSort", "SQL", "PR", "TC", "GM", "KMeans"} {
		sp := Run(RunSpec{Workload: w, Scheduler: SchedSpark, Seed: 2})
		ru := Run(RunSpec{Workload: w, Scheduler: SchedRUPAM, Seed: 2})
		fmt.Printf("%-9s spark=%7.1f (oom %2d) rupam=%7.1f (oom %2d) speedup=%.2fx\n",
			w, sp.Duration, sp.OOMs, ru.Duration, ru.OOMs, sp.Duration/ru.Duration)
	}
}
