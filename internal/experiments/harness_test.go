package experiments

import (
	"testing"

	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/workloads"
)

// runWithRuntime mirrors Run but hands the runtime back for white-box
// inspection.
func runWithRuntime(t *testing.T, spec RunSpec) (*spark.Result, *spark.Runtime) {
	t.Helper()
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := BuildCluster(eng, spec.Cluster)
	store := hdfs.NewStore(clu.NodeNames(), 2, spec.Seed*2654435761+1)
	p := spec.Params
	if p.Seed == 0 {
		p.Seed = spec.Seed*7 + 42
	}
	app := workloads.Build(spec.Workload, store, p)
	var sched spark.Scheduler
	if spec.Scheduler == SchedRUPAM {
		sched = core.New(spec.RUPAM)
	} else {
		sched = spark.NewDefaultScheduler()
	}
	cfg := spec.Spark
	cfg.Seed = spec.Seed*31 + 7
	if !spec.Trace && cfg.SampleInterval == 0 {
		cfg.SampleInterval = -1
	}
	rt := spark.NewRuntime(eng, clu, sched, cfg)
	return rt.Run(app), rt
}
