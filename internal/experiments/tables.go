package experiments

import (
	"fmt"
	"io"

	"rupam/internal/cluster"
	"rupam/internal/metrics"
	"rupam/internal/simx"
	"rupam/internal/sysbench"
	"rupam/internal/workloads"
)

// ---- Table II -------------------------------------------------------------

// TableII prints the Hydra node specifications.
func TableII(w io.Writer) {
	fmt.Fprintln(w, "Table II: Hydra cluster node specifications")
	fmt.Fprintf(w, "%-6s %6s %9s %8s %9s %5s %5s %3s\n",
		"name", "cores", "CPU(GHz)", "mem(GB)", "net(GbE)", "SSD", "GPU", "#")
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	cluster.NewHydra(clu)
	seen := map[string]bool{}
	for _, n := range clu.Nodes {
		s := n.Spec
		if seen[s.Class] {
			continue
		}
		seen[s.Class] = true
		fmt.Fprintf(w, "%-6s %6d %9.1f %8d %9.0f %5v %5d %3d\n",
			s.Class, s.Cores, s.FreqGHz, s.MemBytes/cluster.GB,
			s.NetBandwidth*8/1e9, s.SSD, s.GPUs, cluster.HydraCounts[s.Class])
	}
}

// ---- Table IV -------------------------------------------------------------

// TableIV prints the hardware-characterization benchmark results.
func TableIV(w io.Writer) {
	fmt.Fprintln(w, "Table IV: hardware characteristics benchmarks (simulated SysBench/Iperf)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %12s\n",
		"class", "CPU(sec)", "latency(ms)", "read(MB/s)", "write(MB/s)", "net(Mb/s)")
	for _, r := range sysbench.TableIV() {
		fmt.Fprintf(w, "%-8s %12.3f %12.3f %12.1f %12.1f %12.0f\n",
			r.Class, r.CPUSec, r.LatencyMS, r.ReadMBps, r.WriteMBps, r.NetMbps)
	}
}

// ---- Table V --------------------------------------------------------------

// Tab5Row is one workload's locality-level counts under both schedulers.
type Tab5Row struct {
	Workload string
	Spark    metrics.LocalityCounts
	RUPAM    metrics.LocalityCounts
}

// Tab5Result is the full Table V.
type Tab5Result struct {
	Rows []Tab5Row
}

// Tab5 reproduces Table V: the number of successful tasks at each data
// locality level. The expected shape: Spark holds more PROCESS_LOCAL
// tasks; RUPAM trades locality (more ANY) for resource fit; RACK_LOCAL is
// zero on the single-rack testbed.
func Tab5(seed uint64) Tab5Result {
	if seed == 0 {
		seed = 1
	}
	var res Tab5Result
	for _, w := range workloads.EvalNames() {
		spark := Run(RunSpec{Workload: w, Scheduler: SchedSpark, Seed: seed})
		rupam := Run(RunSpec{Workload: w, Scheduler: SchedRUPAM, Seed: seed})
		res.Rows = append(res.Rows, Tab5Row{
			Workload: w,
			Spark:    metrics.AppLocality(spark.App),
			RUPAM:    metrics.AppLocality(rupam.App),
		})
	}
	return res
}

// Print writes the table.
func (r Tab5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table V: tasks per locality level (successful attempts)")
	fmt.Fprintf(w, "%-10s | %8s %8s | %8s %8s | %8s %8s\n",
		"", "PROCESS", "", "NODE", "", "ANY", "")
	fmt.Fprintf(w, "%-10s | %8s %8s | %8s %8s | %8s %8s\n",
		"workload", "Spark", "RUPAM", "Spark", "RUPAM", "Spark", "RUPAM")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s | %8d %8d | %8d %8d | %8d %8d\n",
			row.Workload,
			row.Spark.Process, row.RUPAM.Process,
			row.Spark.Node, row.RUPAM.Node,
			row.Spark.Any, row.RUPAM.Any)
	}
}
