package experiments

import (
	"fmt"
	"io"

	"rupam/internal/workloads"
)

// Fig6Point is one iteration-count's speedup of RUPAM over default Spark
// on Logistic Regression.
type Fig6Point struct {
	Iterations int
	SparkSec   float64
	RUPAMSec   float64
	Speedup    float64
}

// Fig6Result is the Figure 6 series.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6Iterations is the default sweep of LR iteration counts.
var Fig6Iterations = []int{1, 2, 4, 6, 8, 12, 16, 20}

// Fig6 reproduces Figure 6: LR speedup as a function of the workload's
// iteration count — the paper's headline "up to 3.4×, growing with
// iterations; never worse than Spark".
func Fig6(iterations []int, seed uint64) Fig6Result {
	if len(iterations) == 0 {
		iterations = Fig6Iterations
	}
	if seed == 0 {
		seed = 1
	}
	var res Fig6Result
	for _, it := range iterations {
		p := workloads.Params{Iterations: it}
		spark := Run(RunSpec{Workload: "LR", Scheduler: SchedSpark, Params: p, Seed: seed})
		rupam := Run(RunSpec{Workload: "LR", Scheduler: SchedRUPAM, Params: p, Seed: seed})
		pt := Fig6Point{
			Iterations: it,
			SparkSec:   spark.Duration,
			RUPAMSec:   rupam.Duration,
		}
		if pt.RUPAMSec > 0 {
			pt.Speedup = pt.SparkSec / pt.RUPAMSec
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// MaxSpeedup returns the largest observed speedup.
func (r Fig6Result) MaxSpeedup() float64 {
	m := 0.0
	for _, p := range r.Points {
		if p.Speedup > m {
			m = p.Speedup
		}
	}
	return m
}

// Monotone reports whether speedup never drops below ~parity (the paper's
// "regardless of iterations, RUPAM is able to match or outperform").
func (r Fig6Result) Monotone() bool {
	for _, p := range r.Points {
		if p.Speedup < 0.95 {
			return false
		}
	}
	return true
}

// Print writes the figure as a table.
func (r Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: LR speedup vs iteration count")
	fmt.Fprintf(w, "%-12s %10s %10s %8s\n", "iterations", "Spark(s)", "RUPAM(s)", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12d %10.1f %10.1f %7.2fx\n", p.Iterations, p.SparkSec, p.RUPAMSec, p.Speedup)
	}
	fmt.Fprintf(w, "max speedup: %.2fx\n", r.MaxSpeedup())
}
