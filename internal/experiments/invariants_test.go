package experiments

import (
	"testing"

	"rupam/internal/chaos"
	"rupam/internal/task"
)

// TestRunInvariants drives representative workload × scheduler pairs and
// asserts the cross-cutting conservation properties the simulation must
// uphold regardless of policy.
func TestRunInvariants(t *testing.T) {
	cases := []RunSpec{
		{Workload: "LR", Scheduler: SchedRUPAM, Seed: 4},
		{Workload: "PR", Scheduler: SchedSpark, Seed: 4},
		{Workload: "KMeans", Scheduler: SchedRUPAM, Seed: 4},
		{Workload: "TC", Scheduler: SchedSpark, Seed: 4},
	}
	for _, spec := range cases {
		spec := spec
		t.Run(spec.Workload+"-"+spec.Scheduler, func(t *testing.T) {
			res := Run(spec)

			// Every task finished with exactly one successful attempt.
			for _, tk := range res.App.AllTasks() {
				if tk.State != task.Finished {
					t.Fatalf("%s not finished", tk)
				}
				succ := 0
				for _, a := range tk.Attempts {
					if !a.OOM && !a.Killed && a.End > 0 {
						succ++
					}
					// Every attempt's timeline is ordered.
					if a.End > 0 && (a.Start > a.End || a.Launch > a.Start+1e-9) {
						if !a.OOM && !a.Killed {
							t.Fatalf("%s: inconsistent attempt timeline %+v", tk, a)
						}
					}
					// Attempt times never exceed the app duration window.
					if a.End > res.Duration+1e-6 {
						t.Fatalf("%s: attempt ends after the app: %v > %v", tk, a.End, res.Duration)
					}
					// Phase times are non-negative.
					if a.ComputeTime < 0 || a.GCTime < 0 || a.ShuffleReadTime < 0 ||
						a.ShuffleWriteTime < 0 || a.SchedulerDelay < -1e-9 {
						t.Fatalf("%s: negative phase time %+v", tk, a)
					}
				}
				if succ != 1 {
					t.Fatalf("%s has %d successful attempts", tk, succ)
				}
			}

			// Job completion times are monotone and end at the app end.
			prev := 0.0
			for _, je := range res.JobEnds {
				if je < prev {
					t.Fatalf("job ends not monotone: %v", res.JobEnds)
				}
				prev = je
			}
			if len(res.JobEnds) != len(res.App.Jobs) {
				t.Fatalf("job ends = %d, jobs = %d", len(res.JobEnds), len(res.App.Jobs))
			}

			// Launch accounting: at least one attempt per task, and exactly
			// as many attempts as launches.
			attempts := 0
			for _, tk := range res.App.AllTasks() {
				attempts += len(tk.Attempts)
			}
			if attempts != res.Launches {
				t.Fatalf("attempts %d != launches %d", attempts, res.Launches)
			}
		})
	}
}

// TestResourceConservation verifies that after a run, no simulated
// resource is still held: heaps contain only cached bytes, GPUs are idle,
// and nothing is running. The checks themselves live in package chaos so
// the soak harness and this test can't drift apart.
func TestResourceConservation(t *testing.T) {
	// Use the harness pieces directly so the runtime's internals are
	// inspectable after completion.
	spec := RunSpec{Workload: "KMeans", Scheduler: SchedRUPAM, Seed: 6}
	res, rt := runWithRuntime(t, spec)
	for _, v := range chaos.CheckInvariants(res, rt) {
		t.Error(v)
	}
}
