package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFederationSweep runs a reduced scaling sweep and checks the claim
// the experiment exists to make: placement throughput grows monotonically
// with the driver count while makespan does not degrade beyond 5% of the
// single-driver baseline. Also checks the CSV artifact contract.
func TestFederationSweep(t *testing.T) {
	res := Federation(FederationConfig{BaseSeed: 1, Seeds: 3})
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations in fault-free sweep", res.Violations)
	}
	if want := 3 * len(res.Config.DriverCounts); len(res.Rows) != want {
		t.Fatalf("expected %d rows, got %d", want, len(res.Rows))
	}

	prev := 0.0
	for _, n := range res.Config.DriverCounts {
		rate := res.MeanRate(n)
		if rate <= prev {
			t.Errorf("placement rate not monotone: %d drivers at %.1f/s, previous level %.1f/s", n, rate, prev)
		}
		prev = rate
	}

	base := res.MeanMakespan(1)
	if base <= 0 {
		t.Fatal("no single-driver baseline")
	}
	for _, n := range res.Config.DriverCounts {
		if mk := res.MeanMakespan(n); mk > base*1.05 {
			t.Errorf("%d drivers: makespan %.1fs degrades >5%% over single-driver %.1fs", n, mk, base)
		}
	}

	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(res.Rows) {
		t.Fatalf("CSV row count: got %d lines, want %d", len(lines), 1+len(res.Rows))
	}
	wantCols := len(strings.Split(lines[0], ","))
	for _, ln := range lines[1:] {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Fatalf("ragged CSV row (%d cols, want %d): %s", got, wantCols, ln)
		}
	}

	// Churn column: every cell ran its agent-fault twin, every churn run
	// actually suffered agent crashes, and the envelope gate held.
	if len(res.ChurnRows) != len(res.Rows) {
		t.Fatalf("churn rows: got %d, want %d", len(res.ChurnRows), len(res.Rows))
	}
	for _, row := range res.ChurnRows {
		if row.AgentCrashes == 0 {
			t.Errorf("%d drivers seed %d: churn run saw no agent crash", row.Drivers, row.Seed)
		}
		if row.Resyncs == 0 {
			t.Errorf("%d drivers seed %d: churn run closed no resync", row.Drivers, row.Seed)
		}
	}
	if len(res.Gates) != 0 {
		t.Errorf("churn envelope gate failed: %v", res.Gates)
	}

	var churn bytes.Buffer
	if err := res.WriteChurnCSV(&churn); err != nil {
		t.Fatal(err)
	}
	clines := strings.Split(strings.TrimSpace(churn.String()), "\n")
	if len(clines) != 1+len(res.ChurnRows) {
		t.Fatalf("churn CSV row count: got %d lines, want %d", len(clines), 1+len(res.ChurnRows))
	}
	ccols := len(strings.Split(clines[0], ","))
	for _, ln := range clines[1:] {
		if got := len(strings.Split(ln, ",")); got != ccols {
			t.Fatalf("ragged churn CSV row (%d cols, want %d): %s", got, ccols, ln)
		}
	}
}

// TestFederationChurnGateTrips pins the gate's failure path: an envelope
// below 1.0 must trip (a faulted run cannot beat fault-free on average)
// and be counted as a violation.
func TestFederationChurnGateTrips(t *testing.T) {
	res := Federation(FederationConfig{
		BaseSeed: 1, Seeds: 1, DriverCounts: []int{2}, ChurnEnvelope: 0.01,
	})
	if len(res.Gates) == 0 {
		t.Fatal("0.01x envelope did not trip the churn gate")
	}
	if res.Violations == 0 {
		t.Fatal("tripped gate not counted as a violation")
	}
}

// TestFederationSweepDeterministic requires the whole JSON artifact to be
// byte-identical across invocations.
func TestFederationSweepDeterministic(t *testing.T) {
	cfg := FederationConfig{BaseSeed: 5, Seeds: 1, DriverCounts: []int{1, 2}}
	var a, b bytes.Buffer
	if err := Federation(cfg).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Federation(cfg).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("federation sweep artifact differs between identical invocations")
	}
}
