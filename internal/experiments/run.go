// Package experiments wires clusters, workloads and schedulers into the
// paper's evaluation: one driver per table and figure, each producing the
// same rows or series the paper reports. The cmd/rupam-bench binary and
// the repository's bench_test.go both call into this package.
package experiments

import (
	"fmt"
	"os"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/tracing"
	"rupam/internal/workloads"
)

// Schedulers evaluated throughout.
const (
	SchedSpark = "spark"
	SchedRUPAM = "rupam"
)

// RunSpec describes one simulated application run.
type RunSpec struct {
	// Workload is a package workloads name ("LR", "PR", ...).
	Workload string
	// Params overrides the workload's Table III defaults (zero fields
	// keep them).
	Params workloads.Params
	// Scheduler is SchedSpark or SchedRUPAM.
	Scheduler string
	// Cluster is "hydra" (default) or "motivation".
	Cluster string
	// Seed perturbs placement, skew and failure randomness — the paper's
	// five repetitions use five seeds.
	Seed uint64
	// RUPAM carries scheduler tunables/ablations for SchedRUPAM runs.
	RUPAM core.Config
	// Spark carries framework overrides (zero fields keep defaults).
	Spark spark.Config
	// Trace enables utilization recording (needed by Figures 2, 8, 9).
	Trace bool
	// Tracer, when non-nil, records structured events (task lifecycle,
	// scheduler decisions, faults) for export and critical-path analysis.
	Tracer *tracing.Collector
}

// BuildCluster constructs the named topology on a fresh engine.
func BuildCluster(eng *simx.Engine, name string) *cluster.Cluster {
	clu := cluster.New(eng)
	switch name {
	case "", "hydra":
		cluster.NewHydra(clu)
	case "motivation":
		cluster.NewMotivation(clu)
	default:
		panic(fmt.Sprintf("experiments: unknown cluster %q", name))
	}
	return clu
}

// Run executes one application under one scheduler on a fresh simulated
// cluster and returns the framework's result.
func Run(spec RunSpec) *spark.Result {
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := BuildCluster(eng, spec.Cluster)

	store := hdfs.NewStore(clu.NodeNames(), 2, spec.Seed*2654435761+1)
	p := spec.Params
	if p.Seed == 0 {
		p.Seed = spec.Seed*7 + 42
	}
	app := workloads.Build(spec.Workload, store, p)

	var sched spark.Scheduler
	switch spec.Scheduler {
	case SchedRUPAM:
		sched = core.New(spec.RUPAM)
	case "", SchedSpark:
		sched = spark.NewDefaultScheduler()
	default:
		panic(fmt.Sprintf("experiments: unknown scheduler %q", spec.Scheduler))
	}

	cfg := spec.Spark
	cfg.Seed = spec.Seed*31 + 7
	cfg.Tracer = spec.Tracer
	if !spec.Trace && cfg.SampleInterval == 0 {
		cfg.SampleInterval = -1 // disable tracing unless requested
	}
	rt := spark.NewRuntime(eng, clu, sched, cfg)
	return rt.Run(app)
}

// Repeat runs the spec with seeds 1..n (clearing all state between runs,
// as the paper clears DB_taskchar) and returns the durations.
func Repeat(spec RunSpec, n int) []float64 {
	durations := make([]float64, n)
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = uint64(i + 1)
		durations[i] = Run(s).Duration
	}
	return durations
}

// appOf rebuilds a spec's application without running it (task counts etc.).
func appOf(spec RunSpec) *task.Application {
	eng := simx.NewEngine()
	clu := BuildCluster(eng, spec.Cluster)
	store := hdfs.NewStore(clu.NodeNames(), 2, spec.Seed*2654435761+1)
	p := spec.Params
	if p.Seed == 0 {
		p.Seed = spec.Seed*7 + 42
	}
	return workloads.Build(spec.Workload, store, p)
}

// RunWithCharDB runs a RUPAM spec warm-started from (and saved back to)
// a persisted task-characteristics database file. It returns the run
// result and the number of records persisted. A missing file starts cold.
func RunWithCharDB(spec RunSpec, path string) (*spark.Result, int) {
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := BuildCluster(eng, spec.Cluster)
	store := hdfs.NewStore(clu.NodeNames(), 2, spec.Seed*2654435761+1)
	p := spec.Params
	if p.Seed == 0 {
		p.Seed = spec.Seed*7 + 42
	}
	app := workloads.Build(spec.Workload, store, p)

	sched := core.New(spec.RUPAM)
	if err := sched.DB().LoadFile(path); err != nil && !os.IsNotExist(err) {
		// A corrupt snapshot is not fatal: the characterization history is
		// a performance hint, so warn and start cold. SaveFile below writes
		// the replacement atomically.
		fmt.Fprintf(os.Stderr, "experiments: chardb %s unreadable (%v); starting cold\n", path, err)
		sched.DB().Clear()
	}

	cfg := spec.Spark
	cfg.Seed = spec.Seed*31 + 7
	cfg.Tracer = spec.Tracer
	if !spec.Trace && cfg.SampleInterval == 0 {
		cfg.SampleInterval = -1
	}
	rt := spark.NewRuntime(eng, clu, sched, cfg)
	res := rt.Run(app)

	if err := sched.DB().SaveFile(path); err != nil {
		panic(fmt.Sprintf("experiments: saving chardb %s: %v", path, err))
	}
	return res, sched.DB().RecordCount()
}
