package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/tenant"
	"rupam/internal/workloads"
)

// The tenancy experiment: N seeded open-loop arrival streams, each run
// once per scheduler on the shared cluster, reporting whole-system
// throughput (applications per hour), response-time percentiles that
// include admission-queue wait, and per-pool slowdown versus an isolated
// run of the same application — the price each tenant pays for sharing.

// TenancyConfig parameterizes the sweep.
type TenancyConfig struct {
	// BaseSeed is the first run seed; runs use BaseSeed..BaseSeed+Seeds-1.
	BaseSeed uint64
	// Seeds is the number of arrival streams per scheduler (default 5).
	Seeds int
	// Apps is the arrival count per stream (default 10).
	Apps int
	// MeanGap is the mean inter-arrival gap in seconds (default 30).
	MeanGap float64
}

func (c TenancyConfig) withDefaults() TenancyConfig {
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Seeds == 0 {
		c.Seeds = 5
	}
	if c.Apps == 0 {
		c.Apps = 10
	}
	if c.MeanGap == 0 {
		c.MeanGap = 30
	}
	return c
}

// TenancyResult is the sweep artifact: every run's full tenant report
// (pool slowdowns filled in) plus the violation total the CLI gates on.
type TenancyResult struct {
	Config     TenancyConfig    `json:"config"`
	Runs       []*tenant.Report `json:"runs"`
	Violations int              `json:"violations"`
}

// Tenancy runs the sweep. Slowdown baselines (one isolated run per
// scheduler × seed × workload) are shared across the sweep's runs.
func Tenancy(cfg TenancyConfig) *TenancyResult {
	cfg = cfg.withDefaults()
	res := &TenancyResult{Config: cfg}
	mix := tenant.DefaultMix()
	baselines := make(map[string]float64)

	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.BaseSeed + uint64(i)
		for _, sched := range []string{SchedSpark, SchedRUPAM} {
			m := tenant.NewManager(tenant.Config{
				Scheduler: sched,
				Seed:      seed,
				Arrivals:  tenant.ArrivalConfig{Count: cfg.Apps, MeanGap: cfg.MeanGap},
			})
			rep := m.Run()
			fillSlowdowns(rep, sched, seed, mix, baselines)
			res.Violations += len(rep.Violations)
			res.Runs = append(res.Runs, rep)
		}
	}
	return res
}

// fillSlowdowns computes each pool's mean(latency ÷ isolated duration)
// over its completed applications. The isolated baseline runs the exact
// same application plan (tenant.BuildApp) alone on an idle cluster under
// the same scheduler.
func fillSlowdowns(rep *tenant.Report, sched string, seed uint64,
	mix []tenant.AppMix, baselines map[string]float64) {
	params := make(map[string]workloads.Params, len(mix))
	for _, mx := range mix {
		params[mx.Workload] = mx.Params
	}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, a := range rep.Apps {
		if a.Rejected || a.Aborted != "" || a.EndAt == 0 {
			continue
		}
		key := fmt.Sprintf("%s/%d/%s", sched, seed, a.Workload)
		base, ok := baselines[key]
		if !ok {
			base = isolatedDuration(sched, seed, a.Workload, params[a.Workload])
			baselines[key] = base
		}
		if base <= 0 {
			continue
		}
		sums[a.Pool] += a.Latency / base
		counts[a.Pool]++
	}
	for i := range rep.Pools {
		if n := counts[rep.Pools[i].Name]; n > 0 {
			rep.Pools[i].MeanSlowdown = sums[rep.Pools[i].Name] / float64(n)
		}
	}
}

// isolatedDuration runs one application alone on a fresh cluster and
// returns its completion time — the denominator of the slowdown metric.
func isolatedDuration(scheduler string, seed uint64, workload string, p workloads.Params) float64 {
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	cluster.NewHydra(clu)
	app := tenant.BuildApp(clu, seed, workload, p, tenant.IDSpan)

	var sched spark.Scheduler
	if scheduler == SchedRUPAM {
		sched = core.New(core.Config{})
	} else {
		sched = spark.NewDefaultScheduler()
	}
	rt := spark.NewRuntime(eng, clu, sched, spark.Config{
		Seed:           seed*31 + 7,
		SampleInterval: -1,
	})
	return rt.Run(app).Duration
}

// WriteJSON writes the sweep as a deterministic, indented JSON artifact.
func (r *TenancyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WritePoolCSV writes one row per (scheduler, seed, pool) with the pool's
// throughput, latency percentiles and slowdown — the raw series behind
// the tenancy table.
func (r *TenancyResult) WritePoolCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scheduler,seed,pool,weight,min_share,arrived,admitted,rejected,completed,aborted,jobs_per_hour,p50_latency_s,p95_latency_s,p99_latency_s,mean_queue_wait_s,mean_slowdown"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		for _, p := range run.Pools {
			if _, err := fmt.Fprintf(w, "%s,%d,%s,%g,%d,%d,%d,%d,%d,%d,%.3f,%.2f,%.2f,%.2f,%.2f,%.3f\n",
				run.Scheduler, run.Seed, p.Name, p.Weight, p.MinShare,
				p.Arrived, p.Admitted, p.Rejected, p.Completed, p.Aborted,
				p.JobsPerHour, p.P50Latency, p.P95Latency, p.P99Latency,
				p.MeanQueueWait, p.MeanSlowdown); err != nil {
				return err
			}
		}
	}
	return nil
}

// Print summarizes the sweep: one line per run, then the per-pool
// aggregate table averaged over seeds.
func (r *TenancyResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Multi-tenant sweep: %d seeds x 2 schedulers, %d arrivals each (mean gap %.0fs)\n",
		r.Config.Seeds, r.Config.Apps, r.Config.MeanGap)
	fmt.Fprintf(w, "%-6s %5s %9s %4s %4s %4s %7s %8s %8s %8s\n",
		"sched", "seed", "makespan", "done", "rej", "abrt", "apps/h", "p50(s)", "p95(s)", "p99(s)")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-6s %5d %9.1f %4d %4d %4d %7.1f %8.1f %8.1f %8.1f\n",
			run.Scheduler, run.Seed, run.Makespan, run.Completed, run.Rejected,
			run.Aborted, run.JobsPerHour, run.P50Latency, run.P95Latency, run.P99Latency)
		for _, v := range run.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}

	// Per-pool aggregate over every run of a scheduler.
	type agg struct {
		jph, p50, p95, p99, wait, slow float64
		slowN, n                       int
	}
	pools := make(map[string]*agg)
	var order []string
	for _, run := range r.Runs {
		for _, p := range run.Pools {
			key := run.Scheduler + "/" + p.Name
			g := pools[key]
			if g == nil {
				g = &agg{}
				pools[key] = g
				order = append(order, key)
			}
			g.jph += p.JobsPerHour
			g.p50 += p.P50Latency
			g.p95 += p.P95Latency
			g.p99 += p.P99Latency
			g.wait += p.MeanQueueWait
			if p.MeanSlowdown > 0 {
				g.slow += p.MeanSlowdown
				g.slowN++
			}
			g.n++
		}
	}
	fmt.Fprintf(w, "\nper-pool means over %d seeds:\n", r.Config.Seeds)
	fmt.Fprintf(w, "%-18s %7s %8s %8s %8s %8s %9s\n",
		"sched/pool", "apps/h", "p50(s)", "p95(s)", "p99(s)", "wait(s)", "slowdown")
	for _, key := range order {
		g := pools[key]
		n := float64(g.n)
		slow := "-"
		if g.slowN > 0 {
			slow = fmt.Sprintf("%8.2fx", g.slow/float64(g.slowN))
		}
		fmt.Fprintf(w, "%-18s %7.1f %8.1f %8.1f %8.1f %8.1f %9s\n",
			key, g.jph/n, g.p50/n, g.p95/n, g.p99/n, g.wait/n, slow)
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 invariant violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
