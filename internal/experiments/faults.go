package experiments

import (
	"fmt"
	"io"

	"rupam/internal/faults"
	"rupam/internal/spark"
)

// FaultSchedule is the canonical fault plan for the fault-recovery
// experiment: a permanent fail-stop of a busy map-output holder mid-run
// (forcing FetchFailed → parent-stage resubmission), repeated crashes of a
// second node (feeding the blacklist), a degraded NIC window and a
// driver-side heartbeat partition (executor declared lost, then rejoining).
// The same schedule is applied to both schedulers, so the comparison is
// apples to apples.
func FaultSchedule() *faults.Schedule {
	return &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "thor2", At: 45},                              // permanent
		{Kind: faults.NodeCrash, Node: "hulk2", At: 30, Duration: 25},                // crash + recover
		{Kind: faults.NodeCrash, Node: "hulk2", At: 80, Duration: 25},                // again
		{Kind: faults.NICDegrade, Node: "thor3", At: 20, Duration: 40, Factor: 0.25}, // flaky link
		{Kind: faults.HeartbeatLoss, Node: "hulk1", At: 50, Duration: 12},            // partition > timeout
	}}
}

// FaultRow is one scheduler's outcome with and without the fault plan.
type FaultRow struct {
	Scheduler   string
	BaselineSec float64
	FaultedSec  float64
	// Overhead is FaultedSec/BaselineSec — how much the fault plan cost.
	Overhead float64

	ExecutorsLost     int
	ExecutorsRejoined int
	FetchFailures     int
	Resubmissions     int
	NodesBlacklisted  int
	FailStops         int
	Aborted           bool
}

// FaultResult is the fault-recovery experiment's output.
type FaultResult struct {
	Rows []FaultRow
}

// faultSpec is the common run shape: PageRank (shuffle-heavy, so map-output
// loss actually bites) on the Hydra testbed with fault tolerance armed.
func faultSpec(scheduler string, seed uint64, plan *faults.Schedule) RunSpec {
	return RunSpec{
		Workload:  "PR",
		Scheduler: scheduler,
		Seed:      seed,
		Spark: spark.Config{
			Faults:          plan,
			TaskMaxFailures: 12,
			Blacklist:       spark.BlacklistConfig{Enabled: true},
		},
	}
}

// FaultRecovery runs each scheduler twice — once fault-free, once under
// FaultSchedule — and reports completion times and recovery counters. Both
// runs keep blacklisting and bounded retries armed so the baseline measures
// the fault-tolerance machinery's overhead, not just its absence.
func FaultRecovery(seed uint64) FaultResult {
	if seed == 0 {
		seed = 1
	}
	var res FaultResult
	for _, sched := range []string{SchedSpark, SchedRUPAM} {
		base := Run(faultSpec(sched, seed, nil))
		faulted := Run(faultSpec(sched, seed, FaultSchedule()))
		row := FaultRow{
			Scheduler:         sched,
			BaselineSec:       base.Duration,
			FaultedSec:        faulted.Duration,
			ExecutorsLost:     faulted.ExecutorsLost,
			ExecutorsRejoined: faulted.ExecutorsRejoined,
			FetchFailures:     faulted.FetchFailures,
			Resubmissions:     faulted.Resubmissions,
			NodesBlacklisted:  faulted.NodesBlacklisted,
			FailStops:         faulted.FailStops,
			Aborted:           faulted.Aborted != nil,
		}
		if row.BaselineSec > 0 {
			row.Overhead = row.FaultedSec / row.BaselineSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Completed reports whether every faulted run finished instead of aborting.
func (r FaultResult) Completed() bool {
	for _, row := range r.Rows {
		if row.Aborted {
			return false
		}
	}
	return true
}

// Print writes the experiment as a table.
func (r FaultResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Fault recovery: PageRank under an identical fault plan (crash+recover,")
	fmt.Fprintln(w, "permanent loss of a map-output holder, degraded NIC, heartbeat partition)")
	fmt.Fprintf(w, "%-10s %10s %10s %9s %5s %7s %6s %7s %6s %6s\n",
		"scheduler", "clean(s)", "faulted(s)", "overhead", "lost", "rejoin", "fetch", "resub", "blist", "abort")
	for _, row := range r.Rows {
		abort := "no"
		if row.Aborted {
			abort = "YES"
		}
		fmt.Fprintf(w, "%-10s %10.1f %10.1f %8.2fx %5d %7d %6d %7d %6d %6s\n",
			row.Scheduler, row.BaselineSec, row.FaultedSec, row.Overhead,
			row.ExecutorsLost, row.ExecutorsRejoined, row.FetchFailures,
			row.Resubmissions, row.NodesBlacklisted, abort)
	}
	if r.Completed() {
		fmt.Fprintln(w, "all faulted runs completed (no aborts)")
	} else {
		fmt.Fprintln(w, "WARNING: at least one faulted run aborted")
	}
}
