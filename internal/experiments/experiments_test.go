package experiments

import (
	"strings"
	"testing"

	"rupam/internal/core"
	"rupam/internal/task"
	"rupam/internal/workloads"
)

func TestRunCompletesEveryWorkload(t *testing.T) {
	for _, w := range workloads.Names() {
		w := w
		t.Run(w, func(t *testing.T) {
			for _, sch := range []string{SchedSpark, SchedRUPAM} {
				res := Run(RunSpec{Workload: w, Scheduler: sch, Seed: 1})
				if res.Duration <= 0 {
					t.Fatalf("%s/%s: zero duration", w, sch)
				}
				for _, tk := range res.App.AllTasks() {
					if tk.State != task.Finished {
						t.Fatalf("%s/%s: %s unfinished", w, sch, tk)
					}
				}
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := RunSpec{Workload: "PR", Scheduler: SchedRUPAM, Seed: 3}
	if a, b := Run(spec).Duration, Run(spec).Duration; a != b {
		t.Fatalf("same spec differed: %v vs %v", a, b)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a := Run(RunSpec{Workload: "PR", Scheduler: SchedSpark, Seed: 1}).Duration
	b := Run(RunSpec{Workload: "PR", Scheduler: SchedSpark, Seed: 2}).Duration
	if a == b {
		t.Fatal("different seeds produced identical PR runs (failure randomness dead?)")
	}
}

func TestMotivationCluster(t *testing.T) {
	res := Run(RunSpec{Workload: "MatMul", Scheduler: SchedSpark, Cluster: "motivation", Seed: 1})
	if res.Duration <= 0 {
		t.Fatal("motivation run failed")
	}
}

func TestUnknownSchedulerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheduler accepted")
		}
	}()
	Run(RunSpec{Workload: "LR", Scheduler: "nope", Seed: 1})
}

func TestUnknownClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cluster accepted")
		}
	}()
	Run(RunSpec{Workload: "LR", Cluster: "nope", Seed: 1})
}

func TestRepeatUsesDistinctSeeds(t *testing.T) {
	ds := Repeat(RunSpec{Workload: "PR", Scheduler: SchedSpark}, 3)
	if len(ds) != 3 {
		t.Fatalf("durations = %v", ds)
	}
	if ds[0] == ds[1] && ds[1] == ds[2] {
		t.Fatal("repetitions identical; seeds not varied")
	}
}

// ---- paper-shape assertions -------------------------------------------------

func TestShapeFig6SpeedupGrowsWithIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig6([]int{1, 4, 12}, 1)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !res.Monotone() {
		t.Errorf("RUPAM fell below parity: %+v", res.Points)
	}
	if res.Points[2].Speedup <= res.Points[0].Speedup {
		t.Errorf("speedup did not grow with iterations: %+v", res.Points)
	}
	if res.MaxSpeedup() < 1.5 {
		t.Errorf("max speedup %.2f too small for 12 iterations", res.MaxSpeedup())
	}
}

func TestShapeTab5RackAlwaysZero(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Tab5(1)
	for _, row := range res.Rows {
		if row.Spark.Rack != 0 || row.RUPAM.Rack != 0 {
			t.Errorf("%s: RACK_LOCAL tasks on a single-rack cluster", row.Workload)
		}
		if row.Spark.Total() == 0 || row.RUPAM.Total() == 0 {
			t.Errorf("%s: empty locality counts", row.Workload)
		}
	}
}

func TestShapeFig9RupamBetterBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig9(1)
	if len(res.Spark.Times) == 0 || len(res.RUPAM.Times) == 0 {
		t.Fatal("empty balance series")
	}
	// The paper's claim: RUPAM keeps a lower average utilization spread
	// across nodes. CPU is the most robust of the three signals.
	if res.RUPAMAvg.CPU > res.SparkAvg.CPU*1.15 {
		t.Errorf("RUPAM CPU spread %.1f much worse than Spark %.1f",
			res.RUPAMAvg.CPU, res.SparkAvg.CPU)
	}
}

func TestShapeFig2PhasesPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig2(1)
	times, cpu, mem, ni, _, _, dw := res.ClusterSeries()
	if len(times) < 5 {
		t.Fatalf("trace too short: %d samples", len(times))
	}
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(cpu) < 20 {
		t.Error("no CPU activity in MatMul trace")
	}
	if maxOf(mem) <= 0 {
		t.Error("no memory footprint in MatMul trace")
	}
	if maxOf(ni) <= 0 {
		t.Error("no network traffic in MatMul trace")
	}
	if maxOf(dw) <= 0 {
		t.Error("no disk writes in MatMul trace")
	}
}

func TestShapeFig3SkewAndImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig3(1)
	if len(res.Rows) == 0 {
		t.Fatal("no task rows")
	}
	counts := res.NodeCounts()
	if len(counts) != 2 {
		t.Fatalf("tasks on %d nodes, want 2", len(counts))
	}
	if res.MaxSkew() < 2 {
		t.Errorf("intra-stage skew %.1fx too small to motivate the paper", res.MaxSkew())
	}
}

func TestShapeAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Ablations(1)
	if len(res.Rows) != len(ablationCases) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Seconds <= 0 {
			t.Errorf("%s/%s did not run", row.Variant, row.Workload)
		}
	}
}

func TestResFactorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := ResFactorSweep("LR", []float64{1.5, 3}, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.Variant, "res-factor-") || r.Seconds <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
}

func TestRUPAMConfigPlumbing(t *testing.T) {
	// An extreme ablation must change behavior measurably.
	full := Run(RunSpec{Workload: "PR", Scheduler: SchedRUPAM, Seed: 1}).Duration
	ablated := Run(RunSpec{
		Workload:  "PR",
		Scheduler: SchedRUPAM,
		Seed:      1,
		RUPAM:     core.Config{DisableMemAware: true},
	}).Duration
	if full == ablated {
		t.Fatal("DisableMemAware had no effect on PR")
	}
}
