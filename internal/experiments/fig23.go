package experiments

import (
	"fmt"
	"io"
	"sort"

	"rupam/internal/metrics"
	"rupam/internal/spark"
	"rupam/internal/workloads"
)

// Fig2Result is the §II-B motivation study: per-second utilization of the
// two-node cluster during a 4K×4K matrix multiplication.
type Fig2Result struct {
	Trace *metrics.Trace
}

// Fig2 reproduces Figure 2: run MatMul on the two-node motivation setup
// under default Spark and record utilization. Expected shape: an early
// CPU spike, memory ramping through the middle, network bursts at the
// beginning and end (block exchange + reduce), low disk reads with write
// bursts at shuffle boundaries.
func Fig2(seed uint64) Fig2Result {
	if seed == 0 {
		seed = 1
	}
	r := Run(RunSpec{
		Workload:  "MatMul",
		Scheduler: SchedSpark,
		Cluster:   "motivation",
		Seed:      seed,
		Trace:     true,
		// The block-exchange bursts last well under a second; sample fast
		// enough to catch them.
		Spark: spark.Config{SampleInterval: 0.25},
	})
	return Fig2Result{Trace: r.Trace}
}

// ClusterSeries averages the trace across the two nodes into one series
// per metric, matching the paper's single-line plots.
func (r Fig2Result) ClusterSeries() (times, cpu, memGB, netIn, netOut, diskR, diskW []float64) {
	n := r.Trace.Len()
	for i := 0; i < n; i++ {
		var c, m, ni, no, dr, dw, t float64
		for _, node := range r.Trace.Nodes {
			s := r.Trace.Series[node][i]
			t = s.Time
			c += s.CPU * 100
			m += s.MemGB
			ni += s.NetInMBps
			no += s.NetOutMBps
			dr += s.DiskReadMBps
			dw += s.DiskWriteMBps
		}
		k := float64(len(r.Trace.Nodes))
		times = append(times, t)
		cpu = append(cpu, c/k)
		memGB = append(memGB, m)
		netIn = append(netIn, ni)
		netOut = append(netOut, no)
		diskR = append(diskR, dr)
		diskW = append(diskW, dw)
	}
	return
}

// Print writes the three sub-figures as aligned columns.
func (r Fig2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: resource utilization, 4Kx4K matrix multiplication (2-node)")
	fmt.Fprintf(w, "%6s %8s %8s %9s %9s %9s %9s\n",
		"t(s)", "CPU(%)", "mem(GB)", "netIn", "netOut", "diskR", "diskW")
	times, cpu, mem, ni, no, dr, dw := r.ClusterSeries()
	for i := range times {
		fmt.Fprintf(w, "%6.0f %8.1f %8.2f %9.1f %9.1f %9.1f %9.1f\n",
			times[i], cpu[i], mem[i], ni[i], no[i], dr[i], dw[i])
	}
}

// ---- Figure 3 ---------------------------------------------------------------

// Fig3Result is the per-task breakdown of PageRank on the two-node
// heterogeneous setup under default Spark.
type Fig3Result struct {
	Rows []metrics.TaskRow
}

// Fig3 reproduces Figure 3: a 2 GB PageRank on node-1 (slow CPU, fast
// network) and node-2 (fast CPU, slow network) under default Spark,
// showing intra-stage task skew and Spark's obliviousness to it — compute
// -heavy tasks land on the slow-CPU node and shuffle-heavy tasks on the
// slow-network node.
func Fig3(seed uint64) Fig3Result {
	if seed == 0 {
		seed = 1
	}
	r := Run(RunSpec{
		Workload:  "PR",
		Scheduler: SchedSpark,
		Cluster:   "motivation",
		Params:    workloads.Params{InputGB: 2, Partitions: 16, Iterations: 1},
		Seed:      seed,
	})
	rows := metrics.TaskRows(r.App)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Executor != rows[j].Executor {
			return rows[i].Executor < rows[j].Executor
		}
		return rows[i].TaskID < rows[j].TaskID
	})
	return Fig3Result{Rows: rows}
}

// NodeCounts returns tasks per node (the paper observes an uneven 10/15
// split).
func (r Fig3Result) NodeCounts() map[string]int {
	counts := make(map[string]int)
	for _, row := range r.Rows {
		counts[row.Executor]++
	}
	return counts
}

// MaxSkew returns the ratio of the longest to the shortest task duration
// within the run (the paper observes up to ~31×... across nodes).
func (r Fig3Result) MaxSkew() float64 {
	minD, maxD := 0.0, 0.0
	for i, row := range r.Rows {
		if i == 0 || row.Duration < minD {
			minD = row.Duration
		}
		if row.Duration > maxD {
			maxD = row.Duration
		}
	}
	if minD <= 0 {
		return 0
	}
	return maxD / minD
}

// Print writes the per-task breakdown grouped by node.
func (r Fig3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: PageRank task breakdown on the 2-node motivation cluster (Spark)")
	fmt.Fprintf(w, "%-8s %6s %9s %9s %11s %11s %9s\n",
		"node", "task", "compute", "shuffle", "serialize", "scheduler", "duration")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %6d %9.2f %9.2f %11.2f %11.2f %9.2f\n",
			row.Executor, row.TaskID, row.Compute, row.Shuffle, row.Serialize,
			row.SchedDelay, row.Duration)
	}
	fmt.Fprintf(w, "tasks per node: %v   max/min duration skew: %.1fx\n",
		r.NodeCounts(), r.MaxSkew())
}
