package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/chaos"
	"rupam/internal/faults"
	"rupam/internal/spark"
	"rupam/internal/tenant"
)

// The elastic experiment: the same seeded arrival streams run under four
// instance-acquisition policies — all on-demand, a mixed fleet, a
// spot-heavy fleet with graceful drain, and the same spot-heavy fleet with
// preemption notices ignored — tracing out the cost-vs-makespan Pareto
// frontier. Fault plans are held identical across policies: one master
// reclamation plan is drawn per seed over the full spot pool and each
// policy sees exactly the events on its own spot nodes, so a cheaper
// policy is cheaper under the *same* provider behavior, not under a
// luckier draw.

// ElasticPolicy is one acquisition strategy in the sweep.
type ElasticPolicy struct {
	Name string `json:"name"`
	// SpotNodes is the policy's spot pool (subset of the master pool);
	// empty means everything is bought on-demand.
	SpotNodes []string `json:"spot_nodes"`
	// IgnoreNotices drops preemption warnings (the notice-blind baseline).
	IgnoreNotices bool `json:"ignore_notices,omitempty"`
}

// ElasticConfig parameterizes the sweep.
type ElasticConfig struct {
	// BaseSeed is the first run seed; runs use BaseSeed..BaseSeed+Seeds-1.
	BaseSeed uint64
	// Seeds is the number of arrival streams per (policy, scheduler)
	// (default 3).
	Seeds int
	// Apps is the arrival count per stream (default 4).
	Apps int
	// MeanGap is the mean inter-arrival gap in seconds (default 20).
	MeanGap float64
	// Policies overrides the default four-policy sweep.
	Policies []ElasticPolicy
}

func (c ElasticConfig) withDefaults() ElasticConfig {
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Seeds == 0 {
		// Per-seed makespans are dominated by placement luck (a narrow app
		// pinned on a slow node for a stage); five arrival streams per
		// (policy, scheduler) is the smallest sweep where the policy means
		// separate from that noise.
		c.Seeds = 5
	}
	if c.Apps == 0 {
		c.Apps = 4
	}
	if c.MeanGap == 0 {
		c.MeanGap = 20
	}
	if len(c.Policies) == 0 {
		c.Policies = DefaultElasticPolicies()
	}
	return c
}

// DefaultElasticPolicies is the shipped sweep: the frontier anchors
// (on-demand, spot-heavy) plus a mixed point, and the notice-blind
// spot-heavy baseline that isolates what the graceful drain buys.
func DefaultElasticPolicies() []ElasticPolicy {
	spot := chaos.DefaultSpotNodes()
	return []ElasticPolicy{
		{Name: "on-demand"},
		{Name: "mixed", SpotNodes: []string{"thor4", "hulk3", "stack2"}},
		{Name: "spot-heavy", SpotNodes: spot},
		{Name: "spot-heavy-ignore", SpotNodes: spot, IgnoreNotices: true},
	}
}

// ElasticRun is one (policy, scheduler, seed) outcome.
type ElasticRun struct {
	Policy    string  `json:"policy"`
	Scheduler string  `json:"scheduler"`
	Seed      uint64  `json:"seed"`
	Events    int     `json:"spot_events"`
	Makespan  float64 `json:"makespan_s"`
	Completed int     `json:"completed"`
	Aborted   int     `json:"aborted"`

	CloudCost       float64 `json:"cloud_cost"`
	Acquisitions    int     `json:"acquisitions"`
	Notices         int     `json:"notices"`
	Kills           int     `json:"kills"`
	DrainsCompleted int     `json:"drains_completed"`
	BlocksMoved     int     `json:"blocks_moved"`
	FetchRedirects  int     `json:"fetch_redirects"`
	LossesUncharged int     `json:"losses_uncharged"`

	Violations []string `json:"violations,omitempty"`
}

// ElasticSummary aggregates one policy's runs (means over all schedulers
// and seeds — one point of the Pareto frontier).
type ElasticSummary struct {
	Policy       string  `json:"policy"`
	MeanCost     float64 `json:"mean_cost"`
	MeanMakespan float64 `json:"mean_makespan_s"`
	Completed    int     `json:"completed"`
	Aborted      int     `json:"aborted"`
	Kills        int     `json:"kills"`
}

// ElasticResult is the sweep artifact the CLI gates on.
type ElasticResult struct {
	Config   ElasticConfig    `json:"config"`
	Runs     []ElasticRun     `json:"runs"`
	Frontier []ElasticSummary `json:"frontier"`
	// FrontierViolations are failures of the frontier's expected shape,
	// kept separate from per-run manager violations so the report shows
	// which layer failed.
	FrontierViolations []string `json:"frontier_violations,omitempty"`
	Violations         int      `json:"violations"`
}

// Elastic runs the sweep and checks the frontier's expected shape: the
// spot-heavy fleet must be strictly cheaper than all-on-demand, and under
// the identical spot plan the graceful drain must beat the notice-blind
// baseline on makespan without completing fewer applications.
func Elastic(cfg ElasticConfig) *ElasticResult {
	cfg = cfg.withDefaults()
	res := &ElasticResult{Config: cfg}

	masterPool := chaos.DefaultSpotNodes()
	hazards := chaos.SpotHazards(nil, masterPool)

	sums := make(map[string]*ElasticSummary)
	var order []string
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.BaseSeed + uint64(i)
		master := faults.SpotSchedule(seed, masterPool, hazards, chaos.PreemptGen())
		for _, pol := range cfg.Policies {
			plan := filterPlan(master, pol.SpotNodes)
			for _, sched := range []string{SchedSpark, SchedRUPAM} {
				run := runElastic(pol, sched, seed, plan, cfg)
				res.Violations += len(run.Violations)
				res.Runs = append(res.Runs, run)

				g := sums[pol.Name]
				if g == nil {
					g = &ElasticSummary{Policy: pol.Name}
					sums[pol.Name] = g
					order = append(order, pol.Name)
				}
				g.MeanCost += run.CloudCost
				g.MeanMakespan += run.Makespan
				g.Completed += run.Completed
				g.Aborted += run.Aborted
				g.Kills += run.Kills
			}
		}
	}
	n := float64(cfg.Seeds * 2)
	for _, name := range order {
		g := sums[name]
		g.MeanCost /= n
		g.MeanMakespan /= n
		res.Frontier = append(res.Frontier, *g)
	}

	res.checkFrontier(sums)
	return res
}

// runElastic executes one policy run on the elastic substrate.
func runElastic(pol ElasticPolicy, scheduler string, seed uint64,
	plan *faults.Schedule, cfg ElasticConfig) ElasticRun {
	run := ElasticRun{Policy: pol.Name, Scheduler: scheduler, Seed: seed,
		Events: len(plan.Events)}

	m := tenant.NewManager(tenant.Config{
		Scheduler: scheduler,
		Seed:      seed,
		Arrivals:  tenant.ArrivalConfig{Count: cfg.Apps, MeanGap: cfg.MeanGap},
		Faults:    plan,
		// Hardened like the chaos soaks: enough retry budget that the
		// notice-blind baseline pays for its charged losses in time, not in
		// aborts, and a tight heartbeat so it discovers kills promptly (the
		// fairest version of the baseline).
		Spark: spark.Config{
			TaskMaxFailures:        8,
			Blacklist:              spark.BlacklistConfig{Enabled: true},
			SpeculationMaxPerStage: 4,
			HeartbeatInterval:      0.5,
			HeartbeatTimeout:       4,
		},
		Elastic: tenant.ElasticConfig{
			Enabled:       true,
			SpotNodes:     pol.SpotNodes,
			IgnoreNotices: pol.IgnoreNotices,
		},
	})
	rep := m.Run()

	run.Makespan = rep.Makespan
	run.Completed = rep.Completed
	run.Aborted = rep.Aborted
	run.CloudCost = rep.CloudCost
	run.Acquisitions = rep.Acquisitions
	run.Notices, run.Kills = m.SpotEvents()
	run.Violations = append(run.Violations, rep.Violations...)
	for _, ar := range m.AppRuns() {
		run.DrainsCompleted += ar.Result.DrainsCompleted
		run.BlocksMoved += ar.Result.DrainBlocksMoved
		run.FetchRedirects += ar.Result.DrainFetchRedirects
		run.LossesUncharged += ar.Result.PreemptLossesUncharged
	}
	return run
}

// filterPlan restricts the master reclamation plan to the policy's spot
// nodes — the identical-provider-behavior guarantee across policies.
func filterPlan(master *faults.Schedule, spotNodes []string) *faults.Schedule {
	in := make(map[string]bool, len(spotNodes))
	for _, n := range spotNodes {
		in[n] = true
	}
	out := &faults.Schedule{}
	for _, ev := range master.Events {
		if in[ev.Node] {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// checkFrontier asserts the sweep's economic shape as violations on the
// result (the CLI exits nonzero on any).
func (r *ElasticResult) checkFrontier(sums map[string]*ElasticSummary) {
	od, sh, ig := sums["on-demand"], sums["spot-heavy"], sums["spot-heavy-ignore"]
	if od == nil || sh == nil || ig == nil {
		return // custom policy set; nothing structural to assert
	}
	violate := func(f string, args ...interface{}) {
		r.Violations++
		r.FrontierViolations = append(r.FrontierViolations, fmt.Sprintf(f, args...))
	}
	if sh.MeanCost >= od.MeanCost {
		violate("spot-heavy mean cost $%.4f not below on-demand $%.4f",
			sh.MeanCost, od.MeanCost)
	}
	if sh.MeanMakespan >= ig.MeanMakespan {
		violate("graceful drain mean makespan %.1fs not below notice-blind %.1fs under the same plan",
			sh.MeanMakespan, ig.MeanMakespan)
	}
	if sh.Completed < ig.Completed {
		violate("graceful drain completed %d apps, notice-blind completed %d",
			sh.Completed, ig.Completed)
	}
}

// WriteJSON writes the sweep as a deterministic, indented JSON artifact.
func (r *ElasticResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteParetoCSV writes one row per run — the raw series behind the
// cost-vs-makespan frontier plot.
func (r *ElasticResult) WriteParetoCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,scheduler,seed,spot_events,makespan_s,completed,aborted,cloud_cost,acquisitions,kills,drains_completed,blocks_moved,fetch_redirects,losses_uncharged"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.2f,%d,%d,%.6f,%d,%d,%d,%d,%d,%d\n",
			run.Policy, run.Scheduler, run.Seed, run.Events, run.Makespan,
			run.Completed, run.Aborted, run.CloudCost, run.Acquisitions,
			run.Kills, run.DrainsCompleted, run.BlocksMoved,
			run.FetchRedirects, run.LossesUncharged); err != nil {
			return err
		}
	}
	return nil
}

// Print summarizes the sweep: one line per run, the frontier table, and
// the verdict.
func (r *ElasticResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Elastic sweep: %d policies x 2 schedulers x %d seeds, %d arrivals each\n",
		len(r.Config.Policies), r.Config.Seeds, r.Config.Apps)
	fmt.Fprintf(w, "%-18s %-6s %5s %7s %9s %4s %4s %6s %9s %7s\n",
		"policy", "sched", "seed", "events", "makespan", "done", "abrt", "kills", "cost($)", "drains")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-18s %-6s %5d %7d %9.1f %4d %4d %6d %9.4f %7d\n",
			run.Policy, run.Scheduler, run.Seed, run.Events, run.Makespan,
			run.Completed, run.Aborted, run.Kills, run.CloudCost, run.DrainsCompleted)
		for _, v := range run.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(w, "\ncost-vs-makespan frontier (means over %d seeds x 2 schedulers):\n", r.Config.Seeds)
	fmt.Fprintf(w, "%-18s %10s %12s %5s %5s %6s\n", "policy", "cost($)", "makespan(s)", "done", "abrt", "kills")
	for _, s := range r.Frontier {
		fmt.Fprintf(w, "%-18s %10.4f %12.1f %5d %5d %6d\n",
			s.Policy, s.MeanCost, s.MeanMakespan, s.Completed, s.Aborted, s.Kills)
	}
	for _, v := range r.FrontierViolations {
		fmt.Fprintf(w, "FRONTIER VIOLATION: %s\n", v)
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
