package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamingGate runs the default sweep and requires the paper's
// placement ordering to hold on mean sustained throughput, with zero
// per-run invariant violations.
func TestStreamingGate(t *testing.T) {
	res := Streaming(StreamingConfig{})
	if res.Violations != 0 {
		var b bytes.Buffer
		res.Print(&b)
		t.Fatalf("streaming sweep violations:\n%s", b.String())
	}
	if len(res.Runs) != 15 {
		t.Fatalf("expected 5 seeds × 3 placers = 15 runs, got %d", len(res.Runs))
	}
	for _, run := range res.Runs {
		if !run.Drained {
			t.Errorf("%s/%d did not drain", run.Placer, run.Seed)
		}
		if run.ThroughputHz <= 0 {
			t.Errorf("%s/%d: zero throughput", run.Placer, run.Seed)
		}
	}
}

// TestStreamingArtifacts checks the JSON and CSV emitters round-trip the
// fields the CI plots consume.
func TestStreamingArtifacts(t *testing.T) {
	res := Streaming(StreamingConfig{Seeds: 1, Horizon: 40})
	var j bytes.Buffer
	if err := res.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"placer\": \"rupam\"", "\"mean_throughput_hz\""} {
		if !strings.Contains(j.String(), want) {
			t.Fatalf("JSON artifact missing %q:\n%s", want, j.String())
		}
	}
	var c bytes.Buffer
	if err := res.WriteThroughputCSV(&c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if len(lines) != 1+len(res.Runs) {
		t.Fatalf("CSV has %d lines, want header + %d runs", len(lines), len(res.Runs))
	}
	if lines[0] != "placer,seed,throughput_hz,offered_hz,p50_ms,p99_ms,slo_attain" {
		t.Fatalf("CSV header = %q", lines[0])
	}
}
