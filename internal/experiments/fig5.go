package experiments

import (
	"fmt"
	"io"

	"rupam/internal/stats"
	"rupam/internal/workloads"
)

// Fig5Row is one workload's entry in the overall-performance comparison:
// mean execution time with 95% confidence interval under each scheduler,
// over Runs repetitions with DB_taskchar cleared between runs (§IV-B).
type Fig5Row struct {
	Workload   string
	Spark      stats.Summary
	RUPAM      stats.Summary
	Speedup    float64 // Spark mean / RUPAM mean
	SparkOOMs  int
	RUPAMOOMs  int
	SparkCrash int
}

// Fig5Result is the full Figure 5 dataset.
type Fig5Result struct {
	Runs int
	Rows []Fig5Row
}

// Fig5 reproduces Figure 5: every Table III workload under default Spark
// and RUPAM, runs repetitions each.
func Fig5(runs int) Fig5Result {
	if runs <= 0 {
		runs = 5
	}
	res := Fig5Result{Runs: runs}
	for _, w := range workloads.EvalNames() {
		row := Fig5Row{Workload: w}
		var sparkT, rupamT []float64
		for i := 1; i <= runs; i++ {
			rs := Run(RunSpec{Workload: w, Scheduler: SchedSpark, Seed: uint64(i)})
			sparkT = append(sparkT, rs.Duration)
			row.SparkOOMs += rs.OOMs
			row.SparkCrash += rs.Crashes
			rr := Run(RunSpec{Workload: w, Scheduler: SchedRUPAM, Seed: uint64(i)})
			rupamT = append(rupamT, rr.Duration)
			row.RUPAMOOMs += rr.OOMs
		}
		row.Spark = stats.Summarize(sparkT)
		row.RUPAM = stats.Summarize(rupamT)
		if row.RUPAM.Mean > 0 {
			row.Speedup = row.Spark.Mean / row.RUPAM.Mean
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// AvgImprovement returns the mean fractional execution-time reduction
// across workloads (the paper reports 37.7%).
func (r Fig5Result) AvgImprovement() float64 {
	var sum float64
	for _, row := range r.Rows {
		if row.Spark.Mean > 0 {
			sum += 1 - row.RUPAM.Mean/row.Spark.Mean
		}
	}
	return sum / float64(len(r.Rows))
}

// IterativeSpeedup returns the mean speedup over the multi-iteration
// workloads (PR, LR, TC, KMeans).
func (r Fig5Result) IterativeSpeedup() float64 {
	iter := map[string]bool{"PR": true, "LR": true, "TC": true, "KMeans": true}
	var sum float64
	var n int
	for _, row := range r.Rows {
		if iter[row.Workload] {
			sum += row.Speedup
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Print writes the figure as a table.
func (r Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: overall performance (%d runs, mean ± 95%% CI, seconds)\n", r.Runs)
	fmt.Fprintf(w, "%-10s %14s %14s %8s %10s %10s\n",
		"workload", "Spark", "RUPAM", "speedup", "sparkOOMs", "rupamOOMs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %7.1f ±%5.1f %7.1f ±%5.1f %7.2fx %10d %10d\n",
			row.Workload,
			row.Spark.Mean, row.Spark.CI95,
			row.RUPAM.Mean, row.RUPAM.CI95,
			row.Speedup, row.SparkOOMs, row.RUPAMOOMs)
	}
	fmt.Fprintf(w, "average improvement: %.1f%%   iterative-workload speedup: %.2fx\n",
		r.AvgImprovement()*100, r.IterativeSpeedup())
}
