package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/cluster"
	"rupam/internal/faults"
	"rupam/internal/federation"
	"rupam/internal/simx"
)

// The federation experiment: the same homogeneous application load run
// under 1, 2 and 4 federated drivers on one shared cluster, fault-free.
// The claim of the sharded design is that placement throughput — commits
// per second of the busiest driver's serial dispatch time — scales with
// the driver count while makespan stays flat: the protocol distributes
// the dispatch bottleneck without costing schedule quality on a
// homogeneous load. A second, agent-churn column re-runs every (drivers,
// seed) cell under a pure agent-crash fault plan and gates its mean
// makespan within a tuned envelope of the fault-free mean — the
// robustness claim that losing and resyncing node agents costs bounded
// schedule quality.

// FederationConfig parameterizes the scaling sweep.
type FederationConfig struct {
	// BaseSeed is the first run seed; runs use BaseSeed..BaseSeed+Seeds-1.
	BaseSeed uint64
	// Seeds is the repetition count per driver level (default 3).
	Seeds int
	// DriverCounts are the federation sizes swept (default 1, 2, 4).
	DriverCounts []int
	// Apps is the application count per run (default 4).
	Apps int
	// ChurnEnvelope caps the mean makespan under agent churn at this
	// multiple of the fault-free mean, per driver count; exceeding it is a
	// violation (default 1.3).
	ChurnEnvelope float64
	// AgentCrashes is the number of agent kill points in each churn run's
	// fault plan (default 2); ChurnHorizon is the window they are drawn
	// from (default 60 — early enough that every crash lands mid-run at the
	// sweep's makespans).
	AgentCrashes int
	ChurnHorizon float64
}

func (c FederationConfig) withDefaults() FederationConfig {
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	if len(c.DriverCounts) == 0 {
		c.DriverCounts = []int{1, 2, 4}
	}
	if c.Apps == 0 {
		c.Apps = 4
	}
	if c.ChurnEnvelope <= 0 {
		c.ChurnEnvelope = 1.3
	}
	if c.AgentCrashes == 0 {
		c.AgentCrashes = 2
	}
	if c.ChurnHorizon <= 0 {
		c.ChurnHorizon = 60
	}
	return c
}

// FederationRow is one run's outcome.
type FederationRow struct {
	Drivers        int     `json:"drivers"`
	Seed           uint64  `json:"seed"`
	MakespanS      float64 `json:"makespan_s"`
	Commits        int     `json:"commits"`
	MaxBusySeconds float64 `json:"max_busy_s"`
	PlacementRate  float64 `json:"placement_rate"`
}

// FederationChurnRow is one agent-churn run's outcome, paired with its
// fault-free twin's makespan.
type FederationChurnRow struct {
	Drivers      int     `json:"drivers"`
	Seed         uint64  `json:"seed"`
	MakespanS    float64 `json:"makespan_s"`
	FaultFreeS   float64 `json:"fault_free_s"`
	AgentCrashes int     `json:"agent_crashes"`
	Resyncs      int     `json:"agent_resyncs"`
}

// FederationResult is the sweep artifact.
type FederationResult struct {
	Config    FederationConfig     `json:"config"`
	Rows      []FederationRow      `json:"rows"`
	ChurnRows []FederationChurnRow `json:"churn_rows"`
	// Gates records each failed churn-envelope check; every entry is also
	// counted in Violations.
	Gates      []string `json:"gates,omitempty"`
	Violations int      `json:"violations"`
}

// Federation runs the scaling sweep plus the agent-churn column: each
// (drivers, seed) cell runs twice, fault-free and under a pure
// agent-crash plan, and the churn means are gated against the envelope.
func Federation(cfg FederationConfig) *FederationResult {
	cfg = cfg.withDefaults()
	res := &FederationResult{Config: cfg}
	refClu := cluster.New(simx.NewEngine())
	cluster.NewHydra(refClu)
	nodes := refClu.NodeNames()
	for _, n := range cfg.DriverCounts {
		for i := 0; i < cfg.Seeds; i++ {
			seed := cfg.BaseSeed + uint64(i)
			r := federation.Run(federation.Config{
				Drivers: n,
				Apps:    cfg.Apps,
				Seed:    seed,
			})
			res.Violations += len(r.Violations)
			res.Rows = append(res.Rows, FederationRow{
				Drivers:        n,
				Seed:           seed,
				MakespanS:      r.Makespan,
				Commits:        r.Commits,
				MaxBusySeconds: r.MaxBusySeconds,
				PlacementRate:  r.PlacementRate,
			})

			plan := faults.RandomSchedule(seed, nodes, faults.GenConfig{
				Horizon:      cfg.ChurnHorizon,
				AgentCrashes: cfg.AgentCrashes,
			})
			cr := federation.Run(federation.Config{
				Drivers: n,
				Apps:    cfg.Apps,
				Seed:    seed,
				Faults:  plan,
			})
			res.Violations += len(cr.Violations)
			res.ChurnRows = append(res.ChurnRows, FederationChurnRow{
				Drivers:      n,
				Seed:         seed,
				MakespanS:    cr.Makespan,
				FaultFreeS:   r.Makespan,
				AgentCrashes: cr.AgentCrashes,
				Resyncs:      cr.Resyncs,
			})
		}
	}
	for _, n := range cfg.DriverCounts {
		free, churn := res.MeanMakespan(n), res.MeanChurnMakespan(n)
		if free <= 0 || churn <= 0 {
			continue
		}
		if churn > cfg.ChurnEnvelope*free {
			res.Gates = append(res.Gates, fmt.Sprintf(
				"%d drivers: churn makespan %.1fs exceeds %.2fx envelope of fault-free %.1fs",
				n, churn, cfg.ChurnEnvelope, free))
			res.Violations++
		}
	}
	return res
}

// MeanMakespan averages makespan over the sweep's runs at one driver
// count (0 if none).
func (r *FederationResult) MeanMakespan(drivers int) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Drivers == drivers {
			sum += row.MakespanS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanChurnMakespan averages makespan over the agent-churn runs at one
// driver count (0 if none).
func (r *FederationResult) MeanChurnMakespan(drivers int) float64 {
	sum, n := 0.0, 0
	for _, row := range r.ChurnRows {
		if row.Drivers == drivers {
			sum += row.MakespanS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanRate averages placement throughput over the sweep's runs at one
// driver count (0 if none).
func (r *FederationResult) MeanRate(drivers int) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Drivers == drivers {
			sum += row.PlacementRate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Print summarizes the sweep: one line per driver count with the scaling
// ratio against the single-driver baseline.
func (r *FederationResult) Print(w io.Writer) {
	base := r.MeanRate(1)
	baseMk := r.MeanMakespan(1)
	fmt.Fprintf(w, "%-8s %12s %10s %12s %10s %10s %8s\n",
		"drivers", "rate(1/s)", "speedup", "makespan(s)", "delta", "churn(s)", "ratio")
	for _, n := range r.Config.DriverCounts {
		rate, mk := r.MeanRate(n), r.MeanMakespan(n)
		speedup, delta := 0.0, 0.0
		if base > 0 {
			speedup = rate / base
		}
		if baseMk > 0 {
			delta = (mk - baseMk) / baseMk * 100
		}
		churn := r.MeanChurnMakespan(n)
		ratio := 0.0
		if mk > 0 {
			ratio = churn / mk
		}
		fmt.Fprintf(w, "%-8d %12.1f %9.2fx %12.1f %+9.1f%% %10.1f %7.2fx\n",
			n, rate, speedup, mk, delta, churn, ratio)
	}
	for _, g := range r.Gates {
		fmt.Fprintf(w, "GATE FAILED: %s\n", g)
	}
	if r.Violations > 0 {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS\n", r.Violations)
	}
}

// WriteCSV emits the raw rows for replotting.
func (r *FederationResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "drivers,seed,makespan_s,commits,max_busy_s,placement_rate"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%d,%.4f,%.1f\n",
			row.Drivers, row.Seed, row.MakespanS, row.Commits,
			row.MaxBusySeconds, row.PlacementRate); err != nil {
			return err
		}
	}
	return nil
}

// WriteChurnCSV emits the agent-churn rows for replotting.
func (r *FederationResult) WriteChurnCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "drivers,seed,makespan_s,fault_free_s,agent_crashes,resyncs"); err != nil {
		return err
	}
	for _, row := range r.ChurnRows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%d,%d\n",
			row.Drivers, row.Seed, row.MakespanS, row.FaultFreeS,
			row.AgentCrashes, row.Resyncs); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the sweep artifact.
func (r *FederationResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
