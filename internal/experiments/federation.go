package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/federation"
)

// The federation experiment: the same homogeneous application load run
// under 1, 2 and 4 federated drivers on one shared cluster, fault-free.
// The claim of the sharded design is that placement throughput — commits
// per second of the busiest driver's serial dispatch time — scales with
// the driver count while makespan stays flat: the protocol distributes
// the dispatch bottleneck without costing schedule quality on a
// homogeneous load.

// FederationConfig parameterizes the scaling sweep.
type FederationConfig struct {
	// BaseSeed is the first run seed; runs use BaseSeed..BaseSeed+Seeds-1.
	BaseSeed uint64
	// Seeds is the repetition count per driver level (default 3).
	Seeds int
	// DriverCounts are the federation sizes swept (default 1, 2, 4).
	DriverCounts []int
	// Apps is the application count per run (default 4).
	Apps int
}

func (c FederationConfig) withDefaults() FederationConfig {
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	if len(c.DriverCounts) == 0 {
		c.DriverCounts = []int{1, 2, 4}
	}
	if c.Apps == 0 {
		c.Apps = 4
	}
	return c
}

// FederationRow is one run's outcome.
type FederationRow struct {
	Drivers        int     `json:"drivers"`
	Seed           uint64  `json:"seed"`
	MakespanS      float64 `json:"makespan_s"`
	Commits        int     `json:"commits"`
	MaxBusySeconds float64 `json:"max_busy_s"`
	PlacementRate  float64 `json:"placement_rate"`
}

// FederationResult is the sweep artifact.
type FederationResult struct {
	Config     FederationConfig `json:"config"`
	Rows       []FederationRow  `json:"rows"`
	Violations int              `json:"violations"`
}

// Federation runs the scaling sweep.
func Federation(cfg FederationConfig) *FederationResult {
	cfg = cfg.withDefaults()
	res := &FederationResult{Config: cfg}
	for _, n := range cfg.DriverCounts {
		for i := 0; i < cfg.Seeds; i++ {
			seed := cfg.BaseSeed + uint64(i)
			r := federation.Run(federation.Config{
				Drivers: n,
				Apps:    cfg.Apps,
				Seed:    seed,
			})
			res.Violations += len(r.Violations)
			res.Rows = append(res.Rows, FederationRow{
				Drivers:        n,
				Seed:           seed,
				MakespanS:      r.Makespan,
				Commits:        r.Commits,
				MaxBusySeconds: r.MaxBusySeconds,
				PlacementRate:  r.PlacementRate,
			})
		}
	}
	return res
}

// MeanMakespan averages makespan over the sweep's runs at one driver
// count (0 if none).
func (r *FederationResult) MeanMakespan(drivers int) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Drivers == drivers {
			sum += row.MakespanS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanRate averages placement throughput over the sweep's runs at one
// driver count (0 if none).
func (r *FederationResult) MeanRate(drivers int) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Drivers == drivers {
			sum += row.PlacementRate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Print summarizes the sweep: one line per driver count with the scaling
// ratio against the single-driver baseline.
func (r *FederationResult) Print(w io.Writer) {
	base := r.MeanRate(1)
	baseMk := r.MeanMakespan(1)
	fmt.Fprintf(w, "%-8s %12s %10s %12s %10s\n",
		"drivers", "rate(1/s)", "speedup", "makespan(s)", "delta")
	for _, n := range r.Config.DriverCounts {
		rate, mk := r.MeanRate(n), r.MeanMakespan(n)
		speedup, delta := 0.0, 0.0
		if base > 0 {
			speedup = rate / base
		}
		if baseMk > 0 {
			delta = (mk - baseMk) / baseMk * 100
		}
		fmt.Fprintf(w, "%-8d %12.1f %9.2fx %12.1f %+9.1f%%\n", n, rate, speedup, mk, delta)
	}
	if r.Violations > 0 {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS\n", r.Violations)
	}
}

// WriteCSV emits the raw rows for replotting.
func (r *FederationResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "drivers,seed,makespan_s,commits,max_busy_s,placement_rate"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%d,%.4f,%.1f\n",
			row.Drivers, row.Seed, row.MakespanS, row.Commits,
			row.MaxBusySeconds, row.PlacementRate); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the sweep artifact.
func (r *FederationResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
