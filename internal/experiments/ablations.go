package experiments

import (
	"fmt"
	"io"

	"rupam/internal/core"
	"rupam/internal/workloads"
)

// AblationRow is one variant's execution time relative to full RUPAM.
type AblationRow struct {
	Variant  string
	Workload string
	Seconds  float64
	VsFull   float64 // variant time / full-RUPAM time (>1 = variant worse)
}

// AblationResult collects the design-choice ablations of DESIGN.md.
type AblationResult struct {
	Rows []AblationRow
}

// ablationCases maps each ablation to the workload that exercises the
// disabled mechanism hardest.
var ablationCases = []struct {
	name     string
	workload string
	cfg      core.Config
}{
	{"full", "LR", core.Config{}},
	{"no-locking", "LR", core.Config{DisableLocking: true}},
	{"full", "PR", core.Config{}},
	{"no-mem-aware", "PR", core.Config{DisableMemAware: true}},
	{"full", "TeraSort", core.Config{}},
	{"no-round-robin", "TeraSort", core.Config{DisableRR: true}},
	{"full", "KMeans", core.Config{}},
	{"no-gpu-race", "KMeans", core.Config{DisableGPURace: true}},
	{"res-factor-1", "LR", core.Config{ResFactor: 1.0001}},
	{"res-factor-4", "LR", core.Config{ResFactor: 4}},
}

// Ablations runs each RUPAM variant on its stress workload.
func Ablations(seed uint64) AblationResult {
	if seed == 0 {
		seed = 1
	}
	full := make(map[string]float64)
	var res AblationResult
	for _, c := range ablationCases {
		r := Run(RunSpec{
			Workload:  c.workload,
			Scheduler: SchedRUPAM,
			RUPAM:     c.cfg,
			Seed:      seed,
		})
		if c.name == "full" {
			full[c.workload] = r.Duration
		}
		row := AblationRow{Variant: c.name, Workload: c.workload, Seconds: r.Duration}
		if f := full[c.workload]; f > 0 {
			row.VsFull = r.Duration / f
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ResFactorSweep measures sensitivity to Algorithm 1's Res_factor on a
// workload (the paper's user-tunable characterization threshold).
func ResFactorSweep(workload string, factors []float64, seed uint64) []AblationRow {
	if len(factors) == 0 {
		factors = []float64{1.2, 1.5, 2, 3, 4, 6}
	}
	if seed == 0 {
		seed = 1
	}
	var rows []AblationRow
	for _, f := range factors {
		r := Run(RunSpec{
			Workload:  workload,
			Scheduler: SchedRUPAM,
			RUPAM:     core.Config{ResFactor: f},
			Seed:      seed,
		})
		rows = append(rows, AblationRow{
			Variant:  fmt.Sprintf("res-factor-%.1f", f),
			Workload: workload,
			Seconds:  r.Duration,
		})
	}
	return rows
}

// Print writes the ablation table.
func (r AblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablations: RUPAM variants on their stress workloads")
	fmt.Fprintf(w, "%-16s %-10s %10s %8s\n", "variant", "workload", "time(s)", "vs full")
	for _, row := range r.Rows {
		vs := "-"
		if row.VsFull > 0 {
			vs = fmt.Sprintf("%.2fx", row.VsFull)
		}
		fmt.Fprintf(w, "%-16s %-10s %10.1f %8s\n", row.Variant, row.Workload, row.Seconds, vs)
	}
}

// appTaskCount is a helper for reports: total tasks in a workload build.
func appTaskCount(workload string, seed uint64) int {
	return appOf(RunSpec{Workload: workload, Seed: seed}).NumTasks()
}

var _ = workloads.Defaults // keep the import alive for helpers above
