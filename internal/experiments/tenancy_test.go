package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestTenancySweep runs a reduced sweep and checks the artifact contract:
// no invariant violations, every run completed work, slowdowns populated
// for pools that completed applications, and a parseable CSV.
func TestTenancySweep(t *testing.T) {
	res := Tenancy(TenancyConfig{BaseSeed: 1, Seeds: 1, Apps: 6, MeanGap: 20})
	if res.Violations != 0 {
		for _, run := range res.Runs {
			for _, v := range run.Violations {
				t.Errorf("%s seed %d: %s", run.Scheduler, run.Seed, v)
			}
		}
	}
	if len(res.Runs) != 2 {
		t.Fatalf("expected 2 runs (1 seed x 2 schedulers), got %d", len(res.Runs))
	}
	for _, run := range res.Runs {
		if run.Completed == 0 {
			t.Errorf("%s seed %d completed nothing", run.Scheduler, run.Seed)
		}
		slowdowns := 0
		for _, p := range run.Pools {
			if p.MeanSlowdown > 0 {
				slowdowns++
			}
		}
		if slowdowns == 0 {
			t.Errorf("%s seed %d: no pool got a slowdown baseline", run.Scheduler, run.Seed)
		}
	}

	var csv bytes.Buffer
	if err := res.WritePoolCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// Header plus at least one pool row per run.
	if len(lines) < 1+len(res.Runs) {
		t.Fatalf("pool CSV too short:\n%s", csv.String())
	}
	wantCols := len(strings.Split(lines[0], ","))
	for _, ln := range lines[1:] {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Fatalf("ragged CSV row (%d cols, want %d): %s", got, wantCols, ln)
		}
	}
}

// TestTenancySweepDeterministic requires the whole JSON artifact to be
// byte-identical across invocations.
func TestTenancySweepDeterministic(t *testing.T) {
	cfg := TenancyConfig{BaseSeed: 3, Seeds: 1, Apps: 5, MeanGap: 15}
	var a, b bytes.Buffer
	if err := Tenancy(cfg).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Tenancy(cfg).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("tenancy sweep artifact differs between identical invocations")
	}
}
