package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"rupam/internal/task"
	"rupam/internal/tracing"
	"rupam/internal/workloads"
)

// TraceSanity exercises the tracing subsystem end to end: a small TeraSort
// under each scheduler with the collector attached, checking that the
// Chrome export is well-formed and byte-deterministic, that every launch
// produced exactly one committed placement decision, and that the
// critical-path analysis satisfies its invariants (path length equals the
// makespan, is at least the longest single attempt, and the category
// breakdown sums to the path length).
type TraceSanity struct {
	Rows       []TraceSanityRow
	Violations []string
}

// TraceSanityRow is one scheduler's traced run.
type TraceSanityRow struct {
	Scheduler  string
	Duration   float64
	Launches   int
	Events     int
	Decisions  int
	TraceBytes int
	PathLen    float64
}

const cpEps = 1e-6

// RunTraceSanity runs the sweep. Violations stay in the report rather than
// panicking so rupam-bench can print every failure before exiting non-zero.
func RunTraceSanity(seed uint64) *TraceSanity {
	rep := &TraceSanity{}
	for _, sched := range []string{SchedSpark, SchedRUPAM} {
		spec := RunSpec{
			Workload:  "TeraSort",
			Params:    workloads.Params{InputGB: 2, Partitions: 32, Iterations: 1},
			Scheduler: sched,
			Seed:      seed,
		}
		row, violations := traceOnce(spec)
		rep.Rows = append(rep.Rows, row)
		rep.Violations = append(rep.Violations, violations...)
	}
	return rep
}

func traceOnce(spec RunSpec) (TraceSanityRow, []string) {
	var violations []string
	bad := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf("%s: ", spec.Scheduler)+fmt.Sprintf(format, args...))
	}

	run := func() (*tracing.Collector, []byte, float64, int) {
		s := spec
		s.Tracer = tracing.NewCollector()
		res := Run(s)
		var buf bytes.Buffer
		if err := s.Tracer.WriteChromeTrace(&buf); err != nil {
			bad("trace export failed: %v", err)
		}
		// The critical path is computed per run because Analyze reads the
		// run's own application object.
		cp, err := tracing.Analyze(res.App)
		if err != nil {
			bad("critical-path analysis failed: %v", err)
		} else {
			checkCritPath(cp, res.Duration, res.App, bad)
		}
		if got, want := s.Tracer.DecisionCount(), res.Launches; got != want {
			bad("decision audit: %d committed decisions for %d launches", got, want)
		}
		return s.Tracer, buf.Bytes(), res.Duration, res.Launches
	}

	tr, data, duration, launches := run()
	if err := tracing.ValidateChromeTrace(data); err != nil {
		bad("trace_event validation: %v", err)
	}
	_, data2, _, _ := run()
	if !bytes.Equal(data, data2) {
		bad("trace export not deterministic: %d vs %d bytes for identical runs", len(data), len(data2))
	}

	return TraceSanityRow{
		Scheduler:  spec.Scheduler,
		Duration:   duration,
		Launches:   launches,
		Events:     tr.EventCount(),
		Decisions:  tr.DecisionCount(),
		TraceBytes: len(data),
		PathLen:    duration, // Analyze guarantees Length == makespan
	}, violations
}

// maxAttemptSeconds returns the longest single attempt in the run — a
// trivial lower bound on any full dependency path.
func maxAttemptSeconds(app *task.Application) float64 {
	longest := 0.0
	for _, t := range app.AllTasks() {
		for _, m := range t.Attempts {
			if d := m.Duration(); d > longest {
				longest = d
			}
		}
	}
	return longest
}

// checkCritPath asserts the analyzer's invariants against one run.
func checkCritPath(cp *tracing.CriticalPath, makespan float64, app *task.Application, bad func(string, ...interface{})) {
	if cp.Length > cp.Makespan+cpEps {
		bad("critical path %.6fs exceeds makespan %.6fs", cp.Length, cp.Makespan)
	}
	if cp.Makespan > makespan+cpEps {
		bad("analyzer makespan %.6fs exceeds run duration %.6fs", cp.Makespan, makespan)
	}
	if longest := maxAttemptSeconds(app); cp.Length+cpEps < longest {
		bad("critical path %.6fs shorter than longest attempt %.6fs", cp.Length, longest)
	}
	sum := 0.0
	for _, v := range cp.Categories {
		sum += v
	}
	if math.Abs(sum-cp.Length) > 1e-3 {
		bad("category breakdown sums to %.6fs, path length is %.6fs", sum, cp.Length)
	}
	if len(cp.Segments) == 0 {
		bad("critical path has no segments")
	}
	for _, seg := range cp.Segments {
		if seg.Wait < -cpEps || seg.Run < -cpEps {
			bad("segment task %d has negative time (wait %.6f, run %.6f)", seg.TaskID, seg.Wait, seg.Run)
		}
		if seg.Slack < -cpEps {
			bad("segment task %d has negative slack %.6f", seg.TaskID, seg.Slack)
		}
	}
}

// Print writes the report table.
func (r *TraceSanity) Print(w io.Writer) {
	fmt.Fprintf(w, "%-10s %10s %9s %8s %10s %12s %12s\n",
		"scheduler", "duration", "launches", "events", "decisions", "trace bytes", "crit path")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %9.1fs %9d %8d %10d %12d %11.1fs\n",
			row.Scheduler, row.Duration, row.Launches, row.Events,
			row.Decisions, row.TraceBytes, row.PathLen)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintf(w, "all tracing invariants hold\n")
		return
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION: %s\n", v)
	}
}
