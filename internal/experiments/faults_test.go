package experiments

import (
	"strings"
	"testing"
)

func TestFaultRecoveryBothSchedulersComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full PageRank runs under faults")
	}
	res := FaultRecovery(1)
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	if !res.Completed() {
		t.Fatalf("a faulted run aborted: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.ExecutorsLost == 0 {
			t.Errorf("%s: crashes never surfaced as executor losses", row.Scheduler)
		}
		if row.ExecutorsRejoined == 0 {
			t.Errorf("%s: no executor ever rejoined (recoveries + heartbeat partition)", row.Scheduler)
		}
		if row.Resubmissions == 0 && row.FetchFailures == 0 {
			t.Errorf("%s: losing a map-output holder caused no fetch failures or resubmissions", row.Scheduler)
		}
		if row.FailStops == 0 {
			t.Errorf("%s: injector crashes not counted", row.Scheduler)
		}
		if row.FaultedSec <= row.BaselineSec {
			t.Errorf("%s: faulted run (%.1fs) not slower than clean run (%.1fs)",
				row.Scheduler, row.FaultedSec, row.BaselineSec)
		}
	}
}

func TestFaultRecoveryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full PageRank runs under faults")
	}
	for _, sched := range []string{SchedSpark, SchedRUPAM} {
		a := Run(faultSpec(sched, 1, FaultSchedule()))
		b := Run(faultSpec(sched, 1, FaultSchedule()))
		if a.Duration != b.Duration || a.Launches != b.Launches ||
			a.ExecutorsLost != b.ExecutorsLost || a.FetchFailures != b.FetchFailures ||
			a.Resubmissions != b.Resubmissions || a.NodesBlacklisted != b.NodesBlacklisted {
			t.Errorf("%s: identical seeded fault runs diverged:\n%+v\n%+v", sched, a, b)
		}
	}
}

func TestFaultSchedulePrintsSomething(t *testing.T) {
	if err := FaultSchedule().Validate(); err != nil {
		t.Fatalf("canonical schedule invalid: %v", err)
	}
	var sb strings.Builder
	FaultResult{Rows: []FaultRow{{Scheduler: "spark", BaselineSec: 100, FaultedSec: 130, Overhead: 1.3}}}.Print(&sb)
	if !strings.Contains(sb.String(), "spark") || !strings.Contains(sb.String(), "1.30x") {
		t.Fatalf("unexpected Print output:\n%s", sb.String())
	}
}
