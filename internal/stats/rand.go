package stats

import "math"

// Rand is a small deterministic PRNG (splitmix64-seeded xorshift*) used by
// the workload generators and placement policies. The standard library's
// math/rand would also be deterministic under a fixed seed, but its global
// coupling and historical algorithm changes make an explicit, frozen
// generator safer for reproducible experiment output across Go versions.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	// splitmix64 step so that small consecutive seeds give uncorrelated
	// streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	return &Rand{state: z}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); heavy-tailed task duration
// noise in the generators uses this.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate) via inverse-CDF; Poisson arrival processes — spot
// reclamations per instance — draw their inter-arrival gaps from this.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Zipf returns a value in [1, n] following a Zipf distribution with
// exponent s, via inverse-CDF on the precomputed harmonic weights held in
// z. Use NewZipf to build z once per distribution.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s >= 0
// (s = 0 degenerates to uniform). Data skew across partitions — the cause
// of the intra-stage task skew in the paper's Fig 3 — is modelled by
// sampling partition sizes from this distribution.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
		cdf[i-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next rank in [1, n].
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// SkewFactors returns n multiplicative skew factors with mean ~1 whose
// spread grows with skew (0 = perfectly even). The generators multiply a
// stage's per-task base demand by these to create realistic task skew.
func SkewFactors(r *Rand, n int, skew float64) []float64 {
	fs := make([]float64, n)
	if n == 0 {
		return fs
	}
	var sum float64
	for i := range fs {
		// Log-normal spread: sigma = skew, median 1.
		fs[i] = r.LogNormal(0, skew)
		sum += fs[i]
	}
	// Normalize so the stage's total demand is independent of skew.
	scale := float64(n) / sum
	for i := range fs {
		fs[i] *= scale
	}
	return fs
}
