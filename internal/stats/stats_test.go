package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almost(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4.571428571, 1e-6) {
		t.Errorf("Variance = %v", got)
	}
	if got := PopStdDev(xs); !almost(got, 2, 1e-12) {
		t.Errorf("PopStdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("variance of single sample should be 0")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI of one sample should be 0")
	}
	// Five identical values: zero CI.
	if CI95([]float64{2, 2, 2, 2, 2}) != 0 {
		t.Error("CI of constant samples should be 0")
	}
	// n=5 → df=4 → t=2.776; stddev of {1..5}=1.581.
	ci := CI95([]float64{1, 2, 3, 4, 5})
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if !almost(ci, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", ci, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty should be 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("median failed")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || !almost(s.Mean, 2, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestTimeAvgPiecewise(t *testing.T) {
	var a TimeAvg
	a.Observe(0, 10) // 10 from t=0
	a.Observe(5, 20) // avg so far: 10 over [0,5]
	if !almost(a.Value(), 10, 1e-12) {
		t.Fatalf("value = %v, want 10", a.Value())
	}
	a.CloseAt(10) // 20 over [5,10]
	if !almost(a.Value(), 15, 1e-12) {
		t.Fatalf("value = %v, want 15", a.Value())
	}
	if !almost(a.Duration(), 10, 1e-12) {
		t.Fatalf("duration = %v", a.Duration())
	}
}

func TestTimeAvgNoElapsed(t *testing.T) {
	var a TimeAvg
	a.Observe(3, 7)
	if a.Value() != 7 {
		t.Fatalf("zero-duration value = %v, want last observed", a.Value())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too correlated: %d/100 equal", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
		if v := r.Range(5, 6); v < 5 || v >= 6 {
			t.Fatalf("Range out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(11)
	var xs []float64
	for i := 0; i < 20000; i++ {
		xs = append(xs, r.Normal(10, 2))
	}
	if m := Mean(xs); !almost(m, 10, 0.1) {
		t.Fatalf("normal mean = %v", m)
	}
	if sd := StdDev(xs); !almost(sd, 2, 0.1) {
		t.Fatalf("normal stddev = %v", sd)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRand(3)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 101)
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 1 || v > 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[50] {
		t.Fatalf("zipf not skewed: rank1=%d rank50=%d", counts[1], counts[50])
	}
}

func TestSkewFactorsMeanOne(t *testing.T) {
	r := NewRand(5)
	for _, sigma := range []float64{0, 0.2, 0.8} {
		fs := SkewFactors(r, 200, sigma)
		if len(fs) != 200 {
			t.Fatalf("wrong length")
		}
		if m := Mean(fs); !almost(m, 1, 1e-9) {
			t.Fatalf("sigma=%v: mean = %v, want 1", sigma, m)
		}
		for _, f := range fs {
			if f <= 0 {
				t.Fatalf("non-positive skew factor %v", f)
			}
		}
	}
}

func TestSkewFactorsSpreadGrows(t *testing.T) {
	r := NewRand(5)
	low := StdDev(SkewFactors(r, 500, 0.1))
	high := StdDev(SkewFactors(r, 500, 0.8))
	if high <= low {
		t.Fatalf("spread did not grow: %v vs %v", low, high)
	}
}

// Property: percentile is bounded by min and max for any input.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if math.IsNaN(p) {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		got := Percentile(xs, pp)
		s := Summarize(xs)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PopStdDev of any constant slice is zero, and adding a
// constant to all samples leaves the spread unchanged.
func TestQuickStdDevShiftInvariant(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		if len(xs) < 2 || math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if math.Abs(shift) > 1e12 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return almost(StdDev(xs), StdDev(shifted), 1e-6*(1+StdDev(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
