// Package stats provides the small statistical toolkit the evaluation
// harness needs: summary statistics with confidence intervals (the paper
// reports 5-run means with 95% CIs), time-weighted averages for resource
// utilization series, percentiles for speculation thresholds, and a
// deterministic PRNG wrapper with the skew distributions the workload
// generators use.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopStdDev returns the population standard deviation of xs (divides by n,
// not n-1). The paper's Fig 9 reports the spread of utilization across the
// fixed set of cluster nodes, which is a population, not a sample.
func PopStdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// tTable holds two-sided 95% critical values of Student's t distribution
// for small degrees of freedom; the harness runs each configuration five
// times, so df=4 is the common case.
var tTable = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
}

// CI95 returns the half-width of the two-sided 95% confidence interval of
// the mean of xs using Student's t distribution. For n <= 1 it returns 0;
// for df beyond the table it uses the normal approximation 1.96.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n <= 1 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(tTable) {
		t = tTable[df]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the statistics the experiment tables report.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), CI95: CI95(xs)}
	for i, x := range xs {
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	return s
}

// TimeAvg accumulates a time-weighted average of a piecewise-constant
// signal, e.g. a node's CPU utilization between simulation events. The zero
// value is ready to use.
type TimeAvg struct {
	weighted float64 // integral of value dt
	duration float64
	last     float64 // last observed value
	lastT    float64
	started  bool
}

// Observe records that the signal had value v from the previous observation
// time up to time t, then holds at v.
func (a *TimeAvg) Observe(t, v float64) {
	if a.started && t > a.lastT {
		a.weighted += a.last * (t - a.lastT)
		a.duration += t - a.lastT
	}
	a.last = v
	a.lastT = t
	a.started = true
}

// CloseAt extends the last observed value up to time t without changing it.
func (a *TimeAvg) CloseAt(t float64) { a.Observe(t, a.last) }

// Value returns the time-weighted average observed so far (0 if no time has
// elapsed).
func (a *TimeAvg) Value() float64 {
	if a.duration == 0 {
		return a.last
	}
	return a.weighted / a.duration
}

// Duration returns the total time span accumulated so far.
func (a *TimeAvg) Duration() float64 { return a.duration }
