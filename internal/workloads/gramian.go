package workloads

import (
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// Gramian builds the GPU-intensive Gramian Matrix workload of the paper
// (A^T·A over an 8K×8K matrix, the kernel of [37]): one pass of
// BLAS-dominated block products that NVBLAS offloads to a GPU when one is
// present, followed by a block-sum shuffle. With a single iteration RUPAM
// cannot learn which tasks are GPU tasks before the run ends, which is why
// the paper measures a negligible 1.4% improvement — the contrast case to
// KMeans.
func Gramian(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("GM", store, p.Seed)
	ds := store.CreateEven("gm-matrix", p.inputBytes(), p.Partitions)

	products := ctx.Read(ds).Map("gm-blas", rdd.Profile{
		CPUPerByte: 200e-9, // packing, bookkeeping
		GPUPerByte: 3.2e-6, // the O(n³) DGEMM itself — offloadable
		MemPerByte: 6,      // block operands and accumulators
		OutRatio:   0.5,
	})
	gram := products.Shuffle("gm-sum", rdd.Profile{
		CPUPerByte: 20e-9,
		MemPerByte: 3,
		OutRatio:   0.1,
	}, 32)
	gram.Count("gm-run")
	return ctx.App()
}
