package workloads

import (
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// PageRank builds the graph workload: the adjacency lists are parsed into
// a cached, heavily-expanded in-memory structure (JVM object overhead on
// graph data is notoriously large), then Iterations rounds of
// join-with-ranks and reduce-by-vertex run inside a single job, exactly as
// the lazy Spark implementation chains them. Join tasks have multi-GB
// working sets with key skew: under default Spark's one-size heap the
// small-memory nodes OOM, workers crash and drop the cached graph, and
// recovery dominates the run (the paper's largest error bars and its
// biggest RUPAM win, 2.5×). RUPAM's memory-aware placement and per-node
// heaps avoid the failures entirely.
func PageRank(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("PR", store, p.Seed)
	ds := store.CreateSkewed("pr-edges", p.inputBytes(), p.Partitions, 0.25)

	links := ctx.Read(ds).Map("pr-links", rdd.Profile{
		CPUPerByte: 40e-9, // parse edges, group by source
		MemPerByte: 11,    // pointer-heavy adjacency representation
		OutRatio:   3.0,
	}).Cache()

	// Initial ranks: one entry per vertex, tiny next to the edges.
	ranks := links.Map("pr-init-ranks", rdd.Profile{
		CPUPerByte: 2e-9,
		OutRatio:   0.02,
	})

	for i := 0; i < p.Iterations; i++ {
		contribs := links.Join(ranks, "pr-contrib", rdd.Profile{
			CPUPerByte: 45e-9,
			MemPerByte: 22, // deserialized contribution lists blow up in the JVM
			MemBase:    1200 * 1024 * 1024,
			OutRatio:   0.25,
			Skew:       0.4, // power-law vertex degrees
		}, p.Partitions*4)
		ranks = contribs.Shuffle("pr-update", rdd.Profile{
			CPUPerByte: 15e-9,
			MemPerByte: 1.5,
			OutRatio:   0.08,
			Skew:       0.3,
		}, p.Partitions)
	}
	ranks.Count("pr-run")
	return ctx.App()
}
