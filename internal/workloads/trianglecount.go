package workloads

import (
	"fmt"

	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// TriangleCount builds the second graph workload: a cached edge list is
// self-joined round after round to enumerate and count closing wedges.
// The join rounds mix memory pressure and shuffle traffic, and the
// repeated rounds let RUPAM's characterization converge, giving a
// multi-iteration speedup between LR's and PageRank's.
func TriangleCount(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("TC", store, p.Seed)
	ds := store.CreateSkewed("tc-edges", p.inputBytes(), p.Partitions, 0.2)

	edges := ctx.Read(ds).Map("tc-parse", rdd.Profile{
		CPUPerByte: 30e-9,
		MemPerByte: 8, // canonicalized edge set in memory
		OutRatio:   2.0,
	}).Cache()

	for r := 1; r <= p.Iterations; r++ {
		wedges := edges.Join(edges, "tc-wedges", rdd.Profile{
			CPUPerByte: 140e-9, // neighbor-list intersections dominate
			MemPerByte: 8,      // candidate wedge sets held in memory
			MemBase:    300 * 1024 * 1024,
			OutRatio:   0.3,
			Skew:       0.4, // hub vertices dominate wedge counts
		}, p.Partitions)
		triangles := wedges.Shuffle("tc-close", rdd.Profile{
			CPUPerByte: 25e-9,
			MemPerByte: 1.4,
			OutRatio:   0.01,
		}, p.Partitions/2)
		triangles.Count(fmt.Sprintf("tc-round%d", r))
	}
	return ctx.App()
}
