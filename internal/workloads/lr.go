package workloads

import (
	"fmt"

	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// LogisticRegression builds the LR workload: parse and cache the training
// points, then Iterations gradient-descent jobs. Each iteration maps a
// compute-heavy partial-gradient over the cached points and tree-reduces a
// tiny weight update — the classic compute-bound iterative workload whose
// speedup under RUPAM grows with iteration count (Fig 6): the scheduler
// learns the tasks are CPU-bound, migrates them (and therefore their
// cached partitions) to the fast-core nodes, and locks them there.
func LogisticRegression(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("LR", store, p.Seed)
	ds := store.CreateEven("lr-input", p.inputBytes(), p.Partitions)

	points := ctx.Read(ds).Map("lr-parse", rdd.Profile{
		CPUPerByte: 25e-9, // tokenize + vectorize
		MemPerByte: 1.6,
		OutRatio:   1.0,
	}).Cache()

	for i := 1; i <= p.Iterations; i++ {
		grad := points.Map("lr-grad", rdd.Profile{
			CPUPerByte: 460e-9, // dense dot products dominate
			MemPerByte: 1.2,
			OutRatio:   2e-5, // partial gradient vector
			Skew:       0.15,
		})
		update := grad.Shuffle("lr-sum", rdd.Profile{
			CPUPerByte: 50e-9,
			OutRatio:   1,
		}, 8)
		update.Count(fmt.Sprintf("lr-iter%02d", i))
	}
	return ctx.App()
}
