package workloads

import (
	"fmt"

	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// KMeans builds the second GPU workload: points are parsed and cached,
// then Iterations assignment/update rounds run as separate jobs. The
// distance computation is BLAS-shaped and GPU-offloadable. Unlike Gramian
// Matrix, the five iterations give RUPAM time to mark the stage as a GPU
// stage, route tasks to the accelerator nodes, race CPU-stranded copies
// onto idle GPUs, and pin tasks to their best nodes — the paper's 2.49×.
func KMeans(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("KMeans", store, p.Seed)
	ds := store.CreateEven("km-points", p.inputBytes(), p.Partitions)

	points := ctx.Read(ds).Map("km-parse", rdd.Profile{
		CPUPerByte: 15e-9,
		MemPerByte: 1.6,
		OutRatio:   1.0,
	}).Cache()

	for i := 1; i <= p.Iterations; i++ {
		assigned := points.Map("km-assign", rdd.Profile{
			CPUPerByte: 15e-9,  // bookkeeping + argmin
			GPUPerByte: 220e-9, // point-to-centroid distance GEMM
			MemPerByte: 1.3,
			OutRatio:   3e-5, // per-cluster partial sums
			Skew:       0.1,
		})
		centers := assigned.Shuffle("km-update", rdd.Profile{
			CPUPerByte: 40e-9,
			OutRatio:   1,
		}, 8)
		centers.Count(fmt.Sprintf("km-iter%02d", i))
	}
	return ctx.App()
}
