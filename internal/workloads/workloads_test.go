package workloads

import (
	"testing"

	"rupam/internal/hdfs"
	"rupam/internal/task"
)

var nodes = []string{"n1", "n2", "n3", "n4", "n5", "n6"}

func newStore() *hdfs.Store { return hdfs.NewStore(nodes, 2, 1) }

func TestNamesAndDefaults(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range EvalNames() {
		d := Defaults(n)
		if d.InputGB <= 0 || d.Partitions <= 0 || d.Iterations <= 0 {
			t.Errorf("%s defaults incomplete: %+v", n, d)
		}
	}
	// Table III input sizes.
	sizes := map[string]float64{
		"LR": 6, "TeraSort": 40, "SQL": 35, "PR": 0.95,
		"TC": 0.95, "GM": 0.96, "KMeans": 3.7,
	}
	for w, gb := range sizes {
		if got := Defaults(w).InputGB; got != gb {
			t.Errorf("%s input = %v GB, want %v (Table III)", w, got, gb)
		}
	}
}

func TestUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload accepted")
		}
	}()
	Defaults("NotAWorkload")
}

func TestBuildAllWorkloads(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app := Build(name, hdfs.NewStore(nodes, 2, 1), Params{})
			if app.NumTasks() == 0 {
				t.Fatal("no tasks")
			}
			if len(app.Jobs) == 0 {
				t.Fatal("no jobs")
			}
			for _, tk := range app.AllTasks() {
				d := tk.Demand
				if d.CPUWork < 0 || d.PeakMemory < 0 || d.InputBytes < 0 ||
					d.ShuffleReadBytes < 0 || d.ShuffleWriteBytes < 0 {
					t.Fatalf("%s: negative demand %+v", tk, d)
				}
				if d.TotalComputeWork() == 0 && d.InputBytes == 0 && d.ShuffleReadBytes == 0 {
					t.Fatalf("%s: empty task", tk)
				}
			}
		})
	}
}

func TestIterativeWorkloadsHaveJobsPerIteration(t *testing.T) {
	app := Build("LR", newStore(), Params{Iterations: 5})
	if len(app.Jobs) != 5 {
		t.Fatalf("LR with 5 iterations built %d jobs", len(app.Jobs))
	}
	km := Build("KMeans", hdfs.NewStore(nodes, 2, 2), Params{Iterations: 3})
	if len(km.Jobs) != 3 {
		t.Fatalf("KMeans with 3 iterations built %d jobs", len(km.Jobs))
	}
	sql := Build("SQL", hdfs.NewStore(nodes, 2, 3), Params{Iterations: 2})
	if len(sql.Jobs) != 2 {
		t.Fatalf("SQL with 2 queries built %d jobs", len(sql.Jobs))
	}
}

func TestPageRankSingleJobChainsIterations(t *testing.T) {
	app := Build("PR", newStore(), Params{Iterations: 4})
	if len(app.Jobs) != 1 {
		t.Fatalf("PR built %d jobs, want 1 (lazy chaining)", len(app.Jobs))
	}
	// 1 links + 1 init + 4×(contrib, update) stages + shared structure.
	if len(app.Jobs[0].Stages) < 1+1+4*2 {
		t.Fatalf("PR stages = %d", len(app.Jobs[0].Stages))
	}
}

func TestGPUWorkloadsAreGPUCapable(t *testing.T) {
	for _, name := range []string{"GM", "KMeans"} {
		app := Build(name, hdfs.NewStore(nodes, 2, 4), Params{})
		capable := 0
		for _, tk := range app.AllTasks() {
			if tk.Demand.GPUCapable() {
				capable++
			}
		}
		if capable == 0 {
			t.Errorf("%s has no GPU-capable tasks", name)
		}
	}
	lr := Build("LR", hdfs.NewStore(nodes, 2, 5), Params{})
	for _, tk := range lr.AllTasks() {
		if tk.Demand.GPUCapable() {
			t.Fatal("LR should not be GPU-capable")
		}
	}
}

func TestIterationSignaturesMatch(t *testing.T) {
	app := Build("LR", newStore(), Params{Iterations: 3})
	sigs := map[string]int{}
	for _, j := range app.Jobs {
		for _, st := range j.Stages {
			sigs[st.Signature]++
		}
	}
	if sigs["lr-sum"] != 3 {
		t.Fatalf("lr-sum signature count = %d, want one per iteration", sigs["lr-sum"])
	}
}

func TestCachingStructure(t *testing.T) {
	app := Build("LR", newStore(), Params{Iterations: 2})
	// Job 1 caches the parsed points; job 2 reads them from cache.
	cached := false
	for _, st := range app.Jobs[0].Stages {
		if st.CacheRDDID != 0 {
			cached = true
		}
	}
	if !cached {
		t.Fatal("first LR job caches nothing")
	}
	cacheRead := false
	for _, st := range app.Jobs[1].Stages {
		for _, tk := range st.Tasks {
			if tk.CacheRDD != 0 {
				cacheRead = true
			}
		}
	}
	if !cacheRead {
		t.Fatal("second LR job does not read the cache")
	}
}

func TestPRMemoryHeavyTasks(t *testing.T) {
	app := Build("PR", newStore(), Params{})
	var maxPeak int64
	for _, tk := range app.AllTasks() {
		if tk.Demand.PeakMemory > maxPeak {
			maxPeak = tk.Demand.PeakMemory
		}
	}
	if maxPeak < 1<<30 {
		t.Fatalf("PR max task peak = %d, want multi-GB join working sets", maxPeak)
	}
}

func TestTeraSortMovesAllBytes(t *testing.T) {
	app := Build("TeraSort", newStore(), Params{InputGB: 1, Partitions: 16})
	var shuffleWrite int64
	for _, tk := range app.AllTasks() {
		shuffleWrite += tk.Demand.ShuffleWriteBytes
	}
	// The sort shuffles ~the full dataset at least twice (partition +
	// sort stages write shuffle output).
	if shuffleWrite < 1<<30 {
		t.Fatalf("TeraSort shuffle volume = %d, want >= input size", shuffleWrite)
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a := Build("SQL", hdfs.NewStore(nodes, 2, 7), Params{Seed: 7})
	b := Build("SQL", hdfs.NewStore(nodes, 2, 7), Params{Seed: 7})
	at, bt := a.AllTasks(), b.AllTasks()
	if len(at) != len(bt) {
		t.Fatal("builds differ in size")
	}
	for i := range at {
		if at[i].Demand != bt[i].Demand {
			t.Fatalf("task %d differs", i)
		}
	}
}

func TestSeedChangesSkew(t *testing.T) {
	a := Build("PR", hdfs.NewStore(nodes, 2, 7), Params{Seed: 7})
	b := Build("PR", hdfs.NewStore(nodes, 2, 8), Params{Seed: 8})
	diff := false
	at, bt := a.AllTasks(), b.AllTasks()
	for i := range at {
		if i < len(bt) && at[i].Demand != bt[i].Demand {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical demands")
	}
}

func TestParamsOverride(t *testing.T) {
	app := Build("LR", newStore(), Params{InputGB: 1, Partitions: 10, Iterations: 2})
	if len(app.Jobs) != 2 {
		t.Fatalf("iterations override ignored: %d jobs", len(app.Jobs))
	}
	first := app.Jobs[0].Stages[len(app.Jobs[0].Stages)-1]
	_ = first
	var input int64
	for _, tk := range app.AllTasks() {
		input += tk.Demand.InputBytes
	}
	if input > 3<<30 {
		t.Fatalf("1 GB override ignored: total input %d", input)
	}
}

func TestMatMulPhases(t *testing.T) {
	app := Build("MatMul", newStore(), Params{})
	if len(app.Jobs) != 1 {
		t.Fatalf("MatMul jobs = %d", len(app.Jobs))
	}
	kinds := map[task.Kind]int{}
	for _, tk := range app.AllTasks() {
		kinds[tk.Kind]++
	}
	if kinds[task.ShuffleMap] == 0 || kinds[task.Result] == 0 {
		t.Fatalf("MatMul task kinds = %v", kinds)
	}
}
