package workloads

import (
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// TeraSort builds the sort benchmark: a sampling/partitioning map over the
// input, a full-data range-partition shuffle whose reduce side sorts and
// rewrites every byte, and a small output summary stage. It is the
// shuffle-I/O-bound single-pass workload: map output lands on local disk
// (SSD vs HDD matters), and the sort stage moves the whole dataset across
// the network (1 GbE vs 10 GbE matters). With only one pass there is
// little for RUPAM to learn, so the paper reports a modest 1.32×.
func TeraSort(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("TeraSort", store, p.Seed)
	ds := store.CreateEven("ts-input", p.inputBytes(), p.Partitions)

	partitioned := ctx.Read(ds).Map("ts-partition", rdd.Profile{
		CPUPerByte: 8e-9, // key extraction + range lookup
		MemPerByte: 1.2,
		OutRatio:   1.0,
	})
	sorted := partitioned.Shuffle("ts-sort", rdd.Profile{
		CPUPerByte: 28e-9, // merge sort of the received range
		MemPerByte: 10,    // sort buffers: the whole range is resident
		OutRatio:   1.0,
		Skew:       0.25, // imperfect range sampling
	}, p.Partitions)
	summary := sorted.Shuffle("ts-validate", rdd.Profile{
		CPUPerByte: 2e-9,
		OutRatio:   1e-4, // per-range checksums
	}, 32)
	summary.Count("ts-run")
	return ctx.App()
}
