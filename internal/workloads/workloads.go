// Package workloads generates the paper's evaluation applications — the
// SparkBench suite of Table III (Logistic Regression, TeraSort, SQL,
// PageRank, Triangle Count, Gramian Matrix, KMeans) plus the §II-B
// motivation workloads (4K×4K matrix multiplication and 2 GB PageRank) —
// as rdd logical plans with per-task demand vectors whose shapes match
// the resource-usage patterns the paper reports: compute-bound gradient
// tasks, shuffle-bound sorts, memory-hungry graph joins, and
// GPU-offloadable linear algebra.
package workloads

import (
	"fmt"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/hdfs"
	"rupam/internal/task"
)

// Params configures one workload instance. Zero fields take the
// workload's Table III defaults.
type Params struct {
	// InputGB is the input dataset size (Table III).
	InputGB float64
	// Partitions is the input partition count.
	Partitions int
	// Iterations is the iteration count for iterative workloads (LR,
	// PageRank, TriangleCount, KMeans).
	Iterations int
	// Seed drives skew and placement randomness.
	Seed uint64
}

func (p Params) withDefaults(d Params) Params {
	if p.InputGB == 0 {
		p.InputGB = d.InputGB
	}
	if p.Partitions == 0 {
		p.Partitions = d.Partitions
	}
	if p.Iterations == 0 {
		p.Iterations = d.Iterations
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

func (p Params) inputBytes() int64 {
	return int64(p.InputGB * float64(cluster.GB))
}

// Builder constructs a workload application over a block store.
type Builder func(store *hdfs.Store, p Params) *task.Application

// workloadInfo couples a builder with its paper defaults.
type workloadInfo struct {
	build    Builder
	defaults Params
}

// registry of the evaluated workloads, keyed by the paper's names.
var registry = map[string]workloadInfo{
	"LR":       {LogisticRegression, Params{InputGB: 6, Partitions: 48, Iterations: 8, Seed: 11}},
	"TeraSort": {TeraSort, Params{InputGB: 40, Partitions: 320, Iterations: 1, Seed: 12}},
	"SQL":      {SQL, Params{InputGB: 35, Partitions: 280, Iterations: 3, Seed: 13}},
	"PR":       {PageRank, Params{InputGB: 0.95, Partitions: 24, Iterations: 5, Seed: 14}},
	"TC":       {TriangleCount, Params{InputGB: 0.95, Partitions: 24, Iterations: 5, Seed: 15}},
	"GM":       {Gramian, Params{InputGB: 0.96, Partitions: 192, Iterations: 1, Seed: 16}},
	"KMeans":   {KMeans, Params{InputGB: 3.7, Partitions: 48, Iterations: 5, Seed: 17}},
	"MatMul":   {MatrixMult, Params{InputGB: 0.25, Partitions: 32, Iterations: 1, Seed: 18}},
}

// Names returns the registered workload names, Table III order first.
func Names() []string {
	order := []string{"LR", "TeraSort", "SQL", "PR", "TC", "GM", "KMeans", "MatMul"}
	var names []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			names = append(names, n)
		}
	}
	// Any extras, sorted.
	var extra []string
	for n := range registry {
		if !containsStr(names, n) {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// EvalNames returns the seven Table III workloads (no motivation-only
// workloads).
func EvalNames() []string {
	return []string{"LR", "TeraSort", "SQL", "PR", "TC", "GM", "KMeans"}
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Known reports whether name is a registered workload — the CLI's
// validation hook, so flag typos become usage errors instead of panics.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Defaults returns a workload's Table III parameters. It panics on an
// unknown name.
func Defaults(name string) Params {
	info, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q", name))
	}
	return info.defaults
}

// Build constructs the named workload with p (zero fields defaulted). It
// panics on an unknown name.
func Build(name string, store *hdfs.Store, p Params) *task.Application {
	info, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q", name))
	}
	return info.build(store, p.withDefaults(info.defaults))
}
