package workloads

import (
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// MatrixMult builds the §II-B motivation workload: a 4K×4K dense matrix
// multiplication (two 128 MB operands at double precision). Its phases
// reproduce the utilization timeline of Fig 2: an initial CPU spike and
// network burst while operand blocks are exchanged (the block join), a
// long memory-resident compute phase for the block products, and a final
// network-heavy reduce with disk writes at each shuffle boundary.
func MatrixMult(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("MatMul", store, p.Seed)
	half := p.inputBytes() / 2
	a := store.CreateEven("mm-a", half, p.Partitions)
	b := store.CreateEven("mm-b", half, p.Partitions)

	// Block distribution: parse operands (CPU spike at start).
	left := ctx.Read(a).Map("mm-parse-a", rdd.Profile{
		CPUPerByte: 60e-9,
		MemPerByte: 2,
		OutRatio:   1,
	})
	right := ctx.Read(b).Map("mm-parse-b", rdd.Profile{
		CPUPerByte: 60e-9,
		MemPerByte: 2,
		OutRatio:   1,
	})

	// Pair up blocks (network burst #1) and hold operands in memory.
	pairs := left.Join(right, "mm-pair", rdd.Profile{
		CPUPerByte: 10e-9,
		MemPerByte: 14, // both operand panels resident
		OutRatio:   2,
	}, p.Partitions)

	// Block products: the long compute phase with high, ramping memory.
	prods := pairs.Map("mm-multiply", rdd.Profile{
		CPUPerByte: 550e-9, // O(n^3) flops over the panels
		MemPerByte: 3,
		OutRatio:   0.5,
	})

	// Combine partial products (network burst #2, disk at the shuffle).
	result := prods.Shuffle("mm-combine", rdd.Profile{
		CPUPerByte: 25e-9,
		MemPerByte: 2,
		OutRatio:   0.5,
	}, p.Partitions)
	result.Count("mm-run")
	return ctx.App()
}
