package workloads

import (
	"fmt"

	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/task"
)

// SQL builds the database workload: Iterations analytical queries over a
// fact table and a dimension table, each query scanning both sides with a
// selective filter, hash-joining them (the memory-hungry step — SQL has
// the highest memory footprint of the studied workloads, Fig 8b), and
// aggregating the join output. Each query is one job with fresh lineage —
// no data survives between queries, so RUPAM's characterization has
// nothing to reuse and the paper sees only 1.19×, with extra GC from
// RUPAM's larger heaps (Fig 7b).
func SQL(store *hdfs.Store, p Params) *task.Application {
	ctx := rdd.NewContext("SQL", store, p.Seed)
	factBytes := int64(float64(p.inputBytes()) * 0.6)
	dimBytes := p.inputBytes() - factBytes
	factParts := p.Partitions * 3 / 5
	if factParts < 1 {
		factParts = 1
	}
	dimParts := p.Partitions - factParts
	if dimParts < 1 {
		dimParts = 1
	}
	fact := store.CreateEven("sql-fact", factBytes, factParts)
	dim := store.CreateEven("sql-dim", dimBytes, dimParts)

	for q := 1; q <= p.Iterations; q++ {
		factScan := ctx.Read(fact).Map(fmt.Sprintf("sql-scan-fact-q%d", q), rdd.Profile{
			CPUPerByte: 18e-9, // decode + predicate
			MemPerByte: 1.3,
			OutRatio:   0.5,
		})
		dimScan := ctx.Read(dim).Map(fmt.Sprintf("sql-scan-dim-q%d", q), rdd.Profile{
			CPUPerByte: 14e-9,
			MemPerByte: 1.3,
			OutRatio:   0.7,
		})
		joined := factScan.Join(dimScan, fmt.Sprintf("sql-join-q%d", q), rdd.Profile{
			CPUPerByte: 35e-9,
			MemPerByte: 6.0, // build-side hash tables
			OutRatio:   0.6,
			Skew:       0.35, // key skew in the join
		}, p.Partitions/2)
		agg := joined.Shuffle(fmt.Sprintf("sql-agg-q%d", q), rdd.Profile{
			CPUPerByte: 20e-9,
			MemPerByte: 1.2,
			OutRatio:   1e-3,
		}, 24)
		agg.Count(fmt.Sprintf("sql-q%d", q))
	}
	return ctx.App()
}
