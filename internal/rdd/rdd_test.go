package rdd

import (
	"testing"
	"testing/quick"

	"rupam/internal/hdfs"
	"rupam/internal/task"
)

var nodes = []string{"n1", "n2", "n3", "n4"}

func newStore() *hdfs.Store { return hdfs.NewStore(nodes, 2, 1) }

func TestReadRDD(t *testing.T) {
	s := newStore()
	ds := s.CreateEven("in", 400, 4)
	ctx := NewContext("app", s, 1)
	r := ctx.Read(ds)
	if r.Partitions() != 4 || r.TotalBytes() != 400 {
		t.Fatalf("read rdd: parts=%d total=%d", r.Partitions(), r.TotalBytes())
	}
}

func TestMapPreservesPartitioning(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	r := ctx.Read(s.CreateEven("in", 400, 4)).Map("m", Profile{OutRatio: 0.5})
	if r.Partitions() != 4 {
		t.Fatalf("map changed partitions: %d", r.Partitions())
	}
	if r.TotalBytes() != 200 {
		t.Fatalf("out ratio not applied: %d", r.TotalBytes())
	}
}

func TestShuffleRepartitions(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	r := ctx.Read(s.CreateEven("in", 800, 4)).Shuffle("sh", Profile{OutRatio: 1}, 8)
	if r.Partitions() != 8 {
		t.Fatalf("shuffle partitions = %d", r.Partitions())
	}
	var total int64
	for i := 0; i < 8; i++ {
		total += r.PartitionBytes(i)
	}
	if total < 700 || total > 900 {
		t.Fatalf("shuffle roughly conserves bytes: %d", total)
	}
}

func TestSingleStageJob(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	job := ctx.Read(s.CreateEven("in", 400, 4)).
		Map("m", Profile{CPUPerByte: 1e-9}).
		Count("job1")
	if len(job.Stages) != 1 {
		t.Fatalf("narrow pipeline built %d stages", len(job.Stages))
	}
	st := job.Final
	if st.Kind != task.Result {
		t.Fatal("final stage not Result")
	}
	if st.NumTasks() != 4 {
		t.Fatalf("tasks = %d", st.NumTasks())
	}
	for _, tk := range st.Tasks {
		if tk.Demand.InputBytes != 100 {
			t.Fatalf("input bytes = %d", tk.Demand.InputBytes)
		}
		if tk.Demand.CPUWork <= 0 {
			t.Fatal("no CPU work compiled")
		}
		if len(tk.PrefNodes) != 2 {
			t.Fatalf("pref nodes = %v", tk.PrefNodes)
		}
	}
}

func TestShuffleSplitsStages(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	job := ctx.Read(s.CreateEven("in", 400, 4)).
		Map("m", Profile{}).
		Shuffle("sh", Profile{}, 6).
		Count("job1")
	if len(job.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(job.Stages))
	}
	final := job.Final
	if len(final.Parent) != 1 {
		t.Fatalf("final parents = %d", len(final.Parent))
	}
	parent := final.Parent[0]
	if parent.Kind != task.ShuffleMap {
		t.Fatal("parent stage not ShuffleMap")
	}
	for _, tk := range parent.Tasks {
		if tk.Demand.ShuffleWriteBytes <= 0 {
			t.Fatal("map task writes no shuffle data")
		}
	}
	for _, tk := range final.Tasks {
		if tk.Demand.ShuffleReadBytes <= 0 {
			t.Fatal("reduce task reads no shuffle data")
		}
		if tk.Demand.InputBytes != 0 {
			t.Fatal("reduce task reads input directly")
		}
	}
}

func TestJoinHasTwoParents(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	a := ctx.Read(s.CreateEven("a", 400, 4))
	b := ctx.Read(s.CreateEven("b", 200, 2))
	job := a.Join(b, "j", Profile{}, 4).Count("job1")
	if len(job.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(job.Stages))
	}
	if len(job.Final.Parent) != 2 {
		t.Fatalf("join parents = %d", len(job.Final.Parent))
	}
}

func TestSelfJoinSharesParentStage(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	e := ctx.Read(s.CreateEven("e", 400, 4)).Map("edges", Profile{})
	job := e.Join(e, "wedge", Profile{}, 4).Count("job1")
	if len(job.Stages) != 2 {
		t.Fatalf("self-join stages = %d, want 2 (shared parent)", len(job.Stages))
	}
	if len(job.Final.Parent) != 2 || job.Final.Parent[0] != job.Final.Parent[1] {
		t.Fatal("self-join should reference the same parent stage twice")
	}
}

func TestCacheShortCircuitAcrossJobs(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	pts := ctx.Read(s.CreateEven("in", 400, 4)).Map("parse", Profile{MemPerByte: 1}).Cache()

	j1 := pts.Map("work", Profile{CPUPerByte: 1e-9}).Count("iter1")
	j2 := pts.Map("work", Profile{CPUPerByte: 1e-9}).Count("iter2")

	// Job 1 computes the cached RDD mid-pipeline.
	if j1.Final.CacheRDDID != pts.ID() {
		t.Fatalf("job1 does not materialize the cached RDD: %d", j1.Final.CacheRDDID)
	}
	for _, tk := range j1.Final.Tasks {
		if tk.Demand.CacheBytes <= 0 {
			t.Fatal("job1 tasks cache nothing")
		}
		if tk.CacheRDD != 0 {
			t.Fatal("job1 tasks should read the source, not the cache")
		}
	}
	// Job 2 short-circuits to the cache.
	for _, tk := range j2.Final.Tasks {
		if tk.CacheRDD != pts.ID() {
			t.Fatalf("job2 task does not read cache: %d", tk.CacheRDD)
		}
		if tk.Demand.CacheBytes != 0 {
			t.Fatal("job2 re-caches needlessly")
		}
	}
	if !pts.Materialized() {
		t.Fatal("cached RDD not marked materialized")
	}
}

func TestCachedShuffleInputStage(t *testing.T) {
	// A shuffle-map stage over an RDD cached by an earlier job must read
	// the cache, not recompile the parse lineage (TriangleCount's shape).
	s := newStore()
	ctx := NewContext("app", s, 1)
	edges := ctx.Read(s.CreateEven("in", 400, 4)).Map("edges", Profile{}).Cache()
	edges.Count("materialize")

	j2 := edges.Join(edges, "wedges", Profile{}, 4).Count("round")
	var mapStage *task.Stage
	for _, st := range j2.Stages {
		if st.Kind == task.ShuffleMap {
			mapStage = st
		}
	}
	if mapStage == nil {
		t.Fatal("no shuffle-map stage compiled")
	}
	if mapStage.RDDID != edges.ID() {
		t.Fatalf("map stage does not read the cached RDD (RDDID=%d)", mapStage.RDDID)
	}
	for _, tk := range mapStage.Tasks {
		if tk.CacheRDD != edges.ID() {
			t.Fatal("map task not cache-sourced")
		}
		if tk.Demand.CPUWork != 0 {
			t.Fatal("cache-read stage recomputed the parse work")
		}
	}
}

// TestCacheSourceDependsOnMaterializerInJob covers PageRank's shape: a
// stage reading a cached RDD within the same job that materializes it
// must wait for the materializing stage.
func TestCacheSourceDependsOnMaterializerInJob(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	links := ctx.Read(s.CreateEven("in", 400, 4)).Map("links", Profile{}).Cache()
	ranks := links.Map("init-ranks", Profile{OutRatio: 0.1})
	job := links.Join(ranks, "contrib", Profile{}, 4).Count("pr")

	var initStage *task.Stage
	for _, st := range job.Stages {
		if st.RDDID == links.ID() && st.Kind == task.ShuffleMap && len(st.Tasks) > 0 &&
			st.Tasks[0].Demand.ShuffleWriteBytes < 50 {
			initStage = st // the tiny init-ranks stage
		}
	}
	if initStage == nil {
		t.Skip("init stage heuristics did not isolate the stage")
	}
	if len(initStage.Parent) == 0 {
		t.Fatal("cache-source stage has no dependency on its materializer")
	}
}

func TestSkewProducesVariedDemand(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	job := ctx.Read(s.CreateEven("in", 4000, 8)).
		Map("m", Profile{CPUPerByte: 1e-9, Skew: 0.5}).
		Count("job1")
	min, max := job.Final.Tasks[0].Demand.CPUWork, job.Final.Tasks[0].Demand.CPUWork
	for _, tk := range job.Final.Tasks {
		w := tk.Demand.CPUWork
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max <= min {
		t.Fatal("skewed profile produced uniform demands")
	}
}

func TestDeterministicCompile(t *testing.T) {
	build := func() *task.Application {
		s := hdfs.NewStore(nodes, 2, 9)
		ctx := NewContext("app", s, 9)
		pts := ctx.Read(s.CreateSkewed("in", 4000, 8, 0.3)).Map("m", Profile{CPUPerByte: 1e-9, Skew: 0.2}).Cache()
		pts.Shuffle("sh", Profile{Skew: 0.3}, 4).Count("j1")
		pts.Map("m2", Profile{CPUPerByte: 2e-9}).Count("j2")
		return ctx.App()
	}
	a, b := build(), build()
	at, bt := a.AllTasks(), b.AllTasks()
	if len(at) != len(bt) {
		t.Fatalf("task counts differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i].Demand != bt[i].Demand {
			t.Fatalf("task %d demand differs: %+v vs %+v", i, at[i].Demand, bt[i].Demand)
		}
	}
}

func TestJobAndTaskNumbering(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	r := ctx.Read(s.CreateEven("in", 100, 2))
	j1 := r.Count("a")
	j2 := r.Count("b")
	if j1.ID != 1 || j2.ID != 2 {
		t.Fatalf("job ids: %d, %d", j1.ID, j2.ID)
	}
	seen := map[int]bool{}
	for _, tk := range ctx.App().AllTasks() {
		if seen[tk.ID] {
			t.Fatalf("duplicate task id %d", tk.ID)
		}
		seen[tk.ID] = true
	}
}

func TestStageSignatureStableAcrossJobs(t *testing.T) {
	s := newStore()
	ctx := NewContext("app", s, 1)
	pts := ctx.Read(s.CreateEven("in", 400, 4)).Map("parse", Profile{}).Cache()
	j1 := pts.Map("grad", Profile{}).Count("iter1")
	j2 := pts.Map("grad", Profile{}).Count("iter2")
	if j1.Final.Signature != j2.Final.Signature {
		t.Fatalf("signatures differ: %q vs %q", j1.Final.Signature, j2.Final.Signature)
	}
}

// Property: compiled demand vectors are always non-negative and the
// final-stage OutputBytes respect the action's ratio for any sizes.
func TestQuickDemandsNonNegative(t *testing.T) {
	f := func(totalKB uint16, parts uint8, cpu uint8, ratioPct uint8) bool {
		total := int64(totalKB%2000+1) * 1024
		p := int(parts%16) + 1
		s := hdfs.NewStore(nodes, 2, 3)
		ctx := NewContext("app", s, 3)
		job := ctx.Read(s.CreateEven("in", total, p)).
			Map("m", Profile{
				CPUPerByte: float64(cpu) * 1e-10,
				OutRatio:   float64(ratioPct%200)/100 + 0.01,
			}).
			Count("j")
		for _, tk := range job.Final.Tasks {
			d := tk.Demand
			if d.CPUWork < 0 || d.InputBytes < 0 || d.PeakMemory < 0 ||
				d.OutputBytes < 0 || d.ShuffleWriteBytes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
