package rdd

import (
	"fmt"

	"rupam/internal/stats"
	"rupam/internal/task"
)

// RunJob compiles the DAG reachable from r into a Job triggered by an
// action whose own per-byte cost is actionProf (its OutRatio scales the
// result bytes sent back to the driver), appends the job to the context's
// application, and returns it. Cached RDDs that an earlier job of this
// application materialized become cache sources: their lineage is not
// recompiled, mirroring Spark's cache short-circuit.
func (r *RDD) RunJob(name string, actionProf Profile) *task.Job {
	c := r.ctx
	job := &task.Job{ID: c.jobID(), Name: name}
	b := &jobBuilder{ctx: c, job: job, stages: make(map[int]*task.Stage)}
	final := b.stageFor(r, task.Result, &actionProf)
	job.Final = final
	// Fixup pass: a stage that reads RDD X from the cache must wait for
	// the stage that materializes X when both are in this job (e.g. the
	// first PageRank iteration joining the cached links the same job
	// parses).
	for _, st := range job.Stages {
		if st.RDDID == 0 {
			continue
		}
		if ms, ok := b.stages[st.RDDID]; ok && ms != st && !hasParent(st, ms) {
			st.Parent = append(st.Parent, ms)
		}
	}
	c.app.Jobs = append(c.app.Jobs, job)
	return job
}

// Count is RunJob with a trivial action profile — the common case for the
// benchmark drivers.
func (r *RDD) Count(name string) *task.Job {
	return r.RunJob(name, Profile{CPUPerByte: 0, OutRatio: 1e-6})
}

func hasParent(st, p *task.Stage) bool {
	for _, x := range st.Parent {
		if x == p {
			return true
		}
	}
	return false
}

type jobBuilder struct {
	ctx    *Context
	job    *task.Job
	stages map[int]*task.Stage // by final RDD id, within this job
}

// stageFor returns the stage computing r within the job, creating it (and
// its parent stages) if needed. kind is ShuffleMap when the stage feeds a
// downstream shuffle and Result for the action stage; actionProf is
// non-nil only for the Result stage.
func (b *jobBuilder) stageFor(r *RDD, kind task.Kind, actionProf *Profile) *task.Stage {
	if st, ok := b.stages[r.id]; ok {
		return st
	}
	// Walk the narrow chain back to the pipeline head. chain holds the
	// RDDs whose work executes inside this stage, head-first.
	var chain []*RDD
	cur := r
	for {
		if cur.source != nil {
			break // leaf: input read from the block store
		}
		if cur.materialized && cur.cached {
			// Cache source: an earlier job materialized this RDD, so the
			// stage starts from the cache instead of recompiling lineage.
			// This also covers cur == r: a shuffle-map stage over a
			// cached RDD (e.g. joining a cached graph) just reads the
			// cached partitions and writes shuffle output.
			break
		}
		chain = append([]*RDD{cur}, chain...)
		if cur.wide {
			break // shuffle boundary: this stage starts with the shuffle read
		}
		cur = cur.parent
	}

	st := &task.Stage{
		ID:        b.ctx.stageID(),
		Name:      fmt.Sprintf("%s@%s", b.job.Name, r.name),
		JobID:     b.job.ID,
		Signature: r.name,
		Kind:      kind,
	}
	b.stages[r.id] = st
	b.job.Stages = append(b.job.Stages, st)

	// Classify the pipeline head and wire parent stages.
	var (
		head       *RDD // first RDD in chain doing work, nil if chain empty
		srcDS      = cur.source
		cacheSrc   *RDD
		shuffleSrc *RDD
	)
	if len(chain) > 0 {
		head = chain[0]
	}
	switch {
	case head != nil && head.wide:
		shuffleSrc = head
		st.Parent = append(st.Parent, b.stageFor(head.parent, task.ShuffleMap, nil))
		if head.parent2 != nil {
			st.Parent = append(st.Parent, b.stageFor(head.parent2, task.ShuffleMap, nil))
		}
	case srcDS != nil:
		// leaf input
	default:
		cacheSrc = cur
		st.RDDID = cur.id
	}

	// The stage materializes a cached RDD if the pipeline computes one —
	// persistence is a side effect of the first computation, wherever in
	// the chain the .Cache() call sits (Spark caches the partition as the
	// iterator passes through). With several cached RDDs in one chain the
	// most downstream wins; a stage reading r from the cache stores
	// nothing new.
	var cacheRDD *RDD
	for _, rr := range chain {
		if rr.cached && !rr.materialized {
			cacheRDD = rr
		}
	}
	if cacheRDD != nil {
		st.CacheRDDID = cacheRDD.id
		cacheRDD.materialized = true
		cacheRDD.recomputeCPU = make([]float64, r.partitions)
	}

	// Build tasks.
	n := r.partitions
	st.Tasks = make([]*task.Task, n)

	// Per-profile compute-skew factors for narrow transformations (wide
	// skew is already baked into partition bytes).
	skews := make([][]float64, len(chain))
	for pi, rr := range chain {
		if !rr.wide && rr.prof.Skew > 0 {
			skews[pi] = stats.SkewFactors(b.ctx.rng, n, rr.prof.Skew)
		}
	}

	for i := 0; i < n; i++ {
		var d task.Demand
		var t task.Task

		// Head input bytes.
		var bytes int64
		switch {
		case shuffleSrc != nil:
			bytes = shuffleSrc.shuffleInBytes[i]
			d.ShuffleReadBytes = bytes
		case srcDS != nil:
			bytes = srcDS.PartitionBytes[i%srcDS.Partitions()]
			d.InputBytes = bytes
			t.PrefNodes = append([]string(nil), srcDS.Replicas(i%srcDS.Partitions())...)
		case cacheSrc != nil:
			bytes = cacheSrc.partBytes[i%len(cacheSrc.partBytes)]
			d.InputBytes = bytes
			t.CacheRDD = cacheSrc.id
			if len(cacheSrc.recomputeCPU) > 0 {
				d.FallbackCPUWork = cacheSrc.recomputeCPU[i%len(cacheSrc.recomputeCPU)]
			}
			if cacheSrc.rootDS != nil {
				t.PrefNodes = append([]string(nil), cacheSrc.rootDS.Replicas(i%cacheSrc.rootDS.Partitions())...)
			}
		}

		// Pipeline the chain's work.
		flow := float64(bytes)
		for pi, rr := range chain {
			p := rr.prof
			factor := 1.0
			if skews[pi] != nil {
				factor = skews[pi][i]
			}
			d.CPUWork += p.CPUPerByte * flow * factor
			d.GPUWork += p.GPUPerByte * flow * factor
			mem := int64(p.MemPerByte*flow*factor) + p.MemBase
			if mem > d.PeakMemory {
				d.PeakMemory = mem
			}
			ratio := p.OutRatio
			if ratio == 0 {
				ratio = 1
			}
			flow *= ratio
		}
		if cacheSrc != nil || srcDS != nil {
			// Reading the head input still costs deserialize-level memory.
			if d.PeakMemory < bytes/4 {
				d.PeakMemory = bytes / 4
			}
		}

		switch kind {
		case task.ShuffleMap:
			d.ShuffleWriteBytes = int64(flow)
		case task.Result:
			if actionProf != nil {
				d.CPUWork += actionProf.CPUPerByte * flow
				d.GPUWork += actionProf.GPUPerByte * flow
				mem := int64(actionProf.MemPerByte*flow) + actionProf.MemBase
				if mem > d.PeakMemory {
					d.PeakMemory = mem
				}
				outR := actionProf.OutRatio
				if outR == 0 {
					outR = 1
				}
				d.OutputBytes = int64(flow * outR)
			} else {
				d.OutputBytes = int64(flow)
			}
		}
		if cacheRDD != nil {
			d.CacheBytes = cacheRDD.partBytes[i%len(cacheRDD.partBytes)]
			// Rebuilding this partition from lineage costs the chain's
			// CPU work up to the cached RDD (approximated by the whole
			// pipeline's compute for mid-chain caches).
			cacheRDD.recomputeCPU[i] = d.CPUWork
		}

		t.ID = b.ctx.taskID()
		t.StageID = st.ID
		t.Index = i
		t.Kind = kind
		t.Demand = d
		tt := t
		st.Tasks[i] = &tt
	}
	return st
}
