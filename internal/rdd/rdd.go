// Package rdd provides the framework's logical-plan API: resilient
// distributed datasets built from transformations, compiled into the
// stage/task DAGs of package task exactly the way Spark's DAGScheduler
// does — stages split at shuffle (wide) dependencies, narrow chains
// pipelined into a single stage, cached RDDs short-circuiting lineage in
// later jobs.
//
// Transformations carry a Profile describing the physical work per input
// byte (compute, accelerator-offloadable compute, memory footprint, output
// ratio, skew). The workload generators in package workloads express the
// SparkBench applications in this API.
package rdd

import (
	"fmt"

	"rupam/internal/hdfs"
	"rupam/internal/stats"
	"rupam/internal/task"
)

// Profile describes the physical cost of one transformation, per byte of
// its input.
type Profile struct {
	// CPUPerByte is compute demand in giga-cycles per input byte.
	CPUPerByte float64
	// GPUPerByte is compute demand offloadable to a GPU, in giga-cycles
	// per input byte (the NVBLAS-style kernels of the paper's GM/KMeans).
	GPUPerByte float64
	// MemPerByte is working-set bytes per input byte.
	MemPerByte float64
	// MemBase is a fixed working-set floor in bytes.
	MemBase int64
	// OutRatio is output bytes per input byte (1 = size-preserving).
	OutRatio float64
	// Skew is the log-normal sigma of per-task demand skew introduced by
	// this transformation (0 = uniform).
	Skew float64
}

// Context owns RDD numbering, the PRNG for skew, and the application being
// built. One Context builds one Application.
type Context struct {
	store *hdfs.Store
	rng   *stats.Rand

	nextRDD   int
	nextStage int
	nextTask  int
	nextJob   int

	app *task.Application
}

// NewContext creates a plan-building context over the given block store.
// seed drives skew-factor generation only; the same seed always yields the
// same application.
func NewContext(appName string, store *hdfs.Store, seed uint64) *Context {
	return &Context{
		store: store,
		rng:   stats.NewRand(seed),
		app:   &task.Application{Name: appName},
	}
}

// App returns the application built so far.
func (c *Context) App() *task.Application { return c.app }

// Store returns the context's block store.
func (c *Context) Store() *hdfs.Store { return c.store }

// RDD is a node in the logical plan.
type RDD struct {
	ctx  *Context
	id   int
	name string

	partitions int
	prof       Profile

	parent  *RDD
	parent2 *RDD // second join input
	wide    bool // producing this RDD requires a shuffle

	source *hdfs.Dataset // non-nil for leaf RDDs

	cached       bool
	materialized bool // a compiled job computes (and caches) it

	// partBytes estimates this RDD's per-partition size after the
	// transformation, used to derive downstream demands.
	partBytes []int64

	// rootDS and rootBytes give the lineage fallback: where (and how
	// much) to re-read if this RDD's cached partition was evicted.
	rootDS    *hdfs.Dataset
	rootBytes []int64

	// shuffleInBytes, for wide RDDs, is the per-partition shuffle read
	// volume (the transformation's input, before OutRatio).
	shuffleInBytes []int64

	// recomputeCPU, for materialized cached RDDs, is the per-partition
	// CPU cost (giga-cycles) of rebuilding the partition from lineage —
	// charged to tasks whose cache lookup misses at runtime.
	recomputeCPU []float64
}

// ID returns the RDD's identifier (unique within the context).
func (r *RDD) ID() int { return r.id }

// Name returns the RDD's plan name.
func (r *RDD) Name() string { return r.name }

// Partitions returns the RDD's partition count.
func (r *RDD) Partitions() int { return r.partitions }

// PartitionBytes returns the estimated size of partition p.
func (r *RDD) PartitionBytes(p int) int64 { return r.partBytes[p] }

// TotalBytes returns the estimated total size of the RDD.
func (r *RDD) TotalBytes() int64 {
	var t int64
	for _, b := range r.partBytes {
		t += b
	}
	return t
}

// Read creates a leaf RDD over a stored dataset, one partition per block.
func (c *Context) Read(ds *hdfs.Dataset) *RDD {
	c.nextRDD++
	pb := append([]int64(nil), ds.PartitionBytes...)
	return &RDD{
		ctx: c, id: c.nextRDD, name: "read:" + ds.Name,
		partitions: ds.Partitions(),
		source:     ds,
		partBytes:  pb,
		rootDS:     ds,
		rootBytes:  pb,
	}
}

// Map applies a narrow transformation: same partitioning, pipelined into
// the parent's stage.
func (r *RDD) Map(name string, prof Profile) *RDD {
	r.ctx.nextRDD++
	out := make([]int64, r.partitions)
	ratio := prof.OutRatio
	if ratio == 0 {
		ratio = 1
	}
	for i, b := range r.partBytes {
		out[i] = scaleBytes(b, ratio)
	}
	return &RDD{
		ctx: r.ctx, id: r.ctx.nextRDD, name: name,
		partitions: r.partitions,
		prof:       prof,
		parent:     r,
		partBytes:  out,
		rootDS:     r.rootDS,
		rootBytes:  r.rootBytes,
	}
}

// Shuffle applies a wide transformation (reduceByKey, groupBy, sortByKey):
// the child stage reads the parent's shuffle output repartitioned into
// numPartitions, skewed per prof.Skew.
func (r *RDD) Shuffle(name string, prof Profile, numPartitions int) *RDD {
	if numPartitions <= 0 {
		numPartitions = r.partitions
	}
	r.ctx.nextRDD++
	ratio := prof.OutRatio
	if ratio == 0 {
		ratio = 1
	}
	inTotal := r.TotalBytes()
	factors := stats.SkewFactors(r.ctx.rng, numPartitions, prof.Skew)
	out := make([]int64, numPartitions)
	in := make([]int64, numPartitions)
	each := float64(inTotal) / float64(numPartitions)
	for i := range out {
		in[i] = int64(each * factors[i])
		out[i] = scaleBytes(in[i], ratio)
	}
	return &RDD{
		ctx: r.ctx, id: r.ctx.nextRDD, name: name,
		partitions: numPartitions,
		prof:       prof,
		parent:     r,
		wide:       true,
		partBytes:  out,
		rootDS:     r.rootDS,
		rootBytes:  resize(r.rootBytes, numPartitions),

		shuffleInBytes: in,
	}
}

// Join shuffles both inputs into numPartitions and combines them. Demands
// are derived from the summed input sizes.
func (r *RDD) Join(other *RDD, name string, prof Profile, numPartitions int) *RDD {
	if numPartitions <= 0 {
		numPartitions = r.partitions
	}
	r.ctx.nextRDD++
	ratio := prof.OutRatio
	if ratio == 0 {
		ratio = 1
	}
	inTotal := r.TotalBytes() + other.TotalBytes()
	factors := stats.SkewFactors(r.ctx.rng, numPartitions, prof.Skew)
	out := make([]int64, numPartitions)
	in := make([]int64, numPartitions)
	each := float64(inTotal) / float64(numPartitions)
	for i := range out {
		in[i] = int64(each * factors[i])
		out[i] = scaleBytes(in[i], ratio)
	}
	root, rootBytes := r.rootDS, r.rootBytes
	if other.TotalBytes() > r.TotalBytes() {
		root, rootBytes = other.rootDS, other.rootBytes
	}
	return &RDD{
		ctx: r.ctx, id: r.ctx.nextRDD, name: name,
		partitions: numPartitions,
		prof:       prof,
		parent:     r,
		parent2:    other,
		wide:       true,
		partBytes:  out,
		rootDS:     root,
		rootBytes:  resize(rootBytes, numPartitions),

		shuffleInBytes: in,
	}
}

// Cache marks the RDD for storage-memory caching once materialized; later
// jobs reading it get PROCESS_LOCAL placement on the caching executor.
func (r *RDD) Cache() *RDD {
	r.cached = true
	return r
}

func scaleBytes(b int64, ratio float64) int64 {
	out := int64(float64(b) * ratio)
	if out < 1 {
		out = 1
	}
	return out
}

func resize(bytes []int64, n int) []int64 {
	if len(bytes) == 0 {
		return make([]int64, n)
	}
	var total int64
	for _, b := range bytes {
		total += b
	}
	out := make([]int64, n)
	each := total / int64(n)
	for i := range out {
		out[i] = each
	}
	return out
}

func (c *Context) stageID() int   { c.nextStage++; return c.nextStage }
func (c *Context) taskID() int    { c.nextTask++; return c.nextTask }
func (c *Context) jobID() int     { c.nextJob++; return c.nextJob }
func (r *RDD) String() string     { return fmt.Sprintf("rdd %d (%s)", r.id, r.name) }
func (r *RDD) Cached() bool       { return r.cached }
func (r *RDD) Materialized() bool { return r.materialized }
