package faults

import (
	"reflect"
	"strings"
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/simx"
)

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{Kind: NodeCrash},                                       // no node
		{Kind: NodeCrash, Node: "a", At: -1},                    // negative time
		{Kind: NodeCrash, Node: "a", Duration: -2},              // negative duration
		{Kind: NICDegrade, Node: "a", Duration: 5},              // factor 0
		{Kind: NICDegrade, Node: "a", Duration: 5, Factor: 1.5}, // factor > 1
		{Kind: DiskDegrade, Node: "a", Factor: 0.5},             // no duration
		{Kind: HeartbeatLoss, Node: "a"},                        // no duration
		{Kind: Kind(99), Node: "a"},                             // unknown kind
	}
	for _, e := range bad {
		if e.Validate() == nil {
			t.Errorf("event %v validated", e)
		}
	}
	good := []Event{
		{Kind: NodeCrash, Node: "a", At: 10},              // permanent crash
		{Kind: NodeCrash, Node: "a", At: 10, Duration: 5}, // with recovery
		{Kind: NICDegrade, Node: "a", At: 1, Duration: 5, Factor: 0.25},
		{Kind: DiskDegrade, Node: "a", At: 1, Duration: 5, Factor: 1},
		{Kind: HeartbeatLoss, Node: "a", At: 1, Duration: 5},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("event %v rejected: %v", e, err)
		}
	}
}

func TestScheduleEmptyAndValidate(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() || nilSched.Validate() != nil {
		t.Fatal("nil schedule must be empty and valid")
	}
	if !(&Schedule{}).Empty() {
		t.Fatal("zero schedule must be empty")
	}
	s := &Schedule{Events: []Event{{Kind: HeartbeatLoss, Node: "a"}}}
	if s.Empty() || s.Validate() == nil {
		t.Fatal("invalid event must fail schedule validation")
	}
}

func TestSortedIsStableAndOrderIndependent(t *testing.T) {
	a := Event{Kind: NodeCrash, Node: "a", At: 5}
	b := Event{Kind: NICDegrade, Node: "b", At: 1, Duration: 2, Factor: 0.5}
	c := Event{Kind: HeartbeatLoss, Node: "a", At: 5, Duration: 3}
	s1 := &Schedule{Events: []Event{a, b, c}}
	s2 := &Schedule{Events: []Event{c, a, b}}
	if !reflect.DeepEqual(s1.sorted(), s2.sorted()) {
		t.Fatal("sorted order depends on assembly order")
	}
	if got := s1.sorted()[0]; got != b {
		t.Fatalf("earliest event not first: %v", got)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	cfg := GenConfig{Crashes: 3, Degrades: 4, HeartbeatLosses: 2, PermanentProb: 0.3}
	a := RandomSchedule(7, nodes, cfg)
	b := RandomSchedule(7, nodes, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if len(a.Events) != 9 {
		t.Fatalf("want 9 events, got %d", len(a.Events))
	}
	c := RandomSchedule(8, nodes, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if !RandomSchedule(7, nil, cfg).Empty() {
		t.Fatal("no nodes must yield an empty schedule")
	}
}

// twoNode builds a 2-node cluster with executors for injector tests.
func twoNode(t *testing.T) (*simx.Engine, *cluster.Cluster, map[string]*executor.Executor) {
	t.Helper()
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	spec := cluster.NodeSpec{
		Class: "t", Cores: 4, FreqGHz: 2,
		MemBytes: 8 * cluster.GB, NetBandwidth: cluster.GbE(1),
		DiskReadBW: cluster.MBps(200), DiskWriteBW: cluster.MBps(100),
	}
	cache := executor.NewCacheTracker()
	execs := make(map[string]*executor.Executor)
	for _, name := range []string{"a", "b"} {
		s := spec
		s.Name = name
		clu.AddNode(s)
		executor.New(eng, clu, clu.Node(name), cache, execs, executor.Config{HeapBytes: 4 * cluster.GB, Seed: 1})
	}
	return eng, clu, execs
}

func TestInjectorAppliesAndRestores(t *testing.T) {
	eng, clu, execs := twoNode(t)
	inj := NewInjector(eng, clu, execs)
	var lines []string
	inj.Trace = func(s string) { lines = append(lines, s) }
	inj.Install(&Schedule{Events: []Event{
		{Kind: NodeCrash, Node: "a", At: 1, Duration: 2},
		{Kind: NICDegrade, Node: "b", At: 1, Duration: 3, Factor: 0.5},
		{Kind: DiskDegrade, Node: "b", At: 1, Duration: 3, Factor: 0.25},
		{Kind: HeartbeatLoss, Node: "b", At: 2, Duration: 2},
	}})

	eng.At(1.5, func() {
		if !execs["a"].FailStopped() || !inj.Suppressed("a") {
			t.Error("a not fail-stopped at t=1.5")
		}
		if cap := clu.Node("b").DiskRead.Capacity(); cap != cluster.MBps(200)*0.25 {
			t.Errorf("b disk read capacity = %v mid-window", cap)
		}
	})
	eng.At(2.5, func() {
		if !inj.Suppressed("b") {
			t.Error("b heartbeats not suppressed at t=2.5")
		}
	})
	eng.At(5.0, func() {
		if execs["a"].FailStopped() || inj.Suppressed("a") || inj.Suppressed("b") {
			t.Error("faults not lifted at t=5")
		}
		if cap := clu.Node("b").DiskRead.Capacity(); cap != cluster.MBps(200) {
			t.Errorf("b disk read capacity = %v after window", cap)
		}
	})
	eng.Run()

	if inj.Crashes != 1 || inj.Recoveries != 1 || inj.NICDegrades != 1 ||
		inj.DiskDegrades != 1 || inj.HeartbeatLosses != 1 {
		t.Fatalf("counters: %+v", inj)
	}
	if len(lines) == 0 || !strings.Contains(strings.Join(lines, "\n"), "crash a") {
		t.Fatalf("trace lines missing: %v", lines)
	}
}

func TestInstallRejectsUnknownNode(t *testing.T) {
	eng, clu, execs := twoNode(t)
	inj := NewInjector(eng, clu, execs)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node accepted")
		}
	}()
	inj.Install(&Schedule{Events: []Event{{Kind: NodeCrash, Node: "ghost", At: 1}}})
}

func TestInstallRejectsInvalidSchedule(t *testing.T) {
	eng, clu, execs := twoNode(t)
	inj := NewInjector(eng, clu, execs)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid schedule accepted")
		}
	}()
	inj.Install(&Schedule{Events: []Event{{Kind: NICDegrade, Node: "a", At: 1, Duration: 2, Factor: 0}}})
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		NodeCrash: "node-crash", NICDegrade: "nic-degrade",
		DiskDegrade: "disk-degrade", HeartbeatLoss: "heartbeat-loss",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind string uninformative")
	}
}

func TestMsgEventValidate(t *testing.T) {
	bad := []Event{
		{Kind: MsgDrop, At: 1, Duration: 5},                             // factor 0
		{Kind: MsgDup, At: 1, Duration: 5, Factor: 1.5},                 // factor > 1
		{Kind: MsgDrop, At: 1, Factor: 0.3},                             // no duration
		{Kind: MsgDelay, At: 1, Duration: 5, Factor: 0.3},               // no delay
		{Kind: MsgDelay, At: 1, Duration: 5, Factor: 0.3, Delay: -0.1},  // negative delay
		{Kind: MsgReorder, Node: "a", At: -1, Duration: 5, Factor: 0.3}, // negative time
		{Kind: MsgReorder, Node: "a", At: 1, Duration: -5, Factor: 0.3}, // negative duration
	}
	for _, e := range bad {
		if e.Validate() == nil {
			t.Errorf("event %v validated", e)
		}
	}
	good := []Event{
		{Kind: MsgDrop, At: 1, Duration: 5, Factor: 0.3},         // global scope
		{Kind: MsgDup, Node: "a", At: 1, Duration: 5, Factor: 1}, // node scope
		{Kind: MsgDelay, At: 1, Duration: 5, Factor: 0.3, Delay: 0.2},
		{Kind: MsgReorder, Node: "a", At: 1, Duration: 5, Factor: 0.3},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("event %v rejected: %v", e, err)
		}
	}
}

func TestMsgWindowOverlapValidation(t *testing.T) {
	// Same kind, same scope, overlapping windows: rejected.
	s := &Schedule{Events: []Event{
		{Kind: MsgDrop, At: 1, Duration: 10, Factor: 0.3},
		{Kind: MsgDrop, At: 5, Duration: 10, Factor: 0.2},
	}}
	if s.Validate() == nil {
		t.Fatal("overlapping same-kind same-scope msg windows validated")
	}
	// Different scope: fine.
	s = &Schedule{Events: []Event{
		{Kind: MsgDrop, At: 1, Duration: 10, Factor: 0.3},
		{Kind: MsgDrop, Node: "a", At: 5, Duration: 10, Factor: 0.2},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("distinct scopes rejected: %v", err)
	}
	// Different kind, same scope and window: fine (kinds compose).
	s = &Schedule{Events: []Event{
		{Kind: MsgDrop, At: 1, Duration: 10, Factor: 0.3},
		{Kind: MsgDup, At: 1, Duration: 10, Factor: 0.3},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("distinct kinds rejected: %v", err)
	}
	// Same kind, same scope, disjoint windows: fine.
	s = &Schedule{Events: []Event{
		{Kind: MsgDelay, At: 1, Duration: 4, Factor: 0.3, Delay: 0.2},
		{Kind: MsgDelay, At: 6, Duration: 4, Factor: 0.3, Delay: 0.1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint windows rejected: %v", err)
	}
}

func TestRandomScheduleDrawsMsgFaults(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	cfg := GenConfig{MsgDrops: 2, MsgDups: 1, MsgDelays: 2, MsgReorders: 1}
	a := RandomSchedule(7, nodes, cfg)
	b := RandomSchedule(7, nodes, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	count := map[Kind]int{}
	for _, ev := range a.Events {
		if !ev.Kind.IsMessageKind() {
			t.Fatalf("non-message event %v drawn by a msg-only config", ev)
		}
		count[ev.Kind]++
		if ev.Kind == MsgDelay && ev.Delay <= 0 {
			t.Fatalf("msg-delay drew non-positive delay: %v", ev)
		}
	}
	if count[MsgDrop] != 2 || count[MsgDup] != 1 || count[MsgDelay] != 2 || count[MsgReorder] != 1 {
		t.Fatalf("draw counts wrong: %v", count)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	// Adding message faults must not perturb the pre-existing draw
	// sequence: the worker-fault prefix of a mixed plan equals the plan
	// drawn without message faults.
	base := GenConfig{Crashes: 2, Degrades: 3, TaskFlakes: 2, DriverCrashes: 1, SpotPreempts: 1}
	ext := base
	ext.MsgDrops, ext.MsgReorders = 2, 1
	p0 := RandomSchedule(11, nodes, base)
	p1 := RandomSchedule(11, nodes, ext)
	if len(p1.Events) <= len(p0.Events) {
		t.Fatalf("extended plan not longer: %d vs %d", len(p1.Events), len(p0.Events))
	}
	if !reflect.DeepEqual(p0.Events, p1.Events[:len(p0.Events)]) {
		t.Fatal("message-fault draws perturbed the pre-existing fault trace")
	}
}

func TestInjectorSkipsMsgKinds(t *testing.T) {
	eng, clu, execs := twoNode(t)
	inj := NewInjector(eng, clu, execs)
	// A msg window scoped to an unknown "node" must not panic: scopes are
	// protocol addresses, not cluster nodes, and the injector ignores them.
	inj.Install(&Schedule{Events: []Event{
		{Kind: MsgDrop, Node: "driver:3", At: 1, Duration: 5, Factor: 0.5},
		{Kind: MsgDelay, At: 1, Duration: 5, Factor: 0.5, Delay: 0.2},
	}})
	if eng.Pending() != 0 {
		t.Fatalf("injector scheduled %d events for message faults", eng.Pending())
	}
}

func TestSpotScheduleDeterministicAndShaped(t *testing.T) {
	nodes := []string{"c", "a", "b", "d"}
	hazards := map[string]float64{"a": 60, "b": 120, "c": 0, "d": -5}
	cfg := GenConfig{Horizon: 600, MinGrace: 5, MaxGrace: 12}

	plan := SpotSchedule(7, nodes, hazards, cfg)
	if len(plan.Events) == 0 {
		t.Fatal("hazards of 60-120/hour over 10 minutes drew no preemptions")
	}

	// Same seed reproduces the plan bit-for-bit, and the draw order is
	// pinned to sorted node names, not the caller's slice order.
	again := SpotSchedule(7, []string{"d", "b", "a", "c"}, hazards, cfg)
	if !reflect.DeepEqual(plan, again) {
		t.Fatal("same seed and inputs drew a different plan")
	}
	if other := SpotSchedule(8, nodes, hazards, cfg); reflect.DeepEqual(plan, other) {
		t.Fatal("different seeds drew identical plans")
	}

	last := map[string]float64{}
	for _, ev := range plan.Events {
		if ev.Kind != SpotPreempt {
			t.Fatalf("non-preemption event %v in a spot plan", ev)
		}
		if ev.Node == "c" || ev.Node == "d" {
			t.Fatalf("on-demand node %s was reclaimed", ev.Node)
		}
		if ev.At >= cfg.Horizon {
			t.Fatalf("event at %.1f beyond horizon %.0f", ev.At, cfg.Horizon)
		}
		if ev.Duration < cfg.MinGrace || ev.Duration > cfg.MaxGrace {
			t.Fatalf("grace %.2f outside [%.0f, %.0f]", ev.Duration, cfg.MinGrace, cfg.MaxGrace)
		}
		// A reclaimed instance must be re-acquired before it can be warned
		// again: windows on one node never overlap.
		if ev.At < last[ev.Node] {
			t.Fatalf("node %s re-warned at %.2f while doomed until %.2f", ev.Node, ev.At, last[ev.Node])
		}
		last[ev.Node] = ev.At + ev.Duration
	}

	// The hotter hazard reclaims more often over a long horizon.
	count := map[string]int{}
	long := SpotSchedule(7, nodes, hazards, GenConfig{Horizon: 7200, MinGrace: 5, MaxGrace: 12})
	for _, ev := range long.Events {
		count[ev.Node]++
	}
	if count["b"] <= count["a"] {
		t.Fatalf("hazard 120/h drew %d events vs %d for 60/h", count["b"], count["a"])
	}
}

func TestValidateAgentFaultEvents(t *testing.T) {
	bad := []Event{
		{Kind: AgentCrash, At: 1, Duration: 5},                // no node
		{Kind: AgentCrash, Node: "n1", At: -1, Duration: 5},   // negative time
		{Kind: AgentCrash, Node: "n1", At: 1, Duration: -5},   // negative downtime
		{Kind: AgentRestart, At: 3},                           // no node
		{Kind: AgentRestart, Node: "n1", At: 3, Duration: 2},  // restarts are instantaneous
		{Kind: AgentRestart, Node: "n1", At: 3, Duration: -2}, // negative duration
	}
	for _, e := range bad {
		if e.Validate() == nil {
			t.Errorf("event %v validated", e)
		}
	}
	good := []Event{
		{Kind: AgentCrash, Node: "n1", At: 1, Duration: 5},
		{Kind: AgentCrash, Node: "n1", At: 1}, // down until an explicit restart
		{Kind: AgentRestart, Node: "n1", At: 3},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("event %v rejected: %v", e, err)
		}
	}

	// An agent cannot crash while already down: overlapping crash windows
	// on one node are rejected, disjoint windows and distinct nodes pass.
	s := &Schedule{Events: []Event{
		{Kind: AgentCrash, Node: "n1", At: 2, Duration: 10},
		{Kind: AgentCrash, Node: "n1", At: 5, Duration: 3},
	}}
	if s.Validate() == nil {
		t.Fatal("overlapping agent-crash windows on one node validated")
	}
	s = &Schedule{Events: []Event{
		{Kind: AgentCrash, Node: "n1", At: 2}, // unbounded window
		{Kind: AgentCrash, Node: "n1", At: 50, Duration: 3},
	}}
	if s.Validate() == nil {
		t.Fatal("crash after a permanent agent crash on one node validated")
	}
	s = &Schedule{Events: []Event{
		{Kind: AgentCrash, Node: "n1", At: 2, Duration: 10},
		{Kind: AgentCrash, Node: "n2", At: 5, Duration: 3},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("agent crashes on distinct nodes rejected: %v", err)
	}
	s = &Schedule{Events: []Event{
		{Kind: AgentCrash, Node: "n1", At: 2, Duration: 3},
		{Kind: AgentCrash, Node: "n1", At: 20, Duration: 3},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint agent-crash windows rejected: %v", err)
	}
}

func TestRandomScheduleDrawsAgentCrashes(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	cfg := GenConfig{Horizon: 60, AgentCrashes: 2}
	a := RandomSchedule(13, nodes, cfg)
	b := RandomSchedule(13, nodes, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	n := 0
	for _, ev := range a.Events {
		if ev.Kind != AgentCrash {
			t.Fatalf("non-agent event %v drawn by an agent-only config", ev)
		}
		if ev.Duration <= 0 {
			t.Fatalf("agent crash drew non-positive downtime: %v", ev)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("drew %d agent crashes, want 2", n)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	// Agent crashes draw last: adding them must not perturb the
	// pre-existing draw sequence of a mixed plan.
	base := GenConfig{Crashes: 2, Degrades: 3, DriverCrashes: 1, MsgDrops: 1, LoadSpikes: 1}
	ext := base
	ext.AgentCrashes = 2
	p0 := RandomSchedule(17, nodes, base)
	p1 := RandomSchedule(17, nodes, ext)
	if len(p1.Events) <= len(p0.Events) {
		t.Fatalf("extended plan not longer: %d vs %d", len(p1.Events), len(p0.Events))
	}
	if !reflect.DeepEqual(p0.Events, p1.Events[:len(p0.Events)]) {
		t.Fatal("agent-crash draws perturbed the pre-existing fault trace")
	}
}
