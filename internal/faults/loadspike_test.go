package faults

import (
	"reflect"
	"testing"
)

func TestLoadSpikeValidate(t *testing.T) {
	bad := []Event{
		{Kind: LoadSpike, At: 1, Duration: 5, Factor: 2, Node: "a"}, // cluster-wide only
		{Kind: LoadSpike, At: 1, Duration: 5, Factor: 0.5},          // factor < 1
		{Kind: LoadSpike, At: 1, Factor: 2},                         // no duration
	}
	for _, e := range bad {
		if e.Validate() == nil {
			t.Errorf("event %v validated", e)
		}
	}
	good := Event{Kind: LoadSpike, At: 1, Duration: 5, Factor: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spike rejected: %v", err)
	}

	overlap := &Schedule{Events: []Event{
		{Kind: LoadSpike, At: 1, Duration: 10, Factor: 2},
		{Kind: LoadSpike, At: 5, Duration: 10, Factor: 3},
	}}
	if overlap.Validate() == nil {
		t.Fatal("overlapping spike windows validated")
	}
	disjoint := &Schedule{Events: []Event{
		{Kind: LoadSpike, At: 1, Duration: 4, Factor: 2},
		{Kind: LoadSpike, At: 10, Duration: 4, Factor: 3},
	}}
	if err := disjoint.Validate(); err != nil {
		t.Fatalf("disjoint spike windows rejected: %v", err)
	}
}

func TestRandomScheduleDrawsLoadSpikes(t *testing.T) {
	nodes := []string{"n1", "n2"}
	cfg := GenConfig{Horizon: 300, LoadSpikes: 3}
	a := RandomSchedule(7, nodes, cfg)
	if !reflect.DeepEqual(a, RandomSchedule(7, nodes, cfg)) {
		t.Fatal("same seed produced different spike schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	n := 0
	for _, ev := range a.Events {
		if ev.Kind != LoadSpike {
			t.Fatalf("non-spike event %v drawn by a spike-only config", ev)
		}
		n++
		if ev.Node != "" {
			t.Fatalf("spike scoped to a node: %v", ev)
		}
		if ev.Factor < 1.5 || ev.Factor > 4.0 {
			t.Fatalf("spike factor %v outside the default range", ev.Factor)
		}
		if ev.At+ev.Duration > cfg.Horizon {
			t.Fatalf("spike window %v runs past the horizon", ev)
		}
	}
	if n != 3 {
		t.Fatalf("drew %d spikes, want 3", n)
	}

	// Spike draws come last: adding them must not perturb the trace a
	// pre-existing seed draws for every other fault kind.
	base := GenConfig{Crashes: 2, Degrades: 2, TaskFlakes: 1, SpotPreempts: 1, MsgDrops: 1}
	ext := base
	ext.LoadSpikes = 2
	p0 := RandomSchedule(11, nodes, base)
	p1 := RandomSchedule(11, nodes, ext)
	if len(p1.Events) != len(p0.Events)+2 {
		t.Fatalf("extended plan has %d events, want %d", len(p1.Events), len(p0.Events)+2)
	}
	if !reflect.DeepEqual(p0.Events, p1.Events[:len(p0.Events)]) {
		t.Fatal("spike draws perturbed the pre-existing fault trace")
	}
}

func TestInjectorAppliesLoadSpike(t *testing.T) {
	eng, clu, execs := twoNode(t)
	inj := NewInjector(eng, clu, execs)
	var mults []float64
	inj.OnLoadSpike = func(m float64) { mults = append(mults, m) }
	inj.Install(&Schedule{Events: []Event{
		{Kind: LoadSpike, At: 1, Duration: 2, Factor: 2.5},
		{Kind: LoadSpike, At: 5, Duration: 1, Factor: 3},
	}})
	eng.Run()
	// Each window raises the multiplier on open and restores 1 on close.
	want := []float64{2.5, 1, 3, 1}
	if !reflect.DeepEqual(mults, want) {
		t.Fatalf("multiplier sequence %v, want %v", mults, want)
	}
	if inj.LoadSpikes != 2 {
		t.Fatalf("LoadSpikes counter = %d, want 2", inj.LoadSpikes)
	}
}

func TestInjectorLoadSpikeWithoutHook(t *testing.T) {
	eng, clu, execs := twoNode(t)
	inj := NewInjector(eng, clu, execs)
	// No OnLoadSpike hook: the spike is a no-op, not a panic, and the
	// empty Node must not trip the unknown-node check.
	inj.Install(&Schedule{Events: []Event{
		{Kind: LoadSpike, At: 1, Duration: 2, Factor: 2},
	}})
	eng.Run()
	if inj.LoadSpikes != 0 {
		t.Fatalf("hook-less spike counted: %d", inj.LoadSpikes)
	}
}
