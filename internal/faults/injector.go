package faults

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/simx"
)

// Injector applies a Schedule to a live cluster. It owns the mechanics of
// each fault — fail-stopping executors, rescaling NIC and disk capacities,
// opening heartbeat-suppression windows — and exposes Suppressed for the
// monitor's Drop hook; the driver-side consequences (executor-lost
// detection, fetch-failure resubmission, blacklisting) live in the
// scheduler runtime, which only observes the fault through missing
// heartbeats and dead attempts, exactly like a real driver.
type Injector struct {
	eng   *simx.Engine
	clu   *cluster.Cluster
	execs map[string]*executor.Executor

	// hbLost counts open HeartbeatLoss windows per node (windows may
	// overlap; the node reports again only when all have closed).
	hbLost map[string]int

	// Trace, if set, receives a line per applied fault.
	Trace func(string)

	// Counters for reporting.
	Crashes         int
	Recoveries      int
	NICDegrades     int
	DiskDegrades    int
	HeartbeatLosses int
}

// NewInjector creates an injector over the cluster's executors. The execs
// map is the shared by-node registry the executor layer maintains.
func NewInjector(eng *simx.Engine, clu *cluster.Cluster, execs map[string]*executor.Executor) *Injector {
	return &Injector{
		eng:    eng,
		clu:    clu,
		execs:  execs,
		hbLost: make(map[string]int),
	}
}

// Suppressed reports whether the node currently cannot heartbeat — it is
// fail-stopped or inside a heartbeat-loss window. Wire this into
// monitor.Monitor.Drop.
func (inj *Injector) Suppressed(node string) bool {
	if inj.hbLost[node] > 0 {
		return true
	}
	if ex, ok := inj.execs[node]; ok && ex.FailStopped() {
		return true
	}
	return false
}

// Install schedules every event in s onto the engine. It panics on an
// invalid schedule or an event naming an unknown node — fault plans are
// experiment constants, so misconfiguration is a programming error.
func (inj *Injector) Install(s *Schedule) {
	if s.Empty() {
		return
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	for _, ev := range s.sorted() {
		if inj.clu.Node(ev.Node) == nil {
			panic(fmt.Sprintf("faults: schedule names unknown node %q", ev.Node))
		}
		e := ev
		inj.eng.At(e.At, func() { inj.apply(e) })
	}
}

func (inj *Injector) trace(format string, args ...interface{}) {
	if inj.Trace != nil {
		inj.Trace(fmt.Sprintf("[%8.2fs] %s", inj.eng.Now(), fmt.Sprintf(format, args...)))
	}
}

func (inj *Injector) apply(ev Event) {
	switch ev.Kind {
	case NodeCrash:
		inj.crash(ev)
	case NICDegrade:
		inj.degradeNIC(ev)
	case DiskDegrade:
		inj.degradeDisk(ev)
	case HeartbeatLoss:
		inj.loseHeartbeats(ev)
	}
}

func (inj *Injector) crash(ev Event) {
	ex, ok := inj.execs[ev.Node]
	if !ok || ex.FailStopped() {
		return
	}
	inj.Crashes++
	inj.trace("crash %s (recovery %.0fs)", ev.Node, ev.Duration)
	if ev.Duration > 0 {
		inj.eng.Schedule(ev.Duration, func() {
			inj.Recoveries++
			inj.trace("recover %s", ev.Node)
		})
	}
	ex.FailStop(ev.Duration)
}

func (inj *Injector) degradeNIC(ev Event) {
	node := inj.clu.Node(ev.Node)
	base := node.Spec.NetBandwidth
	inj.NICDegrades++
	inj.trace("nic %s ×%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	inj.clu.Net.SetCapacity(ev.Node, base*ev.Factor, base*ev.Factor)
	inj.eng.Schedule(ev.Duration, func() {
		inj.clu.Net.SetCapacity(ev.Node, base, base)
	})
}

func (inj *Injector) degradeDisk(ev Event) {
	node := inj.clu.Node(ev.Node)
	readBase, writeBase := node.Spec.DiskReadBW, node.Spec.DiskWriteBW
	inj.DiskDegrades++
	inj.trace("disk %s ×%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	node.DiskRead.SetCapacity(readBase * ev.Factor)
	node.DiskWrite.SetCapacity(writeBase * ev.Factor)
	inj.eng.Schedule(ev.Duration, func() {
		node.DiskRead.SetCapacity(readBase)
		node.DiskWrite.SetCapacity(writeBase)
	})
}

func (inj *Injector) loseHeartbeats(ev Event) {
	inj.HeartbeatLosses++
	inj.trace("heartbeat loss %s for %.0fs", ev.Node, ev.Duration)
	inj.hbLost[ev.Node]++
	inj.eng.Schedule(ev.Duration, func() {
		inj.hbLost[ev.Node]--
	})
}
