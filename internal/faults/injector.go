package faults

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/simx"
	"rupam/internal/tracing"
)

// Injector applies a Schedule to a live cluster. It owns the mechanics of
// each fault — fail-stopping executors, rescaling NIC/disk/CPU capacities,
// squeezing effective heaps, flipping task-flake probabilities, opening
// heartbeat-suppression windows — and exposes Suppressed for the monitor's
// Drop hook; the driver-side consequences (executor-lost detection,
// fetch-failure resubmission, blacklisting, speculation) live in the
// scheduler runtime, which only observes the fault through missing
// heartbeats, slow monitor readings, and dead attempts, exactly like a
// real driver.
//
// Degradation windows of the same kind may overlap on one node: each
// (node, kind) pair tracks the multiset of active factors and applies the
// harshest (minimum) one, restoring the nominal value only when the last
// window closes. TaskFlake is the exception — overlapping flake windows
// apply the *maximum* probability, since independent failure sources make
// an attempt more likely to die, not less.
type Injector struct {
	eng   *simx.Engine
	clu   *cluster.Cluster
	execs map[string]*executor.Executor

	// hbLost counts open HeartbeatLoss windows per node (windows may
	// overlap; the node reports again only when all have closed).
	hbLost map[string]int

	// windows tracks the active degradation factors per (node, kind) so
	// overlapping windows compose instead of restoring nominal capacity
	// too early.
	windows map[windowKey][]float64

	// Trace, if set, receives a line per applied fault.
	Trace func(string)

	// Collector, if set, records each fault window as a structured span on
	// the node's fault track. Nil (the default) records nothing.
	Collector *tracing.Collector

	// OnDriverCrash, if set, is invoked for DriverCrash events with the
	// restart delay; the scheduler runtime wires its crash/recovery path
	// here. Unset, driver-crash events are ignored (a driverless harness).
	OnDriverCrash func(restartAfter float64)

	// OnSpotNotice, if set, receives each spot-preemption warning with the
	// grace window; notice-aware drivers fence and drain the node here. The
	// kill itself happens regardless — the provider does not wait for
	// anyone to acknowledge the notice.
	OnSpotNotice func(node string, grace float64)
	// OnSpotKill, if set, fires right after the reclaimed node fail-stops,
	// so the driver can treat the loss as announced rather than discovering
	// it by heartbeat timeout.
	OnSpotKill func(node string)

	// OnLoadSpike, if set, receives the new effective offered-load
	// multiplier whenever a LoadSpike window opens or closes (1 when none
	// is active). The streaming runtime scales its source rates here.
	// Unset, load-spike events are ignored (a batch-only harness).
	OnLoadSpike func(multiplier float64)

	// OnAgentCrash, if set, fires when a federation agent dies — at an
	// AgentCrash event, or as collateral of its node crashing (NodeCrash)
	// or being reclaimed (the SpotPreempt kill): a node's death takes its
	// protocol daemon with it. downtime > 0 means the injector brings the
	// agent back that long after the crash; 0 means it stays down until an
	// explicit AgentRestart, a NodeCrash recovery, or forever. Unset,
	// agent faults are ignored (a non-federated harness).
	OnAgentCrash func(node string, downtime float64)
	// OnAgentRestart, if set, fires when a crashed agent comes back — after
	// an AgentCrash downtime, at an explicit AgentRestart event, or when a
	// crashed node recovers. The federation harness runs the agent's RESYNC
	// handshake here.
	OnAgentRestart func(node string)

	// Counters for reporting.
	Crashes         int
	Recoveries      int
	NICDegrades     int
	DiskDegrades    int
	HeartbeatLosses int
	CPUDegrades     int
	MemPressures    int
	TaskFlakes      int
	DriverCrashes   int
	SpotNotices     int
	SpotKills       int
	LoadSpikes      int
	AgentCrashes    int
	AgentRestarts   int
}

type windowKey struct {
	node string
	kind Kind
}

// NewInjector creates an injector over the cluster's executors. The execs
// map is the shared by-node registry the executor layer maintains.
func NewInjector(eng *simx.Engine, clu *cluster.Cluster, execs map[string]*executor.Executor) *Injector {
	return &Injector{
		eng:     eng,
		clu:     clu,
		execs:   execs,
		hbLost:  make(map[string]int),
		windows: make(map[windowKey][]float64),
	}
}

// Suppressed reports whether the node currently cannot heartbeat — it is
// fail-stopped or inside a heartbeat-loss window. Wire this into
// monitor.Monitor.Drop.
func (inj *Injector) Suppressed(node string) bool {
	if inj.hbLost[node] > 0 {
		return true
	}
	if ex, ok := inj.execs[node]; ok && ex.FailStopped() {
		return true
	}
	return false
}

// Install schedules every event in s onto the engine. It panics on an
// invalid schedule or an event naming an unknown node — fault plans are
// experiment constants, so misconfiguration is a programming error.
func (inj *Injector) Install(s *Schedule) {
	if s.Empty() {
		return
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	for _, ev := range s.sorted() {
		if ev.Kind.IsMessageKind() {
			// Message faults target the federation control plane, which
			// installs them itself (federation.Plane.Install); the node
			// injector has no transport to degrade.
			continue
		}
		if ev.Kind != DriverCrash && ev.Kind != LoadSpike && inj.clu.Node(ev.Node) == nil {
			panic(fmt.Sprintf("faults: schedule names unknown node %q", ev.Node))
		}
		e := ev
		inj.eng.At(e.At, func() { inj.apply(e) })
	}
}

func (inj *Injector) trace(format string, args ...interface{}) {
	if inj.Trace != nil {
		inj.Trace(fmt.Sprintf("[%8.2fs] %s", inj.eng.Now(), fmt.Sprintf(format, args...)))
	}
}

func (inj *Injector) apply(ev Event) {
	switch ev.Kind {
	case NodeCrash:
		inj.crash(ev)
	case NICDegrade:
		inj.degradeNIC(ev)
	case DiskDegrade:
		inj.degradeDisk(ev)
	case HeartbeatLoss:
		inj.loseHeartbeats(ev)
	case CPUDegrade:
		inj.degradeCPU(ev)
	case MemPressure:
		inj.pressureMem(ev)
	case TaskFlake:
		inj.flakeTasks(ev)
	case DriverCrash:
		inj.crashDriver(ev)
	case SpotPreempt:
		inj.preempt(ev)
	case LoadSpike:
		inj.spikeLoad(ev)
	case AgentCrash:
		inj.crashAgent(ev)
	case AgentRestart:
		inj.restartAgent(ev)
	}
}

// crashAgent kills the node's federation agent without touching its
// executors: the co-located protocol daemon dies, the work survives.
func (inj *Injector) crashAgent(ev Event) {
	if inj.OnAgentCrash == nil {
		return
	}
	inj.AgentCrashes++
	detail := "until explicit restart"
	if ev.Duration > 0 {
		detail = fmt.Sprintf("restart %.1fs", ev.Duration)
	}
	inj.trace("agent crash %s (%s)", ev.Node, detail)
	inj.Collector.FaultSpan(ev.Node, "agent-crash", detail, ev.Duration)
	inj.OnAgentCrash(ev.Node, ev.Duration)
	if ev.Duration > 0 {
		node := ev.Node
		inj.eng.Schedule(ev.Duration, func() { inj.agentBack(node) })
	}
}

func (inj *Injector) restartAgent(ev Event) {
	inj.agentBack(ev.Node)
}

// agentBack reports an agent restart to the harness.
func (inj *Injector) agentBack(node string) {
	if inj.OnAgentRestart == nil {
		return
	}
	inj.AgentRestarts++
	inj.trace("agent restart %s", node)
	inj.OnAgentRestart(node)
}

// spikeLoad opens an offered-load amplification window. The window
// machinery is shared with the degradation kinds; LoadSpike composes by
// maximum (see effectiveFactor) and reports multiplier 1 when the last
// window closes.
func (inj *Injector) spikeLoad(ev Event) {
	if inj.OnLoadSpike == nil {
		return
	}
	inj.LoadSpikes++
	inj.trace("load spike ×%.2f for %.0fs", ev.Factor, ev.Duration)
	inj.Collector.FaultSpan("", "load-spike",
		fmt.Sprintf("×%.2f for %.0fs", ev.Factor, ev.Duration), ev.Duration)
	inj.openWindow(ev, func(f float64) {
		inj.OnLoadSpike(f)
	})
}

// preempt delivers a spot-reclamation notice and schedules the kill at the
// end of the grace window. A node already fail-stopped when the notice
// fires is skipped (the provider cannot reclaim an instance nobody holds);
// a node that dies some other way during the grace window is likewise not
// killed twice. The kill is a permanent fail-stop: only the elastic
// substrate re-acquiring the instance (executor.Reactivate) brings it back.
func (inj *Injector) preempt(ev Event) {
	ex, ok := inj.execs[ev.Node]
	if !ok || ex.FailStopped() {
		return
	}
	inj.SpotNotices++
	inj.trace("spot notice %s (kill in %.1fs)", ev.Node, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "spot-preempt",
		fmt.Sprintf("grace %.1fs", ev.Duration), ev.Duration)
	if inj.OnSpotNotice != nil {
		inj.OnSpotNotice(ev.Node, ev.Duration)
	}
	inj.eng.Schedule(ev.Duration, func() {
		if ex.FailStopped() {
			return
		}
		inj.SpotKills++
		inj.trace("spot kill %s", ev.Node)
		if inj.OnAgentCrash != nil {
			// Reclamation takes the whole instance: the co-located agent
			// dies for good with the node (downtime 0, no scheduled
			// restart — only re-acquisition would bring it back).
			inj.OnAgentCrash(ev.Node, 0)
		}
		ex.FailStop(0)
		if inj.OnSpotKill != nil {
			inj.OnSpotKill(ev.Node)
		}
	})
}

func (inj *Injector) crashDriver(ev Event) {
	if inj.OnDriverCrash == nil {
		return
	}
	inj.DriverCrashes++
	inj.trace("driver crash (restart %.1fs)", ev.Duration)
	inj.Collector.FaultSpan("", "driver-crash",
		fmt.Sprintf("restart %.1fs", ev.Duration), ev.Duration)
	inj.OnDriverCrash(ev.Duration)
}

func (inj *Injector) crash(ev Event) {
	ex, ok := inj.execs[ev.Node]
	if !ok || ex.FailStopped() {
		return
	}
	inj.Crashes++
	inj.trace("crash %s (recovery %.0fs)", ev.Node, ev.Duration)
	detail := "permanent"
	if ev.Duration > 0 {
		detail = fmt.Sprintf("recovery %.0fs", ev.Duration)
	}
	inj.Collector.FaultSpan(ev.Node, "crash", detail, ev.Duration)
	if inj.OnAgentCrash != nil {
		// The node's death takes the co-located federation agent with it;
		// the agent restarts (and resyncs) only when the node recovers.
		inj.OnAgentCrash(ev.Node, 0)
	}
	// FailStop before scheduling the recovery closure so the executor's own
	// restart (armed inside FailStop at the same instant) fires first and
	// the agent comes back to a live node.
	ex.FailStop(ev.Duration)
	if ev.Duration > 0 {
		inj.eng.Schedule(ev.Duration, func() {
			inj.Recoveries++
			inj.trace("recover %s", ev.Node)
			inj.agentBack(ev.Node)
		})
	}
}

// openWindow registers a degradation factor for (node, kind) and runs
// apply with the new effective (minimum) factor; when the window expires
// it recomputes and re-applies, so overlapping windows restore nominal
// capacity only after the last one closes.
func (inj *Injector) openWindow(ev Event, apply func(effective float64)) {
	key := windowKey{ev.Node, ev.Kind}
	inj.windows[key] = append(inj.windows[key], ev.Factor)
	apply(inj.effectiveFactor(key))
	inj.eng.Schedule(ev.Duration, func() {
		active := inj.windows[key]
		for i, f := range active {
			if f == ev.Factor {
				inj.windows[key] = append(active[:i], active[i+1:]...)
				break
			}
		}
		if len(inj.windows[key]) == 0 {
			delete(inj.windows, key)
		}
		apply(inj.effectiveFactor(key))
	})
}

// effectiveFactor is the harshest active factor for (node, kind), or 1
// (nominal) when no window is open. TaskFlake inverts the rule: more
// concurrent failure sources mean a higher death probability, so there
// the effective factor is the maximum (and 0 means no flaking); LoadSpike
// likewise takes the maximum, since its factors amplify (≥ 1) rather
// than degrade.
func (inj *Injector) effectiveFactor(key windowKey) float64 {
	active := inj.windows[key]
	if key.kind == LoadSpike {
		eff := 1.0
		for _, f := range active {
			if f > eff {
				eff = f
			}
		}
		return eff
	}
	if key.kind == TaskFlake {
		max := 0.0
		for _, f := range active {
			if f > max {
				max = f
			}
		}
		return max
	}
	eff := 1.0
	for _, f := range active {
		if f < eff {
			eff = f
		}
	}
	return eff
}

func (inj *Injector) degradeNIC(ev Event) {
	node := inj.clu.Node(ev.Node)
	base := node.Spec.NetBandwidth
	inj.NICDegrades++
	inj.trace("nic %s ×%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "nic-degrade",
		fmt.Sprintf("×%.2f for %.0fs", ev.Factor, ev.Duration), ev.Duration)
	inj.openWindow(ev, func(f float64) {
		inj.clu.Net.SetCapacity(ev.Node, base*f, base*f)
	})
}

func (inj *Injector) degradeDisk(ev Event) {
	node := inj.clu.Node(ev.Node)
	readBase, writeBase := node.Spec.DiskReadBW, node.Spec.DiskWriteBW
	inj.DiskDegrades++
	inj.trace("disk %s ×%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "disk-degrade",
		fmt.Sprintf("×%.2f for %.0fs", ev.Factor, ev.Duration), ev.Duration)
	inj.openWindow(ev, func(f float64) {
		node.DiskRead.SetCapacity(readBase * f)
		node.DiskWrite.SetCapacity(writeBase * f)
	})
}

func (inj *Injector) degradeCPU(ev Event) {
	node := inj.clu.Node(ev.Node)
	spec := node.Spec
	inj.CPUDegrades++
	inj.trace("cpu %s ×%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "cpu-degrade",
		fmt.Sprintf("×%.2f for %.0fs", ev.Factor, ev.Duration), ev.Duration)
	inj.openWindow(ev, func(f float64) {
		node.CPU.SetCapacity(spec.CPUCapacity() * f)
		node.CPU.SetPerClaimCap(spec.FreqGHz * f)
	})
}

func (inj *Injector) pressureMem(ev Event) {
	ex, ok := inj.execs[ev.Node]
	if !ok {
		return
	}
	inj.MemPressures++
	inj.trace("mem %s ×%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "mem-pressure",
		fmt.Sprintf("×%.2f for %.0fs", ev.Factor, ev.Duration), ev.Duration)
	inj.openWindow(ev, func(f float64) {
		ex.SetMemPressure(f)
	})
}

func (inj *Injector) flakeTasks(ev Event) {
	ex, ok := inj.execs[ev.Node]
	if !ok {
		return
	}
	inj.TaskFlakes++
	inj.trace("flake %s p=%.2f for %.0fs", ev.Node, ev.Factor, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "task-flake",
		fmt.Sprintf("p=%.2f for %.0fs", ev.Factor, ev.Duration), ev.Duration)
	inj.openWindow(ev, func(p float64) {
		ex.SetFlakeProb(p)
	})
}

func (inj *Injector) loseHeartbeats(ev Event) {
	inj.HeartbeatLosses++
	inj.trace("heartbeat loss %s for %.0fs", ev.Node, ev.Duration)
	inj.Collector.FaultSpan(ev.Node, "heartbeat-loss",
		fmt.Sprintf("for %.0fs", ev.Duration), ev.Duration)
	inj.hbLost[ev.Node]++
	inj.eng.Schedule(ev.Duration, func() {
		inj.hbLost[ev.Node]--
	})
}
