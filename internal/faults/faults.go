// Package faults is a deterministic, seeded fault-injection subsystem
// driven by the simulation's virtual clock. A Schedule is a list of timed
// events — fail-stop node crashes (with optional recovery), transient NIC
// degradation windows, fail-slow disks, and heartbeat-loss windows — that
// an Injector applies to a running cluster. Everything is derived from the
// schedule and the engine's event order, so a fixed seed reproduces the
// exact same failure trace run after run; an empty schedule leaves the
// simulation byte-identical to one with no fault layer at all.
package faults

import (
	"fmt"
	"sort"

	"rupam/internal/stats"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// NodeCrash fail-stops a node: every running attempt dies silently,
	// cached partitions and shuffle files are lost, and the node stops
	// heartbeating. Duration > 0 brings it back after that long;
	// Duration == 0 is a permanent loss.
	NodeCrash Kind = iota
	// NICDegrade rescales a node's NIC to Factor × nominal for Duration
	// seconds (a flaky link, incast pause, or duplex mismatch).
	NICDegrade
	// DiskDegrade rescales a node's disk read/write bandwidth to
	// Factor × nominal for Duration seconds (a fail-slow disk).
	DiskDegrade
	// HeartbeatLoss suppresses a node's heartbeats for Duration seconds
	// without stopping its work — a driver-side network partition. The
	// driver will declare the executor lost even though its tasks are
	// still running; the simulation must survive the rejoin.
	HeartbeatLoss
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case NICDegrade:
		return "nic-degrade"
	case DiskDegrade:
		return "disk-degrade"
	case HeartbeatLoss:
		return "heartbeat-loss"
	default:
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	Node string
	// At is the virtual time the fault strikes.
	At float64
	// Duration is how long the fault lasts; 0 means permanent for
	// NodeCrash and is invalid for the windowed kinds.
	Duration float64
	// Factor is the capacity multiplier for NICDegrade/DiskDegrade,
	// in (0, 1].
	Factor float64
}

// String describes the event for traces.
func (e Event) String() string {
	return fmt.Sprintf("%s %s at %.2fs (dur %.2fs, factor %.2f)", e.Kind, e.Node, e.At, e.Duration, e.Factor)
}

// Validate reports the first problem with the event, or nil.
func (e Event) Validate() error {
	switch {
	case e.Node == "":
		return fmt.Errorf("faults: %s event without a node", e.Kind)
	case e.At < 0:
		return fmt.Errorf("faults: %s %s: negative time %g", e.Kind, e.Node, e.At)
	case e.Duration < 0:
		return fmt.Errorf("faults: %s %s: negative duration %g", e.Kind, e.Node, e.Duration)
	}
	switch e.Kind {
	case NICDegrade, DiskDegrade:
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("faults: %s %s: factor %g outside (0,1]", e.Kind, e.Node, e.Factor)
		}
		if e.Duration == 0 {
			return fmt.Errorf("faults: %s %s: windowed fault needs a duration", e.Kind, e.Node)
		}
	case HeartbeatLoss:
		if e.Duration == 0 {
			return fmt.Errorf("faults: %s %s: windowed fault needs a duration", e.Kind, e.Node)
		}
	case NodeCrash:
	default:
		return fmt.Errorf("faults: unknown kind %d", int(e.Kind))
	}
	return nil
}

// Schedule is a full fault plan for one simulation run.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Validate checks every event, returning the first error.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// sorted returns the events ordered by (At, Node, Kind) so installation
// order — and therefore simx timer tie-breaking — is independent of how
// the schedule was assembled.
func (s *Schedule) sorted() []Event {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].At != evs[b].At {
			return evs[a].At < evs[b].At
		}
		if evs[a].Node != evs[b].Node {
			return evs[a].Node < evs[b].Node
		}
		return evs[a].Kind < evs[b].Kind
	})
	return evs
}

// GenConfig parameterizes RandomSchedule.
type GenConfig struct {
	// Horizon is the time window faults are drawn from, in seconds.
	Horizon float64
	// Crashes is the number of NodeCrash events (each with recovery
	// between MinRecovery and MaxRecovery; a crash has PermanentProb
	// chance of never recovering).
	Crashes       int
	MinRecovery   float64
	MaxRecovery   float64
	PermanentProb float64
	// Degrades is the number of NIC/disk degradation windows (an even
	// coin picks NIC vs disk).
	Degrades    int
	MinFactor   float64
	MaxFactor   float64
	MinDuration float64
	MaxDuration float64
	// HeartbeatLosses is the number of heartbeat-suppression windows.
	HeartbeatLosses int
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Horizon <= 0 {
		g.Horizon = 300
	}
	if g.MinRecovery <= 0 {
		g.MinRecovery = 20
	}
	if g.MaxRecovery < g.MinRecovery {
		g.MaxRecovery = g.MinRecovery + 40
	}
	if g.MinFactor <= 0 {
		g.MinFactor = 0.05
	}
	if g.MaxFactor < g.MinFactor {
		g.MaxFactor = 0.5
	}
	if g.MinDuration <= 0 {
		g.MinDuration = 10
	}
	if g.MaxDuration < g.MinDuration {
		g.MaxDuration = 60
	}
	return g
}

// RandomSchedule draws a reproducible schedule over the named nodes from
// the seed. The same (seed, nodes, cfg) triple always yields the same
// schedule, independent of call site.
func RandomSchedule(seed uint64, nodes []string, cfg GenConfig) *Schedule {
	cfg = cfg.withDefaults()
	if len(nodes) == 0 {
		return &Schedule{}
	}
	rng := stats.NewRand(seed ^ 0xfa17f5eed)
	var evs []Event
	for i := 0; i < cfg.Crashes; i++ {
		dur := rng.Range(cfg.MinRecovery, cfg.MaxRecovery)
		if rng.Float64() < cfg.PermanentProb {
			dur = 0
		}
		evs = append(evs, Event{
			Kind:     NodeCrash,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: dur,
		})
	}
	for i := 0; i < cfg.Degrades; i++ {
		kind := NICDegrade
		if rng.Float64() < 0.5 {
			kind = DiskDegrade
		}
		evs = append(evs, Event{
			Kind:     kind,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
			Factor:   rng.Range(cfg.MinFactor, cfg.MaxFactor),
		})
	}
	for i := 0; i < cfg.HeartbeatLosses; i++ {
		evs = append(evs, Event{
			Kind:     HeartbeatLoss,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
		})
	}
	return &Schedule{Events: evs}
}
