// Package faults is a deterministic, seeded fault-injection subsystem
// driven by the simulation's virtual clock. A Schedule is a list of timed
// events — fail-stop node crashes (with optional recovery), transient NIC
// degradation windows, fail-slow disks, and heartbeat-loss windows — that
// an Injector applies to a running cluster. Everything is derived from the
// schedule and the engine's event order, so a fixed seed reproduces the
// exact same failure trace run after run; an empty schedule leaves the
// simulation byte-identical to one with no fault layer at all.
package faults

import (
	"fmt"
	"sort"

	"rupam/internal/stats"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// NodeCrash fail-stops a node: every running attempt dies silently,
	// cached partitions and shuffle files are lost, and the node stops
	// heartbeating. Duration > 0 brings it back after that long;
	// Duration == 0 is a permanent loss.
	NodeCrash Kind = iota
	// NICDegrade rescales a node's NIC to Factor × nominal for Duration
	// seconds (a flaky link, incast pause, or duplex mismatch).
	NICDegrade
	// DiskDegrade rescales a node's disk read/write bandwidth to
	// Factor × nominal for Duration seconds (a fail-slow disk).
	DiskDegrade
	// HeartbeatLoss suppresses a node's heartbeats for Duration seconds
	// without stopping its work — a driver-side network partition. The
	// driver will declare the executor lost even though its tasks are
	// still running; the simulation must survive the rejoin.
	HeartbeatLoss
	// CPUDegrade rescales a node's compute rate (aggregate and per-core)
	// to Factor × nominal for Duration seconds — a thermal-throttle/DVFS
	// gray failure: the node is alive and heartbeating, just slow.
	CPUDegrade
	// MemPressure squeezes a node's effective heap to Factor × nominal for
	// Duration seconds, amplifying the GC cost of everything running there
	// (a co-tenant ballooning, or the OS stealing page cache). No
	// allocation fails; the node just collects garbage much harder.
	MemPressure
	// TaskFlake makes each task attempt started on the node fail with
	// probability Factor for Duration seconds — transient task-level
	// failures (a flaky local disk, a corrupted spill file, a JNI bug)
	// that exercise retry accounting without taking the node down.
	TaskFlake
	// DriverCrash kills the driver process itself: scheduler state, the
	// map-output registry, CharDB learnings and the blacklist all vanish
	// unless written ahead to a WAL. Executors keep running (and buffer
	// their results) while the driver is down; Duration > 0 is the restart
	// delay before recovery replays the log and reconciles with survivors.
	// Node is empty — the fault targets the driver, not a worker.
	DriverCrash
	// SpotPreempt reclaims a spot instance with notice: at At the provider
	// delivers a preemption warning, and Duration seconds later (the grace
	// window) the node fail-stops permanently — only the elastic substrate
	// re-acquiring the instance brings it back. A notice-aware driver uses
	// the window to fence the node and drain its shuffle outputs; a
	// notice-ignoring one experiences it as a plain crash at At+Duration.
	SpotPreempt
	// MsgDrop makes each federation control-plane message crossing an edge
	// scoped by Node (empty = every edge) vanish with probability Factor
	// for Duration seconds. The message faults are consumed by the
	// federation plane, not the node injector: they degrade the placement
	// protocol's transport, never the workers themselves.
	MsgDrop
	// MsgDup delivers each matching control-plane message twice with
	// probability Factor for Duration seconds — the duplicate arrives a
	// beat after the original, exercising idempotent handlers and
	// claim-ID dedup.
	MsgDup
	// MsgDelay holds each matching control-plane message back by an extra
	// Delay seconds with probability Factor for Duration seconds, firing
	// the drivers' retransmit timers against messages that are late, not
	// lost.
	MsgDelay
	// MsgReorder adds a random per-message skew (up to several base
	// latencies) with probability Factor for Duration seconds, so a later
	// message can overtake an earlier one on the same edge.
	MsgReorder
	// LoadSpike multiplies every streaming source's emission rate by
	// Factor (≥ 1 — the one kind whose factor amplifies instead of
	// degrades) for Duration seconds: a flash crowd. Node is empty — the
	// spike hits the workload's offered load, not a machine. Consumed by
	// the streaming runtime; the node injector exposes it via OnLoadSpike.
	LoadSpike
	// AgentCrash kills the federation agent co-located with a node: every
	// accepted/committed claim, expiry timer, and tombstone it held is
	// wiped and its reserved slots are implicitly freed. The node's
	// executors keep running — only the protocol daemon dies. Duration > 0
	// restarts the agent after that long (it then resynchronizes with the
	// drivers before accepting new claims); Duration == 0 leaves it down
	// until an explicit AgentRestart, or forever. Exposed through the
	// injector's OnAgentCrash hook; a NodeCrash also kills the co-located
	// agent, since a node's death takes its daemons with it.
	AgentCrash
	// AgentRestart brings back an agent taken down by a Duration-0
	// AgentCrash. The restarted agent bumps its incarnation and runs the
	// RESYNC handshake against the drivers before accepting claims.
	// Duration must be 0 — a restart is instantaneous.
	AgentRestart
)

// IsMessageKind reports whether the kind targets the federation control
// plane rather than a cluster node. The node Injector ignores these; the
// federation plane installs them.
func (k Kind) IsMessageKind() bool {
	switch k {
	case MsgDrop, MsgDup, MsgDelay, MsgReorder:
		return true
	}
	return false
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case NICDegrade:
		return "nic-degrade"
	case DiskDegrade:
		return "disk-degrade"
	case HeartbeatLoss:
		return "heartbeat-loss"
	case CPUDegrade:
		return "cpu-degrade"
	case MemPressure:
		return "mem-pressure"
	case TaskFlake:
		return "task-flake"
	case DriverCrash:
		return "driver-crash"
	case SpotPreempt:
		return "spot-preempt"
	case MsgDrop:
		return "msg-drop"
	case MsgDup:
		return "msg-dup"
	case MsgDelay:
		return "msg-delay"
	case MsgReorder:
		return "msg-reorder"
	case LoadSpike:
		return "load-spike"
	case AgentCrash:
		return "agent-crash"
	case AgentRestart:
		return "agent-restart"
	default:
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	Node string
	// At is the virtual time the fault strikes.
	At float64
	// Duration is how long the fault lasts; 0 means permanent for
	// NodeCrash and is invalid for the windowed kinds.
	Duration float64
	// Factor is the fault's severity knob, in (0, 1]: the capacity
	// multiplier for NICDegrade/DiskDegrade/CPUDegrade, the effective-heap
	// multiplier for MemPressure, the per-attempt failure probability for
	// TaskFlake, and the per-message hit probability for the Msg kinds.
	Factor float64
	// Delay is the extra per-message latency, in seconds, a MsgDelay
	// window adds to each message it hits. Unused by every other kind.
	Delay float64
}

// String describes the event for traces.
func (e Event) String() string {
	return fmt.Sprintf("%s %s at %.2fs (dur %.2fs, factor %.2f)", e.Kind, e.Node, e.At, e.Duration, e.Factor)
}

// Validate reports the first problem with the event, or nil.
func (e Event) Validate() error {
	switch {
	// Msg kinds may leave Node empty (= every protocol edge) or name a
	// node to scope the fault to that agent's edges.
	case e.Node == "" && e.Kind != DriverCrash && e.Kind != LoadSpike && !e.Kind.IsMessageKind():
		return fmt.Errorf("faults: %s event without a node", e.Kind)
	case e.Node != "" && e.Kind == DriverCrash:
		return fmt.Errorf("faults: driver-crash event names a node (%s)", e.Node)
	case e.Node != "" && e.Kind == LoadSpike:
		return fmt.Errorf("faults: load-spike event names a node (%s); spikes hit the offered load", e.Node)
	case e.At < 0:
		return fmt.Errorf("faults: %s %s: negative time %g", e.Kind, e.Node, e.At)
	case e.Duration < 0:
		return fmt.Errorf("faults: %s %s: negative duration %g", e.Kind, e.Node, e.Duration)
	case e.Delay < 0:
		return fmt.Errorf("faults: %s %s: negative delay %g", e.Kind, e.Node, e.Delay)
	}
	switch e.Kind {
	case NICDegrade, DiskDegrade, CPUDegrade, MemPressure, TaskFlake:
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("faults: %s %s: factor %g outside (0,1]", e.Kind, e.Node, e.Factor)
		}
		if e.Duration == 0 {
			return fmt.Errorf("faults: %s %s: windowed fault needs a duration", e.Kind, e.Node)
		}
	case HeartbeatLoss:
		if e.Duration == 0 {
			return fmt.Errorf("faults: %s %s: windowed fault needs a duration", e.Kind, e.Node)
		}
	case NodeCrash:
	case DriverCrash:
		if e.Duration <= 0 {
			return fmt.Errorf("faults: driver-crash needs a positive restart delay, got %g", e.Duration)
		}
	case SpotPreempt:
		if e.Duration <= 0 {
			return fmt.Errorf("faults: spot-preempt needs a positive grace window, got %g", e.Duration)
		}
	case MsgDrop, MsgDup, MsgDelay, MsgReorder:
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("faults: %s %s: factor %g outside (0,1]", e.Kind, e.Node, e.Factor)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("faults: %s %s: windowed fault needs a duration", e.Kind, e.Node)
		}
		if e.Kind == MsgDelay && e.Delay <= 0 {
			return fmt.Errorf("faults: msg-delay %s needs a positive delay, got %g", e.Node, e.Delay)
		}
	case LoadSpike:
		if e.Factor < 1 {
			return fmt.Errorf("faults: load-spike factor %g below 1; spikes amplify the offered load", e.Factor)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("faults: load-spike needs a positive duration, got %g", e.Duration)
		}
	case AgentCrash:
		// Duration 0 = down until an explicit AgentRestart; negative
		// downtimes are caught by the generic check above.
	case AgentRestart:
		if e.Duration != 0 {
			return fmt.Errorf("faults: agent-restart %s is instantaneous; drop the duration (%g)", e.Node, e.Duration)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(e.Kind))
	}
	return nil
}

// Schedule is a full fault plan for one simulation run.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// HasKind reports whether the schedule contains at least one event of the
// given kind. The runtime uses it to decide whether a run needs a
// write-ahead log (any DriverCrash does).
func (s *Schedule) HasKind(k Kind) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// WithoutKind returns a copy of the schedule with every event of the given
// kind removed. The recovery harness uses it to derive the unfailed
// reference plan from a driver-crash plan: same worker faults, no crash.
func (s *Schedule) WithoutKind(k Kind) *Schedule {
	if s == nil {
		return nil
	}
	out := &Schedule{}
	for _, e := range s.Events {
		if e.Kind != k {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Validate checks every event and the schedule's cross-event consistency,
// returning the first error. Two crash windows of the same node may not
// overlap: a node cannot crash while it is already down, so such a plan
// encodes an impossible state (a permanent crash — Duration 0 — occupies
// the rest of the run).
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	crashes := make(map[string][]Event)
	for _, e := range s.Events {
		if e.Kind == NodeCrash {
			crashes[e.Node] = append(crashes[e.Node], e)
		}
	}
	for node, evs := range crashes {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				if crashWindowsOverlap(evs[i], evs[j]) {
					return fmt.Errorf("faults: overlapping crash windows on %s (%s / %s)",
						node, evs[i], evs[j])
				}
			}
		}
	}
	// A node cannot receive a second preemption notice while an earlier
	// notice's grace window is still open: the instance is already doomed.
	// (A later notice after a kill is fine — it models the re-acquired
	// instance being reclaimed again.)
	preempts := make(map[string][]Event)
	for _, e := range s.Events {
		if e.Kind == SpotPreempt {
			preempts[e.Node] = append(preempts[e.Node], e)
		}
	}
	for node, evs := range preempts {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				if crashWindowsOverlap(evs[i], evs[j]) {
					return fmt.Errorf("faults: overlapping preemption notices on %s (%s / %s)",
						node, evs[i], evs[j])
				}
			}
		}
	}
	// The same impossibility holds for the driver: it cannot crash again
	// while it is already down waiting to restart.
	var dcs []Event
	for _, e := range s.Events {
		if e.Kind == DriverCrash {
			dcs = append(dcs, e)
		}
	}
	for i := 0; i < len(dcs); i++ {
		for j := i + 1; j < len(dcs); j++ {
			if crashWindowsOverlap(dcs[i], dcs[j]) {
				return fmt.Errorf("faults: overlapping driver-crash windows (%s / %s)", dcs[i], dcs[j])
			}
		}
	}
	// Two message-fault windows of the same kind on the same scope (same
	// Node string, "" being the global scope) may not overlap: the plane
	// applies one factor per (kind, scope) window, so an overlap encodes an
	// ambiguous severity. Distinct scopes and distinct kinds compose fine.
	msgs := make(map[string][]Event)
	for _, e := range s.Events {
		if e.Kind.IsMessageKind() {
			key := fmt.Sprintf("%s|%s", e.Kind, e.Node)
			msgs[key] = append(msgs[key], e)
		}
	}
	for _, evs := range msgs {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				if crashWindowsOverlap(evs[i], evs[j]) {
					return fmt.Errorf("faults: overlapping %s windows on scope %q (%s / %s)",
						evs[i].Kind, evs[i].Node, evs[i], evs[j])
				}
			}
		}
	}
	// Load spikes share one global scope, and the streaming runtime applies
	// a single multiplier per window, so overlapping spikes would encode an
	// ambiguous offered load.
	var spikes []Event
	for _, e := range s.Events {
		if e.Kind == LoadSpike {
			spikes = append(spikes, e)
		}
	}
	for i := 0; i < len(spikes); i++ {
		for j := i + 1; j < len(spikes); j++ {
			if crashWindowsOverlap(spikes[i], spikes[j]) {
				return fmt.Errorf("faults: overlapping load-spike windows (%s / %s)", spikes[i], spikes[j])
			}
		}
	}
	// An agent cannot crash while it is already down: overlapping
	// agent-crash windows on one node encode an impossible state (a
	// Duration-0 crash stays down until an explicit restart, i.e. an
	// unbounded window).
	agentCrashes := make(map[string][]Event)
	for _, e := range s.Events {
		if e.Kind == AgentCrash {
			agentCrashes[e.Node] = append(agentCrashes[e.Node], e)
		}
	}
	for node, evs := range agentCrashes {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				if crashWindowsOverlap(evs[i], evs[j]) {
					return fmt.Errorf("faults: overlapping agent-crash windows on %s (%s / %s)",
						node, evs[i], evs[j])
				}
			}
		}
	}
	return nil
}

// crashWindowsOverlap reports whether two NodeCrash events of one node
// describe overlapping down-windows. Duration 0 is permanent, i.e. an
// unbounded window.
func crashWindowsOverlap(a, b Event) bool {
	if b.At < a.At {
		a, b = b, a
	}
	return a.Duration == 0 || b.At < a.At+a.Duration
}

// sorted returns the events ordered by (At, Node, Kind) so installation
// order — and therefore simx timer tie-breaking — is independent of how
// the schedule was assembled.
func (s *Schedule) sorted() []Event {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].At != evs[b].At {
			return evs[a].At < evs[b].At
		}
		if evs[a].Node != evs[b].Node {
			return evs[a].Node < evs[b].Node
		}
		return evs[a].Kind < evs[b].Kind
	})
	return evs
}

// GenConfig parameterizes RandomSchedule.
type GenConfig struct {
	// Horizon is the time window faults are drawn from, in seconds.
	Horizon float64
	// Crashes is the number of NodeCrash events (each with recovery
	// between MinRecovery and MaxRecovery; a crash has PermanentProb
	// chance of never recovering).
	Crashes       int
	MinRecovery   float64
	MaxRecovery   float64
	PermanentProb float64
	// Degrades is the number of NIC/disk degradation windows (an even
	// coin picks NIC vs disk).
	Degrades    int
	MinFactor   float64
	MaxFactor   float64
	MinDuration float64
	MaxDuration float64
	// HeartbeatLosses is the number of heartbeat-suppression windows.
	HeartbeatLosses int
	// CPUDegrades is the number of compute-throttle windows (gray
	// failure: the node stays up but runs at Factor × nominal speed).
	CPUDegrades int
	// MemPressures is the number of heap-squeeze windows (gray failure:
	// GC cost is amplified as if the heap were Factor × nominal).
	MemPressures int
	// TaskFlakes is the number of transient task-failure windows; each
	// attempt started on the node during the window fails with a
	// probability drawn between MinFlakeProb and MaxFlakeProb.
	TaskFlakes   int
	MinFlakeProb float64
	MaxFlakeProb float64
	// DriverCrashes is the number of driver kill points; each restarts
	// after a delay drawn between MinDriverRestart and MaxDriverRestart.
	// These fields sit last so their RNG draws append to — never reorder —
	// the draw sequence of pre-existing plans: a seed's worker-fault trace
	// is unchanged by the driver-crash extension.
	DriverCrashes    int
	MinDriverRestart float64
	MaxDriverRestart float64
	// SpotPreempts is the number of spot-reclamation events; each delivers
	// a notice, then kills the node after a grace window drawn between
	// MinGrace and MaxGrace. Like the driver-crash fields these sit last so
	// their RNG draws append to the draw sequence of pre-existing plans.
	SpotPreempts int
	MinGrace     float64
	MaxGrace     float64
	// MsgDrops/MsgDups/MsgDelays/MsgReorders count control-plane message
	// fault windows for the federation plane; each scopes to one node's
	// edges or (with probability 1/(len(nodes)+1)) to every edge, with a
	// hit probability between MinMsgFactor and MaxMsgFactor and (for
	// MsgDelay) an extra latency between MinMsgDelay and MaxMsgDelay.
	// These draw last of all — after SpotPreempts — so pre-existing seeds'
	// fault traces are unchanged by the message-fault extension.
	MsgDrops     int
	MsgDups      int
	MsgDelays    int
	MsgReorders  int
	MinMsgFactor float64
	MaxMsgFactor float64
	MinMsgDelay  float64
	MaxMsgDelay  float64
	// LoadSpikes counts offered-load spike windows for streaming runs;
	// each multiplies every source's emission rate by a factor drawn
	// between MinSpikeFactor and MaxSpikeFactor (≥ 1). These draw last of
	// all — after the message faults — so pre-existing seeds' fault traces
	// are unchanged by the streaming extension.
	LoadSpikes     int
	MinSpikeFactor float64
	MaxSpikeFactor float64
	// AgentCrashes counts federation agent kill points; each crashed agent
	// restarts (and resynchronizes with the drivers) after a downtime drawn
	// between MinAgentDowntime and MaxAgentDowntime. These draw last of
	// all — after the load spikes — so pre-existing seeds' fault traces are
	// unchanged by the agent-fault extension.
	AgentCrashes     int
	MinAgentDowntime float64
	MaxAgentDowntime float64
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Horizon <= 0 {
		g.Horizon = 300
	}
	if g.MinRecovery <= 0 {
		g.MinRecovery = 20
	}
	if g.MaxRecovery < g.MinRecovery {
		g.MaxRecovery = g.MinRecovery + 40
	}
	if g.MinFactor <= 0 {
		g.MinFactor = 0.05
	}
	if g.MaxFactor < g.MinFactor {
		g.MaxFactor = 0.5
	}
	if g.MinDuration <= 0 {
		g.MinDuration = 10
	}
	if g.MaxDuration < g.MinDuration {
		g.MaxDuration = 60
	}
	if g.MinFlakeProb <= 0 {
		g.MinFlakeProb = 0.1
	}
	if g.MaxFlakeProb < g.MinFlakeProb {
		g.MaxFlakeProb = 0.5
	}
	if g.MinDriverRestart <= 0 {
		g.MinDriverRestart = 2
	}
	if g.MaxDriverRestart < g.MinDriverRestart {
		g.MaxDriverRestart = g.MinDriverRestart + 6
	}
	if g.MinGrace <= 0 {
		g.MinGrace = 6
	}
	if g.MaxGrace < g.MinGrace {
		g.MaxGrace = g.MinGrace + 18
	}
	if g.MinMsgFactor <= 0 {
		g.MinMsgFactor = 0.1
	}
	if g.MaxMsgFactor < g.MinMsgFactor {
		g.MaxMsgFactor = 0.4
	}
	if g.MinMsgDelay <= 0 {
		g.MinMsgDelay = 0.05
	}
	if g.MaxMsgDelay < g.MinMsgDelay {
		g.MaxMsgDelay = 0.5
	}
	if g.MinSpikeFactor < 1 {
		g.MinSpikeFactor = 1.5
	}
	if g.MaxSpikeFactor < g.MinSpikeFactor {
		g.MaxSpikeFactor = 4
	}
	if g.MinAgentDowntime <= 0 {
		g.MinAgentDowntime = 3
	}
	if g.MaxAgentDowntime < g.MinAgentDowntime {
		g.MaxAgentDowntime = g.MinAgentDowntime + 5
	}
	return g
}

// RandomSchedule draws a reproducible schedule over the named nodes from
// the seed. The same (seed, nodes, cfg) triple always yields the same
// schedule, independent of call site. Crash draws that would overlap an
// already-drawn crash window on the same node are deterministically
// redrawn (and dropped after a bounded number of tries), so the result
// always passes Validate — which it asserts before returning.
func RandomSchedule(seed uint64, nodes []string, cfg GenConfig) *Schedule {
	cfg = cfg.withDefaults()
	if len(nodes) == 0 {
		return &Schedule{}
	}
	rng := stats.NewRand(seed ^ 0xfa17f5eed)
	var evs []Event
	crashes := make(map[string][]Event)
	for i := 0; i < cfg.Crashes; i++ {
		for try := 0; try < 16; try++ {
			dur := rng.Range(cfg.MinRecovery, cfg.MaxRecovery)
			if rng.Float64() < cfg.PermanentProb {
				dur = 0
			}
			ev := Event{
				Kind:     NodeCrash,
				Node:     nodes[rng.Intn(len(nodes))],
				At:       rng.Range(0, cfg.Horizon),
				Duration: dur,
			}
			overlaps := false
			for _, prev := range crashes[ev.Node] {
				if crashWindowsOverlap(prev, ev) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				crashes[ev.Node] = append(crashes[ev.Node], ev)
				evs = append(evs, ev)
				break
			}
		}
	}
	for i := 0; i < cfg.Degrades; i++ {
		kind := NICDegrade
		if rng.Float64() < 0.5 {
			kind = DiskDegrade
		}
		evs = append(evs, Event{
			Kind:     kind,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
			Factor:   rng.Range(cfg.MinFactor, cfg.MaxFactor),
		})
	}
	for i := 0; i < cfg.HeartbeatLosses; i++ {
		evs = append(evs, Event{
			Kind:     HeartbeatLoss,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
		})
	}
	for i := 0; i < cfg.CPUDegrades; i++ {
		evs = append(evs, Event{
			Kind:     CPUDegrade,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
			Factor:   rng.Range(cfg.MinFactor, cfg.MaxFactor),
		})
	}
	for i := 0; i < cfg.MemPressures; i++ {
		evs = append(evs, Event{
			Kind:     MemPressure,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
			Factor:   rng.Range(cfg.MinFactor, cfg.MaxFactor),
		})
	}
	for i := 0; i < cfg.TaskFlakes; i++ {
		evs = append(evs, Event{
			Kind:     TaskFlake,
			Node:     nodes[rng.Intn(len(nodes))],
			At:       rng.Range(0, cfg.Horizon),
			Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
			Factor:   rng.Range(cfg.MinFlakeProb, cfg.MaxFlakeProb),
		})
	}
	// Driver crashes draw last (see GenConfig.DriverCrashes) and redraw on
	// overlap like node crashes: the driver cannot die while already down.
	var driverCrashes []Event
	for i := 0; i < cfg.DriverCrashes; i++ {
		for try := 0; try < 16; try++ {
			ev := Event{
				Kind:     DriverCrash,
				At:       rng.Range(0, cfg.Horizon),
				Duration: rng.Range(cfg.MinDriverRestart, cfg.MaxDriverRestart),
			}
			overlaps := false
			for _, prev := range driverCrashes {
				if crashWindowsOverlap(prev, ev) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				driverCrashes = append(driverCrashes, ev)
				evs = append(evs, ev)
				break
			}
		}
	}
	// Spot preemptions draw last of all (see GenConfig.SpotPreempts) and
	// redraw when a notice window would overlap an earlier one on the same
	// node — an instance cannot be re-warned while already doomed.
	preempts := make(map[string][]Event)
	for i := 0; i < cfg.SpotPreempts; i++ {
		for try := 0; try < 16; try++ {
			ev := Event{
				Kind:     SpotPreempt,
				Node:     nodes[rng.Intn(len(nodes))],
				At:       rng.Range(0, cfg.Horizon),
				Duration: rng.Range(cfg.MinGrace, cfg.MaxGrace),
			}
			overlaps := false
			for _, prev := range preempts[ev.Node] {
				if crashWindowsOverlap(prev, ev) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				preempts[ev.Node] = append(preempts[ev.Node], ev)
				evs = append(evs, ev)
				break
			}
		}
	}
	// Message faults draw last of all (see GenConfig.MsgDrops…) and redraw
	// when a window would overlap an earlier window of the same kind on
	// the same scope. Scope draws len(nodes)+1 ways: index len(nodes) is
	// the empty scope, i.e. every protocol edge.
	msgWindows := make(map[string][]Event)
	drawMsg := func(kind Kind, count int) {
		for i := 0; i < count; i++ {
			for try := 0; try < 16; try++ {
				node := ""
				if idx := rng.Intn(len(nodes) + 1); idx < len(nodes) {
					node = nodes[idx]
				}
				ev := Event{
					Kind:     kind,
					Node:     node,
					At:       rng.Range(0, cfg.Horizon),
					Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
					Factor:   rng.Range(cfg.MinMsgFactor, cfg.MaxMsgFactor),
				}
				if kind == MsgDelay {
					ev.Delay = rng.Range(cfg.MinMsgDelay, cfg.MaxMsgDelay)
				}
				key := fmt.Sprintf("%s|%s", kind, node)
				overlaps := false
				for _, prev := range msgWindows[key] {
					if crashWindowsOverlap(prev, ev) {
						overlaps = true
						break
					}
				}
				if !overlaps {
					msgWindows[key] = append(msgWindows[key], ev)
					evs = append(evs, ev)
					break
				}
			}
		}
	}
	drawMsg(MsgDrop, cfg.MsgDrops)
	drawMsg(MsgDup, cfg.MsgDups)
	drawMsg(MsgDelay, cfg.MsgDelays)
	drawMsg(MsgReorder, cfg.MsgReorders)
	// Load spikes draw last of all (see GenConfig.LoadSpikes) and redraw
	// when a window would overlap an earlier spike: one global offered-load
	// multiplier per instant.
	var spikes []Event
	for i := 0; i < cfg.LoadSpikes; i++ {
		for try := 0; try < 16; try++ {
			ev := Event{
				Kind:     LoadSpike,
				At:       rng.Range(0, cfg.Horizon),
				Duration: rng.Range(cfg.MinDuration, cfg.MaxDuration),
				Factor:   rng.Range(cfg.MinSpikeFactor, cfg.MaxSpikeFactor),
			}
			overlaps := false
			for _, prev := range spikes {
				if crashWindowsOverlap(prev, ev) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				spikes = append(spikes, ev)
				evs = append(evs, ev)
				break
			}
		}
	}
	// Agent crashes draw last of all (see GenConfig.AgentCrashes) and
	// redraw when a downtime window would overlap an earlier one on the
	// same node: an agent cannot die while it is already down.
	agentCrashes := make(map[string][]Event)
	for i := 0; i < cfg.AgentCrashes; i++ {
		for try := 0; try < 16; try++ {
			ev := Event{
				Kind:     AgentCrash,
				Node:     nodes[rng.Intn(len(nodes))],
				At:       rng.Range(0, cfg.Horizon),
				Duration: rng.Range(cfg.MinAgentDowntime, cfg.MaxAgentDowntime),
			}
			overlaps := false
			for _, prev := range agentCrashes[ev.Node] {
				if crashWindowsOverlap(prev, ev) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				agentCrashes[ev.Node] = append(agentCrashes[ev.Node], ev)
				evs = append(evs, ev)
				break
			}
		}
	}
	s := &Schedule{Events: evs}
	if err := s.Validate(); err != nil {
		// Construction guarantees validity; a failure here is a bug in
		// the generator, not in the caller's inputs.
		panic(fmt.Sprintf("faults: RandomSchedule produced an invalid plan: %v", err))
	}
	return s
}

// SpotSchedule draws a reproducible spot-reclamation plan: each node with
// a positive hazard (expected preemptions/hour) is reclaimed as a Poisson
// process at that rate over the horizon, so price-correlated hazards —
// deeper spot discounts, hotter instances — translate directly into more
// preemptions on the cheap capacity. Grace windows draw between MinGrace
// and MaxGrace; successive windows on one node never overlap because the
// next arrival is drawn from the end of the previous window (a reclaimed
// instance must be re-acquired before it can be reclaimed again). Nodes
// absent from hazards (or with hazard ≤ 0) are on-demand and untouched.
func SpotSchedule(seed uint64, nodes []string, hazards map[string]float64, cfg GenConfig) *Schedule {
	cfg = cfg.withDefaults()
	rng := stats.NewRand(seed ^ 0x5b07e5eed)
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	var evs []Event
	for _, node := range sorted {
		rate := hazards[node] / 3600 // preemptions per second
		if rate <= 0 {
			continue
		}
		t := rng.Exp(rate)
		for t < cfg.Horizon {
			grace := rng.Range(cfg.MinGrace, cfg.MaxGrace)
			evs = append(evs, Event{Kind: SpotPreempt, Node: node, At: t, Duration: grace})
			t = t + grace + rng.Exp(rate)
		}
	}
	s := &Schedule{Events: evs}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("faults: SpotSchedule produced an invalid plan: %v", err))
	}
	return s
}
