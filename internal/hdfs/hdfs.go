// Package hdfs models the distributed block store underneath the
// framework: datasets split into partitions, each partition replicated on
// a subset of nodes. Its only job — but a load-bearing one — is to give
// every task a set of preferred locations, from which the schedulers
// derive the locality levels (PROCESS_LOCAL / NODE_LOCAL / RACK_LOCAL /
// ANY) that drive both the default Spark scheduler and RUPAM's
// locality-aware tie-breaking.
package hdfs

import (
	"fmt"

	"rupam/internal/stats"
)

// Locality is a task-to-node data locality level, best first. The paper's
// Table V counts tasks at each level; all evaluated clusters are single
// rack, so RackLocal never occurs there (matching the paper's zero column).
type Locality int

// Locality levels in preference order.
const (
	ProcessLocal Locality = iota // partition cached in the executor on this node
	NodeLocal                    // a replica of the block is on this node
	RackLocal                    // a replica is in the same rack
	Any                          // data must come from a different rack / anywhere
)

// String returns the Spark-style name of the level.
func (l Locality) String() string {
	switch l {
	case ProcessLocal:
		return "PROCESS_LOCAL"
	case NodeLocal:
		return "NODE_LOCAL"
	case RackLocal:
		return "RACK_LOCAL"
	case Any:
		return "ANY"
	default:
		return fmt.Sprintf("Locality(%d)", int(l))
	}
}

// Levels lists all locality levels, best first.
var Levels = []Locality{ProcessLocal, NodeLocal, RackLocal, Any}

// Dataset is a collection of replicated partitions.
type Dataset struct {
	Name           string
	PartitionBytes []int64
	replicas       [][]string // per-partition replica node names
}

// Partitions returns the partition count.
func (d *Dataset) Partitions() int { return len(d.PartitionBytes) }

// Replicas returns the nodes holding partition p.
func (d *Dataset) Replicas(p int) []string { return d.replicas[p] }

// TotalBytes returns the dataset size across partitions (one replica).
func (d *Dataset) TotalBytes() int64 {
	var total int64
	for _, b := range d.PartitionBytes {
		total += b
	}
	return total
}

// LocalityOn returns the locality level a task reading partition p would
// have on node: NodeLocal if a replica is there, otherwise Any (the store
// models a single rack).
func (d *Dataset) LocalityOn(p int, node string) Locality {
	for _, r := range d.replicas[p] {
		if r == node {
			return NodeLocal
		}
	}
	return Any
}

// Store places datasets across a fixed set of nodes.
type Store struct {
	nodes       []string
	weights     []float64 // placement weight per node (e.g. disk capacity share)
	rng         *stats.Rand
	datasets    map[string]*Dataset
	replication int
}

// NewStore creates a store over the given nodes with the given default
// replication factor (clamped to the node count; HDFS defaults to 3, the
// paper's small testbed behaves like 2).
func NewStore(nodes []string, replication int, seed uint64) *Store {
	if len(nodes) == 0 {
		panic("hdfs: store with no nodes")
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	return &Store{
		nodes:       append([]string(nil), nodes...),
		rng:         stats.NewRand(seed),
		datasets:    make(map[string]*Dataset),
		replication: replication,
	}
}

// Nodes returns the store's node names.
func (s *Store) Nodes() []string { return s.nodes }

// Replication returns the default replication factor.
func (s *Store) Replication() int { return s.replication }

// Create places a dataset with the given per-partition sizes. The primary
// replica rotates round-robin from a random offset; additional replicas go
// to distinct random nodes — the same spread HDFS's default block
// placement produces on a single rack.
func (s *Store) Create(name string, partitionBytes []int64) *Dataset {
	if _, ok := s.datasets[name]; ok {
		panic(fmt.Sprintf("hdfs: duplicate dataset %q", name))
	}
	d := &Dataset{Name: name, PartitionBytes: append([]int64(nil), partitionBytes...)}
	d.replicas = make([][]string, len(partitionBytes))
	offset := s.rng.Intn(len(s.nodes))
	for p := range partitionBytes {
		reps := make([]string, 0, s.replication)
		primary := (offset + p) % len(s.nodes)
		reps = append(reps, s.nodes[primary])
		for len(reps) < s.replication {
			cand := s.nodes[s.rng.Intn(len(s.nodes))]
			if !contains(reps, cand) {
				reps = append(reps, cand)
			}
		}
		d.replicas[p] = reps
	}
	s.datasets[name] = d
	return d
}

// CreateEven places a dataset of totalBytes split evenly into partitions.
func (s *Store) CreateEven(name string, totalBytes int64, partitions int) *Dataset {
	if partitions <= 0 {
		panic("hdfs: non-positive partition count")
	}
	sizes := make([]int64, partitions)
	each := totalBytes / int64(partitions)
	rem := totalBytes - each*int64(partitions)
	for i := range sizes {
		sizes[i] = each
		if int64(i) < rem {
			sizes[i]++
		}
	}
	return s.Create(name, sizes)
}

// CreateSkewed places a dataset of totalBytes split into partitions whose
// sizes follow log-normal skew factors with the given sigma.
func (s *Store) CreateSkewed(name string, totalBytes int64, partitions int, skew float64) *Dataset {
	if partitions <= 0 {
		panic("hdfs: non-positive partition count")
	}
	factors := stats.SkewFactors(s.rng, partitions, skew)
	sizes := make([]int64, partitions)
	each := float64(totalBytes) / float64(partitions)
	for i := range sizes {
		sizes[i] = int64(each * factors[i])
		if sizes[i] < 1 {
			sizes[i] = 1
		}
	}
	return s.Create(name, sizes)
}

// Dataset returns the named dataset, or nil.
func (s *Store) Dataset(name string) *Dataset { return s.datasets[name] }

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
