package hdfs

import (
	"testing"
	"testing/quick"
)

var nodes = []string{"n1", "n2", "n3", "n4", "n5", "n6"}

func TestLocalityStrings(t *testing.T) {
	want := map[Locality]string{
		ProcessLocal: "PROCESS_LOCAL",
		NodeLocal:    "NODE_LOCAL",
		RackLocal:    "RACK_LOCAL",
		Any:          "ANY",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), s)
		}
	}
	if Locality(9).String() == "" {
		t.Error("unknown locality has empty string")
	}
}

func TestLocalityOrdering(t *testing.T) {
	if !(ProcessLocal < NodeLocal && NodeLocal < RackLocal && RackLocal < Any) {
		t.Fatal("locality levels not ordered best-first")
	}
	if len(Levels) != 4 {
		t.Fatal("Levels incomplete")
	}
}

func TestCreateEven(t *testing.T) {
	s := NewStore(nodes, 2, 1)
	d := s.CreateEven("data", 1000, 7)
	if d.Partitions() != 7 {
		t.Fatalf("partitions = %d", d.Partitions())
	}
	if d.TotalBytes() != 1000 {
		t.Fatalf("total = %d", d.TotalBytes())
	}
	// Near-even split: sizes differ by at most 1.
	min, max := d.PartitionBytes[0], d.PartitionBytes[0]
	for _, b := range d.PartitionBytes {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max-min > 1 {
		t.Fatalf("uneven split: min=%d max=%d", min, max)
	}
}

func TestReplication(t *testing.T) {
	s := NewStore(nodes, 3, 1)
	d := s.CreateEven("data", 600, 6)
	for p := 0; p < 6; p++ {
		reps := d.Replicas(p)
		if len(reps) != 3 {
			t.Fatalf("partition %d has %d replicas", p, len(reps))
		}
		seen := map[string]bool{}
		for _, r := range reps {
			if seen[r] {
				t.Fatalf("partition %d: duplicate replica %s", p, r)
			}
			seen[r] = true
		}
	}
}

func TestReplicationClamped(t *testing.T) {
	s := NewStore([]string{"only"}, 5, 1)
	if s.Replication() != 1 {
		t.Fatalf("replication = %d, want clamped to 1", s.Replication())
	}
	s2 := NewStore(nodes, 0, 1)
	if s2.Replication() != 1 {
		t.Fatalf("replication = %d, want floor 1", s2.Replication())
	}
}

func TestLocalityOn(t *testing.T) {
	s := NewStore(nodes, 2, 1)
	d := s.CreateEven("data", 100, 4)
	for p := 0; p < 4; p++ {
		for _, r := range d.Replicas(p) {
			if d.LocalityOn(p, r) != NodeLocal {
				t.Fatalf("replica node not NODE_LOCAL")
			}
		}
		if d.LocalityOn(p, "not-a-node") != Any {
			t.Fatal("foreign node not ANY")
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a := NewStore(nodes, 2, 42).CreateEven("d", 1000, 10)
	b := NewStore(nodes, 2, 42).CreateEven("d", 1000, 10)
	for p := 0; p < 10; p++ {
		ra, rb := a.Replicas(p), b.Replicas(p)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("placement differs at partition %d", p)
			}
		}
	}
}

func TestPlacementSpread(t *testing.T) {
	s := NewStore(nodes, 1, 7)
	d := s.CreateEven("d", 6000, 60)
	counts := map[string]int{}
	for p := 0; p < 60; p++ {
		counts[d.Replicas(p)[0]]++
	}
	for _, n := range nodes {
		if counts[n] != 10 {
			t.Fatalf("round-robin spread broken: %v", counts)
		}
	}
}

func TestCreateSkewed(t *testing.T) {
	s := NewStore(nodes, 2, 3)
	d := s.CreateSkewed("skewed", 10000, 20, 0.5)
	var total int64
	min, max := d.PartitionBytes[0], d.PartitionBytes[0]
	for _, b := range d.PartitionBytes {
		total += b
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
		if b < 1 {
			t.Fatal("zero-size partition")
		}
	}
	if max <= min {
		t.Fatal("skewed dataset has uniform partitions")
	}
	// Total is approximately preserved (integer truncation loses a little).
	if total < 9000 || total > 11000 {
		t.Fatalf("skewed total = %d, want ~10000", total)
	}
}

func TestDuplicateDatasetPanics(t *testing.T) {
	s := NewStore(nodes, 2, 1)
	s.CreateEven("d", 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate dataset accepted")
		}
	}()
	s.CreateEven("d", 10, 1)
}

func TestDatasetLookup(t *testing.T) {
	s := NewStore(nodes, 2, 1)
	d := s.CreateEven("d", 10, 1)
	if s.Dataset("d") != d {
		t.Fatal("Dataset lookup failed")
	}
	if s.Dataset("missing") != nil {
		t.Fatal("missing dataset not nil")
	}
}

// Property: every partition always has between 1 and replication distinct
// replicas drawn from the store's nodes.
func TestQuickReplicaInvariant(t *testing.T) {
	nodeSet := map[string]bool{}
	for _, n := range nodes {
		nodeSet[n] = true
	}
	f := func(seed uint64, parts uint8, repl uint8) bool {
		p := int(parts%32) + 1
		r := int(repl%8) + 1
		s := NewStore(nodes, r, seed)
		d := s.CreateEven("d", int64(p*100), p)
		for i := 0; i < p; i++ {
			reps := d.Replicas(i)
			if len(reps) != s.Replication() {
				return false
			}
			seen := map[string]bool{}
			for _, rep := range reps {
				if !nodeSet[rep] || seen[rep] {
					return false
				}
				seen[rep] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
