package sysbench

import (
	"math"
	"testing"

	"rupam/internal/cluster"
)

func TestCPUOrdering(t *testing.T) {
	rows := TableIV()
	byClass := map[string]Row{}
	for _, r := range rows {
		byClass[r.Class] = r
	}
	// Table IV shape: thor has by far the lowest per-event latency; hulk
	// is slightly ahead of stack.
	if !(byClass["thor"].LatencyMS < byClass["hulk"].LatencyMS) {
		t.Error("thor should have the lowest CPU latency")
	}
	if !(byClass["hulk"].LatencyMS < byClass["stack"].LatencyMS) {
		t.Error("hulk should be slightly faster than stack")
	}
	if byClass["thor"].LatencyMS*2.5 > byClass["stack"].LatencyMS {
		t.Errorf("thor/stack latency contrast too small: %v vs %v",
			byClass["thor"].LatencyMS, byClass["stack"].LatencyMS)
	}
}

func TestIOOrdering(t *testing.T) {
	rows := TableIV()
	byClass := map[string]Row{}
	for _, r := range rows {
		byClass[r.Class] = r
	}
	// thor's SSD dominates read and write.
	if byClass["thor"].ReadMBps <= byClass["hulk"].ReadMBps ||
		byClass["thor"].WriteMBps <= byClass["stack"].WriteMBps {
		t.Error("thor's SSD should lead both read and write")
	}
	// HDD classes are close to each other.
	if math.Abs(byClass["hulk"].ReadMBps-byClass["stack"].ReadMBps) > 50 {
		t.Error("HDD classes should be comparable")
	}
}

func TestNetLimitedByServer(t *testing.T) {
	rows := TableIV()
	// The Iperf server sits on a 1 GbE stack node, so every class measures
	// ~1 Gb/s — the paper's "results are similar for all the machines".
	for _, r := range rows {
		if r.NetMbps < 900 || r.NetMbps > 1100 {
			t.Errorf("%s: net = %v Mb/s, want ~1000", r.Class, r.NetMbps)
		}
	}
}

func TestIOMatchesSpec(t *testing.T) {
	res := IO(cluster.ThorSpec)
	if math.Abs(res.ReadMBps-520) > 5 || math.Abs(res.WriteMBps-480) > 5 {
		t.Fatalf("thor I/O = %v/%v, want 520/480", res.ReadMBps, res.WriteMBps)
	}
}

func TestNetBetween10GbENodes(t *testing.T) {
	res := Net(cluster.HulkSpec, cluster.HulkSpec)
	if res.Mbps < 9000 {
		t.Fatalf("hulk-to-hulk throughput = %v Mb/s, want ~10000", res.Mbps)
	}
}

func TestCPUScalesWithCores(t *testing.T) {
	small := cluster.NodeSpec{Name: "s", Cores: 2, FreqGHz: 2}
	big := cluster.NodeSpec{Name: "b", Cores: 8, FreqGHz: 2}
	ts, tb := CPU(small), CPU(big)
	ratio := ts.Seconds / tb.Seconds
	if math.Abs(ratio-4) > 0.2 {
		t.Fatalf("4x cores gave %vx speedup", ratio)
	}
	if ts.LatencyMS != tb.LatencyMS {
		t.Fatal("latency should depend on frequency only")
	}
}
