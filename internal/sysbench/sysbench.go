// Package sysbench reproduces the hardware-characterization benchmarks of
// the paper's Table IV against the simulated node models: the SysBench
// CPU test (prime counting on all cores), the SysBench file-I/O test
// (1 GB direct sequential read/write), and the Iperf UDP throughput test
// between a worker and the master. Running them validates that the
// cluster model reproduces the capability ratios the paper measured —
// thor fastest per core with the best disk, hulk slightly ahead of stack
// on CPU, hulk alone on 10 GbE.
package sysbench

import (
	"rupam/internal/cluster"
	"rupam/internal/netsim"
	"rupam/internal/simx"
)

// CPUResult is the SysBench CPU test outcome.
type CPUResult struct {
	Node      string
	Seconds   float64 // total time for the fixed event budget on all cores
	LatencyMS float64 // per-event latency (single core)
}

// CPUEvents is the fixed event budget of the test (SysBench's default
// 10000 events computing primes below 20000).
const CPUEvents = 10000

// cpuEventWork is the compute demand of one prime-count event in
// giga-cycles, calibrated so a 3.2 GHz core takes ~0.55 ms per event.
const cpuEventWork = 1.75e-3

// CPU runs the prime-counting benchmark on a node: the event budget is
// divided across all cores, each event served at the per-core rate.
func CPU(spec cluster.NodeSpec) CPUResult {
	eng := simx.NewEngine()
	res := simx.NewPSResource(eng, spec.Name+"/cpu", spec.CPUCapacity(), spec.FreqGHz)
	remaining := CPUEvents
	// One worker goroutine per core, each processing events sequentially;
	// modelled as `cores` chains of claims.
	var chain func()
	done := 0
	chain = func() {
		done++
		if remaining > 0 {
			remaining--
			res.Acquire(cpuEventWork, chain)
		}
	}
	for i := 0; i < spec.Cores && remaining > 0; i++ {
		remaining--
		res.Acquire(cpuEventWork, chain)
	}
	eng.Run()
	return CPUResult{
		Node:      spec.Name,
		Seconds:   eng.Now(),
		LatencyMS: cpuEventWork / spec.FreqGHz * 1e3,
	}
}

// IOResult is the file-I/O test outcome.
type IOResult struct {
	Node      string
	ReadMBps  float64
	WriteMBps float64
}

// IOBytes is the test file size (the paper uses a 1 GB file with direct
// I/O to defeat the page cache).
const IOBytes = 1 << 30

// IO runs the sequential direct-I/O benchmark on a node's disk model.
func IO(spec cluster.NodeSpec) IOResult {
	eng := simx.NewEngine()
	read := simx.NewPSResource(eng, spec.Name+"/dr", spec.DiskReadBW, 0)
	write := simx.NewPSResource(eng, spec.Name+"/dw", spec.DiskWriteBW, 0)

	var readTime, writeTime float64
	start := eng.Now()
	read.Acquire(IOBytes, func() {
		readTime = eng.Now() - start
		ws := eng.Now()
		write.Acquire(IOBytes, func() {
			writeTime = eng.Now() - ws
		})
	})
	eng.Run()
	return IOResult{
		Node:      spec.Name,
		ReadMBps:  IOBytes / readTime / 1e6,
		WriteMBps: IOBytes / writeTime / 1e6,
	}
}

// NetResult is the Iperf-style UDP throughput outcome.
type NetResult struct {
	From, To  string
	Mbps      float64
	TransferS float64
}

// NetBytes is the volume streamed by the throughput test.
const NetBytes = 4 << 30

// Net streams NetBytes from one node spec to another over a fresh
// two-node network and reports achieved throughput.
func Net(from, to cluster.NodeSpec) NetResult {
	eng := simx.NewEngine()
	net := netsim.New(eng)
	net.AddNode("src", from.NetBandwidth, from.NetBandwidth)
	net.AddNode("dst", to.NetBandwidth, to.NetBandwidth)
	start := eng.Now()
	var dur float64
	net.Start("src", "dst", NetBytes, func() { dur = eng.Now() - start })
	eng.Run()
	return NetResult{
		From:      from.Name,
		To:        to.Name,
		Mbps:      NetBytes * 8 / dur / 1e6,
		TransferS: dur,
	}
}

// Row is one Table IV row for a hardware class.
type Row struct {
	Class     string
	CPUSec    float64
	LatencyMS float64
	ReadMBps  float64
	WriteMBps float64
	NetMbps   float64
}

// TableIV characterizes the three Hydra hardware classes against the
// master's class (stack, where the paper runs the Iperf server).
func TableIV() []Row {
	classes := []cluster.NodeSpec{cluster.StackSpec, cluster.HulkSpec, cluster.ThorSpec}
	names := []string{"stack", "hulk", "thor"}
	master := cluster.StackSpec
	master.Name = "master"
	rows := make([]Row, 0, len(classes))
	for i, spec := range classes {
		spec.Name = names[i]
		cpu := CPU(spec)
		io := IO(spec)
		net := Net(spec, master)
		rows = append(rows, Row{
			Class:     names[i],
			CPUSec:    cpu.Seconds,
			LatencyMS: cpu.LatencyMS,
			ReadMBps:  io.ReadMBps,
			WriteMBps: io.WriteMBps,
			NetMbps:   net.Mbps,
		})
	}
	return rows
}
