package streaming

import (
	"strings"
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/simx"
)

func hydraNodes() []NodeInfo {
	return SnapshotNodes(cluster.NewHydra(cluster.New(simx.NewEngine())))
}

// serialHot builds a topology whose middle operator is hot (≈3 Gcyc/s)
// but serial (Parallelism 1): only a fast-core node can sustain it, which
// is exactly the heterogeneity signal aggregate-capacity placement misses.
func serialHot() *Topology {
	return &Topology{
		Name: "serial-hot",
		Ops: []*Operator{
			{ID: 0, Name: "src", CyclesPerRecord: 1e-5, BytesPerRecord: 100, Parallelism: 1, RateHz: 1000},
			{ID: 1, Name: "hot", CyclesPerRecord: 3e-3, BytesPerRecord: 100, Selectivity: 1, Parallelism: 1, StateBytes: 1 << 20},
			{ID: 2, Name: "sink", CyclesPerRecord: 1e-5, BytesPerRecord: 100, Selectivity: 1, Parallelism: 1},
		},
		Edges: []Edge{{0, 1}, {1, 2}},
	}
}

func TestNewPlacerUnknown(t *testing.T) {
	if _, err := NewPlacer("storm", nil, nil); err == nil {
		t.Fatal("unknown placer accepted")
	}
	for _, name := range PlacerNames {
		p, err := NewPlacer(name, nil, nil)
		if err != nil || p.Name() != name {
			t.Fatalf("placer %q: %v / %v", name, p, err)
		}
	}
}

func TestDefaultPlacerRoundRobin(t *testing.T) {
	nodes := hydraNodes()
	p, _ := NewPlacer("default", nil, nil)
	placement := p.Place(serialHot(), nodes)
	// Blind round-robin in cluster order, whatever the demand.
	for i, id := range []int{0, 1, 2} {
		if placement[id] != nodes[i].Name {
			t.Fatalf("op %d on %s, want %s", id, placement[id], nodes[i].Name)
		}
	}
}

// TestRupamHonorsPerCoreFrequency is the heterogeneity centrepiece: the
// serial hot operator needs 3 Gcyc/s on a single core. Only thor nodes
// (3.2 GHz) can attain that; hulk's 32 aggregate Gcyc/s arrive in 1.0 GHz
// slices and stack's in 0.9 GHz slices. The rupam placer must choose a
// thor; the Storm-style placer, seeing only aggregate capacity, does not.
func TestRupamHonorsPerCoreFrequency(t *testing.T) {
	nodes := hydraNodes()
	topo := serialHot()

	rupam, _ := NewPlacer("rupam", nil, nil)
	placement := rupam.Place(topo, nodes)
	if !strings.HasPrefix(placement[1], "thor") {
		t.Fatalf("rupam placed the serial hot operator on %s, want a thor", placement[1])
	}

	resource, _ := NewPlacer("resource", nil, nil)
	placement = resource.Place(topo, nodes)
	if strings.HasPrefix(placement[1], "thor") {
		t.Fatalf("resource-aware best-fit unexpectedly matched rupam (%s); the baseline gap vanished", placement[1])
	}
}

func TestPickExcludesCurrentAndDoomed(t *testing.T) {
	nodes := hydraNodes()
	topo := serialHot()
	for _, name := range PlacerNames {
		p, _ := NewPlacer(name, nil, nil)
		current := p.Place(topo, nodes)
		cur := current[1]
		exclude := map[string]bool{}
		for _, n := range nodes {
			// Doom every node except the last two, whatever they are.
			if n.Name != nodes[len(nodes)-1].Name && n.Name != nodes[len(nodes)-2].Name {
				exclude[n.Name] = true
			}
		}
		got := p.Pick(topo, topo.Op(1), nodes, current, exclude)
		if got == "" {
			t.Fatalf("%s: Pick found no target", name)
		}
		if got == cur || exclude[got] {
			t.Fatalf("%s: Pick chose %s (current %s, excluded %v)", name, got, cur, exclude[got])
		}
	}
}
