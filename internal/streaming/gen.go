package streaming

import (
	"fmt"

	"rupam/internal/stats"
)

// TopoConfig bounds the seeded topology generator. The zero value is
// filled in by withDefaults; all draws come from one stats.Rand in a
// fixed order, so a given (seed, config) pair always yields a
// byte-identical topology (see Topology.Fingerprintable).
type TopoConfig struct {
	// Sources is the number of source operators (default 2).
	Sources int
	// Layers is the number of intermediate operator layers between the
	// sources and the sink (default 3).
	Layers int
	// WidthMin/WidthMax bound the operators per intermediate layer
	// (defaults 2..3).
	WidthMin, WidthMax int
	// RateMin/RateMax bound per-source emission rates in records/sec
	// (defaults 2000..6000).
	RateMin, RateMax float64
	// SelMin/SelMax bound per-operator selectivity (defaults 0.4..1.3).
	SelMin, SelMax float64
	// CyclesMin/CyclesMax bound per-record compute cost in giga-cycles
	// (defaults 1e-4..8e-4 — i.e. 0.1–0.8 M cycles/record, so one
	// 3.2 GHz core sustains 4k–32k records/sec).
	CyclesMin, CyclesMax float64
	// BytesMin/BytesMax bound the serialized record size (defaults
	// 200..2000 bytes).
	BytesMin, BytesMax float64
	// StateMin/StateMax bound operator state size in bytes (defaults
	// 8 MB..256 MB) — the migration payload.
	StateMin, StateMax int64
	// ParMin/ParMax bound per-operator parallelism (defaults 1..4;
	// draws ParMin..ParMax).
	ParMin, ParMax int
}

func (c TopoConfig) withDefaults() TopoConfig {
	if c.Sources <= 0 {
		c.Sources = 2
	}
	if c.Layers <= 0 {
		c.Layers = 3
	}
	if c.WidthMin <= 0 {
		c.WidthMin = 2
	}
	if c.WidthMax < c.WidthMin {
		c.WidthMax = c.WidthMin + 1
	}
	if c.RateMin <= 0 {
		c.RateMin = 2000
	}
	if c.RateMax < c.RateMin {
		c.RateMax = 3 * c.RateMin
	}
	if c.SelMin <= 0 {
		c.SelMin = 0.4
	}
	if c.SelMax < c.SelMin {
		c.SelMax = 1.3
	}
	if c.CyclesMin <= 0 {
		c.CyclesMin = 1e-4
	}
	if c.CyclesMax < c.CyclesMin {
		c.CyclesMax = 8e-4
	}
	if c.BytesMin <= 0 {
		c.BytesMin = 200
	}
	if c.BytesMax < c.BytesMin {
		c.BytesMax = 2000
	}
	if c.StateMin <= 0 {
		c.StateMin = 8 << 20
	}
	if c.StateMax < c.StateMin {
		c.StateMax = 256 << 20
	}
	if c.ParMin <= 0 {
		c.ParMin = 1
	}
	if c.ParMax < c.ParMin {
		c.ParMax = c.ParMin + 3
	}
	return c
}

// GenTopology draws a layered operator DAG from the seed: a layer of
// sources, Layers intermediate layers whose operators each pick one or
// two upstreams from the previous layer, and a single sink that absorbs
// every dangling output. Draw order is append-only — new knobs must draw
// after existing ones so old seeds keep their topologies.
func GenTopology(seed uint64, cfg TopoConfig) *Topology {
	cfg = cfg.withDefaults()
	rng := stats.NewRand(seed ^ 0x5eedc0de)
	t := &Topology{Name: fmt.Sprintf("stream-%d", seed)}
	next := 0
	add := func(name string, o Operator) *Operator {
		o.ID = next
		o.Name = fmt.Sprintf("%s%d", name, next)
		next++
		op := o
		t.Ops = append(t.Ops, &op)
		return &op
	}

	// Layer 0: sources.
	prev := make([]int, 0, cfg.Sources)
	for i := 0; i < cfg.Sources; i++ {
		o := add("src", Operator{
			CyclesPerRecord: rng.Range(cfg.CyclesMin, cfg.CyclesMax) * 0.25,
			BytesPerRecord:  rng.Range(cfg.BytesMin, cfg.BytesMax),
			Parallelism:     cfg.ParMin + rng.Intn(cfg.ParMax-cfg.ParMin+1),
			StateBytes:      cfg.StateMin + int64(rng.Float64()*float64(cfg.StateMax-cfg.StateMin)),
			RateHz:          rng.Range(cfg.RateMin, cfg.RateMax),
		})
		prev = append(prev, o.ID)
	}

	// Intermediate layers: each operator takes 1–2 distinct upstreams
	// from the previous layer (fan-in); an upstream feeding several
	// operators is fan-out.
	for l := 0; l < cfg.Layers; l++ {
		width := cfg.WidthMin + rng.Intn(cfg.WidthMax-cfg.WidthMin+1)
		layer := make([]int, 0, width)
		for i := 0; i < width; i++ {
			o := add("op", Operator{
				CyclesPerRecord: rng.Range(cfg.CyclesMin, cfg.CyclesMax),
				BytesPerRecord:  rng.Range(cfg.BytesMin, cfg.BytesMax),
				Selectivity:     rng.Range(cfg.SelMin, cfg.SelMax),
				Parallelism:     cfg.ParMin + rng.Intn(cfg.ParMax-cfg.ParMin+1),
				StateBytes:      cfg.StateMin + int64(rng.Float64()*float64(cfg.StateMax-cfg.StateMin)),
			})
			fanin := 1 + rng.Intn(2)
			if fanin > len(prev) {
				fanin = len(prev)
			}
			first := rng.Intn(len(prev))
			t.Edges = append(t.Edges, Edge{From: prev[first], To: o.ID})
			if fanin == 2 {
				second := rng.Intn(len(prev) - 1)
				if second >= first {
					second++
				}
				t.Edges = append(t.Edges, Edge{From: prev[second], To: o.ID})
			}
			layer = append(layer, o.ID)
		}
		// Any previous-layer operator nobody picked up would dangle as
		// an accidental sink; wire it into a deterministic member of
		// the new layer instead.
		for _, up := range prev {
			if len(t.Out(up)) == 0 {
				t.Edges = append(t.Edges, Edge{From: up, To: layer[up%len(layer)]})
			}
		}
		prev = layer
	}

	// One sink absorbs the last layer.
	sink := add("sink", Operator{
		CyclesPerRecord: rng.Range(cfg.CyclesMin, cfg.CyclesMax) * 0.5,
		BytesPerRecord:  rng.Range(cfg.BytesMin, cfg.BytesMax),
		Selectivity:     1,
		Parallelism:     cfg.ParMin + rng.Intn(cfg.ParMax-cfg.ParMin+1),
		StateBytes:      cfg.StateMin + int64(rng.Float64()*float64(cfg.StateMax-cfg.StateMin)),
	})
	for _, up := range prev {
		t.Edges = append(t.Edges, Edge{From: up, To: sink.ID})
	}

	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("streaming: generator produced an invalid topology: %v", err))
	}
	return t
}
