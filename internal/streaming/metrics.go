package streaming

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/executor"
)

// OpStat is one operator's lifetime accounting.
type OpStat struct {
	ID         int     `json:"id"`
	Name       string  `json:"name"`
	Node       string  `json:"node"` // final host
	Consumed   float64 `json:"consumed"`
	Emitted    float64 `json:"emitted"`
	Cycles     float64 `json:"gcycles"`
	MaxBacklog float64 `json:"max_backlog"`
}

// ChanStat is one channel's lifetime accounting.
type ChanStat struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Capacity  float64 `json:"capacity"`
	Emitted   float64 `json:"emitted"`
	Delivered float64 `json:"delivered"`
	Queued    float64 `json:"queued"` // left over at quiesce
	MaxQueue  float64 `json:"max_queue"`
}

// Result is the outcome of one streaming run. Identical (seed, config)
// inputs produce bit-identical Results — Fingerprint pins that down.
type Result struct {
	Seed   uint64 `json:"seed"`
	Placer string `json:"placer"`

	Topology  string `json:"topology"`
	OpCount   int    `json:"op_count"`
	EdgeCount int    `json:"edge_count"`

	Horizon        float64 `json:"horizon"`
	Warmup         float64 `json:"warmup"`
	SLOMs          float64 `json:"slo_ms"`
	ForceMigrateAt float64 `json:"force_migrate_at,omitempty"`

	Drained   bool    `json:"drained"`
	QuiesceAt float64 `json:"quiesce_at"`

	// ThroughputHz is sink records/s sustained over (Warmup, Horizon] —
	// the headline metric the placement gate compares.
	ThroughputHz float64 `json:"throughput_hz"`
	// OfferedHz is the closed-form fault-free sink input rate, the
	// ceiling ThroughputHz approaches when nothing backpressures.
	OfferedHz float64 `json:"offered_hz"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	SLOAttain float64 `json:"slo_attain"`

	SourceEmitted map[int]float64   `json:"source_emitted"`
	Ops           []OpStat          `json:"ops"`
	Chans         []ChanStat        `json:"chans"`
	Migrations    []MigrationRecord `json:"migrations"`
	LoadSpikes    int               `json:"load_spikes"`

	Violations []string `json:"violations,omitempty"`

	// Substrate handles for the conservation battery; not serialized.
	Execs map[string]*executor.Executor `json:"-"`
	Clu   *cluster.Cluster              `json:"-"`
	Cache *executor.CacheTracker        `json:"-"`
	Topo  *Topology                     `json:"-"`
}

// result freezes the runtime into a Result.
func (r *Runtime) result() *Result {
	res := &Result{
		Seed:           r.cfg.Seed,
		Placer:         r.placer.Name(),
		Topology:       r.topo.Name,
		OpCount:        len(r.topo.Ops),
		EdgeCount:      len(r.topo.Edges),
		Horizon:        r.cfg.Horizon,
		Warmup:         r.cfg.Warmup,
		SLOMs:          r.cfg.SLOMs,
		ForceMigrateAt: r.cfg.ForceMigrateAt,
		Drained:        r.drained,
		QuiesceAt:      r.quiesceAt,
		SourceEmitted:  r.sourceEmitted,
		Migrations:     r.records,
		LoadSpikes:     r.inj.LoadSpikes,
		Violations:     r.violations,
		Execs:          r.execs,
		Clu:            r.clu,
		Cache:          r.cache,
		Topo:           r.topo,
	}
	if window := r.cfg.Horizon - r.cfg.Warmup; window > 0 {
		res.ThroughputHz = r.sinkWindow / window
	}
	rates := r.topo.SteadyRates()
	for _, id := range r.topo.Sinks() {
		res.OfferedHz += rates[id]
	}
	res.P50Ms, res.P99Ms = weightedPercentiles(r.latSamples)
	if r.sloTotal > 0 {
		res.SLOAttain = r.sloHit / r.sloTotal
	}
	for _, id := range r.topo.TopoOrder() {
		a := r.acc[id]
		res.Ops = append(res.Ops, OpStat{
			ID: id, Name: r.topo.Op(id).Name, Node: r.opNode[id],
			Consumed: a.consumed, Emitted: a.emitted, Cycles: a.cycles,
			MaxBacklog: a.maxBack,
		})
	}
	for _, ch := range r.chans {
		res.Chans = append(res.Chans, ChanStat{
			From: ch.from, To: ch.to, Capacity: ch.capacity,
			Emitted: ch.emitted, Delivered: ch.delivered,
			Queued: ch.q.count, MaxQueue: ch.maxQueue,
		})
	}
	return res
}

// weightedPercentiles returns the p50 and p99 of the weighted latency
// samples, in milliseconds.
func weightedPercentiles(samples []latSample) (p50, p99 float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	s := make([]latSample, len(samples))
	copy(s, samples)
	sort.Slice(s, func(a, b int) bool { return s[a].lat < s[b].lat })
	total := 0.0
	for _, x := range s {
		total += x.weight
	}
	at := func(p float64) float64 {
		target := p * total
		cum := 0.0
		for _, x := range s {
			cum += x.weight
			if cum >= target {
				return x.lat * 1000
			}
		}
		return s[len(s)-1].lat * 1000
	}
	return at(0.50), at(0.99)
}

// relErr is the relative-error tolerance of the conservation checks:
// record counts are float64 sums over hundreds of thousands of cohort
// operations, so exact equality is not meaningful.
const relErr = 1e-6

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	if scale < 1 {
		scale = 1
	}
	return d <= relErr*scale
}

// CheckInvariants is the streaming invariant battery over a finished run:
//
//   - channel conservation: emitted == delivered + queued, per channel;
//   - operator flow: records emitted into each out-channel equal records
//     consumed × selectivity — no record manufactured or dropped by a
//     migration;
//   - exactly-once end-to-end: on a drained run, every operator's consumed
//     count equals the closed-form propagation of what the sources
//     actually emitted — so across every migration (graceful or
//     emergency), nothing was lost and nothing was double-counted;
//   - bounded backlog: no channel ever exceeded its capacity;
//   - the run drained, and the forced migration (when configured) happened.
//
// Substrate conservation (heaps, GPU tokens, reservations) is the chaos
// package's CheckSubstrateConservation over Execs/Clu/Cache.
func CheckInvariants(res *Result) []string {
	var v []string
	v = append(v, res.Violations...)

	for _, c := range res.Chans {
		if !closeEnough(c.Emitted, c.Delivered+c.Queued) {
			v = append(v, fmt.Sprintf("chan %d->%d: emitted %.3f != delivered %.3f + queued %.3f",
				c.From, c.To, c.Emitted, c.Delivered, c.Queued))
		}
		if res.Drained && c.Queued > recEps {
			v = append(v, fmt.Sprintf("chan %d->%d: %.3f records stranded after drain",
				c.From, c.To, c.Queued))
		}
		if c.MaxQueue > c.Capacity*(1+relErr)+recEps {
			v = append(v, fmt.Sprintf("chan %d->%d: queue peaked at %.3f over capacity %.3f",
				c.From, c.To, c.MaxQueue, c.Capacity))
		}
	}

	if res.Topo != nil {
		opByID := make(map[int]OpStat, len(res.Ops))
		for _, o := range res.Ops {
			opByID[o.ID] = o
		}
		for _, c := range res.Chans {
			o := res.Topo.Op(c.From)
			var want float64
			if len(res.Topo.In(c.From)) == 0 {
				want = res.SourceEmitted[c.From]
			} else {
				want = opByID[c.From].Consumed * o.Selectivity
			}
			if !closeEnough(c.Emitted, want) {
				v = append(v, fmt.Sprintf("chan %d->%d: emitted %.3f but upstream flow implies %.3f",
					c.From, c.To, c.Emitted, want))
			}
		}
		if res.Drained {
			expect := res.Topo.PropagateEmitted(res.SourceEmitted)
			for _, o := range res.Ops {
				if len(res.Topo.In(o.ID)) == 0 {
					continue
				}
				if !closeEnough(o.Consumed, expect[o.ID]) {
					v = append(v, fmt.Sprintf(
						"op %d (%s): consumed %.3f records but sources imply %.3f (lost or double-counted)",
						o.ID, o.Name, o.Consumed, expect[o.ID]))
				}
			}
		}
	}

	if !res.Drained {
		v = append(v, "run did not drain")
	}
	if res.ForceMigrateAt > 0 && len(res.Migrations) == 0 {
		v = append(v, "forced migration configured but no migration happened")
	}
	return v
}

// Fingerprint hashes the run's observable outcome — per-operator and
// per-channel accounting, migrations, and the headline metrics — so two
// runs of the same seed and config can be compared bit-for-bit.
func (res *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(h, format, args...)
	}
	w("seed=%d placer=%s topo=%s drained=%v quiesce=%.9g\n",
		res.Seed, res.Placer, res.Topology, res.Drained, res.QuiesceAt)
	w("thr=%.9g p50=%.9g p99=%.9g slo=%.9g\n",
		res.ThroughputHz, res.P50Ms, res.P99Ms, res.SLOAttain)
	srcIDs := make([]int, 0, len(res.SourceEmitted))
	for id := range res.SourceEmitted {
		srcIDs = append(srcIDs, id)
	}
	sort.Ints(srcIDs)
	for _, id := range srcIDs {
		w("src %d emitted %.9g\n", id, res.SourceEmitted[id])
	}
	for _, o := range res.Ops {
		w("op %d %s node=%s consumed=%.9g emitted=%.9g cycles=%.9g back=%.9g\n",
			o.ID, o.Name, o.Node, o.Consumed, o.Emitted, o.Cycles, o.MaxBacklog)
	}
	for _, c := range res.Chans {
		w("chan %d->%d emitted=%.9g delivered=%.9g queued=%.9g max=%.9g\n",
			c.From, c.To, c.Emitted, c.Delivered, c.Queued, c.MaxQueue)
	}
	for _, m := range res.Migrations {
		w("mig op=%d %s->%s reason=%s start=%.9g end=%.9g emergency=%v\n",
			m.Op, m.From, m.To, m.Reason, m.Start, m.End, m.Emergency)
	}
	for _, s := range res.Violations {
		w("violation %s\n", s)
	}
	return h.Sum64()
}
