package streaming

import (
	"rupam/internal/netsim"
)

// maxCohorts bounds the FIFO cohort list per queue; beyond it the two
// oldest cohorts merge (count-weighted birth time), keeping memory and
// per-tick work bounded under deep backlogs without losing conservation.
const maxCohorts = 1024

// wireBudget is the byte budget of a channel's long-lived netsim flow —
// large enough that the flow never completes on its own; the runtime
// cancels or redirects it instead. This is exactly the "flow that never
// completes" shape the netsim regression test pins down.
const wireBudget = 1e15

// shipSlack caps how many records' worth of wire credit a channel may
// bank beyond what is queued: the wire can run ahead of delivery by a
// bounded burst, not indefinitely.
const shipSlack = 64

// cohort is a batch of records sharing a birth time. Counts are float64
// so selectivity composition and rate integration stay exact.
type cohort struct {
	count float64
	born  float64
}

// recQueue is a FIFO of cohorts with an O(1) total.
type recQueue struct {
	cohorts []cohort
	count   float64
}

func (q *recQueue) push(count, born float64) {
	if count <= 0 {
		return
	}
	q.count += count
	if n := len(q.cohorts); n > 0 && q.cohorts[n-1].born == born {
		q.cohorts[n-1].count += count
		return
	}
	q.cohorts = append(q.cohorts, cohort{count: count, born: born})
	if len(q.cohorts) > maxCohorts {
		// Merge the two oldest cohorts, preserving total count and the
		// count-weighted mean birth time.
		a, b := q.cohorts[0], q.cohorts[1]
		merged := cohort{
			count: a.count + b.count,
			born:  (a.born*a.count + b.born*b.count) / (a.count + b.count),
		}
		q.cohorts = append([]cohort{merged}, q.cohorts[2:]...)
	}
}

// pop removes up to n records from the front, returning the consumed
// cohorts (the last one possibly split).
func (q *recQueue) pop(n float64) []cohort {
	if n <= 0 || q.count <= 0 {
		return nil
	}
	if n > q.count {
		n = q.count
	}
	var out []cohort
	for n > 0 && len(q.cohorts) > 0 {
		c := &q.cohorts[0]
		if c.count <= n+recEps {
			out = append(out, *c)
			n -= c.count
			q.count -= c.count
			q.cohorts = q.cohorts[1:]
			if n <= recEps {
				n = 0
			}
			continue
		}
		out = append(out, cohort{count: n, born: c.born})
		c.count -= n
		q.count -= n
		n = 0
	}
	if q.count < recEps {
		q.count = 0
		q.cohorts = q.cohorts[:0]
	}
	return out
}

// recEps absorbs float64 residue in record counts.
const recEps = 1e-9

// channel is one topology edge at runtime: a bounded FIFO of records
// emitted by the upstream operator, of which the `arrived` prefix has
// crossed the wire and is consumable downstream. The wire is a long-lived
// netsim flow between the two operators' current hosts, open only while
// there is something left to ship, so streaming traffic contends with
// every other flow on the NICs and idle channels consume nothing.
type channel struct {
	from, to int
	capacity float64 // records

	q       recQueue
	arrived float64 // prefix of q.count that has crossed the wire

	wire          *netsim.Flow
	lastRemaining float64
	shipCredit    float64 // wire bytes banked but not yet converted to arrivals

	// paused stops the upstream operator from emitting into this channel
	// (free() == 0) while its consumer drains for a migration.
	paused bool

	// Accounting for the invariant battery.
	emitted   float64 // records pushed by the upstream operator
	delivered float64 // records consumed by the downstream operator
	maxQueue  float64
}

// free returns how many records the upstream operator may emit into the
// channel right now — the credit that, at zero, backpressures the sender.
func (ch *channel) free() float64 {
	if ch.paused {
		return 0
	}
	f := ch.capacity - ch.q.count
	if f < 0 {
		return 0
	}
	return f
}

// push enqueues records emitted by the upstream operator.
func (ch *channel) push(count, born float64) {
	if count <= 0 {
		return
	}
	ch.q.push(count, born)
	ch.emitted += count
	if ch.q.count > ch.maxQueue {
		ch.maxQueue = ch.q.count
	}
}

// unarrived returns the records queued but not yet across the wire.
func (ch *channel) unarrived() float64 {
	u := ch.q.count - ch.arrived
	if u < 0 {
		return 0
	}
	return u
}

// settleWire folds the wire's progress since the last tick into arrival
// credit and advances the arrived prefix. Call after Network.Sync.
func (ch *channel) settleWire(bytesPerRecord float64) {
	if ch.wire != nil {
		ch.shipCredit += ch.lastRemaining - ch.wire.Remaining()
		ch.lastRemaining = ch.wire.Remaining()
	}
	if u := ch.unarrived(); u > 0 && ch.shipCredit > 0 {
		n := ch.shipCredit / bytesPerRecord
		if n > u {
			n = u
		}
		ch.arrived += n
		ch.shipCredit -= n * bytesPerRecord
	}
	// The wire may run ahead of queued records by a bounded burst only.
	if maxBank := shipSlack * bytesPerRecord; ch.shipCredit > maxBank {
		ch.shipCredit = maxBank
	}
}

// consume removes up to n arrived records for the downstream operator,
// returning the consumed cohorts.
func (ch *channel) consume(n float64) []cohort {
	if n > ch.arrived {
		n = ch.arrived
	}
	out := ch.q.pop(n)
	var got float64
	for _, c := range out {
		got += c.count
	}
	ch.arrived -= got
	if ch.arrived < recEps {
		ch.arrived = 0
	}
	ch.delivered += got
	return out
}
