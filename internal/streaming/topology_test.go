package streaming

import (
	"math"
	"testing"
)

// diamond builds src → a,b → sink by hand: the closed forms are checkable
// on paper.
func diamond() *Topology {
	return &Topology{
		Name: "diamond",
		Ops: []*Operator{
			{ID: 0, Name: "src", CyclesPerRecord: 1e-4, BytesPerRecord: 500, Parallelism: 1, RateHz: 1000},
			{ID: 1, Name: "a", CyclesPerRecord: 2e-4, BytesPerRecord: 400, Selectivity: 0.5, Parallelism: 2},
			{ID: 2, Name: "b", CyclesPerRecord: 3e-4, BytesPerRecord: 300, Selectivity: 2.0, Parallelism: 2},
			{ID: 3, Name: "sink", CyclesPerRecord: 1e-4, BytesPerRecord: 100, Selectivity: 1, Parallelism: 1},
		},
		Edges: []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
}

func TestDiamondValidates(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyRatesClosedForm(t *testing.T) {
	d := diamond()
	in := d.SteadyRates()
	// src broadcasts 1000 Hz onto both edges; a halves, b doubles.
	if in[1] != 1000 || in[2] != 1000 {
		t.Fatalf("fan-out input rates: got a=%v b=%v, want 1000 each", in[1], in[2])
	}
	if want := 1000*0.5 + 1000*2.0; in[3] != want {
		t.Fatalf("sink input rate: got %v, want %v", in[3], want)
	}
	out := d.SteadyOutRates()
	if out[0] != 1000 || out[1] != 500 || out[2] != 2000 {
		t.Fatalf("out rates: got %v/%v/%v, want 1000/500/2000", out[0], out[1], out[2])
	}
}

func TestPropagateEmittedMatchesSteadyRates(t *testing.T) {
	d := diamond()
	// Emitting exactly one second of the steady rate must reproduce the
	// steady input rates.
	got := d.PropagateEmitted(map[int]float64{0: 1000})
	in := d.SteadyRates()
	for _, id := range []int{1, 2, 3} {
		if math.Abs(got[id]-in[id]) > 1e-9 {
			t.Fatalf("op %d: propagate %v != steady %v", id, got[id], in[id])
		}
	}
}

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	d := diamond()
	order := d.TopoOrder()
	pos := make(map[int]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range d.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d→%d violates topological order %v", e.From, e.To, order)
		}
	}
	for i := 0; i < 5; i++ {
		again := d.TopoOrder()
		for j := range order {
			if again[j] != order[j] {
				t.Fatalf("TopoOrder not deterministic: %v vs %v", order, again)
			}
		}
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"cycle", func(d *Topology) { d.Edges = append(d.Edges, Edge{3, 0}) }},
		{"self-edge", func(d *Topology) { d.Edges = append(d.Edges, Edge{1, 1}) }},
		{"dup-edge", func(d *Topology) { d.Edges = append(d.Edges, Edge{0, 1}) }},
		{"unknown-op", func(d *Topology) { d.Edges = append(d.Edges, Edge{0, 99}) }},
		{"dup-id", func(d *Topology) {
			d.Ops = append(d.Ops, &Operator{ID: 0, Name: "x", CyclesPerRecord: 1, BytesPerRecord: 1, Selectivity: 1, Parallelism: 1})
		}},
		{"source-no-rate", func(d *Topology) { d.Ops[0].RateHz = 0 }},
		{"non-source-rate", func(d *Topology) { d.Ops[1].RateHz = 5 }},
		{"bad-selectivity", func(d *Topology) { d.Ops[1].Selectivity = 0 }},
		{"bad-parallelism", func(d *Topology) { d.Ops[2].Parallelism = 0 }},
	}
	for _, c := range cases {
		d := diamond()
		c.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid topology", c.name)
		}
	}
}

// TestGenTopologyDeterministic pins the generator's contract: the same
// seed yields a byte-identical topology, different seeds differ.
func TestGenTopologyDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := GenTopology(seed, TopoConfig{})
		b := GenTopology(seed, TopoConfig{})
		if a.Fingerprintable() != b.Fingerprintable() {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s",
				seed, a.Fingerprintable(), b.Fingerprintable())
		}
	}
	if GenTopology(1, TopoConfig{}).Fingerprintable() == GenTopology(2, TopoConfig{}).Fingerprintable() {
		t.Fatal("seeds 1 and 2 generated identical topologies")
	}
}

func TestGenTopologyStructure(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		topo := GenTopology(seed, TopoConfig{})
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(topo.Sources()); got != 2 {
			t.Fatalf("seed %d: %d sources, want 2", seed, got)
		}
		if got := len(topo.Sinks()); got != 1 {
			t.Fatalf("seed %d: %d sinks, want 1", seed, got)
		}
		// Steady rates are finite and positive everywhere downstream.
		for id, rate := range topo.SteadyRates() {
			if len(topo.In(id)) > 0 && (rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate)) {
				t.Fatalf("seed %d: op %d steady rate %v", seed, id, rate)
			}
		}
	}
}
