package streaming

import (
	"fmt"

	"rupam/internal/core"
	"rupam/internal/tracing"
)

// rupamPlacer extends RUPAM's demand-vector matching from tasks to
// operators: each operator carries a demand vector — CPU Gcycles/s,
// network bytes/s in and out, state bytes — learned from CharDB evidence
// when the operator has run before (the streaming runtime feeds observed
// demand back under a per-operator TaskKey) and derived from the
// topology's closed form otherwise. Nodes are scored by the tightest
// headroom dimension, with two heterogeneity terms the Storm-style
// placer cannot see:
//
//   - attainable rate honors the per-core frequency × parallelism cap —
//     a 2-way operator gets 6.4 Gcyc/s on a 3.2 GHz thor but only
//     2.0 Gcyc/s on a 1.0 GHz hulk, whatever the aggregate capacities;
//   - edges to already-placed neighbors charge both NICs unless the
//     neighbor is colocated (loopback is free), so chatty subgraphs pull
//     together and wide fan-ins land on 10 GbE nodes.
type rupamPlacer struct {
	db  *core.CharDB
	col *tracing.Collector

	// sigPrefix scopes CharDB keys, set by the runtime per topology.
	sigPrefix string
}

func (p *rupamPlacer) Name() string { return "rupam" }

// demandVec is one operator's resource demand in steady state.
type demandVec struct {
	cpu     float64 // Gcycles/s
	in, out float64 // bytes/s
	state   int64
	learned bool
}

// StreamKey is the CharDB key for one operator of one topology. The
// runtime records observed demand under it; the placer looks it up.
func StreamKey(topo string, op *Operator) core.TaskKey {
	return core.TaskKey{Signature: "stream/" + topo + "/" + op.Name, Partition: op.ID}
}

// demand builds the operator's demand vector: CharDB evidence when the
// operator has history (ComputeTime carries Gcycles/s, ShuffleRead/Write
// carry bytes/s under the streaming encoding — see Runtime.feedCharDB),
// closed-form rates otherwise.
func (p *rupamPlacer) demand(t *Topology, o *Operator, inRates, outRates map[int]float64) demandVec {
	v := demandVec{
		cpu:   inRates[o.ID] * o.CyclesPerRecord,
		state: o.StateBytes,
	}
	for _, up := range t.In(o.ID) {
		v.in += outRates[up] * t.Op(up).BytesPerRecord
	}
	v.out = outRates[o.ID] * o.BytesPerRecord * float64(len(t.Out(o.ID)))
	if p.db != nil {
		if rec := p.db.Lookup(StreamKey(t.Name, o)); rec != nil && rec.Runs > 0 {
			v.cpu = rec.ComputeTime
			v.in = rec.ShuffleRead
			v.out = rec.ShuffleWrite
			if rec.PeakMemory > 0 {
				v.state = rec.PeakMemory
			}
			v.learned = true
		}
	}
	return v
}

// load tracks per-node demand already assigned during a placement round.
type load struct {
	cpu      float64
	net      float64 // busier-direction NIC load, bytes/s
	stateUse int64
}

func (p *rupamPlacer) Place(t *Topology, nodes []NodeInfo) map[int]string {
	inRates, outRates := t.SteadyRates(), t.SteadyOutRates()
	demand := cpuDemand(t)
	assigned := make(map[string]*load, len(nodes))
	for _, n := range nodes {
		assigned[n.Name] = &load{}
	}
	placement := make(map[int]string, len(t.Ops))
	for _, id := range byDemandDesc(t, demand) {
		o := t.Op(id)
		v := p.demand(t, o, inRates, outRates)
		node := p.score(t, o, v, nodes, placement, assigned, nil, outRates)
		placement[id] = node
		p.charge(t, o, v, node, placement, assigned, outRates)
	}
	return placement
}

func (p *rupamPlacer) Pick(t *Topology, op *Operator, nodes []NodeInfo, current map[int]string, exclude map[string]bool) string {
	inRates, outRates := t.SteadyRates(), t.SteadyOutRates()
	assigned := make(map[string]*load, len(nodes))
	for _, n := range nodes {
		assigned[n.Name] = &load{}
	}
	for _, other := range t.TopoOrder() {
		if other == op.ID {
			continue
		}
		if node, ok := current[other]; ok {
			ov := p.demand(t, t.Op(other), inRates, outRates)
			p.charge(t, t.Op(other), ov, node, current, assigned, outRates)
		}
	}
	ex := make(map[string]bool, len(exclude)+1)
	for n := range exclude {
		ex[n] = true
	}
	ex[current[op.ID]] = true
	v := p.demand(t, op, inRates, outRates)
	others := make(map[int]string, len(current))
	for id, node := range current {
		if id != op.ID {
			others[id] = node
		}
	}
	return p.score(t, op, v, nodes, others, assigned, ex, outRates)
}

// crossBytes returns the bytes/s the operator would exchange with each
// already-placed neighbor if hosted on node: zero for colocated
// neighbors (loopback), the edge rate otherwise.
func crossBytes(t *Topology, o *Operator, node string, placed map[int]string, outRates map[int]float64) float64 {
	var bytes float64
	for _, up := range t.In(o.ID) {
		if peer, ok := placed[up]; ok && peer != node {
			bytes += outRates[up] * t.Op(up).BytesPerRecord
		}
	}
	for _, down := range t.Out(o.ID) {
		if peer, ok := placed[down]; ok && peer != node {
			bytes += outRates[o.ID] * o.BytesPerRecord
		}
	}
	return bytes
}

// score returns the best node for the operator, recording a placement
// Decision with the per-node verdicts.
func (p *rupamPlacer) score(t *Topology, o *Operator, v demandVec, nodes []NodeInfo, placed map[int]string, assigned map[string]*load, exclude map[string]bool, outRates map[int]float64) string {
	d := p.col.NewDecision("placer/rupam", "")
	if d != nil {
		evidence := "closed-form demand"
		if v.learned {
			evidence = "CharDB-learned demand"
		}
		d.Note("%s: cpu %.2f Gcyc/s, net in %.0f out %.0f B/s, state %d B",
			evidence, v.cpu, v.in, v.out, v.state)
	}

	best, bestScore := "", -1.0
	for _, n := range nodes {
		if exclude[n.Name] {
			d.Candidate(o.ID, n.Name, "excluded", "")
			continue
		}
		l := assigned[n.Name]
		if l.stateUse+v.state > n.MemBytes/2 {
			if d != nil {
				d.Candidate(o.ID, n.Name, "no-mem-fit",
					fmt.Sprintf("state %d + assigned %d > budget %d", v.state, l.stateUse, n.MemBytes/2))
			}
			continue
		}
		// Attainable compute rate: the node's residual capacity, capped by
		// what this operator's parallelism can extract from the node's
		// cores. This is the per-core-frequency term.
		attain := n.Capacity() - l.cpu
		if cap := float64(o.Parallelism) * n.FreqGHz; attain > cap {
			attain = cap
		}
		cpuRatio := 2.0
		if v.cpu > 0 {
			cpuRatio = attain / v.cpu
			if cpuRatio > 2 {
				cpuRatio = 2 // a fit is a fit; don't over-reward idle giants
			}
		}
		cross := crossBytes(t, o, n.Name, placed, outRates)
		netRatio := (n.NetBps - l.net - cross) / n.NetBps
		score := cpuRatio
		if netRatio < score {
			score = netRatio
		}
		if d != nil {
			d.Candidate(o.ID, n.Name, "",
				fmt.Sprintf("attain %.2f/%.2f Gcyc/s, NIC headroom %.2f", attain, v.cpu, netRatio))
		}
		if score > bestScore {
			best, bestScore = n.Name, score
		}
	}
	if best == "" {
		// Everything excluded or over-committed: fall back to the first
		// non-excluded node to keep the topology running.
		for _, n := range nodes {
			if !exclude[n.Name] {
				best = n.Name
				d.Note("fallback: every node over-committed")
				break
			}
		}
		if best == "" {
			return ""
		}
	}
	if d != nil {
		d.Node = best
	}
	d.SetWinner(o.ID, "max min(cpu-attain, nic-headroom)", best, false)
	d.Commit()
	return best
}

// charge books the operator's demand onto its chosen node and the edge
// traffic onto both endpoints' NIC budgets.
func (p *rupamPlacer) charge(t *Topology, o *Operator, v demandVec, node string, placed map[int]string, assigned map[string]*load, outRates map[int]float64) {
	l, ok := assigned[node]
	if !ok {
		return
	}
	l.cpu += v.cpu
	l.stateUse += v.state
	for _, up := range t.In(o.ID) {
		if peer, ok := placed[up]; ok && peer != node {
			bytes := outRates[up] * t.Op(up).BytesPerRecord
			l.net += bytes
			if pl, ok := assigned[peer]; ok {
				pl.net += bytes
			}
		}
	}
	for _, down := range t.Out(o.ID) {
		if peer, ok := placed[down]; ok && peer != node {
			bytes := outRates[o.ID] * o.BytesPerRecord
			l.net += bytes
			if pl, ok := assigned[peer]; ok {
				pl.net += bytes
			}
		}
	}
}
