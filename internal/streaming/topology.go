// Package streaming adds the second execution model beside finite batch
// DAGs: long-running operator topologies (source → operator DAG → sink,
// with fan-in and fan-out) executed as micro-batches on the existing
// virtual clock. Inter-operator channels are bounded and carried as
// long-lived netsim flows, so streaming traffic contends with everything
// else on the NICs; credit-based backpressure propagates source-ward
// until the sources themselves throttle. Operator *placement* — not task
// dispatch — is the scheduling decision, behind the Placer interface,
// and operators migrate (drain → state handoff → resume, exactly-once)
// when their host degrades, receives a spot-preemption notice, or a load
// spike outgrows it.
package streaming

import (
	"fmt"
	"sort"
)

// Operator is one vertex of a streaming topology. Sources (no in-edges)
// emit records at RateHz; every other operator consumes records from its
// in-edges and emits Selectivity output records per input record onto
// each of its out-edges (broadcast semantics, so per-path closed forms
// compose multiplicatively).
type Operator struct {
	ID   int
	Name string

	// CyclesPerRecord is the compute demand per record in giga-cycles,
	// so one core at FreqGHz f processes f/CyclesPerRecord records/sec.
	CyclesPerRecord float64
	// BytesPerRecord is the serialized record size on the operator's
	// outgoing edges.
	BytesPerRecord float64
	// Selectivity is output records per input record (1 = pass-through,
	// <1 filter, >1 flat-map). Ignored for sources, whose emission is
	// RateHz.
	Selectivity float64
	// Parallelism caps how many cores the operator instance can use at
	// once on its host node.
	Parallelism int
	// StateBytes is the operator's state size — the migration payload
	// and its memory demand.
	StateBytes int64
	// RateHz is the source emission rate in records/sec; zero for
	// non-sources.
	RateHz float64
}

// Edge connects operator From's output to operator To's input.
type Edge struct {
	From, To int
}

// Topology is an operator DAG. Build one by hand or with GenTopology;
// Validate before running it.
type Topology struct {
	Name  string
	Ops   []*Operator
	Edges []Edge
}

// Op returns the operator with the given ID, or nil.
func (t *Topology) Op(id int) *Operator {
	for _, o := range t.Ops {
		if o.ID == id {
			return o
		}
	}
	return nil
}

// In returns the IDs of operators with an edge into id, in edge order.
func (t *Topology) In(id int) []int {
	var in []int
	for _, e := range t.Edges {
		if e.To == id {
			in = append(in, e.From)
		}
	}
	return in
}

// Out returns the IDs of operators id has an edge to, in edge order.
func (t *Topology) Out(id int) []int {
	var out []int
	for _, e := range t.Edges {
		if e.From == id {
			out = append(out, e.To)
		}
	}
	return out
}

// Sources returns the IDs of operators with no in-edges, ascending.
func (t *Topology) Sources() []int {
	var s []int
	for _, o := range t.Ops {
		if len(t.In(o.ID)) == 0 {
			s = append(s, o.ID)
		}
	}
	sort.Ints(s)
	return s
}

// Sinks returns the IDs of operators with no out-edges, ascending.
func (t *Topology) Sinks() []int {
	var s []int
	for _, o := range t.Ops {
		if len(t.Out(o.ID)) == 0 {
			s = append(s, o.ID)
		}
	}
	sort.Ints(s)
	return s
}

// TopoOrder returns operator IDs in a deterministic topological order
// (Kahn's algorithm with an ascending-ID frontier). It panics on a cycle;
// call Validate first on untrusted topologies.
func (t *Topology) TopoOrder() []int {
	indeg := make(map[int]int, len(t.Ops))
	for _, o := range t.Ops {
		indeg[o.ID] = 0
	}
	for _, e := range t.Edges {
		indeg[e.To]++
	}
	var frontier []int
	for _, o := range t.Ops {
		if indeg[o.ID] == 0 {
			frontier = append(frontier, o.ID)
		}
	}
	sort.Ints(frontier)
	var order []int
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, to := range t.Out(id) {
			indeg[to]--
			if indeg[to] == 0 {
				// Insert keeping the frontier sorted, so equal-depth
				// operators always drain in ID order.
				i := sort.SearchInts(frontier, to)
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = to
			}
		}
	}
	if len(order) != len(t.Ops) {
		panic(fmt.Sprintf("streaming: topology %q has a cycle", t.Name))
	}
	return order
}

// Validate reports the first structural problem with the topology, or nil.
func (t *Topology) Validate() error {
	if len(t.Ops) == 0 {
		return fmt.Errorf("streaming: topology %q has no operators", t.Name)
	}
	seen := make(map[int]bool, len(t.Ops))
	for _, o := range t.Ops {
		switch {
		case seen[o.ID]:
			return fmt.Errorf("streaming: duplicate operator ID %d", o.ID)
		case o.Name == "":
			return fmt.Errorf("streaming: operator %d without a name", o.ID)
		case o.CyclesPerRecord <= 0:
			return fmt.Errorf("streaming: operator %s: non-positive cycles/record", o.Name)
		case o.BytesPerRecord <= 0:
			return fmt.Errorf("streaming: operator %s: non-positive bytes/record", o.Name)
		case o.Parallelism <= 0:
			return fmt.Errorf("streaming: operator %s: non-positive parallelism", o.Name)
		case o.StateBytes < 0:
			return fmt.Errorf("streaming: operator %s: negative state size", o.Name)
		}
		seen[o.ID] = true
	}
	for _, e := range t.Edges {
		if !seen[e.From] || !seen[e.To] {
			return fmt.Errorf("streaming: edge %d→%d names an unknown operator", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("streaming: self-edge on operator %d", e.From)
		}
	}
	dup := make(map[Edge]bool, len(t.Edges))
	for _, e := range t.Edges {
		if dup[e] {
			return fmt.Errorf("streaming: duplicate edge %d→%d", e.From, e.To)
		}
		dup[e] = true
	}
	// Acyclicity via Kahn without panicking.
	indeg := make(map[int]int, len(t.Ops))
	for _, e := range t.Edges {
		indeg[e.To]++
	}
	removed := 0
	var frontier []int
	for _, o := range t.Ops {
		if indeg[o.ID] == 0 {
			frontier = append(frontier, o.ID)
		}
	}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		removed++
		for _, to := range t.Out(id) {
			indeg[to]--
			if indeg[to] == 0 {
				frontier = append(frontier, to)
			}
		}
	}
	if removed != len(t.Ops) {
		return fmt.Errorf("streaming: topology %q has a cycle", t.Name)
	}
	for _, o := range t.Ops {
		src := len(t.In(o.ID)) == 0
		if src && o.RateHz <= 0 {
			return fmt.Errorf("streaming: source %s without a positive rate", o.Name)
		}
		if !src && o.RateHz != 0 {
			return fmt.Errorf("streaming: non-source %s with a source rate", o.Name)
		}
		if !src && o.Selectivity <= 0 {
			return fmt.Errorf("streaming: operator %s: non-positive selectivity", o.Name)
		}
		if src && len(t.Out(o.ID)) == 0 {
			return fmt.Errorf("streaming: source %s is also a sink", o.Name)
		}
	}
	return nil
}

// SteadyRates returns the closed-form steady-state *input* rate of every
// operator (records/sec), propagating source rates through selectivities
// along every path: in(op) = Σ_upstream out(upstream), with out(src) =
// RateHz and out(op) = in(op) × Selectivity. Sources report input rate 0.
func (t *Topology) SteadyRates() map[int]float64 {
	in := make(map[int]float64, len(t.Ops))
	out := make(map[int]float64, len(t.Ops))
	for _, id := range t.TopoOrder() {
		o := t.Op(id)
		if len(t.In(id)) == 0 {
			out[id] = o.RateHz
			in[id] = 0
			continue
		}
		sum := 0.0
		for _, up := range t.In(id) {
			sum += out[up]
		}
		in[id] = sum
		out[id] = sum * o.Selectivity
	}
	return in
}

// SteadyOutRates is SteadyRates for output rates: the records/sec each
// operator pushes onto *each* of its out-edges in steady state.
func (t *Topology) SteadyOutRates() map[int]float64 {
	in := t.SteadyRates()
	out := make(map[int]float64, len(t.Ops))
	for _, o := range t.Ops {
		if len(t.In(o.ID)) == 0 {
			out[o.ID] = o.RateHz
		} else {
			out[o.ID] = in[o.ID] * o.Selectivity
		}
	}
	return out
}

// PropagateEmitted propagates actual source emission counts through the
// DAG's selectivities, returning how many records each operator must have
// consumed in a fully drained run: in(op) = Σ_upstream out(upstream),
// out(op) = in(op) × Selectivity, out(src) = emitted[src]. This is the
// closed form the exactly-once invariant compares against.
func (t *Topology) PropagateEmitted(emitted map[int]float64) map[int]float64 {
	in := make(map[int]float64, len(t.Ops))
	out := make(map[int]float64, len(t.Ops))
	for _, id := range t.TopoOrder() {
		o := t.Op(id)
		if len(t.In(id)) == 0 {
			out[id] = emitted[id]
			continue
		}
		sum := 0.0
		for _, up := range t.In(id) {
			sum += out[up]
		}
		in[id] = sum
		out[id] = sum * o.Selectivity
	}
	return in
}

// Fingerprintable returns a deterministic byte serialization of the
// topology, used by the generation-determinism test and the run
// fingerprint. Two identical topologies serialize identically.
func (t *Topology) Fingerprintable() string {
	s := fmt.Sprintf("topology %q ops=%d edges=%d\n", t.Name, len(t.Ops), len(t.Edges))
	ids := make([]int, 0, len(t.Ops))
	for _, o := range t.Ops {
		ids = append(ids, o.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		o := t.Op(id)
		s += fmt.Sprintf("op %d %s cyc=%.9g bytes=%.9g sel=%.9g par=%d state=%d rate=%.9g\n",
			o.ID, o.Name, o.CyclesPerRecord, o.BytesPerRecord, o.Selectivity,
			o.Parallelism, o.StateBytes, o.RateHz)
	}
	edges := make([]Edge, len(t.Edges))
	copy(edges, t.Edges)
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	for _, e := range edges {
		s += fmt.Sprintf("edge %d→%d\n", e.From, e.To)
	}
	return s
}
