package streaming

// Operator migration: the drain → state-handoff → resume protocol that
// moves one operator between hosts without losing or double-counting a
// record.
//
// Graceful path (spot notice, gray degradation, overload, forced):
//
//  1. pause — every in-channel stops granting emission credit (free()==0),
//     so upstream operators throttle; backpressure propagates source-ward
//     while the wire keeps delivering the already-queued backlog to the
//     old host;
//  2. drain — the operator keeps processing on the old host until its
//     in-queues are empty, so every record it ever consumed is consumed
//     exactly once, in place;
//  3. handoff — the operator's state (StateBytes) ships to the new host
//     as an ordinary netsim flow, contending with everything else;
//  4. rebind — out-channel wires are Redirected to source from the new
//     host (netsim.Redirect on a never-completing flow: remaining bytes
//     preserved, destination and callback carried over); in-channel wires
//     are cancelled and reopen lazily toward the new host;
//  5. resume — in-channels unpause, upstream credit reappears.
//
// Emergency path (host died before or during a drain): the backlog is
// still owned by the channels — records an operator never consumed are
// retained upstream of it by construction — so nothing is lost. The state
// is rehydrated from a deterministic buddy replica (lowest-indexed live
// node) and the drain step is skipped: the queued records simply arrive
// at the new host once the wires re-home. Exactly-once holds because
// consumption only ever happens out of the channel's arrived prefix, and
// a record leaves the queue at most once no matter how many times the
// wires re-home.

import (
	"fmt"
)

// MigrationRecord is the audit row for one completed operator migration.
type MigrationRecord struct {
	Op        int     `json:"op"`
	OpName    string  `json:"op_name"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	Reason    string  `json:"reason"`
	Start     float64 `json:"start"`
	HandoffAt float64 `json:"handoff_at"`
	End       float64 `json:"end"`
	Emergency bool    `json:"emergency"`
}

// migration is one in-flight operator move.
type migration struct {
	op        int
	from, to  string
	reason    string
	start     float64
	handoffAt float64
	emergency bool
	shipping  bool
}

// streamSpanAt forwards to the collector (nil-safe).
func (r *Runtime) streamSpanAt(node, op, phase, detail string, start, end float64) {
	r.col.StreamSpanAt(node, op, phase, detail, start, end)
}

// startMigration begins a graceful migration of the operator to the given
// node ("" lets the placer pick). Returns false when no target exists.
func (r *Runtime) startMigration(opID int, to, reason string, emergency bool) bool {
	if r.migrating[opID] != nil {
		return false
	}
	o := r.topo.Op(opID)
	from := r.opNode[opID]
	if to == "" {
		ex := r.liveExclusions()
		ex[from] = true
		to = r.placer.Pick(r.topo, o, r.nodes, r.opNode, ex)
	}
	if to == "" || to == from || !r.nodeAlive(to) {
		return false
	}
	now := r.eng.Now()
	m := &migration{op: opID, from: from, to: to, reason: reason,
		start: now, emergency: emergency}
	r.migrating[opID] = m
	if !emergency {
		for _, ch := range r.inChans[opID] {
			ch.paused = true
		}
		r.trace("migrating %s (%s): %s -> %s, draining %.0f records",
			o.Name, reason, from, to, r.backlog(opID))
	}
	// Close the operator's current "run" span at the migration boundary.
	if openFrom, ok := r.runSpanFrom[opID]; ok {
		r.streamSpanAt(from, o.Name, "run", "", openFrom, now)
		delete(r.runSpanFrom, opID)
	}
	if emergency {
		r.beginHandoff(m)
	}
	return true
}

// emergency fails the operator over from a dead host: no drain is
// possible, state rehydrates from the buddy replica.
func (r *Runtime) emergency(opID int, reason string) {
	if m := r.migrating[opID]; m != nil {
		// A graceful migration was in flight when the host died: if the
		// state is already shipping it lands on the chosen target; if the
		// drain never finished, convert it to an emergency handoff.
		if !m.shipping {
			m.emergency = true
			m.reason = m.reason + "+" + reason
			r.beginHandoff(m)
		}
		return
	}
	ex := r.liveExclusions()
	to := r.placer.Pick(r.topo, r.topo.Op(opID), r.nodes, r.opNode, ex)
	if to == "" {
		r.violations = append(r.violations, fmt.Sprintf(
			"operator %d stranded: host %s dead and no live target", opID, r.opNode[opID]))
		return
	}
	r.startMigration(opID, to, reason, true)
}

// backlog sums the operator's in-channel queues.
func (r *Runtime) backlog(opID int) float64 {
	b := 0.0
	for _, ch := range r.inChans[opID] {
		b += ch.q.count
	}
	return b
}

// advanceMigrations moves draining migrations whose backlog is gone into
// the handoff phase.
func (r *Runtime) advanceMigrations() {
	// Topological order keeps the scan deterministic despite the map.
	for _, id := range r.topo.TopoOrder() {
		m := r.migrating[id]
		if m == nil || m.shipping || m.emergency {
			continue
		}
		if !r.nodeAlive(m.from) {
			m.emergency = true
			m.reason += "+host-dead"
			r.beginHandoff(m)
			continue
		}
		if r.backlog(id) <= recEps {
			r.beginHandoff(m)
		}
	}
}

// beginHandoff ships the operator's state to the target host. For a
// graceful move the source is the old host; for an emergency the buddy
// replica (lowest-indexed live node, the target itself as a last resort —
// loopback rehydration from its own replica).
func (r *Runtime) beginHandoff(m *migration) {
	m.shipping = true
	m.handoffAt = r.eng.Now()
	o := r.topo.Op(m.op)
	src := m.from
	if m.emergency || !r.nodeAlive(src) {
		src = m.to // fall back to loopback rehydration
		for _, n := range r.clu.Nodes {
			name := n.Spec.Name
			if r.nodeAlive(name) && name != m.to {
				src = name
				break
			}
		}
	}
	bytes := float64(o.StateBytes)
	if bytes <= 0 {
		bytes = 1
	}
	op := m.op
	r.clu.Net.Start(src, m.to, bytes, func() { r.finishMigration(op) })
}

// finishMigration rebinds the operator to its new host and resumes flow.
func (r *Runtime) finishMigration(opID int) {
	m := r.migrating[opID]
	if m == nil {
		return
	}
	now := r.eng.Now()
	o := r.topo.Op(opID)
	r.opNode[opID] = m.to

	// Out-channel wires re-home by Redirect: the flow's remaining budget,
	// destination and callback survive; only the source end moves.
	for _, ch := range r.outChans[opID] {
		if ch.wire != nil && !ch.wire.Done() {
			if nf := r.clu.Net.Redirect(ch.wire, m.to); nf != nil {
				ch.wire = nf
				ch.lastRemaining = nf.Remaining()
			} else {
				ch.wire = nil
			}
		}
	}
	// In-channel wires point at the old host; cancel them and let the
	// wire manager reopen them toward the new host next tick.
	for _, ch := range r.inChans[opID] {
		if ch.wire != nil && !ch.wire.Done() {
			r.clu.Net.Cancel(ch.wire)
			ch.wire = nil
		}
		ch.paused = false
	}

	delete(r.migrating, opID)
	r.lastMigration[opID] = now
	r.runSpanFrom[opID] = now
	rec := MigrationRecord{
		Op: opID, OpName: o.Name, From: m.from, To: m.to, Reason: m.reason,
		Start: m.start, HandoffAt: m.handoffAt, End: now, Emergency: m.emergency,
	}
	r.records = append(r.records, rec)

	if !m.emergency {
		r.streamSpanAt(m.from, o.Name, "drain", m.reason, m.start, m.handoffAt)
	}
	r.streamSpanAt(m.to, o.Name, "handoff",
		fmt.Sprintf("%d state bytes from %s", o.StateBytes, m.from), m.handoffAt, now)
	r.col.OperatorMigrated(o.Name, m.from, m.to, m.reason, now-m.start)
	r.trace("migrated %s: %s -> %s in %.2fs (%s)", o.Name, m.from, m.to, now-m.start, m.reason)
}
