package streaming

import (
	"fmt"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/tracing"
)

// NodeInfo is the static capability snapshot a placer sees — the
// left-hand (static) columns of the paper's Table I. Placers never touch
// live cluster state; the runtime re-invokes them with fresh exclusions
// when nodes die.
type NodeInfo struct {
	Name     string
	Cores    int
	FreqGHz  float64
	MemBytes int64
	NetBps   float64
	GPUs     int
}

// Capacity returns the node's aggregate compute rate in giga-cycles/sec.
func (n NodeInfo) Capacity() float64 { return float64(n.Cores) * n.FreqGHz }

// SnapshotNodes builds placer inputs from a cluster, in cluster order.
func SnapshotNodes(clu *cluster.Cluster) []NodeInfo {
	infos := make([]NodeInfo, 0, len(clu.Nodes))
	for _, n := range clu.Nodes {
		infos = append(infos, NodeInfo{
			Name:     n.Spec.Name,
			Cores:    n.Spec.Cores,
			FreqGHz:  n.Spec.FreqGHz,
			MemBytes: n.Spec.MemBytes,
			NetBps:   n.Spec.NetBandwidth,
			GPUs:     n.Spec.GPUs,
		})
	}
	return infos
}

// Placer decides where operators run. Place assigns every operator of a
// topology a node up front; Pick chooses a migration target for one
// operator, honoring the current placement and a set of excluded
// (doomed or degraded) nodes. Pick returns "" when no candidate exists.
type Placer interface {
	Name() string
	Place(t *Topology, nodes []NodeInfo) map[int]string
	Pick(t *Topology, op *Operator, nodes []NodeInfo, current map[int]string, exclude map[string]bool) string
}

// PlacerNames lists the valid -placer values, in documentation order.
var PlacerNames = []string{"default", "resource", "rupam"}

// NewPlacer builds a placer by name. db is the CharDB whose learned
// per-operator demand the rupam placer consults (it may be empty or nil —
// the placer falls back to closed-form demand); col records a placement
// Decision per operator and may be nil.
func NewPlacer(name string, db *core.CharDB, col *tracing.Collector) (Placer, error) {
	switch name {
	case "default":
		return &defaultPlacer{col: col}, nil
	case "resource":
		return &resourcePlacer{col: col}, nil
	case "rupam":
		return &rupamPlacer{db: db, col: col}, nil
	}
	return nil, fmt.Errorf("streaming: unknown placer %q (valid: %v)", name, PlacerNames)
}

// ---- default: locality round-robin -----------------------------------------

// defaultPlacer is the capability-blind baseline: operators land on nodes
// round-robin in cluster order, the streaming analogue of slot-based
// default scheduling — every node is assumed equal.
type defaultPlacer struct {
	col  *tracing.Collector
	next int
}

func (p *defaultPlacer) Name() string { return "default" }

func (p *defaultPlacer) Place(t *Topology, nodes []NodeInfo) map[int]string {
	placement := make(map[int]string, len(t.Ops))
	for _, id := range t.TopoOrder() {
		node := nodes[p.next%len(nodes)].Name
		p.next++
		placement[id] = node
		d := p.col.NewDecision("placer/default", node)
		d.Candidate(id, node, "", "round-robin slot")
		d.SetWinner(id, "round-robin", node, false)
		d.Commit()
	}
	return placement
}

func (p *defaultPlacer) Pick(t *Topology, op *Operator, nodes []NodeInfo, current map[int]string, exclude map[string]bool) string {
	for range nodes {
		node := nodes[p.next%len(nodes)].Name
		p.next++
		if node != current[op.ID] && !exclude[node] {
			d := p.col.NewDecision("placer/default", node)
			d.Candidate(op.ID, node, "", "round-robin slot")
			d.SetWinner(op.ID, "round-robin", node, false)
			d.Commit()
			return node
		}
	}
	return ""
}

// ---- resource-aware: Storm-style greedy on static capability ---------------

// resourcePlacer reproduces the Storm resource-aware strategy: operators
// sorted by closed-form CPU demand, each greedily assigned to the node
// with the most residual aggregate capacity (Storm's generic
// resource-aware strategy favors the node with the most available
// resources). It sees node capability — but only the aggregate
// Gcycles/s: it is blind to per-core frequency (an operator's
// parallelism cap), NIC asymmetry and learned demand, which is exactly
// the gap the RUPAM placer closes.
type resourcePlacer struct {
	col *tracing.Collector
}

func (p *resourcePlacer) Name() string { return "resource" }

// cpuDemand returns each operator's closed-form steady-state CPU demand
// in Gcycles/s (sources excluded: emission is arrival, not compute).
func cpuDemand(t *Topology) map[int]float64 {
	rates := t.SteadyRates()
	d := make(map[int]float64, len(t.Ops))
	for _, o := range t.Ops {
		d[o.ID] = rates[o.ID] * o.CyclesPerRecord
	}
	return d
}

// byDemandDesc returns operator IDs sorted by descending demand, ID
// ascending on ties — the deterministic best-fit-decreasing order.
func byDemandDesc(t *Topology, demand map[int]float64) []int {
	ids := make([]int, 0, len(t.Ops))
	for _, o := range t.Ops {
		ids = append(ids, o.ID)
	}
	sort.Slice(ids, func(a, b int) bool {
		if demand[ids[a]] != demand[ids[b]] {
			return demand[ids[a]] > demand[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

func (p *resourcePlacer) Place(t *Topology, nodes []NodeInfo) map[int]string {
	demand := cpuDemand(t)
	assigned := make(map[string]float64, len(nodes))
	placement := make(map[int]string, len(t.Ops))
	for _, id := range byDemandDesc(t, demand) {
		placement[id] = p.mostResidual(id, demand[id], nodes, assigned, nil)
		assigned[placement[id]] += demand[id]
	}
	return placement
}

func (p *resourcePlacer) Pick(t *Topology, op *Operator, nodes []NodeInfo, current map[int]string, exclude map[string]bool) string {
	demand := cpuDemand(t)
	assigned := make(map[string]float64, len(nodes))
	for id, node := range current {
		if id != op.ID {
			assigned[node] += demand[id]
		}
	}
	ex := make(map[string]bool, len(exclude)+1)
	for n := range exclude {
		ex[n] = true
	}
	ex[current[op.ID]] = true
	return p.mostResidual(op.ID, demand[op.ID], nodes, assigned, ex)
}

// mostResidual picks the node with the most residual aggregate capacity —
// the greedy spread that keeps the biggest machines absorbing the hottest
// operators. Ties break on node order.
func (p *resourcePlacer) mostResidual(opID int, demand float64, nodes []NodeInfo, assigned map[string]float64, exclude map[string]bool) string {
	d := p.col.NewDecision("placer/resource", "")
	chosen, bestResidual := "", -1.0
	for _, n := range nodes {
		if exclude[n.Name] {
			d.Candidate(opID, n.Name, "excluded", "")
			continue
		}
		residual := n.Capacity() - assigned[n.Name]
		if d != nil {
			detail := fmt.Sprintf("residual %.1f Gcyc/s vs demand %.1f", residual, demand)
			if residual >= demand {
				d.Candidate(opID, n.Name, "", detail)
			} else {
				d.Candidate(opID, n.Name, "no-cpu-fit", detail)
			}
		}
		if residual > bestResidual {
			chosen, bestResidual = n.Name, residual
		}
	}
	heuristic := "most-residual static capacity"
	if bestResidual < demand {
		heuristic = "least-overloaded (nothing fits)"
	}
	if chosen == "" {
		return ""
	}
	if d != nil {
		d.Node = chosen
	}
	d.SetWinner(opID, heuristic, chosen, false)
	d.Commit()
	return chosen
}
