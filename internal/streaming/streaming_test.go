package streaming

import (
	"math"
	"testing"

	"rupam/internal/faults"
)

// shortCfg is a fast fault-free run used by most tests.
func shortCfg(seed uint64, placer string) Config {
	return Config{
		Seed:    seed,
		Placer:  placer,
		Horizon: 60,
		Warmup:  10,
	}
}

// TestFaultFreeRunDrainsClean is the satellite check: in a fault-free
// run the sink's intake equals the closed-form selectivity product along
// every path, records conserve per channel, and the topology drains.
func TestFaultFreeRunDrainsClean(t *testing.T) {
	res := Run(shortCfg(1, "rupam"))
	if !res.Drained {
		t.Fatalf("run did not drain; violations: %v", res.Violations)
	}
	if v := CheckInvariants(res); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}

	// Sources must never have throttled: emission == RateHz × Horizon.
	for _, id := range res.Topo.Sources() {
		want := res.Topo.Op(id).RateHz * res.Horizon
		got := res.SourceEmitted[id]
		if math.Abs(got-want) > 0.01*want {
			t.Fatalf("source %d throttled in a fault-free run: emitted %v, offered %v", id, got, want)
		}
	}

	// Sink intake equals the closed-form product of selectivities applied
	// to the actual emissions (exact, not rate-approximate).
	expect := res.Topo.PropagateEmitted(res.SourceEmitted)
	for _, o := range res.Ops {
		if len(res.Topo.Out(o.ID)) != 0 || len(res.Topo.In(o.ID)) == 0 {
			continue
		}
		if math.Abs(o.Consumed-expect[o.ID]) > relErr*expect[o.ID] {
			t.Fatalf("sink %d consumed %v, closed form implies %v", o.ID, o.Consumed, expect[o.ID])
		}
	}

	// Sustained throughput approaches the offered closed-form rate.
	if res.ThroughputHz < 0.9*res.OfferedHz {
		t.Fatalf("throughput %.1f Hz below 90%% of offered %.1f Hz in a fault-free run",
			res.ThroughputHz, res.OfferedHz)
	}
	if res.P99Ms <= 0 || res.P50Ms > res.P99Ms {
		t.Fatalf("implausible latency percentiles: p50=%v p99=%v", res.P50Ms, res.P99Ms)
	}
}

// TestRunBitIdentical pins run-level determinism: identical seed and
// config produce identical fingerprints, including under faults.
func TestRunBitIdentical(t *testing.T) {
	mk := func() Config {
		cfg := shortCfg(7, "rupam")
		cfg.Faults = faults.RandomSchedule(7, []string{"thor1", "hulk1"}, faults.GenConfig{
			Horizon:     50,
			CPUDegrades: 1,
			LoadSpikes:  1,
		})
		cfg.ForceMigrateAt = 25
		return cfg
	}
	a, b := Run(mk()), Run(mk())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed, different outcomes: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	c := Run(shortCfg(8, "rupam"))
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// TestForcedMigrationExactlyOnce forces a migration mid-run and checks
// the exactly-once battery still holds.
func TestForcedMigrationExactlyOnce(t *testing.T) {
	for _, placer := range PlacerNames {
		cfg := shortCfg(3, placer)
		cfg.ForceMigrateAt = 20
		res := Run(cfg)
		if len(res.Migrations) == 0 {
			t.Fatalf("%s: no migration despite ForceMigrateAt", placer)
		}
		if v := CheckInvariants(res); len(v) != 0 {
			t.Fatalf("%s: violations after forced migration: %v", placer, v)
		}
	}
}

// TestBackpressureThrottlesSources overloads the topology (every node is
// slower than the offered load needs) and checks the credit chain: queues
// never exceed capacity and the sources themselves slowed down.
func TestBackpressureThrottlesSources(t *testing.T) {
	cfg := shortCfg(5, "rupam")
	cfg.Topo = TopoConfig{
		RateMin: 20000, RateMax: 30000, // beyond what low-parallelism ops sustain
		CyclesMin: 2e-3, CyclesMax: 4e-3,
		SelMin: 0.9, SelMax: 1.1,
	}
	cfg.BacklogSeconds = 0.5
	cfg.DrainGrace = 900
	res := Run(cfg)
	if v := CheckInvariants(res); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	throttled := false
	for _, id := range res.Topo.Sources() {
		offered := res.Topo.Op(id).RateHz * res.Horizon
		if res.SourceEmitted[id] < 0.9*offered {
			throttled = true
		}
	}
	if !throttled {
		t.Fatal("overloaded run never backpressured the sources")
	}
	for _, c := range res.Chans {
		if c.MaxQueue > c.Capacity*(1+relErr)+recEps {
			t.Fatalf("chan %d->%d overflowed: %v > %v", c.From, c.To, c.MaxQueue, c.Capacity)
		}
	}
}

// TestSpotPreemptionMigratesAndConserves drives the spot-notice path: the
// doomed node's operators evacuate gracefully and nothing is lost.
func TestSpotPreemptionMigratesAndConserves(t *testing.T) {
	cfg := shortCfg(11, "rupam")
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		{Kind: faults.SpotPreempt, Node: "thor1", At: 20, Duration: 5},
	}}
	res := Run(cfg)
	if v := CheckInvariants(res); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	for _, o := range res.Ops {
		if o.Node == "thor1" {
			t.Fatalf("operator %d still on the preempted node", o.ID)
		}
	}
}

// TestLoadSpikeRaisesOfferedLoad checks the LoadSpike hook: with a spike
// window the sources emit more than their base offer.
func TestLoadSpikeRaisesOfferedLoad(t *testing.T) {
	cfg := shortCfg(13, "rupam")
	cfg.Topo = TopoConfig{RateMin: 500, RateMax: 800} // leave headroom for the spike
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		{Kind: faults.LoadSpike, At: 20, Duration: 10, Factor: 2.0},
	}}
	res := Run(cfg)
	if res.LoadSpikes != 1 {
		t.Fatalf("injector applied %d load spikes, want 1", res.LoadSpikes)
	}
	if v := CheckInvariants(res); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	for _, id := range res.Topo.Sources() {
		base := res.Topo.Op(id).RateHz * res.Horizon
		// 10 s at ×2 adds one extra offered-load × 10 s.
		want := base + res.Topo.Op(id).RateHz*10
		if math.Abs(res.SourceEmitted[id]-want) > 0.05*want {
			t.Fatalf("source %d emitted %v under a ×2/10s spike, want ≈%v (base %v)",
				id, res.SourceEmitted[id], want, base)
		}
	}
}

// TestNodeCrashEmergencyFailover kills a host mid-run with no warning:
// operators must fail over and exactly-once must still hold.
func TestNodeCrashEmergencyFailover(t *testing.T) {
	cfg := shortCfg(17, "rupam")
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NodeCrash, Node: "thor2", At: 25}, // permanent
	}}
	res := Run(cfg)
	if v := CheckInvariants(res); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	for _, o := range res.Ops {
		if o.Node == "thor2" {
			t.Fatalf("operator %d still homed on the crashed node", o.ID)
		}
	}
}
