package streaming

import (
	"fmt"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/simx"
	"rupam/internal/task"
	"rupam/internal/tracing"
)

// Tuning constants of the streaming runtime.
const (
	// grayFreqFrac: a host whose effective per-core speed drops below
	// this fraction of spec is considered gray-degraded.
	grayFreqFrac = 0.7
	// grayBacklogFrac / grayTicks: a gray-degraded operator migrates when
	// its backlog exceeds this fraction of its input capacity for this
	// many consecutive ticks.
	grayBacklogFrac = 0.5
	grayTicks       = 3
	// spikeBacklogFrac / spikeTicks: even on a healthy host, a backlog
	// pinned near capacity this long means the operator is outmatched —
	// a load spike outgrew the node — and it migrates.
	spikeBacklogFrac = 0.9
	spikeTicks       = 12
	// migrationCooldown is the minimum spacing between migrations of one
	// operator, so marginal placements do not thrash.
	migrationCooldown = 15.0
	// charDBInterval is how often observed per-operator demand is fed
	// back into the CharDB.
	charDBInterval = 5.0
	// execHeapBytes sizes the bookkeeping executor each node gets so the
	// fault injector (crash, preempt, flake, mem-pressure) has a target.
	execHeapBytes = int64(1) << 30
)

// Config parameterizes one streaming run. The zero value plus a Seed is
// usable; withDefaults fills the rest.
type Config struct {
	// Seed drives topology generation and is the identity of the run.
	Seed uint64
	// Placer names the placement policy (see PlacerNames). Default "rupam".
	Placer string
	// Topo bounds the generated topology.
	Topo TopoConfig
	// Horizon is how long sources emit, in virtual seconds (default 120).
	Horizon float64
	// Warmup excludes the initial transient from sustained-throughput and
	// latency metrics (default 20).
	Warmup float64
	// BatchInterval is the micro-batch tick, in seconds (default 0.25).
	BatchInterval float64
	// BacklogSeconds sizes each channel to this many seconds of its
	// closed-form steady rate (default 2, floor 100 records).
	BacklogSeconds float64
	// DrainGrace bounds how long after Horizon the topology may take to
	// drain before the run is declared stuck (default 180).
	DrainGrace float64
	// SLOMs is the end-to-end record-latency objective in milliseconds
	// (default 2000); SLOAttain reports the fraction of sink records
	// under it.
	SLOMs float64
	// Faults, if non-nil, is installed on the run's injector.
	Faults *faults.Schedule
	// ForceMigrateAt, if positive, forces one migration of the most
	// backlogged operator at that virtual time — the soak harness uses it
	// to guarantee the migration path is exercised every seed.
	ForceMigrateAt float64
	// CharDB, if non-nil, is the shared characteristics store the rupam
	// placer reads and the runtime feeds; nil gets a fresh private one.
	CharDB *core.CharDB
	// Collector, if non-nil, records placement decisions, operator phase
	// spans and fault windows.
	Collector *tracing.Collector
	// Trace, if non-nil, receives a line per notable runtime event.
	Trace func(string)
}

func (c Config) withDefaults() Config {
	if c.Placer == "" {
		c.Placer = "rupam"
	}
	if c.Horizon <= 0 {
		c.Horizon = 120
	}
	if c.Warmup <= 0 || c.Warmup >= c.Horizon {
		c.Warmup = c.Horizon / 6
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 0.25
	}
	if c.BacklogSeconds <= 0 {
		c.BacklogSeconds = 2
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 180
	}
	if c.SLOMs <= 0 {
		c.SLOMs = 2000
	}
	return c
}

// Runtime executes one streaming topology on one cluster. It is built by
// Run; tests poke at intermediate state through small accessors.
type Runtime struct {
	cfg   Config
	eng   *simx.Engine
	clu   *cluster.Cluster
	execs map[string]*executor.Executor
	cache *executor.CacheTracker
	inj   *faults.Injector
	col   *tracing.Collector
	db    *core.CharDB

	topo   *Topology
	placer Placer
	nodes  []NodeInfo

	opNode   map[int]string
	chans    []*channel // topology edge order
	inChans  map[int][]*channel
	outChans map[int][]*channel

	spikeMult float64

	sourceEmitted map[int]float64
	acc           map[int]*opAccum

	migrating     map[int]*migration
	lastMigration map[int]float64
	overTicks     map[int]int
	records       []MigrationRecord
	forcedDone    bool

	latSamples  []latSample
	sinkWindow  float64 // sink records consumed in (Warmup, Horizon]
	sloHit      float64 // of those, records within the SLO
	sloTotal    float64
	runSpanFrom map[int]float64 // open "run" span start per op

	tickN          int
	sourcesStopped bool
	drained        bool
	quiesceAt      float64
	violations     []string
}

// opAccum accumulates one operator's lifetime and CharDB-window stats.
type opAccum struct {
	consumed float64 // records popped from in-channels (== processed)
	emitted  float64 // records pushed across all out-channels
	cycles   float64 // giga-cycles spent
	maxBack  float64 // peak summed in-channel backlog

	winCycles, winConsumed, winInBytes, winOutBytes float64
}

type latSample struct {
	lat, weight float64
}

// Run executes the configured streaming run to quiescence and returns
// its Result. Everything is derived from the seed and the config, so the
// same inputs reproduce a bit-identical Result.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	eng := simx.NewEngine()
	clu := cluster.NewHydra(cluster.New(eng))

	r := &Runtime{
		cfg:           cfg,
		eng:           eng,
		clu:           clu,
		execs:         make(map[string]*executor.Executor),
		cache:         executor.NewCacheTracker(),
		col:           cfg.Collector,
		db:            cfg.CharDB,
		opNode:        make(map[int]string),
		inChans:       make(map[int][]*channel),
		outChans:      make(map[int][]*channel),
		spikeMult:     1,
		sourceEmitted: make(map[int]float64),
		acc:           make(map[int]*opAccum),
		migrating:     make(map[int]*migration),
		lastMigration: make(map[int]float64),
		overTicks:     make(map[int]int),
		runSpanFrom:   make(map[int]float64),
	}
	if r.db == nil {
		r.db = core.NewCharDB()
	}
	r.col.Bind(eng)
	for _, n := range clu.Nodes {
		r.col.RegisterNode(n.Spec.Name, n.Spec.Cores)
		executor.New(eng, clu, n, r.cache, r.execs, executor.Config{
			HeapBytes: execHeapBytes,
			Seed:      cfg.Seed,
			Tracer:    r.col,
		})
	}

	r.topo = GenTopology(cfg.Seed, cfg.Topo)
	r.nodes = SnapshotNodes(clu)
	placer, err := NewPlacer(cfg.Placer, r.db, r.col)
	if err != nil {
		panic(err)
	}
	r.placer = placer

	// Initial placement.
	r.opNode = placer.Place(r.topo, r.nodes)
	for _, id := range r.topo.TopoOrder() {
		r.acc[id] = &opAccum{}
		r.runSpanFrom[id] = 0
		if r.opNode[id] == "" {
			panic(fmt.Sprintf("streaming: placer %s left operator %d unplaced", placer.Name(), id))
		}
	}

	// Channels, sized to BacklogSeconds of the closed-form steady rate.
	outRates := r.topo.SteadyOutRates()
	for _, e := range r.topo.Edges {
		capRecords := cfg.BacklogSeconds * outRates[e.From]
		if capRecords < 100 {
			capRecords = 100
		}
		ch := &channel{from: e.From, to: e.To, capacity: capRecords}
		r.chans = append(r.chans, ch)
		r.inChans[e.To] = append(r.inChans[e.To], ch)
		r.outChans[e.From] = append(r.outChans[e.From], ch)
	}

	// Fault wiring: the injector targets the bookkeeping executors; the
	// streaming hooks route notices, kills and spikes into the runtime.
	r.inj = faults.NewInjector(eng, clu, r.execs)
	r.inj.Collector = r.col
	r.inj.Trace = cfg.Trace
	r.inj.OnLoadSpike = func(mult float64) {
		r.spikeMult = mult
		r.trace("load multiplier now ×%.2f", mult)
	}
	r.inj.OnSpotNotice = func(node string, grace float64) {
		r.evacuate(node, "spot-notice")
	}
	r.inj.OnSpotKill = func(node string) {
		// Emergency failovers for anything the grace window didn't move;
		// the per-tick liveness sweep would also catch these a beat later.
		r.failover(node, "spot-kill")
	}
	if cfg.Faults != nil {
		r.inj.Install(cfg.Faults)
	}

	eng.Schedule(cfg.BatchInterval, r.tick)
	eng.Run()

	return r.result()
}

func (r *Runtime) trace(format string, args ...interface{}) {
	if r.cfg.Trace != nil {
		r.cfg.Trace(fmt.Sprintf("[%8.2fs] %s", r.eng.Now(), fmt.Sprintf(format, args...)))
	}
}

// nodeAlive reports whether the node can currently host operators.
func (r *Runtime) nodeAlive(name string) bool {
	ex, ok := r.execs[name]
	return ok && !ex.FailStopped()
}

// liveExclusions returns the dead-node set for placer Pick calls.
func (r *Runtime) liveExclusions() map[string]bool {
	ex := make(map[string]bool)
	for _, n := range r.clu.Nodes {
		if !r.nodeAlive(n.Spec.Name) {
			ex[n.Spec.Name] = true
		}
	}
	return ex
}

// tick is the micro-batch loop body, every BatchInterval of virtual time.
func (r *Runtime) tick() {
	now := r.eng.Now()
	dt := r.cfg.BatchInterval

	// (1) Fold wire progress into arrivals.
	r.clu.Net.Sync()
	for _, ch := range r.chans {
		ch.settleWire(r.topo.Op(ch.from).BytesPerRecord)
	}

	// (2) Liveness: operators on dead hosts fail over.
	for _, id := range r.topo.TopoOrder() {
		if !r.nodeAlive(r.opNode[id]) {
			r.emergency(id, "host-dead")
		}
	}

	// (3) Migration progress: draining operators whose backlog is gone
	// hand their state off.
	r.advanceMigrations()

	// (4) Process: water-fill each node's cycle budget over its resident
	// operators, bounded per operator by parallelism × per-core speed,
	// available input, and downstream credit.
	for _, node := range r.clu.Nodes {
		r.processNode(node, now, dt)
	}

	// (5) Sources emit, throttled by downstream credit — the terminal
	// stage of backpressure.
	if !r.sourcesStopped {
		for _, id := range r.topo.Sources() {
			r.emitSource(id, now, dt)
		}
	}

	// (6) Reconcile wires with queue state and current placement.
	r.manageWires()

	// (7) Feed observed demand to the CharDB on its cadence.
	r.tickN++
	ticksPerFeed := int(charDBInterval/dt + 0.5)
	if ticksPerFeed < 1 {
		ticksPerFeed = 1
	}
	if r.tickN%ticksPerFeed == 0 {
		r.feedCharDB(now)
	}

	// (8) Migration triggers.
	r.triggerMigrations(now)

	// (9) Book backlog stats.
	for _, id := range r.topo.TopoOrder() {
		back := 0.0
		for _, ch := range r.inChans[id] {
			back += ch.q.count
		}
		if a := r.acc[id]; back > a.maxBack {
			a.maxBack = back
		}
	}

	// (10) Horizon and quiescence.
	if now >= r.cfg.Horizon && !r.sourcesStopped {
		r.sourcesStopped = true
		r.trace("horizon: sources stopped")
	}
	if r.sourcesStopped && r.quiesced() {
		r.finish(now, true)
		return
	}
	if r.sourcesStopped && now >= r.cfg.Horizon+r.cfg.DrainGrace {
		r.violations = append(r.violations,
			fmt.Sprintf("backlog failed to drain within %.0fs of the horizon", r.cfg.DrainGrace))
		r.finish(now, false)
		return
	}
	r.eng.Schedule(dt, r.tick)
}

// quiesced reports whether every channel is empty and no migration is in
// flight.
func (r *Runtime) quiesced() bool {
	if len(r.migrating) > 0 {
		return false
	}
	for _, ch := range r.chans {
		if ch.q.count > 0 {
			return false
		}
	}
	return true
}

// finish closes wires and spans and stamps the quiesce time.
func (r *Runtime) finish(now float64, drained bool) {
	r.drained = drained
	r.quiesceAt = now
	for _, ch := range r.chans {
		if ch.wire != nil && !ch.wire.Done() {
			r.clu.Net.Cancel(ch.wire)
		}
		ch.wire = nil
	}
	for _, id := range r.topo.TopoOrder() {
		if from, ok := r.runSpanFrom[id]; ok {
			r.streamSpanAt(r.opNode[id], r.topo.Op(id).Name, "run", "", from, now)
		}
	}
	r.feedCharDB(now)
	r.db.Flush()
}

// processNode water-fills the node's cycle budget for this tick across
// its resident operators and executes the grants.
func (r *Runtime) processNode(node *cluster.Node, now, dt float64) {
	name := node.Spec.Name
	if !r.nodeAlive(name) {
		return
	}
	type item struct {
		id     int
		want   float64 // records processable this tick
		demand float64 // cycles wanted
		cap    float64 // cycles attainable (parallelism × per-core speed)
	}
	var items []item
	for _, id := range r.topo.TopoOrder() {
		if r.opNode[id] != name {
			continue
		}
		o := r.topo.Op(id)
		if len(r.topo.In(id)) == 0 {
			continue // sources emit in their own phase
		}
		avail := 0.0
		for _, ch := range r.inChans[id] {
			avail += ch.arrived
		}
		if avail <= 0 {
			continue
		}
		space := avail
		if outs := r.outChans[id]; len(outs) > 0 {
			for _, ch := range outs {
				if s := ch.free() / o.Selectivity; s < space {
					space = s
				}
			}
		}
		want := avail
		if space < want {
			want = space
		}
		if want <= 0 {
			continue
		}
		perCap := float64(o.Parallelism) * node.CPU.PerClaimCap() * dt
		demand := want * o.CyclesPerRecord
		if demand > perCap {
			demand = perCap
		}
		items = append(items, item{id: id, want: want, demand: demand, cap: perCap})
	}
	if len(items) == 0 {
		return
	}
	// Exact water-filling of capped demands: ascending by demand, each
	// item takes min(demand, equal share of what remains).
	sort.Slice(items, func(a, b int) bool {
		if items[a].demand != items[b].demand {
			return items[a].demand < items[b].demand
		}
		return items[a].id < items[b].id
	})
	budget := node.CPU.Capacity() * dt
	grants := make(map[int]float64, len(items))
	for i, it := range items {
		share := budget / float64(len(items)-i)
		g := it.demand
		if g > share {
			g = share
		}
		grants[it.id] = g
		budget -= g
	}
	// Execute grants in deterministic operator order.
	ids := make([]int, 0, len(items))
	for _, it := range items {
		ids = append(ids, it.id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r.processOp(id, grants[id], now)
	}
}

// processOp consumes up to grant giga-cycles worth of records from the
// operator's in-channels and emits the results downstream (or samples
// latency, for sinks).
func (r *Runtime) processOp(id int, grant float64, now float64) {
	o := r.topo.Op(id)
	a := r.acc[id]
	n := grant / o.CyclesPerRecord
	avail := 0.0
	for _, ch := range r.inChans[id] {
		avail += ch.arrived
	}
	if n > avail {
		n = avail
	}
	if n <= 0 {
		return
	}
	isSink := len(r.topo.Out(id)) == 0
	// Pop proportionally across in-channels so a slow upstream cannot be
	// starved by a fast one.
	for _, ch := range r.inChans[id] {
		share := n * (ch.arrived / avail)
		for _, c := range ch.consume(share) {
			a.consumed += c.count
			a.cycles += c.count * o.CyclesPerRecord
			a.winConsumed += c.count
			a.winCycles += c.count * o.CyclesPerRecord
			a.winInBytes += c.count * r.topo.Op(ch.from).BytesPerRecord
			if isSink {
				lat := now - c.born
				r.latSamples = append(r.latSamples, latSample{lat: lat, weight: c.count})
				if now > r.cfg.Warmup && now <= r.cfg.Horizon {
					r.sinkWindow += c.count
				}
				r.sloTotal += c.count
				if lat*1000 <= r.cfg.SLOMs {
					r.sloHit += c.count
				}
			} else {
				outN := c.count * o.Selectivity
				for _, out := range r.outChans[id] {
					out.push(outN, c.born)
					a.emitted += outN
					a.winOutBytes += outN * o.BytesPerRecord
				}
			}
		}
	}
}

// emitSource emits one tick of source records, bounded by the credit of
// every out-channel — when downstream is full, the source throttles.
func (r *Runtime) emitSource(id int, now, dt float64) {
	o := r.topo.Op(id)
	if !r.nodeAlive(r.opNode[id]) {
		return // a dead host ingests nothing until the source fails over
	}
	n := o.RateHz * r.spikeMult * dt
	for _, ch := range r.outChans[id] {
		if f := ch.free(); f < n {
			n = f
		}
	}
	if n <= 0 {
		return
	}
	a := r.acc[id]
	for _, ch := range r.outChans[id] {
		ch.push(n, now)
		a.emitted += n
		a.winOutBytes += n * o.BytesPerRecord
	}
	r.sourceEmitted[id] += n
}

// manageWires opens, closes, and re-homes the long-lived channel flows to
// match queue state and the current placement. A colocated channel needs
// no wire: arrival is a memory copy.
func (r *Runtime) manageWires() {
	for _, ch := range r.chans {
		src, dst := r.opNode[ch.from], r.opNode[ch.to]
		if src == dst {
			if ch.wire != nil && !ch.wire.Done() {
				r.clu.Net.Cancel(ch.wire)
			}
			ch.wire = nil
			ch.arrived = ch.q.count
			ch.shipCredit = 0
			continue
		}
		stale := ch.wire != nil && !ch.wire.Done() &&
			(ch.wire.Src() != src || ch.wire.Dst() != dst)
		if stale {
			r.clu.Net.Cancel(ch.wire)
			ch.wire = nil
		}
		if ch.wire != nil && ch.wire.Done() {
			ch.wire = nil
		}
		switch {
		case ch.unarrived() > recEps && ch.wire == nil:
			if r.nodeAlive(src) && r.nodeAlive(dst) {
				ch.wire = r.clu.Net.Start(src, dst, wireBudget, nil)
				ch.lastRemaining = wireBudget
			}
		case ch.unarrived() <= recEps && ch.wire != nil:
			r.clu.Net.Cancel(ch.wire)
			ch.wire = nil
		}
	}
}

// feedCharDB writes each operator's observed demand vector for the
// closing window into the CharDB under its stream key: ComputeTime
// carries Gcycles/s, ShuffleRead/Write carry bytes/s, PeakMemory the
// state size. This is the evidence path the rupam placer reads.
func (r *Runtime) feedCharDB(now float64) {
	for _, id := range r.topo.TopoOrder() {
		a := r.acc[id]
		if a.winConsumed <= 0 && a.winOutBytes <= 0 {
			continue
		}
		o := r.topo.Op(id)
		node := r.opNode[id]
		cpu := a.winCycles / charDBInterval
		inBps := a.winInBytes / charDBInterval
		outBps := a.winOutBytes / charDBInterval
		m := &task.Metrics{
			Executor:         node,
			Start:            now - charDBInterval,
			End:              now,
			ComputeTime:      cpu,
			ShuffleReadTime:  inBps,
			ShuffleWriteTime: outBps,
			PeakMemory:       o.StateBytes,
		}
		bottleneck := core.CPU
		if n := r.clu.Node(node); n != nil {
			cpuFrac := cpu / n.Spec.CPUCapacity()
			netFrac := (inBps + outBps) / n.Spec.NetBandwidth
			if netFrac > cpuFrac {
				bottleneck = core.Net
			}
		}
		r.db.Update(StreamKey(r.topo.Name, o), m, bottleneck, true)
		a.winCycles, a.winConsumed, a.winInBytes, a.winOutBytes = 0, 0, 0, 0
	}
	r.db.Flush()
}

// triggerMigrations evaluates the per-tick migration policy: the forced
// migration (soak determinism), gray degradation, and persistent
// overload after a load spike.
func (r *Runtime) triggerMigrations(now float64) {
	if r.cfg.ForceMigrateAt > 0 && now >= r.cfg.ForceMigrateAt && !r.forcedDone {
		// Most backlogged operator, ties to the lowest ID.
		bestID, bestBack := -1, -1.0
		for _, id := range r.topo.TopoOrder() {
			if r.migrating[id] != nil {
				continue
			}
			back := 0.0
			for _, ch := range r.inChans[id] {
				back += ch.q.count
			}
			if back > bestBack {
				bestID, bestBack = id, back
			}
		}
		if bestID >= 0 && r.startMigration(bestID, "", "forced", false) {
			r.forcedDone = true
		}
	}
	for _, id := range r.topo.TopoOrder() {
		if r.migrating[id] != nil || len(r.topo.In(id)) == 0 {
			r.overTicks[id] = 0
			continue
		}
		if now-r.lastMigration[id] < migrationCooldown {
			continue
		}
		node := r.clu.Node(r.opNode[id])
		if node == nil {
			continue
		}
		capSum, back := 0.0, 0.0
		for _, ch := range r.inChans[id] {
			capSum += ch.capacity
			back += ch.q.count
		}
		gray := node.CPU.PerClaimCap() < grayFreqFrac*node.Spec.FreqGHz
		switch {
		case gray && back > grayBacklogFrac*capSum:
			r.overTicks[id]++
			if r.overTicks[id] >= grayTicks {
				if r.startMigration(id, "", "gray-degradation", false) {
					r.overTicks[id] = 0
				}
			}
		case back > spikeBacklogFrac*capSum:
			r.overTicks[id]++
			if r.overTicks[id] >= spikeTicks {
				if r.startMigration(id, "", "overload", false) {
					r.overTicks[id] = 0
				}
			}
		default:
			r.overTicks[id] = 0
		}
	}
}

// evacuate gracefully migrates every operator off a doomed node (spot
// notice: the host is still alive for the grace window).
func (r *Runtime) evacuate(node, reason string) {
	for _, id := range r.topo.TopoOrder() {
		if r.opNode[id] == node && r.migrating[id] == nil {
			r.startMigration(id, "", reason, false)
		}
	}
}

// failover emergency-migrates every operator still homed on a dead node.
func (r *Runtime) failover(node, reason string) {
	for _, id := range r.topo.TopoOrder() {
		if r.opNode[id] == node {
			r.emergency(id, reason)
		}
	}
}
