// Package federation turns the simulator's single recoverable driver into
// a sharded scheduling plane: several cooperating drivers place tasks onto
// one shared cluster with no central Launch path. Each node's core slots
// are owned by a per-node Agent state machine; drivers acquire them
// through an explicit two-phase placement commit — PROPOSE, ACCEPT/REJECT
// with deterministic lowest-(driver,seq)-wins arbitration, COMMIT/ABORT —
// carried over an unreliable control Plane that can drop, duplicate,
// delay and reorder messages. Every protocol transition is appended to
// the owning application's write-ahead log, so the WAL replay that
// rebuilds a crashed driver's scheduler state also rebuilds its protocol
// state: claims still live in the fold after a crash are exactly the ones
// the restarted driver must re-abort or re-release, and agent-side accept
// expiry guarantees that claims a dead driver never committed return to
// the pool on their own. Agents are a fault domain too: a crashed agent
// loses every claim, timer and tombstone, and on restart it bumps its
// incarnation, refuses pre-crash PROPOSE/COMMITs, and rebuilds surviving
// reservations from the drivers' answers to its RESYNC broadcast.
package federation

import "fmt"

// ClaimID names one placement claim globally: the proposing driver and
// its per-driver proposal sequence number. IDs totally order claims; the
// arbitration rule is that the *lowest* ID wins a slot conflict, so older
// proposals from lower-numbered drivers are never starved by newer ones.
type ClaimID struct {
	Driver int
	Seq    uint64
}

// String renders the ID in its WAL key form, "d<driver>:<seq>".
func (id ClaimID) String() string { return fmt.Sprintf("d%d:%d", id.Driver, id.Seq) }

// Less is the deterministic arbitration order: lowest driver ID first,
// then lowest sequence.
func (id ClaimID) Less(o ClaimID) bool {
	if id.Driver != o.Driver {
		return id.Driver < o.Driver
	}
	return id.Seq < o.Seq
}

// MsgType enumerates the placement-protocol message vocabulary.
type MsgType int

// Protocol messages. Drivers send PROPOSE/COMMIT/ABORT/RELEASE; agents
// answer ACCEPT/REJECT/COMMIT_ACK/COMMIT_NACK/ABORT_ACK/RELEASE_ACK.
const (
	// Propose asks the node's agent to reserve Slots cores for Task.
	Propose MsgType = iota
	// Accept grants the reservation until Expiry; an uncommitted claim
	// past its expiry is unilaterally returned to the pool.
	Accept
	// Reject refuses the claim (capacity, arbitration loss, or a
	// tombstoned claim ID); RetryAfter hints when to try this node again.
	Reject
	// Commit pins an accepted claim: the slots stay reserved until the
	// driver releases them, surviving any driver crash.
	Commit
	// CommitAck confirms the commit took effect (idempotent).
	CommitAck
	// CommitNack refuses a commit of a claim the agent no longer holds
	// (expired or evicted) — the driver must re-propose under a new ID.
	CommitNack
	// Abort cancels a claim in any live state (idempotent).
	Abort
	// AbortAck confirms the claim is gone.
	AbortAck
	// Release frees a committed claim's slots (the attempt ended).
	Release
	// ReleaseAck confirms the release took effect.
	ReleaseAck
	// Resync is broadcast by a restarted agent to every driver: "I am back
	// under incarnation Inc with no memory — tell me what I owe you."
	// Drivers answer with their view of the claims they hold on the node.
	Resync
	// ResyncClaim is one driver-side answer: a committed claim the driver
	// still holds on the restarting node. Bound marks it as backing a
	// launched attempt (the agent cross-checks those against the executor's
	// running set before rebuilding the reservation).
	ResyncClaim
	// ResyncEnd closes one driver's resync answer; once every driver has
	// answered (or the resync deadline lapses) the agent accepts proposals
	// again.
	ResyncEnd
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case Propose:
		return "PROPOSE"
	case Accept:
		return "ACCEPT"
	case Reject:
		return "REJECT"
	case Commit:
		return "COMMIT"
	case CommitAck:
		return "COMMIT_ACK"
	case CommitNack:
		return "COMMIT_NACK"
	case Abort:
		return "ABORT"
	case AbortAck:
		return "ABORT_ACK"
	case Release:
		return "RELEASE"
	case ReleaseAck:
		return "RELEASE_ACK"
	case Resync:
		return "RESYNC"
	case ResyncClaim:
		return "RESYNC_CLAIM"
	case ResyncEnd:
		return "RESYNC_END"
	default:
		return fmt.Sprintf("federation.MsgType(%d)", int(t))
	}
}

// Message is one protocol datagram. Every message names its claim, so
// duplicated and reordered deliveries dedup on (Type, Claim) alone.
type Message struct {
	Type  MsgType
	Claim ClaimID
	// Task and Slots describe the placement in a PROPOSE.
	Task  int
	Slots int
	// RetryAfter is a REJECT's backoff hint: the absolute virtual time
	// before which the driver should not re-propose on this node.
	RetryAfter float64
	// Expiry is an ACCEPT's reservation deadline: the absolute virtual
	// time at which an uncommitted claim self-releases at the agent.
	Expiry float64
	// Inc is an incarnation number: agents count their crashes (boot is
	// incarnation 0) and stamp every message they send with the current
	// value; drivers stamp PROPOSE/COMMIT with their last-known view of the
	// target agent's incarnation. An agent refuses PROPOSE/COMMIT carrying
	// a foreign incarnation, fencing off messages that predate its crash —
	// a stale COMMIT from before the wipe must not double-reserve slots.
	Inc uint64
	// Bound marks a RESYNC_CLAIM as backing a launched attempt rather than
	// a committed-but-unused reservation.
	Bound bool
}

// ProtocolConfig tunes the placement protocol's timing.
type ProtocolConfig struct {
	// Latency is the one-way control-plane message latency in seconds
	// (default 0.002).
	Latency float64
	// DispatchCost is the serial CPU time a driver spends per protocol
	// action — the per-task dispatch overhead that caps a centralized
	// scheduler, here paid per driver so placement throughput scales with
	// driver count (default 0.001).
	DispatchCost float64
	// AcceptTTL is the agent-side lifetime of an accepted, uncommitted
	// claim; past it the agent frees the slots and tombstones the claim.
	// This is what unsticks slots whose proposing driver died before
	// committing (default 2).
	AcceptTTL float64
	// RetryTimeout is the base retransmit timeout; try i of a cycle waits
	// RetryTimeout×i. It doubles as the agent's reject-backoff hint
	// (default 0.25).
	RetryTimeout float64
	// MaxRetries bounds sends per retransmit cycle. Propose cycles give
	// up for good (the accept TTL cleans up any orphan grant); commit
	// cycles fall back to an abort; abort/release cycles re-arm with a
	// growing pause until acknowledged — those must eventually land or
	// slots would leak (default 5).
	MaxRetries int
	// StaleClaimTTL releases a committed claim the scheduler never used
	// (its task got placed elsewhere or finished) after this long
	// (default 1.5).
	StaleClaimTTL float64
	// SweepInterval is the period of the driver's reconcile sweep, which
	// releases bound claims whose attempt vanished through a silent-kill
	// path such as a job abort (default 2) and reconciles claims orphaned
	// by an agent incarnation change.
	SweepInterval float64
	// ResyncTimeout is how long a restarted agent waits for the drivers'
	// RESYNC answers before accepting proposals again; a crashed driver
	// cannot answer, so the handshake must not wait forever. It also serves
	// as the reject-backoff hint sent to proposals arriving mid-resync
	// (default 4 — comfortably past a full resync retransmit cycle).
	ResyncTimeout float64
}

func (c ProtocolConfig) withDefaults() ProtocolConfig {
	if c.Latency <= 0 {
		c.Latency = 0.002
	}
	if c.DispatchCost <= 0 {
		c.DispatchCost = 0.001
	}
	if c.AcceptTTL <= 0 {
		c.AcceptTTL = 2
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 0.25
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.StaleClaimTTL <= 0 {
		c.StaleClaimTTL = 1.5
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 2
	}
	if c.ResyncTimeout <= 0 {
		c.ResyncTimeout = 4
	}
	return c
}
