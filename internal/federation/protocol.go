// Package federation turns the simulator's single recoverable driver into
// a sharded scheduling plane: several cooperating drivers place tasks onto
// one shared cluster with no central Launch path. Each node's core slots
// are owned by a per-node Agent state machine; drivers acquire them
// through an explicit two-phase placement commit — PROPOSE, ACCEPT/REJECT
// with deterministic lowest-(driver,seq)-wins arbitration, COMMIT/ABORT —
// carried over an unreliable control Plane that can drop, duplicate,
// delay and reorder messages. Every protocol transition is appended to
// the owning application's write-ahead log, so the WAL replay that
// rebuilds a crashed driver's scheduler state also rebuilds its protocol
// state: claims still live in the fold after a crash are exactly the ones
// the restarted driver must re-abort or re-release, and agent-side accept
// expiry guarantees that claims a dead driver never committed return to
// the pool on their own.
package federation

import "fmt"

// ClaimID names one placement claim globally: the proposing driver and
// its per-driver proposal sequence number. IDs totally order claims; the
// arbitration rule is that the *lowest* ID wins a slot conflict, so older
// proposals from lower-numbered drivers are never starved by newer ones.
type ClaimID struct {
	Driver int
	Seq    uint64
}

// String renders the ID in its WAL key form, "d<driver>:<seq>".
func (id ClaimID) String() string { return fmt.Sprintf("d%d:%d", id.Driver, id.Seq) }

// Less is the deterministic arbitration order: lowest driver ID first,
// then lowest sequence.
func (id ClaimID) Less(o ClaimID) bool {
	if id.Driver != o.Driver {
		return id.Driver < o.Driver
	}
	return id.Seq < o.Seq
}

// MsgType enumerates the placement-protocol message vocabulary.
type MsgType int

// Protocol messages. Drivers send PROPOSE/COMMIT/ABORT/RELEASE; agents
// answer ACCEPT/REJECT/COMMIT_ACK/COMMIT_NACK/ABORT_ACK/RELEASE_ACK.
const (
	// Propose asks the node's agent to reserve Slots cores for Task.
	Propose MsgType = iota
	// Accept grants the reservation until Expiry; an uncommitted claim
	// past its expiry is unilaterally returned to the pool.
	Accept
	// Reject refuses the claim (capacity, arbitration loss, or a
	// tombstoned claim ID); RetryAfter hints when to try this node again.
	Reject
	// Commit pins an accepted claim: the slots stay reserved until the
	// driver releases them, surviving any driver crash.
	Commit
	// CommitAck confirms the commit took effect (idempotent).
	CommitAck
	// CommitNack refuses a commit of a claim the agent no longer holds
	// (expired or evicted) — the driver must re-propose under a new ID.
	CommitNack
	// Abort cancels a claim in any live state (idempotent).
	Abort
	// AbortAck confirms the claim is gone.
	AbortAck
	// Release frees a committed claim's slots (the attempt ended).
	Release
	// ReleaseAck confirms the release took effect.
	ReleaseAck
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case Propose:
		return "PROPOSE"
	case Accept:
		return "ACCEPT"
	case Reject:
		return "REJECT"
	case Commit:
		return "COMMIT"
	case CommitAck:
		return "COMMIT_ACK"
	case CommitNack:
		return "COMMIT_NACK"
	case Abort:
		return "ABORT"
	case AbortAck:
		return "ABORT_ACK"
	case Release:
		return "RELEASE"
	case ReleaseAck:
		return "RELEASE_ACK"
	default:
		return fmt.Sprintf("federation.MsgType(%d)", int(t))
	}
}

// Message is one protocol datagram. Every message names its claim, so
// duplicated and reordered deliveries dedup on (Type, Claim) alone.
type Message struct {
	Type  MsgType
	Claim ClaimID
	// Task and Slots describe the placement in a PROPOSE.
	Task  int
	Slots int
	// RetryAfter is a REJECT's backoff hint: the absolute virtual time
	// before which the driver should not re-propose on this node.
	RetryAfter float64
	// Expiry is an ACCEPT's reservation deadline: the absolute virtual
	// time at which an uncommitted claim self-releases at the agent.
	Expiry float64
}

// ProtocolConfig tunes the placement protocol's timing.
type ProtocolConfig struct {
	// Latency is the one-way control-plane message latency in seconds
	// (default 0.002).
	Latency float64
	// DispatchCost is the serial CPU time a driver spends per protocol
	// action — the per-task dispatch overhead that caps a centralized
	// scheduler, here paid per driver so placement throughput scales with
	// driver count (default 0.001).
	DispatchCost float64
	// AcceptTTL is the agent-side lifetime of an accepted, uncommitted
	// claim; past it the agent frees the slots and tombstones the claim.
	// This is what unsticks slots whose proposing driver died before
	// committing (default 2).
	AcceptTTL float64
	// RetryTimeout is the base retransmit timeout; try i of a cycle waits
	// RetryTimeout×i. It doubles as the agent's reject-backoff hint
	// (default 0.25).
	RetryTimeout float64
	// MaxRetries bounds sends per retransmit cycle. Propose cycles give
	// up for good (the accept TTL cleans up any orphan grant); commit
	// cycles fall back to an abort; abort/release cycles re-arm with a
	// growing pause until acknowledged — those must eventually land or
	// slots would leak (default 5).
	MaxRetries int
	// StaleClaimTTL releases a committed claim the scheduler never used
	// (its task got placed elsewhere or finished) after this long
	// (default 1.5).
	StaleClaimTTL float64
	// SweepInterval is the period of the driver's reconcile sweep, which
	// releases bound claims whose attempt vanished through a silent-kill
	// path such as a job abort (default 2).
	SweepInterval float64
}

func (c ProtocolConfig) withDefaults() ProtocolConfig {
	if c.Latency <= 0 {
		c.Latency = 0.002
	}
	if c.DispatchCost <= 0 {
		c.DispatchCost = 0.001
	}
	if c.AcceptTTL <= 0 {
		c.AcceptTTL = 2
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 0.25
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.StaleClaimTTL <= 0 {
		c.StaleClaimTTL = 1.5
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 2
	}
	return c
}
