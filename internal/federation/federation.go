package federation

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/faults"
	"rupam/internal/monitor"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/tenant"
	"rupam/internal/wal"
	"rupam/internal/workloads"
)

// Config parameterizes one federated run: N drivers sharing one Hydra
// cluster, each owning a slice of K identical applications (app j belongs
// to driver j mod N), all placements arbitrated through the agent
// protocol.
type Config struct {
	// Drivers is the scheduler shard count (default 1).
	Drivers int
	// Apps is the application count, assigned round-robin to drivers
	// (default 4).
	Apps int
	// Workload is a package workloads name (default "PR" with reduced
	// parameters, matching the chaos soak's default).
	Workload string
	// Params override the workload's defaults when non-zero.
	Params workloads.Params
	// Seed drives the whole run: plans, executors, transport faults.
	Seed uint64
	// Protocol tunes the placement protocol's timing.
	Protocol ProtocolConfig
	// Faults, when non-empty, is installed once: message kinds onto the
	// control plane, node kinds onto a shared injector; DriverCrash
	// events rotate round-robin over drivers that still own live apps.
	Faults *faults.Schedule
	// Spark carries per-application framework overrides (Faults and WAL
	// are owned by the harness and overwritten).
	Spark spark.Config
	// MaxSimTime bounds the run in virtual seconds (default 3600).
	MaxSimTime float64
}

func (c Config) withDefaults() Config {
	if c.Drivers <= 0 {
		c.Drivers = 1
	}
	if c.Apps <= 0 {
		c.Apps = 4
	}
	if c.Workload == "" {
		c.Workload = "PR"
		if c.Params == (workloads.Params{}) {
			c.Params = workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}
		}
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 3600
	}
	c.Protocol = c.Protocol.withDefaults()
	return c
}

// AgentStats is one agent's protocol outcome for reports.
type AgentStats struct {
	Node        string `json:"node"`
	Capacity    int    `json:"capacity"`
	MaxReserved int    `json:"max_reserved"`
	Accepts     int    `json:"accepts"`
	Commits     int    `json:"commits"`
	Rejects     int    `json:"rejects"`
	Expiries    int    `json:"expiries"`
	// Agent fault-episode counters: crashes suffered, restarts, resync
	// handshakes closed, claims rebuilt from driver answers, and
	// PROPOSE/COMMITs refused for carrying a dead incarnation.
	Crashes      int `json:"crashes,omitempty"`
	Restarts     int `json:"restarts,omitempty"`
	Resyncs      int `json:"resyncs,omitempty"`
	Rebuilt      int `json:"rebuilt,omitempty"`
	StaleRejects int `json:"stale_rejects,omitempty"`
}

// DriverStats is one driver's protocol outcome for reports.
type DriverStats struct {
	ID          int     `json:"id"`
	Apps        int     `json:"apps"`
	Commits     int     `json:"commits"`
	BusySeconds float64 `json:"busy_seconds"`
	Crashes     int     `json:"crashes"`
	Recoveries  int     `json:"recoveries"`
}

// Result is one federated run's outcome.
type Result struct {
	Drivers  int     `json:"drivers"`
	Apps     int     `json:"apps"`
	Seed     uint64  `json:"seed"`
	Makespan float64 `json:"makespan_s"`
	// Commits is the total committed placements across drivers.
	Commits int `json:"commits"`
	// PlacementRate is commits per second of the busiest driver's serial
	// dispatch time — the protocol-throughput figure the scaling sweep
	// tracks (commits / max BusySeconds).
	PlacementRate float64 `json:"placement_rate"`
	// MaxBusySeconds is that busiest driver's dispatch time.
	MaxBusySeconds float64 `json:"max_busy_seconds"`

	Completed int `json:"completed"`
	Aborted   int `json:"aborted"`
	Launches  int `json:"launches"`
	Crashes   int `json:"driver_crashes"`

	// Agent fault-domain totals across all agents.
	AgentCrashes  int `json:"agent_crashes"`
	AgentRestarts int `json:"agent_restarts"`
	Resyncs       int `json:"agent_resyncs"`
	RebuiltClaims int `json:"rebuilt_claims"`

	MsgSent      int `json:"msg_sent"`
	MsgDelivered int `json:"msg_delivered"`
	MsgDropped   int `json:"msg_dropped"`
	MsgDuped     int `json:"msg_duped"`
	MsgDelayed   int `json:"msg_delayed"`
	MsgReordered int `json:"msg_reordered"`

	AgentStats  []AgentStats  `json:"agents,omitempty"`
	DriverStats []DriverStats `json:"driver_stats,omitempty"`

	Fingerprint string   `json:"fingerprint"`
	Violations  []string `json:"violations,omitempty"`

	// AppResults holds each application's spark result in app order;
	// AppRuntimes the matching runtimes (for invariant batteries).
	AppResults  []*spark.Result  `json:"-"`
	AppRuntimes []*spark.Runtime `json:"-"`
}

// Run executes one federated run to quiescence and returns its result.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Drivers: cfg.Drivers, Apps: cfg.Apps, Seed: cfg.Seed}
	violation := func(v string) { res.Violations = append(res.Violations, v) }

	eng := simx.NewEngine()
	clu := cluster.New(eng)
	cluster.NewHydra(clu)

	plane := NewPlane(eng, cfg.Seed, cfg.Protocol.Latency)
	if !cfg.Faults.Empty() {
		plane.Install(cfg.Faults)
	}

	agents := make([]*Agent, 0, len(clu.Nodes))
	nodeCap := make(map[string]int, len(clu.Nodes))
	for _, n := range clu.Nodes {
		agents = append(agents, NewAgent(eng, plane, cfg.Protocol, n.Name(), n.Spec.Cores, violation))
		nodeCap[n.Name()] = n.Spec.Cores
	}

	drivers := make([]*Driver, cfg.Drivers)
	for i := range drivers {
		drivers[i] = NewDriver(eng, plane, cfg.Protocol, i, nodeCap, violation)
	}
	addrs := make([]string, len(drivers))
	for i, d := range drivers {
		addrs[i] = d.Addr
	}
	agentByName := make(map[string]*Agent, len(agents))
	for _, a := range agents {
		a.SetDrivers(addrs)
		agentByName[a.Name] = a
	}

	// Shared substrate: one executor set, one monitor, heartbeats fanned
	// to every active application (then a local round each — there is no
	// global scheduler; the agents arbitrate).
	var rts []*spark.Runtime
	fan := func(fn func(rt *spark.Runtime)) {
		for _, rt := range rts {
			if rt != nil && !rt.Done() && !rt.Crashed() {
				fn(rt)
			}
		}
	}
	sub := tenant.BuildSubstrate(eng, clu, tenant.SubstrateOptions{
		Seed:              cfg.Seed,
		Exec:              cfg.Spark.Exec,
		HeartbeatInterval: cfg.Spark.HeartbeatInterval,
		Tracer:            cfg.Spark.Tracer,
		OnRestart: func() {
			fan(func(rt *spark.Runtime) { rt.NotifyExecutorSetChanged() })
			fan(func(rt *spark.Runtime) { rt.Scheduler().Schedule() })
		},
		OnHeartbeat: func(node string, nm *monitor.NodeMetrics) {
			fan(func(rt *spark.Runtime) { rt.DeliverHeartbeat(node, nm) })
			fan(func(rt *spark.Runtime) { rt.Scheduler().Schedule() })
		},
	})

	// A restarted agent cross-checks bound RESYNC_CLAIMs against the
	// executor actually co-located with it: a claim said to back a live
	// attempt is rebuilt only if the task really is still running there.
	for _, a := range agents {
		ex := sub.Execs[a.Name]
		if ex == nil {
			continue
		}
		a.TaskRunning = func(taskID int) bool {
			if ex.FailStopped() {
				return false
			}
			for _, r := range ex.Running() {
				if r.Task().ID == taskID {
					return true
				}
			}
			return false
		}
	}

	var inj *faults.Injector
	if !cfg.Faults.Empty() {
		inj = faults.NewInjector(eng, clu, sub.Execs)
		sub.Mon.Drop = inj.Suppressed
		inj.Collector = cfg.Spark.Tracer
		// Agent faults: AgentCrash/AgentRestart events plus the collateral
		// kills from NodeCrash and spot reclamation all land here. A crash
		// with no scheduled comeback (downtime 0) is broadcast as
		// membership news so drivers resolve its claims locally instead of
		// chasing acks that may never come.
		inj.OnAgentCrash = func(node string, downtime float64) {
			a := agentByName[node]
			if a == nil {
				return
			}
			a.Crash()
			if downtime == 0 {
				for _, d := range drivers {
					d.AgentDead(node)
				}
			}
		}
		inj.OnAgentRestart = func(node string) {
			a := agentByName[node]
			if a == nil {
				return
			}
			if ex, ok := sub.Execs[node]; ok && ex.FailStopped() {
				return // the node is still down; its recovery restarts the agent
			}
			a.Restart()
		}
		// DriverCrash events rotate over drivers that still own live
		// applications, so every shard's crash/recovery path runs.
		next := 0
		inj.OnDriverCrash = func(restartAfter float64) {
			for range drivers {
				d := drivers[next%len(drivers)]
				next++
				for _, a := range d.apps {
					if !a.done && !a.rt.Crashed() {
						d.Crash(restartAfter)
						return
					}
				}
			}
		}
		inj.Install(cfg.Faults)
	}

	// Applications: identical plans in disjoint ID namespaces, app j
	// owned by driver j mod N.
	remaining := cfg.Apps
	finish := func() {
		remaining--
		if remaining == 0 {
			res.Makespan = eng.Now()
			sub.Mon.Stop()
		}
	}
	for j := 0; j < cfg.Apps; j++ {
		d := drivers[j%cfg.Drivers]
		app := tenant.BuildApp(clu, cfg.Seed, cfg.Workload, cfg.Params, (j+1)*tenant.IDSpan)
		app.Name = fmt.Sprintf("app%d-%s", j, cfg.Workload)

		scfg := cfg.Spark
		scfg.Faults = nil // the injector belongs to the harness
		scfg.Seed = cfg.Seed*31 + 7 + uint64(j)*1013
		scfg.AppLabel = app.Name
		scfg.SampleInterval = -1
		scfg.MaxSimTime = cfg.MaxSimTime
		// The application's WAL carries both scheduler state and claim
		// protocol records; crash recovery folds both from one stream.
		wlog := wal.New(nil, wal.Options{Clock: eng.Now})
		scfg.WAL = wlog

		rt := spark.NewRuntimeOn(eng, clu, spark.NewDefaultScheduler(), scfg, sub)
		if inj != nil {
			rt.SetSharedFaults(inj)
		}
		fa := d.Adopt(rt, wlog, app)
		rt.OnAppDone = func() { d.AppDone(fa); finish() }
		rts = append(rts, rt)
		res.AppRuntimes = append(res.AppRuntimes, rt)
		rt.Start(app)
	}
	sub.Mon.Start()
	fan(func(rt *spark.Runtime) { rt.Scheduler().Schedule() })

	// Drain: applications finish first, then outstanding abort/release
	// cycles settle (they always do — fault windows are finite, restarted
	// agents ack unknown claims, and claims against permanently dead
	// agents resolve locally). The horizon is a watchdog, not an expected
	// path.
	eng.RunUntil(cfg.MaxSimTime * 2)
	if eng.Pending() > 0 {
		violation(fmt.Sprintf("simulation did not quiesce: %d events pending at horizon", eng.Pending()))
	}
	if remaining > 0 {
		violation(fmt.Sprintf("%d applications never finished", remaining))
		res.Makespan = eng.Now()
	}

	// End-state battery: every slot free, every claim resolved, every
	// driver drained.
	h := fnv.New64a()
	mix := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	sort.Slice(agents, func(i, j int) bool { return agents[i].Name < agents[j].Name })
	for _, a := range agents {
		a.CheckEndState()
		res.AgentStats = append(res.AgentStats, AgentStats{
			Node: a.Name, Capacity: a.Capacity, MaxReserved: a.MaxReserved,
			Accepts: a.Accepts, Commits: a.Commits, Rejects: a.Rejects, Expiries: a.Expiries,
			Crashes: a.Crashes, Restarts: a.Restarts, Resyncs: a.Resyncs,
			Rebuilt: a.Rebuilt, StaleRejects: a.StaleRejects,
		})
		res.AgentCrashes += a.Crashes
		res.AgentRestarts += a.Restarts
		res.Resyncs += a.Resyncs
		res.RebuiltClaims += a.Rebuilt
		mix(a.Digest())
	}
	for _, d := range drivers {
		if n := d.LiveClaims(); n != 0 {
			violation(fmt.Sprintf("%s: %d claims still live at end of run", d.Addr, n))
		}
		res.Commits += d.Commits
		res.Crashes += d.Crashes
		if d.BusySeconds > res.MaxBusySeconds {
			res.MaxBusySeconds = d.BusySeconds
		}
		res.DriverStats = append(res.DriverStats, DriverStats{
			ID: d.ID, Apps: len(d.apps), Commits: d.Commits,
			BusySeconds: d.BusySeconds, Crashes: d.Crashes, Recoveries: d.Recoveries,
		})
		mix(uint64(d.Commits))
		mix(math.Float64bits(d.BusySeconds))
	}
	if res.MaxBusySeconds > 0 {
		res.PlacementRate = float64(res.Commits) / res.MaxBusySeconds
	}

	for _, rt := range res.AppRuntimes {
		r := rt.BuildResult()
		res.AppResults = append(res.AppResults, r)
		if r.Aborted != nil {
			res.Aborted++
		} else {
			res.Completed++
		}
		res.Launches += r.Launches
		mix(uint64(r.Launches))
		mix(math.Float64bits(r.Duration))
	}

	res.MsgSent, res.MsgDelivered, res.MsgDropped = plane.Sent, plane.Delivered, plane.Dropped
	res.MsgDuped, res.MsgDelayed, res.MsgReordered = plane.Duped, plane.Delayed, plane.Reordered
	mix(uint64(plane.Sent))
	mix(uint64(plane.Dropped))
	mix(math.Float64bits(res.Makespan))
	res.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return res
}
