package federation_test

import (
	"fmt"
	"testing"

	"rupam/internal/faults"
	"rupam/internal/federation"
	"rupam/internal/simx"
)

// TestAgentCrashFencesUntilRestart is the direct protocol regression for
// the agent fault domain: while the agent is down a PROPOSE gets no answer
// at all (the daemon's socket is dead), and after restart a PROPOSE still
// stamped with the pre-crash incarnation is rejected while a fresh one
// under the new incarnation is accepted.
func TestAgentCrashFencesUntilRestart(t *testing.T) {
	eng := simx.NewEngine()
	plane := federation.NewPlane(eng, 1, 0)
	agent := federation.NewAgent(eng, plane, federation.ProtocolConfig{}, "node1", 2, func(v string) {
		t.Errorf("violation: %s", v)
	})

	var replies []string
	plane.Handle("driver:0", func(from string, m federation.Message) {
		replies = append(replies, fmt.Sprintf("%s %s inc%d", m.Type, m.Claim, m.Inc))
	})

	c1 := federation.ClaimID{Driver: 0, Seq: 1}
	c2 := federation.ClaimID{Driver: 0, Seq: 2}
	eng.At(0, func() {
		plane.Send("driver:0", "node1", federation.Message{Type: federation.Propose, Claim: c1, Task: 7, Slots: 1})
	})
	eng.At(0.1, agent.Crash)
	// Down: this PROPOSE must vanish without any reply.
	eng.At(0.2, func() {
		plane.Send("driver:0", "node1", federation.Message{Type: federation.Propose, Claim: c1, Task: 7, Slots: 1})
	})
	eng.At(0.3, agent.Restart)
	// Restarted: a stale-incarnation PROPOSE is fenced off...
	eng.At(0.4, func() {
		plane.Send("driver:0", "node1", federation.Message{Type: federation.Propose, Claim: c1, Task: 7, Slots: 1})
	})
	// ...and a fresh one under incarnation 1 goes through.
	eng.At(0.5, func() {
		plane.Send("driver:0", "node1", federation.Message{Type: federation.Propose, Claim: c2, Task: 7, Slots: 1, Inc: 1})
	})
	eng.At(0.6, func() {
		plane.Send("driver:0", "node1", federation.Message{Type: federation.Abort, Claim: c2, Inc: 1})
	})
	eng.Run()

	want := fmt.Sprint([]string{
		"ACCEPT d0:1 inc0", "REJECT d0:1 inc1", "ACCEPT d0:2 inc1", "ABORT_ACK d0:2 inc1",
	})
	if fmt.Sprint(replies) != want {
		t.Fatalf("replies = %v, want %v", replies, want)
	}
	if agent.Incarnation() != 1 {
		t.Fatalf("incarnation = %d, want 1", agent.Incarnation())
	}
	if agent.Crashes != 1 || agent.Restarts != 1 || agent.StaleRejects != 1 {
		t.Fatalf("crashes=%d restarts=%d staleRejects=%d, want 1/1/1",
			agent.Crashes, agent.Restarts, agent.StaleRejects)
	}
	if agent.Rejects != 0 {
		t.Fatalf("stale fence tombstoned: rejects=%d, want 0", agent.Rejects)
	}
	if agent.Reserved() != 0 || agent.LiveClaims() != 0 {
		t.Fatalf("leaked: reserved=%d live=%d", agent.Reserved(), agent.LiveClaims())
	}
}

// TestNodeCrashKillsColocatedAgent is the coupling regression: a NodeCrash
// fault must take the co-located agent down with the executor, and the
// agent must come back (and resync) once the node recovers — the run still
// finishes clean.
func TestNodeCrashKillsColocatedAgent(t *testing.T) {
	plan := &faults.Schedule{Events: []faults.Event{
		{At: 3, Kind: faults.NodeCrash, Node: "thor1", Duration: 15},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	res := federation.Run(federation.Config{Drivers: 2, Seed: 5, Faults: plan})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed != 4 {
		t.Fatalf("completed=%d, want 4", res.Completed)
	}
	if res.AgentCrashes == 0 {
		t.Fatalf("node crash did not kill the co-located agent")
	}
	if res.AgentRestarts == 0 {
		t.Fatalf("agent never restarted after node recovery")
	}
}

// TestAgentCrashResyncs drives a pure agent fault (executors keep running;
// only the daemon dies) and checks the RESYNC handshake actually ran.
func TestAgentCrashResyncs(t *testing.T) {
	plan := &faults.Schedule{Events: []faults.Event{
		{At: 3, Kind: faults.AgentCrash, Node: "thor1", Duration: 5},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	res := federation.Run(federation.Config{Drivers: 2, Seed: 9, Faults: plan})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed != 4 {
		t.Fatalf("completed=%d, want 4", res.Completed)
	}
	if res.AgentCrashes != 1 || res.AgentRestarts != 1 {
		t.Fatalf("agentCrashes=%d agentRestarts=%d, want 1/1", res.AgentCrashes, res.AgentRestarts)
	}
	if res.Resyncs == 0 {
		t.Fatalf("restarted agent never closed a resync handshake")
	}
}

// TestAgentFaultDeterminism re-runs a seeded agent-fault run and demands a
// bit-identical fingerprint — the fault path must be as deterministic as
// the fault-free one.
func TestAgentFaultDeterminism(t *testing.T) {
	plan := func() *faults.Schedule {
		return &faults.Schedule{Events: []faults.Event{
			{At: 3, Kind: faults.AgentCrash, Node: "thor2", Duration: 4},
			{At: 12, Kind: faults.AgentCrash, Node: "hulk1", Duration: 6},
		}}
	}
	a := federation.Run(federation.Config{Drivers: 2, Seed: 31, Faults: plan()})
	b := federation.Run(federation.Config{Drivers: 2, Seed: 31, Faults: plan()})
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprint diverged: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.AgentCrashes != 2 {
		t.Fatalf("agentCrashes=%d, want 2", a.AgentCrashes)
	}
}
