package federation

import (
	"sort"

	"rupam/internal/faults"
	"rupam/internal/simx"
	"rupam/internal/stats"
)

// Plane is the federation's control-plane transport: point-to-point
// message delivery between named endpoints (agents register under their
// node name, drivers under "driver:<id>") with a fixed base latency and
// seeded message faults. It deliberately has no reliability of its own —
// drop, duplicate, delay and reorder windows from a fault schedule apply
// per message, so every protocol participant must tolerate loss, dups and
// reordering. Delivery to a down endpoint (a crashed driver) silently
// drops, modeling a dead process's socket.
type Plane struct {
	eng      *simx.Engine
	rng      *stats.Rand
	latency  float64
	handlers map[string]func(from string, m Message)
	down     map[string]bool
	windows  []faults.Event // message-fault windows only, deterministic order

	// Counters for reports and fingerprints.
	Sent      int
	Delivered int
	Dropped   int
	Duped     int
	Delayed   int
	Reordered int
}

// NewPlane creates a transport on the engine. The seed scopes every fault
// coin flip, so a fixed (seed, schedule) pair yields a bit-identical
// loss/reorder pattern for the same message sequence.
func NewPlane(eng *simx.Engine, seed uint64, latency float64) *Plane {
	if latency <= 0 {
		latency = 0.002
	}
	return &Plane{
		eng:      eng,
		rng:      stats.NewRand(seed ^ 0x91a9e5eed),
		latency:  latency,
		handlers: make(map[string]func(string, Message)),
		down:     make(map[string]bool),
	}
}

// Handle registers addr's message handler, replacing any previous one.
func (p *Plane) Handle(addr string, fn func(from string, m Message)) {
	p.handlers[addr] = fn
}

// SetDown marks an endpoint dead (true) or alive (false). Messages
// arriving at a dead endpoint are dropped.
func (p *Plane) SetDown(addr string, down bool) {
	if down {
		p.down[addr] = true
	} else {
		delete(p.down, addr)
	}
}

// Install adopts the schedule's message-fault windows (all other kinds
// are the node injector's business and are ignored here). Windows apply
// at Send time: a message leaving inside a window suffers the fault.
func (p *Plane) Install(s *faults.Schedule) {
	if s.Empty() {
		return
	}
	for _, ev := range s.Events {
		if ev.Kind.IsMessageKind() {
			p.windows = append(p.windows, ev)
		}
	}
	// Deterministic application order regardless of schedule assembly.
	sort.SliceStable(p.windows, func(a, b int) bool {
		if p.windows[a].At != p.windows[b].At {
			return p.windows[a].At < p.windows[b].At
		}
		if p.windows[a].Node != p.windows[b].Node {
			return p.windows[a].Node < p.windows[b].Node
		}
		return p.windows[a].Kind < p.windows[b].Kind
	})
}

// matches reports whether a window scopes this edge: an empty Node is
// every edge; a named scope matches either endpoint.
func windowMatches(ev faults.Event, from, to string) bool {
	return ev.Node == "" || ev.Node == from || ev.Node == to
}

// Send transmits one message. The faults roll in deterministic window
// order: a drop consumes the message outright; a dup schedules a second
// copy half a latency behind the first; delay and reorder stretch the
// delivery time. Fault coins draw from the plane's own RNG in send order,
// so the loss pattern is a pure function of (seed, message sequence).
func (p *Plane) Send(from, to string, m Message) {
	p.Sent++
	now := p.eng.Now()
	extra := 0.0
	copies := 1
	for _, ev := range p.windows {
		if now < ev.At || now >= ev.At+ev.Duration || !windowMatches(ev, from, to) {
			continue
		}
		switch ev.Kind {
		case faults.MsgDrop:
			if p.rng.Float64() < ev.Factor {
				p.Dropped++
				return
			}
		case faults.MsgDup:
			if p.rng.Float64() < ev.Factor {
				copies = 2
				p.Duped++
			}
		case faults.MsgDelay:
			if p.rng.Float64() < ev.Factor {
				extra += ev.Delay
				p.Delayed++
			}
		case faults.MsgReorder:
			if p.rng.Float64() < ev.Factor {
				// A random skew of up to four base latencies is enough to
				// let any later message overtake this one.
				extra += p.rng.Float64() * p.latency * 4
				p.Reordered++
			}
		}
	}
	for c := 0; c < copies; c++ {
		delay := p.latency + extra + float64(c)*p.latency*0.5
		p.eng.Schedule(delay, func() { p.deliver(from, to, m) })
	}
}

func (p *Plane) deliver(from, to string, m Message) {
	h := p.handlers[to]
	if h == nil || p.down[to] {
		p.Dropped++
		return
	}
	p.Delivered++
	h(from, m)
}
