package federation_test

import (
	"testing"

	"rupam/internal/federation"
)

// TestAcceptanceScenarios runs the table-driven protocol battery: every
// scripted interleaving must produce exactly the expected reply sequence
// and agent end state.
func TestAcceptanceScenarios(t *testing.T) {
	for _, s := range federation.AcceptanceScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, f := range federation.RunAcceptScenario(s) {
				t.Error(f)
			}
		})
	}
}
