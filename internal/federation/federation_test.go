package federation_test

import (
	"testing"

	"rupam/internal/chaos"
	"rupam/internal/faults"
	"rupam/internal/federation"
)

// TestSingleDriverCompletes is the no-fault baseline: one driver, four
// apps, everything completes with clean protocol end state.
func TestSingleDriverCompletes(t *testing.T) {
	res := federation.Run(federation.Config{Seed: 1})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed != 4 || res.Aborted != 0 {
		t.Fatalf("completed=%d aborted=%d, want 4/0", res.Completed, res.Aborted)
	}
	if res.Commits == 0 || res.Launches == 0 {
		t.Fatalf("no work done: commits=%d launches=%d", res.Commits, res.Launches)
	}
	if res.MaxBusySeconds <= 0 || res.PlacementRate <= 0 {
		t.Fatalf("dispatch accounting empty: busy=%v rate=%v", res.MaxBusySeconds, res.PlacementRate)
	}
}

// TestTwoDriverConservation is the shared-cluster regression: two drivers
// federating over one substrate must preserve slot and lease conservation
// for every application, checked with the same battery the tenant soak
// uses.
func TestTwoDriverConservation(t *testing.T) {
	res := federation.Run(federation.Config{Drivers: 2, Seed: 7})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed != 4 {
		t.Fatalf("completed=%d, want 4", res.Completed)
	}
	for i, rt := range res.AppRuntimes {
		for _, v := range chaos.CheckAppInvariants(res.AppResults[i], rt) {
			t.Errorf("app %d: %s", i, v)
		}
	}
	// The shared executor set must be fully drained once, peak within
	// capacity — the conservation half of the battery.
	for _, v := range chaos.CheckResourceConservation(res.AppRuntimes[0]) {
		t.Errorf("conservation: %s", v)
	}
	for _, a := range res.AgentStats {
		if a.MaxReserved > a.Capacity {
			t.Errorf("agent %s peaked at %d reserved > capacity %d", a.Node, a.MaxReserved, a.Capacity)
		}
	}
}

// TestDeterministicFingerprint re-runs one seeded federated run and
// demands a bit-identical fingerprint.
func TestDeterministicFingerprint(t *testing.T) {
	a := federation.Run(federation.Config{Drivers: 2, Seed: 11})
	b := federation.Run(federation.Config{Drivers: 2, Seed: 11})
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprint diverged: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestCrashAndMessageFaults drives two drivers through driver crashes and
// a lossy, duplicating, reordering control plane; the protocol must end
// clean and every application must still finish.
func TestCrashAndMessageFaults(t *testing.T) {
	plan := &faults.Schedule{Events: []faults.Event{
		{At: 5, Kind: faults.DriverCrash, Duration: 4},
		{At: 20, Kind: faults.DriverCrash, Duration: 6},
		{At: 1, Kind: faults.MsgDrop, Duration: 60, Factor: 0.15},
		{At: 1, Kind: faults.MsgDup, Duration: 60, Factor: 0.2},
		{At: 1, Kind: faults.MsgDelay, Duration: 60, Factor: 0.2, Delay: 0.05},
		{At: 1, Kind: faults.MsgReorder, Duration: 60, Factor: 0.25},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	res := federation.Run(federation.Config{Drivers: 2, Seed: 23, Faults: plan})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed != 4 {
		t.Fatalf("completed=%d aborted=%d, want 4 completed", res.Completed, res.Aborted)
	}
	if res.Crashes == 0 {
		t.Fatalf("no driver crash fired")
	}
	if res.MsgDropped == 0 && res.MsgDuped == 0 {
		t.Fatalf("message faults never fired (sent=%d)", res.MsgSent)
	}
}
