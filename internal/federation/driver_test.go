package federation

import (
	"testing"

	"rupam/internal/simx"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// TestDoubleReleaseKeepsRetransmitCycleAlive pins the fix for a slot
// leak the agent-churn soak surfaced (seed 7): releaseClaim re-entered
// on a claim already in csReleasing — the attempt ends, then app
// teardown or the stale sweep releases it again — used to cancel the
// in-flight cycle's retransmit timer before hitting the terminal-state
// early return. If the RELEASEs sent so far were all dropped (a
// msg-drop window), nothing ever re-armed the cycle: the claim stayed
// live forever and the agent's reservation leaked. A repeat release
// must leave the running cycle's timer alone.
func TestDoubleReleaseKeepsRetransmitCycleAlive(t *testing.T) {
	eng := simx.NewEngine()
	plane := NewPlane(eng, 1, 0.002)
	d := NewDriver(eng, plane, ProtocolConfig{}, 0, map[string]int{"node1": 4}, func(v string) {
		t.Errorf("violation: %s", v)
	})

	// A fake agent that swallows every message until the drop window
	// "ends", then acks RELEASEs.
	acking := false
	acks := 0
	plane.Handle("node1", func(from string, m Message) {
		if !acking || m.Type != Release {
			return
		}
		acks++
		plane.Send("node1", from, Message{Type: ReleaseAck, Claim: m.Claim})
	})

	a := &fedApp{
		wlog:     wal.New(nil, wal.Options{Clock: eng.Now}),
		taskByID: make(map[int]*task.Task),
	}
	tk := &task.Task{ID: 7}
	c := &fclaim{
		id: ClaimID{Driver: 0, Seq: 1}, app: a, task: tk,
		node: "node1", slots: 1, state: csBound,
	}
	d.claims[c.id] = c
	d.inflight[c.node]++

	// First release puts the claim on its RELEASE cycle (all sends
	// dropped for now); the second lands mid-cycle and must not kill it.
	eng.At(0, func() { d.releaseClaim(c) })
	eng.At(0.6, func() { d.releaseClaim(c) })
	eng.At(1.0, func() { acking = true })
	eng.RunUntil(60)

	if n := d.LiveClaims(); n != 0 {
		t.Fatalf("%d claims still live: the repeat release killed the retransmit cycle", n)
	}
	if acks == 0 {
		t.Fatal("the agent never saw a RELEASE after the drop window")
	}
}

// TestDoubleAbortKeepsRetransmitCycleAlive is the same guarantee for
// the ABORT cycle (recovery paths can abort a claim more than once).
func TestDoubleAbortKeepsRetransmitCycleAlive(t *testing.T) {
	eng := simx.NewEngine()
	plane := NewPlane(eng, 1, 0.002)
	d := NewDriver(eng, plane, ProtocolConfig{}, 0, map[string]int{"node1": 4}, func(v string) {
		t.Errorf("violation: %s", v)
	})

	acking := false
	acks := 0
	plane.Handle("node1", func(from string, m Message) {
		if !acking || m.Type != Abort {
			return
		}
		acks++
		plane.Send("node1", from, Message{Type: AbortAck, Claim: m.Claim})
	})

	a := &fedApp{
		wlog:     wal.New(nil, wal.Options{Clock: eng.Now}),
		taskByID: make(map[int]*task.Task),
	}
	c := &fclaim{
		id: ClaimID{Driver: 0, Seq: 1}, app: a, task: &task.Task{ID: 9},
		node: "node1", slots: 1, state: csCommitting,
	}
	d.claims[c.id] = c
	d.inflight[c.node]++

	eng.At(0, func() { d.abortClaim(c) })
	eng.At(0.6, func() { d.abortClaim(c) })
	eng.At(1.0, func() { acking = true })
	eng.RunUntil(60)

	if n := d.LiveClaims(); n != 0 {
		t.Fatalf("%d claims still live: the repeat abort killed the retransmit cycle", n)
	}
	if acks == 0 {
		t.Fatal("the agent never saw an ABORT after the drop window")
	}
}
