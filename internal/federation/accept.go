package federation

import (
	"fmt"
	"sort"

	"rupam/internal/simx"
)

// This file is the protocol's table-driven acceptance battery: each
// scenario scripts one message interleaving against a live Agent —
// including the pathological ones (late commits, duplicates, verdicts
// racing aborts, a proposer dying mid-protocol, the agent itself crashing
// amnesiac mid-handshake) — and asserts both the
// exact reply sequence each driver endpoint observes and the agent's
// final accounting. The tables run standalone as unit tests and again
// inside the chaos soak, so a protocol regression fails fast in both.

// AcceptStep scripts one driver-originated message at a virtual time, or
// — when Op is set — one agent lifecycle action instead.
type AcceptStep struct {
	At   float64
	From string // sending driver endpoint, e.g. "driver:0"
	Msg  Message
	// Op, when non-empty, makes this step a lifecycle action on the agent
	// rather than a message: "crash" calls Agent.Crash, "restart" calls
	// Agent.Restart. From and Msg are ignored.
	Op string
}

// AcceptScenario is one scripted interleaving and its expected outcome.
type AcceptScenario struct {
	Name string
	// Capacity is the agent's slot count (default 2).
	Capacity int
	// Steps run in At order over a fault-free plane with default latency.
	Steps []AcceptStep
	// Drivers, when non-empty, is installed as the agent's RESYNC broadcast
	// list (scenarios that script the restart handshake need the agent to
	// know whom to ask; the default empty list closes the resync instantly).
	Drivers []string
	// Replies is the expected reply sequence per driver endpoint, rendered
	// "TYPE claim" in delivery order.
	Replies map[string][]string
	// Reserved and Live are the agent's expected end state.
	Reserved int
	Live     int
	// Expiries/Rejects/Commits are expected agent counters (checked as
	// given; negative means don't care).
	Expiries int
	Rejects  int
	Commits  int
}

// AcceptanceScenarios returns the protocol acceptance battery. Times are
// chosen against the default ProtocolConfig (latency 0.002, AcceptTTL 2).
func AcceptanceScenarios() []AcceptScenario {
	d0, d1 := "driver:0", "driver:1"
	c01 := ClaimID{Driver: 0, Seq: 1}
	c11 := ClaimID{Driver: 1, Seq: 1}
	return []AcceptScenario{
		{
			// The driver's retransmit timeout fires before the ACCEPT
			// arrives; by the time the driver acts on anything the accept
			// TTL has lapsed, so its late COMMIT must be refused — the
			// claim ID is dead and the slots are already back in the pool.
			Name:     "accept-after-timeout-late-commit",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 2.5, From: d0, Msg: Message{Type: Commit, Claim: c01}},
			},
			Replies:  map[string][]string{d0: {"ACCEPT d0:1", "COMMIT_NACK d0:1"}},
			Reserved: 0, Live: 0, Expiries: 1, Rejects: 0, Commits: 0,
		},
		{
			// A duplicated COMMIT (transport dup or retransmit) must re-ack
			// without double-reserving: one claim, one reservation, two
			// acks.
			Name:     "duplicate-commit-single-reservation",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.1, From: d0, Msg: Message{Type: Commit, Claim: c01}},
				{At: 0.2, From: d0, Msg: Message{Type: Commit, Claim: c01}},
			},
			Replies:  map[string][]string{d0: {"ACCEPT d0:1", "COMMIT_ACK d0:1", "COMMIT_ACK d0:1"}},
			Reserved: 1, Live: 1, Expiries: 0, Rejects: 0, Commits: 1,
		},
		{
			// A duplicated PROPOSE of a live claim replays the accept
			// verbatim instead of double-reserving.
			Name:     "duplicate-propose-replays-accept",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.1, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.3, From: d0, Msg: Message{Type: Abort, Claim: c01}},
			},
			Replies:  map[string][]string{d0: {"ACCEPT d0:1", "ACCEPT d0:1", "ABORT_ACK d0:1"}},
			Reserved: 0, Live: 0, Expiries: 0, Rejects: 0, Commits: 0,
		},
		{
			// Arbitration: the node is full with driver 1's uncommitted
			// claim when lower-ID driver 0 proposes. Driver 1 is evicted
			// (REJECT) — and its own ABORT races the eviction. The abort of
			// an already-evicted claim must still ack without double-freeing
			// the slot driver 0 now holds.
			Name:     "reject-racing-abort-no-double-free",
			Capacity: 1,
			Steps: []AcceptStep{
				{At: 0, From: d1, Msg: Message{Type: Propose, Claim: c11, Task: 9, Slots: 1}},
				{At: 0.1, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.102, From: d1, Msg: Message{Type: Abort, Claim: c11}},
				{At: 0.2, From: d0, Msg: Message{Type: Commit, Claim: c01}},
			},
			Replies: map[string][]string{
				d0: {"ACCEPT d0:1", "COMMIT_ACK d0:1"},
				d1: {"ACCEPT d1:1", "REJECT d1:1", "ABORT_ACK d1:1"},
			},
			Reserved: 1, Live: 1, Expiries: 0, Rejects: 0, Commits: 1,
		},
		{
			// Arbitration the other way: the incumbent holds the lower ID,
			// so the newcomer is refused outright and told when to retry.
			Name:     "higher-id-loses-arbitration",
			Capacity: 1,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.1, From: d1, Msg: Message{Type: Propose, Claim: c11, Task: 9, Slots: 1}},
				{At: 0.3, From: d0, Msg: Message{Type: Release, Claim: c01}},
			},
			Replies: map[string][]string{
				d0: {"ACCEPT d0:1", "RELEASE_ACK d0:1"},
				d1: {"REJECT d1:1"},
			},
			Reserved: 0, Live: 0, Expiries: 0, Rejects: 1, Commits: 0,
		},
		{
			// The proposer crashes between PROPOSE and COMMIT: nobody ever
			// commits or aborts the accepted claim. The agent's TTL must
			// return the slots on its own — the crashed driver leaks
			// nothing.
			Name:     "crash-between-propose-and-commit-expires",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
			},
			Replies:  map[string][]string{d0: {"ACCEPT d0:1"}},
			Reserved: 0, Live: 0, Expiries: 1, Rejects: 0, Commits: 0,
		},
		{
			// A COMMIT for a claim the agent never heard of (its PROPOSE
			// was dropped) must be refused, not silently reserved.
			Name:     "commit-unknown-claim-nacked",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Commit, Claim: c01}},
			},
			Replies:  map[string][]string{d0: {"COMMIT_NACK d0:1"}},
			Reserved: 0, Live: 0, Expiries: 0, Rejects: 0, Commits: 0,
		},
		{
			// A tombstoned claim ID is never resurrected: once expired, a
			// stale retransmitted PROPOSE of the same ID gets REJECT, and a
			// fresh ID from the same driver succeeds.
			Name:     "tombstoned-id-stays-dead",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 2.5, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 2.6, From: d0, Msg: Message{Type: Propose, Claim: ClaimID{Driver: 0, Seq: 2}, Task: 7, Slots: 1}},
				{At: 2.8, From: d0, Msg: Message{Type: Abort, Claim: ClaimID{Driver: 0, Seq: 2}}},
			},
			Replies:  map[string][]string{d0: {"ACCEPT d0:1", "REJECT d0:1", "ACCEPT d0:2", "ABORT_ACK d0:2"}},
			Reserved: 0, Live: 0, Expiries: 1, Rejects: 0, Commits: 0,
		},
		{
			// The agent crashes between ACCEPT and COMMIT: the crash wiped
			// the accepted claim, so the driver's COMMIT — stamped with the
			// dead incarnation — must be NACKed, not honored against state
			// that no longer exists. The stale refusal is not a protocol
			// Reject (no tombstone, Rejects stays 0).
			Name:     "agent-crash-between-accept-and-commit",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.05, Op: "crash"},
				{At: 0.1, Op: "restart"},
				{At: 0.2, From: d0, Msg: Message{Type: Commit, Claim: c01}},
			},
			Replies:  map[string][]string{d0: {"ACCEPT d0:1", "COMMIT_NACK d0:1"}},
			Reserved: 0, Live: 0, Expiries: 0, Rejects: 0, Commits: 0,
		},
		{
			// The agent crashes after COMMIT but before the driver sees the
			// COMMIT_ACK. The driver's retransmitted COMMIT carries the old
			// incarnation and is NACKed — the reservation it pinned died with
			// the daemon — so the driver gives up the ID and runs a fresh
			// propose/commit cycle under the new incarnation.
			Name:     "agent-crash-after-commit-before-ack",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.1, From: d0, Msg: Message{Type: Commit, Claim: c01}},
				{At: 0.2, Op: "crash"},
				{At: 0.3, Op: "restart"},
				{At: 0.4, From: d0, Msg: Message{Type: Commit, Claim: c01}},
				{At: 0.5, From: d0, Msg: Message{Type: Propose, Claim: ClaimID{Driver: 0, Seq: 2}, Task: 7, Slots: 1, Inc: 1}},
				{At: 0.6, From: d0, Msg: Message{Type: Commit, Claim: ClaimID{Driver: 0, Seq: 2}, Inc: 1}},
			},
			Replies: map[string][]string{d0: {
				"ACCEPT d0:1", "COMMIT_ACK d0:1", "COMMIT_NACK d0:1", "ACCEPT d0:2", "COMMIT_ACK d0:2",
			}},
			Reserved: 1, Live: 1, Expiries: 0, Rejects: 0, Commits: 2,
		},
		{
			// A restart races a duplicate PROPOSE from before the crash: the
			// duplicate carries incarnation 0 against the restarted agent's
			// incarnation 1, so it is fenced off with a REJECT that never
			// tombstones (Rejects stays 0) — while a fresh proposal under the
			// new incarnation sails through.
			Name:     "restart-racing-duplicate-propose",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.05, Op: "crash"},
				{At: 0.1, Op: "restart"},
				{At: 0.2, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.3, From: d0, Msg: Message{Type: Propose, Claim: ClaimID{Driver: 0, Seq: 2}, Task: 7, Slots: 1, Inc: 1}},
				{At: 0.4, From: d0, Msg: Message{Type: Abort, Claim: ClaimID{Driver: 0, Seq: 2}, Inc: 1}},
			},
			Replies: map[string][]string{d0: {
				"ACCEPT d0:1", "REJECT d0:1", "ACCEPT d0:2", "ABORT_ACK d0:2",
			}},
			Reserved: 0, Live: 0, Expiries: 0, Rejects: 0, Commits: 0,
		},
		{
			// The double-reserve trap the incarnation fence exists for: a
			// COMMIT stamped before the crash arrives after the restarted
			// agent has already re-granted the node's full capacity to a new
			// claim. Honoring it would push reserved past capacity; the fence
			// NACKs it and the reservation count never moves.
			Name:     "pre-incarnation-stale-commit-no-double-reserve",
			Capacity: 2,
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.05, Op: "crash"},
				{At: 0.1, Op: "restart"},
				{At: 0.2, From: d0, Msg: Message{Type: Propose, Claim: ClaimID{Driver: 0, Seq: 2}, Task: 8, Slots: 2, Inc: 1}},
				{At: 0.3, From: d0, Msg: Message{Type: Commit, Claim: ClaimID{Driver: 0, Seq: 2}, Inc: 1}},
				{At: 0.4, From: d0, Msg: Message{Type: Commit, Claim: c01}},
			},
			Replies: map[string][]string{d0: {
				"ACCEPT d0:1", "ACCEPT d0:2", "COMMIT_ACK d0:2", "COMMIT_NACK d0:1",
			}},
			Reserved: 2, Live: 1, Expiries: 0, Rejects: 0, Commits: 1,
		},
		{
			// The RESYNC handshake end to end: a committed claim survives the
			// agent's crash because the driver still holds it — the restarted
			// agent broadcasts RESYNC, the driver answers with the claim, and
			// the reservation is rebuilt (counted as a commit) and later
			// released normally.
			Name:     "resync-rebuilds-committed-claim",
			Capacity: 2,
			Drivers:  []string{d0},
			Steps: []AcceptStep{
				{At: 0, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1}},
				{At: 0.05, From: d0, Msg: Message{Type: Commit, Claim: c01}},
				{At: 0.1, Op: "crash"},
				{At: 0.2, Op: "restart"},
				{At: 0.25, From: d0, Msg: Message{Type: ResyncClaim, Claim: c01, Task: 7, Slots: 1, Inc: 1}},
				{At: 0.3, From: d0, Msg: Message{Type: ResyncEnd, Inc: 1}},
				{At: 0.5, From: d0, Msg: Message{Type: Release, Claim: c01, Inc: 1}},
			},
			Replies: map[string][]string{d0: {
				"ACCEPT d0:1", "COMMIT_ACK d0:1", "RESYNC d0:0", "RELEASE_ACK d0:1",
			}},
			Reserved: 0, Live: 0, Expiries: 0, Rejects: 0, Commits: 2,
		},
		{
			// A driver that never answers the RESYNC: the agent retransmits
			// MaxRetries times, refuses proposals while the handshake is open
			// (with a retry hint, not a tombstoning reject), and opens for
			// business when the resync deadline lapses.
			Name:     "propose-during-resync-refused",
			Capacity: 2,
			Drivers:  []string{d1},
			Steps: []AcceptStep{
				{At: 0.1, Op: "crash"},
				{At: 0.2, Op: "restart"},
				{At: 0.5, From: d0, Msg: Message{Type: Propose, Claim: c01, Task: 7, Slots: 1, Inc: 1}},
				{At: 4.5, From: d0, Msg: Message{Type: Propose, Claim: ClaimID{Driver: 0, Seq: 2}, Task: 7, Slots: 1, Inc: 1}},
			},
			Replies: map[string][]string{
				d0: {"REJECT d0:1", "ACCEPT d0:2"},
				d1: {"RESYNC d0:0", "RESYNC d0:0", "RESYNC d0:0", "RESYNC d0:0", "RESYNC d0:0"},
			},
			Reserved: 0, Live: 0, Expiries: 1, Rejects: 0, Commits: 0,
		},
	}
}

// RunAcceptScenario executes one scenario on a fresh engine and returns
// the list of expectation failures (empty means pass).
func RunAcceptScenario(s AcceptScenario) []string {
	var fails []string
	capacity := s.Capacity
	if capacity == 0 {
		capacity = 2
	}
	eng := simx.NewEngine()
	plane := NewPlane(eng, 1, 0)
	agent := NewAgent(eng, plane, ProtocolConfig{}, "node1", capacity, func(v string) {
		fails = append(fails, "violation: "+v)
	})

	if len(s.Drivers) > 0 {
		agent.SetDrivers(s.Drivers)
	}

	got := make(map[string][]string)
	endpoints := map[string]bool{}
	for _, st := range s.Steps {
		if st.From != "" {
			endpoints[st.From] = true
		}
	}
	for _, ep := range s.Drivers {
		endpoints[ep] = true
	}
	for ep := range s.Replies {
		endpoints[ep] = true
	}
	eps := make([]string, 0, len(endpoints))
	for ep := range endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		ep := ep
		plane.Handle(ep, func(from string, m Message) {
			got[ep] = append(got[ep], fmt.Sprintf("%s %s", m.Type, m.Claim))
		})
	}

	for _, st := range s.Steps {
		st := st
		switch st.Op {
		case "crash":
			eng.At(st.At, agent.Crash)
		case "restart":
			eng.At(st.At, agent.Restart)
		default:
			eng.At(st.At, func() { plane.Send(st.From, agent.Name, st.Msg) })
		}
	}
	eng.Run()

	for _, ep := range eps {
		want := s.Replies[ep]
		if fmt.Sprint(got[ep]) != fmt.Sprint(want) {
			fails = append(fails, fmt.Sprintf("%s replies: got %v, want %v", ep, got[ep], want))
		}
	}
	if agent.Reserved() != s.Reserved {
		fails = append(fails, fmt.Sprintf("reserved: got %d, want %d", agent.Reserved(), s.Reserved))
	}
	if agent.LiveClaims() != s.Live {
		fails = append(fails, fmt.Sprintf("live claims: got %d, want %d", agent.LiveClaims(), s.Live))
	}
	if agent.Expiries != s.Expiries {
		fails = append(fails, fmt.Sprintf("expiries: got %d, want %d", agent.Expiries, s.Expiries))
	}
	if agent.Rejects != s.Rejects {
		fails = append(fails, fmt.Sprintf("rejects: got %d, want %d", agent.Rejects, s.Rejects))
	}
	if agent.Commits != s.Commits {
		fails = append(fails, fmt.Sprintf("commits: got %d, want %d", agent.Commits, s.Commits))
	}
	return fails
}
