package federation

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rupam/internal/simx"
)

// agentClaim is one live reservation at an agent.
type agentClaim struct {
	id        ClaimID
	driver    string // reply address
	task      int
	slots     int
	committed bool
	expiry    *simx.Timer // armed while accepted, cancelled at commit
}

// Agent owns one node's core slots for the placement protocol. It is a
// pure message-driven state machine: PROPOSE reserves (with deterministic
// lowest-ID-wins arbitration when the node is contended), COMMIT pins,
// ABORT/RELEASE free. It never crashes — it models a node-local kernel
// service whose state dies only with the node itself — but it defends
// against every transport pathology: duplicate messages replay the prior
// verdict from a tombstone table, and accepted-but-uncommitted claims
// expire on their own so a proposing driver's death cannot leak slots.
type Agent struct {
	Name     string
	Capacity int

	eng   *simx.Engine
	plane *Plane
	cfg   ProtocolConfig

	claims   map[ClaimID]*agentClaim
	verdicts map[ClaimID]string // tombstones: rejected|expired|evicted|aborted|released

	reserved int
	// MaxReserved is the high-water mark of simultaneously reserved
	// slots; the invariant battery checks it never exceeded Capacity.
	MaxReserved int
	// Accepts/Commits/Rejects/Expiries count protocol outcomes.
	Accepts  int
	Commits  int
	Rejects  int
	Expiries int

	digest    uint64
	violation func(string)
}

// NewAgent creates the agent and registers it on the plane under the node
// name. violation receives invariant breaches (never nil-checked hot).
func NewAgent(eng *simx.Engine, plane *Plane, cfg ProtocolConfig, node string, capacity int, violation func(string)) *Agent {
	a := &Agent{
		Name:      node,
		Capacity:  capacity,
		eng:       eng,
		plane:     plane,
		cfg:       cfg.withDefaults(),
		claims:    make(map[ClaimID]*agentClaim),
		verdicts:  make(map[ClaimID]string),
		digest:    fnv.New64a().Sum64(),
		violation: violation,
	}
	plane.Handle(node, a.handle)
	return a
}

// Reserved returns the currently reserved slot count.
func (a *Agent) Reserved() int { return a.reserved }

// LiveClaims returns how many claims the agent currently holds.
func (a *Agent) LiveClaims() int { return len(a.claims) }

// Digest is a running FNV fingerprint of every state transition, used by
// the soak's bit-identity check.
func (a *Agent) Digest() uint64 { return a.digest }

func (a *Agent) mix(parts ...uint64) {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	write(a.digest)
	for _, p := range parts {
		write(p)
	}
	a.digest = h.Sum64()
}

func (a *Agent) violate(format string, args ...interface{}) {
	if a.violation != nil {
		a.violation(fmt.Sprintf("agent %s: %s", a.Name, fmt.Sprintf(format, args...)))
	}
}

// reserve adjusts the reserved count, enforcing 0 ≤ reserved ≤ Capacity
// at every transition — the "no slot double-committed" invariant held
// online rather than only at run end.
func (a *Agent) reserve(delta int) {
	a.reserved += delta
	if a.reserved < 0 {
		a.violate("reserved went negative (%d)", a.reserved)
	}
	if a.reserved > a.Capacity {
		a.violate("reserved %d exceeds capacity %d", a.reserved, a.Capacity)
	}
	if a.reserved > a.MaxReserved {
		a.MaxReserved = a.reserved
	}
}

func (a *Agent) handle(from string, m Message) {
	a.mix(uint64(m.Type), uint64(m.Claim.Driver), m.Claim.Seq, uint64(a.reserved))
	switch m.Type {
	case Propose:
		a.onPropose(from, m)
	case Commit:
		a.onCommit(from, m)
	case Abort:
		a.onAbort(from, m)
	case Release:
		a.onRelease(from, m)
	}
}

func (a *Agent) onPropose(from string, m Message) {
	if c, ok := a.claims[m.Claim]; ok {
		// Duplicate PROPOSE of a live claim: replay the accept verbatim.
		a.plane.Send(a.Name, from, Message{Type: Accept, Claim: c.id, Expiry: a.eng.Now() + a.cfg.AcceptTTL})
		return
	}
	if _, dead := a.verdicts[m.Claim]; dead {
		// A claim ID is never resurrected: whatever ended it (reject,
		// expiry, abort) is final, so duplicates and stale retransmits
		// deterministically converge on REJECT.
		a.plane.Send(a.Name, from, Message{Type: Reject, Claim: m.Claim, RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
		return
	}
	if m.Slots <= 0 || m.Slots > a.Capacity {
		a.rejectNow(from, m.Claim)
		return
	}
	if a.Capacity-a.reserved < m.Slots {
		// Contended: deterministic arbitration. Accepted-but-uncommitted
		// claims with IDs *greater* than the incoming one are evicted
		// (lowest driver-then-sequence wins) if that frees enough slots;
		// committed claims are untouchable.
		if !a.evictFor(m) {
			a.rejectNow(from, m.Claim)
			return
		}
	}
	c := &agentClaim{id: m.Claim, driver: from, task: m.Task, slots: m.Slots}
	a.claims[c.id] = c
	a.reserve(c.slots)
	a.Accepts++
	expiry := a.eng.Now() + a.cfg.AcceptTTL
	c.expiry = a.eng.Schedule(a.cfg.AcceptTTL, func() { a.expire(c.id) })
	a.plane.Send(a.Name, from, Message{Type: Accept, Claim: c.id, Expiry: expiry})
}

// evictFor tries to free enough slots for m by evicting accepted,
// uncommitted claims that lose the arbitration (their ID is greater than
// the proposer's). Victims are evicted highest-ID-first. Returns whether
// enough slots were freed.
func (a *Agent) evictFor(m Message) bool {
	var losers []*agentClaim
	freeable := a.Capacity - a.reserved
	for _, c := range a.claims {
		if !c.committed && m.Claim.Less(c.id) {
			losers = append(losers, c)
			freeable += c.slots
		}
	}
	if freeable < m.Slots {
		return false
	}
	sort.Slice(losers, func(i, j int) bool { return losers[j].id.Less(losers[i].id) })
	need := m.Slots - (a.Capacity - a.reserved)
	for _, c := range losers {
		if need <= 0 {
			break
		}
		a.drop(c, "evicted")
		need -= c.slots
		a.plane.Send(a.Name, c.driver, Message{Type: Reject, Claim: c.id, RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
	}
	return true
}

func (a *Agent) rejectNow(from string, id ClaimID) {
	a.verdicts[id] = "rejected"
	a.Rejects++
	a.plane.Send(a.Name, from, Message{Type: Reject, Claim: id, RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
}

// drop removes a live claim, frees its slots and tombstones the ID.
func (a *Agent) drop(c *agentClaim, verdict string) {
	c.expiry.Cancel()
	delete(a.claims, c.id)
	a.verdicts[c.id] = verdict
	a.reserve(-c.slots)
}

// expire fires when an accepted claim's TTL lapses without a commit: the
// proposing driver is presumed dead or partitioned, and the slots return
// to the pool. A committed claim never expires.
func (a *Agent) expire(id ClaimID) {
	c, ok := a.claims[id]
	if !ok || c.committed {
		return
	}
	a.mix(uint64(id.Driver), id.Seq, ^uint64(0))
	a.drop(c, "expired")
	a.Expiries++
}

func (a *Agent) onCommit(from string, m Message) {
	c, ok := a.claims[m.Claim]
	if !ok {
		// Expired, evicted, or never heard of: the driver must give up
		// this claim ID and re-propose under a fresh one.
		a.plane.Send(a.Name, from, Message{Type: CommitNack, Claim: m.Claim})
		return
	}
	if !c.committed {
		c.committed = true
		c.expiry.Cancel()
		a.Commits++
	}
	// Idempotent: a duplicate COMMIT re-acks without touching state.
	a.plane.Send(a.Name, from, Message{Type: CommitAck, Claim: c.id})
}

func (a *Agent) onAbort(from string, m Message) {
	if c, ok := a.claims[m.Claim]; ok {
		a.drop(c, "aborted")
	}
	// Unknown (already expired/aborted): still ack — the driver only
	// needs to know the claim is gone.
	a.plane.Send(a.Name, from, Message{Type: AbortAck, Claim: m.Claim})
}

func (a *Agent) onRelease(from string, m Message) {
	if c, ok := a.claims[m.Claim]; ok {
		a.drop(c, "released")
	}
	a.plane.Send(a.Name, from, Message{Type: ReleaseAck, Claim: m.Claim})
}

// CheckEndState appends a violation per leaked resource: at quiesce every
// claim must be gone and every slot free.
func (a *Agent) CheckEndState() {
	if a.reserved != 0 {
		a.violate("%d slots still reserved at end of run", a.reserved)
	}
	if len(a.claims) != 0 {
		ids := make([]string, 0, len(a.claims))
		for id := range a.claims {
			ids = append(ids, id.String())
		}
		sort.Strings(ids)
		a.violate("%d live claims at end of run: %v", len(a.claims), ids)
	}
}
