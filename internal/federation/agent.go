package federation

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rupam/internal/simx"
)

// agentClaim is one live reservation at an agent.
type agentClaim struct {
	id        ClaimID
	driver    string // reply address
	task      int
	slots     int
	committed bool
	expiry    simx.Timer // armed while accepted, cancelled at commit
}

// Agent owns one node's core slots for the placement protocol. It is a
// pure message-driven state machine: PROPOSE reserves (with deterministic
// lowest-ID-wins arbitration when the node is contended), COMMIT pins,
// ABORT/RELEASE free. It defends against every transport pathology —
// duplicate messages replay the prior verdict from a tombstone table, and
// accepted-but-uncommitted claims expire on their own so a proposing
// driver's death cannot leak slots — and it is itself a fault domain: a
// Crash wipes every claim, timer and tombstone (node-local daemon state
// does not survive the process), and a Restart bumps the incarnation,
// fences off pre-crash messages, and rebuilds surviving reservations via
// the RESYNC handshake before accepting new proposals.
type Agent struct {
	Name     string
	Capacity int

	eng   *simx.Engine
	plane *Plane
	cfg   ProtocolConfig

	claims   map[ClaimID]*agentClaim
	verdicts map[ClaimID]string // tombstones: rejected|expired|evicted|aborted|released

	// drivers is the broadcast list for the restart RESYNC handshake,
	// installed once at harness build time.
	drivers []string
	// TaskRunning, if set, reports whether the executor co-located with
	// the agent currently runs an attempt of the task — the cross-check a
	// restarted agent applies to bound RESYNC_CLAIMs before rebuilding
	// their reservations. Nil trusts the drivers' answers.
	TaskRunning func(taskID int) bool

	down bool
	// inc is the incarnation: the crash count, starting at 0, stamped on
	// every outgoing message. PROPOSE/COMMIT carrying any other value are
	// refused — they predate the crash that wiped the state they assume.
	inc uint64
	// Resync-handshake state, live only between Restart and the last
	// RESYNC_END (or the resync deadline).
	resyncing      bool
	resyncWait     map[string]bool // drivers whose RESYNC_END is still missing
	resyncTimers   map[string]simx.Timer
	resyncTries    map[string]int
	resyncDeadline simx.Timer

	reserved int
	// MaxReserved is the high-water mark of simultaneously reserved
	// slots; the invariant battery checks it never exceeded Capacity.
	MaxReserved int
	// Accepts/Commits/Rejects/Expiries count protocol outcomes.
	Accepts  int
	Commits  int
	Rejects  int
	Expiries int
	// Crashes/Restarts/Resyncs count fault episodes; Rebuilt counts claims
	// reconstructed from driver RESYNC answers; StaleRejects counts
	// PROPOSE/COMMITs refused for carrying a dead incarnation or arriving
	// mid-resync.
	Crashes      int
	Restarts     int
	Resyncs      int
	Rebuilt      int
	StaleRejects int

	digest    uint64
	violation func(string)
}

// NewAgent creates the agent and registers it on the plane under the node
// name. violation receives invariant breaches (never nil-checked hot).
func NewAgent(eng *simx.Engine, plane *Plane, cfg ProtocolConfig, node string, capacity int, violation func(string)) *Agent {
	a := &Agent{
		Name:      node,
		Capacity:  capacity,
		eng:       eng,
		plane:     plane,
		cfg:       cfg.withDefaults(),
		claims:    make(map[ClaimID]*agentClaim),
		verdicts:  make(map[ClaimID]string),
		digest:    fnv.New64a().Sum64(),
		violation: violation,
	}
	plane.Handle(node, a.handle)
	return a
}

// Reserved returns the currently reserved slot count.
func (a *Agent) Reserved() int { return a.reserved }

// LiveClaims returns how many claims the agent currently holds.
func (a *Agent) LiveClaims() int { return len(a.claims) }

// SetDrivers installs the driver address list a restarted agent broadcasts
// RESYNC to.
func (a *Agent) SetDrivers(addrs []string) { a.drivers = addrs }

// Incarnation returns the agent's crash count; boot is incarnation 0.
func (a *Agent) Incarnation() uint64 { return a.inc }

// Down reports whether the agent is currently crashed.
func (a *Agent) Down() bool { return a.down }

// Crash kills the agent amnesiac: every claim, expiry timer and tombstone
// is wiped and the reserved slots are implicitly freed — node-local daemon
// state does not survive the process. The plane drops deliveries while the
// agent is down; Restart brings it back under a new incarnation.
func (a *Agent) Crash() {
	if a.down {
		return
	}
	a.down = true
	a.Crashes++
	a.mix(^uint64(1), a.inc)
	a.plane.SetDown(a.Name, true)
	for _, c := range a.claims {
		c.expiry.Cancel()
	}
	a.claims = make(map[ClaimID]*agentClaim)
	a.verdicts = make(map[ClaimID]string)
	a.reserved = 0
	a.stopResync()
}

// Restart brings a crashed agent back with empty state and a bumped
// incarnation. It must not trust that emptiness: committed claims may
// still back attempts that survived the crash (only the daemon died), so
// it broadcasts Resync(inc) to every driver and rebuilds reservations from
// their answers. Until the handshake closes every PROPOSE is refused with
// a retry hint — accepting on a partial view could over-commit the node
// once the rebuilt claims land.
func (a *Agent) Restart() {
	if !a.down {
		return
	}
	a.down = false
	a.inc++
	a.Restarts++
	a.mix(^uint64(2), a.inc)
	a.plane.SetDown(a.Name, false)
	a.resyncing = true
	if len(a.drivers) == 0 {
		a.finishResync()
		return
	}
	a.resyncWait = make(map[string]bool, len(a.drivers))
	a.resyncTimers = make(map[string]simx.Timer, len(a.drivers))
	a.resyncTries = make(map[string]int, len(a.drivers))
	for _, addr := range a.drivers {
		a.resyncWait[addr] = true
		a.sendResync(addr)
	}
	a.resyncDeadline = a.eng.Schedule(a.cfg.ResyncTimeout, a.finishResync)
}

// sendResync transmits one RESYNC and arms the next bounded retransmit
// (try i waits RetryTimeout×i, like the drivers' cycles). After MaxRetries
// the driver is presumed dead; the resync deadline closes the handshake
// without it.
func (a *Agent) sendResync(addr string) {
	a.plane.Send(a.Name, addr, Message{Type: Resync, Inc: a.inc})
	a.resyncTries[addr]++
	tries := a.resyncTries[addr]
	if tries >= a.cfg.MaxRetries {
		return
	}
	a.resyncTimers[addr] = a.eng.Schedule(a.cfg.RetryTimeout*float64(tries), func() {
		if a.down || !a.resyncing || !a.resyncWait[addr] {
			return
		}
		a.sendResync(addr)
	})
}

// stopResync tears down the handshake timers without closing the episode.
func (a *Agent) stopResync() {
	a.resyncing = false
	for _, t := range a.resyncTimers {
		t.Cancel()
	}
	a.resyncTimers = nil
	a.resyncWait = nil
	a.resyncTries = nil
	a.resyncDeadline.Cancel()
	a.resyncDeadline = simx.Timer{}
}

// finishResync closes the handshake: every driver answered, or the
// deadline lapsed (a crashed driver cannot answer; it learns the new
// incarnation from reply stamps once it recovers). Late RESYNC_CLAIMs for
// the current incarnation still rebuild — they only heal an undercount.
func (a *Agent) finishResync() {
	if !a.resyncing {
		return
	}
	a.stopResync()
	a.Resyncs++
	a.mix(^uint64(3), a.inc, uint64(a.reserved))
}

// Digest is a running FNV fingerprint of every state transition, used by
// the soak's bit-identity check.
func (a *Agent) Digest() uint64 { return a.digest }

func (a *Agent) mix(parts ...uint64) {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	write(a.digest)
	for _, p := range parts {
		write(p)
	}
	a.digest = h.Sum64()
}

func (a *Agent) violate(format string, args ...interface{}) {
	if a.violation != nil {
		a.violation(fmt.Sprintf("agent %s: %s", a.Name, fmt.Sprintf(format, args...)))
	}
}

// reserve adjusts the reserved count, enforcing 0 ≤ reserved ≤ Capacity
// at every transition — the "no slot double-committed" invariant held
// online rather than only at run end.
func (a *Agent) reserve(delta int) {
	a.reserved += delta
	if a.reserved < 0 {
		a.violate("reserved went negative (%d)", a.reserved)
	}
	if a.reserved > a.Capacity {
		a.violate("reserved %d exceeds capacity %d", a.reserved, a.Capacity)
	}
	if a.reserved > a.MaxReserved {
		a.MaxReserved = a.reserved
	}
}

func (a *Agent) handle(from string, m Message) {
	if a.down {
		// A dead daemon's socket: the plane normally drops these, but a
		// delivery already in flight when the crash struck lands here.
		return
	}
	a.mix(uint64(m.Type), uint64(m.Claim.Driver), m.Claim.Seq, uint64(a.reserved))
	switch m.Type {
	case Propose:
		a.onPropose(from, m)
	case Commit:
		a.onCommit(from, m)
	case Abort:
		a.onAbort(from, m)
	case Release:
		a.onRelease(from, m)
	case ResyncClaim:
		a.onResyncClaim(from, m)
	case ResyncEnd:
		a.onResyncEnd(from, m)
	}
}

func (a *Agent) onPropose(from string, m Message) {
	if m.Inc != a.inc {
		// Incarnation fence: the proposal predates a crash (or carries a
		// recovered driver's stale view). Refuse without tombstoning — the
		// claim was never accepted under this incarnation — and let the
		// reply's stamp teach the sender where the agent is now.
		a.StaleRejects++
		a.plane.Send(a.Name, from, Message{Type: Reject, Claim: m.Claim, Inc: a.inc,
			RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
		return
	}
	if a.resyncing {
		// Mid-resync the reserved count is a lower bound, not the truth:
		// accepting now could over-commit the node once the rebuilt claims
		// land. Refuse with a hint to retry after the window closes.
		a.StaleRejects++
		a.plane.Send(a.Name, from, Message{Type: Reject, Claim: m.Claim, Inc: a.inc,
			RetryAfter: a.eng.Now() + a.cfg.ResyncTimeout})
		return
	}
	if c, ok := a.claims[m.Claim]; ok {
		// Duplicate PROPOSE of a live claim: replay the accept verbatim.
		a.plane.Send(a.Name, from, Message{Type: Accept, Claim: c.id, Inc: a.inc, Expiry: a.eng.Now() + a.cfg.AcceptTTL})
		return
	}
	if _, dead := a.verdicts[m.Claim]; dead {
		// A claim ID is never resurrected: whatever ended it (reject,
		// expiry, abort) is final, so duplicates and stale retransmits
		// deterministically converge on REJECT.
		a.plane.Send(a.Name, from, Message{Type: Reject, Claim: m.Claim, Inc: a.inc, RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
		return
	}
	if m.Slots <= 0 || m.Slots > a.Capacity {
		a.rejectNow(from, m.Claim)
		return
	}
	if a.Capacity-a.reserved < m.Slots {
		// Contended: deterministic arbitration. Accepted-but-uncommitted
		// claims with IDs *greater* than the incoming one are evicted
		// (lowest driver-then-sequence wins) if that frees enough slots;
		// committed claims are untouchable.
		if !a.evictFor(m) {
			a.rejectNow(from, m.Claim)
			return
		}
	}
	c := &agentClaim{id: m.Claim, driver: from, task: m.Task, slots: m.Slots}
	a.claims[c.id] = c
	a.reserve(c.slots)
	a.Accepts++
	expiry := a.eng.Now() + a.cfg.AcceptTTL
	c.expiry = a.eng.Schedule(a.cfg.AcceptTTL, func() { a.expire(c.id) })
	a.plane.Send(a.Name, from, Message{Type: Accept, Claim: c.id, Inc: a.inc, Expiry: expiry})
}

// evictFor tries to free enough slots for m by evicting accepted,
// uncommitted claims that lose the arbitration (their ID is greater than
// the proposer's). Victims are evicted highest-ID-first. Returns whether
// enough slots were freed.
func (a *Agent) evictFor(m Message) bool {
	var losers []*agentClaim
	freeable := a.Capacity - a.reserved
	for _, c := range a.claims {
		if !c.committed && m.Claim.Less(c.id) {
			losers = append(losers, c)
			freeable += c.slots
		}
	}
	if freeable < m.Slots {
		return false
	}
	sort.Slice(losers, func(i, j int) bool { return losers[j].id.Less(losers[i].id) })
	need := m.Slots - (a.Capacity - a.reserved)
	for _, c := range losers {
		if need <= 0 {
			break
		}
		a.drop(c, "evicted")
		need -= c.slots
		a.plane.Send(a.Name, c.driver, Message{Type: Reject, Claim: c.id, Inc: a.inc, RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
	}
	return true
}

func (a *Agent) rejectNow(from string, id ClaimID) {
	a.verdicts[id] = "rejected"
	a.Rejects++
	a.plane.Send(a.Name, from, Message{Type: Reject, Claim: id, Inc: a.inc, RetryAfter: a.eng.Now() + a.cfg.RetryTimeout})
}

// drop removes a live claim, frees its slots and tombstones the ID.
func (a *Agent) drop(c *agentClaim, verdict string) {
	c.expiry.Cancel()
	delete(a.claims, c.id)
	a.verdicts[c.id] = verdict
	a.reserve(-c.slots)
}

// expire fires when an accepted claim's TTL lapses without a commit: the
// proposing driver is presumed dead or partitioned, and the slots return
// to the pool. A committed claim never expires.
func (a *Agent) expire(id ClaimID) {
	c, ok := a.claims[id]
	if !ok || c.committed {
		return
	}
	a.mix(uint64(id.Driver), id.Seq, ^uint64(0))
	a.drop(c, "expired")
	a.Expiries++
}

func (a *Agent) onCommit(from string, m Message) {
	if m.Inc != a.inc {
		// Incarnation fence: a COMMIT stamped with a dead incarnation must
		// not pin anything — whatever ACCEPT it chases was wiped by the
		// crash, and honoring it here would double-reserve the slots the
		// resync rebuilt for someone else. NACK so the driver gives up the
		// ID and re-proposes.
		a.StaleRejects++
		a.plane.Send(a.Name, from, Message{Type: CommitNack, Claim: m.Claim, Inc: a.inc})
		return
	}
	c, ok := a.claims[m.Claim]
	if !ok {
		// Expired, evicted, or never heard of: the driver must give up
		// this claim ID and re-propose under a fresh one.
		a.plane.Send(a.Name, from, Message{Type: CommitNack, Claim: m.Claim, Inc: a.inc})
		return
	}
	if !c.committed {
		c.committed = true
		c.expiry.Cancel()
		a.Commits++
	}
	// Idempotent: a duplicate COMMIT re-acks without touching state.
	a.plane.Send(a.Name, from, Message{Type: CommitAck, Claim: c.id, Inc: a.inc})
}

// Aborts and releases are acked regardless of incarnation: both only ever
// free resources, so acting on a stale one is safe (the claim is simply
// unknown after a crash) and refusing it would wedge the sender's
// must-terminate ack cycle.

func (a *Agent) onAbort(from string, m Message) {
	if c, ok := a.claims[m.Claim]; ok {
		a.drop(c, "aborted")
	} else {
		// Unknown (already expired/aborted, or wiped by a crash): still ack —
		// the driver only needs to know the claim is gone — but tombstone the
		// ID anyway. The ack finishes the claim driver-side, so a delayed
		// RESYNC_CLAIM answer reordered behind this abort must not resurrect
		// a reservation nobody will ever free.
		a.verdicts[m.Claim] = "aborted"
	}
	a.plane.Send(a.Name, from, Message{Type: AbortAck, Claim: m.Claim, Inc: a.inc})
}

func (a *Agent) onRelease(from string, m Message) {
	if c, ok := a.claims[m.Claim]; ok {
		a.drop(c, "released")
	} else {
		// Same tombstone-the-unknown rule as onAbort, and for the same
		// reordering race against a late RESYNC_CLAIM.
		a.verdicts[m.Claim] = "released"
	}
	a.plane.Send(a.Name, from, Message{Type: ReleaseAck, Claim: m.Claim, Inc: a.inc})
}

// onResyncClaim rebuilds one committed reservation from a driver's RESYNC
// answer. Rebuilds are idempotent (duplicate answers dedup on claim ID),
// tombstone-checked (a claim resolved since the resync must not be
// resurrected by a delayed duplicate), capacity-bounded, and — for bound
// claims — cross-checked against the executor's running attempts. Any
// refusal NACKs so the driver finishes the claim and places elsewhere.
func (a *Agent) onResyncClaim(from string, m Message) {
	if m.Inc != a.inc {
		return // an answer meant for a previous incarnation's resync
	}
	if _, ok := a.claims[m.Claim]; ok {
		return // duplicate answer: the claim is already rebuilt
	}
	if _, dead := a.verdicts[m.Claim]; dead {
		return // resolved since the resync; a dead ID stays dead
	}
	if m.Slots <= 0 || a.Capacity-a.reserved < m.Slots {
		a.plane.Send(a.Name, from, Message{Type: CommitNack, Claim: m.Claim, Inc: a.inc})
		return
	}
	if m.Bound && a.TaskRunning != nil && !a.TaskRunning(m.Task) {
		// The driver says the claim backs a live attempt, but the executor
		// runs no such task: the attempt died while the agent was down.
		// Refuse so the driver releases instead of leaking a reservation
		// with nothing behind it.
		a.plane.Send(a.Name, from, Message{Type: CommitNack, Claim: m.Claim, Inc: a.inc})
		return
	}
	// Rebuilt claims are committed — no expiry timer; only an explicit
	// RELEASE/ABORT frees them, exactly like a claim committed normally.
	c := &agentClaim{id: m.Claim, driver: from, task: m.Task, slots: m.Slots, committed: true}
	a.claims[c.id] = c
	a.reserve(c.slots)
	a.Rebuilt++
	a.Commits++
}

func (a *Agent) onResyncEnd(from string, m Message) {
	if m.Inc != a.inc || !a.resyncing || !a.resyncWait[from] {
		return
	}
	delete(a.resyncWait, from)
	a.resyncTimers[from].Cancel()
	if len(a.resyncWait) == 0 {
		a.finishResync()
	}
}

// CheckEndState appends a violation per leaked resource: at quiesce every
// claim must be gone and every slot free.
func (a *Agent) CheckEndState() {
	if a.reserved != 0 {
		a.violate("%d slots still reserved at end of run", a.reserved)
	}
	if len(a.claims) != 0 {
		ids := make([]string, 0, len(a.claims))
		for id := range a.claims {
			ids = append(ids, id.String())
		}
		sort.Strings(ids)
		a.violate("%d live claims at end of run: %v", len(a.claims), ids)
	}
}
