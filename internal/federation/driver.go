package federation

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rupam/internal/executor"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// claimState is a driver-side claim's lifecycle position.
type claimState int

const (
	csProposing  claimState = iota // PROPOSE sent, awaiting ACCEPT/REJECT
	csCommitting                   // ACCEPT received (WAL: committed), COMMIT in flight
	csReady                        // COMMIT_ACK received; the scheduler may launch
	csBound                        // the task attempt launched on the claim
	csReleasing                    // RELEASE in flight (attempt over / claim stale)
	csAborting                     // ABORT in flight (reject path or recovery)
)

func (s claimState) String() string {
	switch s {
	case csProposing:
		return "proposing"
	case csCommitting:
		return "committing"
	case csReady:
		return "ready"
	case csBound:
		return "bound"
	case csReleasing:
		return "releasing"
	case csAborting:
		return "aborting"
	}
	return fmt.Sprintf("claimState(%d)", int(s))
}

// fclaim is one driver-side placement claim.
type fclaim struct {
	id    ClaimID
	app   *fedApp
	task  *task.Task
	node  string
	slots int
	state claimState
	// inc is the agent incarnation this claim was last negotiated with;
	// claims whose incarnation falls behind the agent's are orphans — the
	// state they assume died in the agent's crash.
	inc uint64

	attempts int // sends so far in the current retransmit cycle
	cycle    int // completed cycles (abort/release re-arm with growing pauses)
	timer    simx.Timer
}

// fedApp couples one application runtime to its federated driver.
type fedApp struct {
	rt       *spark.Runtime
	wlog     *wal.Log
	taskByID map[int]*task.Task
	done     bool
}

// Driver is the federation side of one scheduler shard: it owns one or
// more application runtimes, arbitrates their placements through the
// agent protocol (implementing spark.PlacementBroker per app), and pays a
// serial dispatch cost per protocol action — the same per-task overhead
// that caps a centralized dispatch loop, now paid per shard so aggregate
// placement throughput scales with the driver count.
type Driver struct {
	ID   int
	Addr string

	eng   *simx.Engine
	plane *Plane
	cfg   ProtocolConfig

	apps []*fedApp
	seq  uint64

	claims         map[ClaimID]*fclaim
	byTask         map[int]*fclaim // the task's unbound claim (proposing|committing|ready)
	inflight       map[string]int  // live claims per node
	nodeCap        map[string]int
	noProposeUntil map[string]float64
	// agentInc is the last-known incarnation per agent, learned from reply
	// stamps and RESYNC broadcasts. Protocol memory: wiped by a driver
	// crash and re-learned from the agents' reply stamps.
	agentInc map[string]uint64
	// deadAgents fences nodes whose agent died for good (permanent node
	// loss, spot reclamation): no proposals, and claims there resolve
	// locally — no ack is ever coming. Unlike agentInc this survives a
	// driver crash: it models cluster-membership knowledge the recovered
	// driver re-fetches from the resource manager, not protocol state.
	// A RESYNC from the node lifts the fence.
	deadAgents map[string]bool

	down       bool
	gen        int // bumped at crash; invalidates queued dispatch actions
	busyUntil  float64
	sweepArmed bool

	// BusySeconds is the total serial dispatch time this driver spent;
	// max over drivers bounds the run's placement throughput.
	BusySeconds float64
	// Commits counts claims that reached Ready (committed placements).
	Commits int
	// Crashes/Recoveries count this driver's fault episodes.
	Crashes    int
	Recoveries int

	violation func(string)
}

// NewDriver creates driver id and registers it on the plane as
// "driver:<id>".
func NewDriver(eng *simx.Engine, plane *Plane, cfg ProtocolConfig, id int, nodeCap map[string]int, violation func(string)) *Driver {
	d := &Driver{
		ID:             id,
		Addr:           fmt.Sprintf("driver:%d", id),
		eng:            eng,
		plane:          plane,
		cfg:            cfg.withDefaults(),
		claims:         make(map[ClaimID]*fclaim),
		byTask:         make(map[int]*fclaim),
		inflight:       make(map[string]int),
		nodeCap:        nodeCap,
		noProposeUntil: make(map[string]float64),
		agentInc:       make(map[string]uint64),
		deadAgents:     make(map[string]bool),
		violation:      violation,
	}
	plane.Handle(d.Addr, d.onMessage)
	return d
}

func (d *Driver) violate(format string, args ...interface{}) {
	if d.violation != nil {
		d.violation(fmt.Sprintf("%s: %s", d.Addr, fmt.Sprintf(format, args...)))
	}
}

// Adopt attaches an application runtime to this driver, wiring the
// placement broker and lifecycle hooks. Call before rt.Start.
func (d *Driver) Adopt(rt *spark.Runtime, wlog *wal.Log, app *task.Application) *fedApp {
	a := &fedApp{rt: rt, wlog: wlog, taskByID: make(map[int]*task.Task)}
	for _, t := range app.AllTasks() {
		a.taskByID[t.ID] = t
	}
	d.apps = append(d.apps, a)
	rt.SetPlacementBroker(&appBroker{d: d, a: a})
	rt.OnAttemptEnd = func(t *task.Task, node string, out executor.Outcome) {
		d.onAttemptEnd(a, t, node)
	}
	rt.OnRecovered = func() { d.onAppRecovered(a) }
	return a
}

// appBroker adapts one runtime's PlacementBroker calls onto its driver.
type appBroker struct {
	d *Driver
	a *fedApp
}

func (b *appBroker) AdmitPlacement(t *task.Task, node string) bool {
	return b.d.admitPlacement(b.a, t, node)
}

func (b *appBroker) PlacementStarted(t *task.Task, node string) {
	b.d.placementStarted(b.a, t, node)
}

// LiveClaims returns the driver's current claim count (tests).
func (d *Driver) LiveClaims() int { return len(d.claims) }

// enqueue serializes a protocol action through the driver's single
// dispatch loop: each action starts when the previous one's cost is paid.
// This is the model's scalability story — the per-action cost is constant,
// so N drivers sustain N× the placement rate of one.
func (d *Driver) enqueue(fn func()) {
	if d.down {
		return
	}
	start := d.eng.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.cfg.DispatchCost
	d.BusySeconds += d.cfg.DispatchCost
	gen := d.gen
	d.eng.At(d.busyUntil, func() {
		if d.down || d.gen != gen {
			return
		}
		fn()
	})
}

// admitPlacement is the Launch-time arbitration gate. It returns true
// only when the task holds a Ready (committed) claim for exactly this
// node; anything else refuses the launch, usually after starting the
// claim machinery that will make a later scheduling round succeed.
func (d *Driver) admitPlacement(a *fedApp, t *task.Task, node string) bool {
	if d.down {
		return false
	}
	now := d.eng.Now()
	if c := d.byTask[t.ID]; c != nil {
		if c.node == node {
			return c.state == csReady // in-flight claims refuse until committed
		}
		// The task already holds a claim elsewhere. Refuse — chasing the
		// scheduler's per-round node preference would release and
		// re-propose every round (livelock); if the claimed node never
		// takes the task, the stale-claim TTL recycles the slots.
		return false
	}
	if d.deadAgents[node] {
		return false // the node's agent is gone for good; place elsewhere
	}
	if d.noProposeUntil[node] > now {
		return false
	}
	if cap := d.nodeCap[node]; cap > 0 && d.inflight[node] >= cap {
		return false // the node is fully claimed already
	}
	d.seq++
	c := &fclaim{
		id:    ClaimID{Driver: d.ID, Seq: d.seq},
		app:   a,
		task:  t,
		node:  node,
		slots: 1,
		state: csProposing,
		inc:   d.agentInc[node],
	}
	d.claims[c.id] = c
	d.byTask[t.ID] = c
	d.inflight[node]++
	a.wlog.Append(wal.Record{Kind: wal.KindClaimProposed, Key: c.id.String(),
		Task: t.ID, Node: node, Slots: c.slots})
	d.enqueue(func() { d.send(c, Propose) })
	return false
}

// placementStarted binds the Ready claim the launch consumed. A launch
// with no Ready claim is a protocol violation — the exactly-once-launch
// invariant is enforced here, not inferred afterwards.
func (d *Driver) placementStarted(a *fedApp, t *task.Task, node string) {
	c := d.byTask[t.ID]
	if c == nil || c.state != csReady || c.node != node {
		d.violate("launch of task %d on %s without a ready claim (have %v)", t.ID, node, c)
		return
	}
	c.state = csBound
	c.timer.Cancel()
	delete(d.byTask, t.ID) // a bound claim no longer blocks new proposals
	a.wlog.Append(wal.Record{Kind: wal.KindClaimBound, Key: c.id.String()})
	d.armSweep()
}

// onAttemptEnd releases the bound claim backing a finished attempt.
func (d *Driver) onAttemptEnd(a *fedApp, t *task.Task, node string) {
	if c := d.boundClaim(t.ID, node); c != nil {
		d.releaseClaim(c)
	}
}

// boundClaim finds the (lowest-ID) bound claim for a task on a node.
func (d *Driver) boundClaim(taskID int, node string) *fclaim {
	var best *fclaim
	for _, c := range d.claims {
		if c.state == csBound && c.task.ID == taskID && c.node == node {
			if best == nil || c.id.Less(best.id) {
				best = c
			}
		}
	}
	return best
}

// releaseClaim moves a claim onto its terminal send cycle: RELEASE for
// claims the agent has committed, ABORT otherwise.
func (d *Driver) releaseClaim(c *fclaim) {
	if d.byTask[c.task.ID] == c {
		delete(d.byTask, c.task.ID)
	}
	if d.deadAgents[c.node] {
		// The agent died with its node: no ack is ever coming, and its
		// slot accounting is gone. Resolve locally instead of cycling.
		kind := wal.KindClaimAborted
		if c.state == csBound || c.state == csReleasing {
			kind = wal.KindClaimReleased
		}
		d.finishClaim(c, kind)
		return
	}
	switch c.state {
	case csReleasing, csAborting:
		// Already on a terminal cycle — and crucially, before this point
		// nothing may touch its retransmit timer: cancelling it here would
		// orphan the cycle mid-flight (no further send ever re-arms it)
		// and leak the reservation if the in-flight message is dropped.
		return
	}
	c.timer.Cancel()
	if c.state == csProposing {
		// No grant observed: give up the ID. If the agent did accept, its
		// TTL returns the slots; the tombstone makes any late COMMIT moot.
		d.finishClaim(c, wal.KindClaimAborted)
		return
	}
	c.state = csReleasing // csCommitting, csReady or csBound
	c.attempts, c.cycle = 0, 0
	d.enqueue(func() { d.send(c, Release) })
}

// abortClaim puts a claim on the ABORT cycle (recovery path).
func (d *Driver) abortClaim(c *fclaim) {
	if d.byTask[c.task.ID] == c {
		delete(d.byTask, c.task.ID)
	}
	if d.deadAgents[c.node] {
		d.finishClaim(c, wal.KindClaimAborted)
		return
	}
	if c.state == csAborting || c.state == csReleasing {
		return // terminal cycle in flight; leave its timer alone
	}
	c.timer.Cancel()
	c.state = csAborting
	c.attempts, c.cycle = 0, 0
	d.enqueue(func() { d.send(c, Abort) })
}

// finishClaim writes the claim's terminal WAL record and forgets it.
func (d *Driver) finishClaim(c *fclaim, kind string) {
	c.timer.Cancel()
	if d.byTask[c.task.ID] == c {
		delete(d.byTask, c.task.ID)
	}
	if _, ok := d.claims[c.id]; ok {
		delete(d.claims, c.id)
		d.inflight[c.node]--
		if d.inflight[c.node] < 0 {
			d.violate("inflight count for %s went negative", c.node)
		}
	}
	c.app.wlog.Append(wal.Record{Kind: kind, Key: c.id.String()})
}

// send transmits the message type for the claim's current cycle and arms
// the retransmit timer. Propose cycles exhaust into a local abort (the
// agent's TTL cleans up any unobserved grant); commit cycles fall back to
// an explicit abort (the agent may hold a committed claim); abort and
// release cycles re-arm with a growing pause — they must land eventually
// or slots would leak, and fault windows are finite.
func (d *Driver) send(c *fclaim, mt MsgType) {
	if d.down {
		return
	}
	if cur, ok := d.claims[c.id]; !ok || cur != c {
		return // the claim resolved while this send was queued
	}
	switch {
	case mt == Propose && c.state != csProposing,
		mt == Commit && c.state != csCommitting,
		mt == Release && c.state != csReleasing,
		mt == Abort && c.state != csAborting:
		return // state moved on; the queued send is stale
	}
	m := Message{Type: mt, Claim: c.id, Inc: d.agentInc[c.node]}
	if mt == Propose {
		m.Task = c.task.ID
		m.Slots = c.slots
		// A retransmitted PROPOSE is a fresh proposal to whatever
		// incarnation now runs the node.
		c.inc = m.Inc
	}
	d.plane.Send(d.Addr, c.node, m)
	c.attempts++
	wait := d.cfg.RetryTimeout * float64(c.attempts)
	c.timer.Cancel()
	c.timer = d.eng.Schedule(wait, func() { d.onTimeout(c, mt) })
}

func (d *Driver) onTimeout(c *fclaim, mt MsgType) {
	if d.down {
		return
	}
	if cur, ok := d.claims[c.id]; !ok || cur != c {
		return
	}
	if c.attempts < d.cfg.MaxRetries {
		d.enqueue(func() { d.send(c, mt) })
		return
	}
	switch mt {
	case Propose:
		// The node is unreachable (agent down or partitioned); give up the
		// ID and back the node off for a full accept-TTL so the scheduler
		// re-proposes elsewhere first instead of hammering a dead daemon.
		// Any grant in flight dies at the agent's TTL.
		if until := d.eng.Now() + d.cfg.AcceptTTL; until > d.noProposeUntil[c.node] {
			d.noProposeUntil[c.node] = until
		}
		d.finishClaim(c, wal.KindClaimAborted)
	case Commit:
		// The agent may or may not hold the committed claim; only an
		// explicit acked abort resolves the ambiguity.
		d.abortClaim(c)
	case Abort, Release:
		// Must eventually land. Fresh cycle after a growing pause.
		c.cycle++
		shift := c.cycle
		if shift > 6 {
			shift = 6
		}
		pause := d.cfg.RetryTimeout * float64(int(1)<<shift)
		c.attempts = 0
		c.timer.Cancel()
		c.timer = d.eng.Schedule(pause, func() {
			if d.down {
				return
			}
			d.enqueue(func() { d.send(c, mt) })
		})
	}
}

// onMessage is the driver's plane handler; every verdict pays the serial
// dispatch cost before taking effect.
func (d *Driver) onMessage(from string, m Message) {
	d.enqueue(func() { d.handle(from, m) })
}

func (d *Driver) handle(from string, m Message) {
	if m.Type == Resync {
		d.onResync(from, m)
		return
	}
	if m.Inc > d.agentInc[from] {
		// A reply stamped with an incarnation newer than our view: the
		// agent crashed and restarted behind our back (its RESYNC never
		// reached us, or we were down for it). Adopt the view and reconcile
		// the claims the old incarnation took with it.
		d.observeIncarnation(from, m.Inc, false)
	}
	c, ok := d.claims[m.Claim]
	if !ok {
		return // verdict for a claim we already resolved (dup or stale)
	}
	switch m.Type {
	case Accept:
		if c.state != csProposing {
			return // duplicate accept
		}
		c.state = csCommitting
		c.inc = m.Inc
		// Logged *before* the commit send: a crash from here on must
		// chase this claim, because the agent holds (or will hold) it
		// beyond any TTL once the commit lands.
		c.app.wlog.Append(wal.Record{Kind: wal.KindClaimCommitted, Key: c.id.String()})
		c.attempts = 0
		d.send(c, Commit)
	case Reject:
		if c.state != csProposing {
			return // stale reject (e.g. raced our abort); the cycle resolves it
		}
		if m.RetryAfter > d.noProposeUntil[c.node] {
			d.noProposeUntil[c.node] = m.RetryAfter
		}
		// Terminal verdict: the agent tombstoned the ID, nothing to chase.
		d.finishClaim(c, wal.KindClaimAborted)
	case CommitAck:
		if c.state != csCommitting {
			return // duplicate ack
		}
		c.state = csReady
		c.timer.Cancel()
		d.Commits++
		// A Ready claim the scheduler never consumes is released after
		// the stale TTL so contended slots recirculate.
		c.timer = d.eng.Schedule(d.cfg.StaleClaimTTL, func() {
			if cur, ok := d.claims[c.id]; ok && cur == c && c.state == csReady && !d.down {
				d.releaseClaim(c)
			}
		})
		// The slot is secured; let the owning app's scheduler retry the
		// placement it was refused.
		if !c.app.rt.Done() && !c.app.rt.Crashed() {
			c.app.rt.Scheduler().Schedule()
		}
	case CommitNack:
		switch c.state {
		case csCommitting:
			// The agent lost the claim (TTL, eviction, or a crash between
			// the accept and the commit): terminal, nothing to chase.
			d.finishClaim(c, wal.KindClaimAborted)
		case csReady:
			// A restarted agent refused to rebuild the reservation
			// (capacity, or a tombstone): the committed slots are gone.
			d.finishClaim(c, wal.KindClaimAborted)
		case csBound:
			// Refused rebuild of a bound claim: the attempt it backed died
			// while the agent was down, so there is nothing left to back.
			d.finishClaim(c, wal.KindClaimReleased)
		}
	case AbortAck:
		if c.state != csAborting {
			return
		}
		d.finishClaim(c, wal.KindClaimAborted)
	case ReleaseAck:
		if c.state != csReleasing {
			return
		}
		d.finishClaim(c, wal.KindClaimReleased)
	}
}

// onResync answers a restarted agent's RESYNC: adopt the new incarnation,
// reconcile local claim state with the wipe, and report every claim that
// should survive — bound claims backing running attempts and committed
// (ready) reservations the scheduler may still consume — then close with
// RESYNC_END. Re-answering a duplicate RESYNC is harmless: the agent
// dedups rebuilds on claim ID.
func (d *Driver) onResync(from string, m Message) {
	if m.Inc < d.agentInc[from] {
		return // a delayed broadcast from an incarnation already superseded
	}
	if m.Inc > d.agentInc[from] {
		d.observeIncarnation(from, m.Inc, true)
	}
	// The daemon is demonstrably back: lift any membership fence so the
	// scheduler may propose to the node again.
	delete(d.deadAgents, from)
	var report []*fclaim
	for _, c := range d.claims {
		if c.node == from && (c.state == csBound || c.state == csReady) && c.inc == m.Inc {
			report = append(report, c)
		}
	}
	sort.Slice(report, func(i, j int) bool { return report[i].id.Less(report[j].id) })
	for _, c := range report {
		d.plane.Send(d.Addr, from, Message{Type: ResyncClaim, Claim: c.id, Inc: m.Inc,
			Task: c.task.ID, Slots: c.slots, Bound: c.state == csBound})
	}
	d.plane.Send(d.Addr, from, Message{Type: ResyncEnd, Inc: m.Inc})
}

// observeIncarnation adopts a higher incarnation for the node's agent and
// reconciles the claims the old incarnation orphaned: its accepted and
// committed state died in the crash, so send cycles chasing it would spin
// forever. Bound and ready claims survive only when the observation came
// through a RESYNC — they are about to be reported and rebuilt; learned
// from a stray reply stamp instead, they run an explicit acked release
// cycle rather than resolving locally. The distinction matters after the
// *driver's* own crash: refolded claims carry a guessed incarnation
// (agentInc died with the process), so an apparent orphan may be a live
// claim the agent still holds under its current incarnation — negotiated
// after the agent's last crash, forgotten across the driver's. Only an
// acked RELEASE/ABORT (which agents honor regardless of incarnation)
// resolves both worlds without leaking the agent's slots. Bound attempts
// run on either way — only the daemon died, not the executor.
func (d *Driver) observeIncarnation(node string, inc uint64, viaResync bool) {
	d.agentInc[node] = inc
	var orphans []*fclaim
	for _, c := range d.claims {
		if c.node == node && c.inc < inc {
			orphans = append(orphans, c)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id.Less(orphans[j].id) })
	for _, c := range orphans {
		c.inc = inc
		switch c.state {
		case csProposing:
			// The retransmit cycle re-proposes to the new incarnation.
		case csReady, csBound:
			if viaResync {
				continue // about to be reported and rebuilt
			}
			d.releaseClaim(c)
		case csCommitting:
			// The accept this commit chases either died in the agent's crash
			// or (post-driver-crash amnesia) never existed under the old
			// view; an acked abort resolves both without leaking.
			d.abortClaim(c)
		case csReleasing, csAborting:
			// Already on a terminal cycle; it re-arms until acked, and the
			// agent acks these regardless of incarnation.
		}
	}
}

// AgentDead tells the driver the node's agent died for good (the node was
// permanently lost or reclaimed): no restart, no resync, no ack is ever
// coming. Every claim on the node resolves locally — the agent's slot
// accounting died with it — and the node is fenced from proposals until a
// RESYNC proves a daemon is back. The fence is recorded even while the
// driver itself is down, so a recovered driver does not refold claims
// into ack cycles against a corpse.
func (d *Driver) AgentDead(node string) {
	d.deadAgents[node] = true
	if d.down {
		return // recovery consults deadAgents when refolding
	}
	var own []*fclaim
	for _, c := range d.claims {
		if c.node == node {
			own = append(own, c)
		}
	}
	sort.Slice(own, func(i, j int) bool { return own[i].id.Less(own[j].id) })
	for _, c := range own {
		d.releaseClaim(c) // dead-agent shortcut resolves locally by state
	}
}

// armSweep schedules the periodic reconcile that releases bound claims
// whose attempt vanished through a silent-kill path (job abort, zombie
// fencing). Re-arms itself only while bound claims remain.
func (d *Driver) armSweep() {
	if d.sweepArmed || d.down {
		return
	}
	d.sweepArmed = true
	d.eng.Schedule(d.cfg.SweepInterval, d.sweep)
}

func (d *Driver) sweep() {
	d.sweepArmed = false
	if d.down {
		return
	}
	var stale []*fclaim
	liveBound := 0
	for _, c := range d.claims {
		if c.inc < d.agentInc[c.node] && (c.state == csReady || c.state == csBound) {
			// Orphaned by an agent incarnation change that neither the
			// resync nor a reply stamp resolved (both answers lost): the
			// old incarnation's reservation is gone for good. The release
			// cycle resolves it — the new incarnation acks unknown claims.
			stale = append(stale, c)
			continue
		}
		if c.state != csBound {
			continue
		}
		if !d.attemptLive(c) {
			stale = append(stale, c)
			continue
		}
		liveBound++
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].id.Less(stale[j].id) })
	for _, c := range stale {
		d.releaseClaim(c)
	}
	if liveBound > 0 {
		d.armSweep()
	}
}

// attemptLive reports whether the claim's task still has a running
// attempt on the claim's node.
func (d *Driver) attemptLive(c *fclaim) bool {
	if c.app.rt.Crashed() {
		return true // unknowable mid-crash; recovery resolves it
	}
	for _, r := range c.app.rt.RunningAttempts(c.task) {
		if r.Metrics().Executor == c.node {
			return true
		}
	}
	return false
}

// AppDone releases every claim still held for the given app — the
// backstop for job aborts, which silently wipe the running-attempt set.
func (d *Driver) AppDone(a *fedApp) {
	a.done = true
	var own []*fclaim
	for _, c := range d.claims {
		if c.app == a {
			own = append(own, c)
		}
	}
	sort.Slice(own, func(i, j int) bool { return own[i].id.Less(own[j].id) })
	for _, c := range own {
		d.releaseClaim(c)
	}
}

// Crash takes the whole driver process down: every owned application's
// runtime crashes (buffering completions as usual), the plane drops
// messages addressed to the driver, and all in-memory protocol state
// vanishes — exactly what the WAL exists to reconstruct.
func (d *Driver) Crash(restartAfter float64) {
	if d.down {
		return
	}
	live := 0
	for _, a := range d.apps {
		if !a.done && !a.rt.Crashed() {
			live++
		}
	}
	if live == 0 {
		return
	}
	d.down = true
	d.gen++
	d.Crashes++
	d.plane.SetDown(d.Addr, true)
	for _, c := range d.claims {
		c.timer.Cancel()
	}
	d.claims = make(map[ClaimID]*fclaim)
	d.byTask = make(map[int]*fclaim)
	d.inflight = make(map[string]int)
	d.noProposeUntil = make(map[string]float64)
	// Process memory: incarnation views die with the process and are
	// re-learned from reply stamps. deadAgents deliberately survives (see
	// its field comment).
	d.agentInc = make(map[string]uint64)
	d.sweepArmed = false
	for _, a := range d.apps {
		if !a.done && !a.rt.Crashed() {
			a.rt.CrashDriver(restartAfter)
		}
	}
}

// onAppRecovered fires per owned runtime at the end of its WAL-driven
// recovery. The first one brings the driver process back up; each one
// then refolds its own WAL's live claims into protocol state: proposed
// and committed claims are re-aborted (the safe resolution either side
// of the commit boundary), bound claims are kept only when the recovered
// runtime still runs the attempt, and released otherwise.
func (d *Driver) onAppRecovered(a *fedApp) {
	if d.down {
		d.down = false
		d.busyUntil = d.eng.Now()
		d.plane.SetDown(d.Addr, false)
		d.Recoveries++
	}
	st, _, err := wal.Replay(bytes.NewReader(a.wlog.Bytes()))
	if err != nil {
		d.violate("recovery replay failed: %v", err)
		return
	}
	if st.ClaimSeq > d.seq {
		// Never reuse a claim ID across incarnations: agents tombstone
		// dead IDs, so reuse would make fresh proposals look stale.
		d.seq = st.ClaimSeq
	}
	keys := make([]string, 0, len(st.Claims))
	for k := range st.Claims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wc := st.Claims[k]
		id, ok := parseClaimID(k)
		if !ok || id.Driver != d.ID {
			d.violate("recovery folded foreign claim key %q", k)
			continue
		}
		if _, live := d.claims[id]; live {
			// Created after the driver came back up (a sibling app's
			// recovery revives the whole driver, and scheduling rounds can
			// propose for this app before its own fold runs). The claim is
			// live protocol state, not a crash orphan — leave it be.
			continue
		}
		t := a.taskByID[wc.Task]
		if t == nil {
			d.violate("recovery folded claim %s for unknown task %d", k, wc.Task)
			continue
		}
		c := &fclaim{id: id, app: a, task: t, node: wc.Node, slots: wc.Slots,
			inc: d.agentInc[wc.Node]}
		d.claims[id] = c
		d.inflight[wc.Node]++
		switch wc.State {
		case "bound":
			if d.attemptAdopted(a, t, wc.Node) {
				// The attempt survived the crash and was re-adopted: the
				// claim keeps backing it and releases when it ends.
				c.state = csBound
				d.armSweep()
				continue
			}
			c.state = csBound // releaseClaim routes bound → RELEASE
			d.releaseClaim(c)
		case "committed":
			// Crash between ACCEPT and COMMIT_ACK: the agent may hold the
			// claim committed (our COMMIT landed) or uncommitted-and-
			// expired. An acked ABORT resolves both without leaking.
			c.state = csCommitting
			d.abortClaim(c)
		default: // "proposed"
			c.state = csProposing
			d.abortClaim(c)
		}
	}
}

// attemptAdopted reports whether the recovered runtime still runs an
// attempt of t on node (survivor adoption happened before OnRecovered).
func (d *Driver) attemptAdopted(a *fedApp, t *task.Task, node string) bool {
	for _, r := range a.rt.RunningAttempts(t) {
		if r.Metrics().Executor == node {
			return true
		}
	}
	return false
}

// parseClaimID parses the WAL key form "d<driver>:<seq>".
func parseClaimID(s string) (ClaimID, bool) {
	if len(s) < 4 || s[0] != 'd' {
		return ClaimID{}, false
	}
	i := strings.IndexByte(s, ':')
	if i < 2 {
		return ClaimID{}, false
	}
	drv, err1 := strconv.Atoi(s[1:i])
	seq, err2 := strconv.ParseUint(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return ClaimID{}, false
	}
	return ClaimID{Driver: drv, Seq: seq}, true
}
