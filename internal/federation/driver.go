package federation

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rupam/internal/executor"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/wal"
)

// claimState is a driver-side claim's lifecycle position.
type claimState int

const (
	csProposing  claimState = iota // PROPOSE sent, awaiting ACCEPT/REJECT
	csCommitting                   // ACCEPT received (WAL: committed), COMMIT in flight
	csReady                        // COMMIT_ACK received; the scheduler may launch
	csBound                        // the task attempt launched on the claim
	csReleasing                    // RELEASE in flight (attempt over / claim stale)
	csAborting                     // ABORT in flight (reject path or recovery)
)

func (s claimState) String() string {
	switch s {
	case csProposing:
		return "proposing"
	case csCommitting:
		return "committing"
	case csReady:
		return "ready"
	case csBound:
		return "bound"
	case csReleasing:
		return "releasing"
	case csAborting:
		return "aborting"
	}
	return fmt.Sprintf("claimState(%d)", int(s))
}

// fclaim is one driver-side placement claim.
type fclaim struct {
	id    ClaimID
	app   *fedApp
	task  *task.Task
	node  string
	slots int
	state claimState

	attempts int // sends so far in the current retransmit cycle
	cycle    int // completed cycles (abort/release re-arm with growing pauses)
	timer    *simx.Timer
}

// fedApp couples one application runtime to its federated driver.
type fedApp struct {
	rt       *spark.Runtime
	wlog     *wal.Log
	taskByID map[int]*task.Task
	done     bool
}

// Driver is the federation side of one scheduler shard: it owns one or
// more application runtimes, arbitrates their placements through the
// agent protocol (implementing spark.PlacementBroker per app), and pays a
// serial dispatch cost per protocol action — the same per-task overhead
// that caps a centralized dispatch loop, now paid per shard so aggregate
// placement throughput scales with the driver count.
type Driver struct {
	ID   int
	Addr string

	eng   *simx.Engine
	plane *Plane
	cfg   ProtocolConfig

	apps []*fedApp
	seq  uint64

	claims         map[ClaimID]*fclaim
	byTask         map[int]*fclaim // the task's unbound claim (proposing|committing|ready)
	inflight       map[string]int  // live claims per node
	nodeCap        map[string]int
	noProposeUntil map[string]float64

	down       bool
	gen        int // bumped at crash; invalidates queued dispatch actions
	busyUntil  float64
	sweepArmed bool

	// BusySeconds is the total serial dispatch time this driver spent;
	// max over drivers bounds the run's placement throughput.
	BusySeconds float64
	// Commits counts claims that reached Ready (committed placements).
	Commits int
	// Crashes/Recoveries count this driver's fault episodes.
	Crashes    int
	Recoveries int

	violation func(string)
}

// NewDriver creates driver id and registers it on the plane as
// "driver:<id>".
func NewDriver(eng *simx.Engine, plane *Plane, cfg ProtocolConfig, id int, nodeCap map[string]int, violation func(string)) *Driver {
	d := &Driver{
		ID:             id,
		Addr:           fmt.Sprintf("driver:%d", id),
		eng:            eng,
		plane:          plane,
		cfg:            cfg.withDefaults(),
		claims:         make(map[ClaimID]*fclaim),
		byTask:         make(map[int]*fclaim),
		inflight:       make(map[string]int),
		nodeCap:        nodeCap,
		noProposeUntil: make(map[string]float64),
		violation:      violation,
	}
	plane.Handle(d.Addr, d.onMessage)
	return d
}

func (d *Driver) violate(format string, args ...interface{}) {
	if d.violation != nil {
		d.violation(fmt.Sprintf("%s: %s", d.Addr, fmt.Sprintf(format, args...)))
	}
}

// Adopt attaches an application runtime to this driver, wiring the
// placement broker and lifecycle hooks. Call before rt.Start.
func (d *Driver) Adopt(rt *spark.Runtime, wlog *wal.Log, app *task.Application) *fedApp {
	a := &fedApp{rt: rt, wlog: wlog, taskByID: make(map[int]*task.Task)}
	for _, t := range app.AllTasks() {
		a.taskByID[t.ID] = t
	}
	d.apps = append(d.apps, a)
	rt.SetPlacementBroker(&appBroker{d: d, a: a})
	rt.OnAttemptEnd = func(t *task.Task, node string, out executor.Outcome) {
		d.onAttemptEnd(a, t, node)
	}
	rt.OnRecovered = func() { d.onAppRecovered(a) }
	return a
}

// appBroker adapts one runtime's PlacementBroker calls onto its driver.
type appBroker struct {
	d *Driver
	a *fedApp
}

func (b *appBroker) AdmitPlacement(t *task.Task, node string) bool {
	return b.d.admitPlacement(b.a, t, node)
}

func (b *appBroker) PlacementStarted(t *task.Task, node string) {
	b.d.placementStarted(b.a, t, node)
}

// LiveClaims returns the driver's current claim count (tests).
func (d *Driver) LiveClaims() int { return len(d.claims) }

// enqueue serializes a protocol action through the driver's single
// dispatch loop: each action starts when the previous one's cost is paid.
// This is the model's scalability story — the per-action cost is constant,
// so N drivers sustain N× the placement rate of one.
func (d *Driver) enqueue(fn func()) {
	if d.down {
		return
	}
	start := d.eng.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.cfg.DispatchCost
	d.BusySeconds += d.cfg.DispatchCost
	gen := d.gen
	d.eng.At(d.busyUntil, func() {
		if d.down || d.gen != gen {
			return
		}
		fn()
	})
}

// admitPlacement is the Launch-time arbitration gate. It returns true
// only when the task holds a Ready (committed) claim for exactly this
// node; anything else refuses the launch, usually after starting the
// claim machinery that will make a later scheduling round succeed.
func (d *Driver) admitPlacement(a *fedApp, t *task.Task, node string) bool {
	if d.down {
		return false
	}
	now := d.eng.Now()
	if c := d.byTask[t.ID]; c != nil {
		if c.node == node {
			return c.state == csReady // in-flight claims refuse until committed
		}
		// The task already holds a claim elsewhere. Refuse — chasing the
		// scheduler's per-round node preference would release and
		// re-propose every round (livelock); if the claimed node never
		// takes the task, the stale-claim TTL recycles the slots.
		return false
	}
	if d.noProposeUntil[node] > now {
		return false
	}
	if cap := d.nodeCap[node]; cap > 0 && d.inflight[node] >= cap {
		return false // the node is fully claimed already
	}
	d.seq++
	c := &fclaim{
		id:    ClaimID{Driver: d.ID, Seq: d.seq},
		app:   a,
		task:  t,
		node:  node,
		slots: 1,
		state: csProposing,
	}
	d.claims[c.id] = c
	d.byTask[t.ID] = c
	d.inflight[node]++
	a.wlog.Append(wal.Record{Kind: wal.KindClaimProposed, Key: c.id.String(),
		Task: t.ID, Node: node, Slots: c.slots})
	d.enqueue(func() { d.send(c, Propose) })
	return false
}

// placementStarted binds the Ready claim the launch consumed. A launch
// with no Ready claim is a protocol violation — the exactly-once-launch
// invariant is enforced here, not inferred afterwards.
func (d *Driver) placementStarted(a *fedApp, t *task.Task, node string) {
	c := d.byTask[t.ID]
	if c == nil || c.state != csReady || c.node != node {
		d.violate("launch of task %d on %s without a ready claim (have %v)", t.ID, node, c)
		return
	}
	c.state = csBound
	c.timer.Cancel()
	delete(d.byTask, t.ID) // a bound claim no longer blocks new proposals
	a.wlog.Append(wal.Record{Kind: wal.KindClaimBound, Key: c.id.String()})
	d.armSweep()
}

// onAttemptEnd releases the bound claim backing a finished attempt.
func (d *Driver) onAttemptEnd(a *fedApp, t *task.Task, node string) {
	if c := d.boundClaim(t.ID, node); c != nil {
		d.releaseClaim(c)
	}
}

// boundClaim finds the (lowest-ID) bound claim for a task on a node.
func (d *Driver) boundClaim(taskID int, node string) *fclaim {
	var best *fclaim
	for _, c := range d.claims {
		if c.state == csBound && c.task.ID == taskID && c.node == node {
			if best == nil || c.id.Less(best.id) {
				best = c
			}
		}
	}
	return best
}

// releaseClaim moves a claim onto its terminal send cycle: RELEASE for
// claims the agent has committed, ABORT otherwise.
func (d *Driver) releaseClaim(c *fclaim) {
	c.timer.Cancel()
	if d.byTask[c.task.ID] == c {
		delete(d.byTask, c.task.ID)
	}
	switch c.state {
	case csProposing:
		// No grant observed: give up the ID. If the agent did accept, its
		// TTL returns the slots; the tombstone makes any late COMMIT moot.
		d.finishClaim(c, wal.KindClaimAborted)
		return
	case csCommitting, csReady, csBound:
		c.state = csReleasing
	case csReleasing, csAborting:
		return // already on a terminal cycle
	}
	c.attempts, c.cycle = 0, 0
	d.enqueue(func() { d.send(c, Release) })
}

// abortClaim puts a claim on the ABORT cycle (recovery path).
func (d *Driver) abortClaim(c *fclaim) {
	c.timer.Cancel()
	if d.byTask[c.task.ID] == c {
		delete(d.byTask, c.task.ID)
	}
	if c.state == csAborting || c.state == csReleasing {
		return
	}
	c.state = csAborting
	c.attempts, c.cycle = 0, 0
	d.enqueue(func() { d.send(c, Abort) })
}

// finishClaim writes the claim's terminal WAL record and forgets it.
func (d *Driver) finishClaim(c *fclaim, kind string) {
	c.timer.Cancel()
	if d.byTask[c.task.ID] == c {
		delete(d.byTask, c.task.ID)
	}
	if _, ok := d.claims[c.id]; ok {
		delete(d.claims, c.id)
		d.inflight[c.node]--
		if d.inflight[c.node] < 0 {
			d.violate("inflight count for %s went negative", c.node)
		}
	}
	c.app.wlog.Append(wal.Record{Kind: kind, Key: c.id.String()})
}

// send transmits the message type for the claim's current cycle and arms
// the retransmit timer. Propose cycles exhaust into a local abort (the
// agent's TTL cleans up any unobserved grant); commit cycles fall back to
// an explicit abort (the agent may hold a committed claim); abort and
// release cycles re-arm with a growing pause — they must land eventually
// or slots would leak, and fault windows are finite.
func (d *Driver) send(c *fclaim, mt MsgType) {
	if d.down {
		return
	}
	if cur, ok := d.claims[c.id]; !ok || cur != c {
		return // the claim resolved while this send was queued
	}
	switch {
	case mt == Propose && c.state != csProposing,
		mt == Commit && c.state != csCommitting,
		mt == Release && c.state != csReleasing,
		mt == Abort && c.state != csAborting:
		return // state moved on; the queued send is stale
	}
	m := Message{Type: mt, Claim: c.id}
	if mt == Propose {
		m.Task = c.task.ID
		m.Slots = c.slots
	}
	d.plane.Send(d.Addr, c.node, m)
	c.attempts++
	wait := d.cfg.RetryTimeout * float64(c.attempts)
	c.timer.Cancel()
	c.timer = d.eng.Schedule(wait, func() { d.onTimeout(c, mt) })
}

func (d *Driver) onTimeout(c *fclaim, mt MsgType) {
	if d.down {
		return
	}
	if cur, ok := d.claims[c.id]; !ok || cur != c {
		return
	}
	if c.attempts < d.cfg.MaxRetries {
		d.enqueue(func() { d.send(c, mt) })
		return
	}
	switch mt {
	case Propose:
		// The node is unreachable; give up the ID and let the scheduler
		// look elsewhere. Any grant in flight dies at the agent's TTL.
		d.finishClaim(c, wal.KindClaimAborted)
	case Commit:
		// The agent may or may not hold the committed claim; only an
		// explicit acked abort resolves the ambiguity.
		d.abortClaim(c)
	case Abort, Release:
		// Must eventually land. Fresh cycle after a growing pause.
		c.cycle++
		shift := c.cycle
		if shift > 6 {
			shift = 6
		}
		pause := d.cfg.RetryTimeout * float64(int(1)<<shift)
		c.attempts = 0
		c.timer.Cancel()
		c.timer = d.eng.Schedule(pause, func() {
			if d.down {
				return
			}
			d.enqueue(func() { d.send(c, mt) })
		})
	}
}

// onMessage is the driver's plane handler; every verdict pays the serial
// dispatch cost before taking effect.
func (d *Driver) onMessage(from string, m Message) {
	d.enqueue(func() { d.handle(from, m) })
}

func (d *Driver) handle(from string, m Message) {
	c, ok := d.claims[m.Claim]
	if !ok {
		return // verdict for a claim we already resolved (dup or stale)
	}
	switch m.Type {
	case Accept:
		if c.state != csProposing {
			return // duplicate accept
		}
		c.state = csCommitting
		// Logged *before* the commit send: a crash from here on must
		// chase this claim, because the agent holds (or will hold) it
		// beyond any TTL once the commit lands.
		c.app.wlog.Append(wal.Record{Kind: wal.KindClaimCommitted, Key: c.id.String()})
		c.attempts = 0
		d.send(c, Commit)
	case Reject:
		if c.state != csProposing {
			return // stale reject (e.g. raced our abort); the cycle resolves it
		}
		if m.RetryAfter > d.noProposeUntil[c.node] {
			d.noProposeUntil[c.node] = m.RetryAfter
		}
		// Terminal verdict: the agent tombstoned the ID, nothing to chase.
		d.finishClaim(c, wal.KindClaimAborted)
	case CommitAck:
		if c.state != csCommitting {
			return // duplicate ack
		}
		c.state = csReady
		c.timer.Cancel()
		d.Commits++
		// A Ready claim the scheduler never consumes is released after
		// the stale TTL so contended slots recirculate.
		c.timer = d.eng.Schedule(d.cfg.StaleClaimTTL, func() {
			if cur, ok := d.claims[c.id]; ok && cur == c && c.state == csReady && !d.down {
				d.releaseClaim(c)
			}
		})
		// The slot is secured; let the owning app's scheduler retry the
		// placement it was refused.
		if !c.app.rt.Done() && !c.app.rt.Crashed() {
			c.app.rt.Scheduler().Schedule()
		}
	case CommitNack:
		if c.state != csCommitting {
			return
		}
		// The agent lost the claim (TTL or eviction) and tombstoned it:
		// terminal, nothing to chase.
		d.finishClaim(c, wal.KindClaimAborted)
	case AbortAck:
		if c.state != csAborting {
			return
		}
		d.finishClaim(c, wal.KindClaimAborted)
	case ReleaseAck:
		if c.state != csReleasing {
			return
		}
		d.finishClaim(c, wal.KindClaimReleased)
	}
}

// armSweep schedules the periodic reconcile that releases bound claims
// whose attempt vanished through a silent-kill path (job abort, zombie
// fencing). Re-arms itself only while bound claims remain.
func (d *Driver) armSweep() {
	if d.sweepArmed || d.down {
		return
	}
	d.sweepArmed = true
	d.eng.Schedule(d.cfg.SweepInterval, d.sweep)
}

func (d *Driver) sweep() {
	d.sweepArmed = false
	if d.down {
		return
	}
	var stale []*fclaim
	bound := 0
	for _, c := range d.claims {
		if c.state != csBound {
			continue
		}
		bound++
		if !d.attemptLive(c) {
			stale = append(stale, c)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].id.Less(stale[j].id) })
	for _, c := range stale {
		d.releaseClaim(c)
	}
	if bound > len(stale) {
		d.armSweep()
	}
}

// attemptLive reports whether the claim's task still has a running
// attempt on the claim's node.
func (d *Driver) attemptLive(c *fclaim) bool {
	if c.app.rt.Crashed() {
		return true // unknowable mid-crash; recovery resolves it
	}
	for _, r := range c.app.rt.RunningAttempts(c.task) {
		if r.Metrics().Executor == c.node {
			return true
		}
	}
	return false
}

// AppDone releases every claim still held for the given app — the
// backstop for job aborts, which silently wipe the running-attempt set.
func (d *Driver) AppDone(a *fedApp) {
	a.done = true
	var own []*fclaim
	for _, c := range d.claims {
		if c.app == a {
			own = append(own, c)
		}
	}
	sort.Slice(own, func(i, j int) bool { return own[i].id.Less(own[j].id) })
	for _, c := range own {
		d.releaseClaim(c)
	}
}

// Crash takes the whole driver process down: every owned application's
// runtime crashes (buffering completions as usual), the plane drops
// messages addressed to the driver, and all in-memory protocol state
// vanishes — exactly what the WAL exists to reconstruct.
func (d *Driver) Crash(restartAfter float64) {
	if d.down {
		return
	}
	live := 0
	for _, a := range d.apps {
		if !a.done && !a.rt.Crashed() {
			live++
		}
	}
	if live == 0 {
		return
	}
	d.down = true
	d.gen++
	d.Crashes++
	d.plane.SetDown(d.Addr, true)
	for _, c := range d.claims {
		c.timer.Cancel()
	}
	d.claims = make(map[ClaimID]*fclaim)
	d.byTask = make(map[int]*fclaim)
	d.inflight = make(map[string]int)
	d.noProposeUntil = make(map[string]float64)
	d.sweepArmed = false
	for _, a := range d.apps {
		if !a.done && !a.rt.Crashed() {
			a.rt.CrashDriver(restartAfter)
		}
	}
}

// onAppRecovered fires per owned runtime at the end of its WAL-driven
// recovery. The first one brings the driver process back up; each one
// then refolds its own WAL's live claims into protocol state: proposed
// and committed claims are re-aborted (the safe resolution either side
// of the commit boundary), bound claims are kept only when the recovered
// runtime still runs the attempt, and released otherwise.
func (d *Driver) onAppRecovered(a *fedApp) {
	if d.down {
		d.down = false
		d.busyUntil = d.eng.Now()
		d.plane.SetDown(d.Addr, false)
		d.Recoveries++
	}
	st, _, err := wal.Replay(bytes.NewReader(a.wlog.Bytes()))
	if err != nil {
		d.violate("recovery replay failed: %v", err)
		return
	}
	if st.ClaimSeq > d.seq {
		// Never reuse a claim ID across incarnations: agents tombstone
		// dead IDs, so reuse would make fresh proposals look stale.
		d.seq = st.ClaimSeq
	}
	keys := make([]string, 0, len(st.Claims))
	for k := range st.Claims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wc := st.Claims[k]
		id, ok := parseClaimID(k)
		if !ok || id.Driver != d.ID {
			d.violate("recovery folded foreign claim key %q", k)
			continue
		}
		if _, live := d.claims[id]; live {
			// Created after the driver came back up (a sibling app's
			// recovery revives the whole driver, and scheduling rounds can
			// propose for this app before its own fold runs). The claim is
			// live protocol state, not a crash orphan — leave it be.
			continue
		}
		t := a.taskByID[wc.Task]
		if t == nil {
			d.violate("recovery folded claim %s for unknown task %d", k, wc.Task)
			continue
		}
		c := &fclaim{id: id, app: a, task: t, node: wc.Node, slots: wc.Slots}
		d.claims[id] = c
		d.inflight[wc.Node]++
		switch wc.State {
		case "bound":
			if d.attemptAdopted(a, t, wc.Node) {
				// The attempt survived the crash and was re-adopted: the
				// claim keeps backing it and releases when it ends.
				c.state = csBound
				d.armSweep()
				continue
			}
			c.state = csBound // releaseClaim routes bound → RELEASE
			d.releaseClaim(c)
		case "committed":
			// Crash between ACCEPT and COMMIT_ACK: the agent may hold the
			// claim committed (our COMMIT landed) or uncommitted-and-
			// expired. An acked ABORT resolves both without leaking.
			c.state = csCommitting
			d.abortClaim(c)
		default: // "proposed"
			c.state = csProposing
			d.abortClaim(c)
		}
	}
}

// attemptAdopted reports whether the recovered runtime still runs an
// attempt of t on node (survivor adoption happened before OnRecovered).
func (d *Driver) attemptAdopted(a *fedApp, t *task.Task, node string) bool {
	for _, r := range a.rt.RunningAttempts(t) {
		if r.Metrics().Executor == node {
			return true
		}
	}
	return false
}

// parseClaimID parses the WAL key form "d<driver>:<seq>".
func parseClaimID(s string) (ClaimID, bool) {
	if len(s) < 4 || s[0] != 'd' {
		return ClaimID{}, false
	}
	i := strings.IndexByte(s, ':')
	if i < 2 {
		return ClaimID{}, false
	}
	drv, err1 := strconv.Atoi(s[1:i])
	seq, err2 := strconv.ParseUint(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return ClaimID{}, false
	}
	return ClaimID{Driver: drv, Seq: seq}, true
}
