package simx

import (
	"fmt"

	"rupam/internal/stats"
)

// Tokens models a resource acquired whole, one unit at a time: GPUs. A
// task either holds a GPU exclusively for its compute phase or runs the
// CPU fallback; there is no sharing, matching the NVBLAS usage in the
// paper's GPU workloads.
type Tokens struct {
	eng   *Engine
	name  string
	total int
	inUse int
	usage stats.TimeAvg // tokens in use over time
}

// NewTokens creates a token pool of the given size (size 0 is valid: a
// node without GPUs).
func NewTokens(eng *Engine, name string, total int) *Tokens {
	if total < 0 {
		panic(fmt.Sprintf("simx: tokens %q with negative total", name))
	}
	return &Tokens{eng: eng, name: name, total: total}
}

// Name returns the pool's diagnostic name.
func (t *Tokens) Name() string { return t.name }

// Total returns the pool size.
func (t *Tokens) Total() int { return t.total }

// InUse returns the number of tokens currently held.
func (t *Tokens) InUse() int { return t.inUse }

// Idle returns the number of tokens currently available.
func (t *Tokens) Idle() int { return t.total - t.inUse }

// Utilization returns the instantaneous fraction of tokens in use (0 for
// an empty pool).
func (t *Tokens) Utilization() float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.inUse) / float64(t.total)
}

// AvgInUse returns the time-weighted average number of tokens in use.
func (t *Tokens) AvgInUse() float64 {
	t.usage.Observe(t.eng.Now(), float64(t.inUse))
	return t.usage.Value()
}

// TryAcquire takes one token, reporting whether one was available.
func (t *Tokens) TryAcquire() bool {
	if t.inUse >= t.total {
		return false
	}
	t.usage.Observe(t.eng.Now(), float64(t.inUse))
	t.inUse++
	return true
}

// Release returns one token. It panics on underflow.
func (t *Tokens) Release() {
	if t.inUse <= 0 {
		panic(fmt.Sprintf("simx: tokens %q release underflow", t.name))
	}
	t.usage.Observe(t.eng.Now(), float64(t.inUse))
	t.inUse--
}
