package simx

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(2, func() { order = append(order, 2) })
	eng.Schedule(1, func() { order = append(order, 1) })
	eng.Schedule(3, func() { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 3 {
		t.Fatalf("clock = %v, want 3", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(1, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	tm := eng.Schedule(1, func() { fired = true })
	tm.Cancel()
	eng.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.Schedule(1, func() {
		times = append(times, eng.Now())
		eng.Schedule(1, func() {
			times = append(times, eng.Now())
		})
	})
	eng.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Schedule(1, func() { count++ })
	eng.Schedule(5, func() { count++ })
	eng.RunUntil(2)
	if count != 1 {
		t.Fatalf("RunUntil(2) ran %d events", count)
	}
	if eng.Now() != 2 {
		t.Fatalf("clock = %v after RunUntil(2)", eng.Now())
	}
	eng.Run()
	if count != 2 {
		t.Fatalf("remaining event lost")
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(-5, func() { fired = true })
	eng.Run()
	if !fired || eng.Now() != 0 {
		t.Fatalf("negative delay mishandled: fired=%v now=%v", fired, eng.Now())
	}
}

func TestEngineStep(t *testing.T) {
	eng := NewEngine()
	n := 0
	eng.Schedule(1, func() { n++ })
	eng.Schedule(2, func() { n++ })
	if !eng.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !eng.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if eng.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestEngineReentrantRunPanics(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		eng.Run()
	})
	eng.Run()
}

// Property: however events are scheduled, they fire in non-decreasing
// time order.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		last := -1.0
		ok := true
		for _, d := range delays {
			eng.Schedule(float64(d)/100, func() {
				if eng.Now() < last {
					ok = false
				}
				last = eng.Now()
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
