package simx

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPSSingleClaimTiming(t *testing.T) {
	eng := NewEngine()
	cpu := NewPSResource(eng, "cpu", 4, 2) // 2 cores at 2 GHz
	done := -1.0
	cpu.Acquire(10, func() { done = eng.Now() }) // 10 Gc at 2 GHz → 5 s
	eng.Run()
	if !almost(done, 5, 1e-9) {
		t.Fatalf("single claim finished at %v, want 5", done)
	}
}

func TestPSEqualSharing(t *testing.T) {
	eng := NewEngine()
	disk := NewPSResource(eng, "disk", 100, 0) // 100 MB/s, no per-claim cap
	var t1, t2 float64
	disk.Acquire(100, func() { t1 = eng.Now() })
	disk.Acquire(100, func() { t2 = eng.Now() })
	eng.Run()
	// Both share 100 MB/s → each at 50 → both done at 2 s.
	if !almost(t1, 2, 1e-9) || !almost(t2, 2, 1e-9) {
		t.Fatalf("shared claims finished at %v, %v; want 2, 2", t1, t2)
	}
}

func TestPSPerClaimCap(t *testing.T) {
	eng := NewEngine()
	cpu := NewPSResource(eng, "cpu", 8, 2) // 4 cores at 2 GHz
	var done float64
	cpu.Acquire(10, func() { done = eng.Now() })
	eng.Run()
	// One task cannot exceed one core: 10/2 = 5 s, not 10/8.
	if !almost(done, 5, 1e-9) {
		t.Fatalf("capped claim finished at %v, want 5", done)
	}
}

func TestPSContentionOnlyBeyondCores(t *testing.T) {
	eng := NewEngine()
	cpu := NewPSResource(eng, "cpu", 4, 2) // 2 cores at 2 GHz
	times := make([]float64, 3)
	for i := 0; i < 3; i++ {
		i := i
		cpu.Acquire(6, func() { times[i] = eng.Now() })
	}
	eng.Run()
	// 3 claims on 2 cores: each gets 4/3 GHz until the first finishes at
	// 4.5 s; the remaining two then run at 2 GHz each... all demands equal
	// so all finish simultaneously at 18 Gc total / 4 GHz = 4.5 s.
	for i, ti := range times {
		if !almost(ti, 4.5, 1e-9) {
			t.Fatalf("claim %d finished at %v, want 4.5", i, ti)
		}
	}
}

func TestPSStaggeredCompletion(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 1, 0)
	var small, large float64
	r.Acquire(1, func() { small = eng.Now() })
	r.Acquire(3, func() { large = eng.Now() })
	eng.Run()
	// Shared at 0.5 each until small done (t=2); large has 2 left at rate 1 → t=4.
	if !almost(small, 2, 1e-9) || !almost(large, 4, 1e-9) {
		t.Fatalf("small=%v large=%v, want 2, 4", small, large)
	}
}

func TestPSCancelSpeedsOthers(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 1, 0)
	var done float64
	c := r.Acquire(10, nil)
	r.Acquire(4, func() { done = eng.Now() })
	eng.Schedule(2, func() {
		// After 2 s both have been served 1 unit. Cancelling c should
		// return ~9 remaining and let the other finish at rate 1.
		rem := c.Cancel()
		if !almost(rem, 9, 1e-6) {
			t.Errorf("cancel returned %v, want 9", rem)
		}
	})
	eng.Run()
	// Other claim: 1 unit by t=2, then 3 remaining at rate 1 → t=5.
	if !almost(done, 5, 1e-6) {
		t.Fatalf("done = %v, want 5", done)
	}
}

func TestPSZeroDemandCompletesAsync(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 1, 0)
	fired := false
	r.Acquire(0, func() { fired = true })
	if fired {
		t.Fatal("zero-demand claim fired synchronously")
	}
	eng.Run()
	if !fired {
		t.Fatal("zero-demand claim never fired")
	}
}

func TestPSUtilization(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 2, 1)
	if r.Utilization() != 0 {
		t.Fatal("idle resource has non-zero utilization")
	}
	r.Acquire(5, nil)
	if !almost(r.Utilization(), 0.5, 1e-9) {
		t.Fatalf("one capped claim on 2-capacity: util = %v, want 0.5", r.Utilization())
	}
	r.Acquire(5, nil)
	if !almost(r.Utilization(), 1, 1e-9) {
		t.Fatalf("two claims: util = %v, want 1", r.Utilization())
	}
	eng.Run()
	if r.Utilization() != 0 {
		t.Fatal("drained resource still utilized")
	}
}

func TestPSAvgUtilization(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 1, 0)
	r.Acquire(2, nil) // busy [0,2]
	eng.Run()
	eng.Schedule(2, func() {}) // idle [2,4]
	eng.Run()
	if got := r.AvgUtilization(); !almost(got, 0.5, 1e-9) {
		t.Fatalf("avg utilization = %v, want 0.5", got)
	}
}

func TestPSTotalServed(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 3, 0)
	r.Acquire(7, nil)
	r.Acquire(5, nil)
	eng.Run()
	if got := r.TotalServed(); !almost(got, 12, 1e-6) {
		t.Fatalf("total served = %v, want 12", got)
	}
}

func TestPSSetCapacity(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 1, 0)
	var done float64
	r.Acquire(4, func() { done = eng.Now() })
	eng.Schedule(2, func() { r.SetCapacity(2) })
	eng.Run()
	// 2 units by t=2, remaining 2 at rate 2 → t=3.
	if !almost(done, 3, 1e-9) {
		t.Fatalf("done = %v, want 3", done)
	}
}

func TestPSRemaining(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "r", 1, 0)
	c := r.Acquire(10, nil)
	eng.Schedule(4, func() {
		if got := c.Remaining(); !almost(got, 6, 1e-6) {
			t.Errorf("remaining = %v, want 6", got)
		}
	})
	eng.Run()
	if c.Remaining() != 0 {
		t.Fatal("finished claim has non-zero remaining")
	}
}

func TestPSCompletionOrderDeterministic(t *testing.T) {
	// Claims with identical demand finish simultaneously; callbacks must
	// fire in acquisition order on every run.
	for trial := 0; trial < 20; trial++ {
		eng := NewEngine()
		r := NewPSResource(eng, "r", 10, 0)
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			r.Acquire(5, func() { order = append(order, i) })
		}
		eng.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: completion order %v", trial, order)
			}
		}
	}
}

func TestPSNoLivelockOnTinyResidues(t *testing.T) {
	// Regression: floating-point residue must not re-arm zero-length
	// timers forever. Chain many awkward demands and ensure the run ends.
	eng := NewEngine()
	r := NewPSResource(eng, "r", 3.1415926, 1.1)
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 2000 {
			r.Acquire(0.0317+float64(n%7)*1e-7, chain)
		}
	}
	r.Acquire(0.1, chain)
	r.Acquire(17.3, nil)
	eng.Run()
	if n != 2000 {
		t.Fatalf("chain stalled at %d", n)
	}
}

func TestPSInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive capacity")
		}
	}()
	NewPSResource(NewEngine(), "bad", 0, 0)
}

// Property: total service conservation — the sum of demands equals
// TotalServed after all claims complete, for any demand set.
func TestQuickServiceConservation(t *testing.T) {
	f := func(demands []uint16) bool {
		eng := NewEngine()
		r := NewPSResource(eng, "r", 2.5, 1)
		var want float64
		for _, d := range demands {
			dem := float64(d%500) / 10
			if dem <= 0 {
				continue
			}
			want += dem
			r.Acquire(dem, nil)
		}
		eng.Run()
		return almost(r.TotalServed(), want, 1e-3*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: makespan is bounded below by both the critical path
// (max demand / per-claim rate) and the capacity bound (sum / capacity).
func TestQuickMakespanBounds(t *testing.T) {
	f := func(demands []uint16) bool {
		eng := NewEngine()
		capTotal, capClaim := 4.0, 1.0
		r := NewPSResource(eng, "r", capTotal, capClaim)
		var sum, maxDem float64
		n := 0
		for _, d := range demands {
			dem := float64(d%300)/10 + 0.1
			sum += dem
			if dem > maxDem {
				maxDem = dem
			}
			r.Acquire(dem, nil)
			n++
		}
		if n == 0 {
			return true
		}
		eng.Run()
		lower := math.Max(maxDem/capClaim, sum/capTotal)
		return eng.Now() >= lower-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
