package simx

import (
	"fmt"

	"rupam/internal/stats"
)

// Space models a capacity resource that is occupied rather than served:
// executor heap memory. Allocations either fit or fail immediately — the
// OutOfMemory semantics the paper's §III-C3 builds its memory-straggler
// handling around.
type Space struct {
	eng      *Engine
	name     string
	capacity int64
	used     int64
	peak     int64
	usage    stats.TimeAvg // bytes in use over time
}

// NewSpace creates a space resource with the given capacity in bytes.
func NewSpace(eng *Engine, name string, capacity int64) *Space {
	if capacity < 0 {
		panic(fmt.Sprintf("simx: space %q with negative capacity", name))
	}
	return &Space{eng: eng, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (s *Space) Name() string { return s.name }

// Capacity returns the total capacity in bytes.
func (s *Space) Capacity() int64 { return s.capacity }

// SetCapacity resizes the space (dynamic executor sizing in RUPAM). It
// panics if the new capacity is below current usage.
func (s *Space) SetCapacity(c int64) {
	if c < s.used {
		panic(fmt.Sprintf("simx: space %q shrink below usage (%d < %d)", s.name, c, s.used))
	}
	s.capacity = c
}

// Used returns the bytes currently allocated.
func (s *Space) Used() int64 { return s.used }

// Free returns the bytes currently available.
func (s *Space) Free() int64 { return s.capacity - s.used }

// Peak returns the high-water mark of usage.
func (s *Space) Peak() int64 { return s.peak }

// Utilization returns the instantaneous fraction of capacity in use.
func (s *Space) Utilization() float64 {
	if s.capacity == 0 {
		return 0
	}
	return float64(s.used) / float64(s.capacity)
}

// AvgUsed returns the time-weighted average bytes in use.
func (s *Space) AvgUsed() float64 {
	s.usage.Observe(s.eng.Now(), float64(s.used))
	return s.usage.Value()
}

// TryAlloc reserves n bytes, reporting whether the allocation fit. A failed
// allocation changes nothing.
func (s *Space) TryAlloc(n int64) bool {
	if n < 0 {
		panic("simx: negative allocation")
	}
	if s.used+n > s.capacity {
		return false
	}
	s.usage.Observe(s.eng.Now(), float64(s.used))
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
	return true
}

// ForceAlloc reserves n bytes even beyond capacity. The default Spark
// scheduler admits tasks by core count alone, so the sum of task working
// sets can exceed the heap — that over-commit (and the OOM it triggers) is
// decided by the executor model, which uses ForceAlloc and then checks
// Overcommitted.
func (s *Space) ForceAlloc(n int64) {
	if n < 0 {
		panic("simx: negative allocation")
	}
	s.usage.Observe(s.eng.Now(), float64(s.used))
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
}

// Overcommitted reports whether usage currently exceeds capacity.
func (s *Space) Overcommitted() bool { return s.used > s.capacity }

// Release returns n bytes to the pool. It panics on underflow, which would
// indicate an accounting bug in the executor layer.
func (s *Space) Release(n int64) {
	if n < 0 {
		panic("simx: negative release")
	}
	if n > s.used {
		panic(fmt.Sprintf("simx: space %q release underflow (%d > %d)", s.name, n, s.used))
	}
	s.usage.Observe(s.eng.Now(), float64(s.used))
	s.used -= n
}
