// Package simx is the discrete-event simulation kernel underneath the
// whole reproduction: a virtual clock with a cancellable event heap, plus
// the three resource abstractions the cluster model needs —
// processor-sharing resources (CPU, disk bandwidth), space resources
// (memory), and token resources (GPUs).
//
// The simulation is strictly single-threaded and deterministic: events at
// equal timestamps fire in scheduling order, and no wall-clock or global
// PRNG state is consulted. Running the same experiment twice produces
// byte-identical output, which the test suite relies on.
package simx

import (
	"fmt"
	"math"

	"rupam/internal/pq"
)

// timerNode is the heap entry behind a Timer handle. Nodes are recycled
// through a per-engine free list once they leave the heap; the gen field
// makes stale handles to a recycled node inert (see Timer).
type timerNode struct {
	t        float64
	seq      uint64
	gen      uint64
	fn       func()
	canceled bool
}

// Timer is a handle to a scheduled event; Cancel prevents it from firing.
// The zero value is an inert handle: Cancel is a no-op and Canceled
// reports true. Handles are values — copy them freely; cancelling any
// copy cancels the event. A handle held across the event's firing stays
// safe even though the underlying node is recycled: the generation check
// turns operations on a stale handle into no-ops.
type Timer struct {
	n   *timerNode
	gen uint64
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t Timer) Cancel() {
	if t.n != nil && t.n.gen == t.gen {
		t.n.canceled = true
		t.n.fn = nil
	}
}

// Canceled reports whether the timer can no longer fire: it was cancelled,
// has already fired, or is the zero handle.
func (t Timer) Canceled() bool { return t.n == nil || t.n.gen != t.gen || t.n.canceled }

// Active reports whether the timer is still armed (scheduled, not yet
// fired, not cancelled).
func (t Timer) Active() bool { return !t.Canceled() }

// PoolStats reports timer-node pool behaviour, for leak tests and the
// perf battery.
type PoolStats struct {
	Gets  uint64 // nodes taken from the free list
	Puts  uint64 // nodes returned to the free list
	News  uint64 // nodes freshly allocated
	Free  int    // nodes currently on the free list
	InUse int    // nodes currently in the heap
}

// Engine is the event loop. The zero value is not usable; use NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	events  *pq.Heap[*timerNode]
	running bool
	fired   uint64

	pooling bool
	free    []*timerNode
	gets    uint64
	puts    uint64
	news    uint64
}

// engineObserver, when set, is invoked from NewEngine with every engine
// created. The perf battery uses it to sum fired-event counts across
// engines that harnesses construct internally. It must only be set from a
// single goroutine with no engines running (the bench binary and the perf
// package's serial tests).
var engineObserver func(*Engine)

// SetEngineObserver installs (or, with nil, removes) a hook called with
// every engine NewEngine creates. Not safe for concurrent use with engine
// construction; intended for the perf harness only.
func SetEngineObserver(fn func(*Engine)) { engineObserver = fn }

// defaultPooling seeds new engines' timer-node recycling mode; tests flip
// it to run whole harnesses under the one-allocation-per-event reference
// behaviour.
var defaultPooling = true

// SetPoolingDefault sets whether engines created from now on recycle
// timer nodes. Not safe for concurrent use with NewEngine; intended for
// tests and the perf battery only.
func SetPoolingDefault(on bool) { defaultPooling = on }

// NewEngine returns an engine with the clock at 0. Timer-node pooling is
// enabled by default; SetPooling(false) reverts to one allocation per
// scheduled event (the reference behaviour for equivalence tests).
func NewEngine() *Engine {
	e := &Engine{
		events: pq.New(func(a, b *timerNode) bool {
			if a.t != b.t {
				return a.t < b.t
			}
			return a.seq < b.seq
		}),
		pooling: defaultPooling,
	}
	if engineObserver != nil {
		engineObserver(e)
	}
	return e
}

// SetPooling enables or disables timer-node recycling. Pooling is purely
// an allocation strategy: event ordering and timestamps are identical
// either way.
func (e *Engine) SetPooling(on bool) { e.pooling = on }

// PoolStats returns the timer-node pool counters.
func (e *Engine) PoolStats() PoolStats {
	return PoolStats{Gets: e.gets, Puts: e.puts, News: e.news, Free: len(e.free), InUse: e.events.Len()}
}

// Fired returns the number of events executed so far — the denominator of
// the perf battery's events/sec and allocs/event counters.
func (e *Engine) Fired() uint64 { return e.fired }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// getNode returns a timer node, recycling from the free list when pooling
// is enabled.
func (e *Engine) getNode() *timerNode {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.gets++
		return nd
	}
	e.news++
	return &timerNode{}
}

// putNode retires a node that has left the heap. The generation bump
// invalidates every outstanding handle before the node is reused.
func (e *Engine) putNode(nd *timerNode) {
	nd.gen++
	nd.fn = nil
	nd.canceled = false
	if e.pooling {
		e.free = append(e.free, nd)
		e.puts++
	}
}

// Schedule runs fn after delay seconds of virtual time. A non-positive
// delay fires the event at the current time, after already-queued events
// at this time. It returns a Timer that can cancel the callback.
func (e *Engine) Schedule(delay float64, fn func()) Timer {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (clamped to now if in the past).
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	nd := e.getNode()
	nd.t, nd.seq, nd.fn, nd.canceled = t, e.seq, fn, false
	e.events.Push(nd)
	return Timer{n: nd, gen: nd.gen}
}

// Run processes events until the queue is empty. It panics if called
// re-entrantly from an event callback.
func (e *Engine) Run() {
	e.RunUntil(math.Inf(1))
}

// RunUntil processes events with timestamps <= limit, then advances the
// clock to limit (if finite). Events scheduled during the run are
// processed if they fall within the limit.
func (e *Engine) RunUntil(limit float64) {
	if e.running {
		panic("simx: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 {
		nd := e.events.Peek()
		if nd.t > limit {
			break
		}
		e.events.Pop()
		if nd.canceled {
			e.putNode(nd)
			continue
		}
		if nd.t < e.now {
			panic(fmt.Sprintf("simx: event time %v before now %v", nd.t, e.now))
		}
		e.now = nd.t
		fn := nd.fn
		e.putNode(nd)
		e.fired++
		fn()
	}
	if !math.IsInf(limit, 1) && limit > e.now {
		e.now = limit
	}
}

// Step processes the single earliest pending event and reports whether one
// existed. Primarily useful in tests.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		nd := e.events.Pop()
		if nd.canceled {
			e.putNode(nd)
			continue
		}
		e.now = nd.t
		fn := nd.fn
		e.putNode(nd)
		e.fired++
		fn()
		return true
	}
	return false
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.events.Len() }
