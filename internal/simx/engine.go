// Package simx is the discrete-event simulation kernel underneath the
// whole reproduction: a virtual clock with a cancellable event heap, plus
// the three resource abstractions the cluster model needs —
// processor-sharing resources (CPU, disk bandwidth), space resources
// (memory), and token resources (GPUs).
//
// The simulation is strictly single-threaded and deterministic: events at
// equal timestamps fire in scheduling order, and no wall-clock or global
// PRNG state is consulted. Running the same experiment twice produces
// byte-identical output, which the test suite relies on.
package simx

import (
	"fmt"
	"math"

	"rupam/internal/pq"
)

// Timer is a handle to a scheduled event; Cancel prevents it from firing.
type Timer struct {
	t        float64
	seq      uint64
	fn       func()
	canceled bool
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil {
		t.canceled = true
		t.fn = nil
	}
}

// Canceled reports whether Cancel was called before the timer fired.
func (t *Timer) Canceled() bool { return t == nil || t.canceled }

// Engine is the event loop. The zero value is not usable; use NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	events  *pq.Heap[*Timer]
	running bool
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{
		events: pq.New(func(a, b *Timer) bool {
			if a.t != b.t {
				return a.t < b.t
			}
			return a.seq < b.seq
		}),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of virtual time. A non-positive
// delay fires the event at the current time, after already-queued events
// at this time. It returns a Timer that can cancel the callback.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (clamped to now if in the past).
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	tm := &Timer{t: t, seq: e.seq, fn: fn}
	e.events.Push(tm)
	return tm
}

// Run processes events until the queue is empty. It panics if called
// re-entrantly from an event callback.
func (e *Engine) Run() {
	e.RunUntil(math.Inf(1))
}

// RunUntil processes events with timestamps <= limit, then advances the
// clock to limit (if finite). Events scheduled during the run are
// processed if they fall within the limit.
func (e *Engine) RunUntil(limit float64) {
	if e.running {
		panic("simx: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 {
		tm := e.events.Peek()
		if tm.t > limit {
			break
		}
		e.events.Pop()
		if tm.canceled {
			continue
		}
		if tm.t < e.now {
			panic(fmt.Sprintf("simx: event time %v before now %v", tm.t, e.now))
		}
		e.now = tm.t
		fn := tm.fn
		tm.fn = nil
		fn()
	}
	if !math.IsInf(limit, 1) && limit > e.now {
		e.now = limit
	}
}

// Step processes the single earliest pending event and reports whether one
// existed. Primarily useful in tests.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		tm := e.events.Pop()
		if tm.canceled {
			continue
		}
		e.now = tm.t
		fn := tm.fn
		tm.fn = nil
		fn()
		return true
	}
	return false
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.events.Len() }
