package simx

import (
	"fmt"

	"rupam/internal/stats"
)

const demandEps = 1e-9

// claimChunk is the arena block size for Claim allocation. Claims are
// allocated in batches to amortize allocator overhead; they are never
// recycled (handles escape to callers), only batched.
const claimChunk = 64

// PSResource models a processor-sharing resource: a server with a total
// service rate (capacity) shared equally among active claims, optionally
// capped per claim. It models:
//
//   - CPU: capacity = cores × GHz, per-claim cap = GHz (a task cannot use
//     more than one core), so contention only appears once active tasks
//     exceed the core count — exactly the over-commit regime the paper's
//     §III-C2 discusses;
//   - disk bandwidth: capacity = device MB/s, no per-claim cap.
//
// Claims carry a service demand (e.g. giga-cycles, bytes) and a completion
// callback. Whenever membership changes, remaining demands are advanced and
// the next completion event is rescheduled.
//
// Re-rating is strictly local: only this resource's claims are touched on
// any event, and the bookkeeping below is allocation-free on the steady
// path (claims come from an arena, the claim list is a recycled slice, and
// the completion timer reuses pooled engine nodes).
type PSResource struct {
	eng         *Engine
	name        string
	capacity    float64
	perClaimCap float64
	claims      []*Claim // acquisition order; done claims compacted lazily
	active      int      // live (not done) claims in the slice
	lastUpdate  float64
	timer       Timer
	target      *Claim        // claim the armed timer is for; force-completed on fire
	util        stats.TimeAvg // fraction of capacity in use over time
	load        stats.TimeAvg // number of active claims over time
	served      float64       // total demand served
	claimSeq    uint64
	completeFn  func()   // bound once; avoids a closure per reschedule
	finished    []*Claim // scratch for complete()
	arena       []Claim  // current allocation chunk
}

// Claim is an in-progress request for service from a PSResource.
type Claim struct {
	res       *PSResource
	seq       uint64
	remaining float64
	onDone    func()
	done      bool
}

// NewPSResource creates a processor-sharing resource. capacity is the total
// service rate per second; perClaimCap (0 = unlimited) bounds the rate any
// single claim may receive.
func NewPSResource(eng *Engine, name string, capacity, perClaimCap float64) *PSResource {
	if capacity <= 0 {
		panic(fmt.Sprintf("simx: resource %q with non-positive capacity", name))
	}
	r := &PSResource{
		eng:         eng,
		name:        name,
		capacity:    capacity,
		perClaimCap: perClaimCap,
		lastUpdate:  eng.Now(),
	}
	r.completeFn = r.complete
	return r
}

// Name returns the resource's diagnostic name.
func (r *PSResource) Name() string { return r.name }

// Capacity returns the total service rate.
func (r *PSResource) Capacity() float64 { return r.capacity }

// PerClaimCap returns the per-claim rate bound (0 = unlimited). For a CPU
// this is the effective per-core speed, which fault injection may have
// rescaled below the node's spec frequency.
func (r *PSResource) PerClaimCap() float64 { return r.perClaimCap }

// SetCapacity changes the total service rate (used to model DVFS-style
// frequency changes). In-flight claims are advanced at the old rate first.
func (r *PSResource) SetCapacity(c float64) {
	if c <= 0 {
		panic("simx: SetCapacity with non-positive capacity")
	}
	r.advance()
	r.capacity = c
	r.reschedule()
}

// SetPerClaimCap changes the per-claim rate bound (DVFS changes the speed
// of a single core, not just the aggregate). In-flight claims are advanced
// at the old rate first.
func (r *PSResource) SetPerClaimCap(c float64) {
	if c < 0 {
		panic("simx: SetPerClaimCap with negative cap")
	}
	r.advance()
	r.perClaimCap = c
	r.reschedule()
}

// ratePerClaim returns the current service rate each claim receives.
func (r *PSResource) ratePerClaim() float64 {
	n := r.active
	if n == 0 {
		return 0
	}
	rate := r.capacity / float64(n)
	if r.perClaimCap > 0 && rate > r.perClaimCap {
		rate = r.perClaimCap
	}
	return rate
}

// Utilization returns the instantaneous fraction of capacity in use.
func (r *PSResource) Utilization() float64 {
	if r.capacity == 0 {
		return 0
	}
	return r.ratePerClaim() * float64(r.active) / r.capacity
}

// ActiveClaims returns the number of claims currently being served.
func (r *PSResource) ActiveClaims() int { return r.active }

// AvgUtilization returns the time-weighted average utilization fraction
// since the resource was created.
func (r *PSResource) AvgUtilization() float64 {
	r.advance() // fold in the current interval
	r.reschedule()
	return r.util.Value()
}

// TotalServed returns the total demand served so far.
func (r *PSResource) TotalServed() float64 {
	r.advance()
	r.reschedule()
	return r.served
}

// newClaim hands out a claim from the arena chunk.
func (r *PSResource) newClaim() *Claim {
	if len(r.arena) == 0 {
		r.arena = make([]Claim, claimChunk)
	}
	c := &r.arena[0]
	r.arena = r.arena[1:]
	return c
}

// Acquire starts serving a claim with the given demand; onDone fires when
// the demand has been fully served. A non-positive demand completes at the
// current time (asynchronously, preserving event ordering).
func (r *PSResource) Acquire(demand float64, onDone func()) *Claim {
	r.claimSeq++
	c := r.newClaim()
	*c = Claim{res: r, seq: r.claimSeq, remaining: demand, onDone: onDone}
	if demand <= demandEps {
		c.done = true
		r.eng.Schedule(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return c
	}
	r.advance()
	r.claims = append(r.claims, c)
	r.active++
	r.reschedule()
	return c
}

// compact removes done claims from the claim slice once they outnumber the
// live ones, preserving acquisition order.
func (r *PSResource) compact() {
	if len(r.claims) < 16 || r.active*2 > len(r.claims) {
		return
	}
	live := r.claims[:0]
	for _, c := range r.claims {
		if !c.done {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(r.claims); i++ {
		r.claims[i] = nil
	}
	r.claims = live
}

// Cancel aborts an in-progress claim without firing its callback. It
// returns the remaining (unserved) demand; cancelling a finished claim
// returns 0.
func (c *Claim) Cancel() float64 {
	if c.done {
		return 0
	}
	r := c.res
	r.advance()
	c.done = true
	r.active--
	r.compact()
	rem := c.remaining
	r.reschedule()
	return rem
}

// Remaining returns the unserved demand of the claim at the current time.
func (c *Claim) Remaining() float64 {
	if c.done {
		return 0
	}
	r := c.res
	r.advance()
	r.reschedule()
	return c.remaining
}

// advance applies service between lastUpdate and now to all active claims
// and accumulates utilization statistics. It does not fire completions —
// reschedule does, via the event queue, so that callbacks never run inside
// another resource's mutation.
func (r *PSResource) advance() {
	now := r.eng.Now()
	rate := r.ratePerClaim()
	n := float64(r.active)
	r.util.Observe(now, rate*n/r.capacity)
	r.load.Observe(now, n)
	dt := now - r.lastUpdate
	if dt > 0 && rate > 0 {
		servedEach := rate * dt
		for _, c := range r.claims {
			if c.done {
				continue
			}
			c.remaining -= servedEach
			r.served += servedEach
		}
	}
	r.lastUpdate = now
}

// reschedule computes the earliest completion among active claims and
// (re)arms the completion timer.
func (r *PSResource) reschedule() {
	r.timer.Cancel()
	r.timer = Timer{}
	r.target = nil
	rate := r.ratePerClaim()
	if rate <= 0 {
		return
	}
	var target *Claim
	for _, c := range r.claims {
		if c.done {
			continue
		}
		if target == nil || c.remaining < target.remaining ||
			(c.remaining == target.remaining && c.seq < target.seq) {
			target = c
		}
	}
	if target == nil {
		return
	}
	delay := target.remaining / rate
	if delay < 0 {
		delay = 0
	}
	r.target = target
	r.timer = r.eng.Schedule(delay, r.completeFn)
}

// complete fires when the earliest claim(s) finish: it advances service,
// removes every claim whose demand is exhausted, invokes their callbacks,
// and re-arms the timer.
func (r *PSResource) complete() {
	r.timer = Timer{}
	r.advance()
	// The timer was armed for r.target's exact completion; floating-point
	// rounding can leave a vanishing residue that would otherwise re-arm
	// a zero-length timer forever, so the target is completed by fiat.
	if t := r.target; t != nil && !t.done {
		t.remaining = 0
	}
	r.target = nil
	// The claim slice is in acquisition order, so finished comes out
	// sorted by seq — callback order is deterministic by construction.
	finished := r.finished[:0]
	for _, c := range r.claims {
		if !c.done && c.remaining <= demandEps {
			finished = append(finished, c)
		}
	}
	for _, c := range finished {
		c.done = true
		c.remaining = 0
		r.active--
	}
	r.compact()
	r.reschedule()
	// Callbacks run after bookkeeping so they observe a consistent
	// resource state and may immediately Acquire again.
	for _, c := range finished {
		if c.onDone != nil {
			c.onDone()
		}
	}
	for i := range finished {
		finished[i] = nil
	}
	r.finished = finished[:0]
}
