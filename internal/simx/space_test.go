package simx

import (
	"testing"
	"testing/quick"
)

func TestSpaceAllocRelease(t *testing.T) {
	eng := NewEngine()
	s := NewSpace(eng, "mem", 100)
	if !s.TryAlloc(60) {
		t.Fatal("alloc 60/100 failed")
	}
	if s.TryAlloc(50) {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if s.Used() != 60 || s.Free() != 40 {
		t.Fatalf("used=%d free=%d", s.Used(), s.Free())
	}
	s.Release(60)
	if s.Used() != 0 {
		t.Fatalf("used=%d after release", s.Used())
	}
}

func TestSpaceForceAllocOvercommit(t *testing.T) {
	eng := NewEngine()
	s := NewSpace(eng, "mem", 100)
	s.ForceAlloc(150)
	if !s.Overcommitted() {
		t.Fatal("overcommit not detected")
	}
	if s.Peak() != 150 {
		t.Fatalf("peak = %d", s.Peak())
	}
	s.Release(150)
	if s.Overcommitted() {
		t.Fatal("still overcommitted after release")
	}
}

func TestSpaceUtilizationAndAvg(t *testing.T) {
	eng := NewEngine()
	s := NewSpace(eng, "mem", 200)
	s.ForceAlloc(100) // 50% from t=0
	eng.Schedule(10, func() { s.Release(100) })
	eng.Run()
	eng.Schedule(10, func() {})
	eng.Run() // idle [10,20]
	if got := s.Utilization(); got != 0 {
		t.Fatalf("utilization = %v", got)
	}
	if got := s.AvgUsed(); got < 49 || got > 51 {
		t.Fatalf("avg used = %v, want ~50", got)
	}
}

func TestSpaceReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on release underflow")
		}
	}()
	s := NewSpace(NewEngine(), "mem", 10)
	s.Release(1)
}

func TestSpaceSetCapacity(t *testing.T) {
	eng := NewEngine()
	s := NewSpace(eng, "mem", 100)
	s.ForceAlloc(50)
	s.SetCapacity(60)
	if s.Free() != 10 {
		t.Fatalf("free = %d after shrink", s.Free())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic shrinking below usage")
		}
	}()
	s.SetCapacity(40)
}

func TestTokensAcquireRelease(t *testing.T) {
	eng := NewEngine()
	g := NewTokens(eng, "gpu", 2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("could not take both tokens")
	}
	if g.TryAcquire() {
		t.Fatal("third token granted from pool of 2")
	}
	if g.Idle() != 0 || g.InUse() != 2 || g.Utilization() != 1 {
		t.Fatalf("state: idle=%d inuse=%d util=%v", g.Idle(), g.InUse(), g.Utilization())
	}
	g.Release()
	if g.Idle() != 1 {
		t.Fatalf("idle = %d after release", g.Idle())
	}
}

func TestTokensEmptyPool(t *testing.T) {
	g := NewTokens(NewEngine(), "gpu", 0)
	if g.TryAcquire() {
		t.Fatal("token from empty pool")
	}
	if g.Utilization() != 0 {
		t.Fatal("empty pool utilization not 0")
	}
}

func TestTokensReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on token underflow")
		}
	}()
	NewTokens(NewEngine(), "gpu", 1).Release()
}

// Property: any interleaving of TryAlloc/Release keeps 0 <= used <=
// capacity and free+used == capacity.
func TestQuickSpaceInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		s := NewSpace(NewEngine(), "mem", 1000)
		var held []int64
		for _, op := range ops {
			if op >= 0 {
				n := int64(op % 300)
				if s.TryAlloc(n) {
					held = append(held, n)
				}
			} else if len(held) > 0 {
				s.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if s.Used() < 0 || s.Used() > 1000 || s.Used()+s.Free() != 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
