package monitor

import (
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/simx"
)

func newClu(eng *simx.Engine) *cluster.Cluster {
	clu := cluster.New(eng)
	for _, name := range []string{"a", "b", "c"} {
		clu.AddNode(cluster.NodeSpec{
			Name: name, Class: "t", Cores: 4, FreqGHz: 2,
			MemBytes: 8 * cluster.GB, NetBandwidth: cluster.GbE(1),
			DiskReadBW: cluster.MBps(100), DiskWriteBW: cluster.MBps(100),
			GPUs: 1, GPURateGHz: 10,
		})
	}
	return clu
}

type fakeProbe struct {
	free    int64
	running int
}

func (f fakeProbe) HeapFree() int64   { return f.free }
func (f fakeProbe) RunningTasks() int { return f.running }
func (f fakeProbe) Down() bool        { return false }

func TestCollectStaticFields(t *testing.T) {
	eng := simx.NewEngine()
	clu := newClu(eng)
	m := New(eng, clu, 1)
	nm := m.Collect(clu.Node("a"))
	if nm.CPUFreq != 2 || nm.Cores != 4 || nm.TotalGPUs != 1 || nm.SSD {
		t.Fatalf("static fields: %+v", nm)
	}
	if nm.IdleGPUs != 1 {
		t.Fatalf("idle GPUs = %d", nm.IdleGPUs)
	}
}

func TestCollectUsesProbe(t *testing.T) {
	eng := simx.NewEngine()
	clu := newClu(eng)
	m := New(eng, clu, 1)
	m.RegisterProbe("a", fakeProbe{free: 1234, running: 3})
	nm := m.Collect(clu.Node("a"))
	if nm.FreeMemory != 1234 || nm.RunningTasks != 3 {
		t.Fatalf("probe values: %+v", nm)
	}
}

func TestHeartbeatsStaggeredAndPeriodic(t *testing.T) {
	eng := simx.NewEngine()
	clu := newClu(eng)
	m := New(eng, clu, 1)
	var times []float64
	var names []string
	m.OnHeartbeat = func(node string, nm *NodeMetrics) {
		times = append(times, eng.Now())
		names = append(names, node)
	}
	m.Start()
	eng.RunUntil(2.9)
	// Offsets 0, 1/3, 2/3; each node beats at offset, offset+1, offset+2
	// within 2.9 s → 9 heartbeats.
	if len(times) != 9 {
		t.Fatalf("heartbeats = %d, want 9", len(times))
	}
	if m.Heartbeats != 9 {
		t.Fatalf("counter = %d", m.Heartbeats)
	}
	// Staggering: the first three beats are at distinct times.
	if times[0] == times[1] || times[1] == times[2] {
		t.Fatalf("heartbeats not staggered: %v", times[:3])
	}
	if m.Latest("a") == nil || m.Latest("b") == nil {
		t.Fatal("latest reports missing")
	}
}

func TestStopHaltsHeartbeats(t *testing.T) {
	eng := simx.NewEngine()
	clu := newClu(eng)
	m := New(eng, clu, 1)
	m.Start()
	eng.RunUntil(1.5)
	got := m.Heartbeats
	m.Stop()
	eng.Run()
	if m.Heartbeats != got {
		t.Fatalf("heartbeats after stop: %d → %d", got, m.Heartbeats)
	}
}

func TestDefaultInterval(t *testing.T) {
	m := New(simx.NewEngine(), newClu(simx.NewEngine()), 0)
	if m.Interval() != 1 {
		t.Fatalf("default interval = %v", m.Interval())
	}
}

func TestUtilizationReflectsLoad(t *testing.T) {
	eng := simx.NewEngine()
	clu := newClu(eng)
	m := New(eng, clu, 1)
	node := clu.Node("b")
	node.CPU.Acquire(1000, nil)
	node.GPU.TryAcquire()
	nm := m.Collect(node)
	if nm.CPUUtil <= 0 {
		t.Fatal("CPU load not observed")
	}
	if nm.IdleGPUs != 0 {
		t.Fatal("GPU usage not observed")
	}
}

func TestDropSuppressesCollection(t *testing.T) {
	// With Drop returning true for node "b", no heartbeat for b is
	// collected or delivered, while a and c report normally; the ticker
	// itself keeps running so b resumes once Drop clears.
	eng := simx.NewEngine()
	clu := newClu(eng)
	m := New(eng, clu, 1)
	dropping := true
	m.Drop = func(node string) bool { return dropping && node == "b" }
	perNode := map[string]int{}
	m.OnHeartbeat = func(node string, _ *NodeMetrics) { perNode[node]++ }
	m.Start()
	eng.Schedule(5.5, func() { dropping = false })
	eng.RunUntil(10.5)
	m.Stop()
	if perNode["b"] == 0 {
		t.Fatal("b never resumed after Drop cleared")
	}
	if perNode["b"] >= perNode["a"] {
		t.Fatalf("b reported %d times, a %d — suppression had no effect", perNode["b"], perNode["a"])
	}
	if m.Latest("b") == nil {
		t.Fatal("no metrics for b after resuming")
	}
}

func TestNeverDroppingEqualsNilDrop(t *testing.T) {
	run := func(drop func(string) bool) int {
		eng := simx.NewEngine()
		clu := newClu(eng)
		m := New(eng, clu, 1)
		m.Drop = drop
		beats := 0
		m.OnHeartbeat = func(string, *NodeMetrics) { beats++ }
		m.Start()
		eng.RunUntil(3.5)
		m.Stop()
		return beats
	}
	nilBeats := run(nil)
	falseBeats := run(func(string) bool { return false })
	if nilBeats == 0 || nilBeats != falseBeats {
		t.Fatalf("nil Drop gave %d beats, never-dropping gave %d", nilBeats, falseBeats)
	}
}
