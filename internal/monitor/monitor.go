// Package monitor implements RUPAM's Resource Monitor (RM): a per-node
// Collector samples the machine's multi-dimensional resource state and
// piggy-backs it on the worker's periodic heartbeat to the master-side
// Monitor, which keeps the freshest view per node (the paper's
// executorDataMap reuse). The node-side metrics are the left-hand column
// of Table I: CPU frequency, idle GPUs, SSD presence, network bandwidth,
// free memory, and CPU/disk/network load.
package monitor

import (
	"rupam/internal/cluster"
	"rupam/internal/simx"
)

// NodeMetrics is one heartbeat's resource report (Table I, left side).
type NodeMetrics struct {
	Node string
	Time float64

	// CPUFreq is the *effective* per-core speed in GHz — the spec
	// frequency unless a DVFS governor or an injected CPUDegrade window
	// has rescaled the node, in which case the heartbeat reports the
	// throttled value (Table I treats cpufreq as dynamic for exactly this
	// reason). Consumers compare it against the spec to spot fail-slow
	// nodes.
	CPUFreq      float64 // GHz
	Cores        int
	SSD          bool
	NetBandwidth float64 // bytes/sec
	TotalGPUs    int

	// Dynamic properties, refreshed every heartbeat.
	IdleGPUs     int
	FreeMemory   int64   // executor heap free bytes
	CPUUtil      float64 // [0,1]
	DiskUtil     float64 // [0,1]
	NetUtil      float64 // [0,1]
	RunningTasks int
}

// HeapProbe lets the monitor read executor-level free memory without
// importing the executor package (the executor layer registers itself).
type HeapProbe interface {
	HeapFree() int64
	RunningTasks() int
	Down() bool
}

// Monitor is the master-side collector state.
type Monitor struct {
	eng      *simx.Engine
	clu      *cluster.Cluster
	interval float64
	probes   map[string]HeapProbe
	latest   map[string]*NodeMetrics

	// OnHeartbeat, if set, fires after each node's report lands — the
	// hook the task schedulers use to trigger a scheduling round, exactly
	// as Spark schedules on heartbeat-driven offers.
	OnHeartbeat func(node string, m *NodeMetrics)

	// Drop, if set, suppresses a node's heartbeat when it returns true —
	// a fail-stopped or partitioned node cannot report. The tick keeps
	// re-arming so heartbeats resume the moment the node recovers.
	Drop func(node string) bool

	timers  []simx.Timer
	stopped bool
	// Heartbeats counts reports received (monitoring overhead accounting).
	Heartbeats int
}

// New creates a monitor over the cluster with the given heartbeat
// interval in seconds (the paper piggybacks on Spark's default 1 s
// executor heartbeat).
func New(eng *simx.Engine, clu *cluster.Cluster, interval float64) *Monitor {
	if interval <= 0 {
		interval = 1
	}
	return &Monitor{
		eng:      eng,
		clu:      clu,
		interval: interval,
		probes:   make(map[string]HeapProbe),
		latest:   make(map[string]*NodeMetrics),
	}
}

// RegisterProbe attaches an executor-level probe for a node.
func (m *Monitor) RegisterProbe(node string, p HeapProbe) { m.probes[node] = p }

// Start begins heartbeat collection, staggering nodes across the interval
// the way independently-started workers would be.
func (m *Monitor) Start() {
	for i, n := range m.clu.Nodes {
		node := n
		offset := m.interval * float64(i) / float64(len(m.clu.Nodes))
		m.timers = append(m.timers, m.eng.Schedule(offset, func() {
			m.tick(node)
		}))
	}
}

// Stop halts future heartbeats.
func (m *Monitor) Stop() {
	m.stopped = true
	for _, t := range m.timers {
		t.Cancel()
	}
	m.timers = nil
}

// Resume restarts heartbeat collection after a Stop, re-staggering nodes
// the way Start does. The Heartbeats counter and per-node latest views are
// preserved — a recovered driver resumes monitoring, it does not forget
// what it had observed. No-op while running.
func (m *Monitor) Resume() {
	if !m.stopped {
		return
	}
	m.stopped = false
	m.Start()
}

func (m *Monitor) tick(node *cluster.Node) {
	if m.stopped {
		return
	}
	if m.Drop == nil || !m.Drop(node.Name()) {
		nm := m.Collect(node)
		m.latest[node.Name()] = nm
		m.Heartbeats++
		if m.OnHeartbeat != nil {
			m.OnHeartbeat(node.Name(), nm)
		}
	}
	m.timers = append(m.timers, m.eng.Schedule(m.interval, func() {
		m.tick(node)
	}))
}

// Collect samples a node's current state (the Collector's job).
func (m *Monitor) Collect(node *cluster.Node) *NodeMetrics {
	nm := &NodeMetrics{
		Node:         node.Name(),
		Time:         m.eng.Now(),
		CPUFreq:      effectiveFreq(node),
		Cores:        node.Spec.Cores,
		SSD:          node.Spec.SSD,
		NetBandwidth: node.Spec.NetBandwidth,
		TotalGPUs:    node.Spec.GPUs,
		IdleGPUs:     node.GPU.Idle(),
		CPUUtil:      node.CPUUtil(),
		DiskUtil:     node.DiskUtil(),
		NetUtil:      node.NetUtil(),
		FreeMemory:   node.Mem.Free(),
	}
	if p, ok := m.probes[node.Name()]; ok {
		nm.FreeMemory = p.HeapFree()
		nm.RunningTasks = p.RunningTasks()
	}
	return nm
}

// effectiveFreq reads the node's current per-core speed off its CPU
// resource (the per-claim cap tracks the effective core frequency through
// DVFS and fault-injected throttle windows), falling back to the spec
// when the resource carries no cap.
func effectiveFreq(node *cluster.Node) float64 {
	if f := node.CPU.PerClaimCap(); f > 0 {
		return f
	}
	return node.Spec.FreqGHz
}

// Latest returns the most recent report for a node (nil before the first
// heartbeat).
func (m *Monitor) Latest(node string) *NodeMetrics { return m.latest[node] }

// Interval returns the heartbeat interval.
func (m *Monitor) Interval() float64 { return m.interval }
