package task

import (
	"strings"
	"testing"

	"rupam/internal/hdfs"
)

func TestKindString(t *testing.T) {
	if ShuffleMap.String() != "ShuffleMapTask" || Result.String() != "ResultTask" {
		t.Fatal("kind strings wrong")
	}
}

func TestDemandHelpers(t *testing.T) {
	d := Demand{CPUWork: 3, GPUWork: 2}
	if d.TotalComputeWork() != 5 {
		t.Fatalf("total compute = %v", d.TotalComputeWork())
	}
	if !d.GPUCapable() {
		t.Fatal("GPUWork > 0 should be GPU capable")
	}
	if (Demand{CPUWork: 1}).GPUCapable() {
		t.Fatal("CPU-only demand reported GPU capable")
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{Launch: 2, End: 7, ShuffleReadTime: 1, ShuffleWriteTime: 2}
	if m.Duration() != 5 {
		t.Fatalf("duration = %v", m.Duration())
	}
	if m.ShuffleTime() != 3 {
		t.Fatalf("shuffle time = %v", m.ShuffleTime())
	}
}

func TestLocalityOn(t *testing.T) {
	tk := Task{PrefNodes: []string{"a", "b"}, CachedOn: "c"}
	if tk.LocalityOn("c") != hdfs.ProcessLocal {
		t.Error("cached node not PROCESS_LOCAL")
	}
	if tk.LocalityOn("a") != hdfs.NodeLocal || tk.LocalityOn("b") != hdfs.NodeLocal {
		t.Error("replica node not NODE_LOCAL")
	}
	if tk.LocalityOn("z") != hdfs.Any {
		t.Error("other node not ANY")
	}
}

func TestSuccessMetrics(t *testing.T) {
	tk := Task{}
	if tk.SuccessMetrics() != nil {
		t.Fatal("no attempts should yield nil")
	}
	oom := &Metrics{OOM: true, End: 1}
	killed := &Metrics{Killed: true, End: 2}
	good := &Metrics{End: 3}
	tk.Attempts = []*Metrics{oom, killed, good}
	if tk.SuccessMetrics() != good {
		t.Fatal("did not find the successful attempt")
	}
}

func TestTaskString(t *testing.T) {
	tk := Task{ID: 7, StageID: 3, Index: 2, Kind: Result}
	s := tk.String()
	for _, want := range []string{"7", "3", "2", "ResultTask"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestStageCompletion(t *testing.T) {
	st := Stage{Tasks: make([]*Task, 3)}
	if st.IsComplete() {
		t.Fatal("fresh stage complete")
	}
	if st.MarkCompleted() {
		t.Fatal("1/3 reported complete")
	}
	if st.MarkCompleted() {
		t.Fatal("2/3 reported complete")
	}
	if !st.MarkCompleted() {
		t.Fatal("3/3 not reported complete")
	}
	if !st.IsComplete() || st.Completed() != 3 {
		t.Fatal("completion state inconsistent")
	}
}

func TestShuffleOutputAccounting(t *testing.T) {
	st := Stage{}
	st.AddShuffleOutput("a", 100)
	st.AddShuffleOutput("b", 50)
	st.AddShuffleOutput("a", 25)
	if st.ShuffleOutputByNode["a"] != 125 || st.ShuffleOutputByNode["b"] != 50 {
		t.Fatalf("by-node = %v", st.ShuffleOutputByNode)
	}
	if st.TotalShuffleOutput() != 175 {
		t.Fatalf("total = %d", st.TotalShuffleOutput())
	}
}

func TestLoseNodeOutputsSkipsUncountedEntries(t *testing.T) {
	// Four tasks: 0, 1 and 3 finished (counted), 2 still running but with
	// its shuffle output already materialized on node "a" — the attempt is
	// between its write phase and its success report. Losing "a" must roll
	// the counter back only for the finished tasks; decrementing for the
	// uncounted entry would leave the stage one completion short forever.
	st := Stage{Tasks: []*Task{
		{Index: 0, State: Finished},
		{Index: 1, State: Finished},
		{Index: 2, State: Running},
		{Index: 3, State: Finished},
	}}
	st.RecordShuffleOutput(0, "a", 10)
	st.MarkCompleted()
	st.RecordShuffleOutput(1, "a", 10)
	st.MarkCompleted()
	st.RecordShuffleOutput(3, "b", 10)
	st.MarkCompleted()
	st.RecordShuffleOutput(2, "a", 10) // written, not yet succeeded

	lost := st.LoseNodeOutputs("a")
	if len(lost) != 3 {
		t.Fatalf("lost = %v, want indices 0 1 2", lost)
	}
	if st.Completed() != 1 {
		t.Fatalf("completed = %d after rollback, want 1 (only task 3 still counted)", st.Completed())
	}
	// Reruns of 0 and 1 finish, then 2's original success lands: the stage
	// must report complete on the last one.
	st.Tasks[0].State, st.Tasks[1].State = Finished, Finished
	st.RecordShuffleOutput(0, "b", 10)
	if st.MarkCompleted() {
		t.Fatal("complete at 2/4")
	}
	st.RecordShuffleOutput(1, "b", 10)
	if st.MarkCompleted() {
		t.Fatal("complete at 3/4")
	}
	st.Tasks[2].State = Finished
	st.RecordShuffleOutput(2, "c", 10)
	if !st.MarkCompleted() {
		t.Fatal("stage not complete after every task finished — counter in deficit")
	}
}

func TestApplicationHelpers(t *testing.T) {
	mk := func(ids ...int) *Stage {
		st := &Stage{}
		for _, id := range ids {
			st.Tasks = append(st.Tasks, &Task{ID: id})
		}
		return st
	}
	app := Application{
		Jobs: []*Job{
			{Stages: []*Stage{mk(1, 2), mk(3)}},
			{Stages: []*Stage{mk(4)}},
		},
	}
	if app.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d", app.NumTasks())
	}
	all := app.AllTasks()
	if len(all) != 4 || all[0].ID != 1 || all[3].ID != 4 {
		t.Fatalf("AllTasks = %v", all)
	}
}
