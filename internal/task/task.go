// Package task defines the unit of scheduling: tasks with
// multi-dimensional resource demand vectors, their runtime metrics (the
// right-hand side of the paper's Table I), and the stage/job/application
// structures the DAG scheduler produces. Both schedulers — default Spark
// and RUPAM — operate on these types; RUPAM additionally mines the metrics
// for its task-characteristics database.
package task

import (
	"fmt"
	"sort"

	"rupam/internal/hdfs"
)

// Kind distinguishes the two Spark task types; the paper's Algorithm 1
// seeds unseen ShuffleMapTasks into every resource queue and unseen
// ResultTasks into the network queue.
type Kind int

// Task kinds.
const (
	ShuffleMap Kind = iota // writes shuffle output for a child stage
	Result                 // computes the action's result, returned to the driver
)

// String returns the Spark class name of the kind.
func (k Kind) String() string {
	if k == ShuffleMap {
		return "ShuffleMapTask"
	}
	return "ResultTask"
}

// Demand is a task's ground-truth resource requirement vector. The
// simulator executes it; the schedulers never see it directly — RUPAM
// learns an approximation from observed Metrics, exactly as the paper's
// Task Manager does.
type Demand struct {
	// InputBytes are read from the block store (or the cache when the
	// source partition is cached on the executor).
	InputBytes int64
	// ShuffleReadBytes are fetched from parent-stage map outputs,
	// local-disk or network depending on where the maps ran.
	ShuffleReadBytes int64
	// CPUWork is compute demand in giga-cycles (seconds on a 1 GHz core).
	CPUWork float64
	// GPUWork is compute demand offloadable to an accelerator, in
	// giga-cycles. A task with GPUWork > 0 is GPU-capable: on a GPU node
	// it runs GPUWork on the accelerator; otherwise the work falls back
	// to the CPU (the OpenBLAS path).
	GPUWork float64
	// PeakMemory is the task's working set in bytes, held for the task's
	// lifetime in the executor heap.
	PeakMemory int64
	// ShuffleWriteBytes are written to the local shuffle store (map side).
	ShuffleWriteBytes int64
	// OutputBytes are sent back to the driver (result side).
	OutputBytes int64
	// CacheBytes, if positive, are stored in the executor's cache when
	// the task completes (the stage materializes a cached RDD partition).
	CacheBytes int64
	// FallbackCPUWork is the extra compute (giga-cycles) of recomputing
	// the task's cached input from lineage when the cache misses — a
	// crashed worker's lost partitions are not free to restore.
	FallbackCPUWork float64
}

// TotalComputeWork returns CPU work plus GPU work as executed on a CPU.
func (d Demand) TotalComputeWork() float64 { return d.CPUWork + d.GPUWork }

// GPUCapable reports whether the task can use an accelerator.
func (d Demand) GPUCapable() bool { return d.GPUWork > 0 }

// MetricsArena hands out Metrics in chunks. Attempt records are retained
// for the whole run (the CharDB, tracing, and the chaos fingerprint all
// read them afterwards), so they can never be recycled — but they can be
// batched: one allocation per chunk instead of one per attempt. The zero
// value is ready to use.
type MetricsArena struct {
	chunk []Metrics
	// Allocs counts chunk allocations; News counts Metrics handed out.
	// Exposed for the perf battery's steady-state accounting.
	Allocs, News uint64
}

// metricsChunk is the arena block size.
const metricsChunk = 64

// New returns a zeroed Metrics from the arena.
func (a *MetricsArena) New() *Metrics {
	if len(a.chunk) == 0 {
		a.chunk = make([]Metrics, metricsChunk)
		a.Allocs++
	}
	m := &a.chunk[0]
	a.chunk = a.chunk[1:]
	a.News++
	return m
}

// Metrics is what the framework observes about one task attempt — the
// task-side columns of Table I. RUPAM's Task Manager persists these in its
// task-characteristics database keyed by (stage, partition).
type Metrics struct {
	Executor string // node the attempt ran on
	Locality hdfs.Locality

	Launch float64 // time the attempt was handed to an executor
	Start  float64 // time execution began
	End    float64 // time the attempt finished (success or failure)

	SchedulerDelay   float64
	DeserializeTime  float64
	InputDiskTime    float64 // block-store read served from local disk
	InputNetTime     float64 // block-store or cache read served remotely
	ShuffleReadTime  float64
	ComputeTime      float64
	GCTime           float64
	ShuffleWriteTime float64
	SerializeTime    float64

	BytesReadRemote int64 // portion of input/shuffle bytes that crossed the network

	// ShuffleBytesLocal / ShuffleBytesRemote split the shuffle read by
	// fetch medium, so reporting can attribute ShuffleReadTime between
	// disk and network by byte share.
	ShuffleBytesLocal  int64
	ShuffleBytesRemote int64

	PeakMemory  int64
	UsedGPU     bool
	OOM         bool // attempt died with an out-of-memory error
	Killed      bool // attempt was terminated (straggler copy lost the race, or memory reclaim)
	FetchFailed bool // attempt died fetching shuffle data from a lost node
	Flaked      bool // attempt died of a transient node-local gray failure
}

// Duration returns wall time from launch to end.
func (m Metrics) Duration() float64 { return m.End - m.Launch }

// Succeeded reports whether the attempt ran to successful completion.
func (m Metrics) Succeeded() bool {
	return m.End > 0 && !m.OOM && !m.Killed && !m.FetchFailed && !m.Flaked
}

// ShuffleTime returns total time in shuffle I/O.
func (m Metrics) ShuffleTime() float64 { return m.ShuffleReadTime + m.ShuffleWriteTime }

// State tracks a task through its lifetime.
type State int

// Task states.
const (
	Pending State = iota
	Running
	Finished
	Failed
)

// Task is one partition's worth of work in a stage.
type Task struct {
	ID      int // unique within the application
	StageID int
	Index   int // partition index within the stage
	Kind    Kind
	Demand  Demand

	// PrefNodes are the task's preferred locations (block replicas), in
	// replica order.
	PrefNodes []string
	// CachedOn, when non-empty, names the node whose executor holds the
	// task's input partition in cache — the PROCESS_LOCAL location. The
	// driver resolves it from the cache tracker at job-submission time.
	CachedOn string
	// CacheRDD, if non-zero, is the RDD whose partition this task reads
	// from cache when available; on a cache miss the executor falls back
	// to reading InputBytes from PrefNodes (lineage re-read).
	CacheRDD int

	State    State
	Attempts []*Metrics
}

// LocalityOn returns the best locality level the task would have on node.
func (t *Task) LocalityOn(node string) hdfs.Locality {
	if t.CachedOn == node {
		return hdfs.ProcessLocal
	}
	for _, p := range t.PrefNodes {
		if p == node {
			return hdfs.NodeLocal
		}
	}
	return hdfs.Any
}

// SuccessMetrics returns the metrics of the successful attempt, or nil.
func (t *Task) SuccessMetrics() *Metrics {
	for _, a := range t.Attempts {
		if a.Succeeded() {
			return a
		}
	}
	return nil
}

// String identifies the task for diagnostics.
func (t *Task) String() string {
	return fmt.Sprintf("task %d (stage %d, part %d, %s)", t.ID, t.StageID, t.Index, t.Kind)
}

// Stage is a set of tasks with no internal shuffle boundary.
type Stage struct {
	ID    int
	Name  string
	JobID int
	// Signature identifies the stage's computation across jobs: iteration
	// i's stage has the same signature as iteration i-1's, which is how
	// RUPAM's task-characteristics database recognizes recurring tasks
	// (the paper's §III-B2 observation that data centers re-run the same
	// applications on similar inputs).
	Signature string
	Kind      Kind
	Tasks     []*Task
	Parent    []*Stage // shuffle dependencies that must complete first

	// RDDID identifies the RDD whose partitions this stage's input comes
	// from, for cache lookups; 0 means no cacheable input.
	RDDID int
	// CacheRDDID, if non-zero, identifies the RDD this stage materializes
	// into the cache (task.Demand.CacheBytes per partition).
	CacheRDDID int

	// ShuffleOutputByNode accumulates, as map tasks finish, how many
	// shuffle bytes live on each node; child-stage tasks split their
	// shuffle reads across these locations proportionally.
	ShuffleOutputByNode map[string]int64

	// outputLoc remembers, per task index, where (and how large) the
	// task's map output was materialized, so that losing a node can be
	// translated back into the set of map tasks that must rerun.
	outputLoc map[int]shuffleLoc

	completed int
}

// shuffleLoc is one map task's materialized output location.
type shuffleLoc struct {
	node  string
	bytes int64
}

// NumTasks returns the stage's task count.
func (s *Stage) NumTasks() int { return len(s.Tasks) }

// MarkCompleted records one task completion and reports whether the stage
// is now fully complete.
func (s *Stage) MarkCompleted() bool {
	s.completed++
	return s.completed >= len(s.Tasks)
}

// Completed returns the number of completed tasks.
func (s *Stage) Completed() int { return s.completed }

// IsComplete reports whether all tasks finished.
func (s *Stage) IsComplete() bool { return s.completed >= len(s.Tasks) }

// AddShuffleOutput records bytes of map output materialized on node.
func (s *Stage) AddShuffleOutput(node string, bytes int64) {
	if s.ShuffleOutputByNode == nil {
		s.ShuffleOutputByNode = make(map[string]int64)
	}
	s.ShuffleOutputByNode[node] += bytes
}

// RecordShuffleOutput records a specific map task's output on node. A
// rerun (or a winning speculative copy on another node) overwrites the
// task's previous location — the freshest copy is the one child stages
// are told about.
func (s *Stage) RecordShuffleOutput(taskIndex int, node string, bytes int64) {
	s.AddShuffleOutput(node, bytes)
	if s.outputLoc == nil {
		s.outputLoc = make(map[int]shuffleLoc)
	}
	s.outputLoc[taskIndex] = shuffleLoc{node: node, bytes: bytes}
}

// OutputNodeOf returns the node holding taskIndex's map output, or "".
func (s *Stage) OutputNodeOf(taskIndex int) string { return s.outputLoc[taskIndex].node }

// OutputOf returns the node and size of taskIndex's materialized map
// output ("" and 0 if none is registered).
func (s *Stage) OutputOf(taskIndex int) (string, int64) {
	loc := s.outputLoc[taskIndex]
	return loc.node, loc.bytes
}

// RelocateOutput moves taskIndex's materialized map output from its
// current node to another (a graceful-drain re-replication during a spot
// grace window), keeping the per-node byte aggregates consistent so child
// stages split their shuffle reads against the new location. Returns the
// moved byte count, or ok=false when the index has no registered output,
// already lives on to, or the move would be a no-op — the drain path calls
// this from a transfer-completion callback, by which time a rerun may have
// re-registered the output elsewhere.
func (s *Stage) RelocateOutput(taskIndex int, to string) (int64, bool) {
	loc, ok := s.outputLoc[taskIndex]
	if !ok || loc.node == to || loc.bytes <= 0 {
		return 0, false
	}
	s.ShuffleOutputByNode[loc.node] -= loc.bytes
	if s.ShuffleOutputByNode[loc.node] <= 0 {
		delete(s.ShuffleOutputByNode, loc.node)
	}
	s.AddShuffleOutput(to, loc.bytes)
	s.outputLoc[taskIndex] = shuffleLoc{node: to, bytes: loc.bytes}
	return loc.bytes, true
}

// ResetShuffleOutputs forgets every materialized map output and zeroes the
// completion counter. Crash recovery uses it to rebuild the stage's output
// registry from the write-ahead log: only outputs whose success records
// were durably logged are re-registered, anything an executor wrote but
// never reported lands again through redelivered completions.
func (s *Stage) ResetShuffleOutputs() {
	s.ShuffleOutputByNode = nil
	s.outputLoc = nil
	s.completed = 0
}

// SetCompleted forces the completion counter, clamped to [0, NumTasks].
// Recovery sets it to the number of logged-finished tasks in the stage.
func (s *Stage) SetCompleted(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(s.Tasks) {
		n = len(s.Tasks)
	}
	s.completed = n
}

// LoseNodeOutputs removes every map output the stage had materialized on
// node (a fail-stop loss of the node's shuffle files) and returns the
// indices of the tasks whose output is gone, in ascending order. The
// completion counter is rolled back only for outputs whose task actually
// finished: an attempt killed between its shuffle write and its success
// report leaves an output entry that was never counted, and decrementing
// for it would put the counter in permanent deficit — the stage could
// then never report complete again.
func (s *Stage) LoseNodeOutputs(node string) []int {
	var lost []int
	for idx, loc := range s.outputLoc {
		if loc.node == node {
			lost = append(lost, idx)
		}
	}
	if len(lost) == 0 {
		return nil
	}
	sort.Ints(lost)
	for _, idx := range lost {
		delete(s.outputLoc, idx)
		if t := s.TaskByIndex(idx); t != nil && t.State == Finished {
			s.completed--
		}
	}
	delete(s.ShuffleOutputByNode, node)
	if s.completed < 0 {
		s.completed = 0
	}
	return lost
}

// TaskByIndex returns the stage's task with the given partition index, or
// nil.
func (s *Stage) TaskByIndex(idx int) *Task {
	if idx >= 0 && idx < len(s.Tasks) && s.Tasks[idx].Index == idx {
		return s.Tasks[idx]
	}
	for _, t := range s.Tasks {
		if t.Index == idx {
			return t
		}
	}
	return nil
}

// TotalShuffleOutput returns the stage's total materialized shuffle bytes.
func (s *Stage) TotalShuffleOutput() int64 {
	var total int64
	for _, b := range s.ShuffleOutputByNode {
		total += b
	}
	return total
}

// Job is a DAG of stages triggered by one action.
type Job struct {
	ID     int
	Name   string
	Stages []*Stage
	Final  *Stage
}

// Application is a sequence of jobs submitted by one driver program, e.g.
// one job per iteration of an ML algorithm.
type Application struct {
	Name string
	Jobs []*Job
}

// NumTasks returns the total task count across all jobs.
func (a *Application) NumTasks() int {
	n := 0
	for _, j := range a.Jobs {
		for _, s := range j.Stages {
			n += len(s.Tasks)
		}
	}
	return n
}

// AllTasks returns every task across all jobs and stages, in definition
// order.
func (a *Application) AllTasks() []*Task {
	var ts []*Task
	for _, j := range a.Jobs {
		for _, s := range j.Stages {
			ts = append(ts, s.Tasks...)
		}
	}
	return ts
}
