package executor

import (
	"testing"
	"testing/quick"
)

func TestCacheInsertLookup(t *testing.T) {
	c := NewCacheTracker()
	key := CacheKey{RDD: 1, Partition: 2}
	if _, ok := c.Lookup(key); ok {
		t.Fatal("lookup on empty tracker")
	}
	c.Insert(key, "n1", 100, 0)
	node, ok := c.Lookup(key)
	if !ok || node != "n1" {
		t.Fatalf("lookup = %v %v", node, ok)
	}
	if c.CachedPartitions() != 1 || c.NodeBytes("n1") != 100 {
		t.Fatal("accounting wrong")
	}
}

func TestCacheInsertMoves(t *testing.T) {
	c := NewCacheTracker()
	key := CacheKey{RDD: 1, Partition: 0}
	c.Insert(key, "n1", 100, 0)
	c.Insert(key, "n2", 120, 1)
	node, _ := c.Lookup(key)
	if node != "n2" {
		t.Fatalf("partition on %s, want n2", node)
	}
	if c.NodeBytes("n1") != 0 || c.NodeBytes("n2") != 120 {
		t.Fatal("move did not transfer bytes")
	}
}

func TestCacheRemove(t *testing.T) {
	c := NewCacheTracker()
	key := CacheKey{RDD: 3, Partition: 1}
	if _, _, ok := c.Remove(key); ok {
		t.Fatal("removed missing key")
	}
	c.Insert(key, "n1", 64, 0)
	node, bytes, ok := c.Remove(key)
	if !ok || node != "n1" || bytes != 64 {
		t.Fatalf("remove = %v %v %v", node, bytes, ok)
	}
	if c.CachedPartitions() != 0 {
		t.Fatal("entry survived remove")
	}
}

func TestEvictLRUOrder(t *testing.T) {
	c := NewCacheTracker()
	c.Insert(CacheKey{1, 0}, "n1", 100, 0)
	c.Insert(CacheKey{1, 1}, "n1", 100, 1)
	c.Insert(CacheKey{1, 2}, "n1", 100, 2)
	c.Touch(CacheKey{1, 0}, 5) // oldest becomes freshest

	reclaimed := c.EvictLRU("n1", 150)
	if reclaimed != 200 {
		t.Fatalf("reclaimed = %d, want 200 (two 100-byte partitions)", reclaimed)
	}
	if _, ok := c.Lookup(CacheKey{1, 0}); !ok {
		t.Fatal("freshest entry evicted despite Touch")
	}
	if _, ok := c.Lookup(CacheKey{1, 1}); ok {
		t.Fatal("LRU entry survived")
	}
	if c.Evictions != 2 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestEvictLRUOtherNodesUntouched(t *testing.T) {
	c := NewCacheTracker()
	c.Insert(CacheKey{1, 0}, "n1", 100, 0)
	c.Insert(CacheKey{1, 1}, "n2", 100, 0)
	c.EvictLRU("n1", 1000)
	if _, ok := c.Lookup(CacheKey{1, 1}); !ok {
		t.Fatal("eviction leaked to another node")
	}
}

func TestDropNode(t *testing.T) {
	c := NewCacheTracker()
	c.Insert(CacheKey{1, 0}, "n1", 100, 0)
	c.Insert(CacheKey{1, 1}, "n1", 50, 0)
	c.Insert(CacheKey{1, 2}, "n2", 25, 0)
	if lost := c.DropNode("n1"); lost != 150 {
		t.Fatalf("drop lost %d, want 150", lost)
	}
	if c.CachedPartitions() != 1 {
		t.Fatalf("partitions = %d", c.CachedPartitions())
	}
}

// Property: NodeBytes always equals the sum of live entries per node under
// arbitrary insert/remove/evict sequences.
func TestQuickCacheAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCacheTracker()
		mirror := map[CacheKey]struct {
			node  string
			bytes int64
		}{}
		nodes := []string{"a", "b", "c"}
		for i, op := range ops {
			key := CacheKey{RDD: int(op % 4), Partition: int(op / 4 % 4)}
			node := nodes[int(op/16)%3]
			switch i % 3 {
			case 0:
				b := int64(op%97) + 1
				c.Insert(key, node, b, float64(i))
				mirror[key] = struct {
					node  string
					bytes int64
				}{node, b}
			case 1:
				c.Remove(key)
				delete(mirror, key)
			case 2:
				c.EvictLRU(node, int64(op%50))
				// Rebuild the mirror from truth: eviction order is
				// internal, so verify only the node-bytes identity below.
				for k := range mirror {
					if _, ok := c.Lookup(k); !ok {
						delete(mirror, k)
					}
				}
			}
			sums := map[string]int64{}
			for k, v := range mirror {
				if n, ok := c.Lookup(k); !ok || n != v.node {
					return false
				}
				sums[v.node] += v.bytes
			}
			for _, n := range nodes {
				if c.NodeBytes(n) != sums[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
