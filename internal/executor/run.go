package executor

import (
	"cmp"
	"slices"
	"sort"

	"rupam/internal/netsim"
	"rupam/internal/simx"
	"rupam/internal/task"
	"rupam/internal/tracing"
)

var runSeq uint64

func nextRunSeq() uint64 { runSeq++; return runSeq }

// ResetRunSeq restores the global run sequence counter; tests call it so
// that runs are reproducible regardless of execution order.
func ResetRunSeq() { runSeq = 0 }

// Run is one in-flight task attempt: a small state machine whose phases
// claim node resources and chain via completion callbacks.
type Run struct {
	ex     *Executor
	t      *task.Task
	st     *task.Stage
	m      *task.Metrics
	opts   Options
	onDone func(*Run, Outcome)
	seq    uint64
	tr     *tracing.AttemptTrace // nil when tracing is disabled

	memHeld     int64
	reservedMem int64 // returned to the executor when execution starts
	gpuHeld     bool
	extraGC     float64 // eviction-induced GC added during admission
	extraCPU    float64 // lineage-recompute work added on a cache miss
	phaseStart  float64

	// live references for cancellation
	claims []*simx.Claim
	flows  []*netsim.Flow
	timer  simx.Timer

	// fetchSrcs names the remote nodes the in-progress shuffle read is
	// streaming from; cleared when the phase completes. The driver uses it
	// to fail attempts whose fetch source just died.
	fetchSrcs []string

	pending int // barrier counter for parallel transfers
	done    bool
}

func sortRuns(rs []*Run) {
	// slices.SortFunc, not sort.Slice: this runs on every scheduler scan
	// of an executor, and the reflection-based swapper allocates.
	slices.SortFunc(rs, func(a, b *Run) int { return cmp.Compare(a.seq, b.seq) })
}

// Task returns the task being attempted.
func (r *Run) Task() *task.Task { return r.t }

// Stage returns the task's stage.
func (r *Run) Stage() *task.Stage { return r.st }

// Metrics returns the attempt's metrics (live; fields fill in as phases
// complete).
func (r *Run) Metrics() *task.Metrics { return r.m }

// Speculative reports whether this attempt is a speculative copy.
func (r *Run) Speculative() bool { return r.opts.Speculative }

// Done reports whether the attempt has reached a terminal state.
func (r *Run) Done() bool { return r.done }

// Executor returns the executor running the attempt.
func (r *Run) Executor() *Executor { return r.ex }

// armTimer schedules fn after delay, tracking the timer for cancellation.
func (r *Run) armTimer(delay float64, fn func()) {
	r.timer = r.ex.eng.Schedule(delay, func() {
		r.timer = simx.Timer{}
		if !r.done {
			fn()
		}
	})
}

// claimCPU acquires CPU work, tracking the claim.
func (r *Run) claimCPU(work float64, then func()) {
	c := r.ex.node.CPU.Acquire(work, func() {
		if !r.done {
			then()
		}
	})
	r.claims = append(r.claims, c)
}

// claimDisk acquires disk bandwidth on res, tracking the claim.
func (r *Run) claimDisk(res *simx.PSResource, bytes int64, then func()) {
	c := res.Acquire(float64(bytes), func() {
		if !r.done {
			then()
		}
	})
	r.claims = append(r.claims, c)
}

// startFlow begins a network transfer, tracking the flow.
func (r *Run) startFlow(src, dst string, bytes int64, then func()) {
	f := r.ex.clu.Net.Start(src, dst, float64(bytes), func() {
		if !r.done {
			then()
		}
	})
	r.flows = append(r.flows, f)
}

// barrier decrements the parallel-transfer counter and calls then when it
// reaches zero.
func (r *Run) barrier(then func()) func() {
	return func() {
		r.pending--
		if r.pending == 0 && !r.done {
			then()
		}
	}
}

// ---- phase 1: start & memory admission -------------------------------

func (r *Run) start() {
	r.dropReservation()
	now := r.ex.eng.Now()
	r.m.Start = now
	r.m.SchedulerDelay = now - r.m.Launch
	r.m.PeakMemory = r.t.Demand.PeakMemory

	// Gray failure: inside a TaskFlake window each attempt may be doomed
	// to a transient failure. The RNG is consulted only while a window is
	// open, so fault-free runs never touch it.
	if r.ex.flakeProb > 0 && r.ex.rng.Float64() < r.ex.flakeProb {
		r.flakeLater()
		return
	}

	need := r.t.Demand.PeakMemory
	heap := r.ex.heap
	if heap.Free() < need {
		// Unified memory: evict cached partitions to make room, at a GC
		// cost (LRU management, §IV-D).
		reclaimed := r.ex.evictCache(need - heap.Free())
		r.extraGC += r.ex.cfg.EvictGCPerGB * float64(reclaimed) / 1e9
	}
	if heap.Free() < need {
		// The allocation cannot succeed: the attempt is doomed to OOM
		// partway through execution.
		r.oomLater()
		return
	}
	heap.ForceAlloc(need)
	r.memHeld = need
	r.deserialize()
}

// oomLater lets the doomed attempt burn CPU for a while, then fails it
// with an OutOfMemory error, possibly crashing the worker.
func (r *Run) oomLater() {
	r.tr.Phase("oom-doomed")
	d := r.t.Demand
	est := d.TotalComputeWork() / r.ex.node.Spec.FreqGHz
	delay := r.ex.cfg.OOMRunFraction*est + 0.5
	r.claimCPU(delay*r.ex.node.Spec.FreqGHz, func() {
		r.m.OOM = true
		r.ex.OOMs++
		crash := r.ex.rng.Float64() < r.ex.cfg.WorkerCrashProb
		r.finish(OOM)
		if crash {
			r.ex.crash()
		}
	})
}

// flakeLater lets the doomed attempt burn CPU for a while, then fails it
// with a transient Flaked error — no memory was admitted, no worker
// crashes; the driver just sees a failed attempt to retry elsewhere.
func (r *Run) flakeLater() {
	r.tr.Phase("flake-doomed")
	d := r.t.Demand
	est := d.TotalComputeWork() / r.ex.node.Spec.FreqGHz
	delay := 0.25*est + 0.2
	r.claimCPU(delay*r.ex.node.Spec.FreqGHz, func() {
		r.m.Flaked = true
		r.ex.Flakes++
		r.finish(Flaked)
	})
}

// evictCache reclaims up to need bytes of cached partitions on this node,
// releasing them from the heap. It returns the bytes reclaimed.
func (ex *Executor) evictCache(need int64) int64 {
	reclaimed := ex.cache.EvictLRU(ex.node.Name(), need)
	if reclaimed > 0 {
		ex.heap.Release(reclaimed)
	}
	return reclaimed
}

// ReclaimCache evicts up to need bytes of this node's cached partitions,
// returning the bytes reclaimed (RUPAM's pre-kill memory relief).
func (ex *Executor) ReclaimCache(need int64) int64 {
	if need <= 0 {
		return 0
	}
	return ex.evictCache(need)
}

// crash takes the executor offline: every running attempt is killed, the
// node's cached partitions are lost, and the executor restarts after
// RestartDelay.
func (ex *Executor) crash() {
	if ex.down {
		return
	}
	ex.down = true
	ex.Crashes++
	for _, r := range ex.Running() {
		r.Kill(true)
	}
	if lost := ex.cache.DropNode(ex.node.Name()); lost > 0 {
		ex.heap.Release(lost)
	}
	ex.eng.Schedule(ex.cfg.RestartDelay, func() {
		if ex.failStopped {
			return // the node fail-stopped meanwhile; its recovery governs
		}
		ex.down = false
		if ex.OnRestart != nil {
			ex.OnRestart()
		}
	})
}

// ---- phase 2: deserialization -----------------------------------------

func (r *Run) deserialize() {
	r.tr.Phase("deserialize")
	r.phaseStart = r.ex.eng.Now()
	d := r.t.Demand
	work := r.ex.cfg.SerCPUPerByte * float64(d.InputBytes+d.ShuffleReadBytes)
	r.claimCPU(work, func() {
		r.m.DeserializeTime = r.ex.eng.Now() - r.phaseStart
		r.readInput()
	})
}

// ---- phase 3: input read ----------------------------------------------

func (r *Run) readInput() {
	d := r.t.Demand
	if d.InputBytes == 0 {
		r.readShuffle()
		return
	}
	r.tr.Phase("input-read")
	r.phaseStart = r.ex.eng.Now()
	me := r.ex.node.Name()

	// Cached input: PROCESS_LOCAL hit is a memory read; a hit on another
	// node streams over the network; a miss falls back to a lineage
	// re-read from the root dataset replicas below.
	if r.t.CacheRDD != 0 {
		key := CacheKey{RDD: r.t.CacheRDD, Partition: r.t.Index}
		node, ok := r.ex.cache.Lookup(key)
		if !ok {
			// Cache miss (evicted or lost in a crash): the partition is
			// rebuilt from lineage — re-read below plus recompute work.
			r.extraCPU += d.FallbackCPUWork
		}
		if ok {
			r.ex.cache.Touch(key, r.ex.eng.Now())
			if node == me {
				r.ex.eng.Schedule(0, func() {
					if !r.done {
						r.readShuffle()
					}
				})
				return
			}
			r.pending = 1
			r.m.BytesReadRemote += d.InputBytes
			r.startFlow(node, me, d.InputBytes, func() {
				if r.ex.cfg.RelocateCacheOnRemoteRead {
					// Block relocation: the partition follows the task,
					// so a migrated task is PROCESS_LOCAL on its new node
					// next iteration (RUPAM only; stock Spark leaves the
					// block where it was computed).
					r.ex.adoptCachedBlock(key, d.InputBytes)
				}
				r.inputDone(true)()
			})
			return
		}
	}

	// Block-store read: local disk when a replica (or the fallback) is
	// here, otherwise stream from the first replica, whose disk is read
	// concurrently with the transfer (the slower of the two bounds the
	// phase, approximating a pipelined remote read).
	for _, p := range r.t.PrefNodes {
		if p == me {
			r.pending = 1
			r.claimDisk(r.ex.node.DiskRead, d.InputBytes, r.inputDone(false))
			return
		}
	}
	if len(r.t.PrefNodes) == 0 {
		// No known location (synthetic input): charge a local read.
		r.pending = 1
		r.claimDisk(r.ex.node.DiskRead, d.InputBytes, r.inputDone(false))
		return
	}
	src := r.t.PrefNodes[0]
	r.m.BytesReadRemote += d.InputBytes
	r.pending = 1
	if peer := r.ex.peers[src]; peer != nil {
		r.pending = 2
		r.claimDisk(peer.node.DiskRead, d.InputBytes, r.inputDone(true))
	}
	r.startFlow(src, me, d.InputBytes, r.inputDone(true))
}

// inputDone wraps the barrier and records input-read time by medium.
func (r *Run) inputDone(remote bool) func() {
	return r.barrier(func() {
		dt := r.ex.eng.Now() - r.phaseStart
		if remote {
			r.m.InputNetTime = dt
		} else {
			r.m.InputDiskTime = dt
		}
		r.readShuffle()
	})
}

// adoptCachedBlock moves a cached partition to this executor after a
// remote cache read, when storage memory allows.
func (ex *Executor) adoptCachedBlock(key CacheKey, bytes int64) {
	storageCap := int64(ex.cfg.StorageFraction * float64(ex.heap.Capacity()))
	if bytes > storageCap {
		return
	}
	oldNode, oldBytes, ok := ex.cache.Remove(key)
	if !ok {
		return
	}
	if peer := ex.peers[oldNode]; peer != nil {
		peer.heap.Release(oldBytes)
	}
	used := ex.cache.NodeBytes(ex.node.Name())
	if used+bytes > storageCap {
		ex.evictCache(used + bytes - storageCap)
	}
	if ex.heap.Free() < bytes {
		ex.evictCache(bytes - ex.heap.Free())
	}
	if ex.heap.Free() >= bytes {
		ex.heap.ForceAlloc(bytes)
		ex.cache.Insert(key, ex.node.Name(), bytes, ex.eng.Now())
	}
}

// ---- phase 4: shuffle read ----------------------------------------------

// readShuffle fetches the task's share of every parent stage's map output:
// the portion that happens to live on this node comes off local disk, the
// rest arrives as one network flow per source node (with the source's disk
// claimed concurrently).
func (r *Run) readShuffle() {
	d := r.t.Demand
	if d.ShuffleReadBytes == 0 {
		r.compute()
		return
	}
	r.tr.Phase("shuffle-read")
	r.phaseStart = r.ex.eng.Now()
	me := r.ex.node.Name()

	// Aggregate parent map outputs by node, into per-executor scratch —
	// this section is synchronous, so the reuse cannot interleave.
	if r.ex.shuffleByNode == nil {
		r.ex.shuffleByNode = make(map[string]int64)
	}
	byNode := r.ex.shuffleByNode
	for n := range byNode {
		delete(byNode, n)
	}
	var total int64
	for _, p := range r.st.Parent {
		for n, b := range p.ShuffleOutputByNode {
			byNode[n] += b
			total += b
		}
	}
	if total == 0 {
		// Parents produced no shuffle data (degenerate stage): nothing
		// to fetch.
		r.compute()
		return
	}
	nodes := r.ex.shuffleNodes[:0]
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	r.ex.shuffleNodes = nodes

	done := func() {
		r.fetchSrcs = nil
		r.m.ShuffleReadTime = r.ex.eng.Now() - r.phaseStart
		r.compute()
	}
	barrier := r.barrier(done)

	r.pending = 1 // guard against zero-byte splits completing synchronously
	for _, n := range nodes {
		share := int64(float64(d.ShuffleReadBytes) * float64(byNode[n]) / float64(total))
		if share <= 0 {
			continue
		}
		if n == me {
			r.m.ShuffleBytesLocal += share
			r.pending++
			r.claimDisk(r.ex.node.DiskRead, share, barrier)
			continue
		}
		r.m.BytesReadRemote += share
		r.m.ShuffleBytesRemote += share
		r.pending++
		r.fetchSrcs = append(r.fetchSrcs, n)
		r.startFlow(n, me, share, barrier)
		if peer := r.ex.peers[n]; peer != nil {
			r.pending++
			r.claimDisk(peer.node.DiskRead, share, barrier)
		}
	}
	// Release the guard.
	r.ex.eng.Schedule(0, func() {
		if !r.done {
			barrier()
		}
	})
}

// ---- phase 5: compute (CPU or GPU) ---------------------------------------

func (r *Run) compute() {
	r.phaseStart = r.ex.eng.Now()
	d := r.t.Demand
	useGPU := d.GPUCapable() && !r.opts.ForbidGPU && r.ex.node.GPU.TryAcquire()
	if useGPU {
		r.tr.Phase("compute-gpu")
		r.gpuHeld = true
		r.m.UsedGPU = true
		// Non-offloadable work on the CPU first, then the kernel on the
		// accelerator (held exclusively).
		r.claimCPU(d.CPUWork+r.extraCPU, func() {
			r.armTimer(d.GPUWork/r.ex.node.Spec.GPURateGHz, func() {
				r.m.ComputeTime = r.ex.eng.Now() - r.phaseStart
				r.garbageCollect()
			})
		})
		return
	}
	r.tr.Phase("compute")
	r.claimCPU(d.TotalComputeWork()+r.extraCPU, func() {
		r.m.ComputeTime = r.ex.eng.Now() - r.phaseStart
		r.garbageCollect()
	})
}

// ---- phase 6: garbage collection ------------------------------------------

// garbageCollect charges JVM GC proportional to the attempt's allocation
// churn, superlinear in heap pressure: a nearly-full heap forces frequent
// full collections over the whole space (§IV-D's SQL-under-RUPAM effect),
// while a roomy heap absorbs churn cheaply.
func (r *Run) garbageCollect() {
	r.phaseStart = r.ex.eng.Now()
	d := r.t.Demand
	heap := r.ex.heap
	// A MemPressure window shrinks the effective heap to memPressure ×
	// nominal: the same live bytes read as proportionally higher pressure
	// (division by the healthy value 1 is exact, preserving byte-identity
	// of unfaulted runs).
	pressure := heap.Utilization() / r.ex.memPressure
	if pressure > 0.95 {
		pressure = 0.95
	}
	churnGB := float64(d.PeakMemory+d.InputBytes+d.ShuffleReadBytes+d.ShuffleWriteBytes) / 1e9
	gcSec := r.ex.cfg.GCFactor*churnGB*(pressure*pressure)/(1-pressure) + r.extraGC
	if gcSec <= 0 {
		r.cacheInsert()
		return
	}
	r.tr.Phase("gc")
	// GC burns CPU on the node.
	r.claimCPU(gcSec*r.ex.node.Spec.FreqGHz, func() {
		r.m.GCTime = r.ex.eng.Now() - r.phaseStart
		r.cacheInsert()
	})
}

// ---- phase 7: cache materialization ----------------------------------------

func (r *Run) cacheInsert() {
	d := r.t.Demand
	if d.CacheBytes > 0 {
		ex := r.ex
		key := CacheKey{RDD: r.st.CacheRDDID, Partition: r.t.Index}
		// A re-materialization displaces the old copy (possibly on another
		// node, when the task migrated); release that heap first.
		if oldNode, oldBytes, ok := ex.cache.Remove(key); ok {
			if peer := ex.peers[oldNode]; peer != nil {
				peer.heap.Release(oldBytes)
			}
		}
		storageCap := int64(ex.cfg.StorageFraction * float64(ex.heap.Capacity()))
		if d.CacheBytes <= storageCap {
			used := ex.cache.NodeBytes(ex.node.Name())
			if used+d.CacheBytes > storageCap {
				ex.evictCache(used + d.CacheBytes - storageCap)
			}
			if ex.heap.Free() < d.CacheBytes {
				ex.evictCache(d.CacheBytes - ex.heap.Free())
			}
			if ex.heap.Free() >= d.CacheBytes {
				ex.heap.ForceAlloc(d.CacheBytes)
				ex.cache.Insert(key, ex.node.Name(), d.CacheBytes, ex.eng.Now())
			}
		}
	}
	r.writeShuffle()
}

// ---- phase 8: shuffle write ---------------------------------------------

func (r *Run) writeShuffle() {
	d := r.t.Demand
	if d.ShuffleWriteBytes == 0 {
		r.serialize()
		return
	}
	r.tr.Phase("shuffle-write")
	r.phaseStart = r.ex.eng.Now()
	r.claimDisk(r.ex.node.DiskWrite, d.ShuffleWriteBytes, func() {
		r.m.ShuffleWriteTime = r.ex.eng.Now() - r.phaseStart
		r.st.RecordShuffleOutput(r.t.Index, r.ex.node.Name(), d.ShuffleWriteBytes)
		r.serialize()
	})
}

// ---- phase 9: serialization & result send ---------------------------------

func (r *Run) serialize() {
	r.tr.Phase("serialize")
	r.phaseStart = r.ex.eng.Now()
	d := r.t.Demand
	work := r.ex.cfg.SerCPUPerByte * float64(d.ShuffleWriteBytes+d.OutputBytes)
	r.claimCPU(work, func() {
		if d.OutputBytes > 0 && r.ex.cfg.DriverNode != "" {
			r.startFlow(r.ex.node.Name(), r.ex.cfg.DriverNode, d.OutputBytes, func() {
				r.m.SerializeTime = r.ex.eng.Now() - r.phaseStart
				r.finish(Success)
			})
			return
		}
		r.m.SerializeTime = r.ex.eng.Now() - r.phaseStart
		r.finish(Success)
	})
}

// ---- terminal states -------------------------------------------------------

// finish releases all held resources, stamps the metrics, and reports the
// outcome exactly once.
func (r *Run) finish(o Outcome) {
	if r.done {
		return
	}
	r.done = true
	r.release()
	r.m.End = r.ex.eng.Now()
	r.tr.Finish(o.String())
	delete(r.ex.running, r)
	if r.onDone != nil {
		cb := r.onDone
		r.onDone = nil
		cb(r, o)
	}
}

// FetchingFrom reports whether the attempt's in-progress shuffle read is
// streaming from node.
func (r *Run) FetchingFrom(node string) bool {
	for _, s := range r.fetchSrcs {
		if s == node {
			return true
		}
	}
	return false
}

// RedirectFetch re-targets the attempt's in-flight shuffle read from a
// dying source to a peer that holds re-replicated copies of its blocks:
// each active flow from the old node is cancelled and its untransferred
// remainder restarted from the new home, keeping the completion barrier
// intact. Reports whether any flow was redirected.
func (r *Run) RedirectFetch(from, to string) bool {
	if r.done || from == to {
		return false
	}
	r.ex.clu.Net.Sync()
	moved := false
	for i, f := range r.flows {
		if f.Done() || f.Src() != from {
			continue
		}
		if nf := r.ex.clu.Net.Redirect(f, to); nf != nil {
			r.flows[i] = nf
		}
	}
	// Rewriting fetchSrcs covers the flow that already delivered its bytes
	// while the barrier still waits on other transfers: those bytes are
	// safely local, so the read no longer depends on the dying node.
	for i, s := range r.fetchSrcs {
		if s == from {
			r.fetchSrcs[i] = to
			moved = true
		}
	}
	return moved
}

// FailFetch terminates the attempt with a FetchFailed outcome — its
// shuffle-read source died and the map output it was fetching is gone.
// The onDone callback fires with FetchFailed.
func (r *Run) FailFetch() {
	if r.done {
		return
	}
	r.m.FetchFailed = true
	r.finish(FetchFailed)
}

// Kill terminates the attempt (speculative loser, memory-straggler
// reclaim, or worker crash). If notify is true the onDone callback fires
// with Killed; otherwise the attempt ends silently.
func (r *Run) Kill(notify bool) {
	if r.done {
		return
	}
	r.m.Killed = true
	r.ex.KilledCnt++
	if !notify {
		r.onDone = nil
	}
	r.finish(Killed)
}

// dropReservation returns the launch-time memory promise.
func (r *Run) dropReservation() {
	if r.reservedMem > 0 {
		r.ex.reserved -= r.reservedMem
		r.reservedMem = 0
	}
}

// release cancels outstanding claims/flows/timers and returns held memory
// and accelerator tokens.
func (r *Run) release() {
	r.dropReservation()
	r.timer.Cancel()
	r.timer = simx.Timer{}
	for _, c := range r.claims {
		c.Cancel()
	}
	r.claims = nil
	for _, f := range r.flows {
		r.ex.clu.Net.Cancel(f)
	}
	r.flows = nil
	r.fetchSrcs = nil
	if r.memHeld > 0 {
		r.ex.heap.Release(r.memHeld)
		r.memHeld = 0
	}
	if r.gpuHeld {
		r.ex.node.GPU.Release()
		r.gpuHeld = false
	}
}
