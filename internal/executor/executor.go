// Package executor models task execution on a node: the physical phases a
// Spark task goes through (dispatch, deserialization, input read, shuffle
// read, compute on CPU or GPU, garbage collection, cache materialization,
// shuffle write, serialization and result send), each claiming the node's
// shared simx resources so that co-located tasks contend realistically.
//
// It also owns the failure semantics the paper's evaluation leans on:
// admission beyond the heap triggers an OutOfMemory task failure, and an
// OOM can escalate to a JVM/worker crash that drops the node's cached
// partitions and takes the executor offline for a restart period — the
// source of default Spark's PageRank failures and large error bars in
// Fig 5.
package executor

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/stats"
	"rupam/internal/task"
	"rupam/internal/tracing"
)

// Outcome is the terminal state of one task attempt.
type Outcome int

// Attempt outcomes.
const (
	Success     Outcome = iota
	OOM                 // attempt failed with an out-of-memory error
	Killed              // attempt was terminated by the scheduler or a worker crash
	Lost                // attempt vanished with its executor (fail-stop node loss)
	FetchFailed         // attempt could not fetch shuffle data from a lost node
	Flaked              // attempt hit a transient node-local fault (gray failure)
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case OOM:
		return "oom"
	case Lost:
		return "lost"
	case FetchFailed:
		return "fetch-failed"
	case Flaked:
		return "flaked"
	default:
		return "killed"
	}
}

// Config holds the physical constants of the execution model. The zero
// value is completed by withDefaults; schedulers override HeapBytes (the
// paper's static 14 GB for default Spark, per-node dynamic for RUPAM) and
// DispatchDelay.
type Config struct {
	// HeapBytes is the executor's JVM heap, carved from node memory.
	HeapBytes int64
	// StorageFraction of the heap is usable by the RDD cache
	// (spark.memory.storageFraction).
	StorageFraction float64
	// DriverNode receives result-task output flows.
	DriverNode string
	// DispatchDelay is the fixed scheduling/shipping latency per task.
	DispatchDelay float64
	// SerCPUPerByte is serialization compute cost in giga-cycles/byte.
	SerCPUPerByte float64
	// GCFactor scales garbage-collection time: seconds of GC per GB of
	// allocation churn at the reference heap pressure.
	GCFactor float64
	// EvictGCPerGB is extra GC seconds per GB of cache evicted to admit a
	// task (the LRU-management overhead of §IV-D).
	EvictGCPerGB float64
	// OOMRunFraction is how far through its compute estimate a doomed
	// task gets before the allocation fails.
	OOMRunFraction float64
	// WorkerCrashProb is the probability an OOM kills the whole JVM.
	WorkerCrashProb float64
	// RestartDelay is worker recovery time after a crash.
	RestartDelay float64
	// RelocateCacheOnRemoteRead moves a cached partition to the reading
	// node after a remote cache fetch. Stock Spark leaves blocks where
	// they were computed; RUPAM's task migration carries the partition
	// along so the next iteration is PROCESS_LOCAL on the better node.
	RelocateCacheOnRemoteRead bool
	// Seed drives the executor's failure randomness.
	Seed uint64
	// Tracer, when non-nil, records attempt lifecycle and phase boundaries.
	Tracer *tracing.Collector
}

func (c Config) withDefaults() Config {
	if c.StorageFraction == 0 {
		c.StorageFraction = 0.5
	}
	if c.DispatchDelay == 0 {
		c.DispatchDelay = 0.04
	}
	if c.SerCPUPerByte == 0 {
		c.SerCPUPerByte = 2e-9
	}
	if c.GCFactor == 0 {
		c.GCFactor = 0.8
	}
	if c.EvictGCPerGB == 0 {
		c.EvictGCPerGB = 0.4
	}
	if c.OOMRunFraction == 0 {
		c.OOMRunFraction = 0.5
	}
	if c.WorkerCrashProb == 0 {
		c.WorkerCrashProb = 0.55
	}
	if c.RestartDelay == 0 {
		c.RestartDelay = 30
	}
	return c
}

// Executor runs tasks on one node.
type Executor struct {
	eng   *simx.Engine
	clu   *cluster.Cluster
	node  *cluster.Node
	cfg   Config
	heap  *simx.Space
	cache *CacheTracker
	rng   *stats.Rand

	peers map[string]*Executor // all executors by node, for remote reads

	running     map[*Run]struct{}
	down        bool
	failStopped bool

	// memPressure is the gray-failure heap squeeze: the effective heap is
	// memPressure × nominal for GC-cost purposes (1 = no squeeze). No
	// allocation fails — the executor just collects garbage harder.
	memPressure float64
	// flakeProb is the probability an attempt started now dies with a
	// transient Flaked failure (0 = healthy). The failure RNG is consulted
	// only while non-zero, so fault-free runs stay byte-identical.
	flakeProb float64

	// metricsArena batches attempt-Metrics allocation; runArena batches
	// Run allocation. Both are append-only within a run (handles escape
	// to the driver, CharDB and tracing), so batching is safe and
	// recycling is deliberately not attempted.
	metricsArena task.MetricsArena
	runArena     []Run

	// shuffle-read scratch, reused across readShuffle calls (the section
	// using them is synchronous, so per-executor reuse is safe).
	shuffleByNode map[string]int64
	shuffleNodes  []string

	// reserved is memory promised to launched-but-not-yet-started
	// attempts; schedulers that admit by memory fit consult
	// ProjectedFree so a burst of simultaneous launches cannot
	// over-commit the heap before any allocation lands.
	reserved int64

	// OnRestart, if set, is invoked when the executor comes back after a
	// crash; schedulers use it to resume offers.
	OnRestart func()

	// Counters for reporting.
	TasksRun  int
	OOMs      int
	Crashes   int
	KilledCnt int
	FailStops int
	Flakes    int

	// Incarnation counts fail-stop recoveries. Real Spark sees a restarted
	// worker as a brand-new executor ID registering; the driver compares
	// incarnations across heartbeats to catch a crash+restart cycle shorter
	// than the heartbeat timeout, whose attempt deaths were silent.
	Incarnation int
}

// New creates an executor on node with the given heap size, registering it
// in peers (shared by all executors of a run). The heap is clamped to the
// node's free memory.
func New(eng *simx.Engine, clu *cluster.Cluster, node *cluster.Node, cache *CacheTracker,
	peers map[string]*Executor, cfg Config) *Executor {
	cfg = cfg.withDefaults()
	if cfg.HeapBytes <= 0 {
		panic(fmt.Sprintf("executor: node %s: non-positive heap", node.Name()))
	}
	if cfg.HeapBytes > node.Mem.Free() {
		cfg.HeapBytes = node.Mem.Free()
	}
	node.Mem.ForceAlloc(cfg.HeapBytes)
	ex := &Executor{
		eng:         eng,
		clu:         clu,
		node:        node,
		cfg:         cfg,
		heap:        simx.NewSpace(eng, node.Name()+"/heap", cfg.HeapBytes),
		cache:       cache,
		rng:         stats.NewRand(cfg.Seed ^ hashName(node.Name())),
		peers:       peers,
		running:     make(map[*Run]struct{}),
		memPressure: 1,
	}
	peers[node.Name()] = ex
	return ex
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Node returns the executor's node.
func (ex *Executor) Node() *cluster.Node { return ex.node }

// Heap returns the executor's heap space.
func (ex *Executor) Heap() *simx.Space { return ex.heap }

// HeapFree returns the executor's free heap bytes.
func (ex *Executor) HeapFree() int64 { return ex.heap.Free() }

// ProjectedFree returns free heap bytes minus reservations of launched
// attempts that have not yet allocated.
func (ex *Executor) ProjectedFree() int64 { return ex.heap.Free() - ex.reserved }

// SetMemPressure sets the gray-failure heap squeeze: GC cost is charged
// as if the heap were f × nominal. f = 1 (or anything non-positive)
// restores the healthy state. Fault injection drives this; nothing else
// should.
func (ex *Executor) SetMemPressure(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	ex.memPressure = f
}

// MemPressure returns the current effective-heap multiplier (1 = healthy).
func (ex *Executor) MemPressure() float64 { return ex.memPressure }

// SetFlakeProb sets the probability that an attempt started on this node
// dies with a transient Flaked failure. 0 restores the healthy state.
func (ex *Executor) SetFlakeProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	ex.flakeProb = p
}

// FlakeProb returns the current transient-failure probability.
func (ex *Executor) FlakeProb() float64 { return ex.flakeProb }

// Down reports whether the executor is offline after a crash.
func (ex *Executor) Down() bool { return ex.down }

// FailStopped reports whether the executor's node is fail-stopped: unlike
// an OOM-induced JVM restart (where the machine keeps heartbeating), a
// fail-stopped node is silent until it recovers.
func (ex *Executor) FailStopped() bool { return ex.failStopped }

// FailStop takes the whole node down at once: every running attempt dies
// with it (unreported — the driver only learns via heartbeat timeout),
// cached partitions and shuffle files are gone, and the executor stays
// offline for recoverAfter seconds (<= 0 means it never comes back).
func (ex *Executor) FailStop(recoverAfter float64) {
	if ex.failStopped {
		return
	}
	ex.failStopped = true
	ex.down = true
	ex.FailStops++
	for _, r := range ex.Running() {
		r.Kill(false)
	}
	if lost := ex.cache.DropNode(ex.node.Name()); lost > 0 {
		ex.heap.Release(lost)
	}
	if recoverAfter > 0 {
		ex.eng.Schedule(recoverAfter, func() {
			if !ex.failStopped {
				// Reactivate already brought the node back (the elastic
				// substrate re-acquired it before this crash's recovery
				// timer fired); a second restart would double-count an
				// incarnation.
				return
			}
			ex.failStopped = false
			ex.down = false
			ex.Incarnation++
			if ex.OnRestart != nil {
				ex.OnRestart()
			}
		})
	}
}

// Reactivate brings a fail-stopped executor back immediately — the elastic
// substrate re-acquiring a previously preempted (or released) instance.
// The machine returns empty: a fresh incarnation with nothing running, no
// cache and a clean heap, and the driver sees the new incarnation's first
// heartbeat exactly like a fail-stop recovery. A no-op on a live executor.
func (ex *Executor) Reactivate() {
	if !ex.failStopped {
		return
	}
	ex.failStopped = false
	ex.down = false
	ex.Incarnation++
	if ex.OnRestart != nil {
		ex.OnRestart()
	}
}

// RunningTasks returns the number of in-flight task attempts.
func (ex *Executor) RunningTasks() int { return len(ex.running) }

// Running returns the in-flight runs (deterministic order by launch).
func (ex *Executor) Running() []*Run {
	rs := make([]*Run, 0, len(ex.running))
	for r := range ex.running {
		rs = append(rs, r)
	}
	sortRuns(rs)
	return rs
}

// AttemptOf returns this executor's in-flight attempt of t, or nil. When
// multiple attempts of the same task are somehow in flight here, the
// earliest-launched wins (deterministic). A recovering driver uses this to
// re-adopt attempts it logged as launched before crashing.
func (ex *Executor) AttemptOf(t *task.Task) *Run {
	var found *Run
	for r := range ex.running {
		if r.t == t && (found == nil || r.seq < found.seq) {
			found = r
		}
	}
	return found
}

// Options controls one task attempt.
type Options struct {
	// Locality is the level the scheduler assigned (recorded in metrics
	// and used to decide local vs remote input reads).
	Locality hdfs.Locality
	// ForbidGPU forces the CPU fallback path even on a GPU node — the
	// CPU copy of RUPAM's dual-version straggler race.
	ForbidGPU bool
	// Speculative marks the attempt as a speculative copy.
	Speculative bool
}

// Launch begins executing an attempt of t (whose stage is st) and returns
// its Run handle. onDone fires exactly once with the terminal outcome,
// unless the run is killed with notify=false. Launching on a downed
// executor panics — schedulers must not offer downed nodes.
func (ex *Executor) Launch(t *task.Task, st *task.Stage, opts Options, onDone func(*Run, Outcome)) *Run {
	if ex.down {
		panic("executor: launch on downed executor " + ex.node.Name())
	}
	m := ex.metricsArena.New()
	*m = task.Metrics{
		Executor: ex.node.Name(),
		Locality: opts.Locality,
		Launch:   ex.eng.Now(),
	}
	t.Attempts = append(t.Attempts, m)
	if len(ex.runArena) == 0 {
		ex.runArena = make([]Run, 16)
	}
	r := &ex.runArena[0]
	ex.runArena = ex.runArena[1:]
	*r = Run{ex: ex, t: t, st: st, m: m, opts: opts, onDone: onDone, seq: nextRunSeq()}
	r.tr = ex.cfg.Tracer.AttemptStarted(t, st, ex.node.Name(), opts.Locality.String(), opts.Speculative)
	r.reservedMem = t.Demand.PeakMemory
	ex.reserved += r.reservedMem
	ex.running[r] = struct{}{}
	ex.TasksRun++
	r.armTimer(ex.cfg.DispatchDelay, r.start)
	return r
}
